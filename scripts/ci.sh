#!/usr/bin/env bash
# CI gate for the MilBack workspace.
#
# Runs the full quality bar in order of increasing cost:
#   1. release build of every target
#   2. the complete test suite (tier-1 umbrella + all crate suites)
#   3. clippy across all targets with warnings promoted to errors
#   4. the benchmark harness, which emits results/BENCH_dsp.json and
#      results/BENCH_experiments.json
#   5. structural validation of both benchmark JSONs
#   6. one migrated figure binary end-to-end in reduced mode (shrunken
#      grids, CSV anchors untouched)
#
# Usage: scripts/ci.sh          (from anywhere; cd's to the repo root)
set -euo pipefail

cd "$(dirname "$0")/.."

echo "==> [1/6] cargo build --release --workspace --all-targets"
cargo build --release --workspace --all-targets

echo "==> [2/6] cargo test --release --workspace"
cargo test --release --workspace -q

echo "==> [3/6] cargo clippy --release --workspace --all-targets -- -D warnings"
cargo clippy --release --workspace --all-targets -- -D warnings

echo "==> [4/6] bench_smoke (writes results/BENCH_dsp.json + BENCH_experiments.json)"
cargo run --release -p milback-bench --bin bench_smoke

echo "==> [5/6] validating benchmark JSONs"
JSON=results/BENCH_dsp.json
EXP_JSON=results/BENCH_experiments.json
[ -s "$JSON" ] || { echo "FAIL: $JSON missing or empty" >&2; exit 1; }
[ -s "$EXP_JSON" ] || { echo "FAIL: $EXP_JSON missing or empty" >&2; exit 1; }
if command -v python3 >/dev/null 2>&1; then
    python3 - "$JSON" <<'PY'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["schema"] == "milback-bench-dsp-v1", doc.get("schema")
for key in ("host", "fft", "range_doppler", "beat_synthesis",
            "uplink_fig15_reduced", "acceptance"):
    assert key in doc, f"missing top-level key: {key}"
assert doc["fft"], "fft section is empty"
for row in doc["fft"]:
    assert row["cached_oneshot_ns"] > 0 and row["plan_per_call_ns"] > 0, row
assert doc["range_doppler"]["bit_exact"] is True
print(f"OK: {sys.argv[1]} is well-formed "
      f"({len(doc['fft'])} FFT rows, "
      f"fft4096 speedup {doc['acceptance']['fft4096_cached_vs_plan_per_call']:.2f}x)")
PY
    python3 - "$EXP_JSON" <<'PY'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["schema"] == "milback-bench-experiments-v1", doc.get("schema")
for key in ("host", "experiments", "fsa_gain_eval", "acceptance"):
    assert key in doc, f"missing top-level key: {key}"
assert doc["experiments"], "experiments section is empty"
for row in doc["experiments"]:
    assert row["serial_ms"] > 0 and row["parallel_ms"] > 0, row
    assert row["bit_exact"] is True, f"schedule divergence in {row['name']}"
fsa = doc["fsa_gain_eval"]
assert fsa["bit_exact"] is True, "FSA evaluator diverged from the direct path"
acc = doc["acceptance"]
for key in ("runner_target_speedup", "runner_target_needs_cores", "cores",
            "runner_best_speedup", "runner_median_speedup",
            "fsa_target_speedup", "fsa_hoisted_speedup", "all_bit_exact"):
    assert key in acc, f"missing acceptance key: {key}"
assert acc["all_bit_exact"] is True
print(f"OK: {sys.argv[1]} is well-formed "
      f"({len(doc['experiments'])} experiment rows, "
      f"runner best {acc['runner_best_speedup']:.2f}x on {acc['cores']} core(s), "
      f"fsa hoisted {acc['fsa_hoisted_speedup']:.2f}x)")
PY
else
    # Minimal fallback: the files must at least carry the schema markers
    # and the acceptance/bit-exactness blocks.
    grep -q '"schema": "milback-bench-dsp-v1"' "$JSON"
    grep -q '"acceptance"' "$JSON"
    grep -q '"schema": "milback-bench-experiments-v1"' "$EXP_JSON"
    grep -q '"acceptance"' "$EXP_JSON"
    grep -q '"all_bit_exact": true' "$EXP_JSON"
    echo "OK: benchmark JSONs carry schema markers (python3 unavailable, shallow check)"
fi

echo "==> [6/6] reduced-mode figure run (MILBACK_REDUCED=1 fig12a_ranging)"
CSV=results/figure_12a.csv
before=$(sha256sum "$CSV" 2>/dev/null || echo absent)
MILBACK_REDUCED=1 cargo run --release -p milback-bench --bin fig12a_ranging
after=$(sha256sum "$CSV" 2>/dev/null || echo absent)
[ "$before" = "$after" ] || { echo "FAIL: reduced mode overwrote $CSV" >&2; exit 1; }

echo "==> ci.sh: all gates passed"
