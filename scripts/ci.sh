#!/usr/bin/env bash
# CI gate for the MilBack workspace.
#
# Runs the full quality bar in order of increasing cost:
#   1. formatting check (cargo fmt --check)
#   2. release build of every target
#   3. the complete test suite (tier-1 umbrella + all crate suites)
#   4. clippy across all targets with warnings promoted to errors
#   5. rustdoc with warnings promoted to errors
#   6. the benchmark harness, which emits results/BENCH_dsp.json and
#      results/BENCH_experiments.json
#   7. structural validation of both benchmark JSONs
#   8. one migrated figure binary end-to-end in reduced mode (shrunken
#      grids, CSV anchors untouched)
#   9. the net_scale extension in reduced mode + its full-scale CSV anchor
#  10. the mac_compare extension in reduced mode + schema validation of its
#      full-scale CSV anchor (no NaN/inf tokens, ALOHA beaten at 64 nodes)
#
# Usage: scripts/ci.sh          (from anywhere; cd's to the repo root)
set -euo pipefail

cd "$(dirname "$0")/.."

echo "==> [1/10] cargo fmt --check"
cargo fmt --all -- --check

echo "==> [2/10] cargo build --release --workspace --all-targets"
cargo build --release --workspace --all-targets

echo "==> [3/10] cargo test --release --workspace"
cargo test --release --workspace -q

echo "==> [4/10] cargo clippy --release --workspace --all-targets -- -D warnings"
cargo clippy --release --workspace --all-targets -- -D warnings

echo "==> [5/10] cargo doc --no-deps (RUSTDOCFLAGS=-D warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --quiet

echo "==> [6/10] bench_smoke (writes results/BENCH_dsp.json + BENCH_experiments.json)"
cargo run --release -p milback-bench --bin bench_smoke

echo "==> [7/10] validating benchmark JSONs"
JSON=results/BENCH_dsp.json
EXP_JSON=results/BENCH_experiments.json
[ -s "$JSON" ] || { echo "FAIL: $JSON missing or empty" >&2; exit 1; }
[ -s "$EXP_JSON" ] || { echo "FAIL: $EXP_JSON missing or empty" >&2; exit 1; }
if command -v python3 >/dev/null 2>&1; then
    python3 - "$JSON" <<'PY'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["schema"] == "milback-bench-dsp-v1", doc.get("schema")
for key in ("host", "fft", "range_doppler", "beat_synthesis",
            "uplink_fig15_reduced", "acceptance"):
    assert key in doc, f"missing top-level key: {key}"
assert doc["fft"], "fft section is empty"
for row in doc["fft"]:
    assert row["cached_oneshot_ns"] > 0 and row["plan_per_call_ns"] > 0, row
assert doc["range_doppler"]["bit_exact"] is True
print(f"OK: {sys.argv[1]} is well-formed "
      f"({len(doc['fft'])} FFT rows, "
      f"fft4096 speedup {doc['acceptance']['fft4096_cached_vs_plan_per_call']:.2f}x)")
PY
    python3 - "$EXP_JSON" <<'PY'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["schema"] == "milback-bench-experiments-v1", doc.get("schema")
for key in ("host", "experiments", "fsa_gain_eval", "acceptance"):
    assert key in doc, f"missing top-level key: {key}"
assert doc["experiments"], "experiments section is empty"
for row in doc["experiments"]:
    assert row["serial_ms"] > 0 and row["parallel_ms"] > 0, row
    assert row["bit_exact"] is True, f"schedule divergence in {row['name']}"
fsa = doc["fsa_gain_eval"]
assert fsa["bit_exact"] is True, "FSA evaluator diverged from the direct path"
acc = doc["acceptance"]
for key in ("runner_target_speedup", "runner_target_needs_cores", "cores",
            "runner_best_speedup", "runner_median_speedup",
            "fsa_target_speedup", "fsa_hoisted_speedup", "all_bit_exact"):
    assert key in acc, f"missing acceptance key: {key}"
assert acc["all_bit_exact"] is True
print(f"OK: {sys.argv[1]} is well-formed "
      f"({len(doc['experiments'])} experiment rows, "
      f"runner best {acc['runner_best_speedup']:.2f}x on {acc['cores']} core(s), "
      f"fsa hoisted {acc['fsa_hoisted_speedup']:.2f}x)")
PY
else
    # Minimal fallback: the files must at least carry the schema markers
    # and the acceptance/bit-exactness blocks.
    grep -q '"schema": "milback-bench-dsp-v1"' "$JSON"
    grep -q '"acceptance"' "$JSON"
    grep -q '"schema": "milback-bench-experiments-v1"' "$EXP_JSON"
    grep -q '"acceptance"' "$EXP_JSON"
    grep -q '"all_bit_exact": true' "$EXP_JSON"
    echo "OK: benchmark JSONs carry schema markers (python3 unavailable, shallow check)"
fi

echo "==> [8/10] reduced-mode figure run (MILBACK_REDUCED=1 fig12a_ranging)"
CSV=results/figure_12a.csv
before=$(sha256sum "$CSV" 2>/dev/null || echo absent)
MILBACK_REDUCED=1 cargo run --release -p milback-bench --bin fig12a_ranging
after=$(sha256sum "$CSV" 2>/dev/null || echo absent)
[ "$before" = "$after" ] || { echo "FAIL: reduced mode overwrote $CSV" >&2; exit 1; }

echo "==> [9/10] net_scale extension (reduced run + full-scale CSV anchor)"
NET_CSV=results/extension_net_scale.csv
before=$(sha256sum "$NET_CSV" 2>/dev/null || echo absent)
MILBACK_REDUCED=1 cargo run --release -p milback-bench --bin net_scale
after=$(sha256sum "$NET_CSV" 2>/dev/null || echo absent)
[ "$before" = "$after" ] || { echo "FAIL: reduced mode overwrote $NET_CSV" >&2; exit 1; }
[ -s "$NET_CSV" ] || { echo "FAIL: $NET_CSV missing or empty (regenerate with the net_scale binary at full scale)" >&2; exit 1; }
header=$(head -1 "$NET_CSV")
case "$header" in
    nodes,*goodput*collisions*energy*) : ;;
    *) echo "FAIL: unexpected $NET_CSV header: $header" >&2; exit 1 ;;
esac
rows=$(($(wc -l < "$NET_CSV") - 1))
[ "$rows" -ge 7 ] || { echo "FAIL: $NET_CSV has $rows data rows, expected the 1..64 sweep (7)" >&2; exit 1; }

echo "==> [10/10] mac_compare extension (reduced run + full-scale CSV anchor schema)"
MAC_CSV=results/extension_mac_compare.csv
before=$(sha256sum "$MAC_CSV" 2>/dev/null || echo absent)
MILBACK_REDUCED=1 cargo run --release -p milback-bench --bin mac_compare
after=$(sha256sum "$MAC_CSV" 2>/dev/null || echo absent)
[ "$before" = "$after" ] || { echo "FAIL: reduced mode overwrote $MAC_CSV" >&2; exit 1; }
[ -s "$MAC_CSV" ] || { echo "FAIL: $MAC_CSV missing or empty (regenerate with the mac_compare binary at full scale)" >&2; exit 1; }
header=$(head -1 "$MAC_CSV")
case "$header" in
    nodes,*delivery*aloha*energy_mj*goodput_kbps*) : ;;
    *) echo "FAIL: unexpected $MAC_CSV header: $header" >&2; exit 1 ;;
esac
for p in aloha backoff polling sdm; do
    case "$header" in
        *"$p"*) : ;;
        *) echo "FAIL: $MAC_CSV header is missing policy $p" >&2; exit 1 ;;
    esac
done
# Undefined cells are empty, never NaN/inf sentinels.
if grep -qiE '(nan|inf)' "$MAC_CSV"; then
    echo "FAIL: $MAC_CSV carries NaN/inf tokens" >&2; exit 1
fi
rows=$(($(wc -l < "$MAC_CSV") - 1))
[ "$rows" -ge 7 ] || { echo "FAIL: $MAC_CSV has $rows data rows, expected the 1..64 sweep (7)" >&2; exit 1; }
# Contention-aware policies must beat plain ALOHA on delivery at the
# densest point of the full-scale sweep (columns: delivery aloha/backoff/
# polling/sdm are the 2nd..5th).
awk -F, 'NR==1 { next } { last=$0 } END {
    split(last, c, ",");
    if (!(c[4] > c[2]) || !(c[5] > c[2])) {
        printf "FAIL: at %s nodes delivery polling=%s sdm=%s do not both beat aloha=%s\n", c[1], c[4], c[5], c[2] > "/dev/stderr";
        exit 1;
    }
}' "$MAC_CSV"

echo "==> ci.sh: all gates passed"
