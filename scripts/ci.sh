#!/usr/bin/env bash
# CI gate for the MilBack workspace.
#
# Runs the full quality bar in order of increasing cost:
#   1. formatting check (cargo fmt --check)
#   2. release build of every target, plus the no_std build of the node
#      core (milback-node --no-default-features)
#   3. the complete test suite (tier-1 umbrella + all crate suites)
#   4. clippy across all targets with warnings promoted to errors
#   5. rustdoc with warnings promoted to errors
#   6. the benchmark harness, which emits results/BENCH_dsp.json and
#      results/BENCH_experiments.json
#   7. structural validation of both benchmark JSONs, gating on the
#      batch_kernels section (batch_bit_exact == true, zero firmware allocs)
#   8. one migrated figure binary end-to-end in reduced mode (shrunken
#      grids, CSV anchors untouched)
#   9. the net_scale extension in reduced mode + its full-scale CSV anchor
#  10. the mac_compare extension in reduced mode + schema validation of its
#      full-scale CSV anchor (no NaN/inf tokens, ALOHA beaten at 64 nodes)
#  11. an instrumented reduced campaign: mac_compare with tracing on, then
#      schema validation of results/METRICS_mac.json, the per-policy trace
#      JSONL files (monotone time_ps, no NaN/inf), and the combined Chrome
#      trace JSON
#  12. the telemetry-off build (--no-default-features): tests pass, the
#      reduced anchors survive, and no metrics artifact is written
#  13. the net_scale_city sharded sweep in reduced mode (4+ cells, ~10³
#      nodes) + schema validation of its full-scale CSV anchor, which must
#      carry a completed 10⁵-node campaign with live AP-service columns
#  14. the net_load offered-vs-served sweep in reduced mode + schema,
#      finiteness, and grant-conservation gates (served ≤ offered,
#      served + dropped = offered) on both the reduced CSV and the
#      full-scale anchor, which must show the served-load knee (nonzero
#      drop and defer spill)
#  15. the net_relay multi-hop recovery sweep in reduced mode + schema and
#      finiteness gates on both the reduced CSV and the full-scale anchor:
#      gap nodes deliver nothing at hop budget 1 and recover past one half
#      at budget ≥ 2 with nonzero forwarding energy per relayed delivery
#  16. the net_audit packet-lifecycle sweep in reduced mode: every row of
#      the drop-attribution CSV must conserve (offered = delivered +
#      Σ drops over all seven reasons, each label present even at zero)
#      with ordered latency percentiles (p50 ≤ p95 ≤ p99), the reduced
#      METRICS_lifecycle.json must validate cell-by-cell, and the
#      full-scale anchors are regenerated at the end
#
# Usage: scripts/ci.sh          (from anywhere; cd's to the repo root)
set -euo pipefail

cd "$(dirname "$0")/.."

echo "==> [1/16] cargo fmt --check"
cargo fmt --all -- --check

echo "==> [2/16] cargo build --release --workspace --all-targets"
cargo build --release --workspace --all-targets
# The node core must stay portable to an MCU: firmware/mode/power compile
# without std (the sim-facing modules are std-gated behind the default
# feature).
cargo build --release -p milback-node --no-default-features

echo "==> [3/16] cargo test --release --workspace"
cargo test --release --workspace -q

echo "==> [4/16] cargo clippy --release --workspace --all-targets -- -D warnings"
cargo clippy --release --workspace --all-targets -- -D warnings

echo "==> [5/16] cargo doc --no-deps (RUSTDOCFLAGS=-D warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --quiet

echo "==> [6/16] bench_smoke (writes results/BENCH_dsp.json + BENCH_experiments.json)"
cargo run --release -p milback-bench --bin bench_smoke

echo "==> [7/16] validating benchmark JSONs"
JSON=results/BENCH_dsp.json
EXP_JSON=results/BENCH_experiments.json
[ -s "$JSON" ] || { echo "FAIL: $JSON missing or empty" >&2; exit 1; }
[ -s "$EXP_JSON" ] || { echo "FAIL: $EXP_JSON missing or empty" >&2; exit 1; }
if command -v python3 >/dev/null 2>&1; then
    python3 - "$JSON" <<'PY'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["schema"] == "milback-bench-dsp-v1", doc.get("schema")
for key in ("host", "fft", "range_doppler", "beat_synthesis",
            "uplink_fig15_reduced", "acceptance"):
    assert key in doc, f"missing top-level key: {key}"
assert doc["fft"], "fft section is empty"
for row in doc["fft"]:
    assert row["cached_oneshot_ns"] > 0 and row["plan_per_call_ns"] > 0, row
assert doc["range_doppler"]["bit_exact"] is True
print(f"OK: {sys.argv[1]} is well-formed "
      f"({len(doc['fft'])} FFT rows, "
      f"fft4096 speedup {doc['acceptance']['fft4096_cached_vs_plan_per_call']:.2f}x)")
PY
    python3 - "$EXP_JSON" <<'PY'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["schema"] == "milback-bench-experiments-v1", doc.get("schema")
for key in ("host", "experiments", "fsa_gain_eval", "batch_kernels",
            "sharded_campaign", "acceptance"):
    assert key in doc, f"missing top-level key: {key}"
assert doc["experiments"], "experiments section is empty"
for row in doc["experiments"]:
    assert row["serial_ms"] > 0 and row["parallel_ms"] > 0, row
    assert row["bit_exact"] is True, f"schedule divergence in {row['name']}"
fsa = doc["fsa_gain_eval"]
assert fsa["bit_exact"] is True, "FSA evaluator diverged from the direct path"
bk = doc["batch_kernels"]
for key in ("fsa_points", "fsa_cold_memoized_ns_per_point", "fsa_batch_ns_per_point",
            "fsa_batch_speedup", "fsa_freq_points", "fsa_freq_batch_speedup",
            "fmcw_chirps", "fmcw_sequential_chirps_per_s", "fmcw_batched_chirps_per_s",
            "firmware_allocs_per_packet", "batch_bit_exact"):
    assert key in bk, f"missing batch_kernels key: {key}"
assert bk["batch_bit_exact"] is True, "a batch kernel diverged from the scalar path"
assert bk["firmware_allocs_per_packet"] == 0, "firmware hot loop must stay heap-free"
sc = doc["sharded_campaign"]
for key in ("nodes", "cells", "threads", "single_cell_nodes_per_sec",
            "sharded_nodes_per_sec", "shard_bit_exact", "bucket_footprint",
            "bounded_memory"):
    assert key in sc, f"missing sharded_campaign key: {key}"
assert sc["shard_bit_exact"] is True, "sharded campaign diverged from run_mac or across threads"
assert sc["bounded_memory"] is True, "campaign aggregate footprint grew with node count"
assert sc["cells"] >= 4 and sc["sharded_nodes_per_sec"] > 0, sc
acc = doc["acceptance"]
for key in ("runner_target_speedup", "runner_target_needs_cores", "cores",
            "runner_best_speedup", "runner_median_speedup",
            "fsa_target_speedup", "fsa_hoisted_speedup", "fsa_batch_speedup",
            "batch_bit_exact", "shard_bit_exact", "shard_bounded_memory",
            "all_bit_exact"):
    assert key in acc, f"missing acceptance key: {key}"
assert acc["batch_bit_exact"] is True
assert acc["shard_bit_exact"] is True
assert acc["shard_bounded_memory"] is True
assert acc["all_bit_exact"] is True
print(f"OK: {sys.argv[1]} is well-formed "
      f"({len(doc['experiments'])} experiment rows, "
      f"runner best {acc['runner_best_speedup']:.2f}x on {acc['cores']} core(s), "
      f"fsa hoisted {acc['fsa_hoisted_speedup']:.2f}x, "
      f"cold-grid batch {acc['fsa_batch_speedup']:.2f}x, "
      f"sharded {sc['sharded_nodes_per_sec']:.0f} nodes/s over {sc['cells']} cells)")
PY
else
    # Minimal fallback: the files must at least carry the schema markers
    # and the acceptance/bit-exactness blocks.
    grep -q '"schema": "milback-bench-dsp-v1"' "$JSON"
    grep -q '"acceptance"' "$JSON"
    grep -q '"schema": "milback-bench-experiments-v1"' "$EXP_JSON"
    grep -q '"acceptance"' "$EXP_JSON"
    grep -q '"batch_kernels"' "$EXP_JSON"
    grep -q '"batch_bit_exact": true' "$EXP_JSON"
    grep -q '"sharded_campaign"' "$EXP_JSON"
    grep -q '"shard_bit_exact": true' "$EXP_JSON"
    grep -q '"bounded_memory": true' "$EXP_JSON"
    grep -q '"all_bit_exact": true' "$EXP_JSON"
    echo "OK: benchmark JSONs carry schema markers (python3 unavailable, shallow check)"
fi

echo "==> [8/16] reduced-mode figure run (MILBACK_REDUCED=1 fig12a_ranging)"
CSV=results/figure_12a.csv
before=$(sha256sum "$CSV" 2>/dev/null || echo absent)
MILBACK_REDUCED=1 cargo run --release -p milback-bench --bin fig12a_ranging
after=$(sha256sum "$CSV" 2>/dev/null || echo absent)
[ "$before" = "$after" ] || { echo "FAIL: reduced mode overwrote $CSV" >&2; exit 1; }

echo "==> [9/16] net_scale extension (reduced run + full-scale CSV anchor)"
NET_CSV=results/extension_net_scale.csv
before=$(sha256sum "$NET_CSV" 2>/dev/null || echo absent)
MILBACK_REDUCED=1 cargo run --release -p milback-bench --bin net_scale
after=$(sha256sum "$NET_CSV" 2>/dev/null || echo absent)
[ "$before" = "$after" ] || { echo "FAIL: reduced mode overwrote $NET_CSV" >&2; exit 1; }
[ -s "$NET_CSV" ] || { echo "FAIL: $NET_CSV missing or empty (regenerate with the net_scale binary at full scale)" >&2; exit 1; }
header=$(head -1 "$NET_CSV")
case "$header" in
    nodes,*goodput*collisions*energy*) : ;;
    *) echo "FAIL: unexpected $NET_CSV header: $header" >&2; exit 1 ;;
esac
rows=$(($(wc -l < "$NET_CSV") - 1))
[ "$rows" -ge 7 ] || { echo "FAIL: $NET_CSV has $rows data rows, expected the 1..64 sweep (7)" >&2; exit 1; }

echo "==> [10/16] mac_compare extension (reduced run + full-scale CSV anchor schema)"
MAC_CSV=results/extension_mac_compare.csv
before=$(sha256sum "$MAC_CSV" 2>/dev/null || echo absent)
MILBACK_REDUCED=1 cargo run --release -p milback-bench --bin mac_compare
after=$(sha256sum "$MAC_CSV" 2>/dev/null || echo absent)
[ "$before" = "$after" ] || { echo "FAIL: reduced mode overwrote $MAC_CSV" >&2; exit 1; }
[ -s "$MAC_CSV" ] || { echo "FAIL: $MAC_CSV missing or empty (regenerate with the mac_compare binary at full scale)" >&2; exit 1; }
header=$(head -1 "$MAC_CSV")
case "$header" in
    nodes,*delivery*aloha*energy_mj*goodput_kbps*) : ;;
    *) echo "FAIL: unexpected $MAC_CSV header: $header" >&2; exit 1 ;;
esac
for p in aloha backoff polling sdm; do
    case "$header" in
        *"$p"*) : ;;
        *) echo "FAIL: $MAC_CSV header is missing policy $p" >&2; exit 1 ;;
    esac
done
# Undefined cells are empty, never NaN/inf sentinels.
if grep -qiE '(nan|inf)' "$MAC_CSV"; then
    echo "FAIL: $MAC_CSV carries NaN/inf tokens" >&2; exit 1
fi
rows=$(($(wc -l < "$MAC_CSV") - 1))
[ "$rows" -ge 7 ] || { echo "FAIL: $MAC_CSV has $rows data rows, expected the 1..64 sweep (7)" >&2; exit 1; }
# Contention-aware policies must beat plain ALOHA on delivery at the
# densest point of the full-scale sweep (columns: delivery aloha/backoff/
# polling/sdm are the 2nd..5th).
awk -F, 'NR==1 { next } { last=$0 } END {
    split(last, c, ",");
    if (!(c[4] > c[2]) || !(c[5] > c[2])) {
        printf "FAIL: at %s nodes delivery polling=%s sdm=%s do not both beat aloha=%s\n", c[1], c[4], c[5], c[2] > "/dev/stderr";
        exit 1;
    }
}' "$MAC_CSV"

echo "==> [11/16] instrumented campaign (MILBACK_TRACE) + telemetry artifact schemas"
TRACE_DIR=$(mktemp -d)
METRICS=results/METRICS_mac.json
rm -f "$METRICS"
MILBACK_REDUCED=1 MILBACK_TRACE="$TRACE_DIR" cargo run --release -p milback-bench --bin mac_compare
[ -s "$METRICS" ] || { echo "FAIL: $METRICS missing or empty" >&2; exit 1; }
[ -s "$TRACE_DIR/mac_compare.trace.json" ] || { echo "FAIL: Chrome trace missing" >&2; exit 1; }
for p in aloha backoff polling sdm; do
    [ -s "$TRACE_DIR/mac_$p.trace.jsonl" ] || { echo "FAIL: trace JSONL for $p missing" >&2; exit 1; }
done
if command -v python3 >/dev/null 2>&1; then
    python3 - "$METRICS" "$TRACE_DIR" <<'PY'
import json, math, sys, os
doc = json.load(open(sys.argv[1]))
assert doc["schema"] == "milback-metrics-mac-v1", doc.get("schema")
for key in ("host", "config", "policies"):
    assert key in doc, f"missing top-level key: {key}"
def finite(x, path):
    if isinstance(x, float):
        assert math.isfinite(x), f"non-finite value at {path}"
    elif isinstance(x, dict):
        for k, v in x.items():
            finite(v, f"{path}.{k}")
    elif isinstance(x, list):
        for i, v in enumerate(x):
            finite(v, f"{path}[{i}]")
finite(doc, "$")
for policy in ("aloha", "backoff", "polling", "sdm"):
    m = doc["policies"][policy]
    assert m["counters"]["slots_fired"] > 0, f"{policy}: no slots fired"
    for h in ("slot_occupancy", "energy_per_attempt_j"):
        assert h in m["histograms"], f"{policy}: missing histogram {h}"
trace_dir = sys.argv[2]
for name in sorted(os.listdir(trace_dir)):
    path = os.path.join(trace_dir, name)
    if name.endswith(".trace.jsonl"):
        last_ps, events = -1, 0
        for line in open(path):
            line = line.strip()
            if not line:
                continue
            rec = json.loads(line)
            finite(rec, name)
            ps = rec.get("time_ps")
            if ps is not None:
                assert ps >= last_ps, f"{name}: time_ps went backwards ({ps} < {last_ps})"
                last_ps, events = ps, events + 1
        assert events > 0, f"{name}: no timestamped records"
    elif name.endswith(".trace.json"):
        chrome = json.load(open(path))
        assert chrome["traceEvents"], f"{name}: no trace events"
        finite(chrome, name)
        flows = {}
        for ev in chrome["traceEvents"]:
            assert ev["ph"] in ("M", "i", "X", "C", "s", "t", "f"), ev
            if ev["ph"] in ("s", "t", "f"):
                flows.setdefault(ev["id"], set()).add(ev["ph"])
        # Flow chains must pair up: every flow id that starts ends, and
        # none materializes mid-air (a bare "t" with no "s"/"f").
        for fid, phases in flows.items():
            assert "s" in phases and "f" in phases, f"dangling flow {fid}: {phases}"
print(f"OK: {sys.argv[1]} and {trace_dir}/*.trace.json* are well-formed "
      f"({sum(1 for _ in open(os.path.join(trace_dir, 'mac_aloha.trace.jsonl')))} aloha trace lines)")
PY
else
    grep -q '"schema": "milback-metrics-mac-v1"' "$METRICS"
    if grep -qiE '(nan|inf)' "$METRICS"; then
        echo "FAIL: $METRICS carries NaN/inf tokens" >&2; exit 1
    fi
    grep -q '"traceEvents"' "$TRACE_DIR/mac_compare.trace.json"
    echo "OK: telemetry artifacts carry schema markers (python3 unavailable, shallow check)"
fi
rm -rf "$TRACE_DIR"

echo "==> [12/16] telemetry-off build (--no-default-features) passes the anchor gates"
cargo test --release -p milback-bench --no-default-features -q
cargo build --release -p milback-bench --no-default-features
rm -f "$METRICS"
before=$(sha256sum "$MAC_CSV")
MILBACK_REDUCED=1 MILBACK_TRACE=1 ./target/release/mac_compare
after=$(sha256sum "$MAC_CSV")
[ "$before" = "$after" ] || { echo "FAIL: telemetry-off reduced run overwrote $MAC_CSV" >&2; exit 1; }
[ ! -e "$METRICS" ] || { echo "FAIL: telemetry-off build wrote $METRICS" >&2; exit 1; }
# Restore the default (telemetry-on) binaries so the tree is left as built.
cargo build --release -p milback-bench --all-targets
# Regenerate the committed full-scale metrics artifact (the full campaign
# is memoized and cheap) so the tree does not end the run with a reduced
# or missing METRICS_mac.json.
./target/release/mac_compare >/dev/null
grep -q '"reduced": false' "$METRICS" || { echo "FAIL: regenerated $METRICS is not full-scale" >&2; exit 1; }

echo "==> [13/16] net_scale_city sharded sweep (reduced run + full-scale CSV anchor)"
CITY_CSV=results/extension_net_scale_city.csv
before=$(sha256sum "$CITY_CSV" 2>/dev/null || echo absent)
MILBACK_REDUCED=1 cargo run --release -p milback-bench --bin net_scale_city
after=$(sha256sum "$CITY_CSV" 2>/dev/null || echo absent)
[ "$before" = "$after" ] || { echo "FAIL: reduced mode overwrote $CITY_CSV" >&2; exit 1; }
[ -s "$CITY_CSV" ] || { echo "FAIL: $CITY_CSV missing or empty (regenerate with the net_scale_city binary at full scale)" >&2; exit 1; }
header=$(head -1 "$CITY_CSV")
want="nodes,cells,threads,frames,attempts,delivered,collisions,offered,served,overflow,delivery_rate,energy_per_node_j,mean_snr_db,nodes_per_sec,wall_s,gap_nodes,relayed,mean_relay_hops,offered_packets,dropped_packets,slot_wait_p50_us,slot_wait_p95_us,slot_wait_p99_us"
[ "$header" = "$want" ] || { echo "FAIL: unexpected $CITY_CSV header: $header" >&2; exit 1; }
if grep -qiE '(nan|inf)' "$CITY_CSV"; then
    echo "FAIL: $CITY_CSV carries NaN/inf tokens" >&2; exit 1
fi
rows=$(($(wc -l < "$CITY_CSV") - 1))
[ "$rows" -ge 3 ] || { echo "FAIL: $CITY_CSV has $rows data rows, expected the 10^3..10^5+ sweep" >&2; exit 1; }
# The anchor must carry a completed campaign of at least 10^5 nodes with a
# sane cell count and throughput (the bounded-memory acceptance scale),
# and its AP-service columns must be live: grants offered and served, a
# real backlog (overflow > 0), and served never exceeding offered.
awk -F, 'NR==1 { next } {
    if ($9+0 > $8+0) { printf "FAIL: row %d served %s > offered %s\n", NR, $9, $8 > "/dev/stderr"; exit 1 }
    if ($1 > max) { max = $1; cells = $2; offered = $8; overflow = $10; nps = $14 }
} END {
    if (max < 100000) {
        printf "FAIL: largest campaign is %s nodes, need >= 100000\n", max > "/dev/stderr"; exit 1;
    }
    if (cells < 4 || !(nps > 0)) {
        printf "FAIL: %s-node campaign has cells=%s nodes_per_sec=%s\n", max, cells, nps > "/dev/stderr"; exit 1;
    }
    if (!(offered > 0) || !(overflow > 0)) {
        printf "FAIL: %s-node campaign has offered=%s overflow=%s (service pipeline idle)\n", max, offered, overflow > "/dev/stderr"; exit 1;
    }
}' "$CITY_CSV"

echo "==> [14/16] net_load offered-vs-served sweep (reduced run + full-scale CSV anchor)"
LOAD_CSV=results/extension_net_load.csv
LOAD_WANT="overflow,nodes,offered,served,dropped,deferred,degraded,offered_per_s,served_per_s,delivered,delivery_rate"
# Shared gate for the reduced CSV and the full-scale anchor: exact schema,
# no NaN/inf tokens, and grant conservation on every row (served ≤ offered
# and served + dropped = offered — defer/degrade spill is still served).
check_load_csv() {
    local csv=$1
    local header; header=$(head -1 "$csv")
    [ "$header" = "$LOAD_WANT" ] || { echo "FAIL: unexpected $csv header: $header" >&2; exit 1; }
    if grep -qiE '(nan|inf)' "$csv"; then
        echo "FAIL: $csv carries NaN/inf tokens" >&2; exit 1
    fi
    awk -F, 'NR==1 || NF==0 { next } {
        if ($4+0 > $3+0) { printf "FAIL: row %d served %s > offered %s\n", NR, $4, $3 > "/dev/stderr"; bad=1 }
        if ($4+$5 != $3) { printf "FAIL: row %d served+dropped=%d != offered=%d\n", NR, $4+$5, $3 > "/dev/stderr"; bad=1 }
        if (!($8 >= 0) || !($9 >= 0)) { printf "FAIL: row %d has non-finite load axes\n", NR > "/dev/stderr"; bad=1 }
        if ($1 == "drop" && $5+0 > 0) sheds=1
        if ($1 == "defer" && $6+0 > 0) spills=1
    } END {
        if (bad) exit 1
        if (!sheds || !spills) {
            print "FAIL: no saturated drop row or defer spill — the served-load knee is missing" > "/dev/stderr"; exit 1
        }
    }' "$csv"
}
before=$(sha256sum "$LOAD_CSV" 2>/dev/null || echo absent)
LOAD_OUT=$(mktemp)
MILBACK_REDUCED=1 cargo run --release -p milback-bench --bin net_load | tee "$LOAD_OUT"
after=$(sha256sum "$LOAD_CSV" 2>/dev/null || echo absent)
[ "$before" = "$after" ] || { echo "FAIL: reduced mode overwrote $LOAD_CSV" >&2; exit 1; }
[ -s "$LOAD_CSV" ] || { echo "FAIL: $LOAD_CSV missing or empty (regenerate with the net_load binary at full scale)" >&2; exit 1; }
# The reduced run prints its CSV to stdout; gate that, then the anchor.
REDUCED_CSV=$(mktemp)
sed -n '/^overflow,nodes,/,$p' "$LOAD_OUT" > "$REDUCED_CSV"
[ -s "$REDUCED_CSV" ] || { echo "FAIL: reduced net_load printed no CSV" >&2; exit 1; }
check_load_csv "$REDUCED_CSV"
check_load_csv "$LOAD_CSV"
rm -f "$LOAD_OUT" "$REDUCED_CSV"

echo "==> [15/16] net_relay multi-hop recovery sweep (reduced run + full-scale CSV anchor)"
RELAY_CSV=results/extension_net_relay.csv
RELAY_WANT="gap_fraction,max_hops,nodes,gap_nodes,attempts,delivered,delivery_rate,gap_attempts,gap_delivered,gap_delivery_rate,relayed,forwarded,mean_relay_hops,relay_energy_per_delivered_j,mean_relay_latency_s"
# Shared gate for the reduced CSV and the full-scale anchor: exact schema,
# no NaN/inf tokens, and the recovery shape — gap nodes deliver exactly
# nothing when the hop budget forbids relaying (max_hops = 1) and recover
# past one half of their attempts at budget ≥ 2, with the forwarding
# energy per relayed delivery on the books.
check_relay_csv() {
    local csv=$1
    local header; header=$(head -1 "$csv")
    [ "$header" = "$RELAY_WANT" ] || { echo "FAIL: unexpected $csv header: $header" >&2; exit 1; }
    if grep -qiE '(nan|inf)' "$csv"; then
        echo "FAIL: $csv carries NaN/inf tokens" >&2; exit 1
    fi
    awk -F, 'NR==1 || NF==0 { next } {
        if ($9+0 > $8+0) { printf "FAIL: row %d gap_delivered %s > gap_attempts %s\n", NR, $9, $8 > "/dev/stderr"; bad=1 }
        if ($4+0 > 0 && $2+0 == 1 && $9+0 != 0) {
            printf "FAIL: row %d delivered %s gap packets with no hop budget\n", NR, $9 > "/dev/stderr"; bad=1
        }
        if ($4+0 > 0 && $2+0 >= 2) {
            recovered=1
            if (!($10+0 > 0.5)) { printf "FAIL: row %d gap_delivery_rate %s <= 0.5 at max_hops %s\n", NR, $10, $2 > "/dev/stderr"; bad=1 }
            if (!($14+0 > 0)) { printf "FAIL: row %d relayed for free (energy %s)\n", NR, $14 > "/dev/stderr"; bad=1 }
        }
    } END {
        if (bad) exit 1
        if (!recovered) {
            print "FAIL: no gap row with hop budget >= 2 — the recovery axis is missing" > "/dev/stderr"; exit 1
        }
    }' "$csv"
}
before=$(sha256sum "$RELAY_CSV" 2>/dev/null || echo absent)
RELAY_OUT=$(mktemp)
MILBACK_REDUCED=1 cargo run --release -p milback-bench --bin net_relay | tee "$RELAY_OUT"
after=$(sha256sum "$RELAY_CSV" 2>/dev/null || echo absent)
[ "$before" = "$after" ] || { echo "FAIL: reduced mode overwrote $RELAY_CSV" >&2; exit 1; }
[ -s "$RELAY_CSV" ] || { echo "FAIL: $RELAY_CSV missing or empty (regenerate with the net_relay binary at full scale)" >&2; exit 1; }
REDUCED_RELAY_CSV=$(mktemp)
sed -n '/^gap_fraction,max_hops,/,$p' "$RELAY_OUT" > "$REDUCED_RELAY_CSV"
[ -s "$REDUCED_RELAY_CSV" ] || { echo "FAIL: reduced net_relay printed no CSV" >&2; exit 1; }
check_relay_csv "$REDUCED_RELAY_CSV"
check_relay_csv "$RELAY_CSV"
rm -f "$RELAY_OUT" "$REDUCED_RELAY_CSV"

echo "==> [16/16] net_audit packet-lifecycle sweep (conservation + percentile gates)"
AUDIT_CSV=results/extension_net_audit.csv
LIFECYCLE=results/METRICS_lifecycle.json
AUDIT_WANT="policy,relay,nodes,offered,delivered_direct,delivered_relayed,contention_collision,sdm_inseparable,service_shed,no_relay_route,hop_budget_exhausted,decode_failure,never_scheduled,slot_wait_p50_us,slot_wait_p95_us,slot_wait_p99_us,residence_p50_us,residence_p95_us,residence_p99_us,relay_extra_p50_us,relay_extra_p95_us,relay_extra_p99_us"
# Shared gate for the reduced CSV and the full-scale anchor: exact schema
# (all seven drop-reason columns, present even at zero), no NaN/inf
# tokens, the conservation invariant on every row (offered = delivered +
# Σ drops — the flight recorder's whole point), and ordered percentiles
# on every non-empty sketch.
check_audit_csv() {
    local csv=$1
    local header; header=$(head -1 "$csv")
    [ "$header" = "$AUDIT_WANT" ] || { echo "FAIL: unexpected $csv header: $header" >&2; exit 1; }
    if grep -qiE '(nan|inf)' "$csv"; then
        echo "FAIL: $csv carries NaN/inf tokens" >&2; exit 1
    fi
    awk -F, 'NR==1 || NF==0 { next } {
        drops = $7+$8+$9+$10+$11+$12+$13
        if ($4+0 != $5+$6+drops) { printf "FAIL: row %d offered=%s != delivered=%d + drops=%d\n", NR, $4, $5+$6, drops > "/dev/stderr"; bad=1 }
        if ($14 != "" && ($14+0 > $15+0 || $15+0 > $16+0)) { printf "FAIL: row %d slot-wait percentiles unordered\n", NR > "/dev/stderr"; bad=1 }
        if ($17 != "" && ($17+0 > $18+0 || $18+0 > $19+0)) { printf "FAIL: row %d residence percentiles unordered\n", NR > "/dev/stderr"; bad=1 }
        if ($20 != "" && ($20+0 > $21+0 || $21+0 > $22+0)) { printf "FAIL: row %d relay-extra percentiles unordered\n", NR > "/dev/stderr"; bad=1 }
        rows++
    } END {
        if (bad) exit 1
        if (rows != 8) { printf "FAIL: %d data rows, expected 4 policies x 2 relay legs\n", rows > "/dev/stderr"; exit 1 }
    }' "$csv"
}
before=$(sha256sum "$AUDIT_CSV" 2>/dev/null || echo absent)
AUDIT_OUT=$(mktemp)
MILBACK_REDUCED=1 cargo run --release -p milback-bench --bin net_audit | tee "$AUDIT_OUT"
after=$(sha256sum "$AUDIT_CSV" 2>/dev/null || echo absent)
[ "$before" = "$after" ] || { echo "FAIL: reduced mode overwrote $AUDIT_CSV" >&2; exit 1; }
[ -s "$AUDIT_CSV" ] || { echo "FAIL: $AUDIT_CSV missing or empty (regenerate with the net_audit binary at full scale)" >&2; exit 1; }
REDUCED_AUDIT_CSV=$(mktemp)
sed -n '/^policy,relay,/,$p' "$AUDIT_OUT" > "$REDUCED_AUDIT_CSV"
[ -s "$REDUCED_AUDIT_CSV" ] || { echo "FAIL: reduced net_audit printed no CSV" >&2; exit 1; }
check_audit_csv "$REDUCED_AUDIT_CSV"
check_audit_csv "$AUDIT_CSV"
rm -f "$AUDIT_OUT" "$REDUCED_AUDIT_CSV"
# The reduced run rewrote METRICS_lifecycle.json (flagged reduced, like
# METRICS_mac.json in step 11): validate it cell-by-cell, then regenerate
# the full-scale anchor so the tree is left with "reduced": false.
[ -s "$LIFECYCLE" ] || { echo "FAIL: $LIFECYCLE missing or empty" >&2; exit 1; }
if command -v python3 >/dev/null 2>&1; then
    python3 - "$LIFECYCLE" <<'PY'
import json, math, sys
doc = json.load(open(sys.argv[1]))
assert doc["schema"] == "milback-metrics-lifecycle-v1", doc.get("schema")
for key in ("host", "config", "cells"):
    assert key in doc, f"missing top-level key: {key}"
labels = ("contention_collision", "sdm_inseparable", "service_shed",
          "no_relay_route", "hop_budget_exhausted", "decode_failure",
          "never_scheduled")
assert len(doc["cells"]) == 8, f"expected 8 cells, got {len(doc['cells'])}"
for name, cell in doc["cells"].items():
    drops = cell["drops"]
    assert set(drops) == set(labels), f"{name}: drop table keys {sorted(drops)}"
    total_drops = sum(drops.values())
    delivered = cell["delivered_direct"] + cell["delivered_relayed"]
    assert cell["offered"] == delivered + total_drops, \
        f"{name}: offered {cell['offered']} != delivered {delivered} + drops {total_drops}"
    assert sum(cell["shed_by_stage"].values()) == drops["service_shed"], name
    for sketch in ("slot_wait_us", "service_residence_us", "relay_extra_us"):
        h = cell[sketch]
        assert sum(h["counts"]) == h["count"], f"{name}.{sketch}: bucket counts disagree"
        if h["count"] > 0:
            assert h["p50"] <= h["p95"] <= h["p99"], f"{name}.{sketch}: percentiles unordered"
            for q in ("p50", "p95", "p99"):
                assert math.isfinite(h[q]), f"{name}.{sketch}.{q} non-finite"
        else:
            assert "p50" not in h, f"{name}.{sketch}: percentiles on an empty sketch"
print(f"OK: {sys.argv[1]} conserves across {len(doc['cells'])} cells")
PY
else
    grep -q '"schema": "milback-metrics-lifecycle-v1"' "$LIFECYCLE"
    for label in contention_collision sdm_inseparable service_shed no_relay_route hop_budget_exhausted decode_failure never_scheduled; do
        grep -q "\"$label\":" "$LIFECYCLE" || { echo "FAIL: $LIFECYCLE missing drop label $label" >&2; exit 1; }
    done
    echo "OK: lifecycle metrics carry schema markers (python3 unavailable, shallow check)"
fi
# Leave the tree with the full-scale artifacts, as step 12 does for
# METRICS_mac.json.
./target/release/net_audit >/dev/null
grep -q '"reduced": false' "$LIFECYCLE" || { echo "FAIL: regenerated $LIFECYCLE is not full-scale" >&2; exit 1; }

echo "==> ci.sh: all gates passed"
