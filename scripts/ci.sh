#!/usr/bin/env bash
# CI gate for the MilBack workspace.
#
# Runs the full quality bar in order of increasing cost:
#   1. release build of every target
#   2. the complete test suite (tier-1 umbrella + all crate suites)
#   3. clippy across all targets with warnings promoted to errors
#   4. the DSP micro-benchmark, which emits results/BENCH_dsp.json
#   5. structural validation of the benchmark JSON
#
# Usage: scripts/ci.sh          (from anywhere; cd's to the repo root)
set -euo pipefail

cd "$(dirname "$0")/.."

echo "==> [1/5] cargo build --release --workspace --all-targets"
cargo build --release --workspace --all-targets

echo "==> [2/5] cargo test --release --workspace"
cargo test --release --workspace -q

echo "==> [3/5] cargo clippy --release --workspace --all-targets -- -D warnings"
cargo clippy --release --workspace --all-targets -- -D warnings

echo "==> [4/5] bench_smoke (writes results/BENCH_dsp.json)"
cargo run --release -p milback-bench --bin bench_smoke

echo "==> [5/5] validating results/BENCH_dsp.json"
JSON=results/BENCH_dsp.json
[ -s "$JSON" ] || { echo "FAIL: $JSON missing or empty" >&2; exit 1; }
if command -v python3 >/dev/null 2>&1; then
    python3 - "$JSON" <<'PY'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["schema"] == "milback-bench-dsp-v1", doc.get("schema")
for key in ("host", "fft", "range_doppler", "beat_synthesis",
            "uplink_fig15_reduced", "acceptance"):
    assert key in doc, f"missing top-level key: {key}"
assert doc["fft"], "fft section is empty"
for row in doc["fft"]:
    assert row["cached_oneshot_ns"] > 0 and row["plan_per_call_ns"] > 0, row
assert doc["range_doppler"]["bit_exact"] is True
print(f"OK: {sys.argv[1]} is well-formed "
      f"({len(doc['fft'])} FFT rows, "
      f"fft4096 speedup {doc['acceptance']['fft4096_cached_vs_plan_per_call']:.2f}x)")
PY
else
    # Minimal fallback: the file must at least carry the schema marker and
    # the acceptance block.
    grep -q '"schema": "milback-bench-dsp-v1"' "$JSON"
    grep -q '"acceptance"' "$JSON"
    echo "OK: $JSON carries schema marker (python3 unavailable, shallow check)"
fi

echo "==> ci.sh: all gates passed"
