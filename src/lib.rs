//! # MilBack — a millimeter-wave backscatter network in Rust
//!
//! A full-stack reproduction of *"A Millimeter Wave Backscatter Network for
//! Two-Way Communication and Localization"* (SIGCOMM 2023) — the first
//! mmWave backscatter system with uplink, downlink, localization and
//! orientation sensing — including every substrate it needs (DSP, antenna
//! models, RF components, channel) and the baselines it compares against
//! (mmTag, Millimetro, OmniScatter).
//!
//! ## Layout
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`sigproc`] | `mmwave-sigproc` | complex math, FFT, windows, filters, chirps, statistics |
//! | [`rf`] | `mmwave-rf` | FSA / Van Atta / horn antennas, RF components, propagation, channel |
//! | [`node`] | `milback-node` | the backscatter node: switches, detectors, OAQFM modem, power |
//! | [`ap`] | `milback-ap` | the access point: FMCW, AoA, orientation, uplink receiver |
//! | [`core`] | `milback-core` | protocol, end-to-end links, localization pipeline, SDM |
//! | [`baselines`] | `milback-baselines` | Table-1 comparison systems |
//!
//! ## Quickstart
//!
//! ```
//! use milback::core::{LinkSimulator, Scene, SystemConfig};
//! use milback::sigproc::random::GaussianSource;
//!
//! // A node 3 m from the AP, board rotated 12° off the line of sight.
//! let scene = Scene::single_node(3.0, 12f64.to_radians());
//! let sim = LinkSimulator::new(SystemConfig::milback_default(), scene).unwrap();
//! let mut rng = GaussianSource::new(42);
//!
//! // Downlink: AP → node.
//! let down = sim.downlink(b"hello node", &mut rng).unwrap();
//! assert_eq!(down.decoded, b"hello node");
//!
//! // Uplink: node → AP, piggybacked on the AP's two-tone query.
//! let up = sim.uplink(b"hello ap", &mut rng).unwrap();
//! assert_eq!(up.decoded, b"hello ap");
//! ```
//!
//! See `examples/` for localization, orientation sensing, VR tracking and
//! multi-node scenarios, and `crates/milback-bench` for the binaries that
//! regenerate every figure and table of the paper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use milback_ap as ap;
pub use milback_baselines as baselines;
pub use milback_core as core;
pub use milback_node as node;
pub use mmwave_rf as rf;
pub use mmwave_sigproc as sigproc;
