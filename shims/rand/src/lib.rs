//! In-tree stand-in for the `rand` crate (0.8 API subset).
//!
//! Supplies `rngs::StdRng`, [`SeedableRng`], and the [`Rng`] extension
//! methods the workspace calls (`gen`, `gen_range`, `fill_bytes`). The
//! generator is xoshiro256++ seeded through SplitMix64 — deterministic,
//! fast, and dependency-free — rather than upstream's ChaCha12. Streams
//! therefore differ from crates.io `rand`; everything in this repo that
//! pins RNG-derived values (figure anchors, regression seeds) is pinned
//! against *this* generator.

#![forbid(unsafe_code)]

use std::ops::Range;

/// RNG constructors from seed material (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Uniform-sampling extension methods (subset of `rand::Rng`).
pub trait Rng {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform sample of type `T` over its natural full range.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Uniform sample in `[range.start, range.end)`.
    ///
    /// # Panics
    /// Panics on an empty range.
    fn gen_range<T: UniformSample>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range)
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8])
    where
        Self: Sized,
    {
        for chunk in dest.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }
}

/// Types samplable uniformly over their full domain (stand-in for sampling
/// with `rand::distributions::Standard`).
pub trait Standard {
    /// Draws one value.
    fn sample<R: Rng>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl Standard for u8 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for u32 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for u64 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for f64 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Types samplable uniformly over a half-open range.
pub trait UniformSample: Sized {
    /// Draws one value in `[range.start, range.end)`.
    fn sample_range<R: Rng>(rng: &mut R, range: Range<Self>) -> Self;
}

impl UniformSample for f64 {
    fn sample_range<R: Rng>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "empty range");
        let u = <f64 as Standard>::sample(rng);
        range.start + u * (range.end - range.start)
    }
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformSample for $t {
            fn sample_range<R: Rng>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "empty range");
                let span = (range.end as i128 - range.start as i128) as u128;
                // Multiply-shift rejection-free mapping; bias is < 2^-64 and
                // irrelevant for simulation workloads.
                let v = (rng.next_u64() as u128 * span) >> 64;
                (range.start as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Concrete generators (subset of `rand::rngs`).
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic xoshiro256++ generator standing in for `rand`'s
    /// `StdRng`.
    ///
    /// Seeded via SplitMix64 exactly as the xoshiro reference code
    /// recommends, so every 64-bit seed yields a well-mixed state.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn splitmix64(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                Self::splitmix64(&mut sm),
                Self::splitmix64(&mut sm),
                Self::splitmix64(&mut sm),
                Self::splitmix64(&mut sm),
            ];
            Self { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn f64_samples_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: f64 = r.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn gen_range_bounds_hold() {
        let mut r = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v = r.gen_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&v));
            let n = r.gen_range(5usize..17);
            assert!((5..17).contains(&n));
            let i = r.gen_range(-10i32..10);
            assert!((-10..10).contains(&i));
        }
    }

    #[test]
    fn bools_and_bytes_balanced() {
        let mut r = StdRng::seed_from_u64(3);
        let ones = (0..10_000).filter(|_| r.gen::<bool>()).count();
        assert!((ones as i64 - 5000).abs() < 300, "ones {ones}");
        let mut buf = [0u8; 1024];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
