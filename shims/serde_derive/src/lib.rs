//! No-op `Serialize`/`Deserialize` derive macros for the in-tree serde shim.
//!
//! A derive macro's output is *appended* to the annotated item, so an empty
//! token stream is a legal (and here, intentional) expansion: the item
//! compiles unchanged and no trait impl is generated. The `serde` helper
//! attribute is accepted so `#[serde(...)]` field attributes would not break
//! compilation if introduced later.

use proc_macro::TokenStream;

/// No-op stand-in for `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
