//! In-tree stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind parking_lot's poison-free API:
//! `lock()`/`read()`/`write()` return guards directly instead of `Result`s.
//! A poisoned std lock (a thread panicked while holding it) is recovered by
//! taking the inner guard — matching parking_lot, which has no poisoning at
//! all. Performance characteristics are std's, which is fine for the
//! low-contention plan-cache use in this workspace.

#![forbid(unsafe_code)]

use std::sync;

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;
/// Guard type returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard type returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

/// Poison-free mutex with parking_lot's API shape.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a mutex (usable in `static` initializers).
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Tries to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// Poison-free reader–writer lock with parking_lot's API shape.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a lock (usable in `static` initializers).
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner
            .read()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner
            .write()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    static GLOBAL: Mutex<Vec<u32>> = Mutex::new(Vec::new());

    #[test]
    fn lock_returns_guard_directly() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn const_static_init_works() {
        GLOBAL.lock().push(1);
        assert!(!GLOBAL.lock().is_empty());
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(1);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(*a + *b, 2);
        }
        *l.write() = 9;
        assert_eq!(*l.read(), 9);
    }

    #[test]
    fn try_lock_contention() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
