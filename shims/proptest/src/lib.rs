//! In-tree stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest surface this workspace's property
//! tests use: the [`proptest!`] macro over named-argument strategies, range
//! and `any::<T>()` strategies, `collection::vec`, `sample::select`, and the
//! `prop_assert!`/`prop_assert_eq!`/`prop_assume!` macros. Instead of
//! upstream's adaptive generation and shrinking, each test runs a fixed
//! number of cases ([`test_runner::CASES`]) from a per-test deterministic
//! RNG — failures reproduce exactly on every run, at the cost of no
//! automatic input minimization.

#![forbid(unsafe_code)]

use std::marker::PhantomData;
use std::ops::Range;

pub mod test_runner {
    //! Deterministic case generation for the [`proptest!`](crate::proptest) macro.

    /// Number of cases each property runs.
    pub const CASES: u32 = 64;

    /// xoshiro256++ generator seeded from the test name, so each property
    /// gets an independent, stable input stream.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// Builds the RNG for a named test.
        pub fn from_name(name: &str) -> Self {
            // FNV-1a over the name, then SplitMix64 expansion.
            let mut h: u64 = 0xcbf29ce484222325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
            let mut sm = h;
            let mut next = || {
                sm = sm.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }

        /// Next raw 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        /// Uniform sample in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform integer in `[0, bound)`.
        pub fn below(&mut self, bound: u64) -> u64 {
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }
    }
}

use test_runner::TestRng;

/// A source of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty f64 range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty integer range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128 * span) >> 64;
                (self.start as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct AnyStrategy<T>(PhantomData<T>);

/// Types with a full-domain strategy (subset of `proptest::arbitrary`).
pub trait Arbitrary: Sized {
    /// Draws one value over the natural domain of the type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl Arbitrary for u8 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Arbitrary for u16 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (rng.next_u64() >> 48) as u16
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64()
    }
}

/// Full-domain strategy for `T` (counterpart of `proptest::prelude::any`).
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub mod collection {
    //! Collection strategies (subset of `proptest::collection`).

    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec<T>` with a random length in a range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates vectors whose length is drawn from `size` and whose
    /// elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod sample {
    //! Sampling strategies (subset of `proptest::sample`).

    use super::{Strategy, TestRng};

    /// Strategy drawing uniformly from a fixed set of values.
    #[derive(Debug, Clone)]
    pub struct Select<T> {
        options: Vec<T>,
    }

    /// Uniformly selects one of `options`.
    ///
    /// # Panics
    /// Panics if `options` is empty.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select requires at least one option");
        Select { options }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.options[rng.below(self.options.len() as u64) as usize].clone()
        }
    }
}

pub mod prelude {
    //! Glob-import surface matching `proptest::prelude`.

    pub use crate::{any, prop_assert, prop_assert_eq, prop_assume, proptest, Arbitrary, Strategy};
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
///
/// Each property runs [`test_runner::CASES`] deterministic cases; the first
/// failing case panics with its index and message.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut __proptest_rng =
                    $crate::test_runner::TestRng::from_name(stringify!($name));
                for __proptest_case in 0..$crate::test_runner::CASES {
                    $(
                        let $arg =
                            $crate::Strategy::generate(&($strat), &mut __proptest_rng);
                    )+
                    let __proptest_result: ::std::result::Result<(), ::std::string::String> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(__proptest_msg) = __proptest_result {
                        panic!(
                            "property {} failed at case {}/{}: {}",
                            stringify!($name),
                            __proptest_case + 1,
                            $crate::test_runner::CASES,
                            __proptest_msg
                        );
                    }
                }
            }
        )*
    };
}

/// Fails the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    };
}

/// Fails the current case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let __l = $left;
        let __r = $right;
        if !(__l == __r) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                __l,
                __r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let __l = $left;
        let __r = $right;
        if !(__l == __r) {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    }};
}

/// Skips the current case unless the precondition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

#[cfg(test)]
mod tests {

    proptest! {
        /// Range strategies respect their bounds.
        #[test]
        fn ranges_bounded(x in -3.0f64..5.0, n in 2usize..40, b in 0u8..250) {
            prop_assert!((-3.0..5.0).contains(&x), "x out of range: {x}");
            prop_assert!((2..40).contains(&n));
            prop_assert!(b < 250);
        }

        /// Vec strategy respects element and size constraints.
        #[test]
        fn vec_strategy_shapes(v in crate::collection::vec(0.0f64..1.0, 3..17)) {
            prop_assert!((3..17).contains(&v.len()));
            for e in &v {
                prop_assert!((0.0..1.0).contains(e));
            }
        }

        /// Select draws only from the provided options.
        #[test]
        fn select_draws_members(k in crate::sample::select(vec![3usize, 5, 9])) {
            prop_assert!(k == 3 || k == 5 || k == 9);
        }

        /// prop_assume skips without failing; prop_assert_eq compares.
        #[test]
        fn assume_and_eq(n in 0usize..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    fn deterministic_streams_per_name() {
        use crate::test_runner::TestRng;
        let mut a = TestRng::from_name("alpha");
        let mut b = TestRng::from_name("alpha");
        let mut c = TestRng::from_name("beta");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(TestRng::from_name("alpha").next_u64(), c.next_u64());
    }
}
