//! In-tree stand-in for the `serde` crate.
//!
//! The workspace builds in hermetic environments with no registry access, so
//! this shim supplies the subset of serde the codebase actually touches: the
//! `Serialize`/`Deserialize` trait names and the matching derive macros. The
//! repo only *annotates* types for future wire formats — nothing serializes
//! through serde yet — so the traits are empty markers and the derives are
//! no-ops. Swapping in real serde is a one-line change in the workspace
//! `Cargo.toml` and requires no source edits.

#![forbid(unsafe_code)]

/// Marker counterpart of `serde::Serialize`.
///
/// The no-op derive does not implement this trait; nothing in the workspace
/// takes a `T: Serialize` bound, the name only needs to resolve in imports.
pub trait Serialize {}

/// Marker counterpart of `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
