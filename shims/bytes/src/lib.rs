//! In-tree stand-in for the `bytes` crate.
//!
//! `Bytes` is a cursor over an owned `Vec<u8>` (consuming reads advance the
//! cursor; `Deref` exposes the *remaining* bytes, matching upstream
//! semantics), and `BytesMut` is a growable builder. Upstream's zero-copy
//! reference counting is not reproduced — `split_to` copies — which is
//! irrelevant at the few-hundred-byte frame sizes the MilBack protocol
//! layer handles.

#![forbid(unsafe_code)]

use std::ops::Deref;

/// Consuming big-endian reads over a byte cursor (subset of `bytes::Buf`).
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Reads one byte, advancing the cursor.
    fn get_u8(&mut self) -> u8;
    /// Reads a big-endian `u16`, advancing the cursor.
    fn get_u16(&mut self) -> u16;
    /// Skips `n` bytes.
    fn advance(&mut self, n: usize);
}

/// Appending big-endian writes (subset of `bytes::BufMut`).
pub trait BufMut {
    /// Appends one byte.
    fn put_u8(&mut self, v: u8);
    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16);
    /// Appends a slice.
    fn put_slice(&mut self, src: &[u8]);
}

/// An immutable byte buffer with a read cursor.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
    start: usize,
}

impl Bytes {
    /// Number of unread bytes.
    pub fn len(&self) -> usize {
        self.data.len() - self.start
    }

    /// `true` if no unread bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Splits off and returns the first `n` unread bytes, advancing `self`
    /// past them.
    ///
    /// # Panics
    /// Panics if `n` exceeds the remaining length.
    pub fn split_to(&mut self, n: usize) -> Bytes {
        assert!(n <= self.len(), "split_to out of bounds");
        let head = self.data[self.start..self.start + n].to_vec();
        self.start += n;
        Bytes::from(head)
    }

    /// Copies the unread bytes into a `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self[..].to_vec()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Self { data, start: 0 }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Self {
        Self {
            data: data.to_vec(),
            start: 0,
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data[self.start..]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn get_u8(&mut self) -> u8 {
        let v = self[0];
        self.start += 1;
        v
    }

    fn get_u16(&mut self) -> u16 {
        let v = u16::from_be_bytes([self[0], self[1]]);
        self.start += 2;
        v
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance out of bounds");
        self.start += n;
    }
}

/// A growable byte builder.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty builder with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            data: Vec::with_capacity(cap),
        }
    }

    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, v: u8) {
        self.data.push(v);
    }

    fn put_u16(&mut self, v: u16) {
        self.data.extend_from_slice(&v.to_be_bytes());
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read_roundtrip() {
        let mut b = BytesMut::with_capacity(8);
        b.put_u8(0xAB);
        b.put_u16(0x1234);
        b.put_slice(&[1, 2, 3]);
        assert_eq!(b.len(), 6);
        let mut r = b.freeze();
        assert_eq!(r.len(), 6);
        assert_eq!(r.get_u8(), 0xAB);
        assert_eq!(r.get_u16(), 0x1234);
        assert_eq!(&r[..], &[1, 2, 3]);
    }

    #[test]
    fn deref_tracks_cursor() {
        let mut r = Bytes::from(vec![9, 8, 7]);
        assert_eq!(&r[..r.len() - 1], &[9, 8]);
        r.get_u8();
        assert_eq!(&r[..], &[8, 7]);
        assert_eq!(r.to_vec(), vec![8, 7]);
    }

    #[test]
    fn split_to_advances() {
        let mut r = Bytes::from(vec![1, 2, 3, 4, 5]);
        r.get_u8();
        let head = r.split_to(2);
        assert_eq!(&head[..], &[2, 3]);
        assert_eq!(&r[..], &[4, 5]);
        assert_eq!(r.get_u8(), 4);
    }

    #[test]
    #[should_panic(expected = "split_to out of bounds")]
    fn split_to_rejects_overrun() {
        Bytes::from(vec![1]).split_to(2);
    }
}
