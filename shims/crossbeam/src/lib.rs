//! In-tree stand-in for `crossbeam`.
//!
//! Provides `crossbeam::scope` / `crossbeam::thread::scope` with the
//! upstream signature (`FnOnce(&Scope) -> R`, spawn closures receiving
//! `&Scope` so they can spawn nested work), implemented over
//! `std::thread::scope`. One behavioral difference: if a spawned thread
//! panics and its handle is never joined, std re-raises the panic when the
//! scope exits instead of returning `Err` from `scope` — the DSP worker
//! pools in this workspace always join, so the difference is unobservable
//! here.

#![forbid(unsafe_code)]

pub mod thread {
    //! Scoped threads (subset of `crossbeam::thread`).

    use std::thread as std_thread;

    /// Result type of [`scope`]: `Err` carries a panic payload.
    pub type ScopeResult<R> = std_thread::Result<R>;

    /// A scope handle that can spawn borrowing threads.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std_thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Clone for Scope<'scope, 'env> {
        fn clone(&self) -> Self {
            *self
        }
    }

    impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives the scope so it can
        /// spawn further threads, mirroring crossbeam's signature.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let scope = *self;
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(&scope)),
            }
        }
    }

    /// Join handle for a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std_thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Waits for the thread to finish; `Err` carries its panic payload.
        pub fn join(self) -> std_thread::Result<T> {
            self.inner.join()
        }
    }

    /// Creates a scope in which borrowing threads can be spawned; all
    /// spawned threads are joined before `scope` returns.
    pub fn scope<'env, F, R>(f: F) -> ScopeResult<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std_thread::scope(|s| f(&Scope { inner: s })))
    }
}

pub use thread::scope;

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1u64, 2, 3, 4];
        let mut out = vec![0u64; 4];
        crate::scope(|s| {
            let (a, b) = out.split_at_mut(2);
            let h1 = s.spawn(|_| {
                a[0] = data[0] * 10;
                a[1] = data[1] * 10;
            });
            let h2 = s.spawn(|_| {
                b[0] = data[2] * 10;
                b[1] = data[3] * 10;
            });
            h1.join().unwrap();
            h2.join().unwrap();
        })
        .unwrap();
        assert_eq!(out, vec![10, 20, 30, 40]);
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let r = crate::scope(|s| {
            let h = s.spawn(|inner| {
                let h2 = inner.spawn(|_| 21);
                h2.join().unwrap()
            });
            h.join().unwrap() * 2
        })
        .unwrap();
        assert_eq!(r, 42);
    }

    #[test]
    fn join_surfaces_panics() {
        crate::scope(|s| {
            let h = s.spawn(|_| panic!("boom"));
            assert!(h.join().is_err());
        })
        .unwrap();
    }
}
