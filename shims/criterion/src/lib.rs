//! In-tree stand-in for the `criterion` crate.
//!
//! Supplies the harness API the repo's benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `Throughput`,
//! and the `criterion_group!`/`criterion_main!` macros — backed by a plain
//! wall-clock timer: warm up, run `sample_size` samples of an adaptively
//! sized batch, report the median per-iteration time (plus throughput when
//! declared). No statistical regression analysis or HTML reports; output is
//! one aligned line per benchmark on stdout.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::Instant;

/// Measures one benchmark body via repeated calls to [`Bencher::iter`].
pub struct Bencher {
    sample_size: usize,
    /// Median nanoseconds per iteration of the last `iter` run.
    last_ns_per_iter: f64,
}

impl Bencher {
    /// Times `f`, storing the median per-iteration cost.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm up and size the batch so one sample costs ≥ ~200 µs.
        let mut batch = 1usize;
        loop {
            let t = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            let elapsed = t.elapsed().as_nanos() as f64;
            if elapsed >= 200_000.0 || batch >= 1 << 20 {
                break;
            }
            batch *= 2;
        }
        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size.max(1) {
            let t = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            samples.push(t.elapsed().as_nanos() as f64 / batch as f64);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        self.last_ns_per_iter = samples[samples.len() / 2];
    }
}

/// Declared work per iteration, used to report rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds an id like `name/param`.
    pub fn new(name: impl Into<String>, param: impl Display) -> Self {
        Self {
            id: format!("{}/{}", name.into(), param),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        Self {
            id: name.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        Self { id }
    }
}

fn human_time(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:8.1} ns")
    } else if ns < 1e6 {
        format!("{:8.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:8.2} ms", ns / 1e6)
    } else {
        format!("{:8.2} s ", ns / 1e9)
    }
}

fn report(id: &str, ns: f64, throughput: Option<Throughput>) {
    let rate = match throughput {
        Some(Throughput::Elements(n)) => {
            format!("  {:10.1} Melem/s", n as f64 / ns * 1e3)
        }
        Some(Throughput::Bytes(n)) => {
            format!("  {:10.1} MiB/s", n as f64 / ns * 1e9 / (1024.0 * 1024.0))
        }
        None => String::new(),
    };
    println!("{id:<44} {}{rate}", human_time(ns));
}

/// The benchmark harness (subset of `criterion::Criterion`).
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            sample_size: self.sample_size,
            last_ns_per_iter: 0.0,
        };
        f(&mut b);
        report(&id.id, b.last_ns_per_iter, None);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            throughput: None,
            _parent: self,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the sample count for subsequent benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Declares per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            sample_size: self.sample_size,
            last_ns_per_iter: 0.0,
        };
        f(&mut b);
        report(
            &format!("{}/{}", self.name, id.id),
            b.last_ns_per_iter,
            self.throughput,
        );
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            sample_size: self.sample_size,
            last_ns_per_iter: 0.0,
        };
        f(&mut b, input);
        report(
            &format!("{}/{}", self.name, id.id),
            b.last_ns_per_iter,
            self.throughput,
        );
        self
    }

    /// Ends the group (kept for API compatibility; nothing to flush).
    pub fn finish(self) {}
}

/// Re-export matching `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a benchmark group function (named-config form and short form).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_positive_time() {
        let mut c = Criterion::default().sample_size(3);
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut group = c.benchmark_group("grp");
        group.sample_size(2).throughput(Throughput::Elements(8));
        group.bench_with_input(BenchmarkId::new("param", 8), &8usize, |b, &n| {
            b.iter(|| (0..n).sum::<usize>())
        });
        group.finish();
    }
}
