//! Node firmware: the MCU's state machine through a MilBack packet (§7).
//!
//! The node free-runs until it sees Field-1 energy, counts the triangular
//! chirp bursts to learn the payload direction (3 = it will talk, 2 = it
//! will listen), estimates its orientation from the same bursts, toggles
//! through Field 2 so the AP can localize it, then runs the payload in the
//! signalled direction. This module encodes those transitions explicitly —
//! with illegal transitions rejected rather than silently absorbed — plus
//! the per-state energy ledger.

use crate::power::{NodeActivity, NodePowerModel};
use serde::{Deserialize, Serialize};

/// Payload direction (mirror of the AP-side type, kept node-local so the
/// firmware crate stands alone).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Direction {
    /// Node transmits during the payload.
    Uplink,
    /// Node receives during the payload.
    Downlink,
}

/// Firmware states through one packet.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum State {
    /// Waiting for Field-1 energy, detectors biased.
    Idle,
    /// Counting Field-1 bursts, both ports absorptive.
    SensingField1 {
        /// Bursts seen so far.
        bursts: usize,
    },
    /// Field-1 complete: direction known, orientation estimated.
    Field1Done {
        /// The signalled payload direction.
        direction: Direction,
    },
    /// Toggling through Field 2 for AP-side localization.
    Field2Toggling {
        /// The direction to enter after Field 2.
        direction: Direction,
    },
    /// Receiving a downlink payload.
    ReceivingPayload,
    /// Backscattering an uplink payload.
    TransmittingPayload,
    /// Packet complete; ready to return to Idle.
    PacketDone,
}

/// Events the firmware reacts to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Event {
    /// Detector energy rose above the wake threshold (a burst started).
    BurstStart,
    /// A quiet gap longer than one chirp elapsed (Field 1 ended).
    Field1GapTimeout,
    /// The Field-2 chirp train completed (fixed count, timed).
    Field2Complete,
    /// The payload completed (length is predefined, §7).
    PayloadComplete,
    /// Return to idle.
    Reset,
}

/// Errors from illegal transitions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransitionError {
    /// State the event arrived in.
    pub state_name: &'static str,
    /// The offending event.
    pub event: Event,
}

// `core::fmt` so the firmware compiles without `std` (the workspace MSRV
// predates `core::error::Error`, so the `Error` impl stays std-gated).
impl core::fmt::Display for TransitionError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "event {:?} is illegal in state {}",
            self.event, self.state_name
        )
    }
}

#[cfg(feature = "std")]
impl std::error::Error for TransitionError {}

/// The firmware with its energy ledger.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Firmware {
    state: State,
    power: NodePowerModel,
    energy_j: f64,
    packets_received: usize,
    packets_sent: usize,
}

impl Firmware {
    /// Boots the firmware in `Idle`.
    pub fn new(power: NodePowerModel) -> Self {
        Self {
            state: State::Idle,
            power,
            energy_j: 0.0,
            packets_received: 0,
            packets_sent: 0,
        }
    }

    /// Current state.
    pub fn state(&self) -> State {
        self.state
    }

    /// Total energy consumed so far, joules.
    pub fn energy_j(&self) -> f64 {
        self.energy_j
    }

    /// Packets received / transmitted so far.
    pub fn packet_counts(&self) -> (usize, usize) {
        (self.packets_received, self.packets_sent)
    }

    /// The node activity (for the power model) of the current state.
    pub fn activity(&self) -> NodeActivity {
        match self.state {
            State::Idle | State::PacketDone => NodeActivity::Idle,
            State::SensingField1 { .. } | State::Field1Done { .. } => NodeActivity::Downlink,
            State::Field2Toggling { .. } => NodeActivity::Localization {
                toggle_rate_hz: 10e3,
            },
            State::ReceivingPayload => NodeActivity::Downlink,
            State::TransmittingPayload => NodeActivity::Uplink,
        }
    }

    /// Accumulates energy for `dt` seconds in the current state.
    pub fn tick(&mut self, dt_s: f64) {
        assert!(dt_s >= 0.0);
        self.energy_j += self.power.power_w(self.activity()) * dt_s;
    }

    fn state_name(&self) -> &'static str {
        match self.state {
            State::Idle => "Idle",
            State::SensingField1 { .. } => "SensingField1",
            State::Field1Done { .. } => "Field1Done",
            State::Field2Toggling { .. } => "Field2Toggling",
            State::ReceivingPayload => "ReceivingPayload",
            State::TransmittingPayload => "TransmittingPayload",
            State::PacketDone => "PacketDone",
        }
    }

    /// Drives one event through the state machine.
    pub fn handle(&mut self, event: Event) -> Result<State, TransitionError> {
        use Event::*;
        use State::*;
        let next = match (self.state, event) {
            (Idle, BurstStart) => SensingField1 { bursts: 1 },
            (SensingField1 { bursts }, BurstStart) => SensingField1 { bursts: bursts + 1 },
            (SensingField1 { bursts }, Field1GapTimeout) => match bursts {
                3 => Field1Done {
                    direction: Direction::Uplink,
                },
                2 => Field1Done {
                    direction: Direction::Downlink,
                },
                _ => {
                    // Unknown burst count: abandon the packet.
                    Idle
                }
            },
            // Field 2 begins immediately after Field 1 (the AP's sawtooth
            // train reads as the next burst).
            (Field1Done { direction }, BurstStart) => Field2Toggling { direction },
            (Field2Toggling { direction }, Field2Complete) => match direction {
                Direction::Downlink => ReceivingPayload,
                Direction::Uplink => TransmittingPayload,
            },
            (ReceivingPayload, PayloadComplete) => {
                self.packets_received += 1;
                PacketDone
            }
            (TransmittingPayload, PayloadComplete) => {
                self.packets_sent += 1;
                PacketDone
            }
            (_, Reset) => Idle, // reset is always legal, from any state
            (_, ev) => {
                return Err(TransitionError {
                    state_name: self.state_name(),
                    event: ev,
                })
            }
        };
        self.state = next;
        Ok(next)
    }

    /// Engine-actor helper: drives `event`, then dwells `dwell_s` seconds
    /// in the state the event produced.
    ///
    /// This is the natural shape for a timed actor — the event marks a
    /// boundary on the protocol timeline and the dwell is the interval
    /// until the next one — and it keeps the ledger's accumulation order
    /// identical to the synchronous `handle`-then-`tick` sequence, which
    /// the session parity suite depends on.
    pub fn step(&mut self, event: Event, dwell_s: f64) -> Result<State, TransitionError> {
        let next = self.handle(event)?;
        self.tick(dwell_s);
        Ok(next)
    }

    /// Convenience: runs a full packet's event sequence for a direction,
    /// ticking the energy ledger with the §7/§8 durations.
    ///
    /// `payload_s` is the payload airtime.
    pub fn run_packet(
        &mut self,
        direction: Direction,
        payload_s: f64,
    ) -> Result<(), TransitionError> {
        let bursts = match direction {
            Direction::Uplink => 3,
            Direction::Downlink => 2,
        };
        for _ in 0..bursts {
            self.handle(Event::BurstStart)?;
            self.tick(45e-6);
        }
        self.handle(Event::Field1GapTimeout)?;
        self.handle(Event::BurstStart)?; // Field 2 begins
        self.tick(5.0 * 100e-6);
        self.handle(Event::Field2Complete)?;
        self.tick(payload_s);
        self.handle(Event::PayloadComplete)?;
        self.handle(Event::Reset)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fw() -> Firmware {
        Firmware::new(NodePowerModel::milback_default())
    }

    #[test]
    fn downlink_packet_walkthrough() {
        let mut f = fw();
        f.handle(Event::BurstStart).unwrap();
        f.handle(Event::BurstStart).unwrap();
        assert_eq!(f.state(), State::SensingField1 { bursts: 2 });
        f.handle(Event::Field1GapTimeout).unwrap();
        assert_eq!(
            f.state(),
            State::Field1Done {
                direction: Direction::Downlink
            }
        );
        f.handle(Event::BurstStart).unwrap();
        assert_eq!(
            f.state(),
            State::Field2Toggling {
                direction: Direction::Downlink
            }
        );
        f.handle(Event::Field2Complete).unwrap();
        assert_eq!(f.state(), State::ReceivingPayload);
        f.handle(Event::PayloadComplete).unwrap();
        assert_eq!(f.state(), State::PacketDone);
        assert_eq!(f.packet_counts(), (1, 0));
    }

    #[test]
    fn uplink_signalled_by_three_bursts() {
        let mut f = fw();
        for _ in 0..3 {
            f.handle(Event::BurstStart).unwrap();
        }
        f.handle(Event::Field1GapTimeout).unwrap();
        assert_eq!(
            f.state(),
            State::Field1Done {
                direction: Direction::Uplink
            }
        );
        f.handle(Event::BurstStart).unwrap();
        f.handle(Event::Field2Complete).unwrap();
        assert_eq!(f.state(), State::TransmittingPayload);
    }

    #[test]
    fn unknown_burst_count_abandons_packet() {
        let mut f = fw();
        for _ in 0..5 {
            f.handle(Event::BurstStart).unwrap();
        }
        f.handle(Event::Field1GapTimeout).unwrap();
        assert_eq!(f.state(), State::Idle);
    }

    #[test]
    fn illegal_transitions_are_rejected() {
        let mut f = fw();
        let err = f.handle(Event::PayloadComplete).unwrap_err();
        assert_eq!(err.state_name, "Idle");
        assert!(err.to_string().contains("illegal"));
        // State unchanged after the error.
        assert_eq!(f.state(), State::Idle);
    }

    #[test]
    fn reset_is_always_legal() {
        let mut f = fw();
        f.handle(Event::BurstStart).unwrap();
        f.handle(Event::Reset).unwrap();
        assert_eq!(f.state(), State::Idle);
    }

    #[test]
    fn energy_ledger_matches_power_model() {
        let mut f = fw();
        // One second of downlink payload:
        f.run_packet(Direction::Downlink, 1.0).unwrap();
        // Dominated by 1 s at 18 mW.
        assert!((f.energy_j() - 18e-3).abs() < 1e-3, "{:.4} J", f.energy_j());

        let mut g = fw();
        g.run_packet(Direction::Uplink, 1.0).unwrap();
        assert!((g.energy_j() - 32e-3).abs() < 1e-3, "{:.4} J", g.energy_j());
        assert!(g.energy_j() > f.energy_j());
    }

    #[test]
    fn step_matches_handle_then_tick() {
        let mut a = fw();
        let mut b = fw();
        a.handle(Event::BurstStart).unwrap();
        a.tick(45e-6);
        b.step(Event::BurstStart, 45e-6).unwrap();
        assert_eq!(a.state(), b.state());
        assert_eq!(a.energy_j().to_bits(), b.energy_j().to_bits());
        // A zero dwell leaves the ledger bit-identical.
        let before = b.energy_j().to_bits();
        b.step(Event::BurstStart, 0.0).unwrap();
        assert_eq!(b.energy_j().to_bits(), before);
    }

    #[test]
    fn run_packet_counts_both_directions() {
        let mut f = fw();
        f.run_packet(Direction::Downlink, 1e-3).unwrap();
        f.run_packet(Direction::Uplink, 1e-3).unwrap();
        f.run_packet(Direction::Uplink, 1e-3).unwrap();
        assert_eq!(f.packet_counts(), (1, 2));
    }

    #[test]
    fn activities_map_to_power_states() {
        let mut f = fw();
        assert_eq!(f.activity(), NodeActivity::Idle);
        f.handle(Event::BurstStart).unwrap();
        assert_eq!(f.activity(), NodeActivity::Downlink);
        f.handle(Event::BurstStart).unwrap();
        f.handle(Event::BurstStart).unwrap();
        f.handle(Event::Field1GapTimeout).unwrap();
        f.handle(Event::BurstStart).unwrap();
        assert!(matches!(f.activity(), NodeActivity::Localization { .. }));
        f.handle(Event::Field2Complete).unwrap();
        assert_eq!(f.activity(), NodeActivity::Uplink);
    }
}
