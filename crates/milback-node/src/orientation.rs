//! Node-side orientation sensing (§5.2b, Fig 5).
//!
//! During preamble Field 1 the AP sweeps a *triangular* chirp while both
//! node ports absorb. The node's detector sees a power peak each time the
//! instantaneous chirp frequency crosses the frequency whose beam (for that
//! port) points at the AP — once on the up-sweep and once on the
//! down-sweep. The separation of those two peaks is a one-to-one function
//! of the beam frequency, hence of the node's orientation, and measuring a
//! *time separation* needs no frequency-selective hardware at all: an
//! envelope detector and a slow MCU ADC suffice.

use mmwave_rf::antenna::fsa::{FsaDesign, FsaGainEval, FsaPort};
use mmwave_sigproc::detect::two_strongest_peaks;
use mmwave_sigproc::waveform::{Chirp, ChirpShape};
use serde::{Deserialize, Serialize};

/// Errors from the orientation estimator.
#[derive(Debug, Clone, PartialEq)]
pub enum OrientationError {
    /// The chirp is not triangular.
    NotTriangular,
    /// Fewer than two peaks found in a detector trace.
    PeaksNotFound,
    /// The measured separation maps outside the FSA's scan range.
    OutOfScanRange {
        /// The frequency implied by the measured separation, Hz.
        implied_freq_hz: f64,
    },
}

impl std::fmt::Display for OrientationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OrientationError::NotTriangular => {
                write!(f, "node orientation sensing requires a triangular chirp")
            }
            OrientationError::PeaksNotFound => {
                write!(f, "could not find two power peaks in the detector trace")
            }
            OrientationError::OutOfScanRange { implied_freq_hz } => {
                write!(
                    f,
                    "implied beam frequency {implied_freq_hz:.3e} Hz outside scan range"
                )
            }
        }
    }
}

impl std::error::Error for OrientationError {}

/// One port's orientation estimate with its intermediate measurements,
/// useful for debugging and for the Fig 5 example.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PortEstimate {
    /// Time of the up-sweep peak, seconds into the chirp.
    pub peak_up_s: f64,
    /// Time of the down-sweep peak, seconds into the chirp.
    pub peak_down_s: f64,
    /// Beam frequency implied by the peak separation, Hz.
    pub beam_freq_hz: f64,
    /// Estimated incidence angle, radians.
    pub incidence_rad: f64,
}

/// The node-side orientation estimator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OrientationEstimator {
    /// The triangular chirp the AP transmits in Field 1.
    pub chirp: Chirp,
    /// ADC sample rate at which the traces were captured, Hz.
    pub sample_rate_hz: f64,
    /// Minimum separation between candidate peaks, samples (rejects ripple
    /// on the main lobes).
    pub min_peak_separation: usize,
}

impl OrientationEstimator {
    /// Creates an estimator for the paper's Field-1 chirp sampled by the
    /// node MCU at 1 MS/s (§8, §9.3).
    ///
    /// # Panics
    /// Panics if the chirp is not triangular or the rate is non-positive.
    pub fn new(chirp: Chirp, sample_rate_hz: f64) -> Self {
        assert!(
            chirp.shape == ChirpShape::Triangular,
            "requires a triangular chirp"
        );
        assert!(sample_rate_hz > 0.0);
        Self {
            chirp,
            sample_rate_hz,
            min_peak_separation: 3,
        }
    }

    /// The paper's configuration: 45 µs triangular chirp over 26.5–29.5 GHz
    /// sampled at 1 MS/s.
    pub fn milback_default() -> Self {
        Self::new(Chirp::triangular(26.5e9, 3e9, 45e-6), 1e6)
    }

    /// Estimates orientation from one port's detector trace (one chirp).
    ///
    /// Candidate peak pairs are constrained by the triangular-chirp
    /// geometry: the up-sweep and down-sweep crossings of any frequency
    /// satisfy `t_up + t_down = T` (they are mirror images around the
    /// apex), so multipath ripple peaks that do not pair symmetrically are
    /// rejected rather than silently producing a gross error.
    pub fn estimate_port(
        &self,
        port: FsaPort,
        trace: &[f64],
        fsa: &FsaDesign,
    ) -> Result<PortEstimate, OrientationError> {
        let (p1, p2) = self
            .symmetric_peak_pair(trace)
            .ok_or(OrientationError::PeaksNotFound)?;
        let dt = (p2.position - p1.position) / self.sample_rate_hz;
        let beam_freq = self
            .chirp
            .freq_from_peak_separation(dt)
            .ok_or(OrientationError::NotTriangular)?;
        let incidence =
            fsa.beam_angle_rad(port, beam_freq)
                .ok_or(OrientationError::OutOfScanRange {
                    implied_freq_hz: beam_freq,
                })?;
        Ok(PortEstimate {
            peak_up_s: p1.position / self.sample_rate_hz,
            peak_down_s: p2.position / self.sample_rate_hz,
            beam_freq_hz: beam_freq,
            incidence_rad: incidence,
        })
    }

    /// Full estimate: runs both ports and averages, as §9.3 describes
    /// ("the estimation from two ports is averaged").
    pub fn estimate(
        &self,
        trace_a: &[f64],
        trace_b: &[f64],
        fsa: &FsaDesign,
    ) -> Result<f64, OrientationError> {
        let ea = self.estimate_port(FsaPort::A, trace_a, fsa)?;
        let eb = self.estimate_port(FsaPort::B, trace_b, fsa)?;
        Ok((ea.incidence_rad + eb.incidence_rad) / 2.0)
    }

    /// Finds the strongest pair of local maxima whose midpoint lies at the
    /// chirp apex (`t₁ + t₂ ≈ T`), falling back to the two strongest peaks
    /// when no symmetric pair exists.
    fn symmetric_peak_pair(
        &self,
        trace: &[f64],
    ) -> Option<(mmwave_sigproc::detect::Peak, mmwave_sigproc::detect::Peak)> {
        let total = (self.chirp.duration_s * self.sample_rate_hz).round();
        // Tolerance: 4 ADC samples of asymmetry.
        let tol = 4.0;
        let peaks =
            mmwave_sigproc::detect::find_peaks(trace, f64::NEG_INFINITY, self.min_peak_separation);
        let top = &peaks[..peaks.len().min(6)];
        let mut best: Option<(f64, usize, usize)> = None;
        for i in 0..top.len() {
            for j in (i + 1)..top.len() {
                if (top[i].position + top[j].position - total).abs() <= tol {
                    let score = top[i].value + top[j].value;
                    if best.map(|(s, _, _)| score > s).unwrap_or(true) {
                        best = Some((score, i, j));
                    }
                }
            }
        }
        if let Some((_, i, j)) = best {
            let (a, b) = (top[i], top[j]);
            return Some(if a.position <= b.position {
                (a, b)
            } else {
                (b, a)
            });
        }
        two_strongest_peaks(trace, self.min_peak_separation)
    }

    /// Averages estimates across several repeated chirps (the protocol
    /// sends multiple Field-1 chirps) for noise robustness. Errors if *no*
    /// chirp yields an estimate; individual failures are skipped.
    pub fn estimate_multi(
        &self,
        traces: &[(Vec<f64>, Vec<f64>)],
        fsa: &FsaDesign,
    ) -> Result<f64, OrientationError> {
        let estimates: Vec<f64> = traces
            .iter()
            .filter_map(|(a, b)| self.estimate(a, b, fsa).ok())
            .collect();
        if estimates.is_empty() {
            return Err(OrientationError::PeaksNotFound);
        }
        // Median across chirps: robust to the occasional multipath-induced
        // false pair, which matters near the scan edges.
        Ok(mmwave_sigproc::stats::median(&estimates))
    }

    /// Synthesizes the ideal (noise-free, geometry-only) detector power
    /// trace a port would see for a node at `incidence_rad` — the power
    /// envelope of Fig 5b. Used by tests and the orientation example; the
    /// full-fidelity path (with detector dynamics, ADC and noise) lives in
    /// `milback-core`.
    pub fn ideal_power_trace(
        &self,
        port: FsaPort,
        incidence_rad: f64,
        fsa: &FsaDesign,
        peak_power_w: f64,
    ) -> Vec<f64> {
        // Hoisted per-(port, freq) evaluation: each sample queries the gain
        // at two angles of the *same* frequency (trace point + beam-peak
        // normalization), so the shared FsaFreqEval halves the per-sample
        // constant setup while staying bit-exact with the direct calls.
        let eval = FsaGainEval::new(fsa);
        let n = (self.chirp.duration_s * self.sample_rate_hz).round() as usize;
        (0..n)
            .map(|i| {
                let t = i as f64 / self.sample_rate_hz;
                let f = self.chirp.instantaneous_freq(t);
                let fe = eval.at_freq(port, f);
                peak_power_w * fe.gain_linear(incidence_rad)
                    / fe.gain_linear(fe.beam_angle_rad().unwrap_or(0.0))
                        .max(1e-12)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmwave_sigproc::random::GaussianSource;

    fn setup() -> (OrientationEstimator, FsaDesign) {
        (
            OrientationEstimator::milback_default(),
            FsaDesign::milback_default(),
        )
    }

    /// Gain-shaped trace for a port at a given incidence (normalized).
    fn trace_for(est: &OrientationEstimator, fsa: &FsaDesign, port: FsaPort, psi: f64) -> Vec<f64> {
        let n = (est.chirp.duration_s * est.sample_rate_hz).round() as usize;
        (0..n)
            .map(|i| {
                let t = i as f64 / est.sample_rate_hz;
                let f = est.chirp.instantaneous_freq(t);
                fsa.gain_linear(port, f, psi)
            })
            .collect()
    }

    #[test]
    fn clean_estimate_is_accurate_across_orientations() {
        let (est, fsa) = setup();
        for deg in [-25.0f64, -15.0, -5.0, 5.0, 12.0, 24.0] {
            let psi = deg.to_radians();
            let ta = trace_for(&est, &fsa, FsaPort::A, psi);
            let tb = trace_for(&est, &fsa, FsaPort::B, psi);
            let got = est.estimate(&ta, &tb, &fsa).unwrap();
            assert!(
                (got - psi).abs().to_degrees() < 1.0,
                "at {deg}°: got {:.2}°",
                got.to_degrees()
            );
        }
    }

    #[test]
    fn near_normal_peaks_merge_gracefully() {
        // At ψ close to 0 the two peaks approach the apex; the estimator
        // should still produce a small-angle answer (tolerance is looser —
        // the peaks start to overlap, which the paper's Fig 13a shows as
        // slightly elevated error near 0°).
        let (est, fsa) = setup();
        let psi = 2f64.to_radians();
        let ta = trace_for(&est, &fsa, FsaPort::A, psi);
        let tb = trace_for(&est, &fsa, FsaPort::B, psi);
        let got = est.estimate(&ta, &tb, &fsa).unwrap();
        assert!(
            (got - psi).abs().to_degrees() < 3.0,
            "got {:.2}°",
            got.to_degrees()
        );
    }

    #[test]
    fn noisy_estimate_stays_within_paper_bounds() {
        // §9.3: mean error < 3° — with moderate detector noise and 25
        // trials the estimator should beat that comfortably.
        let (est, fsa) = setup();
        let mut rng = GaussianSource::new(42);
        let psi = (-18f64).to_radians();
        let mut errors = Vec::new();
        for _ in 0..25 {
            let mut ta = trace_for(&est, &fsa, FsaPort::A, psi);
            let mut tb = trace_for(&est, &fsa, FsaPort::B, psi);
            let peak = ta.iter().cloned().fold(0.0, f64::max);
            rng.add_real_noise(&mut ta, (peak / 20.0).powi(2));
            rng.add_real_noise(&mut tb, (peak / 20.0).powi(2));
            let got = est.estimate(&ta, &tb, &fsa).unwrap();
            errors.push((got - psi).abs().to_degrees());
        }
        let mean_err = mmwave_sigproc::stats::mean(&errors);
        assert!(mean_err < 3.0, "mean error {mean_err:.2}°");
    }

    #[test]
    fn port_estimates_agree() {
        let (est, fsa) = setup();
        let psi = 10f64.to_radians();
        let ta = trace_for(&est, &fsa, FsaPort::A, psi);
        let tb = trace_for(&est, &fsa, FsaPort::B, psi);
        let ea = est.estimate_port(FsaPort::A, &ta, &fsa).unwrap();
        let eb = est.estimate_port(FsaPort::B, &tb, &fsa).unwrap();
        assert!((ea.incidence_rad - eb.incidence_rad).abs().to_degrees() < 1.0);
        // Port A and B see mirrored beam frequencies around the normal.
        let f0 = fsa.normal_incidence_freq_hz();
        assert!((ea.beam_freq_hz > f0) != (eb.beam_freq_hz > f0));
    }

    #[test]
    fn peak_separation_shrinks_with_beam_frequency() {
        let (est, fsa) = setup();
        // Port A: higher incidence → higher beam frequency → closer peaks.
        let t1 = trace_for(&est, &fsa, FsaPort::A, (-20f64).to_radians());
        let t2 = trace_for(&est, &fsa, FsaPort::A, 20f64.to_radians());
        let e1 = est.estimate_port(FsaPort::A, &t1, &fsa).unwrap();
        let e2 = est.estimate_port(FsaPort::A, &t2, &fsa).unwrap();
        let sep1 = e1.peak_down_s - e1.peak_up_s;
        let sep2 = e2.peak_down_s - e2.peak_up_s;
        assert!(sep2 < sep1, "sep {sep2:.2e} !< {sep1:.2e}");
    }

    #[test]
    fn multi_chirp_averaging_reduces_error() {
        let (est, fsa) = setup();
        let mut rng = GaussianSource::new(7);
        let psi = 14f64.to_radians();
        let noisy = |rng: &mut GaussianSource| {
            let mut ta = trace_for(&est, &fsa, FsaPort::A, psi);
            let mut tb = trace_for(&est, &fsa, FsaPort::B, psi);
            let peak = ta.iter().cloned().fold(0.0, f64::max);
            rng.add_real_noise(&mut ta, (peak / 12.0).powi(2));
            rng.add_real_noise(&mut tb, (peak / 12.0).powi(2));
            (ta, tb)
        };
        let mut single_errs = Vec::new();
        let mut multi_errs = Vec::new();
        for _ in 0..20 {
            let traces: Vec<_> = (0..5).map(|_| noisy(&mut rng)).collect();
            let single = est.estimate(&traces[0].0, &traces[0].1, &fsa).unwrap();
            let multi = est.estimate_multi(&traces, &fsa).unwrap();
            single_errs.push((single - psi).abs());
            multi_errs.push((multi - psi).abs());
        }
        let s = mmwave_sigproc::stats::mean(&single_errs);
        let m = mmwave_sigproc::stats::mean(&multi_errs);
        assert!(m <= s, "multi-chirp {m} should not exceed single {s}");
    }

    #[test]
    fn flat_trace_fails_cleanly() {
        let (est, fsa) = setup();
        // min_peak_separation of a flat-noise trace: peaks exist, but the
        // implied geometry lands out of range or is nonsense. A strictly
        // flat trace has no interior local maxima at all.
        let err = est
            .estimate(&vec![1.0; 45], &vec![1.0; 45], &fsa)
            .unwrap_err();
        assert_eq!(err, OrientationError::PeaksNotFound);
    }

    #[test]
    #[should_panic(expected = "triangular")]
    fn rejects_sawtooth_chirp() {
        OrientationEstimator::new(Chirp::sawtooth(26.5e9, 3e9, 18e-6), 1e6);
    }

    #[test]
    fn ideal_power_trace_has_two_peaks_off_normal() {
        let (est, fsa) = setup();
        let tr = est.ideal_power_trace(FsaPort::A, 15f64.to_radians(), &fsa, 1e-6);
        let peaks = two_strongest_peaks(&tr, 3).unwrap();
        assert!(peaks.1.position > peaks.0.position);
        // Symmetric around the apex (sample 22.5 of 45 at 1 MS/s).
        let mid = tr.len() as f64 / 2.0;
        let c1 = mid - peaks.0.position;
        let c2 = peaks.1.position - mid;
        assert!((c1 - c2).abs() < 2.0, "asymmetric: {c1} vs {c2}");
    }

    #[test]
    fn error_display() {
        assert!(OrientationError::NotTriangular
            .to_string()
            .contains("triangular"));
        assert!(OrientationError::PeaksNotFound
            .to_string()
            .contains("peaks"));
        assert!(OrientationError::OutOfScanRange {
            implied_freq_hz: 1e9
        }
        .to_string()
        .contains("scan range"));
    }
}
