//! OAQFM downlink demodulation at the node (§6.1–6.2).
//!
//! The AP keys two tones on/off; the node's two FSA ports each capture one
//! tone and deliver it to a dedicated envelope detector. The MCU samples
//! both detector outputs, integrates over each symbol period, slices
//! against per-port thresholds and reassembles two bits per symbol. At
//! normal incidence (f_A = f_B) the scheme degenerates to single-tone OOK
//! on one detector.

use mmwave_sigproc::detect::integrate_and_dump;
use mmwave_sigproc::stats::{mean, percentile};
use mmwave_sigproc::waveform::OaqfmSymbol;
use serde::{Deserialize, Serialize};

/// Errors the demodulator can report.
#[derive(Debug, Clone, PartialEq)]
pub enum DemodError {
    /// Traces for the two ports have different lengths.
    LengthMismatch {
        /// Port-A trace length.
        a: usize,
        /// Port-B trace length.
        b: usize,
    },
    /// The trace is shorter than one symbol.
    TraceTooShort,
    /// Calibration found no usable on/off contrast.
    NoContrast,
}

impl std::fmt::Display for DemodError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DemodError::LengthMismatch { a, b } => {
                write!(f, "port traces differ in length: {a} vs {b}")
            }
            DemodError::TraceTooShort => write!(f, "trace shorter than one symbol"),
            DemodError::NoContrast => write!(f, "no on/off contrast found during calibration"),
        }
    }
}

impl std::error::Error for DemodError {}

/// Per-port decision thresholds (volts at the detector output).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Thresholds {
    /// Port-A slicing threshold.
    pub a: f64,
    /// Port-B slicing threshold.
    pub b: f64,
}

/// Estimates a slicing threshold from a trace that is known to contain
/// both on and off symbols: midway between the bright and dark levels
/// (robust 90th/10th percentiles rather than min/max).
///
/// Returns `Err(NoContrast)` when the levels are indistinguishable.
pub fn calibrate_threshold(trace: &[f64]) -> Result<f64, DemodError> {
    if trace.is_empty() {
        return Err(DemodError::TraceTooShort);
    }
    let hi = percentile(trace, 90.0);
    let lo = percentile(trace, 10.0);
    if hi - lo <= 0.0 {
        return Err(DemodError::NoContrast);
    }
    Ok((hi + lo) / 2.0)
}

/// Reusable buffers for the demodulation hot path: per-port symbol
/// energies. One `DemodScratch` per worker plus the `*_into` entry points
/// make repeated demodulation allocation-free past the high-water mark,
/// with decisions identical to the allocating paths.
#[derive(Debug, Default)]
pub struct DemodScratch {
    /// Port-A symbol energies.
    ea: Vec<f64>,
    /// Port-B symbol energies.
    eb: Vec<f64>,
}

impl DemodScratch {
    /// An empty workspace; buffers are sized lazily on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// The node's OAQFM downlink demodulator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OaqfmDemodulator {
    /// Samples per symbol at the trace rate.
    pub samples_per_symbol: usize,
    /// Fraction of each symbol period discarded at the start to let the
    /// detector's RC settle (0..1).
    pub guard_fraction: f64,
}

impl OaqfmDemodulator {
    /// Creates a demodulator.
    ///
    /// # Panics
    /// Panics for zero samples per symbol or a guard outside `[0, 0.9]`.
    pub fn new(samples_per_symbol: usize) -> Self {
        assert!(samples_per_symbol > 0);
        Self {
            samples_per_symbol,
            guard_fraction: 0.25,
        }
    }

    /// Sets the settling guard fraction.
    pub fn with_guard(mut self, guard_fraction: f64) -> Self {
        assert!((0.0..=0.9).contains(&guard_fraction), "guard out of range");
        self.guard_fraction = guard_fraction;
        self
    }

    /// Integrates the post-guard portion of each symbol period.
    fn symbol_energies_into(&self, trace: &[f64], out: &mut Vec<f64>) {
        let n = self.samples_per_symbol;
        let guard = ((n as f64) * self.guard_fraction) as usize;
        out.clear();
        out.extend(trace.chunks_exact(n).map(|c| mean(&c[guard..])));
    }

    /// Demodulates OAQFM symbols from the two detector traces.
    ///
    /// Thresholds may come from [`calibrate_threshold`] on a known
    /// preamble, or from the payload itself when it is long and balanced.
    pub fn demodulate(
        &self,
        trace_a: &[f64],
        trace_b: &[f64],
        thresholds: Thresholds,
    ) -> Result<Vec<OaqfmSymbol>, DemodError> {
        let mut scratch = DemodScratch::new();
        let mut out = Vec::new();
        self.demodulate_into(trace_a, trace_b, thresholds, &mut scratch, &mut out)?;
        Ok(out)
    }

    /// [`Self::demodulate`] into a caller-owned symbol buffer (cleared
    /// first), reusing a [`DemodScratch`] for the per-port energies — the
    /// allocation-free form for per-trial loops. Decisions are identical
    /// to the allocating path.
    pub fn demodulate_into(
        &self,
        trace_a: &[f64],
        trace_b: &[f64],
        thresholds: Thresholds,
        scratch: &mut DemodScratch,
        out: &mut Vec<OaqfmSymbol>,
    ) -> Result<(), DemodError> {
        if trace_a.len() != trace_b.len() {
            return Err(DemodError::LengthMismatch {
                a: trace_a.len(),
                b: trace_b.len(),
            });
        }
        if trace_a.len() < self.samples_per_symbol {
            return Err(DemodError::TraceTooShort);
        }
        self.symbol_energies_into(trace_a, &mut scratch.ea);
        self.symbol_energies_into(trace_b, &mut scratch.eb);
        out.clear();
        out.extend(
            scratch
                .ea
                .iter()
                .zip(&scratch.eb)
                .map(|(&va, &vb)| OaqfmSymbol {
                    tone_a: va > thresholds.a,
                    tone_b: vb > thresholds.b,
                }),
        );
        Ok(())
    }

    /// Self-calibrating demodulation: derives thresholds from the traces
    /// themselves (requires the payload to contain both levels per port).
    pub fn demodulate_auto(
        &self,
        trace_a: &[f64],
        trace_b: &[f64],
    ) -> Result<Vec<OaqfmSymbol>, DemodError> {
        let mut scratch = DemodScratch::new();
        let mut out = Vec::new();
        self.demodulate_auto_into(trace_a, trace_b, &mut scratch, &mut out)?;
        Ok(out)
    }

    /// [`Self::demodulate_auto`] into caller-owned buffers — the
    /// allocation-free form.
    pub fn demodulate_auto_into(
        &self,
        trace_a: &[f64],
        trace_b: &[f64],
        scratch: &mut DemodScratch,
        out: &mut Vec<OaqfmSymbol>,
    ) -> Result<(), DemodError> {
        let thresholds = Thresholds {
            a: calibrate_threshold(trace_a)?,
            b: calibrate_threshold(trace_b)?,
        };
        self.demodulate_into(trace_a, trace_b, thresholds, scratch, out)
    }

    /// Single-tone OOK fallback for normal incidence (§6.2): one bit per
    /// symbol from one detector trace.
    pub fn demodulate_ook(&self, trace: &[f64], threshold: f64) -> Result<Vec<bool>, DemodError> {
        let mut scratch = DemodScratch::new();
        let mut out = Vec::new();
        self.demodulate_ook_into(trace, threshold, &mut scratch, &mut out)?;
        Ok(out)
    }

    /// [`Self::demodulate_ook`] into a caller-owned bit buffer (cleared
    /// first) — the allocation-free form.
    pub fn demodulate_ook_into(
        &self,
        trace: &[f64],
        threshold: f64,
        scratch: &mut DemodScratch,
        out: &mut Vec<bool>,
    ) -> Result<(), DemodError> {
        if trace.len() < self.samples_per_symbol {
            return Err(DemodError::TraceTooShort);
        }
        self.symbol_energies_into(trace, &mut scratch.ea);
        out.clear();
        out.extend(scratch.ea.iter().map(|&v| v > threshold));
        Ok(())
    }
}

/// Measured downlink signal quality at the MCU input, as reported in Fig 14.
///
/// SINR rather than SNR: the sidelobes of one port's beam leak the *other*
/// port's tone into the detector, which is interference that no amount of
/// averaging removes (§9.4).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SinrReport {
    /// Signal power at the detector output (V² of the keyed tone's swing).
    pub signal_power: f64,
    /// Interference power from the opposite port's tone leakage.
    pub interference_power: f64,
    /// Noise power (detector output noise over the decision bandwidth).
    pub noise_power: f64,
}

impl SinrReport {
    /// SINR in dB.
    pub fn sinr_db(&self) -> f64 {
        10.0 * (self.signal_power / (self.interference_power + self.noise_power)).log10()
    }

    /// SNR in dB (ignoring interference) — what a naive report would show.
    pub fn snr_db(&self) -> f64 {
        10.0 * (self.signal_power / self.noise_power).log10()
    }
}

/// Integrate-and-dump helper re-exported for symbol-rate analysis.
pub fn symbol_means(trace: &[f64], samples_per_symbol: usize) -> Vec<f64> {
    integrate_and_dump(trace, samples_per_symbol)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmwave_sigproc::waveform::{bytes_to_symbols, ook_envelope, symbols_to_bytes};

    /// Builds clean per-port traces for a symbol sequence.
    fn traces_for(symbols: &[OaqfmSymbol], sps: usize, v_on: f64) -> (Vec<f64>, Vec<f64>) {
        let la: Vec<f64> = symbols
            .iter()
            .map(|s| if s.tone_a { v_on } else { 0.0 })
            .collect();
        let lb: Vec<f64> = symbols
            .iter()
            .map(|s| if s.tone_b { v_on } else { 0.0 })
            .collect();
        (ook_envelope(&la, sps), ook_envelope(&lb, sps))
    }

    #[test]
    fn clean_roundtrip_all_symbols() {
        let syms: Vec<OaqfmSymbol> = (0..4).map(OaqfmSymbol::from_bits).collect();
        let (ta, tb) = traces_for(&syms, 10, 0.01);
        let demod = OaqfmDemodulator::new(10);
        let out = demod
            .demodulate(&ta, &tb, Thresholds { a: 0.005, b: 0.005 })
            .unwrap();
        assert_eq!(out, syms);
    }

    #[test]
    fn byte_payload_roundtrip() {
        let payload = vec![0xDE, 0xAD, 0xBE, 0xEF, 0x00, 0xFF];
        let syms = bytes_to_symbols(&payload);
        let (ta, tb) = traces_for(&syms, 8, 0.02);
        let demod = OaqfmDemodulator::new(8);
        let out = demod.demodulate_auto(&ta, &tb).unwrap();
        assert_eq!(symbols_to_bytes(&out), payload);
    }

    #[test]
    fn auto_calibration_matches_manual() {
        let syms = bytes_to_symbols(&[0x5A, 0xC3]);
        let (ta, tb) = traces_for(&syms, 6, 0.015);
        let demod = OaqfmDemodulator::new(6);
        let auto = demod.demodulate_auto(&ta, &tb).unwrap();
        let manual = demod
            .demodulate(
                &ta,
                &tb,
                Thresholds {
                    a: 0.0075,
                    b: 0.0075,
                },
            )
            .unwrap();
        assert_eq!(auto, manual);
    }

    #[test]
    fn survives_noise_at_reasonable_sinr() {
        use mmwave_sigproc::random::GaussianSource;
        let mut rng = GaussianSource::new(77);
        let payload: Vec<u8> = rng.bytes(64);
        let syms = bytes_to_symbols(&payload);
        let v_on = 0.01;
        let (mut ta, mut tb) = traces_for(&syms, 16, v_on);
        // 20 dB SNR on the voltage swing.
        let noise_power = (v_on / 2.0) * (v_on / 2.0) / 100.0;
        rng.add_real_noise(&mut ta, noise_power);
        rng.add_real_noise(&mut tb, noise_power);
        let demod = OaqfmDemodulator::new(16).with_guard(0.0);
        let out = demod.demodulate_auto(&ta, &tb).unwrap();
        assert_eq!(
            symbols_to_bytes(&out),
            payload,
            "errors at 20 dB symbol SNR"
        );
    }

    #[test]
    fn guard_skips_rc_settling() {
        // Symbols shaped by an RC with ~1/4-symbol rise: with the guard the
        // decisions are still perfect.
        use mmwave_sigproc::filter::RcFilter;
        let syms = bytes_to_symbols(&[0xA7, 0x31, 0xF0]);
        let (ta, tb) = traces_for(&syms, 20, 0.01);
        let mut rc1 = RcFilter::from_rise_time(5.0, 1.0); // units: samples
        let mut rc2 = RcFilter::from_rise_time(5.0, 1.0);
        let ta: Vec<f64> = rc1.process(&ta);
        let tb: Vec<f64> = rc2.process(&tb);
        let demod = OaqfmDemodulator::new(20).with_guard(0.4);
        let out = demod.demodulate_auto(&ta, &tb).unwrap();
        assert_eq!(symbols_to_bytes(&out), vec![0xA7, 0x31, 0xF0]);
    }

    #[test]
    fn ook_fallback_decodes_bits() {
        let bits = [true, false, true, true, false];
        let levels: Vec<f64> = bits.iter().map(|&b| if b { 0.02 } else { 0.0 }).collect();
        let trace = ook_envelope(&levels, 12);
        let demod = OaqfmDemodulator::new(12);
        let out = demod.demodulate_ook(&trace, 0.01).unwrap();
        assert_eq!(out, bits);
    }

    #[test]
    fn length_mismatch_reported() {
        let demod = OaqfmDemodulator::new(4);
        let err = demod
            .demodulate(&[0.0; 8], &[0.0; 12], Thresholds { a: 0.1, b: 0.1 })
            .unwrap_err();
        assert_eq!(err, DemodError::LengthMismatch { a: 8, b: 12 });
    }

    #[test]
    fn too_short_reported() {
        let demod = OaqfmDemodulator::new(100);
        let err = demod.demodulate_ook(&[0.0; 10], 0.5).unwrap_err();
        assert_eq!(err, DemodError::TraceTooShort);
    }

    #[test]
    fn flat_trace_has_no_contrast() {
        assert_eq!(
            calibrate_threshold(&[0.5; 64]).unwrap_err(),
            DemodError::NoContrast
        );
    }

    #[test]
    fn sinr_report_math() {
        let r = SinrReport {
            signal_power: 100.0,
            interference_power: 5.0,
            noise_power: 5.0,
        };
        assert!((r.sinr_db() - 10.0).abs() < 1e-9);
        assert!((r.snr_db() - 13.0103).abs() < 1e-3);
        assert!(r.snr_db() > r.sinr_db());
    }

    #[test]
    fn error_display_strings() {
        let e = DemodError::LengthMismatch { a: 1, b: 2 };
        assert!(e.to_string().contains("differ"));
        assert!(DemodError::TraceTooShort.to_string().contains("shorter"));
        assert!(DemodError::NoContrast.to_string().contains("contrast"));
    }
}
