//! The MilBack backscatter node: a dual-port FSA, two SPDT switches, two
//! envelope detectors and an MCU ADC (Fig 4).
//!
//! The node contains **no** mmWave actives — no amplifier, mixer,
//! oscillator or phased array. Everything it does reduces to (a) choosing
//! each port's switch position and (b) reading the two detector voltages.

use crate::mode::PortMode;
use mmwave_rf::antenna::fsa::{DualPortFsa, FsaGainEval, FsaPort};
use mmwave_rf::components::{Adc, EnvelopeDetector, SpdtSwitch};
use mmwave_sigproc::random::GaussianSource;
use serde::{Deserialize, Serialize};

/// Hardware description of a MilBack node.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NodeHardware {
    /// The passive dual-port FSA.
    pub fsa: DualPortFsa,
    /// Switch behind port A.
    pub switch_a: SpdtSwitch,
    /// Switch behind port B.
    pub switch_b: SpdtSwitch,
    /// Envelope detector on port A.
    pub detector_a: EnvelopeDetector,
    /// Envelope detector on port B.
    pub detector_b: EnvelopeDetector,
    /// The MCU's ADC (shared, sampling both detector outputs).
    pub adc: Adc,
}

impl NodeHardware {
    /// The paper's prototype: default FSA, ADRF5020 switches, ADL6010
    /// detectors, MSP430-class ADC (§8).
    pub fn milback_default() -> Self {
        Self {
            fsa: DualPortFsa::milback_default(),
            switch_a: SpdtSwitch::adrf5020(),
            switch_b: SpdtSwitch::adrf5020(),
            detector_a: EnvelopeDetector::adl6010(),
            detector_b: EnvelopeDetector::adl6010(),
            adc: Adc::msp430(),
        }
    }

    /// The switch serving a port.
    pub fn switch(&self, port: FsaPort) -> &SpdtSwitch {
        match port {
            FsaPort::A => &self.switch_a,
            FsaPort::B => &self.switch_b,
        }
    }

    /// The detector serving a port.
    pub fn detector(&self, port: FsaPort) -> &EnvelopeDetector {
        match port {
            FsaPort::A => &self.detector_a,
            FsaPort::B => &self.detector_b,
        }
    }

    /// Amplitude reflection coefficient presented by a port in a mode.
    ///
    /// Reflective: short circuit behind the switch's round-trip insertion
    /// loss. Absorptive: the detector's residual mismatch only.
    pub fn reflection_amplitude(&self, port: FsaPort, mode: PortMode) -> f64 {
        let sw = self.switch(port);
        match mode {
            PortMode::Reflective => sw.reflective_gamma(),
            PortMode::Absorptive => sw.absorptive_gamma(),
        }
    }

    /// Differential reflection amplitude between the two modes — the
    /// backscatter *modulation depth* that sets uplink signal strength.
    pub fn modulation_depth(&self, port: FsaPort) -> f64 {
        self.reflection_amplitude(port, PortMode::Reflective)
            - self.reflection_amplitude(port, PortMode::Absorptive)
    }

    /// Fraction of incident power delivered to the detector in absorptive
    /// mode (through the switch's insertion loss, minus the mismatch
    /// residual).
    pub fn absorption_efficiency(&self, port: FsaPort) -> f64 {
        let sw = self.switch(port);
        let through = 10f64.powf(-sw.insertion_loss_db / 10.0);
        let gamma = sw.absorptive_gamma();
        through * (1.0 - gamma * gamma)
    }

    /// Simulates the detector voltage traces for both ports given the RF
    /// power (watts) arriving at each port over time at `sample_rate_hz`.
    ///
    /// Applies the switch insertion path, the detector square law and RC
    /// dynamics, and adds detector output noise appropriate for the trace
    /// bandwidth (one-sided, up to Nyquist).
    ///
    /// # Panics
    /// Panics if the traces differ in length.
    pub fn detector_traces(
        &self,
        power_a_w: &[f64],
        power_b_w: &[f64],
        sample_rate_hz: f64,
        noise: &mut GaussianSource,
    ) -> (Vec<f64>, Vec<f64>) {
        let mut scratch = NodeScratch::new();
        let mut va = Vec::new();
        let mut vb = Vec::new();
        self.detector_traces_into(
            power_a_w,
            power_b_w,
            sample_rate_hz,
            noise,
            &mut scratch,
            &mut va,
            &mut vb,
        );
        (va, vb)
    }

    /// [`Self::detector_traces`] into caller-owned buffers, using a
    /// [`NodeScratch`] for the intermediate scaled-power trace — the
    /// allocation-free form for per-trial hot loops. Noise draws happen in
    /// the same order (port A fully, then port B), so results are
    /// bit-identical to the allocating path for the same RNG state.
    ///
    /// # Panics
    /// Panics if the traces differ in length.
    #[allow(clippy::too_many_arguments)]
    pub fn detector_traces_into(
        &self,
        power_a_w: &[f64],
        power_b_w: &[f64],
        sample_rate_hz: f64,
        noise: &mut GaussianSource,
        scratch: &mut NodeScratch,
        va: &mut Vec<f64>,
        vb: &mut Vec<f64>,
    ) {
        assert_eq!(
            power_a_w.len(),
            power_b_w.len(),
            "port traces differ in length"
        );
        let dt = 1.0 / sample_rate_hz;
        let eff_a = self.absorption_efficiency(FsaPort::A);
        let eff_b = self.absorption_efficiency(FsaPort::B);
        scratch.scaled.clear();
        scratch.scaled.extend(power_a_w.iter().map(|p| p * eff_a));
        self.detector_a.trace_into(&scratch.scaled, dt, va);
        scratch.scaled.clear();
        scratch.scaled.extend(power_b_w.iter().map(|p| p * eff_b));
        self.detector_b.trace_into(&scratch.scaled, dt, vb);
        let bw = sample_rate_hz / 2.0;
        let na = self.detector_a.output_noise_v(bw);
        let nb = self.detector_b.output_noise_v(bw);
        noise.add_real_noise(va, na * na);
        noise.add_real_noise(vb, nb * nb);
    }

    /// Samples a dense detector trace with the MCU ADC (decimation +
    /// quantization), as the firmware would see it.
    pub fn mcu_sample(&self, trace: &[f64], trace_rate_hz: f64) -> Vec<f64> {
        self.adc.sample_trace(trace, trace_rate_hz)
    }

    /// [`Self::mcu_sample`] into a caller-owned buffer (cleared first) —
    /// identical values, no allocation past the high-water mark.
    pub fn mcu_sample_into(&self, trace: &[f64], trace_rate_hz: f64, out: &mut Vec<f64>) {
        self.adc.sample_trace_into(trace, trace_rate_hz, out);
    }

    /// The complex backscatter coefficient the node presents on a given
    /// port for an incident tone, folding FSA gain at the tone's
    /// frequency/incidence and the switch state: `√(G²)·Γ` (amplitude).
    ///
    /// `incidence_rad` is the AP's angle off the FSA broadside.
    pub fn backscatter_amplitude(
        &self,
        port: FsaPort,
        mode: PortMode,
        freq_hz: f64,
        incidence_rad: f64,
    ) -> f64 {
        let g = self.fsa.gain_linear(port, freq_hz, incidence_rad);
        g * self.reflection_amplitude(port, mode)
    }
}

/// Reusable buffers for the node's trace-synthesis hot path.
///
/// The per-call `Vec` churn of [`NodeHardware::detector_traces`] (the
/// scaled per-port power traces) moves here: one `NodeScratch` per worker
/// plus the `*_into` entry points make the steady state allocation-free,
/// with results bit-identical to the allocating paths.
#[derive(Debug, Default)]
pub struct NodeScratch {
    /// Scaled per-port power trace (reused for both ports in turn).
    scaled: Vec<f64>,
}

impl NodeScratch {
    /// An empty workspace; buffers grow lazily to the trace high-water mark.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Per-port RF powers delivered to the node (the channel's output, the
/// node's input), at one instant.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct PortPowers {
    /// RF power arriving at port A, watts.
    pub a_w: f64,
    /// RF power arriving at port B, watts.
    pub b_w: f64,
}

/// Computes the per-port received powers for a set of incident tones.
///
/// Each tone contributes through the dual-port coupling model (own-beam
/// gain plus sidelobe/feed leakage into the other port). `tone` entries are
/// `(freq_hz, incident_power_w)` where `incident_power_w` is the power an
/// isotropic antenna would capture at the node's location (i.e. TX EIRP ×
/// path loss × λ²/4π absorbed into the caller's budget).
pub fn port_powers_for_tones(
    fsa: &DualPortFsa,
    incidence_rad: f64,
    tones: &[(f64, f64)],
) -> PortPowers {
    let mut p = PortPowers::default();
    for &(f, pw) in tones {
        let (ca, cb) = fsa.port_coupling_linear(f, incidence_rad);
        p.a_w += pw * ca;
        p.b_w += pw * cb;
    }
    p
}

/// [`port_powers_for_tones`] through a memoizing [`FsaGainEval`] (built with
/// [`FsaGainEval::for_dual`]); bit-exact with the direct path, but repeated
/// `(freq, incidence)` queries — per-symbol downlink coupling, dense
/// orientation traces re-run across trials — hit the cache instead of
/// re-evaluating the array factor.
pub fn port_powers_for_tones_eval(
    eval: &FsaGainEval,
    incidence_rad: f64,
    tones: &[(f64, f64)],
) -> PortPowers {
    let mut p = PortPowers::default();
    for &(f, pw) in tones {
        let (ca, cb) = eval.port_coupling_linear(f, incidence_rad);
        p.a_w += pw * ca;
        p.b_w += pw * cb;
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node() -> NodeHardware {
        NodeHardware::milback_default()
    }

    #[test]
    fn reflection_amplitudes_ordered() {
        let n = node();
        let r = n.reflection_amplitude(FsaPort::A, PortMode::Reflective);
        let a = n.reflection_amplitude(FsaPort::A, PortMode::Absorptive);
        assert!(r > 0.8 && a < 0.2 && r > a);
    }

    #[test]
    fn modulation_depth_is_strong() {
        let n = node();
        assert!(n.modulation_depth(FsaPort::A) > 0.6);
    }

    #[test]
    fn absorption_efficiency_below_unity() {
        let n = node();
        let e = n.absorption_efficiency(FsaPort::B);
        assert!(e > 0.7 && e < 1.0, "efficiency {e}");
    }

    #[test]
    fn backscatter_amplitude_peaks_on_beam() {
        let n = node();
        let psi = 10f64.to_radians();
        let (fa, _) = n.fsa.oaqfm_carriers(psi).unwrap();
        let on_beam = n.backscatter_amplitude(FsaPort::A, PortMode::Reflective, fa, psi);
        let off_beam = n.backscatter_amplitude(FsaPort::A, PortMode::Reflective, fa, psi + 0.4);
        assert!(on_beam > 10.0 * off_beam);
    }

    #[test]
    fn absorptive_backscatter_much_weaker() {
        let n = node();
        let psi = 0.1;
        let (fa, _) = n.fsa.oaqfm_carriers(psi).unwrap();
        let refl = n.backscatter_amplitude(FsaPort::A, PortMode::Reflective, fa, psi);
        let abs = n.backscatter_amplitude(FsaPort::A, PortMode::Absorptive, fa, psi);
        // ~13 dB or more of modulation contrast in amplitude.
        assert!(refl / abs > 4.0, "contrast {}", refl / abs);
    }

    #[test]
    fn detector_traces_resolve_onoff_keying() {
        let n = node();
        // 20 MS/s keeps the detector-noise bandwidth at the decision scale.
        let fs = 20e6;
        // 10 µs on, 10 µs off at 10 µW arriving at port A only.
        let mut pa = vec![10e-6; 200];
        pa.extend(vec![0.0; 200]);
        let pb = vec![0.0; 400];
        let mut rng = GaussianSource::new(1);
        let (va, vb) = n.detector_traces(&pa, &pb, fs, &mut rng);
        let on = mmwave_sigproc::stats::mean(&va[100..200]);
        let off = mmwave_sigproc::stats::mean(&va[300..400]);
        assert!(on > 5.0 * off.abs().max(1e-6), "on {on}, off {off}");
        // Port B sees only noise, well below the on level.
        assert!(mmwave_sigproc::stats::rms(&vb) < on / 10.0);
    }

    #[test]
    fn detector_trace_lengths_match() {
        let n = node();
        let mut rng = GaussianSource::new(2);
        let (va, vb) = n.detector_traces(&[1e-6; 64], &[1e-6; 64], 50e6, &mut rng);
        assert_eq!(va.len(), 64);
        assert_eq!(vb.len(), 64);
    }

    #[test]
    #[should_panic(expected = "differ in length")]
    fn detector_traces_reject_mismatch() {
        let n = node();
        let mut rng = GaussianSource::new(3);
        n.detector_traces(&[0.0; 4], &[0.0; 5], 1e6, &mut rng);
    }

    #[test]
    fn port_powers_select_correct_port() {
        let n = node();
        let psi = 12f64.to_radians();
        let (fa, fb) = n.fsa.oaqfm_carriers(psi).unwrap();
        // Only the A tone present.
        let p = port_powers_for_tones(&n.fsa, psi, &[(fa, 1e-9)]);
        assert!(p.a_w > 10.0 * p.b_w, "a {} b {}", p.a_w, p.b_w);
        // Only the B tone present.
        let p2 = port_powers_for_tones(&n.fsa, psi, &[(fb, 1e-9)]);
        assert!(p2.b_w > 10.0 * p2.a_w);
        // Both tones: both ports fed.
        let p3 = port_powers_for_tones(&n.fsa, psi, &[(fa, 1e-9), (fb, 1e-9)]);
        assert!(p3.a_w > 0.5 * p.a_w && p3.b_w > 0.5 * p2.b_w);
    }

    #[test]
    fn port_powers_eval_matches_direct_bit_exactly() {
        let n = node();
        let eval = FsaGainEval::for_dual(&n.fsa);
        let psi = 9f64.to_radians();
        let (fa, fb) = n.fsa.oaqfm_carriers(psi).unwrap();
        let tones = [(fa, 3e-9), (fb, 1e-9), (28.1e9, 2e-10)];
        let direct = port_powers_for_tones(&n.fsa, psi, &tones);
        // Twice: cold (compute) and warm (memo hit) must both match.
        for _ in 0..2 {
            assert_eq!(port_powers_for_tones_eval(&eval, psi, &tones), direct);
        }
    }

    #[test]
    fn mcu_sampling_decimates() {
        let n = node();
        let trace = vec![0.4; 1000]; // 10 µs at 100 MS/s
        let s = n.mcu_sample(&trace, 100e6);
        assert_eq!(s.len(), 10); // 1 MS/s
        assert!((s[0] - 0.4).abs() < n.adc.lsb_v());
    }
}
