//! OAQFM uplink modulation at the node (§6.3).
//!
//! The AP transmits a continuous two-tone query; the node piggybacks its
//! data by independently flipping each port between reflective (tone
//! present in the echo) and absorptive (tone absent). All the node's
//! "transmitter" does is drive two switch control lines.

use crate::mode::PortStates;
use mmwave_rf::components::SpdtSwitch;
use mmwave_sigproc::waveform::{bytes_to_symbols, OaqfmSymbol};
use serde::{Deserialize, Serialize};

/// Errors from the uplink modulator.
#[derive(Debug, Clone, PartialEq)]
pub enum UplinkError {
    /// Requested symbol rate exceeds the switch toggle limit.
    RateTooHigh {
        /// Requested symbol rate, Hz.
        requested_hz: f64,
        /// The switches' maximum toggle rate, Hz.
        max_hz: f64,
    },
}

impl std::fmt::Display for UplinkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UplinkError::RateTooHigh {
                requested_hz,
                max_hz,
            } => write!(
                f,
                "symbol rate {requested_hz:.3e} Hz exceeds switch limit {max_hz:.3e} Hz"
            ),
        }
    }
}

impl std::error::Error for UplinkError {}

/// The node's uplink modulator: bits → switch-state schedule.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UplinkModulator {
    /// Symbol rate, symbols/second (2 bits per symbol).
    pub symbol_rate_hz: f64,
}

impl UplinkModulator {
    /// Creates a modulator after validating the rate against the switch.
    ///
    /// In the worst case a port toggles once per symbol boundary, so the
    /// required switch toggle rate equals the symbol rate.
    pub fn new(symbol_rate_hz: f64, switch: &SpdtSwitch) -> Result<Self, UplinkError> {
        if !switch.supports_rate(symbol_rate_hz) {
            return Err(UplinkError::RateTooHigh {
                requested_hz: symbol_rate_hz,
                max_hz: switch.max_toggle_hz,
            });
        }
        Ok(Self { symbol_rate_hz })
    }

    /// Bit rate, bits/second (OAQFM carries 2 bits per symbol).
    pub fn bit_rate_hz(&self) -> f64 {
        2.0 * self.symbol_rate_hz
    }

    /// Symbol duration, seconds.
    pub fn symbol_duration_s(&self) -> f64 {
        1.0 / self.symbol_rate_hz
    }

    /// Maps a payload to the per-symbol port-state schedule.
    pub fn schedule_for_bytes(&self, payload: &[u8]) -> Vec<PortStates> {
        bytes_to_symbols(payload)
            .into_iter()
            .map(PortStates::for_uplink_symbol)
            .collect()
    }

    /// Maps symbols directly to port states.
    pub fn schedule_for_symbols(&self, symbols: &[OaqfmSymbol]) -> Vec<PortStates> {
        symbols
            .iter()
            .copied()
            .map(PortStates::for_uplink_symbol)
            .collect()
    }

    /// The port states active at time `t` seconds into a transmission of
    /// `schedule` (constant after the last symbol: both absorptive = idle).
    pub fn states_at(&self, schedule: &[PortStates], t: f64) -> PortStates {
        if t < 0.0 {
            return PortStates::both_absorptive();
        }
        let idx = (t * self.symbol_rate_hz) as usize;
        schedule
            .get(idx)
            .copied()
            .unwrap_or_else(PortStates::both_absorptive)
    }

    /// Counts the switch toggles a schedule produces on each port —
    /// feeds the dynamic-power model.
    pub fn toggle_counts(&self, schedule: &[PortStates]) -> (usize, usize) {
        let mut a = 0;
        let mut b = 0;
        for w in schedule.windows(2) {
            if w[0].a != w[1].a {
                a += 1;
            }
            if w[0].b != w[1].b {
                b += 1;
            }
        }
        (a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mode::PortMode;

    fn switch() -> SpdtSwitch {
        SpdtSwitch::adrf5020()
    }

    #[test]
    fn paper_rates_are_accepted() {
        // 10 Mbps and 40 Mbps (Fig 15) → 5 and 20 Msym/s.
        assert!(UplinkModulator::new(5e6, &switch()).is_ok());
        assert!(UplinkModulator::new(20e6, &switch()).is_ok());
        // Max rate 160 Mbps → 80 Msym/s also fits the 160 MHz switch.
        assert!(UplinkModulator::new(80e6, &switch()).is_ok());
    }

    #[test]
    fn excessive_rate_rejected() {
        let err = UplinkModulator::new(200e6, &switch()).unwrap_err();
        match err {
            UplinkError::RateTooHigh {
                requested_hz,
                max_hz,
            } => {
                assert_eq!(requested_hz, 200e6);
                assert_eq!(max_hz, 160e6);
            }
        }
    }

    #[test]
    fn bit_rate_is_twice_symbol_rate() {
        let m = UplinkModulator::new(20e6, &switch()).unwrap();
        assert_eq!(m.bit_rate_hz(), 40e6);
        assert!((m.symbol_duration_s() - 50e-9).abs() < 1e-15);
    }

    #[test]
    fn schedule_encodes_bytes() {
        let m = UplinkModulator::new(5e6, &switch()).unwrap();
        // 0b10_01_11_00
        let sched = m.schedule_for_bytes(&[0x9C]);
        assert_eq!(sched.len(), 4);
        assert_eq!(
            sched[0],
            PortStates {
                a: PortMode::Reflective,
                b: PortMode::Absorptive
            }
        );
        assert_eq!(
            sched[1],
            PortStates {
                a: PortMode::Absorptive,
                b: PortMode::Reflective
            }
        );
        assert_eq!(sched[2], PortStates::both_reflective());
        assert_eq!(sched[3], PortStates::both_absorptive());
    }

    #[test]
    fn states_at_time_lookup() {
        let m = UplinkModulator::new(1e6, &switch()).unwrap();
        let sched = m.schedule_for_bytes(&[0x9C]);
        assert_eq!(m.states_at(&sched, 0.5e-6), sched[0]);
        assert_eq!(m.states_at(&sched, 2.5e-6), sched[2]);
        // Past the end and before the start: idle.
        assert_eq!(m.states_at(&sched, 10e-6), PortStates::both_absorptive());
        assert_eq!(m.states_at(&sched, -1e-6), PortStates::both_absorptive());
    }

    #[test]
    fn toggle_counts_for_alternating_pattern() {
        let m = UplinkModulator::new(1e6, &switch()).unwrap();
        // 0xCC = 11 00 11 00: port A toggles every symbol (3), B too (3).
        let sched = m.schedule_for_bytes(&[0xCC]);
        assert_eq!(m.toggle_counts(&sched), (3, 3));
        // 0xF0 = 11 11 00 00: one toggle each.
        let sched2 = m.schedule_for_bytes(&[0xF0]);
        assert_eq!(m.toggle_counts(&sched2), (1, 1));
    }

    #[test]
    fn error_display() {
        let e = UplinkError::RateTooHigh {
            requested_hz: 2e8,
            max_hz: 1.6e8,
        };
        assert!(e.to_string().contains("exceeds"));
    }
}
