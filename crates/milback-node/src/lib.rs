//! # milback-node
//!
//! The MilBack backscatter node (§4, Fig 4): a passive dual-port Frequency
//! Scanning Antenna whose two ports sit behind SPDT switches that select
//! between the ground plane (reflective) and 50 Ω envelope detectors
//! (absorptive), read out by a low-power MCU.
//!
//! * [`node`] — hardware composition and the detector/backscatter physics,
//! * [`mode`] — port modes and toggling schedules,
//! * [`downlink`] — OAQFM demodulation from the detector traces,
//! * [`uplink`] — OAQFM backscatter modulation (switch schedules),
//! * [`orientation`] — triangular-chirp peak-delay orientation sensing,
//! * [`power`] — the 18 mW / 32 mW power accounting of §9.6,
//! * [`firmware`] — the MCU state machine through a packet, with its
//!   energy ledger.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod downlink;
pub mod firmware;
pub mod mode;
pub mod node;
pub mod orientation;
pub mod power;
pub mod uplink;

pub use downlink::{OaqfmDemodulator, Thresholds};
pub use mode::{PortMode, PortStates, ToggleSchedule};
pub use node::{NodeHardware, PortPowers};
pub use orientation::OrientationEstimator;
pub use power::{NodeActivity, NodePowerModel};
pub use uplink::UplinkModulator;
