//! # milback-node
//!
//! The MilBack backscatter node (§4, Fig 4): a passive dual-port Frequency
//! Scanning Antenna whose two ports sit behind SPDT switches that select
//! between the ground plane (reflective) and 50 Ω envelope detectors
//! (absorptive), read out by a low-power MCU.
//!
//! * [`node`] — hardware composition and the detector/backscatter physics,
//! * [`mode`] — port modes and toggling schedules,
//! * [`downlink`] — OAQFM demodulation from the detector traces,
//! * [`uplink`] — OAQFM backscatter modulation (switch schedules),
//! * [`orientation`] — triangular-chirp peak-delay orientation sensing,
//! * [`power`] — the 18 mW / 32 mW power accounting of §9.6,
//! * [`firmware`] — the MCU state machine through a packet, with its
//!   energy ledger.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(feature = "std"), no_std)]

// The node core — the firmware state machine, port modes and the power
// model — compiles without `std` (what an MCU build would take). The
// simulation-facing modules synthesize traces and decode them with the
// std-only DSP crates, so they sit behind the default `std` feature.
#[cfg(feature = "std")]
pub mod downlink;
pub mod firmware;
pub mod mode;
#[cfg(feature = "std")]
pub mod node;
#[cfg(feature = "std")]
pub mod orientation;
pub mod power;
#[cfg(feature = "std")]
pub mod uplink;

#[cfg(feature = "std")]
pub use downlink::{DemodScratch, OaqfmDemodulator, Thresholds};
pub use mode::{PortMode, PortStates, ToggleSchedule};
#[cfg(feature = "std")]
pub use node::{NodeHardware, NodeScratch, PortPowers};
#[cfg(feature = "std")]
pub use orientation::OrientationEstimator;
pub use power::{NodeActivity, NodePowerModel};
#[cfg(feature = "std")]
pub use uplink::UplinkModulator;
