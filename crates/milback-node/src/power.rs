//! Node power model (§9.6).
//!
//! The node's only active parts are two SPDT switches and two envelope
//! detectors (the MCU is excluded, as in the paper's accounting — footnote
//! 3). The paper measures 18 mW during localization/downlink and 32 mW
//! during uplink; the difference is the switch drivers running at uplink
//! slew rates. Energy efficiency lands at 0.5 nJ/bit for the 36 Mbps
//! downlink and 0.8 nJ/bit for the 40 Mbps uplink — versus 2.4 nJ/bit for
//! the uplink-only mmTag baseline.

use mmwave_rf::components::{EnvelopeDetector, SpdtSwitch};
use serde::{Deserialize, Serialize};

/// What the node is currently doing, for power accounting.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum NodeActivity {
    /// Being localized: toggling reflective/absorptive at the (slow)
    /// localization rate while the AP chirps.
    Localization {
        /// Toggle rate, Hz (10 kHz in the paper).
        toggle_rate_hz: f64,
    },
    /// Receiving downlink: both ports parked absorptive, detectors active.
    Downlink,
    /// Transmitting uplink: switch drivers armed at full slew bandwidth.
    Uplink,
    /// Idle: everything parked (detectors still biased so the node can
    /// notice a wake-up preamble).
    Idle,
}

/// Power model over the node's component set.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NodePowerModel {
    /// The switch type used on both ports.
    pub switch: SpdtSwitch,
    /// The detector type used on both ports.
    pub detector: EnvelopeDetector,
    /// Optional MCU power to include (paper excludes it; a typical MSP430
    /// figure is 5.76 mW — footnote 3).
    pub mcu_power_w: Option<f64>,
}

impl NodePowerModel {
    /// The paper's component set, MCU excluded.
    pub fn milback_default() -> Self {
        Self {
            switch: SpdtSwitch::adrf5020(),
            detector: EnvelopeDetector::adl6010(),
            mcu_power_w: None,
        }
    }

    /// Includes a typical MCU figure in the roll-up.
    pub fn with_mcu(mut self, mcu_power_w: f64) -> Self {
        self.mcu_power_w = Some(mcu_power_w);
        self
    }

    /// Total node power for an activity, watts.
    pub fn power_w(&self, activity: NodeActivity) -> f64 {
        let detector_bias = 2.0 * self.detector.bias_power_w;
        let switches = match activity {
            NodeActivity::Localization { toggle_rate_hz } => {
                2.0 * self.switch.power_at_rate_w(toggle_rate_hz)
            }
            NodeActivity::Downlink => 2.0 * self.switch.power_at_rate_w(10e3),
            // Uplink: the switch drivers run at their design bandwidth
            // regardless of the payload pattern (the measured 32 mW).
            NodeActivity::Uplink => 2.0 * self.switch.power_at_rate_w(self.switch.max_toggle_hz),
            NodeActivity::Idle => 2.0 * self.switch.static_power_w,
        };
        switches + detector_bias + self.mcu_power_w.unwrap_or(0.0)
    }

    /// Energy spent holding an activity for `duration_s` seconds, joules.
    ///
    /// # Panics
    /// Panics for a negative duration.
    pub fn energy_j(&self, activity: NodeActivity, duration_s: f64) -> f64 {
        assert!(duration_s >= 0.0, "duration must be non-negative");
        self.power_w(activity) * duration_s
    }

    /// Energy per bit (J/bit) at a given activity and bit rate.
    ///
    /// # Panics
    /// Panics for a non-positive bit rate.
    pub fn energy_per_bit_j(&self, activity: NodeActivity, bit_rate_hz: f64) -> f64 {
        assert!(bit_rate_hz > 0.0, "bit rate must be positive");
        self.power_w(activity) / bit_rate_hz
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> NodePowerModel {
        NodePowerModel::milback_default()
    }

    #[test]
    fn downlink_and_localization_power_is_18mw() {
        let m = model();
        let loc = m.power_w(NodeActivity::Localization {
            toggle_rate_hz: 10e3,
        });
        let dl = m.power_w(NodeActivity::Downlink);
        assert!(
            (loc - 18e-3).abs() < 0.5e-3,
            "localization {:.2} mW",
            loc * 1e3
        );
        assert!((dl - 18e-3).abs() < 0.5e-3, "downlink {:.2} mW", dl * 1e3);
    }

    #[test]
    fn uplink_power_is_32mw() {
        let m = model();
        let ul = m.power_w(NodeActivity::Uplink);
        assert!((ul - 32e-3).abs() < 0.5e-3, "uplink {:.2} mW", ul * 1e3);
    }

    #[test]
    fn energy_per_bit_matches_paper() {
        // §9.6: 0.5 nJ/bit downlink @36 Mbps, 0.8 nJ/bit uplink @40 Mbps.
        let m = model();
        let dl = m.energy_per_bit_j(NodeActivity::Downlink, 36e6);
        let ul = m.energy_per_bit_j(NodeActivity::Uplink, 40e6);
        assert!((dl - 0.5e-9).abs() < 0.05e-9, "downlink {dl:.2e} J/bit");
        assert!((ul - 0.8e-9).abs() < 0.05e-9, "uplink {ul:.2e} J/bit");
    }

    #[test]
    fn beats_mmtag_energy_efficiency() {
        // mmTag: 2.4 nJ/bit uplink-only. MilBack at 0.8 nJ/bit is 3× better.
        let m = model();
        let ul = m.energy_per_bit_j(NodeActivity::Uplink, 40e6);
        assert!(ul <= 2.4e-9 / 2.9, "only {ul:.2e} J/bit");
    }

    #[test]
    fn idle_is_cheapest() {
        let m = model();
        let idle = m.power_w(NodeActivity::Idle);
        assert!(idle < m.power_w(NodeActivity::Downlink));
        assert!(idle < m.power_w(NodeActivity::Uplink));
    }

    #[test]
    fn mcu_inclusion_adds_footnote_figure() {
        let m = model().with_mcu(5.76e-3);
        let without = model().power_w(NodeActivity::Downlink);
        let with = m.power_w(NodeActivity::Downlink);
        assert!((with - without - 5.76e-3).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "bit rate must be positive")]
    fn energy_rejects_zero_rate() {
        model().energy_per_bit_j(NodeActivity::Uplink, 0.0);
    }

    #[test]
    fn energy_is_power_times_time() {
        let m = model();
        let e = m.energy_j(NodeActivity::Uplink, 2.5);
        assert_eq!(e, m.power_w(NodeActivity::Uplink) * 2.5);
        assert_eq!(m.energy_j(NodeActivity::Idle, 0.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "duration must be non-negative")]
    fn energy_rejects_negative_duration() {
        model().energy_j(NodeActivity::Idle, -1.0);
    }
}
