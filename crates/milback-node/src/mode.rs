//! Port operating modes and switching schedules.
//!
//! Each FSA port sits behind an SPDT switch that connects it either to the
//! ground plane (**reflective**: the beam retro-reflects the AP's signal)
//! or to an envelope detector (**absorptive**: the beam's energy is
//! delivered to the 50 Ω-matched detector and nothing reflects) — §4.

use serde::{Deserialize, Serialize};

/// The state of one FSA port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PortMode {
    /// Port shorted to ground: incident energy at this beam reflects back.
    Reflective,
    /// Port terminated in the envelope detector: energy is absorbed and
    /// measured.
    Absorptive,
}

impl PortMode {
    /// The opposite mode.
    pub fn toggled(self) -> Self {
        match self {
            PortMode::Reflective => PortMode::Absorptive,
            PortMode::Absorptive => PortMode::Reflective,
        }
    }
}

/// Joint state of the two ports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PortStates {
    /// Port A state.
    pub a: PortMode,
    /// Port B state.
    pub b: PortMode,
}

impl PortStates {
    /// Both ports absorptive (downlink reception / node-side orientation).
    pub fn both_absorptive() -> Self {
        Self {
            a: PortMode::Absorptive,
            b: PortMode::Absorptive,
        }
    }

    /// Both ports reflective (strongest localization echo).
    pub fn both_reflective() -> Self {
        Self {
            a: PortMode::Reflective,
            b: PortMode::Reflective,
        }
    }

    /// The port states encoding an OAQFM uplink symbol: a present tone is
    /// *reflected* (§6.3 — reflect f_A to send the `1` in the A position).
    pub fn for_uplink_symbol(sym: mmwave_sigproc::OaqfmSymbol) -> Self {
        let refl = |on: bool| {
            if on {
                PortMode::Reflective
            } else {
                PortMode::Absorptive
            }
        };
        Self {
            a: refl(sym.tone_a),
            b: refl(sym.tone_b),
        }
    }
}

/// A square-wave toggling schedule for one port, e.g. the 10 kHz
/// reflective/absorptive modulation used during localization (§5.1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ToggleSchedule {
    /// Toggle rate: state changes per second (a full on/off cycle is two
    /// toggles).
    pub rate_hz: f64,
    /// State during the first half-period.
    pub initial: PortMode,
}

impl ToggleSchedule {
    /// The paper's localization schedule: 10 kHz toggling starting
    /// reflective.
    pub fn localization_default() -> Self {
        Self {
            rate_hz: 10e3,
            initial: PortMode::Reflective,
        }
    }

    /// State at time `t` seconds.
    ///
    /// # Panics
    /// Panics for a non-positive rate.
    #[cfg(feature = "std")]
    pub fn state_at(&self, t: f64) -> PortMode {
        assert!(self.rate_hz > 0.0, "toggle rate must be positive");
        let half_period = 1.0 / self.rate_hz;
        if (t.div_euclid(half_period) as i64) % 2 == 0 {
            self.initial
        } else {
            self.initial.toggled()
        }
    }

    /// Index of the first half-period boundary at or after `from_s`.
    #[cfg(feature = "std")]
    fn first_switch_index(&self, from_s: f64) -> i64 {
        assert!(self.rate_hz > 0.0, "toggle rate must be positive");
        let half_period = 1.0 / self.rate_hz;
        let mut k = (from_s / half_period).ceil() as i64;
        if (k as f64) * half_period < from_s {
            k += 1; // guard against ceil landing a tick early at representable boundaries
        }
        k
    }

    /// The switch instants in `[from_s, until_s)`, seconds — each the start
    /// of a new half-period. This is the schedule as *events*: an engine
    /// actor posts one timed event per instant instead of sampling
    /// `state_at` on its own clock. The vector is pre-sized from
    /// [`Self::switch_count`] (this runs once per trial in the campaigns,
    /// so growth reallocations add up).
    ///
    /// # Panics
    /// Panics for a non-positive rate.
    #[cfg(feature = "std")]
    pub fn switch_times_s(&self, from_s: f64, until_s: f64) -> Vec<f64> {
        let half_period = 1.0 / self.rate_hz;
        let mut k = self.first_switch_index(from_s);
        let mut times = Vec::with_capacity(self.switch_count(from_s, until_s));
        loop {
            let t = (k as f64) * half_period;
            if t >= until_s {
                break;
            }
            times.push(t);
            k += 1;
        }
        times
    }

    /// How many switch instants fall in `[from_s, until_s)` — the count
    /// [`Self::switch_times_s`] would return, without materializing the
    /// vector. The energy-accounting path only needs this number (toggle
    /// count × per-toggle energy), and it also pre-sizes the event vector.
    ///
    /// # Panics
    /// Panics for a non-positive rate.
    #[cfg(feature = "std")]
    pub fn switch_count(&self, from_s: f64, until_s: f64) -> usize {
        let half_period = 1.0 / self.rate_hz;
        let first = self.first_switch_index(from_s);
        // Walk the same float recurrence as the enumeration so the count
        // always agrees with it exactly, even at representable boundaries.
        let mut k = first;
        while (k as f64) * half_period < until_s {
            k += 1;
        }
        (k - first).max(0) as usize
    }

    /// Whether the state differs between two instants — used by the AP's
    /// background subtraction logic, which relies on the node's echo
    /// changing between consecutive chirps while clutter does not (§5.1).
    #[cfg(feature = "std")]
    pub fn differs_between(&self, t1: f64, t2: f64) -> bool {
        self.state_at(t1) != self.state_at(t2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmwave_sigproc::OaqfmSymbol;

    #[test]
    fn toggled_flips() {
        assert_eq!(PortMode::Reflective.toggled(), PortMode::Absorptive);
        assert_eq!(PortMode::Absorptive.toggled(), PortMode::Reflective);
    }

    #[test]
    fn uplink_symbol_mapping() {
        let s = PortStates::for_uplink_symbol(OaqfmSymbol::from_bits(0b10));
        assert_eq!(s.a, PortMode::Reflective);
        assert_eq!(s.b, PortMode::Absorptive);
        let s11 = PortStates::for_uplink_symbol(OaqfmSymbol::from_bits(0b11));
        assert_eq!(s11, PortStates::both_reflective());
        let s00 = PortStates::for_uplink_symbol(OaqfmSymbol::from_bits(0b00));
        assert_eq!(s00, PortStates::both_absorptive());
    }

    #[test]
    fn toggle_schedule_square_wave() {
        let t = ToggleSchedule {
            rate_hz: 10e3,
            initial: PortMode::Reflective,
        };
        // Half period = 100 µs.
        assert_eq!(t.state_at(0.0), PortMode::Reflective);
        assert_eq!(t.state_at(50e-6), PortMode::Reflective);
        assert_eq!(t.state_at(150e-6), PortMode::Absorptive);
        assert_eq!(t.state_at(250e-6), PortMode::Reflective);
    }

    #[test]
    fn consecutive_18us_chirps_see_state_changes_at_10khz() {
        // §5.1: chirp duration ≪ toggle period, but across five chirps
        // (spaced one half-period apart in the protocol) the state flips.
        let t = ToggleSchedule::localization_default();
        assert!(t.differs_between(0.0, 100e-6));
        assert!(!t.differs_between(0.0, 18e-6));
    }

    #[test]
    fn switch_times_enumerate_half_period_boundaries() {
        let t = ToggleSchedule::localization_default(); // half period 100 µs
        let times = t.switch_times_s(0.0, 450e-6);
        assert_eq!(times.len(), 5); // 0, 100, 200, 300, 400 µs
        assert!((times[0] - 0.0).abs() < 1e-15);
        assert!((times[1] - 100e-6).abs() < 1e-12);
        assert!((times[4] - 400e-6).abs() < 1e-12);
        // The state flips across every listed instant.
        for w in times.windows(2) {
            assert!(t.differs_between(w[0] + 1e-9, w[1] + 1e-9));
        }
        // Empty and offset windows behave.
        assert!(t.switch_times_s(10e-6, 90e-6).is_empty());
        assert_eq!(t.switch_times_s(150e-6, 350e-6).len(), 2);
    }

    #[test]
    fn switch_count_agrees_with_enumeration() {
        let t = ToggleSchedule::localization_default();
        for (from, until) in [
            (0.0, 450e-6),
            (10e-6, 90e-6),
            (150e-6, 350e-6),
            (0.0, 0.0),
            (-250e-6, 250e-6),
            (0.0, 1.0),
            (1e-4, 1e-4 + 1e-9),
        ] {
            let times = t.switch_times_s(from, until);
            assert_eq!(
                t.switch_count(from, until),
                times.len(),
                "window [{from}, {until})"
            );
        }
    }

    #[test]
    fn schedule_handles_negative_time() {
        let t = ToggleSchedule::localization_default();
        // div_euclid keeps the square wave consistent for t < 0.
        let _ = t.state_at(-30e-6);
    }
}
