//! Uplink reception at the AP (§6.3, Fig 7).
//!
//! The AP transmits the two-tone query and receives on two chains, each
//! mixing the antenna signal with one of the query tones. Interference
//! (self-interference and static clutter) is a delayed copy of the query,
//! so it mixes to DC plus out-of-band products — both removed by the
//! band-pass filter. The node's switching imprints its OAQFM symbols on
//! each tone, which survive as baseband waveforms: one OOK channel per
//! tone. This module slices those channels back into symbols and measures
//! link quality.

use mmwave_sigproc::detect::{integrate_and_dump, midpoint_threshold};
use mmwave_sigproc::stats::{bit_error_rate, mean};
use mmwave_sigproc::waveform::OaqfmSymbol;
use serde::{Deserialize, Serialize};

/// Errors from the uplink receiver.
#[derive(Debug, Clone, PartialEq)]
pub enum UplinkRxError {
    /// The two channel traces differ in length.
    LengthMismatch {
        /// Channel-A length.
        a: usize,
        /// Channel-B length.
        b: usize,
    },
    /// Trace shorter than one symbol.
    TraceTooShort,
    /// No modulation contrast found on a channel.
    NoContrast,
}

impl std::fmt::Display for UplinkRxError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UplinkRxError::LengthMismatch { a, b } => {
                write!(f, "channel traces differ: {a} vs {b}")
            }
            UplinkRxError::TraceTooShort => write!(f, "trace shorter than one symbol"),
            UplinkRxError::NoContrast => write!(f, "no modulation contrast on a channel"),
        }
    }
}

impl std::error::Error for UplinkRxError {}

/// The AP's uplink symbol receiver.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UplinkReceiver {
    /// Samples per symbol at the digitizer rate.
    pub samples_per_symbol: usize,
}

impl UplinkReceiver {
    /// Creates a receiver.
    ///
    /// # Panics
    /// Panics for zero samples per symbol.
    pub fn new(samples_per_symbol: usize) -> Self {
        assert!(samples_per_symbol > 0);
        Self { samples_per_symbol }
    }

    /// Integrate-and-dump symbol statistics for one channel.
    pub fn symbol_statistics(&self, trace: &[f64]) -> Vec<f64> {
        integrate_and_dump(trace, self.samples_per_symbol)
    }

    /// Decides OAQFM symbols from the two baseband channel traces, using
    /// self-calibrated thresholds (the query payload always contains both
    /// levels in practice; a preamble can be prepended otherwise).
    pub fn decide(
        &self,
        trace_a: &[f64],
        trace_b: &[f64],
    ) -> Result<Vec<OaqfmSymbol>, UplinkRxError> {
        if trace_a.len() != trace_b.len() {
            return Err(UplinkRxError::LengthMismatch {
                a: trace_a.len(),
                b: trace_b.len(),
            });
        }
        if trace_a.len() < self.samples_per_symbol {
            return Err(UplinkRxError::TraceTooShort);
        }
        let sa = self.symbol_statistics(trace_a);
        let sb = self.symbol_statistics(trace_b);
        let ta = midpoint_threshold(&sa).ok_or(UplinkRxError::NoContrast)?;
        let tb = midpoint_threshold(&sb).ok_or(UplinkRxError::NoContrast)?;
        Ok(sa
            .iter()
            .zip(&sb)
            .map(|(&va, &vb)| OaqfmSymbol {
                tone_a: va > ta,
                tone_b: vb > tb,
            })
            .collect())
    }

    /// Decides against known thresholds (when calibrated externally).
    pub fn decide_with_thresholds(
        &self,
        trace_a: &[f64],
        trace_b: &[f64],
        threshold_a: f64,
        threshold_b: f64,
    ) -> Result<Vec<OaqfmSymbol>, UplinkRxError> {
        if trace_a.len() != trace_b.len() {
            return Err(UplinkRxError::LengthMismatch {
                a: trace_a.len(),
                b: trace_b.len(),
            });
        }
        if trace_a.len() < self.samples_per_symbol {
            return Err(UplinkRxError::TraceTooShort);
        }
        let sa = self.symbol_statistics(trace_a);
        let sb = self.symbol_statistics(trace_b);
        Ok(sa
            .iter()
            .zip(&sb)
            .map(|(&va, &vb)| OaqfmSymbol {
                tone_a: va > threshold_a,
                tone_b: vb > threshold_b,
            })
            .collect())
    }
}

/// Link-quality measurement for one uplink channel, as plotted in Fig 15.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UplinkQuality {
    /// Measured SNR, dB: the ratio of the modulation swing power
    /// `((hi−lo)/2)²` to the noise variance around each level.
    pub snr_db: f64,
    /// Measured bit error rate against known transmitted bits (`NaN` when
    /// no reference bits were supplied).
    pub ber: f64,
}

/// Measures SNR from symbol statistics given the known transmitted bits of
/// one channel: separates the on/off populations and compares the level
/// separation to the within-population spread.
///
/// # Panics
/// Panics if the lengths differ or either population is empty.
pub fn measure_channel_snr_db(symbol_stats: &[f64], tx_bits: &[bool]) -> f64 {
    assert_eq!(
        symbol_stats.len(),
        tx_bits.len(),
        "stats/bits length mismatch"
    );
    let on: Vec<f64> = symbol_stats
        .iter()
        .zip(tx_bits)
        .filter(|(_, &b)| b)
        .map(|(&v, _)| v)
        .collect();
    let off: Vec<f64> = symbol_stats
        .iter()
        .zip(tx_bits)
        .filter(|(_, &b)| !b)
        .map(|(&v, _)| v)
        .collect();
    assert!(
        !on.is_empty() && !off.is_empty(),
        "need both symbol populations"
    );
    let swing = (mean(&on) - mean(&off)) / 2.0;
    let var_on = if on.len() > 1 {
        mmwave_sigproc::stats::variance(&on)
    } else {
        0.0
    };
    let var_off = if off.len() > 1 {
        mmwave_sigproc::stats::variance(&off)
    } else {
        0.0
    };
    let noise = ((var_on + var_off) / 2.0).max(1e-300);
    10.0 * (swing * swing / noise).log10()
}

/// Compares decided symbols against transmitted symbols bit-by-bit.
pub fn symbol_ber(tx: &[OaqfmSymbol], rx: &[OaqfmSymbol]) -> f64 {
    let tx_bits: Vec<bool> = tx.iter().flat_map(|s| [s.tone_a, s.tone_b]).collect();
    let rx_bits: Vec<bool> = rx.iter().flat_map(|s| [s.tone_a, s.tone_b]).collect();
    bit_error_rate(&tx_bits, &rx_bits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmwave_sigproc::random::GaussianSource;
    use mmwave_sigproc::waveform::{bytes_to_symbols, ook_envelope, symbols_to_bytes};

    fn traces_for(symbols: &[OaqfmSymbol], sps: usize, hi: f64, lo: f64) -> (Vec<f64>, Vec<f64>) {
        let la: Vec<f64> = symbols
            .iter()
            .map(|s| if s.tone_a { hi } else { lo })
            .collect();
        let lb: Vec<f64> = symbols
            .iter()
            .map(|s| if s.tone_b { hi } else { lo })
            .collect();
        (ook_envelope(&la, sps), ook_envelope(&lb, sps))
    }

    #[test]
    fn clean_decisions_roundtrip() {
        let payload = vec![0x12, 0x34, 0xAB, 0xFF, 0x00];
        let syms = bytes_to_symbols(&payload);
        let (ta, tb) = traces_for(&syms, 10, 1e-4, 2e-5);
        let rx = UplinkReceiver::new(10);
        let out = rx.decide(&ta, &tb).unwrap();
        assert_eq!(symbols_to_bytes(&out), payload);
        assert_eq!(symbol_ber(&syms, &out), 0.0);
    }

    #[test]
    fn decisions_survive_moderate_noise() {
        let mut rng = GaussianSource::new(5);
        let payload = rng.bytes(128);
        let syms = bytes_to_symbols(&payload);
        let (mut ta, mut tb) = traces_for(&syms, 20, 1e-4, 1.8e-5);
        // Per-sample SNR modest; integration over 20 samples recovers it.
        let swing: f64 = (1e-4 - 1.8e-5) / 2.0;
        rng.add_real_noise(&mut ta, (swing / 2.0).powi(2));
        rng.add_real_noise(&mut tb, (swing / 2.0).powi(2));
        let rx = UplinkReceiver::new(20);
        let out = rx.decide(&ta, &tb).unwrap();
        assert_eq!(symbols_to_bytes(&out), payload);
    }

    #[test]
    fn ber_degrades_with_noise_monotonically() {
        let mut rng = GaussianSource::new(6);
        let payload = rng.bytes(256);
        let syms = bytes_to_symbols(&payload);
        let rx = UplinkReceiver::new(4);
        let mut previous_ber = -1.0;
        for noise_scale in [0.5, 2.0, 8.0] {
            let (mut ta, mut tb) = traces_for(&syms, 4, 1.0, 0.0);
            rng.add_real_noise(&mut ta, noise_scale);
            rng.add_real_noise(&mut tb, noise_scale);
            let out = rx.decide(&ta, &tb).unwrap();
            let ber = symbol_ber(&syms, &out);
            assert!(ber >= previous_ber, "BER should not improve with noise");
            previous_ber = ber;
        }
        assert!(previous_ber > 0.05, "heavy noise must cause errors");
    }

    #[test]
    fn snr_measurement_tracks_injected_snr() {
        let mut rng = GaussianSource::new(7);
        let bits: Vec<bool> = rng.bits(20_000);
        let swing = 1.0;
        let noise_var: f64 = 0.01; // 20 dB
        let stats: Vec<f64> = bits
            .iter()
            .map(|&b| if b { swing } else { -swing } + rng.sample(noise_var.sqrt()))
            .collect();
        let snr = measure_channel_snr_db(&stats, &bits);
        assert!((snr - 20.0).abs() < 0.5, "measured {snr:.2} dB");
    }

    #[test]
    fn ac_coupled_traces_still_decode() {
        // The BPF removes DC: levels become symmetric around zero.
        let payload = vec![0x3C, 0x96];
        let syms = bytes_to_symbols(&payload);
        let (ta, tb) = traces_for(&syms, 8, 0.5, -0.5);
        let rx = UplinkReceiver::new(8);
        let out = rx.decide(&ta, &tb).unwrap();
        assert_eq!(symbols_to_bytes(&out), payload);
    }

    #[test]
    fn mismatched_channels_rejected() {
        let rx = UplinkReceiver::new(4);
        let err = rx.decide(&[0.0; 8], &[0.0; 9]).unwrap_err();
        assert_eq!(err, UplinkRxError::LengthMismatch { a: 8, b: 9 });
    }

    #[test]
    fn flat_channel_rejected() {
        let rx = UplinkReceiver::new(4);
        let err = rx.decide(&[0.5; 16], &[0.5; 16]).unwrap_err();
        assert_eq!(err, UplinkRxError::NoContrast);
    }

    #[test]
    fn short_trace_rejected() {
        let rx = UplinkReceiver::new(100);
        assert_eq!(
            rx.decide(&[0.0; 10], &[0.0; 10]).unwrap_err(),
            UplinkRxError::TraceTooShort
        );
    }

    #[test]
    fn external_thresholds_path() {
        let syms = bytes_to_symbols(&[0xA5]);
        let (ta, tb) = traces_for(&syms, 5, 1.0, 0.0);
        let rx = UplinkReceiver::new(5);
        let out = rx.decide_with_thresholds(&ta, &tb, 0.5, 0.5).unwrap();
        assert_eq!(symbols_to_bytes(&out), vec![0xA5]);
    }

    #[test]
    #[should_panic(expected = "both symbol populations")]
    fn snr_needs_both_levels() {
        measure_channel_snr_db(&[1.0, 1.0], &[true, true]);
    }

    #[test]
    fn error_display() {
        assert!(UplinkRxError::NoContrast.to_string().contains("contrast"));
        assert!(UplinkRxError::TraceTooShort.to_string().contains("shorter"));
        assert!(UplinkRxError::LengthMismatch { a: 1, b: 2 }
            .to_string()
            .contains("differ"));
    }
}
