//! OAQFM carrier selection from the node's estimated orientation (§6.1).
//!
//! After orientation sensing, the AP knows the incidence angle ψ and looks
//! up the two frequencies that point the node's port-A and port-B beams back
//! at itself. Near normal incidence those frequencies coincide and the AP
//! falls back to single-carrier OOK (§6.2).

use crate::waveform::CarrierSet;
use mmwave_rf::antenna::fsa::{DualPortFsa, FsaPort};
use serde::{Deserialize, Serialize};

/// Errors from carrier planning.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryError {
    /// The node's orientation puts one or both beams outside the band.
    OrientationOutOfRange {
        /// The offending orientation, radians.
        orientation_rad: f64,
    },
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::OrientationOutOfRange { orientation_rad } => write!(
                f,
                "orientation {:.1}° outside the FSA scan range",
                orientation_rad.to_degrees()
            ),
        }
    }
}

impl std::error::Error for QueryError {}

/// Carrier planner.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QueryPlanner {
    /// Below this |orientation| the two carriers are too close to separate
    /// at the node's detectors and the planner falls back to OOK, radians.
    pub ook_fallback_rad: f64,
    /// Minimum tone separation to run two-tone OAQFM, Hz. Tones closer
    /// than this land inside the same beam's bandwidth.
    pub min_tone_separation_hz: f64,
}

impl QueryPlanner {
    /// Defaults: fall back to OOK within ±1.5° of normal (≈ the carrier
    /// separation dropping below 150 MHz for the default FSA).
    pub fn milback_default() -> Self {
        Self {
            ook_fallback_rad: 1.5f64.to_radians(),
            min_tone_separation_hz: 150e6,
        }
    }

    /// Plans the carrier set for a node at estimated `orientation_rad`.
    pub fn plan(&self, fsa: &DualPortFsa, orientation_rad: f64) -> Result<CarrierSet, QueryError> {
        if orientation_rad.abs() < self.ook_fallback_rad {
            // Normal incidence: both beams share the normal frequency.
            return Ok(CarrierSet::SingleToneOok {
                f: fsa.design.normal_incidence_freq_hz(),
            });
        }
        let (f_a, f_b) = fsa
            .oaqfm_carriers(orientation_rad)
            .ok_or(QueryError::OrientationOutOfRange { orientation_rad })?;
        if (f_a - f_b).abs() < self.min_tone_separation_hz {
            return Ok(CarrierSet::SingleToneOok {
                f: fsa.design.normal_incidence_freq_hz(),
            });
        }
        Ok(CarrierSet::TwoTone { f_a, f_b })
    }

    /// Plans carriers and rolls the result into one report — the payload
    /// an event-driven AP posts when its `PlanCarriers` event fires, so
    /// downstream actors (TX scheduling, diagnostics) get the plan and its
    /// expected cost in a single message.
    pub fn plan_report(
        &self,
        fsa: &DualPortFsa,
        estimated_orientation_rad: f64,
        true_orientation_rad: f64,
    ) -> Result<PlanReport, QueryError> {
        let plan = self.plan(fsa, estimated_orientation_rad)?;
        let (gain_a_dbi, gain_b_dbi) = self.plan_gain_dbi(fsa, &plan, true_orientation_rad);
        Ok(PlanReport {
            plan,
            estimated_orientation_rad,
            gain_a_dbi,
            gain_b_dbi,
            ook_fallback: matches!(plan, CarrierSet::SingleToneOok { .. }),
        })
    }

    /// Verifies a plan against the true orientation: the per-port gain the
    /// selected carriers achieve, in dBi — a diagnostic for how much an
    /// orientation-estimate error costs (§9.3 argues ≤3–4° is harmless
    /// because the beams are ~10° wide).
    pub fn plan_gain_dbi(
        &self,
        fsa: &DualPortFsa,
        plan: &CarrierSet,
        true_orientation_rad: f64,
    ) -> (f64, f64) {
        match *plan {
            CarrierSet::TwoTone { f_a, f_b } => (
                fsa.gain_dbi(FsaPort::A, f_a, true_orientation_rad),
                fsa.gain_dbi(FsaPort::B, f_b, true_orientation_rad),
            ),
            CarrierSet::SingleToneOok { f } => (
                fsa.gain_dbi(FsaPort::A, f, true_orientation_rad),
                fsa.gain_dbi(FsaPort::B, f, true_orientation_rad),
            ),
        }
    }
}

/// The outcome of one carrier-planning step.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlanReport {
    /// The selected carrier set.
    pub plan: CarrierSet,
    /// The orientation estimate the plan was built from, radians.
    pub estimated_orientation_rad: f64,
    /// Port-A gain the plan achieves at the true orientation, dBi.
    pub gain_a_dbi: f64,
    /// Port-B gain the plan achieves at the true orientation, dBi.
    pub gain_b_dbi: f64,
    /// Whether the planner fell back to single-carrier OOK.
    pub ook_fallback: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (QueryPlanner, DualPortFsa) {
        (
            QueryPlanner::milback_default(),
            DualPortFsa::milback_default(),
        )
    }

    #[test]
    fn off_normal_gets_two_tones() {
        let (p, fsa) = setup();
        let plan = p.plan(&fsa, 12f64.to_radians()).unwrap();
        match plan {
            CarrierSet::TwoTone { f_a, f_b } => {
                assert!(f_a != f_b);
                assert!((26.5e9..=29.5e9).contains(&f_a));
                assert!((26.5e9..=29.5e9).contains(&f_b));
            }
            other => panic!("expected two tones, got {other:?}"),
        }
    }

    #[test]
    fn normal_incidence_falls_back_to_ook() {
        let (p, fsa) = setup();
        let plan = p.plan(&fsa, 0.5f64.to_radians()).unwrap();
        assert!(matches!(plan, CarrierSet::SingleToneOok { .. }));
    }

    #[test]
    fn near_normal_separation_guard_triggers() {
        let (mut p, fsa) = setup();
        p.ook_fallback_rad = 0.0;
        p.min_tone_separation_hz = 1e9;
        // 2°: tones exist but are ~200 MHz apart < 1 GHz guard → OOK.
        let plan = p.plan(&fsa, 2f64.to_radians()).unwrap();
        assert!(matches!(plan, CarrierSet::SingleToneOok { .. }));
    }

    #[test]
    fn out_of_scan_orientation_errors() {
        let (p, fsa) = setup();
        let err = p.plan(&fsa, 45f64.to_radians()).unwrap_err();
        assert!(matches!(err, QueryError::OrientationOutOfRange { .. }));
        assert!(err.to_string().contains("scan range"));
    }

    #[test]
    fn planned_carriers_point_beams_at_ap() {
        let (p, fsa) = setup();
        let psi = 15f64.to_radians();
        let plan = p.plan(&fsa, psi).unwrap();
        let (ga, gb) = p.plan_gain_dbi(&fsa, &plan, psi);
        // Both within ~1 dB of the achievable peak at that angle.
        assert!(ga > 9.0, "port A only {ga:.1} dBi");
        assert!(gb > 9.0, "port B only {gb:.1} dBi");
    }

    #[test]
    fn small_orientation_error_costs_little_gain() {
        // §9.3: 3–4° of orientation error should not hurt communication
        // because the beams are ~10° wide.
        let (p, fsa) = setup();
        let true_psi = 15f64.to_radians();
        let est_psi = 18f64.to_radians(); // 3° estimation error
        let plan = p.plan(&fsa, est_psi).unwrap();
        let (ga, gb) = p.plan_gain_dbi(&fsa, &plan, true_psi);
        let ideal = p.plan(&fsa, true_psi).unwrap();
        let (ia, ib) = p.plan_gain_dbi(&fsa, &ideal, true_psi);
        assert!(ia - ga < 3.5, "port A loses {:.1} dB", ia - ga);
        assert!(ib - gb < 3.5, "port B loses {:.1} dB", ib - gb);
    }

    #[test]
    fn plan_report_bundles_plan_and_cost() {
        let (p, fsa) = setup();
        let psi = 15f64.to_radians();
        let r = p.plan_report(&fsa, psi, psi).unwrap();
        assert!(!r.ook_fallback);
        assert_eq!(r.estimated_orientation_rad, psi);
        let (ga, gb) = p.plan_gain_dbi(&fsa, &r.plan, psi);
        assert_eq!((r.gain_a_dbi, r.gain_b_dbi), (ga, gb));

        let near = p.plan_report(&fsa, 0.0, 0.0).unwrap();
        assert!(near.ook_fallback);

        assert!(p.plan_report(&fsa, 45f64.to_radians(), 0.0).is_err());
    }

    #[test]
    fn large_orientation_error_is_costly() {
        // Sanity check of the diagnostic: a 12° error points the beams away.
        let (p, fsa) = setup();
        let plan = p.plan(&fsa, 27f64.to_radians()).unwrap();
        let (ga, _) = p.plan_gain_dbi(&fsa, &plan, 15f64.to_radians());
        let ideal = p.plan(&fsa, 15f64.to_radians()).unwrap();
        let (ia, _) = p.plan_gain_dbi(&fsa, &ideal, 15f64.to_radians());
        assert!(ia - ga > 6.0, "only lost {:.1} dB", ia - ga);
    }
}
