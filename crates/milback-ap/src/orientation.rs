//! AP-side orientation estimation (§5.2a).
//!
//! While the node toggles one port (the other parked absorptive), the AP
//! transmits Field-2 sawtooth chirps. The node only retro-reflects the
//! sweep frequencies whose beam points back at the AP, so after background
//! subtraction the *time profile* of the residual echo within a chirp traces
//! the FSA gain across the sweep. The sweep instant with maximum reflected
//! power maps through `slope` to the beam frequency, and through the FSA's
//! frequency→angle law to the node's orientation.

use crate::fmcw::{FmcwError, FmcwProcessor};
use mmwave_rf::antenna::fsa::{FsaDesign, FsaPort};
use mmwave_sigproc::complex::Complex;
use mmwave_sigproc::detect::find_peak;
use serde::{Deserialize, Serialize};

/// Errors from the AP-side orientation estimator.
#[derive(Debug, Clone, PartialEq)]
pub enum ApOrientationError {
    /// The underlying FMCW stage failed.
    Fmcw(FmcwError),
    /// The peak sweep frequency maps outside the FSA scan range.
    OutOfScanRange {
        /// The measured peak frequency, Hz.
        freq_hz: f64,
    },
    /// The subtracted residual was empty.
    EmptyResidual,
}

impl std::fmt::Display for ApOrientationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ApOrientationError::Fmcw(e) => write!(f, "FMCW stage failed: {e}"),
            ApOrientationError::OutOfScanRange { freq_hz } => {
                write!(
                    f,
                    "peak reflection at {freq_hz:.3e} Hz is outside the FSA scan range"
                )
            }
            ApOrientationError::EmptyResidual => write!(f, "no residual signal after subtraction"),
        }
    }
}

impl std::error::Error for ApOrientationError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ApOrientationError::Fmcw(e) => Some(e),
            ApOrientationError::OutOfScanRange { .. } | ApOrientationError::EmptyResidual => None,
        }
    }
}

impl From<FmcwError> for ApOrientationError {
    fn from(e: FmcwError) -> Self {
        ApOrientationError::Fmcw(e)
    }
}

/// An orientation estimate from the AP's side.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ApOrientationEstimate {
    /// Estimated node orientation (incidence angle at the node), radians.
    pub orientation_rad: f64,
    /// Sweep frequency of maximum reflection, Hz.
    pub peak_freq_hz: f64,
    /// Time within the chirp of maximum reflection, seconds.
    pub peak_time_s: f64,
}

/// The AP-side orientation estimator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ApOrientationEstimator {
    /// Which node port was toggling during the measurement.
    pub toggled_port: FsaPort,
    /// Moving-average smoothing window over the residual envelope, samples.
    pub smooth_samples: usize,
}

impl ApOrientationEstimator {
    /// Default: port A toggles; the smoothing window (≈1.5 µs at 50 MS/s)
    /// averages out multipath-interference ripple, which beats at a few
    /// hundred kHz, while staying well inside the ~3 µs width the ~10° beam
    /// envelope occupies within the sweep.
    pub fn milback_default() -> Self {
        Self {
            toggled_port: FsaPort::A,
            smooth_samples: 75,
        }
    }

    /// Estimates orientation from consecutive chirp captures (the node
    /// toggling `toggled_port` between them).
    ///
    /// Works in the time domain: subtracts consecutive chirps' beat signals
    /// (the paper's FFT → subtract → IFFT round trip is equivalent),
    /// smooths the residual envelope and finds the sweep position of peak
    /// reflected power.
    pub fn estimate(
        &self,
        proc: &FmcwProcessor,
        beats: &[Vec<Complex>],
        fsa: &FsaDesign,
    ) -> Result<ApOrientationEstimate, ApOrientationError> {
        if beats.len() < 2 {
            return Err(ApOrientationError::Fmcw(FmcwError::NotEnoughChirps {
                got: beats.len(),
            }));
        }
        let n = beats[0].len();
        if beats.iter().any(|b| b.len() != n) {
            return Err(ApOrientationError::Fmcw(FmcwError::LengthMismatch));
        }
        if n == 0 {
            return Err(ApOrientationError::EmptyResidual);
        }
        // Accumulate |pairwise difference|² over all consecutive pairs.
        let mut envelope = vec![0.0f64; n];
        for pair in beats.windows(2) {
            for (k, e) in envelope.iter_mut().enumerate() {
                *e += (pair[0][k] - pair[1][k]).norm_sqr();
            }
        }
        let smoothed = moving_average(&envelope, self.smooth_samples.max(1));
        let peak = find_peak(&smoothed).ok_or(ApOrientationError::EmptyResidual)?;
        let t = peak.position / proc.sample_rate_hz;
        let freq = proc.chirp.instantaneous_freq(t);
        let orientation = fsa
            .beam_angle_rad(self.toggled_port, freq)
            .ok_or(ApOrientationError::OutOfScanRange { freq_hz: freq })?;
        Ok(ApOrientationEstimate {
            orientation_rad: orientation,
            peak_freq_hz: freq,
            peak_time_s: t,
        })
    }

    /// Averages estimates over several independent chirp groups.
    pub fn estimate_multi(
        &self,
        proc: &FmcwProcessor,
        groups: &[Vec<Vec<Complex>>],
        fsa: &FsaDesign,
    ) -> Result<f64, ApOrientationError> {
        let ests: Vec<f64> = groups
            .iter()
            .filter_map(|g| self.estimate(proc, g, fsa).ok().map(|e| e.orientation_rad))
            .collect();
        if ests.is_empty() {
            return Err(ApOrientationError::EmptyResidual);
        }
        Ok(mmwave_sigproc::stats::mean(&ests))
    }
}

/// Centered moving average with edge clamping.
fn moving_average(x: &[f64], window: usize) -> Vec<f64> {
    let half = window / 2;
    (0..x.len())
        .map(|i| {
            let lo = i.saturating_sub(half);
            let hi = (i + half + 1).min(x.len());
            x[lo..hi].iter().sum::<f64>() / (hi - lo) as f64
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmwave_rf::channel::{synthesize_beat, Echo};
    use mmwave_sigproc::random::GaussianSource;

    /// Captures chirps where the node's echo amplitude follows the FSA gain
    /// at the instantaneous sweep frequency and toggles chirp-to-chirp.
    #[allow(clippy::too_many_arguments)]
    fn capture(
        proc: &FmcwProcessor,
        fsa: &FsaDesign,
        psi: f64,
        range: f64,
        base_amp: f64,
        noise: f64,
        seed: u64,
        chirps: usize,
    ) -> Vec<Vec<Complex>> {
        let mut rng = GaussianSource::new(seed);
        (0..chirps)
            .map(|k| {
                let gamma = if k % 2 == 0 { 0.83 } else { 0.18 };
                let fsa = *fsa;
                let node = Echo {
                    distance_m: range,
                    extra_phase_rad: 0.0,
                    amplitude: Box::new(move |_, f| {
                        let g = fsa.gain_linear(FsaPort::A, f, psi);
                        Complex::real(base_amp * g * gamma)
                    }),
                };
                let clutter = Echo::constant(2.2, 4e-4);
                let mut b = synthesize_beat(&proc.chirp, &[clutter, node], proc.sample_rate_hz);
                rng.add_complex_noise(&mut b, noise);
                b
            })
            .collect()
    }

    #[test]
    fn recovers_orientation_across_the_scan() {
        let proc = FmcwProcessor::milback_default();
        let fsa = FsaDesign::milback_default();
        let est = ApOrientationEstimator::milback_default();
        for deg in [-24.0f64, -10.0, 0.0, 8.0, 20.0] {
            let psi = deg.to_radians();
            let beats = capture(&proc, &fsa, psi, 3.0, 1e-6, 1e-18, 31, 5);
            let got = est.estimate(&proc, &beats, &fsa).unwrap();
            assert!(
                (got.orientation_rad - psi).abs().to_degrees() < 1.5,
                "at {deg}°: got {:.2}°",
                got.orientation_rad.to_degrees()
            );
        }
    }

    #[test]
    fn peak_frequency_matches_fsa_law() {
        let proc = FmcwProcessor::milback_default();
        let fsa = FsaDesign::milback_default();
        let est = ApOrientationEstimator::milback_default();
        let psi = 15f64.to_radians();
        let beats = capture(&proc, &fsa, psi, 3.0, 1e-6, 1e-18, 32, 5);
        let got = est.estimate(&proc, &beats, &fsa).unwrap();
        let expected = fsa.frequency_for_angle(FsaPort::A, psi).unwrap();
        assert!(
            (got.peak_freq_hz - expected).abs() < 60e6,
            "peak {:.4e} vs {expected:.4e}",
            got.peak_freq_hz
        );
    }

    #[test]
    fn noise_robust_with_multi_group_averaging() {
        let proc = FmcwProcessor::milback_default();
        let fsa = FsaDesign::milback_default();
        let est = ApOrientationEstimator::milback_default();
        let psi = (-12f64).to_radians();
        let groups: Vec<_> = (0..5)
            .map(|s| capture(&proc, &fsa, psi, 3.0, 1e-6, 2e-14, 40 + s, 5))
            .collect();
        let got = est.estimate_multi(&proc, &groups, &fsa).unwrap();
        assert!(
            (got - psi).abs().to_degrees() < 2.0,
            "got {:.2}°",
            got.to_degrees()
        );
    }

    #[test]
    fn too_few_chirps_rejected() {
        let proc = FmcwProcessor::milback_default();
        let fsa = FsaDesign::milback_default();
        let est = ApOrientationEstimator::milback_default();
        let err = est.estimate(&proc, &[], &fsa).unwrap_err();
        assert!(matches!(
            err,
            ApOrientationError::Fmcw(FmcwError::NotEnoughChirps { .. })
        ));
    }

    #[test]
    fn moving_average_smooths() {
        let x = [0.0, 0.0, 10.0, 0.0, 0.0];
        let y = moving_average(&x, 3);
        assert!(y[2] < 10.0 && y[1] > 0.0 && y[3] > 0.0);
        // Mean preserved approximately in the interior.
        assert!((y[2] - 10.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn port_b_estimation_mirrors() {
        let proc = FmcwProcessor::milback_default();
        let fsa = FsaDesign::milback_default();
        let psi = 10f64.to_radians();
        // Node toggles port B instead.
        let mut rng = GaussianSource::new(50);
        let beats: Vec<Vec<Complex>> = (0..5)
            .map(|k| {
                let gamma = if k % 2 == 0 { 0.83 } else { 0.18 };
                let node = Echo {
                    distance_m: 3.0,
                    extra_phase_rad: 0.0,
                    amplitude: Box::new(move |_, f| {
                        Complex::real(1e-6 * fsa.gain_linear(FsaPort::B, f, psi) * gamma)
                    }),
                };
                let mut b = synthesize_beat(&proc.chirp, &[node], proc.sample_rate_hz);
                rng.add_complex_noise(&mut b, 1e-18);
                b
            })
            .collect();
        let est = ApOrientationEstimator {
            toggled_port: FsaPort::B,
            smooth_samples: 15,
        };
        let got = est.estimate(&proc, &beats, &fsa).unwrap();
        assert!((got.orientation_rad - psi).abs().to_degrees() < 1.5);
    }

    #[test]
    fn error_display() {
        assert!(ApOrientationError::EmptyResidual
            .to_string()
            .contains("residual"));
        assert!(ApOrientationError::OutOfScanRange { freq_hz: 1e9 }
            .to_string()
            .contains("scan"));
    }
}
