//! AP waveform generation — the Keysight VXG substitute (§8).
//!
//! Three waveform families:
//! * Field-1 **triangular** chirps (45 µs): node-side orientation sensing
//!   plus mode signalling (3 chirps = uplink, 2 chirps with a gap =
//!   downlink — §7, Fig 8),
//! * Field-2 **sawtooth** chirps (18 µs × 5): AP-side localization and
//!   orientation,
//! * **two-tone** queries / keyed tones for OAQFM payloads.
//!
//! The paper's generator tops out at 2 GHz of instantaneous bandwidth, so
//! the 3 GHz sweep is stitched from two 2 GHz chirps centered at 27.25 and
//! 28.75 GHz (§8, footnote 2); [`FmcwConfig::patched_segments`] exposes the
//! same split so the harness can reproduce the patching step.

use mmwave_sigproc::waveform::{Chirp, OaqfmSymbol, Tone};
use serde::{Deserialize, Serialize};

/// FMCW sweep configuration shared by both preamble fields.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FmcwConfig {
    /// Sweep start, Hz (26.5 GHz).
    pub start_hz: f64,
    /// Sweep bandwidth, Hz (3 GHz).
    pub bandwidth_hz: f64,
    /// Field-1 triangular chirp duration, seconds (45 µs — slower so the
    /// node's 1 MS/s ADC can follow).
    pub field1_chirp_s: f64,
    /// Field-2 sawtooth chirp duration, seconds (18 µs).
    pub field2_chirp_s: f64,
    /// Interval between consecutive Field-2 chirps, seconds — set to the
    /// node's toggle half-period so consecutive chirps see opposite states.
    pub chirp_interval_s: f64,
    /// Maximum instantaneous bandwidth of the generator, Hz (2 GHz on the
    /// M9384B VXG).
    pub generator_max_bw_hz: f64,
}

impl FmcwConfig {
    /// The paper's numbers.
    pub fn milback_default() -> Self {
        Self {
            start_hz: 26.5e9,
            bandwidth_hz: 3e9,
            field1_chirp_s: 45e-6,
            field2_chirp_s: 18e-6,
            chirp_interval_s: 100e-6,
            generator_max_bw_hz: 2e9,
        }
    }

    /// The Field-1 triangular chirp.
    pub fn field1_chirp(&self) -> Chirp {
        Chirp::triangular(self.start_hz, self.bandwidth_hz, self.field1_chirp_s)
    }

    /// The Field-2 sawtooth chirp.
    pub fn field2_chirp(&self) -> Chirp {
        Chirp::sawtooth(self.start_hz, self.bandwidth_hz, self.field2_chirp_s)
    }

    /// End frequency of the sweep.
    pub fn end_hz(&self) -> f64 {
        self.start_hz + self.bandwidth_hz
    }

    /// The sub-sweeps the physical generator must stitch: as many
    /// `generator_max_bw_hz`-wide segments as needed to cover the band
    /// (two 2 GHz chirps at 27.25 / 28.75 GHz center for the defaults).
    pub fn patched_segments(&self) -> Vec<(f64, f64)> {
        let n = (self.bandwidth_hz / self.generator_max_bw_hz).ceil() as usize;
        let seg_bw = self.bandwidth_hz / n as f64;
        (0..n)
            .map(|i| {
                let start = self.start_hz + i as f64 * seg_bw;
                (start + seg_bw / 2.0, seg_bw)
            })
            .collect()
    }
}

/// Link direction announced by the Field-1 chirp count (§7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LinkDirection {
    /// Three Field-1 chirps: the payload is uplink (node talks).
    Uplink,
    /// Two Field-1 chirps with a gap: the payload is downlink (AP talks).
    Downlink,
}

impl LinkDirection {
    /// Number of Field-1 triangular chirps that signal this direction.
    pub fn field1_chirp_count(self) -> usize {
        match self {
            LinkDirection::Uplink => 3,
            LinkDirection::Downlink => 2,
        }
    }

    /// Decodes the direction from a detected chirp count.
    ///
    /// Returns `None` for counts outside the protocol.
    pub fn from_chirp_count(count: usize) -> Option<Self> {
        match count {
            3 => Some(LinkDirection::Uplink),
            2 => Some(LinkDirection::Downlink),
            _ => None,
        }
    }
}

/// A two-tone (or degenerate single-tone) carrier set for OAQFM.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum CarrierSet {
    /// Distinct tones aligning port A and port B beams at the AP.
    TwoTone {
        /// Port-A carrier, Hz.
        f_a: f64,
        /// Port-B carrier, Hz.
        f_b: f64,
    },
    /// Normal incidence: both beams share one frequency; fall back to
    /// single-carrier OOK (§6.2).
    SingleToneOok {
        /// The shared carrier, Hz.
        f: f64,
    },
}

impl CarrierSet {
    /// Bits conveyed per symbol with this carrier set.
    pub fn bits_per_symbol(&self) -> u32 {
        match self {
            CarrierSet::TwoTone { .. } => 2,
            CarrierSet::SingleToneOok { .. } => 1,
        }
    }

    /// The tones transmitted for an OAQFM symbol, as `(freq, amplitude)`
    /// pairs with unit amplitude per active tone. For the OOK fallback the
    /// `tone_a` flag keys the single carrier.
    pub fn tones_for_symbol(&self, sym: OaqfmSymbol) -> Vec<Tone> {
        match *self {
            CarrierSet::TwoTone { f_a, f_b } => {
                let mut v = Vec::with_capacity(2);
                if sym.tone_a {
                    v.push(Tone::new(f_a, 1.0));
                }
                if sym.tone_b {
                    v.push(Tone::new(f_b, 1.0));
                }
                v
            }
            CarrierSet::SingleToneOok { f } => {
                if sym.tone_a {
                    vec![Tone::new(f, 1.0)]
                } else {
                    vec![]
                }
            }
        }
    }

    /// Both tones on — the continuous query signal for uplink (§6.3).
    pub fn query_tones(&self) -> Vec<Tone> {
        self.tones_for_symbol(OaqfmSymbol {
            tone_a: true,
            tone_b: true,
        })
    }
}

/// The downlink keying plan for a payload: one tone set per symbol period.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DownlinkKeying {
    /// The carriers in use.
    pub carriers: CarrierSet,
    /// Symbol duration, seconds.
    pub symbol_duration_s: f64,
    /// The symbol sequence.
    pub symbols: Vec<OaqfmSymbol>,
}

impl DownlinkKeying {
    /// Keys a byte payload at `symbol_rate_hz`.
    ///
    /// # Panics
    /// Panics for a non-positive rate.
    pub fn for_bytes(carriers: CarrierSet, payload: &[u8], symbol_rate_hz: f64) -> Self {
        assert!(symbol_rate_hz > 0.0);
        Self {
            carriers,
            symbol_duration_s: 1.0 / symbol_rate_hz,
            symbols: mmwave_sigproc::waveform::bytes_to_symbols(payload),
        }
    }

    /// Total airtime of the payload, seconds.
    pub fn duration_s(&self) -> f64 {
        self.symbols.len() as f64 * self.symbol_duration_s
    }

    /// Bit rate of the keying, bits/second.
    pub fn bit_rate_hz(&self) -> f64 {
        self.carriers.bits_per_symbol() as f64 / self.symbol_duration_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_matches_paper() {
        let c = FmcwConfig::milback_default();
        assert_eq!(c.start_hz, 26.5e9);
        assert_eq!(c.end_hz(), 29.5e9);
        assert_eq!(c.field1_chirp(), Chirp::triangular(26.5e9, 3e9, 45e-6));
        assert_eq!(c.field2_chirp(), Chirp::sawtooth(26.5e9, 3e9, 18e-6));
    }

    #[test]
    fn patched_segments_reproduce_footnote_2() {
        let c = FmcwConfig::milback_default();
        let segs = c.patched_segments();
        assert_eq!(segs.len(), 2);
        assert!((segs[0].0 - 27.25e9).abs() < 1.0);
        assert!((segs[1].0 - 28.75e9).abs() < 1.0);
        assert!((segs[0].1 - 1.5e9).abs() < 1.0);
    }

    #[test]
    fn single_segment_when_generator_is_wide_enough() {
        let mut c = FmcwConfig::milback_default();
        c.generator_max_bw_hz = 4e9;
        assert_eq!(c.patched_segments().len(), 1);
    }

    #[test]
    fn link_direction_chirp_counts() {
        assert_eq!(LinkDirection::Uplink.field1_chirp_count(), 3);
        assert_eq!(LinkDirection::Downlink.field1_chirp_count(), 2);
        assert_eq!(
            LinkDirection::from_chirp_count(3),
            Some(LinkDirection::Uplink)
        );
        assert_eq!(
            LinkDirection::from_chirp_count(2),
            Some(LinkDirection::Downlink)
        );
        assert_eq!(LinkDirection::from_chirp_count(5), None);
    }

    #[test]
    fn two_tone_symbol_mapping() {
        let c = CarrierSet::TwoTone {
            f_a: 28.5e9,
            f_b: 27.5e9,
        };
        assert_eq!(c.bits_per_symbol(), 2);
        let t11 = c.tones_for_symbol(OaqfmSymbol::from_bits(0b11));
        assert_eq!(t11.len(), 2);
        let t10 = c.tones_for_symbol(OaqfmSymbol::from_bits(0b10));
        assert_eq!(t10.len(), 1);
        assert_eq!(t10[0].freq_hz, 28.5e9);
        let t01 = c.tones_for_symbol(OaqfmSymbol::from_bits(0b01));
        assert_eq!(t01[0].freq_hz, 27.5e9);
        assert!(c.tones_for_symbol(OaqfmSymbol::from_bits(0b00)).is_empty());
    }

    #[test]
    fn ook_fallback_keys_single_tone() {
        let c = CarrierSet::SingleToneOok { f: 28e9 };
        assert_eq!(c.bits_per_symbol(), 1);
        assert_eq!(c.tones_for_symbol(OaqfmSymbol::from_bits(0b10)).len(), 1);
        assert!(c.tones_for_symbol(OaqfmSymbol::from_bits(0b00)).is_empty());
    }

    #[test]
    fn query_is_both_tones() {
        let c = CarrierSet::TwoTone {
            f_a: 28.5e9,
            f_b: 27.5e9,
        };
        assert_eq!(c.query_tones().len(), 2);
    }

    #[test]
    fn downlink_keying_timing() {
        let c = CarrierSet::TwoTone {
            f_a: 28.5e9,
            f_b: 27.5e9,
        };
        let k = DownlinkKeying::for_bytes(c, &[0xAB, 0xCD], 1e6);
        assert_eq!(k.symbols.len(), 8);
        assert!((k.duration_s() - 8e-6).abs() < 1e-12);
        assert!((k.bit_rate_hz() - 2e6).abs() < 1e-9);
    }

    #[test]
    fn ook_keying_halves_bit_rate() {
        let k = DownlinkKeying::for_bytes(CarrierSet::SingleToneOok { f: 28e9 }, &[0xFF], 1e6);
        assert!((k.bit_rate_hz() - 1e6).abs() < 1e-9);
    }
}
