//! FMCW processing at the AP: range spectra, five-chirp background
//! subtraction, and node-echo detection (§5.1).
//!
//! The AP digitizes the mixer output (beat signal) for each of the five
//! Field-2 sawtooth chirps while the node toggles its reflection at the
//! chirp repetition rate. Static clutter produces identical beat signals
//! chirp-to-chirp; the node's echo alternates. Pairwise subtraction of
//! consecutive chirp spectra therefore cancels clutter (and the AP's
//! self-interference) while the node's modulated echo survives.

use mmwave_sigproc::complex::{Complex, ZERO};
use mmwave_sigproc::detect::{find_peak, Peak};
use mmwave_sigproc::fft::{Direction, FftPlanner};
use mmwave_sigproc::parallel;
use mmwave_sigproc::units::SPEED_OF_LIGHT;
use mmwave_sigproc::waveform::{Chirp, ChirpShape};
use mmwave_sigproc::window::Window;
use serde::{Deserialize, Serialize};

/// Errors from the FMCW pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum FmcwError {
    /// Need at least two chirps for background subtraction.
    NotEnoughChirps {
        /// Chirps provided.
        got: usize,
    },
    /// Chirp captures differ in length.
    LengthMismatch,
    /// No echo survived background subtraction above the detection floor.
    NoEchoDetected,
}

impl std::fmt::Display for FmcwError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FmcwError::NotEnoughChirps { got } => {
                write!(f, "background subtraction needs ≥2 chirps, got {got}")
            }
            FmcwError::LengthMismatch => write!(f, "chirp captures differ in length"),
            FmcwError::NoEchoDetected => write!(f, "no modulated echo above detection floor"),
        }
    }
}

impl std::error::Error for FmcwError {}

/// A detected (node) echo.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EchoDetection {
    /// Estimated range, meters.
    pub range_m: f64,
    /// Beat frequency of the echo, Hz.
    pub beat_hz: f64,
    /// Peak power of the subtracted spectrum at the echo (linear).
    pub peak_power: f64,
    /// Ratio of the peak to the median subtracted-spectrum power, dB — a
    /// detection-confidence figure.
    pub peak_to_floor_db: f64,
    /// Sub-bin interpolated spectrum position, bins.
    pub bin_position: f64,
}

/// Reusable workspace for the FMCW pipeline.
///
/// The pipeline's steady state (one localization capture per trial, five
/// chirps each) previously re-allocated the flat spectra buffer, the FFT
/// scratch and the accumulation buffer on every call. Holding one
/// `FmcwScratch` per worker and calling the `*_with` variants
/// ([`FmcwProcessor::range_spectra_flat_with`],
/// [`FmcwProcessor::subtracted_power_with`],
/// [`FmcwProcessor::detect_node_with`]) makes repeat captures
/// allocation-free after the first: buffers grow to the high-water mark and
/// are reused. Results are bit-exact with the allocating paths (same plan,
/// same per-frame routine, same accumulation order).
#[derive(Debug, Default)]
pub struct FmcwScratch {
    /// Row-major per-chirp spectra, `fft_len() × chirps`.
    flat: Vec<Complex>,
    /// Planner scratch (`FftPlan::scratch_len()` f64s).
    fft: Vec<f64>,
    /// Accumulated subtracted power, `fft_len() / 2`.
    acc: Vec<f64>,
}

impl FmcwScratch {
    /// An empty workspace; buffers are sized lazily on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// The AP's FMCW processor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FmcwProcessor {
    /// The sawtooth localization chirp (Field 2).
    pub chirp: Chirp,
    /// Digitizer sample rate, Hz.
    pub sample_rate_hz: f64,
    /// Window applied before the range FFT.
    pub window: Window,
    /// Zero-padding factor (≥1) for finer spectral interpolation.
    pub zero_pad_factor: usize,
    /// Detection threshold: required peak-to-median-floor ratio, dB.
    pub detection_threshold_db: f64,
}

impl FmcwProcessor {
    /// Creates a processor.
    ///
    /// # Panics
    /// Panics unless the chirp is sawtooth and parameters are positive.
    pub fn new(chirp: Chirp, sample_rate_hz: f64) -> Self {
        assert!(
            chirp.shape == ChirpShape::Sawtooth,
            "localization uses sawtooth chirps"
        );
        assert!(sample_rate_hz > 0.0);
        Self {
            chirp,
            sample_rate_hz,
            window: Window::Hann,
            zero_pad_factor: 4,
            detection_threshold_db: 10.0,
        }
    }

    /// The paper's Field-2 processing: 18 µs, 3 GHz sawtooth at 50 MS/s.
    pub fn milback_default() -> Self {
        Self::new(Chirp::sawtooth(26.5e9, 3e9, 18e-6), 50e6)
    }

    /// Samples per chirp at the digitizer rate.
    pub fn samples_per_chirp(&self) -> usize {
        (self.chirp.duration_s * self.sample_rate_hz).round() as usize
    }

    /// FFT length after zero padding.
    pub fn fft_len(&self) -> usize {
        (self.samples_per_chirp() * self.zero_pad_factor.max(1)).next_power_of_two()
    }

    /// Converts a (possibly fractional) FFT bin to range in meters.
    pub fn bin_to_range_m(&self, bin: f64) -> f64 {
        let beat_hz = bin * self.sample_rate_hz / self.fft_len() as f64;
        SPEED_OF_LIGHT * beat_hz / (2.0 * self.chirp.slope())
    }

    /// Range represented by each FFT bin (first half of the spectrum).
    pub fn range_axis_m(&self) -> Vec<f64> {
        (0..self.fft_len() / 2)
            .map(|k| self.bin_to_range_m(k as f64))
            .collect()
    }

    /// Windowed, zero-padded range spectrum of one chirp's beat signal.
    pub fn range_spectrum(&self, beat: &[Complex]) -> Vec<Complex> {
        let n = self.fft_len();
        let plan = FftPlanner::plan(n);
        let mut out = vec![ZERO; n];
        let mut scratch = vec![0.0f64; plan.scratch_len()];
        self.range_spectrum_into(beat, &mut out, &mut scratch);
        out
    }

    /// Allocation-free core of [`Self::range_spectrum`]: windows `beat`, zero-pads
    /// it into `out`, and runs the planned range FFT in place, using
    /// caller-owned `scratch`. Hot loops (per-chirp fan-out, benches) call
    /// this with reused buffers so the steady state performs no heap
    /// allocation.
    ///
    /// # Panics
    /// Panics unless `out.len() == fft_len()`, `beat.len() <= fft_len()`,
    /// and `scratch` is at least `FftPlanner::plan(fft_len()).scratch_len()`.
    pub fn range_spectrum_into(&self, beat: &[Complex], out: &mut [Complex], scratch: &mut [f64]) {
        let n = self.fft_len();
        assert_eq!(out.len(), n, "output buffer must be fft_len() long");
        assert!(beat.len() <= n, "beat signal longer than the FFT length");
        out[..beat.len()].copy_from_slice(beat);
        self.window.apply_complex(&mut out[..beat.len()]);
        out[beat.len()..].fill(ZERO);
        FftPlanner::plan(n).process_with_scratch(out, scratch, Direction::Forward);
    }

    /// Range spectra of every chirp as one flat row-major buffer
    /// (spectrum of chirp `c` occupies `flat[c * fft_len()..][..fft_len()]`),
    /// computed by up to `threads` workers. One FFT plan and one scratch
    /// buffer per worker; output is bit-identical for every thread count.
    pub fn range_spectra_flat(
        &self,
        beats: &[Vec<Complex>],
        threads: usize,
    ) -> Result<Vec<Complex>, FmcwError> {
        if let Some(first) = beats.first() {
            if beats.iter().any(|b| b.len() != first.len()) {
                return Err(FmcwError::LengthMismatch);
            }
        }
        let n = self.fft_len();
        let plan = FftPlanner::plan(n);
        let mut flat = vec![ZERO; n * beats.len()];
        parallel::for_each_chunk_with(
            &mut flat,
            n,
            threads,
            || vec![0.0f64; plan.scratch_len()],
            |scratch, start, out| self.range_spectrum_into(&beats[start / n], out, scratch),
        );
        Ok(flat)
    }

    /// Batched serial variant of [`Self::range_spectra_flat`] reusing a
    /// caller-owned [`FmcwScratch`]: the FFT plan is looked up once for the
    /// whole chirp stack and every frame goes through
    /// [`mmwave_sigproc::fft::FftPlan::process_many_with_scratch`], so the
    /// steady state performs no plan lookups and no heap allocation.
    /// Output is bit-identical to [`Self::range_spectra_flat`] at any
    /// thread count (same per-frame routine, same plan).
    pub fn range_spectra_flat_with<'s>(
        &self,
        beats: &[Vec<Complex>],
        scratch: &'s mut FmcwScratch,
    ) -> Result<&'s [Complex], FmcwError> {
        self.fill_spectra_flat(beats, &mut scratch.flat, &mut scratch.fft)?;
        Ok(&scratch.flat)
    }

    /// Windows, zero-pads and FFTs every chirp into `flat` (row-major),
    /// batching all frames through one plan lookup and one scratch buffer.
    fn fill_spectra_flat(
        &self,
        beats: &[Vec<Complex>],
        flat: &mut Vec<Complex>,
        fft: &mut Vec<f64>,
    ) -> Result<(), FmcwError> {
        if let Some(first) = beats.first() {
            if beats.iter().any(|b| b.len() != first.len()) {
                return Err(FmcwError::LengthMismatch);
            }
        }
        let n = self.fft_len();
        let plan = FftPlanner::plan(n);
        flat.resize(n * beats.len(), ZERO);
        fft.resize(plan.scratch_len(), 0.0);
        for (frame, beat) in flat.chunks_exact_mut(n).zip(beats) {
            assert!(beat.len() <= n, "beat signal longer than the FFT length");
            frame[..beat.len()].copy_from_slice(beat);
            self.window.apply_complex(&mut frame[..beat.len()]);
            frame[beat.len()..].fill(ZERO);
        }
        plan.process_many_with_scratch(flat, fft, Direction::Forward);
        Ok(())
    }

    /// Pairwise spectrum differences across consecutive chirps — the
    /// background-subtraction step. Input: one spectrum per chirp.
    ///
    /// # Panics
    /// Panics on fewer than two spectra or mismatched lengths.
    pub fn background_subtract(&self, spectra: &[Vec<Complex>]) -> Vec<Vec<Complex>> {
        assert!(spectra.len() >= 2, "need at least two spectra");
        let n = spectra[0].len();
        assert!(
            spectra.iter().all(|s| s.len() == n),
            "spectrum lengths differ"
        );
        spectra
            .windows(2)
            .map(|pair| pair[0].iter().zip(&pair[1]).map(|(&a, &b)| a - b).collect())
            .collect()
    }

    /// Full node detection: per-chirp spectra → pairwise subtraction →
    /// incoherent accumulation → peak pick over the positive-range half.
    ///
    /// `beats` holds the digitized beat signal of each chirp (the node must
    /// have toggled between at least two of them, else everything cancels
    /// and `NoEchoDetected` is returned).
    pub fn detect_node(&self, beats: &[Vec<Complex>]) -> Result<EchoDetection, FmcwError> {
        if beats.len() < 2 {
            return Err(FmcwError::NotEnoughChirps { got: beats.len() });
        }
        let acc = self.subtracted_power(beats)?;
        self.detect_from_power(&acc)
    }

    /// Allocation-free [`Self::detect_node`] reusing a caller-owned
    /// [`FmcwScratch`] — bit-exact with the allocating path.
    pub fn detect_node_with(
        &self,
        beats: &[Vec<Complex>],
        scratch: &mut FmcwScratch,
    ) -> Result<EchoDetection, FmcwError> {
        if beats.len() < 2 {
            return Err(FmcwError::NotEnoughChirps { got: beats.len() });
        }
        self.subtracted_power_with(beats, scratch)?;
        self.detect_from_power(&scratch.acc)
    }

    /// Peak pick + floor gate on an accumulated subtracted-power spectrum —
    /// the shared tail of [`Self::detect_node`] / [`Self::detect_node_with`].
    fn detect_from_power(&self, acc: &[f64]) -> Result<EchoDetection, FmcwError> {
        let peak = find_peak(acc).ok_or(FmcwError::NoEchoDetected)?;
        let floor = median_floor(acc);
        let ratio_db = 10.0 * (peak.value / floor.max(1e-300)).log10();
        if ratio_db < self.detection_threshold_db {
            return Err(FmcwError::NoEchoDetected);
        }
        Ok(EchoDetection {
            range_m: self.bin_to_range_m(peak.position),
            beat_hz: peak.position * self.sample_rate_hz / self.fft_len() as f64,
            peak_power: peak.value,
            peak_to_floor_db: ratio_db,
            bin_position: peak.position,
        })
    }

    /// The subtracted-and-accumulated power spectrum itself (for plotting
    /// and for the AoA stage, which needs the peak bin of both channels).
    pub fn subtracted_power(&self, beats: &[Vec<Complex>]) -> Result<Vec<f64>, FmcwError> {
        if beats.len() < 2 {
            return Err(FmcwError::NotEnoughChirps { got: beats.len() });
        }
        let n = self.fft_len();
        let flat = self.range_spectra_flat(beats, parallel::max_threads())?;
        let rows: Vec<&[Complex]> = flat.chunks_exact(n).collect();
        // Accumulate |diff|² across consecutive-chirp pairs; keep only the
        // positive-beat half.
        let half = n / 2;
        let mut acc = vec![0.0f64; half];
        for pair in rows.windows(2) {
            for (k, slot) in acc.iter_mut().enumerate() {
                *slot += (pair[0][k] - pair[1][k]).norm_sqr();
            }
        }
        Ok(acc)
    }

    /// Allocation-free [`Self::subtracted_power`] reusing a caller-owned
    /// [`FmcwScratch`]: spectra come from the batched serial FFT path and
    /// the accumulation runs in the reused `acc` buffer, in the same pair
    /// order as the allocating path — results are bit-identical.
    pub fn subtracted_power_with<'s>(
        &self,
        beats: &[Vec<Complex>],
        scratch: &'s mut FmcwScratch,
    ) -> Result<&'s [f64], FmcwError> {
        if beats.len() < 2 {
            return Err(FmcwError::NotEnoughChirps { got: beats.len() });
        }
        self.fill_spectra_flat(beats, &mut scratch.flat, &mut scratch.fft)?;
        let n = self.fft_len();
        let half = n / 2;
        scratch.acc.resize(half, 0.0);
        scratch.acc.fill(0.0);
        for c in 0..beats.len() - 1 {
            let a = &scratch.flat[c * n..(c + 1) * n];
            let b = &scratch.flat[(c + 1) * n..(c + 2) * n];
            for (k, slot) in scratch.acc.iter_mut().enumerate() {
                *slot += (a[k] - b[k]).norm_sqr();
            }
        }
        Ok(&scratch.acc)
    }

    /// Complex subtracted spectrum of the first chirp pair — retains phase,
    /// which the AoA estimator compares across the two RX antennas.
    pub fn subtracted_spectrum(&self, beats: &[Vec<Complex>]) -> Result<Vec<Complex>, FmcwError> {
        if beats.len() < 2 {
            return Err(FmcwError::NotEnoughChirps { got: beats.len() });
        }
        if beats[0].len() != beats[1].len() {
            return Err(FmcwError::LengthMismatch);
        }
        let s0 = self.range_spectrum(&beats[0]);
        let s1 = self.range_spectrum(&beats[1]);
        Ok(s0.iter().zip(&s1).map(|(&a, &b)| a - b).collect())
    }

    /// Refines a peak found on one channel to a [`Peak`] on an arbitrary
    /// power spectrum (helper for multi-channel processing).
    pub fn refine_on(&self, power: &[f64], index: usize) -> Peak {
        mmwave_sigproc::detect::refine_peak(power, index)
    }
}

/// Median of a power spectrum — a robust noise-floor estimate.
fn median_floor(power: &[f64]) -> f64 {
    mmwave_sigproc::stats::median(power)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmwave_rf::channel::{synthesize_beat, Echo};
    use mmwave_sigproc::random::GaussianSource;

    fn proc() -> FmcwProcessor {
        FmcwProcessor::milback_default()
    }

    /// Synthesizes `n` chirps of beat signal: static clutter plus a node
    /// echo whose amplitude alternates chirp-to-chirp (toggling).
    fn capture(
        p: &FmcwProcessor,
        node_range: f64,
        node_amp: f64,
        clutter: &[(f64, f64)],
        n: usize,
        noise_power: f64,
        seed: u64,
    ) -> Vec<Vec<Complex>> {
        let mut rng = GaussianSource::new(seed);
        (0..n)
            .map(|k| {
                let refl = k % 2 == 0;
                let mut echoes: Vec<Echo<'_>> =
                    clutter.iter().map(|&(d, a)| Echo::constant(d, a)).collect();
                let amp = if refl { node_amp } else { node_amp * 0.18 };
                echoes.push(Echo::constant(node_range, amp));
                let mut beat = synthesize_beat(&p.chirp, &echoes, p.sample_rate_hz);
                rng.add_complex_noise(&mut beat, noise_power);
                beat
            })
            .collect()
    }

    #[test]
    fn detects_node_range_amid_strong_clutter() {
        let p = proc();
        // Clutter 30 dB stronger than the node echo.
        let beats = capture(&p, 4.0, 1e-5, &[(2.0, 3e-4), (6.5, 5e-4)], 5, 1e-14, 1);
        let det = p.detect_node(&beats).unwrap();
        assert!(
            (det.range_m - 4.0).abs() < 0.05,
            "range {:.3} m (expected 4.0)",
            det.range_m
        );
        assert!(det.peak_to_floor_db > 10.0);
    }

    #[test]
    fn subtraction_cancels_static_clutter() {
        let p = proc();
        // No node at all: identical chirps → nothing survives.
        let mut rng = GaussianSource::new(9);
        let clutter_beat = {
            let echoes = vec![Echo::constant(3.0, 1e-4)];
            let mut b = synthesize_beat(&p.chirp, &echoes, p.sample_rate_hz);
            rng.add_complex_noise(&mut b, 0.0);
            b
        };
        let beats = vec![clutter_beat.clone(), clutter_beat.clone(), clutter_beat];
        assert_eq!(
            p.detect_node(&beats).unwrap_err(),
            FmcwError::NoEchoDetected
        );
    }

    #[test]
    fn range_accuracy_improves_with_subbin_interpolation() {
        // An off-grid range must come out within a few cm, far better than
        // the 5 cm bin size, thanks to quadratic interpolation.
        let p = proc();
        let true_range = 3.137;
        let beats = capture(&p, true_range, 1e-5, &[(1.5, 2e-4)], 5, 1e-16, 2);
        let det = p.detect_node(&beats).unwrap();
        assert!(
            (det.range_m - true_range).abs() < 0.02,
            "range {:.4} m vs {true_range}",
            det.range_m
        );
    }

    #[test]
    fn detection_degrades_gracefully_into_noise() {
        let p = proc();
        // Node echo buried under overwhelming noise → clean error.
        let beats = capture(&p, 5.0, 1e-9, &[], 5, 1e-6, 3);
        assert_eq!(
            p.detect_node(&beats).unwrap_err(),
            FmcwError::NoEchoDetected
        );
    }

    #[test]
    fn needs_two_chirps() {
        let p = proc();
        let beats = capture(&p, 3.0, 1e-5, &[], 1, 0.0, 4);
        assert_eq!(
            p.detect_node(&beats).unwrap_err(),
            FmcwError::NotEnoughChirps { got: 1 }
        );
    }

    #[test]
    fn mismatched_lengths_rejected() {
        let p = proc();
        let mut beats = capture(&p, 3.0, 1e-5, &[], 3, 0.0, 5);
        beats[1].pop();
        assert_eq!(
            p.detect_node(&beats).unwrap_err(),
            FmcwError::LengthMismatch
        );
    }

    #[test]
    fn bin_range_mapping_roundtrip() {
        let p = proc();
        // Bin → range → beat must be self-consistent with the chirp slope.
        let bin = 100.0;
        let r = p.bin_to_range_m(bin);
        let beat = bin * p.sample_rate_hz / p.fft_len() as f64;
        let r2 = mmwave_rf::propagation::range_from_beat_m(p.chirp.slope(), beat);
        assert!((r - r2).abs() < 1e-12);
    }

    #[test]
    fn range_axis_is_monotone_from_zero() {
        let p = proc();
        let axis = p.range_axis_m();
        assert_eq!(axis.len(), p.fft_len() / 2);
        assert_eq!(axis[0], 0.0);
        for w in axis.windows(2) {
            assert!(w[1] > w[0]);
        }
        // Max unambiguous range at 50 MS/s: c·(fs/2)/(2·slope) ≈ 22.5 m.
        let max = *axis.last().unwrap();
        assert!((max - 22.5).abs() < 0.5, "max range {max:.1}");
    }

    #[test]
    fn five_chirps_give_four_subtraction_pairs() {
        let p = proc();
        let beats = capture(&p, 4.0, 1e-5, &[], 5, 0.0, 6);
        let spectra: Vec<_> = beats.iter().map(|b| p.range_spectrum(b)).collect();
        let diffs = p.background_subtract(&spectra);
        assert_eq!(diffs.len(), 4);
    }

    #[test]
    fn stronger_modulation_contrast_raises_peak() {
        let p = proc();
        let strong = capture(&p, 4.0, 1e-5, &[], 5, 1e-16, 7);
        let weak: Vec<Vec<Complex>> = (0..5)
            .map(|k| {
                let amp = if k % 2 == 0 { 1e-5 } else { 0.9e-5 }; // shallow
                let echoes = vec![Echo::constant(4.0, amp)];
                synthesize_beat(&p.chirp, &echoes, p.sample_rate_hz)
            })
            .collect();
        let ds = p.detect_node(&strong).unwrap();
        let dw = p.detect_node(&weak).unwrap();
        assert!(ds.peak_power > 10.0 * dw.peak_power);
    }

    #[test]
    fn subtracted_spectrum_keeps_phase() {
        let p = proc();
        let beats = capture(&p, 4.0, 1e-5, &[], 2, 0.0, 8);
        let spec = p.subtracted_spectrum(&beats).unwrap();
        let power: Vec<f64> = spec.iter().map(|z| z.norm_sqr()).collect();
        let pk = find_peak(&power[..p.fft_len() / 2]).unwrap();
        // Phase at the peak is meaningful (non-degenerate complex value).
        assert!(spec[pk.index].norm() > 0.0);
    }

    #[test]
    fn flat_spectra_match_per_chirp_path_and_thread_counts() {
        let p = proc();
        let beats = capture(&p, 4.0, 1e-5, &[(2.0, 3e-4)], 4, 1e-14, 10);
        let n = p.fft_len();
        let serial = p.range_spectra_flat(&beats, 1).unwrap();
        for (k, b) in beats.iter().enumerate() {
            let s = p.range_spectrum(b);
            assert!(serial[k * n..(k + 1) * n] == s[..], "chirp {k} differs");
        }
        for threads in [2usize, 4] {
            let par = p.range_spectra_flat(&beats, threads).unwrap();
            assert!(par == serial, "threads={threads} diverges");
        }
    }

    #[test]
    fn ragged_beats_rejected_by_flat_spectra() {
        let p = proc();
        let mut beats = capture(&p, 3.0, 1e-5, &[], 3, 0.0, 11);
        beats[2].pop();
        assert_eq!(
            p.range_spectra_flat(&beats, 2).unwrap_err(),
            FmcwError::LengthMismatch
        );
    }

    #[test]
    fn scratch_paths_match_allocating_paths_bit_exactly() {
        let p = proc();
        let beats = capture(&p, 4.0, 1e-5, &[(2.0, 3e-4)], 5, 1e-14, 12);
        let mut scratch = FmcwScratch::new();
        // Flat spectra: batched serial arena vs threaded allocating path.
        let flat = p
            .range_spectra_flat(&beats, parallel::max_threads())
            .unwrap();
        assert!(p.range_spectra_flat_with(&beats, &mut scratch).unwrap() == &flat[..]);
        // Subtracted power accumulates identically.
        let acc = p.subtracted_power(&beats).unwrap();
        let acc_w = p.subtracted_power_with(&beats, &mut scratch).unwrap();
        assert!(acc_w
            .iter()
            .zip(&acc)
            .all(|(a, b)| a.to_bits() == b.to_bits()));
        // Detection agrees end to end.
        assert_eq!(
            p.detect_node_with(&beats, &mut scratch).unwrap(),
            p.detect_node(&beats).unwrap()
        );
    }

    #[test]
    fn scratch_is_reusable_across_stacks() {
        let p = proc();
        let mut scratch = FmcwScratch::new();
        // A larger stack first grows the buffers …
        let big = capture(&p, 4.0, 1e-5, &[(2.0, 3e-4)], 7, 1e-14, 13);
        p.detect_node_with(&big, &mut scratch).unwrap();
        // … then a smaller stack reuses them and still matches exactly.
        let small = capture(&p, 3.1, 1e-5, &[(5.0, 2e-4)], 3, 1e-14, 14);
        assert_eq!(
            p.detect_node_with(&small, &mut scratch).unwrap(),
            p.detect_node(&small).unwrap()
        );
        // Error cases propagate through the scratch path too.
        let mut ragged = small.clone();
        ragged[1].pop();
        assert_eq!(
            p.detect_node_with(&ragged, &mut scratch).unwrap_err(),
            FmcwError::LengthMismatch
        );
        assert_eq!(
            p.detect_node_with(&small[..1], &mut scratch).unwrap_err(),
            FmcwError::NotEnoughChirps { got: 1 }
        );
    }

    #[test]
    fn error_display() {
        assert!(FmcwError::NotEnoughChirps { got: 1 }
            .to_string()
            .contains("≥2"));
        assert!(FmcwError::LengthMismatch.to_string().contains("length"));
        assert!(FmcwError::NoEchoDetected.to_string().contains("floor"));
    }
}
