//! Angle-of-arrival estimation at the AP (§9.2).
//!
//! The AP receives with two antennas. After background subtraction isolates
//! the node's echo, the phase difference of the subtracted spectra at the
//! node's beat bin equals `2π·d·sin(θ)/λ` for RX baseline `d` — one
//! `asin` away from the node's angle.

use crate::fmcw::{FmcwError, FmcwProcessor};
use mmwave_rf::propagation::angle_from_phase_rad;
use mmwave_sigproc::complex::Complex;
use mmwave_sigproc::units::wrap_angle;
use serde::{Deserialize, Serialize};

/// Errors from the AoA estimator.
#[derive(Debug, Clone, PartialEq)]
pub enum AoaError {
    /// The underlying FMCW processing failed.
    Fmcw(FmcwError),
    /// The measured phase maps outside ±90°.
    PhaseOutOfRange {
        /// The offending phase difference, radians.
        phase_rad: f64,
    },
}

impl std::fmt::Display for AoaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AoaError::Fmcw(e) => write!(f, "FMCW stage failed: {e}"),
            AoaError::PhaseOutOfRange { phase_rad } => {
                write!(
                    f,
                    "phase difference {phase_rad:.3} rad has no angle solution"
                )
            }
        }
    }
}

impl std::error::Error for AoaError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AoaError::Fmcw(e) => Some(e),
            AoaError::PhaseOutOfRange { .. } => None,
        }
    }
}

impl From<FmcwError> for AoaError {
    fn from(e: FmcwError) -> Self {
        AoaError::Fmcw(e)
    }
}

/// An AoA estimate with its intermediate measurements.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AoaEstimate {
    /// Estimated angle off AP boresight, radians.
    pub angle_rad: f64,
    /// Measured inter-antenna phase difference, radians.
    pub phase_rad: f64,
    /// Node range estimated on the reference channel, meters.
    pub range_m: f64,
}

/// Two-antenna AoA estimator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AoaEstimator {
    /// RX antenna baseline, meters.
    pub baseline_m: f64,
    /// Carrier frequency used for the phase→angle conversion, Hz (the
    /// chirp center frequency).
    pub carrier_hz: f64,
}

impl AoaEstimator {
    /// λ/2 baseline at the paper's 28 GHz sweep center.
    pub fn milback_default() -> Self {
        Self {
            baseline_m: mmwave_sigproc::units::wavelength(28e9) / 2.0,
            carrier_hz: 28e9,
        }
    }

    /// Estimates the node's angle from the two RX channels' chirp captures.
    ///
    /// `beats_rx1` / `beats_rx2` hold the same chirps digitized on each
    /// antenna. The node is located on channel 1; the phase is read at the
    /// same interpolated bin on both channels' subtracted spectra.
    pub fn estimate(
        &self,
        proc: &FmcwProcessor,
        beats_rx1: &[Vec<Complex>],
        beats_rx2: &[Vec<Complex>],
    ) -> Result<AoaEstimate, AoaError> {
        let det = proc.detect_node(beats_rx1)?;
        let s1 = proc.subtracted_spectrum(beats_rx1)?;
        let s2 = proc.subtracted_spectrum(beats_rx2)?;
        let bin = det.bin_position.round() as usize;
        // Phase of RX2 relative to RX1 at the node's bin: average over the
        // adjacent bins inside the main lobe for robustness.
        let mut acc = Complex::new(0.0, 0.0);
        for k in bin.saturating_sub(1)..=(bin + 1).min(s1.len() - 1) {
            acc += s2[k] * s1[k].conj();
        }
        let phase = acc.arg();
        let angle = angle_from_phase_rad(self.carrier_hz, self.baseline_m, phase)
            .ok_or(AoaError::PhaseOutOfRange { phase_rad: phase })?;
        Ok(AoaEstimate {
            angle_rad: angle,
            phase_rad: wrap_angle(phase),
            range_m: det.range_m,
        })
    }

    /// The phase difference this geometry predicts for a ground-truth
    /// angle — used to build the RX2 synthesis and in tests.
    pub fn expected_phase_rad(&self, angle_rad: f64) -> f64 {
        mmwave_rf::propagation::aoa_phase_difference_rad(
            self.carrier_hz,
            self.baseline_m,
            angle_rad,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmwave_rf::channel::{synthesize_beat, Echo};
    use mmwave_sigproc::random::GaussianSource;

    /// Two-channel capture of a toggling node at `range` / `angle` with
    /// optional clutter (clutter has zero inter-channel phase for
    /// simplicity — it cancels in subtraction anyway).
    fn capture2(
        proc: &FmcwProcessor,
        est: &AoaEstimator,
        range: f64,
        angle: f64,
        amp: f64,
        noise: f64,
        seed: u64,
    ) -> (Vec<Vec<Complex>>, Vec<Vec<Complex>>) {
        let mut rng = GaussianSource::new(seed);
        let phase = est.expected_phase_rad(angle);
        let mut rx1 = Vec::new();
        let mut rx2 = Vec::new();
        for k in 0..5 {
            let a = if k % 2 == 0 { amp } else { amp * 0.18 };
            let clutter = Echo::constant(1.8, 5e-4);
            let node1 = Echo::constant(range, a);
            let node2 = Echo {
                distance_m: range,
                extra_phase_rad: phase,
                amplitude: Box::new(move |_, _| Complex::real(a)),
            };
            let clutter2 = Echo::constant(1.8, 5e-4);
            let mut b1 = synthesize_beat(&proc.chirp, &[clutter, node1], proc.sample_rate_hz);
            let mut b2 = synthesize_beat(&proc.chirp, &[clutter2, node2], proc.sample_rate_hz);
            rng.add_complex_noise(&mut b1, noise);
            rng.add_complex_noise(&mut b2, noise);
            rx1.push(b1);
            rx2.push(b2);
        }
        (rx1, rx2)
    }

    #[test]
    fn recovers_angle_cleanly() {
        let proc = FmcwProcessor::milback_default();
        let est = AoaEstimator::milback_default();
        for deg in [-40.0f64, -15.0, 0.0, 10.0, 35.0] {
            let ang = deg.to_radians();
            let (rx1, rx2) = capture2(&proc, &est, 4.0, ang, 1e-5, 1e-16, 11);
            let got = est.estimate(&proc, &rx1, &rx2).unwrap();
            assert!(
                (got.angle_rad - ang).abs().to_degrees() < 0.5,
                "at {deg}°: got {:.2}°",
                got.angle_rad.to_degrees()
            );
        }
    }

    #[test]
    fn angle_error_stays_small_with_noise() {
        // Noise at a level giving realistic echo SNR: median error should
        // be around the paper's 1.1°.
        let proc = FmcwProcessor::milback_default();
        let est = AoaEstimator::milback_default();
        let mut errs = Vec::new();
        for seed in 0..20 {
            let ang = 12f64.to_radians();
            let (rx1, rx2) = capture2(&proc, &est, 4.0, ang, 1e-5, 3e-11, 100 + seed);
            let got = est.estimate(&proc, &rx1, &rx2).unwrap();
            errs.push((got.angle_rad - ang).abs().to_degrees());
        }
        let med = mmwave_sigproc::stats::median(&errs);
        assert!(med < 2.5, "median angle error {med:.2}°");
    }

    #[test]
    fn range_comes_along_for_free() {
        let proc = FmcwProcessor::milback_default();
        let est = AoaEstimator::milback_default();
        let (rx1, rx2) = capture2(&proc, &est, 6.2, 0.1, 1e-5, 1e-16, 21);
        let got = est.estimate(&proc, &rx1, &rx2).unwrap();
        assert!((got.range_m - 6.2).abs() < 0.05);
    }

    #[test]
    fn fmcw_failure_propagates() {
        let proc = FmcwProcessor::milback_default();
        let est = AoaEstimator::milback_default();
        let empty: Vec<Vec<Complex>> = vec![];
        match est.estimate(&proc, &empty, &empty).unwrap_err() {
            AoaError::Fmcw(FmcwError::NotEnoughChirps { got: 0 }) => {}
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn expected_phase_is_invertible() {
        let est = AoaEstimator::milback_default();
        let ang = 0.3;
        let phase = est.expected_phase_rad(ang);
        let back = angle_from_phase_rad(est.carrier_hz, est.baseline_m, phase).unwrap();
        assert!((back - ang).abs() < 1e-12);
    }

    #[test]
    fn error_display() {
        let e = AoaError::PhaseOutOfRange { phase_rad: 4.0 };
        assert!(e.to_string().contains("no angle solution"));
        let f: AoaError = FmcwError::LengthMismatch.into();
        assert!(f.to_string().contains("FMCW"));
    }
}
