//! # milback-ap
//!
//! The MilBack access point (§8, Fig 7): FMCW and two-tone waveform
//! generation, TX/RX chains, and the AP-side estimators — ranging via
//! five-chirp background subtraction, two-antenna AoA, orientation from the
//! reflected-power-vs-frequency profile, and the OAQFM uplink receiver.
//!
//! * [`waveform`] — chirp/tone plans, the Field-1 mode signalling, patched
//!   2×2 GHz sweeps,
//! * [`txrx`] — PA/LNA/mixer/BPF chains with calibrated budgets,
//! * [`fmcw`] — range spectra + background subtraction + node detection,
//! * [`cfar`] — CA-CFAR multi-target detection on subtracted spectra,
//! * [`doppler`] — range–Doppler maps; the toggling node at Nyquist Doppler,
//! * [`aoa`] — phase-comparison angle estimation,
//! * [`orientation`] — AP-side orientation sensing,
//! * [`uplink_rx`] — per-tone OOK slicing of the node's backscatter,
//! * [`query`] — OAQFM carrier selection from orientation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aoa;
pub mod cfar;
pub mod doppler;
pub mod fmcw;
pub mod orientation;
pub mod query;
pub mod txrx;
pub mod uplink_rx;
pub mod waveform;

pub use aoa::{AoaEstimate, AoaEstimator};
pub use cfar::CaCfar;
pub use doppler::DopplerProcessor;
pub use fmcw::{EchoDetection, FmcwProcessor, FmcwScratch};
pub use orientation::{ApOrientationEstimate, ApOrientationEstimator};
pub use query::QueryPlanner;
pub use txrx::{ApRadio, RxChain, TxChain};
pub use uplink_rx::UplinkReceiver;
pub use waveform::{CarrierSet, DownlinkKeying, FmcwConfig, LinkDirection};
