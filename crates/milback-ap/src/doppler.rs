//! Range–Doppler processing: the radar-native alternative to pairwise
//! background subtraction (§5.1).
//!
//! Stacking N chirps and FFT-ing *across* them (slow time) separates
//! echoes by their chirp-to-chirp phase/amplitude progression. Static
//! clutter concentrates in the zero-Doppler bin; a node toggling
//! reflective/absorptive **every chirp** alternates sign-like between
//! captures and lands exactly at the Nyquist Doppler bin (±PRF/2) — the
//! classic "tag modulation moves you off DC" trick that Millimetro and
//! OmniScatter also exploit. Pairwise subtraction is the two-chirp special
//! case; the full Doppler FFT buys `10·log10(N)` of integration gain and
//! per-bin clutter rejection.

use mmwave_sigproc::complex::{Complex, ZERO};
use mmwave_sigproc::detect::find_peak;
use mmwave_sigproc::fft::{Direction, FftPlanner};
use mmwave_sigproc::parallel;
use mmwave_sigproc::window::Window;
use serde::{Deserialize, Serialize};

use crate::fmcw::{FmcwError, FmcwProcessor};

/// A range–Doppler map: `map[doppler_bin][range_bin]` power.
#[derive(Debug, Clone, PartialEq)]
pub struct RangeDopplerMap {
    /// Power per (Doppler, range) cell.
    pub map: Vec<Vec<f64>>,
    /// Number of chirps (Doppler bins).
    pub n_chirps: usize,
    /// Range bins retained (positive-beat half).
    pub n_range: usize,
}

impl RangeDopplerMap {
    /// The Doppler row where a per-chirp-alternating tag lands (Nyquist,
    /// i.e. bin N/2).
    pub fn alternation_row(&self) -> usize {
        self.n_chirps / 2
    }

    /// The zero-Doppler (static clutter) row.
    pub fn static_row(&self) -> usize {
        0
    }

    /// Peak cell of one Doppler row: `(range_bin_interpolated, power)`.
    pub fn row_peak(&self, row: usize) -> Option<(f64, f64)> {
        let p = find_peak(&self.map[row])?;
        Some((p.position, p.value))
    }

    /// Detection margin of the alternation row: its peak over its median
    /// floor, dB — how far the toggling node stands above whatever clutter
    /// and noise leaked into that Doppler row.
    pub fn detection_margin_db(&self) -> f64 {
        let row = &self.map[self.alternation_row()];
        let peak = row.iter().cloned().fold(f64::MIN, f64::max).max(1e-300);
        let floor = mmwave_sigproc::stats::median(row).max(1e-300);
        10.0 * (peak / floor).log10()
    }

    /// How much static-clutter power leaked from the zero-Doppler row into
    /// the alternation row at a clutter bin, dB (0 dB = no rejection).
    pub fn clutter_rejection_db(&self, clutter_range_bin: usize) -> f64 {
        let s = self.map[self.static_row()][clutter_range_bin].max(1e-300);
        let a = self.map[self.alternation_row()][clutter_range_bin].max(1e-300);
        10.0 * (s / a).log10()
    }
}

/// Range–Doppler processor layered on the FMCW range pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DopplerProcessor {
    /// Window applied across slow time.
    pub doppler_window: Window,
}

impl DopplerProcessor {
    /// Default: rectangular across slow time. The node's alternation is
    /// exactly periodic at the chirp rate, so the rectangular window puts
    /// all of its energy in the Nyquist row and all static energy at DC —
    /// no taper needed (tapering is for *unknown* Doppler, not for this
    /// synchronized modulation).
    pub fn milback_default() -> Self {
        Self {
            doppler_window: Window::Rectangular,
        }
    }

    /// Builds the range–Doppler map from per-chirp beat captures.
    ///
    /// Requires at least two chirps of equal length; the chirp count need
    /// not be a power of two (Bluestein handles slow time too).
    pub fn range_doppler(
        &self,
        proc: &FmcwProcessor,
        beats: &[Vec<Complex>],
    ) -> Result<RangeDopplerMap, FmcwError> {
        self.range_doppler_with_threads(proc, beats, parallel::max_threads())
    }

    /// [`Self::range_doppler`] with an explicit worker budget. The map is
    /// bit-identical for every `threads` value; `threads <= 1` runs entirely
    /// on the calling thread (the serial reference path).
    pub fn range_doppler_with_threads(
        &self,
        proc: &FmcwProcessor,
        beats: &[Vec<Complex>],
        threads: usize,
    ) -> Result<RangeDopplerMap, FmcwError> {
        if beats.len() < 2 {
            return Err(FmcwError::NotEnoughChirps { got: beats.len() });
        }
        let len = beats[0].len();
        if beats.iter().any(|b| b.len() != len) {
            return Err(FmcwError::LengthMismatch);
        }
        // Fast time: range spectra per chirp, one flat row-major buffer.
        let fft_len = proc.fft_len();
        let flat = proc.range_spectra_flat(beats, threads)?;
        let n_range = fft_len / 2;
        let n_chirps = beats.len();
        // Slow time: FFT down each range column. The plan (and the window
        // values) are hoisted out of the column loop; each worker carries one
        // scratch buffer across all of its columns, and columns are laid out
        // contiguously (column-major) so the per-column FFT is in-place.
        let win: Vec<f64> = (0..n_chirps)
            .map(|k| self.doppler_window.value(k, n_chirps))
            .collect();
        let plan = FftPlanner::plan(n_chirps);
        let mut cols = vec![ZERO; n_range * n_chirps];
        parallel::for_each_chunk_with(
            &mut cols,
            n_chirps,
            threads,
            || vec![0.0f64; plan.scratch_len()],
            |scratch, start, col| {
                let r = start / n_chirps;
                for (k, c) in col.iter_mut().enumerate() {
                    *c = flat[k * fft_len + r].scale(win[k]);
                }
                plan.process_with_scratch(col, scratch, Direction::Forward);
            },
        );
        let mut map = vec![vec![0.0f64; n_range]; n_chirps];
        for r in 0..n_range {
            for (d, z) in cols[r * n_chirps..(r + 1) * n_chirps].iter().enumerate() {
                map[d][r] = z.norm_sqr();
            }
        }
        Ok(RangeDopplerMap {
            map,
            n_chirps,
            n_range,
        })
    }

    /// Detects a per-chirp-toggling node: peak of the alternation row,
    /// returned as `(range_m, margin_db)` where the margin is the peak's
    /// height over the alternation row's median floor.
    pub fn detect_toggling_node(
        &self,
        proc: &FmcwProcessor,
        beats: &[Vec<Complex>],
    ) -> Result<(f64, f64), FmcwError> {
        let rd = self.range_doppler(proc, beats)?;
        let (pos, _) = rd
            .row_peak(rd.alternation_row())
            .ok_or(FmcwError::NoEchoDetected)?;
        let range = proc.bin_to_range_m(pos);
        Ok((range, rd.detection_margin_db()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmwave_rf::channel::{synthesize_beat, Echo};
    use mmwave_sigproc::random::GaussianSource;

    /// Even chirp count with a node toggling every chirp plus static
    /// clutter.
    fn capture(
        proc: &FmcwProcessor,
        n: usize,
        node_range: f64,
        clutter: &[(f64, f64)],
        seed: u64,
    ) -> Vec<Vec<Complex>> {
        let mut rng = GaussianSource::new(seed);
        (0..n)
            .map(|k| {
                let gamma = if k % 2 == 0 { 0.83 } else { 0.18 };
                let mut echoes: Vec<Echo<'_>> =
                    clutter.iter().map(|&(d, a)| Echo::constant(d, a)).collect();
                echoes.push(Echo::constant(node_range, 1e-5 * gamma));
                let mut b = synthesize_beat(&proc.chirp, &echoes, proc.sample_rate_hz);
                rng.add_complex_noise(&mut b, 1e-14);
                b
            })
            .collect()
    }

    #[test]
    fn toggling_node_lands_at_nyquist_doppler() {
        let proc = FmcwProcessor::milback_default();
        let dp = DopplerProcessor::milback_default();
        let beats = capture(&proc, 8, 4.0, &[(2.0, 3e-4)], 1);
        let rd = dp.range_doppler(&proc, &beats).unwrap();
        // The node's range bin.
        let node_bin = (4.0 / proc.bin_to_range_m(1.0)).round() as usize;
        // With the rectangular slow-time window the alternating component
        // sits exactly at Nyquist: every non-DC, non-Nyquist row is far
        // below it (DC carries the node's mean reflection level, which is
        // legitimate energy, so it is excluded).
        let alt = rd.map[rd.alternation_row()][node_bin];
        for d in 1..rd.n_chirps {
            if d != rd.alternation_row() {
                assert!(
                    alt > rd.map[d][node_bin] * 30.0,
                    "row {d} rivals the alternation row"
                );
            }
        }
    }

    #[test]
    fn static_clutter_stays_at_zero_doppler() {
        let proc = FmcwProcessor::milback_default();
        let dp = DopplerProcessor::milback_default();
        let beats = capture(&proc, 8, 4.0, &[(2.0, 3e-4)], 2);
        let rd = dp.range_doppler(&proc, &beats).unwrap();
        let clutter_bin = (2.0 / proc.bin_to_range_m(1.0)).round() as usize;
        let dc = rd.map[0][clutter_bin];
        let alt = rd.map[rd.alternation_row()][clutter_bin];
        assert!(dc > alt * 100.0, "clutter must concentrate at DC");
    }

    #[test]
    fn detects_node_range_through_clutter() {
        let proc = FmcwProcessor::milback_default();
        let dp = DopplerProcessor::milback_default();
        let beats = capture(&proc, 8, 5.5, &[(2.0, 3e-4), (7.0, 5e-4)], 3);
        let (range, margin) = dp.detect_toggling_node(&proc, &beats).unwrap();
        assert!((range - 5.5).abs() < 0.05, "range {range:.3}");
        assert!(margin > 20.0, "margin {margin:.1} dB");
        // The strong clutter at 7 m is rejected from the alternation row.
        let rd = dp.range_doppler(&proc, &beats).unwrap();
        let clutter_bin = (7.0 / proc.bin_to_range_m(1.0)).round() as usize;
        assert!(rd.clutter_rejection_db(clutter_bin) > 30.0);
    }

    #[test]
    fn agrees_with_pairwise_subtraction() {
        let proc = FmcwProcessor::milback_default();
        let dp = DopplerProcessor::milback_default();
        let beats = capture(&proc, 6, 3.7, &[(1.8, 2e-4)], 4);
        let (rd_range, _) = dp.detect_toggling_node(&proc, &beats).unwrap();
        let sub = proc.detect_node(&beats).unwrap();
        assert!(
            (rd_range - sub.range_m).abs() < 0.03,
            "Doppler {rd_range:.3} vs subtraction {:.3}",
            sub.range_m
        );
    }

    #[test]
    fn more_chirps_more_integration_gain() {
        let proc = FmcwProcessor::milback_default();
        let dp = DopplerProcessor::milback_default();
        let contrast_at = |n: usize| {
            let beats = capture(&proc, n, 4.0, &[(2.0, 3e-4)], 5);
            dp.detect_toggling_node(&proc, &beats).unwrap().1
        };
        // More chirps = more coherent integration: the margin over the
        // noise floor must grow.
        let c4 = contrast_at(4);
        let c16 = contrast_at(16);
        assert!(c16 > c4 + 3.0, "c4 {c4:.1} dB, c16 {c16:.1} dB");
    }

    #[test]
    fn rejects_single_chirp_and_ragged_input() {
        let proc = FmcwProcessor::milback_default();
        let dp = DopplerProcessor::milback_default();
        let one = capture(&proc, 1, 3.0, &[], 6);
        assert_eq!(
            dp.range_doppler(&proc, &one).unwrap_err(),
            FmcwError::NotEnoughChirps { got: 1 }
        );
        let mut ragged = capture(&proc, 3, 3.0, &[], 7);
        ragged[1].pop();
        assert_eq!(
            dp.range_doppler(&proc, &ragged).unwrap_err(),
            FmcwError::LengthMismatch
        );
    }

    #[test]
    fn parallel_map_bit_exact_across_thread_counts() {
        let proc = FmcwProcessor::milback_default();
        let dp = DopplerProcessor::milback_default();
        let beats = capture(&proc, 8, 4.5, &[(2.2, 3e-4)], 9);
        let serial = dp.range_doppler_with_threads(&proc, &beats, 1).unwrap();
        for threads in [2usize, 4, 8] {
            let par = dp
                .range_doppler_with_threads(&proc, &beats, threads)
                .unwrap();
            assert!(
                par == serial,
                "threads={threads} diverges from the serial map"
            );
        }
    }

    #[test]
    fn map_dimensions() {
        let proc = FmcwProcessor::milback_default();
        let dp = DopplerProcessor::milback_default();
        let beats = capture(&proc, 5, 3.0, &[], 8);
        let rd = dp.range_doppler(&proc, &beats).unwrap();
        assert_eq!(rd.map.len(), 5);
        assert_eq!(rd.map[0].len(), proc.fft_len() / 2);
        assert_eq!(rd.alternation_row(), 2);
    }
}
