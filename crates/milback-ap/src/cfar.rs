//! Constant false-alarm rate (CFAR) detection on the subtracted range
//! spectrum — the production alternative to the global peak-to-median
//! detector used for the paper's single-node experiments.
//!
//! Cell-averaging CFAR estimates the local noise floor around each range
//! cell from its training cells (excluding guard cells around the cell
//! under test) and thresholds at a factor set by the target false-alarm
//! probability. Unlike the global detector, CA-CFAR finds *multiple*
//! nodes at different ranges in one capture — the building block for the
//! multi-node SDM mode.

use mmwave_sigproc::detect::refine_peak;
use serde::{Deserialize, Serialize};

/// A CFAR detection.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CfarDetection {
    /// Cell index of the detection.
    pub cell: usize,
    /// Sub-cell interpolated position.
    pub position: f64,
    /// Cell power.
    pub power: f64,
    /// Local threshold the cell exceeded.
    pub threshold: f64,
}

/// Cell-averaging CFAR detector.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CaCfar {
    /// Training cells on each side of the cell under test.
    pub training_cells: usize,
    /// Guard cells on each side (excluded from the noise estimate so the
    /// target's own main lobe does not inflate it).
    pub guard_cells: usize,
    /// Threshold factor α over the estimated noise level.
    pub alpha: f64,
}

impl CaCfar {
    /// Builds a CFAR with an α derived from the desired false-alarm
    /// probability for exponentially-distributed noise cells:
    /// `α = N·(Pfa^(−1/N) − 1)` with `N = 2·training_cells`.
    ///
    /// # Panics
    /// Panics unless `0 < pfa < 1` and `training_cells > 0`.
    pub fn for_false_alarm_rate(pfa: f64, training_cells: usize, guard_cells: usize) -> Self {
        assert!(pfa > 0.0 && pfa < 1.0, "Pfa must be a probability");
        assert!(training_cells > 0, "need training cells");
        let n = (2 * training_cells) as f64;
        Self {
            training_cells,
            guard_cells,
            alpha: n * (pfa.powf(-1.0 / n) - 1.0),
        }
    }

    /// Sensible defaults for the MilBack range spectrum (Pfa = 1e-4).
    pub fn milback_default() -> Self {
        Self::for_false_alarm_rate(1e-4, 16, 4)
    }

    /// Runs detection over a power spectrum, returning all cells that
    /// exceed their local threshold and are local maxima, strongest first.
    pub fn detect(&self, power: &[f64]) -> Vec<CfarDetection> {
        let t = self.training_cells;
        let g = self.guard_cells;
        let span = t + g;
        let mut hits = Vec::new();
        for cut in 0..power.len() {
            // Collect training cells on both sides, clamped at the edges.
            let mut noise = 0.0;
            let mut count = 0usize;
            // Left window.
            let left_hi = cut.saturating_sub(g);
            let left_lo = cut.saturating_sub(span);
            for &p in &power[left_lo..left_hi] {
                noise += p;
                count += 1;
            }
            // Right window.
            let right_lo = (cut + g + 1).min(power.len());
            let right_hi = (cut + span + 1).min(power.len());
            for &p in &power[right_lo..right_hi] {
                noise += p;
                count += 1;
            }
            if count == 0 {
                continue;
            }
            let threshold = self.alpha * noise / count as f64;
            let is_local_max = (cut == 0 || power[cut] >= power[cut - 1])
                && (cut + 1 == power.len() || power[cut] > power[cut + 1]);
            if power[cut] > threshold && is_local_max {
                let refined = refine_peak(power, cut);
                hits.push(CfarDetection {
                    cell: cut,
                    position: refined.position,
                    power: power[cut],
                    threshold,
                });
            }
        }
        hits.sort_by(|a, b| b.power.partial_cmp(&a.power).unwrap());
        hits
    }

    /// Detection with non-maximum suppression: keeps at most one detection
    /// per `min_separation` cells.
    pub fn detect_separated(&self, power: &[f64], min_separation: usize) -> Vec<CfarDetection> {
        let all = self.detect(power);
        let mut kept: Vec<CfarDetection> = Vec::new();
        for d in all {
            if kept
                .iter()
                .all(|k| k.cell.abs_diff(d.cell) >= min_separation)
            {
                kept.push(d);
            }
        }
        kept
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmwave_sigproc::random::GaussianSource;

    /// Exponential (chi²₂) noise floor like a |FFT|² of complex AWGN.
    fn noise_floor(n: usize, level: f64, rng: &mut GaussianSource) -> Vec<f64> {
        (0..n)
            .map(|_| {
                let a = rng.sample(1.0);
                let b = rng.sample(1.0);
                level * (a * a + b * b) / 2.0
            })
            .collect()
    }

    #[test]
    fn detects_single_target() {
        let mut rng = GaussianSource::new(1);
        let mut p = noise_floor(512, 1.0, &mut rng);
        p[200] = 100.0;
        let cfar = CaCfar::milback_default();
        let hits = cfar.detect(&p);
        assert!(!hits.is_empty());
        assert_eq!(hits[0].cell, 200);
    }

    #[test]
    fn detects_multiple_targets() {
        let mut rng = GaussianSource::new(2);
        let mut p = noise_floor(1024, 1.0, &mut rng);
        for &(c, a) in &[(100usize, 80.0), (400, 200.0), (700, 50.0)] {
            p[c] = a;
        }
        let cfar = CaCfar::milback_default();
        let hits = cfar.detect_separated(&p, 8);
        let cells: Vec<usize> = hits.iter().take(3).map(|h| h.cell).collect();
        assert!(
            cells.contains(&100) && cells.contains(&400) && cells.contains(&700),
            "{cells:?}"
        );
        // Strongest first.
        assert_eq!(hits[0].cell, 400);
    }

    #[test]
    fn false_alarm_rate_is_controlled() {
        // Pure noise: the observed false-alarm rate should be within an
        // order of magnitude of the design Pfa (CA-CFAR is approximate at
        // finite training windows).
        let mut rng = GaussianSource::new(3);
        let cfar = CaCfar::for_false_alarm_rate(1e-3, 16, 2);
        let mut alarms = 0usize;
        let mut cells = 0usize;
        for _ in 0..50 {
            let p = noise_floor(1024, 1.0, &mut rng);
            alarms += cfar.detect(&p).len();
            cells += p.len();
        }
        let rate = alarms as f64 / cells as f64;
        assert!(rate < 1e-2, "false alarm rate {rate:.2e}");
        assert!(rate > 1e-5, "suspiciously clean: {rate:.2e}");
    }

    #[test]
    fn masked_target_near_strong_one_is_handled_by_guards() {
        // A weak target 6 cells from a strong one: guard cells keep the
        // strong target's skirt out of the noise estimate... but its energy
        // does raise the local threshold — classic CA-CFAR masking. With
        // enough separation both are found.
        let mut rng = GaussianSource::new(4);
        let mut p = noise_floor(512, 1.0, &mut rng);
        p[250] = 500.0;
        p[290] = 60.0; // well separated: found
        let cfar = CaCfar::milback_default();
        let hits = cfar.detect_separated(&p, 4);
        let cells: Vec<usize> = hits.iter().map(|h| h.cell).collect();
        assert!(cells.contains(&250));
        assert!(cells.contains(&290), "{cells:?}");
    }

    #[test]
    fn clean_floor_with_no_target_is_quiet() {
        // A constant floor has no local maxima above α× the mean.
        let p = vec![1.0; 256];
        let cfar = CaCfar::milback_default();
        assert!(cfar.detect(&p).is_empty());
    }

    #[test]
    fn alpha_grows_as_pfa_shrinks() {
        let loose = CaCfar::for_false_alarm_rate(1e-2, 16, 2).alpha;
        let tight = CaCfar::for_false_alarm_rate(1e-6, 16, 2).alpha;
        assert!(tight > loose);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn rejects_bad_pfa() {
        CaCfar::for_false_alarm_rate(1.5, 8, 2);
    }

    #[test]
    fn works_on_real_subtracted_spectrum() {
        // End-to-end: CFAR finds the toggling node in a background-
        // subtracted capture, at the same range the global detector sees.
        use crate::fmcw::FmcwProcessor;
        use mmwave_rf::channel::{synthesize_beat, Echo};
        let proc = FmcwProcessor::milback_default();
        let mut rng = GaussianSource::new(5);
        let beats: Vec<Vec<mmwave_sigproc::Complex>> = (0..5)
            .map(|k| {
                let amp = if k % 2 == 0 { 1e-5 } else { 0.2e-5 };
                let mut b = synthesize_beat(
                    &proc.chirp,
                    &[Echo::constant(2.0, 3e-4), Echo::constant(5.0, amp)],
                    proc.sample_rate_hz,
                );
                rng.add_complex_noise(&mut b, 1e-13);
                b
            })
            .collect();
        let power = proc.subtracted_power(&beats).unwrap();
        let cfar = CaCfar::milback_default();
        let hits = cfar.detect_separated(&power, 8);
        assert!(!hits.is_empty());
        let range = proc.bin_to_range_m(hits[0].position);
        assert!((range - 5.0).abs() < 0.1, "CFAR range {range:.2}");
    }
}
