//! AP transmit and receive chains (§8, Fig 7).
//!
//! TX: waveform generator → ADPA7005 PA → 20 dBi horn (27 dBm at the port).
//! RX (×2): 20 dBi horn → ADL8142 LNA → ZMDB-44H mixer (LO = the TX tone)
//! → band-pass filter → digitizer. The struct rolls these into the handful
//! of numbers the link simulations need: EIRP, cascaded noise figure,
//! implementation loss, digitizer rate.

use mmwave_rf::components::{Amplifier, Mixer};
use mmwave_rf::noise::ReceiverChain;
use serde::{Deserialize, Serialize};

/// The AP transmit chain.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TxChain {
    /// Generator output power, dBm.
    pub generator_dbm: f64,
    /// The power amplifier.
    pub pa: Amplifier,
    /// TX antenna gain, dBi.
    pub antenna_gain_dbi: f64,
    /// Cable/connector losses between PA and antenna, dB.
    pub feed_loss_db: f64,
}

impl TxChain {
    /// The paper's chain, tuned so the antenna-port power is 27 dBm.
    pub fn milback_default() -> Self {
        Self {
            generator_dbm: 9.0,
            pa: Amplifier::adpa7005_pa(),
            antenna_gain_dbi: 20.0,
            feed_loss_db: 1.5,
        }
    }

    /// Power delivered to the antenna port, dBm.
    pub fn port_power_dbm(&self) -> f64 {
        self.pa.amplify_dbm(self.generator_dbm) - self.feed_loss_db
    }

    /// Effective isotropic radiated power, dBm.
    pub fn eirp_dbm(&self) -> f64 {
        self.port_power_dbm() + self.antenna_gain_dbi
    }
}

/// One AP receive chain (there are two, one per RX antenna).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RxChain {
    /// RX antenna gain, dBi.
    pub antenna_gain_dbi: f64,
    /// LNA → mixer → BPF cascade with implementation loss.
    pub chain: ReceiverChain,
    /// The downconversion mixer (for LO-leakage bookkeeping).
    pub mixer: Mixer,
    /// Digitizer (scope) sample rate, Hz.
    pub digitizer_rate_hz: f64,
}

impl RxChain {
    /// The paper's receive chain digitized at 50 MS/s.
    pub fn milback_default() -> Self {
        Self {
            antenna_gain_dbi: 20.0,
            chain: ReceiverChain::milback_ap(),
            mixer: Mixer::zmdb44h(),
            digitizer_rate_hz: 50e6,
        }
    }

    /// SNR for a signal power *at the antenna port* over a bandwidth, dB.
    pub fn snr_db(&self, signal_at_port_dbm: f64, bandwidth_hz: f64) -> f64 {
        self.chain.snr_db(signal_at_port_dbm, bandwidth_hz)
    }

    /// Input-referred noise floor over a bandwidth, dBm.
    pub fn noise_floor_dbm(&self, bandwidth_hz: f64) -> f64 {
        self.chain.noise_floor_dbm(bandwidth_hz)
    }

    /// Wall-clock duration of an `n_samples` capture at the digitizer
    /// rate, seconds — the airtime an event-driven AP must reserve on the
    /// timeline before its processing event fires.
    ///
    /// # Panics
    /// Panics for a non-positive digitizer rate.
    pub fn capture_s(&self, n_samples: usize) -> f64 {
        assert!(
            self.digitizer_rate_hz > 0.0,
            "digitizer rate must be positive"
        );
        n_samples as f64 / self.digitizer_rate_hz
    }
}

/// The complete AP radio front-end: one TX chain and two RX chains.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ApRadio {
    /// Transmit chain.
    pub tx: TxChain,
    /// Receive chain on antenna 1 (the reference channel).
    pub rx1: RxChain,
    /// Receive chain on antenna 2 (the AoA channel).
    pub rx2: RxChain,
}

impl ApRadio {
    /// The paper's AP.
    pub fn milback_default() -> Self {
        Self {
            tx: TxChain::milback_default(),
            rx1: RxChain::milback_default(),
            rx2: RxChain::milback_default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tx_port_power_is_27_dbm() {
        let tx = TxChain::milback_default();
        assert!(
            (tx.port_power_dbm() - 27.0).abs() < 0.3,
            "got {:.2}",
            tx.port_power_dbm()
        );
    }

    #[test]
    fn eirp_is_47_dbm() {
        let tx = TxChain::milback_default();
        assert!((tx.eirp_dbm() - 47.0).abs() < 0.3);
    }

    #[test]
    fn rx_snr_uses_cascade() {
        let rx = RxChain::milback_default();
        // −70 dBm in 10 MHz: floor ≈ −100.6 dBm, impl loss 13 dB → ≈17.6 dB.
        let snr = rx.snr_db(-70.0, 10e6);
        assert!((snr - 17.6).abs() < 1.0, "snr {snr:.1}");
    }

    #[test]
    fn both_rx_chains_identical_by_default() {
        let ap = ApRadio::milback_default();
        assert_eq!(ap.rx1, ap.rx2);
    }

    #[test]
    fn capture_duration_follows_digitizer_rate() {
        let rx = RxChain::milback_default();
        // 900 samples at 50 MS/s = 18 µs — one Field-2 chirp.
        assert!((rx.capture_s(900) - 18e-6).abs() < 1e-15);
        assert_eq!(rx.capture_s(0), 0.0);
    }

    #[test]
    fn digitizer_covers_max_range_beats() {
        // 50 MS/s captures beats to 25 MHz → ranges past 20 m for the
        // Field-2 slope; the evaluation tops out at 12 m.
        let rx = RxChain::milback_default();
        let max_beat = rx.digitizer_rate_hz / 2.0;
        let slope = 3e9 / 18e-6;
        let max_range = mmwave_rf::propagation::range_from_beat_m(slope, max_beat);
        assert!(max_range > 12.0, "max range {max_range:.1} m");
    }
}
