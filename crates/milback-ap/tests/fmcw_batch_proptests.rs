//! Property tests pinning the batched FMCW chirp-stack paths to the
//! per-chirp sequential paths **bit-for-bit** on randomized stacks.
//!
//! `range_spectra_flat_with` runs every frame of a stack through one plan
//! lookup and one reused scratch arena; these properties prove that the
//! batching (and a dirty, reused scratch) never changes a single output
//! bit relative to the allocating per-chirp pipeline.

use milback_ap::fmcw::{FmcwProcessor, FmcwScratch};
use mmwave_sigproc::complex::Complex;
use mmwave_sigproc::random::GaussianSource;
use mmwave_sigproc::waveform::Chirp;
use proptest::prelude::*;

/// A short test processor (small FFT) so 64 cases stay fast.
fn processor() -> FmcwProcessor {
    FmcwProcessor::new(Chirp::sawtooth(26.5e9, 3e9, 2e-6), 50e6)
}

/// A random chirp stack: `n_chirps` equal-length complex beat records.
fn stack(n_chirps: usize, len: usize, seed: u64) -> Vec<Vec<Complex>> {
    let mut rng = GaussianSource::new(seed);
    (0..n_chirps)
        .map(|_| {
            (0..len)
                .map(|_| Complex::new(rng.standard(), rng.standard()))
                .collect()
        })
        .collect()
}

proptest! {
    /// The batched flat-spectra path matches per-chirp `range_spectrum`
    /// calls bit-exactly, for any stack size — including through a scratch
    /// dirtied by a previous, differently-sized stack.
    #[test]
    fn batched_spectra_match_sequential_bits(
        n_chirps in 1usize..6,
        len_frac in 0.3f64..1.0,
        seed in 0u64..500,
    ) {
        let proc = processor();
        let len = ((proc.fft_len() as f64) * len_frac) as usize;
        let beats = stack(n_chirps, len.max(1), seed);
        let mut scratch = FmcwScratch::new();
        // Dirty the scratch with an unrelated stack first.
        let warmup = stack(2, 7, seed ^ 0xDEAD);
        let _ = proc.range_spectra_flat_with(&warmup, &mut scratch).unwrap();
        let flat = proc.range_spectra_flat_with(&beats, &mut scratch).unwrap();
        let n = proc.fft_len();
        prop_assert_eq!(flat.len(), n * beats.len());
        for (c, beat) in beats.iter().enumerate() {
            let reference = proc.range_spectrum(beat);
            for k in 0..n {
                let got = flat[c * n + k];
                prop_assert_eq!(got.re.to_bits(), reference[k].re.to_bits());
                prop_assert_eq!(got.im.to_bits(), reference[k].im.to_bits());
            }
        }
    }

    /// The scratch-fed subtraction and detection paths match the
    /// allocating ones bit-exactly on random stacks.
    #[test]
    fn batched_subtraction_and_detection_match_bits(
        n_chirps in 2usize..6,
        seed in 0u64..500,
    ) {
        let proc = processor();
        let len = proc.samples_per_chirp();
        let beats = stack(n_chirps, len, seed);
        let mut scratch = FmcwScratch::new();
        let power = proc.subtracted_power_with(&beats, &mut scratch).unwrap().to_vec();
        let reference = proc.subtracted_power(&beats).unwrap();
        prop_assert_eq!(power.len(), reference.len());
        for k in 0..power.len() {
            prop_assert_eq!(power[k].to_bits(), reference[k].to_bits());
        }
        // Detection agrees in every field (or errors identically: random
        // noise stacks rarely clear the peak-to-floor threshold).
        let det_batch = proc.detect_node_with(&beats, &mut scratch);
        let det_ref = proc.detect_node(&beats);
        match (det_batch, det_ref) {
            (Ok(a), Ok(b)) => {
                prop_assert_eq!(a.range_m.to_bits(), b.range_m.to_bits());
                prop_assert_eq!(a.peak_to_floor_db.to_bits(), b.peak_to_floor_db.to_bits());
            }
            (Err(a), Err(b)) => prop_assert_eq!(format!("{a}"), format!("{b}")),
            (a, b) => prop_assert!(false, "paths diverged: {a:?} vs {b:?}"),
        }
    }
}
