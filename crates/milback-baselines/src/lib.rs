//! # milback-baselines
//!
//! The comparison systems of the paper's Table 1, each modeled at the
//! link-budget level with its defining architectural property:
//!
//! * [`mmtag`] — mmTag \[35\]: Van Atta + PSK, uplink-only (no signal port).
//! * [`millimetro`] — Millimetro \[45\]: Van Atta + slow toggle,
//!   localization-only.
//! * [`omniscatter`] — OmniScatter \[12\]: commodity-FMCW-native backscatter,
//!   uplink (kbps-class) + localization.
//! * [`milback_adapter`] — MilBack itself through the same trait, so the
//!   table is generated from code rather than hard-coded.
//!
//! [`capability`] defines the comparison trait and renders Table 1.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod capability;
pub mod milback_adapter;
pub mod millimetro;
pub mod mmtag;
pub mod omniscatter;

pub use capability::{capability_table, render_table, BackscatterSystem, CapabilityRow};
pub use milback_adapter::MilBackSystem;
pub use millimetro::Millimetro;
pub use mmtag::MmTag;
pub use omniscatter::OmniScatter;
