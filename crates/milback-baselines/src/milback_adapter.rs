//! MilBack itself viewed through the [`BackscatterSystem`] comparison
//! trait, so Table 1 includes the paper's own row — generated from the
//! same end-to-end code the experiments use, not hard-coded booleans.

use crate::capability::BackscatterSystem;
use milback_core::config::SystemConfig;
use milback_core::link::LinkSimulator;
use milback_core::scene::Scene;
use milback_node::power::{NodeActivity, NodePowerModel};
use serde::{Deserialize, Serialize};

/// Default node orientation used for capability probes, radians (12° —
/// a representative off-normal pose where OAQFM runs two tones).
const PROBE_ORIENTATION_RAD: f64 = 12.0 * std::f64::consts::PI / 180.0;

/// MilBack as a comparable system.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MilBackSystem {
    /// The full system configuration.
    pub config: SystemConfig,
}

impl MilBackSystem {
    /// The paper's configuration.
    pub fn published() -> Self {
        Self {
            config: SystemConfig::milback_default(),
        }
    }

    fn simulator(&self, distance_m: f64) -> Option<LinkSimulator> {
        LinkSimulator::new(
            self.config.clone(),
            Scene::single_node(distance_m, PROBE_ORIENTATION_RAD),
        )
        .ok()
    }
}

impl BackscatterSystem for MilBackSystem {
    fn name(&self) -> &'static str {
        "MilBack (this work)"
    }

    fn uplink_snr_db(&self, distance_m: f64, bit_rate_hz: f64) -> Option<f64> {
        let mut config = self.config.clone();
        config.uplink_symbol_rate_hz = bit_rate_hz / 2.0;
        if config.validate().is_err() {
            return None;
        }
        LinkSimulator::new(
            config,
            Scene::single_node(distance_m, PROBE_ORIENTATION_RAD),
        )
        .ok()?
        .uplink_analytic_snr_db()
        .ok()
    }

    fn downlink_sinr_db(&self, distance_m: f64) -> Option<f64> {
        let sim = self.simulator(distance_m)?;
        let carriers = sim.plan_carriers(None).ok()?;
        let (f_a, f_b) = match carriers {
            milback_ap::waveform::CarrierSet::TwoTone { f_a, f_b } => (f_a, f_b),
            milback_ap::waveform::CarrierSet::SingleToneOok { f } => (f, f),
        };
        let psi = sim.scene.ground_truth(0).incidence_rad;
        let (a, b) = sim.downlink_sinr_breakdown(f_a, f_b, psi);
        Some(a.sinr_db().min(b.sinr_db()))
    }

    fn ranging_error_m(&self, distance_m: f64) -> Option<f64> {
        // Fig 12a envelope: ~2 cm floor growing to ~12 cm at 8 m.
        Some(0.02 + 0.0016 * distance_m * distance_m)
    }

    fn orientation_error_rad(&self) -> Option<f64> {
        // Fig 13: ≤3° node-side, ≤1.5° AP-side.
        Some(3f64.to_radians())
    }

    fn uplink_energy_per_bit_j(&self) -> Option<f64> {
        let model = NodePowerModel::milback_default();
        Some(model.energy_per_bit_j(NodeActivity::Uplink, self.config.uplink_bit_rate_hz()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capability::{capability_table, render_table};
    use crate::millimetro::Millimetro;
    use crate::mmtag::MmTag;
    use crate::omniscatter::OmniScatter;

    #[test]
    fn milback_row_is_all_yes() {
        let row = crate::capability::probe_capabilities(&MilBackSystem::published());
        assert!(row.uplink && row.localization && row.downlink && row.orientation);
    }

    #[test]
    fn full_table_1_reproduces() {
        let mmtag = MmTag::published();
        let millimetro = Millimetro::published();
        let omniscatter = OmniScatter::published();
        let milback = MilBackSystem::published();
        let rows = capability_table(&[&mmtag, &millimetro, &omniscatter, &milback]);
        // Exactly the paper's Table 1, with OmniScatter's uplink probed at
        // a rate it supports.
        assert_eq!(rows.len(), 4);
        assert!(rows[0].uplink && !rows[0].localization && !rows[0].downlink);
        assert!(!rows[1].uplink && rows[1].localization && !rows[1].downlink);
        assert!(rows[2].localization);
        assert!(rows[3].uplink && rows[3].localization && rows[3].downlink && rows[3].orientation);
        let text = render_table(&rows);
        assert!(text.contains("MilBack"));
    }

    #[test]
    fn milback_energy_beats_mmtag() {
        let milback = MilBackSystem::published()
            .uplink_energy_per_bit_j()
            .unwrap();
        let mmtag = MmTag::published().uplink_energy_per_bit_j().unwrap();
        assert!(mmtag / milback > 2.9, "ratio {}", mmtag / milback);
    }

    #[test]
    fn excessive_uplink_rate_returns_none() {
        let m = MilBackSystem::published();
        assert!(m.uplink_snr_db(3.0, 400e6).is_none()); // 200 Msym/s > switch
        assert!(m.uplink_snr_db(3.0, 40e6).is_some());
    }
}
