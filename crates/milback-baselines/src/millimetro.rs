//! The Millimetro baseline \[45\] (Soltanaghaei et al., MobiCom 2021):
//! mmWave retro-reflective tags for accurate, long-range *localization*.
//! No data uplink or downlink.
//!
//! Millimetro's tag is also a Van Atta retro-reflector, but instead of
//! carrying data it toggles at a fixed, tag-specific low frequency so an
//! FMCW radar can (a) separate it from clutter in the Doppler/modulation
//! domain and (b) identify which tag it is by the toggle frequency. We
//! model its localization through the same FMCW pipeline MilBack uses,
//! with the Van Atta's flat angular response.

use crate::capability::BackscatterSystem;
use milback_ap::fmcw::FmcwProcessor;
use mmwave_rf::antenna::vanatta::VanAttaArray;
use mmwave_rf::channel::{synthesize_beat, Echo};
use mmwave_rf::noise::ReceiverChain;
use mmwave_sigproc::random::GaussianSource;
use mmwave_sigproc::units::{db_to_lin, dbm_to_watts};
use mmwave_sigproc::waveform::Chirp;
use serde::{Deserialize, Serialize};

/// The Millimetro system model (FMCW radar + retro-reflective tag).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Millimetro {
    /// The tag's Van Atta array.
    pub array: VanAttaArray,
    /// Tag identification toggle frequency, Hz (unique per tag).
    pub tag_toggle_hz: f64,
    /// Radar TX power, dBm.
    pub radar_tx_dbm: f64,
    /// Radar antenna gain, dBi.
    pub radar_gain_dbi: f64,
    /// Radar chirp (24 GHz automotive-class FMCW).
    pub chirp: Chirp,
    /// Radar receiver chain.
    pub radar_chain: ReceiverChain,
    /// Tag power draw, watts (Millimetro reports µW-class operation).
    pub tag_power_w: f64,
}

impl Millimetro {
    /// A published-class configuration: 24 GHz FMCW, 250 MHz sweep.
    pub fn published() -> Self {
        Self {
            array: VanAttaArray::new(8),
            tag_toggle_hz: 500.0,
            radar_tx_dbm: 12.0,
            radar_gain_dbi: 15.0,
            chirp: Chirp::sawtooth(24e9, 250e6, 40e-6),
            radar_chain: ReceiverChain::milback_ap(),
            tag_power_w: 20e-6,
        }
    }

    /// Runs one ranging measurement through the FMCW pipeline and returns
    /// the estimated range.
    pub fn range_once(
        &self,
        distance_m: f64,
        clutter: &[(f64, f64)],
        rng: &mut GaussianSource,
    ) -> Option<f64> {
        let fs = 25e6;
        let proc = FmcwProcessor::new(self.chirp, fs);
        let tx_w = dbm_to_watts(self.radar_tx_dbm);
        let g = db_to_lin(self.radar_gain_dbi);
        let impl_amp = db_to_lin(-self.radar_chain.implementation_loss_db).sqrt();
        let tag_amp = mmwave_rf::channel::backscatter_amplitude_sqrt_w(
            tx_w,
            g,
            g,
            self.array.retro_gain_product_linear(0.0),
            1.0,
            self.chirp.center_hz(),
            distance_m,
        ) * impl_amp;
        let noise_w =
            mmwave_sigproc::units::noise_power_watts(fs / 2.0, self.radar_chain.noise_figure_db());
        let beats: Vec<Vec<mmwave_sigproc::Complex>> = (0..5)
            .map(|k| {
                let on = k % 2 == 0;
                let mut echoes: Vec<Echo<'_>> = clutter
                    .iter()
                    .map(|&(d, a)| Echo::constant(d, a * impl_amp))
                    .collect();
                echoes.push(Echo::constant(
                    distance_m,
                    if on { tag_amp } else { tag_amp * 0.1 },
                ));
                let mut b = synthesize_beat(&self.chirp, &echoes, fs);
                rng.add_complex_noise(&mut b, noise_w);
                b
            })
            .collect();
        proc.detect_node(&beats).ok().map(|d| d.range_m)
    }

    /// FMCW range resolution of the 250 MHz sweep — the coarse bound on
    /// per-chirp accuracy (Millimetro refines across chirps).
    pub fn range_resolution_m(&self) -> f64 {
        mmwave_rf::propagation::range_resolution_m(self.chirp.bandwidth_hz)
    }
}

impl BackscatterSystem for Millimetro {
    fn name(&self) -> &'static str {
        "Millimetro [45]"
    }

    fn uplink_snr_db(&self, _distance_m: f64, _bit_rate_hz: f64) -> Option<f64> {
        // The toggle carries identity, not data.
        None
    }

    fn downlink_sinr_db(&self, _distance_m: f64) -> Option<f64> {
        None
    }

    fn ranging_error_m(&self, distance_m: f64) -> Option<f64> {
        // Sub-resolution via interpolation, degrading with range; the
        // published system reports cm-class accuracy at tens of meters.
        Some(0.02 + 0.003 * distance_m)
    }

    fn orientation_error_rad(&self) -> Option<f64> {
        // Van Atta response is angle-flat: nothing to sense orientation by.
        None
    }

    fn uplink_energy_per_bit_j(&self) -> Option<f64> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capability::probe_capabilities;

    #[test]
    fn capability_row_matches_table1() {
        let row = probe_capabilities(&Millimetro::published());
        assert!(row.localization);
        assert!(!row.uplink && !row.downlink && !row.orientation);
    }

    #[test]
    fn ranges_a_tag_through_clutter() {
        let m = Millimetro::published();
        let mut rng = GaussianSource::new(3);
        let est = m.range_once(6.0, &[(2.5, 1e-4)], &mut rng).unwrap();
        // 250 MHz sweep → 60 cm resolution; interpolation beats it.
        assert!((est - 6.0).abs() < 0.3, "range {est:.2} m");
    }

    #[test]
    fn narrow_sweep_means_coarse_resolution() {
        let m = Millimetro::published();
        // 250 MHz → 60 cm, vs MilBack's 3 GHz → 5 cm.
        assert!((m.range_resolution_m() - 0.5996).abs() < 1e-3);
        assert!(m.range_resolution_m() > 10.0 * mmwave_rf::propagation::range_resolution_m(3e9));
    }

    #[test]
    fn tag_power_is_microwatt_class() {
        assert!(Millimetro::published().tag_power_w < 1e-3);
    }
}
