//! The mmTag baseline \[35\] (Mazaheri, Chen, Abari — SIGCOMM 2021): the
//! first mmWave backscatter *communication* network. Uplink-only.
//!
//! mmTag's tag is a Van Atta retro-reflective array whose pair-connecting
//! transmission lines pass through RF switches: selecting between line
//! sections of different electrical length modulates the *phase* of the
//! retro-reflected wave (PSK), at 24 GHz. Retro-reflectivity removes the
//! beam-alignment problem — but because the Van Atta has no signal port
//! (§4 of the MilBack paper), there is nowhere to attach a receiver:
//! **no downlink**, and the tag cannot be FMCW-localized in mmTag's design
//! (the system gives it no localization waveform). Energy efficiency is
//! the paper's cited 2.4 nJ/bit.

use crate::capability::BackscatterSystem;
use mmwave_rf::antenna::vanatta::{RetroModulation, VanAttaArray};
use mmwave_rf::noise::ReceiverChain;
use mmwave_sigproc::random::GaussianSource;
use mmwave_sigproc::stats::q_function;
use mmwave_sigproc::units::{db_to_lin, dbm_to_watts, watts_to_dbm};
use serde::{Deserialize, Serialize};

/// The mmTag system model (reader + tag).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MmTag {
    /// The tag's Van Atta array.
    pub array: VanAttaArray,
    /// PSK variant in use.
    pub modulation: RetroModulation,
    /// Reader TX power, dBm.
    pub reader_tx_dbm: f64,
    /// Reader antenna gain, dBi (each of TX/RX).
    pub reader_gain_dbi: f64,
    /// Carrier frequency, Hz (24 GHz ISM).
    pub carrier_hz: f64,
    /// Reader receive chain.
    pub reader_chain: ReceiverChain,
    /// Cited tag energy efficiency, J/bit.
    pub energy_per_bit_j: f64,
}

impl MmTag {
    /// The published configuration: 24 GHz, QPSK, 2.4 nJ/bit.
    pub fn published() -> Self {
        Self {
            array: VanAttaArray::new(8),
            modulation: RetroModulation::Qpsk,
            reader_tx_dbm: 27.0,
            reader_gain_dbi: 20.0,
            carrier_hz: 24e9,
            reader_chain: ReceiverChain::milback_ap(),
            energy_per_bit_j: 2.4e-9,
        }
    }

    /// Uplink signal power at the reader RX port, dBm, at incidence
    /// `angle_rad` (flat thanks to the Van Atta).
    pub fn uplink_signal_dbm(&self, distance_m: f64, angle_rad: f64) -> f64 {
        let amp = mmwave_rf::channel::backscatter_amplitude_sqrt_w(
            dbm_to_watts(self.reader_tx_dbm),
            db_to_lin(self.reader_gain_dbi),
            db_to_lin(self.reader_gain_dbi),
            self.array.retro_gain_product_linear(angle_rad),
            // PSK preserves full reflection magnitude: modulation lives in
            // the phase, so there is no OOK-style half-swing penalty.
            1.0,
            self.carrier_hz,
            distance_m,
        );
        watts_to_dbm(amp * amp)
    }

    /// Analytic uplink SNR over the bit-rate bandwidth.
    pub fn snr_db(&self, distance_m: f64, bit_rate_hz: f64, angle_rad: f64) -> f64 {
        self.reader_chain
            .snr_db(self.uplink_signal_dbm(distance_m, angle_rad), bit_rate_hz)
    }

    /// Analytic BER for the configured PSK at an SNR.
    ///
    /// BPSK: `Q(√(2·SNR))`; QPSK (Gray-coded, per-bit): same per-bit BER at
    /// the same Es/N0 split across quadratures — `Q(√SNR)` in this
    /// convention.
    pub fn ber_at_snr(&self, snr_db: f64) -> f64 {
        let snr = db_to_lin(snr_db);
        match self.modulation {
            RetroModulation::Bpsk => q_function((2.0 * snr).sqrt()),
            RetroModulation::Qpsk => q_function(snr.sqrt()),
            RetroModulation::OnOff => q_function((snr / 2.0).sqrt()),
        }
    }

    /// Symbol-level Monte-Carlo of an uplink transfer: returns the BER
    /// measured over `n_bits` random bits at the analytic SNR.
    pub fn simulate_ber(
        &self,
        distance_m: f64,
        bit_rate_hz: f64,
        n_bits: usize,
        rng: &mut GaussianSource,
    ) -> f64 {
        let snr = db_to_lin(self.snr_db(distance_m, bit_rate_hz, 0.0));
        let states = self.modulation.states();
        let bits_per_symbol = self.modulation.bits_per_symbol() as usize;
        // Per-quadrature noise σ = 1/√(2·SNR) makes the nearest-neighbour
        // decisions reproduce ber_at_snr for every supported constellation
        // (BPSK: Q(1/σ)=Q(√(2SNR)); QPSK per-quadrature: Q(1/(σ√2))=Q(√SNR);
        // OOK: Q(0.5/σ)=Q(√(SNR/2))).
        let sigma = (1.0 / (2.0 * snr)).sqrt();
        // Gray-map symbol indices so adjacent constellation points differ
        // in exactly one bit.
        let gray = |i: usize| i ^ (i >> 1);
        let n_syms = n_bits / bits_per_symbol;
        let mut errors = 0usize;
        for _ in 0..n_syms {
            let tx_idx = (rng.uniform(0.0, states.len() as f64) as usize).min(states.len() - 1);
            let tx = states[tx_idx];
            let rx = tx + mmwave_sigproc::Complex::new(rng.sample(sigma), rng.sample(sigma));
            // Nearest-neighbour decision.
            let mut best = 0usize;
            let mut best_d = f64::MAX;
            for (i, s) in states.iter().enumerate() {
                let d = (rx - *s).norm_sqr();
                if d < best_d {
                    best_d = d;
                    best = i;
                }
            }
            errors += (gray(best) ^ gray(tx_idx)).count_ones() as usize;
        }
        errors as f64 / (n_syms * bits_per_symbol) as f64
    }

    /// Tag power at a bit rate (energy/bit × rate).
    pub fn tag_power_w(&self, bit_rate_hz: f64) -> f64 {
        self.energy_per_bit_j * bit_rate_hz
    }
}

impl BackscatterSystem for MmTag {
    fn name(&self) -> &'static str {
        "mmTag [35]"
    }

    fn uplink_snr_db(&self, distance_m: f64, bit_rate_hz: f64) -> Option<f64> {
        Some(self.snr_db(distance_m, bit_rate_hz, 0.0))
    }

    fn downlink_sinr_db(&self, _distance_m: f64) -> Option<f64> {
        // The Van Atta has no signal port — nothing to receive with.
        None
    }

    fn ranging_error_m(&self, _distance_m: f64) -> Option<f64> {
        // mmTag's reader is a communication receiver, not an FMCW radar.
        None
    }

    fn orientation_error_rad(&self) -> Option<f64> {
        None
    }

    fn uplink_energy_per_bit_j(&self) -> Option<f64> {
        Some(self.energy_per_bit_j)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capability::probe_capabilities;

    #[test]
    fn capability_row_matches_table1() {
        let row = probe_capabilities(&MmTag::published());
        assert!(row.uplink);
        assert!(!row.localization && !row.downlink && !row.orientation);
    }

    #[test]
    fn retro_reflection_makes_snr_angle_insensitive() {
        let t = MmTag::published();
        let s0 = t.snr_db(4.0, 10e6, 0.0);
        let s30 = t.snr_db(4.0, 10e6, 30f64.to_radians());
        assert!(
            (s0 - s30).abs() < 1.5,
            "Van Atta should be flat: {s0} vs {s30}"
        );
    }

    #[test]
    fn snr_falls_with_distance_squared_twice() {
        let t = MmTag::published();
        let d = t.snr_db(2.0, 10e6, 0.0) - t.snr_db(4.0, 10e6, 0.0);
        assert!((d - 12.04).abs() < 0.05);
    }

    #[test]
    fn bpsk_beats_qpsk_beats_ook_at_fixed_snr() {
        let mut t = MmTag::published();
        t.modulation = RetroModulation::Bpsk;
        let b = t.ber_at_snr(8.0);
        t.modulation = RetroModulation::Qpsk;
        let q = t.ber_at_snr(8.0);
        t.modulation = RetroModulation::OnOff;
        let o = t.ber_at_snr(8.0);
        assert!(b < q && q < o, "b={b:.2e} q={q:.2e} o={o:.2e}");
    }

    #[test]
    fn monte_carlo_ber_tracks_analytic() {
        let t = MmTag::published();
        let mut rng = GaussianSource::new(17);
        // Pick a distance where BER is measurable (~1e-2).
        let mut d = 2.0;
        while t.ber_at_snr(t.snr_db(d, 100e6, 0.0)) < 5e-3 {
            d += 0.5;
        }
        let analytic = t.ber_at_snr(t.snr_db(d, 100e6, 0.0));
        let measured = t.simulate_ber(d, 100e6, 200_000, &mut rng);
        assert!(
            measured / analytic < 3.0 && analytic / measured < 3.0,
            "measured {measured:.2e} vs analytic {analytic:.2e} at {d} m"
        );
    }

    #[test]
    fn energy_efficiency_is_three_times_milback() {
        // §9.6: MilBack 0.8 nJ/bit vs mmTag 2.4 nJ/bit.
        let t = MmTag::published();
        assert!((t.energy_per_bit_j / 0.8e-9 - 3.0).abs() < 0.01);
    }

    #[test]
    fn tag_power_scales_with_rate() {
        let t = MmTag::published();
        assert!((t.tag_power_w(100e6) - 0.24).abs() < 1e-12);
    }
}
