//! The capability model behind Table 1: every system under comparison
//! implements [`BackscatterSystem`], and the table is *generated from the
//! code* — a capability is "Yes" exactly when the corresponding method
//! returns `Some`.

use serde::{Deserialize, Serialize};

/// A mmWave backscatter system under comparison.
pub trait BackscatterSystem {
    /// Display name.
    fn name(&self) -> &'static str;

    /// Uplink SNR (dB) at `distance_m` for `bit_rate_hz`, or `None` if the
    /// system has no uplink.
    fn uplink_snr_db(&self, distance_m: f64, bit_rate_hz: f64) -> Option<f64>;

    /// Downlink SINR (dB) at `distance_m`, or `None` if no downlink.
    fn downlink_sinr_db(&self, distance_m: f64) -> Option<f64>;

    /// Expected ranging error (m) at `distance_m`, or `None` if the system
    /// cannot be localized.
    fn ranging_error_m(&self, distance_m: f64) -> Option<f64>;

    /// Expected orientation-sensing error (radians), or `None` if the
    /// system has no orientation sensing.
    fn orientation_error_rad(&self) -> Option<f64>;

    /// Uplink energy per bit, J/bit, or `None` without an uplink.
    fn uplink_energy_per_bit_j(&self) -> Option<f64>;
}

/// One row of the capability matrix.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CapabilityRow {
    /// System name.
    pub system: String,
    /// Supports uplink communication.
    pub uplink: bool,
    /// Supports localization.
    pub localization: bool,
    /// Supports downlink communication.
    pub downlink: bool,
    /// Supports orientation sensing.
    pub orientation: bool,
}

/// Probes a system at a representative operating point and derives its
/// row. Uplink is probed at 10 Mbps and again at 1 kbps, so systems that
/// trade rate for sensitivity (OmniScatter) still register their uplink.
pub fn probe_capabilities(system: &dyn BackscatterSystem) -> CapabilityRow {
    CapabilityRow {
        system: system.name().to_string(),
        uplink: system.uplink_snr_db(3.0, 10e6).is_some()
            || system.uplink_snr_db(3.0, 1e3).is_some(),
        localization: system.ranging_error_m(3.0).is_some(),
        downlink: system.downlink_sinr_db(3.0).is_some(),
        orientation: system.orientation_error_rad().is_some(),
    }
}

/// Builds the full Table 1 from a set of systems.
pub fn capability_table(systems: &[&dyn BackscatterSystem]) -> Vec<CapabilityRow> {
    systems.iter().map(|s| probe_capabilities(*s)).collect()
}

/// Renders the table as aligned text, matching the paper's Table 1 layout.
pub fn render_table(rows: &[CapabilityRow]) -> String {
    let yn = |b: bool| if b { "Yes" } else { "No" };
    let mut out = String::new();
    out.push_str(&format!(
        "{:<22} {:>7} {:>13} {:>9} {:>12}\n",
        "System", "Uplink", "Localization", "Downlink", "Orientation"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<22} {:>7} {:>13} {:>9} {:>12}\n",
            r.system,
            yn(r.uplink),
            yn(r.localization),
            yn(r.downlink),
            yn(r.orientation)
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    struct FakeUplinkOnly;
    impl BackscatterSystem for FakeUplinkOnly {
        fn name(&self) -> &'static str {
            "fake"
        }
        fn uplink_snr_db(&self, _: f64, _: f64) -> Option<f64> {
            Some(10.0)
        }
        fn downlink_sinr_db(&self, _: f64) -> Option<f64> {
            None
        }
        fn ranging_error_m(&self, _: f64) -> Option<f64> {
            None
        }
        fn orientation_error_rad(&self) -> Option<f64> {
            None
        }
        fn uplink_energy_per_bit_j(&self) -> Option<f64> {
            Some(1e-9)
        }
    }

    #[test]
    fn probe_reflects_method_availability() {
        let row = probe_capabilities(&FakeUplinkOnly);
        assert!(row.uplink);
        assert!(!row.downlink && !row.localization && !row.orientation);
    }

    #[test]
    fn render_contains_header_and_rows() {
        let rows = capability_table(&[&FakeUplinkOnly]);
        let text = render_table(&rows);
        assert!(text.contains("System"));
        assert!(text.contains("fake"));
        assert!(text.contains("Yes"));
        assert!(text.contains("No"));
    }
}
