//! The OmniScatter baseline \[12\] (Bae et al., MobiSys 2022): extreme-
//! sensitivity mmWave backscatter using commodity FMCW radar. Uplink and
//! localization, **no downlink or orientation sensing**.
//!
//! OmniScatter's tag modulates against a commodity FMCW radar's chirps so
//! that its data appears at distinct beat/Doppler coordinates; the
//! dechirping math gives enormous processing gain (the radar integrates a
//! whole chirp per decision), which is where the "extreme sensitivity"
//! comes from — at low data rates. The radar's ranging comes for free.

use crate::capability::BackscatterSystem;
use mmwave_rf::noise::ReceiverChain;
use mmwave_sigproc::units::{db_to_lin, dbm_to_watts, watts_to_dbm};
use serde::{Deserialize, Serialize};

/// The OmniScatter system model (commodity radar + tag).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OmniScatter {
    /// Radar TX power, dBm (commodity automotive radar class).
    pub radar_tx_dbm: f64,
    /// Radar antenna gain, dBi.
    pub radar_gain_dbi: f64,
    /// Tag antenna gain, dBi (quasi-omnidirectional — that is the point:
    /// no alignment needed, at the cost of link budget).
    pub tag_gain_dbi: f64,
    /// Carrier frequency, Hz (24 GHz commodity radar).
    pub carrier_hz: f64,
    /// Chirp duration, seconds — one chirp integrates one symbol, so this
    /// sets the processing gain and caps the symbol rate.
    pub chirp_duration_s: f64,
    /// Radar receiver chain.
    pub radar_chain: ReceiverChain,
    /// Coherent integration / coding gain across the radar frame, dB —
    /// OmniScatter's "extreme sensitivity" mechanism: each bit is spread
    /// over many chirps of a frame and recombined coherently.
    pub coding_gain_db: f64,
    /// Tag energy per bit, J/bit.
    pub energy_per_bit_j: f64,
}

impl OmniScatter {
    /// A published-class configuration.
    pub fn published() -> Self {
        Self {
            radar_tx_dbm: 12.0,
            radar_gain_dbi: 15.0,
            tag_gain_dbi: 3.0,
            carrier_hz: 24e9,
            chirp_duration_s: 100e-6,
            radar_chain: ReceiverChain::milback_ap(),
            coding_gain_db: 15.0,
            energy_per_bit_j: 1.2e-9,
        }
    }

    /// Maximum symbol rate: one symbol per chirp.
    pub fn max_symbol_rate_hz(&self) -> f64 {
        1.0 / self.chirp_duration_s
    }

    /// Uplink SNR after dechirp processing gain, dB. The per-symbol
    /// decision bandwidth is `1/chirp_duration` regardless of how weak the
    /// raw echo is — OmniScatter's sensitivity trick.
    pub fn snr_db(&self, distance_m: f64) -> f64 {
        let amp = mmwave_rf::channel::backscatter_amplitude_sqrt_w(
            dbm_to_watts(self.radar_tx_dbm),
            db_to_lin(self.radar_gain_dbi),
            db_to_lin(self.radar_gain_dbi),
            db_to_lin(self.tag_gain_dbi).powi(2),
            0.5,
            self.carrier_hz,
            distance_m,
        );
        let signal_dbm = watts_to_dbm(amp * amp);
        self.radar_chain
            .snr_db(signal_dbm, self.max_symbol_rate_hz())
            + self.coding_gain_db
    }
}

impl BackscatterSystem for OmniScatter {
    fn name(&self) -> &'static str {
        "OmniScatter [12]"
    }

    fn uplink_snr_db(&self, distance_m: f64, bit_rate_hz: f64) -> Option<f64> {
        if bit_rate_hz > self.max_symbol_rate_hz() {
            // The radar integrates one symbol per chirp; rates beyond
            // 1/chirp are unreachable (OmniScatter is kbps-class).
            return None;
        }
        Some(self.snr_db(distance_m))
    }

    fn downlink_sinr_db(&self, _distance_m: f64) -> Option<f64> {
        None
    }

    fn ranging_error_m(&self, distance_m: f64) -> Option<f64> {
        // Commodity radar ranging, good to cm–dm depending on bandwidth.
        Some(0.05 + 0.005 * distance_m)
    }

    fn orientation_error_rad(&self) -> Option<f64> {
        None
    }

    fn uplink_energy_per_bit_j(&self) -> Option<f64> {
        Some(self.energy_per_bit_j)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capability::probe_capabilities;

    #[test]
    fn capability_row_matches_table1() {
        let o = OmniScatter::published();
        // Probe at 10 kbps — within the chirp-rate budget.
        let row = crate::capability::CapabilityRow {
            system: o.name().to_string(),
            uplink: o.uplink_snr_db(3.0, 10e3).is_some(),
            localization: o.ranging_error_m(3.0).is_some(),
            downlink: o.downlink_sinr_db(3.0).is_some(),
            orientation: o.orientation_error_rad().is_some(),
        };
        assert!(row.uplink && row.localization);
        assert!(!row.downlink && !row.orientation);
        // The generic probe falls back to a kbps rate, so OmniScatter's
        // uplink registers as the paper's Table 1 says.
        let generic = probe_capabilities(&o);
        assert!(generic.uplink && generic.localization);
        assert!(!generic.downlink && !generic.orientation);
    }

    #[test]
    fn low_rate_gives_huge_processing_gain() {
        let o = OmniScatter::published();
        // Despite 15 dB less EIRP than MilBack and omni tag antennas, the
        // 10 kHz decision bandwidth keeps SNR usable at range.
        let snr = o.snr_db(5.0);
        assert!(snr > 10.0, "snr {snr:.1} dB");
    }

    #[test]
    fn rate_cap_enforced() {
        let o = OmniScatter::published();
        assert!(o.uplink_snr_db(3.0, 5e3).is_some());
        assert!(o.uplink_snr_db(3.0, 1e6).is_none());
    }

    #[test]
    fn milback_wins_on_rate_omniscatter_on_sensitivity() {
        // The Table-1 story quantified: OmniScatter cannot do 10 Mbps at
        // all; at its own kbps rates it reaches further than MilBack's
        // high-rate uplink budget would.
        let o = OmniScatter::published();
        assert!(o.uplink_snr_db(8.0, 40e6).is_none());
        assert!(o.snr_db(15.0) > 0.0);
    }
}
