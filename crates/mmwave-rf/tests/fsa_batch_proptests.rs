//! Property tests pinning the FSA batch evaluation layer to the scalar
//! paths **bit-for-bit** (`to_bits` equality) on randomized grids.
//!
//! The batch APIs skip the `RwLock` memo and run straight through the
//! shared `AfCore` routines; these properties are the proof that doing so
//! never drifts a single ULP from the per-call path at opt-level=3 — the
//! committed figure CSVs (and their CI hashes) depend on that.

use mmwave_rf::antenna::fsa::{DualPortFsa, FsaDesign, FsaGainEval, FsaPort};
use proptest::prelude::*;

fn port(b: bool) -> FsaPort {
    if b {
        FsaPort::A
    } else {
        FsaPort::B
    }
}

proptest! {
    /// Angle-chunk batches through a hoisted `FsaFreqEval` match both the
    /// direct per-call design path and the memoized evaluator, bit-exactly.
    #[test]
    fn angle_batches_match_scalar_bits(
        port_a in any::<bool>(),
        freq_off in 0.0f64..3.0e9,
        angles in proptest::collection::vec(-0.9f64..0.9, 1..160),
    ) {
        let d = FsaDesign::milback_default();
        let eval = FsaGainEval::new(&d);
        let p = port(port_a);
        let f = 26.5e9 + freq_off;
        let fe = eval.at_freq(p, f);
        let mut dbi = vec![0.0; angles.len()];
        let mut lin = vec![0.0; angles.len()];
        fe.gain_dbi_batch(&angles, &mut dbi);
        fe.gain_linear_batch(&angles, &mut lin);
        for (i, &a) in angles.iter().enumerate() {
            prop_assert_eq!(dbi[i].to_bits(), d.gain_dbi(p, f, a).to_bits());
            prop_assert_eq!(lin[i].to_bits(), d.gain_linear(p, f, a).to_bits());
            prop_assert_eq!(dbi[i].to_bits(), eval.gain_dbi(p, f, a).to_bits());
        }
    }

    /// Frequency-chunk batches (the cold-grid localization path) match the
    /// scalar design calls bit-exactly, with and without memo writeback,
    /// and the writeback seeds a cache whose hits return the same bits.
    #[test]
    fn freq_batches_match_scalar_bits(
        port_a in any::<bool>(),
        angle in -0.9f64..0.9,
        freqs in proptest::collection::vec(26.5e9f64..29.5e9, 1..160),
    ) {
        let d = FsaDesign::milback_default();
        let eval = FsaGainEval::new(&d);
        let p = port(port_a);
        let mut dbi = vec![0.0; freqs.len()];
        let mut lin = vec![0.0; freqs.len()];
        eval.gain_dbi_freqs_into(p, &freqs, angle, &mut dbi, false);
        eval.gain_linear_freqs_into(p, &freqs, angle, &mut lin, false);
        for (i, &f) in freqs.iter().enumerate() {
            prop_assert_eq!(dbi[i].to_bits(), d.gain_dbi(p, f, angle).to_bits());
            prop_assert_eq!(lin[i].to_bits(), d.gain_linear(p, f, angle).to_bits());
        }
        // Memoizing run: same bits out, and the seeded cache serves the
        // scalar path the same bits back.
        let mut dbi_memo = vec![0.0; freqs.len()];
        eval.gain_dbi_freqs_into(p, &freqs, angle, &mut dbi_memo, true);
        for (i, &f) in freqs.iter().enumerate() {
            prop_assert_eq!(dbi_memo[i].to_bits(), dbi[i].to_bits());
            prop_assert_eq!(eval.gain_dbi(p, f, angle).to_bits(), dbi[i].to_bits());
        }
    }

    /// Dual-port coupling batches match the scalar `DualPortFsa` path
    /// bit-exactly across random frequency grids.
    #[test]
    fn coupling_batches_match_scalar_bits(
        angle in -0.9f64..0.9,
        freqs in proptest::collection::vec(26.5e9f64..29.5e9, 1..120),
    ) {
        let fsa = DualPortFsa::milback_default();
        let eval = FsaGainEval::for_dual(&fsa);
        let mut into_a = vec![0.0; freqs.len()];
        let mut into_b = vec![0.0; freqs.len()];
        eval.port_coupling_linear_freqs_into(&freqs, angle, &mut into_a, &mut into_b);
        for (i, &f) in freqs.iter().enumerate() {
            let (ca, cb) = fsa.port_coupling_linear(f, angle);
            prop_assert_eq!(into_a[i].to_bits(), ca.to_bits());
            prop_assert_eq!(into_b[i].to_bits(), cb.to_bits());
        }
    }
}
