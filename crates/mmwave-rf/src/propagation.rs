//! Free-space propagation at millimeter-wave frequencies: Friis link
//! budgets, the radar (two-way backscatter) equation, carrier phase over
//! distance, and FMCW beat-frequency geometry.
//!
//! mmWave signals "decay quickly with distance" (§4) — at 28 GHz the
//! one-way free-space path loss at 8 m is already ≈79.5 dB, which is why
//! every antenna in the system needs double-digit dBi gain.

use mmwave_sigproc::units::{lin_to_db, SPEED_OF_LIGHT};
use std::f64::consts::PI;

/// One-way free-space path loss in dB at `distance_m` / `freq_hz`.
///
/// # Panics
/// Panics for non-positive distance or frequency.
pub fn fspl_db(freq_hz: f64, distance_m: f64) -> f64 {
    assert!(
        freq_hz > 0.0 && distance_m > 0.0,
        "fspl needs positive arguments"
    );
    let lambda = SPEED_OF_LIGHT / freq_hz;
    lin_to_db((4.0 * PI * distance_m / lambda).powi(2))
}

/// Friis one-way received power (dBm) for a link budget in dB terms.
pub fn friis_dbm(
    tx_power_dbm: f64,
    tx_gain_dbi: f64,
    rx_gain_dbi: f64,
    freq_hz: f64,
    distance_m: f64,
) -> f64 {
    tx_power_dbm + tx_gain_dbi + rx_gain_dbi - fspl_db(freq_hz, distance_m)
}

/// Monostatic backscatter received power (dBm): the radar equation written
/// with the tag's round-trip gain product `G_rx·G_tx` and modulation
/// reflection coefficient folded into `tag_gain_product_db` /
/// `reflection_db`.
///
/// `P_rx = P_tx + G_ap_tx + G_ap_rx + G_tag_product + Γ² − 2·FSPL`.
pub fn backscatter_dbm(
    tx_power_dbm: f64,
    ap_tx_gain_dbi: f64,
    ap_rx_gain_dbi: f64,
    tag_gain_product_db: f64,
    reflection_db: f64,
    freq_hz: f64,
    distance_m: f64,
) -> f64 {
    tx_power_dbm + ap_tx_gain_dbi + ap_rx_gain_dbi + tag_gain_product_db + reflection_db
        - 2.0 * fspl_db(freq_hz, distance_m)
}

/// Radar-equation received power (dBm) from a clutter object of RCS
/// `sigma_m2` (walls, desks — the background the AP must subtract, §5.1).
pub fn radar_clutter_dbm(
    tx_power_dbm: f64,
    ap_tx_gain_dbi: f64,
    ap_rx_gain_dbi: f64,
    sigma_m2: f64,
    freq_hz: f64,
    distance_m: f64,
) -> f64 {
    assert!(sigma_m2 >= 0.0, "RCS cannot be negative");
    let lambda = SPEED_OF_LIGHT / freq_hz;
    let num = lambda * lambda * sigma_m2;
    let den = (4.0 * PI).powi(3) * distance_m.powi(4);
    tx_power_dbm + ap_tx_gain_dbi + ap_rx_gain_dbi + lin_to_db(num / den)
}

/// Round-trip propagation delay to an object at `distance_m`.
pub fn round_trip_delay_s(distance_m: f64) -> f64 {
    2.0 * distance_m / SPEED_OF_LIGHT
}

/// FMCW beat frequency for an object at `distance_m`, given the sweep slope
/// (Hz/s): `f_b = slope · 2d/c` (§2).
pub fn beat_frequency_hz(slope_hz_per_s: f64, distance_m: f64) -> f64 {
    slope_hz_per_s * round_trip_delay_s(distance_m)
}

/// Inverts a measured beat frequency back to range: `d = c·f_b/(2·slope)`.
pub fn range_from_beat_m(slope_hz_per_s: f64, beat_hz: f64) -> f64 {
    assert!(slope_hz_per_s > 0.0, "slope must be positive");
    SPEED_OF_LIGHT * beat_hz / (2.0 * slope_hz_per_s)
}

/// FMCW range resolution `c / 2B` for sweep bandwidth `B`.
pub fn range_resolution_m(bandwidth_hz: f64) -> f64 {
    SPEED_OF_LIGHT / (2.0 * bandwidth_hz)
}

/// Carrier phase accumulated over a one-way path, radians (mod 2π free).
pub fn path_phase_rad(freq_hz: f64, distance_m: f64) -> f64 {
    2.0 * PI * freq_hz * distance_m / SPEED_OF_LIGHT
}

/// Phase difference between two receive antennas separated by
/// `baseline_m`, for a plane wave from `angle_rad` off array broadside:
/// `Δφ = 2π·d·sin(θ)/λ` — the AP's AoA observable (§9.2).
pub fn aoa_phase_difference_rad(freq_hz: f64, baseline_m: f64, angle_rad: f64) -> f64 {
    2.0 * PI * baseline_m * angle_rad.sin() * freq_hz / SPEED_OF_LIGHT
}

/// Inverts a measured inter-antenna phase difference to an angle.
///
/// Returns `None` when the implied `sin θ` falls outside ±1 (phase noise
/// pushed it out of the unambiguous region).
pub fn angle_from_phase_rad(freq_hz: f64, baseline_m: f64, delta_phi_rad: f64) -> Option<f64> {
    let s = delta_phi_rad * SPEED_OF_LIGHT / (2.0 * PI * baseline_m * freq_hz);
    if s.abs() > 1.0 {
        None
    } else {
        Some(s.asin())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fspl_reference_at_28ghz() {
        // 1 m @ 28 GHz: 20log10(4π/0.010707) ≈ 61.4 dB.
        assert!((fspl_db(28e9, 1.0) - 61.39).abs() < 0.05);
        // 8 m adds 18.06 dB.
        assert!((fspl_db(28e9, 8.0) - 79.45).abs() < 0.05);
    }

    #[test]
    fn fspl_grows_6db_per_doubling() {
        let d1 = fspl_db(28e9, 2.0);
        let d2 = fspl_db(28e9, 4.0);
        assert!((d2 - d1 - 6.02).abs() < 0.01);
    }

    #[test]
    #[should_panic(expected = "positive arguments")]
    fn fspl_rejects_zero_distance() {
        fspl_db(28e9, 0.0);
    }

    #[test]
    fn friis_budget_for_milback_downlink() {
        // 27 dBm + 20 dBi + 13 dBi − FSPL(8 m) ≈ −19.5 dBm at the node port.
        let p = friis_dbm(27.0, 20.0, 13.0, 28e9, 8.0);
        assert!((p - (-19.45)).abs() < 0.1, "got {p}");
    }

    #[test]
    fn backscatter_loses_twice_the_path() {
        let one_way = friis_dbm(27.0, 20.0, 13.0, 28e9, 4.0);
        let two_way = backscatter_dbm(27.0, 20.0, 20.0, 26.0, 0.0, 28e9, 4.0);
        // Doubling distance costs 6 dB one-way but 12 dB two-way.
        let one_way_8 = friis_dbm(27.0, 20.0, 13.0, 28e9, 8.0);
        let two_way_8 = backscatter_dbm(27.0, 20.0, 20.0, 26.0, 0.0, 28e9, 8.0);
        assert!(((one_way - one_way_8) - 6.02).abs() < 0.01);
        assert!(((two_way - two_way_8) - 12.04).abs() < 0.01);
    }

    #[test]
    fn clutter_stronger_than_tag_before_subtraction() {
        // A 1 m² wall at 3 m outshines the node's modulated echo at 3 m —
        // the reason background subtraction exists (§5.1).
        let wall = radar_clutter_dbm(27.0, 20.0, 20.0, 1.0, 28e9, 3.0);
        let node = backscatter_dbm(27.0, 20.0, 20.0, 26.0, -1.6, 28e9, 3.0);
        assert!(wall > node, "wall {wall:.1} dBm vs node {node:.1} dBm");
    }

    #[test]
    fn beat_frequency_roundtrip() {
        let slope = 3e9 / 18e-6; // Field-2 chirp
        for d in [0.5, 2.0, 5.0, 8.0] {
            let fb = beat_frequency_hz(slope, d);
            assert!((range_from_beat_m(slope, fb) - d).abs() < 1e-9);
        }
    }

    #[test]
    fn beat_frequency_reference() {
        // 5 m, slope 1.667e14 Hz/s → τ = 33.36 ns → f_b ≈ 5.56 MHz.
        let slope = 3e9 / 18e-6;
        let fb = beat_frequency_hz(slope, 5.0);
        assert!((fb - 5.559e6).abs() < 5e3, "fb {fb:.3e}");
    }

    #[test]
    fn range_resolution_for_3ghz_is_5cm() {
        assert!((range_resolution_m(3e9) - 0.04997).abs() < 1e-4);
    }

    #[test]
    fn path_phase_wraps_every_wavelength() {
        let f = 28e9;
        let lambda = SPEED_OF_LIGHT / f;
        let p1 = path_phase_rad(f, 1.0);
        let p2 = path_phase_rad(f, 1.0 + lambda);
        assert!(((p2 - p1) - 2.0 * PI).abs() < 1e-6);
    }

    #[test]
    fn aoa_phase_inverts_to_angle() {
        let f = 28e9;
        let d = 0.02; // 2 cm baseline
        for deg in [-40.0f64, -10.0, 0.0, 5.0, 35.0] {
            let ang = deg.to_radians();
            let phi = aoa_phase_difference_rad(f, d, ang);
            let rec = angle_from_phase_rad(f, d, phi).unwrap();
            assert!((rec - ang).abs() < 1e-12, "{deg}°");
        }
    }

    #[test]
    fn aoa_rejects_impossible_phase() {
        // λ/2 baseline: |Δφ| ≤ π is the valid region; 1.5π has no solution.
        let f = 28e9;
        let d = SPEED_OF_LIGHT / f / 2.0;
        assert!(angle_from_phase_rad(f, d, 1.5 * PI).is_none());
    }

    #[test]
    fn half_wave_baseline_is_unambiguous() {
        // With d = λ/2 the mapping covers ±90° with |Δφ| ≤ π.
        let f = 28e9;
        let d = SPEED_OF_LIGHT / f / 2.0;
        let phi = aoa_phase_difference_rad(f, d, PI / 2.0);
        assert!((phi - PI).abs() < 1e-9);
    }
}
