//! Antenna models: gain patterns as a function of azimuth angle and
//! frequency.
//!
//! The paper's evaluation is a 2-D (azimuth-plane) exercise — the node and
//! AP sit in the same horizontal plane and the protractor/laser ground truth
//! is planar — so antennas here expose a single-cut pattern
//! `gain_dbi(freq_hz, angle_rad)`. Angle is measured from the antenna's
//! boresight, positive counter-clockwise.
//!
//! Concrete implementations:
//! * [`Isotropic`] — 0 dBi reference.
//! * [`Horn`] — Gaussian-beam model of the Mi-Wave 20 dBi horn at the AP.
//! * [`UniformLinearArray`] — a generic phased array (AP alternative, §8).
//! * [`fsa::FrequencyScanningAntenna`] / [`fsa::DualPortFsa`] — the node's
//!   passive beam-steering structure (the paper's core hardware idea).
//! * [`vanatta::VanAttaArray`] — the retro-reflector used by the mmTag and
//!   Millimetro baselines.

pub mod fsa;
pub mod vanatta;

use mmwave_sigproc::complex::Complex;
use std::f64::consts::PI;

/// A reciprocal antenna described by its azimuth-cut gain pattern.
pub trait Antenna {
    /// Power gain in dBi toward `angle_rad` (from boresight) at `freq_hz`.
    fn gain_dbi(&self, freq_hz: f64, angle_rad: f64) -> f64;

    /// Linear power gain toward `angle_rad` at `freq_hz`.
    fn gain_linear(&self, freq_hz: f64, angle_rad: f64) -> f64 {
        10f64.powf(self.gain_dbi(freq_hz, angle_rad) / 10.0)
    }

    /// Peak gain over the azimuth cut at `freq_hz`, found numerically.
    fn peak_gain_dbi(&self, freq_hz: f64) -> f64 {
        let mut best = f64::MIN;
        for i in 0..=1800 {
            let a = -PI / 2.0 + PI * i as f64 / 1800.0;
            best = best.max(self.gain_dbi(freq_hz, a));
        }
        best
    }

    /// Boresight-relative angle of the pattern maximum at `freq_hz`.
    fn beam_direction_rad(&self, freq_hz: f64) -> f64 {
        let mut best = f64::MIN;
        let mut arg = 0.0;
        for i in 0..=3600 {
            let a = -PI / 2.0 + PI * i as f64 / 3600.0;
            let g = self.gain_dbi(freq_hz, a);
            if g > best {
                best = g;
                arg = a;
            }
        }
        arg
    }

    /// −3 dB beamwidth (radians) around the pattern maximum at `freq_hz`.
    fn beamwidth_rad(&self, freq_hz: f64) -> f64 {
        let peak_dir = self.beam_direction_rad(freq_hz);
        let peak = self.gain_dbi(freq_hz, peak_dir);
        let step = PI / 3600.0;
        let mut lo = peak_dir;
        while lo > -PI / 2.0 && self.gain_dbi(freq_hz, lo) > peak - 3.0 {
            lo -= step;
        }
        let mut hi = peak_dir;
        while hi < PI / 2.0 && self.gain_dbi(freq_hz, hi) > peak - 3.0 {
            hi += step;
        }
        hi - lo
    }
}

/// An ideal isotropic radiator (0 dBi everywhere).
#[derive(Debug, Clone, Copy, Default)]
pub struct Isotropic;

impl Antenna for Isotropic {
    fn gain_dbi(&self, _freq_hz: f64, _angle_rad: f64) -> f64 {
        0.0
    }
}

/// Gaussian-beam model of a standard-gain horn.
///
/// Defaults match the Mi-Wave 261(34)-20/595 used at the MilBack AP:
/// 20 dBi gain with ≈18° half-power beamwidth. Sidelobes are floored at
/// `sidelobe_dbi` rather than rolling off forever, matching real horns.
#[derive(Debug, Clone, Copy)]
pub struct Horn {
    /// Boresight gain, dBi.
    pub peak_gain_dbi: f64,
    /// Half-power (−3 dB) beamwidth, radians.
    pub hpbw_rad: f64,
    /// Far-sidelobe floor, dBi.
    pub sidelobe_dbi: f64,
}

impl Horn {
    /// The AP horn from the paper: 20 dBi, ≈18° HPBW, −10 dBi floor.
    pub fn miwave_20dbi() -> Self {
        Self {
            peak_gain_dbi: 20.0,
            hpbw_rad: 18f64.to_radians(),
            sidelobe_dbi: -10.0,
        }
    }
}

impl Antenna for Horn {
    fn gain_dbi(&self, _freq_hz: f64, angle_rad: f64) -> f64 {
        // Gaussian main lobe: −3 dB at ±HPBW/2.
        let x = angle_rad / (self.hpbw_rad / 2.0);
        (self.peak_gain_dbi - 3.0 * x * x).max(self.sidelobe_dbi)
    }
}

/// A uniform linear phased array with electronic steering — what §8 suggests
/// a production AP would use instead of mechanical steering.
#[derive(Debug, Clone, Copy)]
pub struct UniformLinearArray {
    /// Number of elements.
    pub elements: usize,
    /// Element spacing, meters.
    pub spacing_m: f64,
    /// Electronic steering angle, radians from broadside.
    pub steer_rad: f64,
    /// Per-element gain, dBi.
    pub element_gain_dbi: f64,
}

impl UniformLinearArray {
    /// Creates a λ/2-spaced array for `center_hz`, steered to broadside.
    ///
    /// # Panics
    /// Panics if `elements == 0`.
    pub fn half_wave(elements: usize, center_hz: f64) -> Self {
        assert!(elements > 0, "array needs at least one element");
        Self {
            elements,
            spacing_m: mmwave_sigproc::units::wavelength(center_hz) / 2.0,
            steer_rad: 0.0,
            element_gain_dbi: 5.0,
        }
    }

    /// Returns a copy steered to `angle_rad`.
    pub fn steered_to(mut self, angle_rad: f64) -> Self {
        self.steer_rad = angle_rad;
        self
    }

    /// Normalized array factor magnitude (0..=1) toward `angle_rad`.
    pub fn array_factor(&self, freq_hz: f64, angle_rad: f64) -> f64 {
        let k = 2.0 * PI * freq_hz / mmwave_sigproc::units::SPEED_OF_LIGHT;
        let psi = k * self.spacing_m * (angle_rad.sin() - self.steer_rad.sin());
        let n = self.elements as f64;
        let af: Complex = (0..self.elements)
            .map(|i| Complex::cis(psi * i as f64))
            .sum();
        af.norm() / n
    }
}

impl Antenna for UniformLinearArray {
    fn gain_dbi(&self, freq_hz: f64, angle_rad: f64) -> f64 {
        let af = self.array_factor(freq_hz, angle_rad);
        // Element pattern: cos(θ) power rolloff typical of a patch.
        let elem = angle_rad.cos().max(1e-6);
        let peak = self.element_gain_dbi + 10.0 * (self.elements as f64).log10();
        peak + 20.0 * af.log10() + 10.0 * elem.log10()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn isotropic_is_flat() {
        let a = Isotropic;
        assert_eq!(a.gain_dbi(28e9, 0.0), 0.0);
        assert_eq!(a.gain_dbi(60e9, 1.0), 0.0);
        assert!((a.gain_linear(28e9, 0.3) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn horn_boresight_and_hpbw() {
        let h = Horn::miwave_20dbi();
        assert!((h.gain_dbi(28e9, 0.0) - 20.0).abs() < 1e-12);
        // −3 dB at half the beamwidth.
        assert!((h.gain_dbi(28e9, 9f64.to_radians()) - 17.0).abs() < 1e-9);
        let bw = h.beamwidth_rad(28e9);
        assert!((bw - 18f64.to_radians()).abs() < 0.01);
    }

    #[test]
    fn horn_sidelobe_floor() {
        let h = Horn::miwave_20dbi();
        assert_eq!(h.gain_dbi(28e9, 1.2), -10.0);
    }

    #[test]
    fn ula_peak_at_steering_angle() {
        let a = UniformLinearArray::half_wave(16, 28e9).steered_to(0.3);
        let dir = a.beam_direction_rad(28e9);
        assert!((dir - 0.3).abs() < 0.01, "steered to {dir}");
    }

    #[test]
    fn ula_gain_scales_with_elements() {
        let a4 = UniformLinearArray::half_wave(4, 28e9);
        let a16 = UniformLinearArray::half_wave(16, 28e9);
        let g4 = a4.gain_dbi(28e9, 0.0);
        let g16 = a16.gain_dbi(28e9, 0.0);
        // 4× the elements = +6 dB.
        assert!((g16 - g4 - 6.02).abs() < 0.1);
    }

    #[test]
    fn ula_array_factor_unity_at_steer() {
        let a = UniformLinearArray::half_wave(8, 28e9).steered_to(-0.2);
        assert!((a.array_factor(28e9, -0.2) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn ula_has_nulls() {
        let a = UniformLinearArray::half_wave(8, 28e9);
        // First null of an 8-element λ/2 array: sinθ = 2/N → θ ≈ 14.48°.
        let null = (2.0 / 8.0f64).asin();
        assert!(a.array_factor(28e9, null) < 1e-9);
    }

    #[test]
    fn beamwidth_narrows_with_more_elements() {
        let a8 = UniformLinearArray::half_wave(8, 28e9);
        let a32 = UniformLinearArray::half_wave(32, 28e9);
        assert!(a32.beamwidth_rad(28e9) < a8.beamwidth_rad(28e9));
    }
}
