//! Frequency Scanning Antenna (FSA) — the passive beam-steering structure at
//! the heart of the MilBack node (§2, §4).
//!
//! # Physics
//!
//! An FSA is a series-fed traveling-wave array: the feed line meanders past
//! `N` radiating elements spaced `d` apart, inserting an electrical length
//! `L` (physical length × √ε_eff) between consecutive elements. A signal at
//! frequency `f` therefore arrives at element `n` with phase `−n·2πfL/c`.
//! The far-field array factor peaks where the per-element phase step is a
//! multiple of 2π:
//!
//! ```text
//! k₀·d·sin θ = 2πfL/c − 2πm   ⇒   sin θ(f) = (L − m·c/f) / d
//! ```
//!
//! so the beam direction is a deterministic, monotone function of frequency
//! — steering without phase shifters or any power draw. Feeding the same
//! structure from the opposite end (the dual-port extension, Fig 3) reverses
//! the phase progression and mirrors the mapping: `θ_B(f) = −θ_A(f)`.
//!
//! [`FsaDesign::for_band`] solves `d` and `L` so a chosen band sweeps a
//! chosen scan range; [`FsaDesign::milback_default`] reproduces the paper's
//! antenna (26.5–29.5 GHz → ≈±30°, ~12 dBi, ~10° beams — Fig 10).

use super::Antenna;
use mmwave_sigproc::complex::Complex;
use mmwave_sigproc::units::SPEED_OF_LIGHT;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::f64::consts::PI;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// Which feed port of a dual-port FSA is in use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FsaPort {
    /// Port A: beam scans from −θ_max (band start) to +θ_max (band end).
    A,
    /// Port B: the mirrored mapping, +θ_max down to −θ_max.
    B,
}

impl FsaPort {
    /// The opposite port.
    pub fn other(self) -> Self {
        match self {
            FsaPort::A => FsaPort::B,
            FsaPort::B => FsaPort::A,
        }
    }
}

/// Geometry and electrical parameters of a series-fed FSA.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FsaDesign {
    /// Number of radiating elements.
    pub elements: usize,
    /// Element spacing along the array, meters.
    pub spacing_m: f64,
    /// Effective electrical length of feed line between elements, meters.
    pub electrical_length_m: f64,
    /// Space-harmonic index `m` used by the design (integer branch of the
    /// mod-2π beam condition).
    pub harmonic: u32,
    /// Lower edge of the operating band, Hz.
    pub band_start_hz: f64,
    /// Upper edge of the operating band, Hz.
    pub band_end_hz: f64,
    /// Calibrated broadside peak gain, dBi (HFSS-equivalent calibration).
    pub peak_gain_dbi: f64,
    /// Element-pattern exponent: per-element power pattern `cos^q(θ)`,
    /// folding in feed mismatch toward the band edges.
    pub element_exponent: f64,
    /// Traveling-wave amplitude taper per element (≤ 1): the fraction of
    /// amplitude that continues down the line past each element.
    pub travel_amplitude: f64,
}

impl FsaDesign {
    /// Solves the array geometry so that sweeping `band_start..band_end`
    /// scans the beam from `−scan_max_rad` to `+scan_max_rad` (port A).
    ///
    /// `harmonic` picks the feed-line length branch: larger values give a
    /// longer meander and a faster scan per Hz (this is how the paper's
    /// design covers 60° with only 3 GHz where prior FSA work \[37\] needed
    /// 10 GHz for 48°).
    ///
    /// # Panics
    /// Panics on a degenerate band, scan range, or element count.
    pub fn for_band(
        band_start_hz: f64,
        band_end_hz: f64,
        scan_max_rad: f64,
        harmonic: u32,
        elements: usize,
    ) -> Self {
        assert!(
            band_end_hz > band_start_hz && band_start_hz > 0.0,
            "bad band"
        );
        assert!(
            scan_max_rad > 0.0 && scan_max_rad < PI / 2.0,
            "bad scan range"
        );
        assert!(harmonic >= 1, "harmonic must be ≥ 1");
        assert!(elements >= 2, "need at least two elements");
        let m = harmonic as f64;
        let c = SPEED_OF_LIGHT;
        // sinθ(f) = (L − m·c/f)/d with endpoints ∓sin(scan_max):
        let spacing_m = m * c * (band_end_hz - band_start_hz)
            / (band_start_hz * band_end_hz)
            / (2.0 * scan_max_rad.sin());
        let electrical_length_m = m * c / band_start_hz - scan_max_rad.sin() * spacing_m;
        Self {
            elements,
            spacing_m,
            electrical_length_m,
            harmonic,
            band_start_hz,
            band_end_hz,
            peak_gain_dbi: 13.0,
            element_exponent: 4.0,
            travel_amplitude: 0.93,
        }
    }

    /// The paper's antenna: 26.5–29.5 GHz sweeping ±30°, 8 elements,
    /// ≈13 dBi broadside, ≈10° beams.
    pub fn milback_default() -> Self {
        Self::for_band(26.5e9, 29.5e9, 30f64.to_radians(), 5, 8)
    }

    /// Center frequency of the operating band, Hz.
    pub fn center_hz(&self) -> f64 {
        (self.band_start_hz + self.band_end_hz) / 2.0
    }

    /// `sin θ` of the port-A beam at `freq_hz` (may exceed ±1 out of band).
    fn beam_sin(&self, freq_hz: f64) -> f64 {
        (self.electrical_length_m - self.harmonic as f64 * SPEED_OF_LIGHT / freq_hz)
            / self.spacing_m
    }

    /// Port-A beam direction (radians from broadside) at `freq_hz`.
    ///
    /// Returns `None` when the beam condition has no real solution (the
    /// frequency is far outside the scan design).
    pub fn beam_angle_rad(&self, port: FsaPort, freq_hz: f64) -> Option<f64> {
        let s = self.beam_sin(freq_hz);
        if s.abs() > 1.0 {
            return None;
        }
        let a = s.asin();
        Some(match port {
            FsaPort::A => a,
            FsaPort::B => -a,
        })
    }

    /// The frequency that points the given port's beam at `angle_rad`.
    ///
    /// Returns `None` if the required frequency falls outside the operating
    /// band — the passive structure simply cannot form that beam. This is
    /// the lookup the AP performs when it picks OAQFM carriers (§6.1).
    pub fn frequency_for_angle(&self, port: FsaPort, angle_rad: f64) -> Option<f64> {
        let target_sin = match port {
            FsaPort::A => angle_rad.sin(),
            FsaPort::B => -angle_rad.sin(),
        };
        let denom = self.electrical_length_m - self.spacing_m * target_sin;
        if denom <= 0.0 {
            return None;
        }
        let f = self.harmonic as f64 * SPEED_OF_LIGHT / denom;
        if f < self.band_start_hz - 1e6 || f > self.band_end_hz + 1e6 {
            return None;
        }
        // Clamp numerical overshoot at the band edges so callers always
        // receive an in-band frequency.
        Some(f.clamp(self.band_start_hz, self.band_end_hz))
    }

    /// Normalized array-factor magnitude (0..=1) for a wave at `freq_hz`
    /// arriving from / departing to `angle_rad`, as seen from `port`.
    pub fn array_factor(&self, port: FsaPort, freq_hz: f64, angle_rad: f64) -> f64 {
        let af_norm = AfCore::af_norm(self.travel_amplitude, self.elements);
        AfCore::new(self, port, freq_hz, af_norm).array_factor(angle_rad)
    }

    /// Power gain in dBi of the given port toward `angle_rad` at `freq_hz`.
    ///
    /// Combines the normalized array factor, a `cos^q` element pattern and
    /// the calibrated broadside peak gain. Evaluated at the beam angle of a
    /// given frequency this reproduces the Fig 10 pattern family.
    pub fn gain_dbi(&self, port: FsaPort, freq_hz: f64, angle_rad: f64) -> f64 {
        let af_norm = AfCore::af_norm(self.travel_amplitude, self.elements);
        AfCore::new(self, port, freq_hz, af_norm).gain_dbi(angle_rad)
    }

    /// Linear power gain of the given port.
    pub fn gain_linear(&self, port: FsaPort, freq_hz: f64, angle_rad: f64) -> f64 {
        let af_norm = AfCore::af_norm(self.travel_amplitude, self.elements);
        AfCore::new(self, port, freq_hz, af_norm).gain_linear(angle_rad)
    }

    /// Scan coverage in radians across the operating band for one port.
    pub fn scan_coverage_rad(&self) -> f64 {
        let a = self
            .beam_angle_rad(FsaPort::A, self.band_start_hz)
            .unwrap_or(0.0);
        let b = self
            .beam_angle_rad(FsaPort::A, self.band_end_hz)
            .unwrap_or(0.0);
        (b - a).abs()
    }

    /// The frequency at which both ports' beams coincide at broadside —
    /// where OAQFM degenerates to single-tone OOK (§6.2).
    pub fn normal_incidence_freq_hz(&self) -> f64 {
        self.harmonic as f64 * SPEED_OF_LIGHT / self.electrical_length_m
    }
}

/// A single-port FSA viewed through the [`Antenna`] trait (port A).
#[derive(Debug, Clone, Copy)]
pub struct FrequencyScanningAntenna {
    /// The underlying design.
    pub design: FsaDesign,
    /// Which port this view exposes.
    pub port: FsaPort,
}

impl Antenna for FrequencyScanningAntenna {
    fn gain_dbi(&self, freq_hz: f64, angle_rad: f64) -> f64 {
        self.design.gain_dbi(self.port, freq_hz, angle_rad)
    }
}

/// The dual-port FSA of the MilBack node, adding the port-to-port leakage
/// path that bounds downlink SINR (§9.4).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct DualPortFsa {
    /// Shared radiating structure.
    pub design: FsaDesign,
    /// Direct port-to-port coupling through the feed network, dB (negative).
    pub port_isolation_db: f64,
}

impl DualPortFsa {
    /// Builds the paper's dual-port FSA.
    ///
    /// The −12 dB effective port isolation models the *combination* of feed
    /// network leakage and the fabricated array's average sidelobe coupling
    /// (§9.4: "the beam created by each port has sidelobes which may be on
    /// the same direction as the main beam of the other port"). A uniform
    /// traveling-wave array's first sidelobes sit near −13 dB; this figure
    /// is what caps the measured downlink SINR near 23 dB at short range
    /// (Fig 14).
    pub fn milback_default() -> Self {
        Self {
            design: FsaDesign::milback_default(),
            port_isolation_db: -12.0,
        }
    }

    /// Gain of one port toward an angle (delegates to the design).
    pub fn gain_dbi(&self, port: FsaPort, freq_hz: f64, angle_rad: f64) -> f64 {
        self.design.gain_dbi(port, freq_hz, angle_rad)
    }

    /// Linear gain of one port toward an angle.
    pub fn gain_linear(&self, port: FsaPort, freq_hz: f64, angle_rad: f64) -> f64 {
        self.design.gain_linear(port, freq_hz, angle_rad)
    }

    /// Power (linear, relative to the incident wave × port gain convention)
    /// that a tone at `freq_hz` arriving from `angle_rad` couples into each
    /// port: `(into_a, into_b)`.
    ///
    /// Each port receives through its own pattern; additionally a fraction
    /// of the power captured by one port leaks into the other through the
    /// feed network (`port_isolation_db`). The pattern sidelobes plus this
    /// leakage are exactly the cross-port interference the paper cites for
    /// reporting downlink SINR instead of SNR.
    pub fn port_coupling_linear(&self, freq_hz: f64, angle_rad: f64) -> (f64, f64) {
        let ga = self.design.gain_linear(FsaPort::A, freq_hz, angle_rad);
        let gb = self.design.gain_linear(FsaPort::B, freq_hz, angle_rad);
        let leak = 10f64.powf(self.port_isolation_db / 10.0);
        (ga + gb * leak, gb + ga * leak)
    }

    /// The pair of frequencies `(f_A, f_B)` that point both beams at a node
    /// seen under incidence angle `angle_rad` — the OAQFM carrier choice.
    ///
    /// Returns `None` if either frequency falls outside the band.
    pub fn oaqfm_carriers(&self, angle_rad: f64) -> Option<(f64, f64)> {
        let fa = self.design.frequency_for_angle(FsaPort::A, angle_rad)?;
        let fb = self.design.frequency_for_angle(FsaPort::B, angle_rad)?;
        Some((fa, fb))
    }
}

/// The per-`(port, frequency)` parameter set of the FSA gain formulas and
/// the **single shared implementation** of the formulas themselves.
///
/// Both the unhoisted entry points ([`FsaDesign::array_factor`] /
/// [`FsaDesign::gain_dbi`] / [`FsaDesign::gain_linear`]) and the hoisted
/// evaluator ([`FsaFreqEval`]) funnel through these `#[inline(never)]`
/// methods, so the two paths execute the *same compiled code*. Keeping two
/// textually identical float pipelines instead lets the optimizer schedule
/// each copy differently — observed as 1-ULP drift between the paths at
/// `opt-level=3` — which would break the bit-exactness contract the
/// evaluator advertises (and the dense-grid tests assert).
#[derive(Debug, Clone, Copy)]
struct AfCore {
    /// `±k₀·d` with the port sign folded in: `ψ(θ) = psi_slope·sinθ − phi_line`.
    psi_slope: f64,
    /// Feed-line phase `2πfL/c` at this frequency.
    phi_line: f64,
    /// Per-element traveling-wave amplitude ratio `η`.
    eta: f64,
    elements: usize,
    /// Array-factor normalization `Σ ηⁿ`.
    af_norm: f64,
    peak_gain_dbi: f64,
    element_exponent: f64,
}

impl AfCore {
    fn new(design: &FsaDesign, port: FsaPort, freq_hz: f64, af_norm: f64) -> Self {
        let k0 = 2.0 * PI * freq_hz / SPEED_OF_LIGHT;
        let phi_line = 2.0 * PI * freq_hz * design.electrical_length_m / SPEED_OF_LIGHT;
        // IEEE-754: `(-k0)·d == -(k0·d)` exactly, so folding the port sign
        // into the slope is bit-exact for port B too.
        let psi_slope = match port {
            FsaPort::A => k0 * design.spacing_m,
            FsaPort::B => -k0 * design.spacing_m,
        };
        Self {
            psi_slope,
            phi_line,
            eta: design.travel_amplitude,
            elements: design.elements,
            af_norm,
            peak_gain_dbi: design.peak_gain_dbi,
            element_exponent: design.element_exponent,
        }
    }

    /// `Σ ηⁿ` — out of line for the same single-compilation reason.
    #[inline(never)]
    fn af_norm(eta: f64, elements: usize) -> f64 {
        (0..elements).map(|n| eta.powi(n as i32)).sum()
    }

    #[inline(never)]
    fn array_factor(&self, angle_rad: f64) -> f64 {
        let psi = self.psi_slope * angle_rad.sin() - self.phi_line;
        let mut af = Complex::new(0.0, 0.0);
        let mut amp = 1.0;
        for n in 0..self.elements {
            af += Complex::cis(psi * n as f64).scale(amp);
            amp *= self.eta;
        }
        af.norm() / self.af_norm
    }

    #[inline(never)]
    fn gain_dbi(&self, angle_rad: f64) -> f64 {
        if angle_rad.abs() >= PI / 2.0 {
            return -40.0; // behind the ground plane
        }
        let af = self.array_factor(angle_rad).max(1e-6);
        let elem = angle_rad.cos().powf(self.element_exponent).max(1e-6);
        self.peak_gain_dbi + 20.0 * af.log10() + 10.0 * elem.log10()
    }

    #[inline(never)]
    fn gain_linear(&self, angle_rad: f64) -> f64 {
        10f64.powf(self.gain_dbi(angle_rad) / 10.0)
    }
}

/// Per-`(port, frequency)` constants of the FSA gain evaluation, hoisted out
/// of the angle loop.
///
/// For a fixed `(port, freq)` the array factor is a function of `sin θ`
/// alone: `ψ(θ) = psi_slope·sin θ − phi_line` with `psi_slope = ±k₀·d` and
/// `phi_line = 2πfL/c`. Angle-grid sweeps (orientation traces, localization
/// echo synthesis, Fig 10 patterns) query thousands of angles per frequency,
/// so this struct precomputes the wavenumber product, the line phase, the
/// array-factor normalization `Σ ηⁿ` and the beam direction once per
/// `(port, freq)`.
///
/// Every query runs through the same compiled `AfCore` routines as the
/// unhoisted [`FsaDesign`] path, so results are **bit-exact** with it by
/// construction (asserted by tests over a dense grid).
#[derive(Debug, Clone)]
pub struct FsaFreqEval {
    port: FsaPort,
    core: AfCore,
    /// Cached `sin θ` of this port's beam at this frequency.
    beam_sin: f64,
    /// Cached beam direction (`None` when the beam condition has no real
    /// solution at this frequency).
    beam_angle: Option<f64>,
}

impl FsaFreqEval {
    fn new(design: &FsaDesign, port: FsaPort, freq_hz: f64, af_norm: f64) -> Self {
        Self {
            port,
            core: AfCore::new(design, port, freq_hz, af_norm),
            beam_sin: design.beam_sin(freq_hz),
            beam_angle: design.beam_angle_rad(port, freq_hz),
        }
    }

    /// The port this evaluation is bound to.
    pub fn port(&self) -> FsaPort {
        self.port
    }

    /// Cached `sin θ` of the beam condition at this frequency (may exceed ±1
    /// out of band).
    pub fn beam_sin(&self) -> f64 {
        self.beam_sin
    }

    /// Cached beam direction, bit-exact with [`FsaDesign::beam_angle_rad`].
    pub fn beam_angle_rad(&self) -> Option<f64> {
        self.beam_angle
    }

    /// Normalized array-factor magnitude, bit-exact with
    /// [`FsaDesign::array_factor`] at this `(port, freq)`.
    pub fn array_factor(&self, angle_rad: f64) -> f64 {
        self.core.array_factor(angle_rad)
    }

    /// Power gain in dBi, bit-exact with [`FsaDesign::gain_dbi`].
    pub fn gain_dbi(&self, angle_rad: f64) -> f64 {
        self.core.gain_dbi(angle_rad)
    }

    /// Linear power gain, bit-exact with [`FsaDesign::gain_linear`].
    pub fn gain_linear(&self, angle_rad: f64) -> f64 {
        self.core.gain_linear(angle_rad)
    }

    /// Batched [`FsaFreqEval::array_factor`] over an angle chunk.
    ///
    /// Every point runs the same compiled `AfCore` routine as the scalar
    /// call, so each output is bit-exact with the corresponding scalar
    /// query — the batch form only amortizes dispatch over the chunk.
    ///
    /// # Panics
    /// Panics when `out.len() != angles.len()`.
    pub fn array_factor_batch(&self, angles: &[f64], out: &mut [f64]) {
        assert_eq!(angles.len(), out.len(), "batch output length mismatch");
        for (o, &a) in out.iter_mut().zip(angles) {
            *o = self.core.array_factor(a);
        }
    }

    /// Batched [`FsaFreqEval::gain_dbi`] over an angle chunk (bit-exact per
    /// point with the scalar path).
    ///
    /// # Panics
    /// Panics when `out.len() != angles.len()`.
    pub fn gain_dbi_batch(&self, angles: &[f64], out: &mut [f64]) {
        assert_eq!(angles.len(), out.len(), "batch output length mismatch");
        for (o, &a) in out.iter_mut().zip(angles) {
            *o = self.core.gain_dbi(a);
        }
    }

    /// Batched [`FsaFreqEval::gain_linear`] over an angle chunk (bit-exact
    /// per point with the scalar path).
    ///
    /// # Panics
    /// Panics when `out.len() != angles.len()`.
    pub fn gain_linear_batch(&self, angles: &[f64], out: &mut [f64]) {
        assert_eq!(angles.len(), out.len(), "batch output length mismatch");
        for (o, &a) in out.iter_mut().zip(angles) {
            *o = self.core.gain_linear(a);
        }
    }
}

/// Memo key: `(port == B, freq bits, angle bits)`.
type GainKey = (bool, u64, u64);

/// Snapshot of an evaluator's cache and batch counters
/// ([`FsaGainEval::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FsaStats {
    /// Hits on the per-`(port, freq)` hoisted-evaluation cache.
    pub freq_hits: u64,
    /// Misses on the per-`(port, freq)` cache (each builds an
    /// [`FsaFreqEval`]).
    pub freq_misses: u64,
    /// Hits on the per-`(port, freq, angle)` value memos.
    pub gain_hits: u64,
    /// Misses on the value memos (each runs the `AfCore` pipeline once).
    pub gain_misses: u64,
    /// Points evaluated through the batch APIs, bypassing the value memos.
    pub batch_points: u64,
}

/// Relaxed atomic counters behind [`FsaStats`]. Monitoring only: the values
/// never feed back into any computation, so observing them cannot perturb
/// results.
#[derive(Default)]
struct FsaCounters {
    freq_hits: AtomicU64,
    freq_misses: AtomicU64,
    gain_hits: AtomicU64,
    gain_misses: AtomicU64,
    batch_points: AtomicU64,
}

impl FsaCounters {
    fn bump(counter: &AtomicU64, by: u64) {
        counter.fetch_add(by, Ordering::Relaxed);
    }
}

/// A memoizing FSA gain evaluator, bit-exact with the direct
/// [`FsaDesign`] / [`DualPortFsa`] query paths.
///
/// Two cache levels:
/// 1. [`FsaGainEval::at_freq`] hands out a shared [`FsaFreqEval`] with all
///    per-`(port, freq)` constants hoisted — for callers that sweep angles
///    at a fixed frequency.
/// 2. [`FsaGainEval::gain_dbi`] / [`FsaGainEval::gain_linear`] /
///    [`FsaGainEval::port_coupling_linear`] additionally memoize full values
///    keyed by `(port, freq bits, angle bits)` — the simulation hot paths
///    (localization echoes, per-symbol downlink coupling, orientation
///    traces) re-query identical triples tens to thousands of times.
///
/// Caches are interior-mutable behind [`RwLock`]s, so a shared evaluator is
/// usable from the threaded beat-synthesis and trial-runner workers.
/// Cloning yields an evaluator for the same design with cold caches.
pub struct FsaGainEval {
    design: FsaDesign,
    /// `10^(isolation/10)` when built from a [`DualPortFsa`]; `None` for a
    /// bare design (then [`FsaGainEval::port_coupling_linear`] panics).
    leak: Option<f64>,
    af_norm: f64,
    freq: RwLock<HashMap<(bool, u64), Arc<FsaFreqEval>>>,
    dbi: RwLock<HashMap<GainKey, f64>>,
    lin: RwLock<HashMap<GainKey, f64>>,
    counters: FsaCounters,
}

impl FsaGainEval {
    /// Builds an evaluator for a bare design (no port-coupling support).
    pub fn new(design: &FsaDesign) -> Self {
        Self::build(design, None)
    }

    /// Builds an evaluator for a dual-port FSA, hoisting the feed-leakage
    /// factor so [`FsaGainEval::port_coupling_linear`] matches
    /// [`DualPortFsa::port_coupling_linear`] bit-exactly.
    pub fn for_dual(fsa: &DualPortFsa) -> Self {
        Self::build(&fsa.design, Some(10f64.powf(fsa.port_isolation_db / 10.0)))
    }

    fn build(design: &FsaDesign, leak: Option<f64>) -> Self {
        // Hoisted once per evaluator; the unhoisted path recomputes this per
        // call through the same `AfCore::af_norm` symbol, so the bits match.
        let af_norm = AfCore::af_norm(design.travel_amplitude, design.elements);
        Self {
            design: *design,
            leak,
            af_norm,
            freq: RwLock::new(HashMap::new()),
            dbi: RwLock::new(HashMap::new()),
            lin: RwLock::new(HashMap::new()),
            counters: FsaCounters::default(),
        }
    }

    /// Snapshot of the cache hit/miss and batch-bypass counters since this
    /// evaluator was built. Counters are relaxed atomics updated on every
    /// query; they never influence any computed value.
    pub fn stats(&self) -> FsaStats {
        FsaStats {
            freq_hits: self.counters.freq_hits.load(Ordering::Relaxed),
            freq_misses: self.counters.freq_misses.load(Ordering::Relaxed),
            gain_hits: self.counters.gain_hits.load(Ordering::Relaxed),
            gain_misses: self.counters.gain_misses.load(Ordering::Relaxed),
            batch_points: self.counters.batch_points.load(Ordering::Relaxed),
        }
    }

    /// The design this evaluator answers for.
    pub fn design(&self) -> &FsaDesign {
        &self.design
    }

    /// The hoisted per-`(port, freq)` evaluation, cached across calls.
    pub fn at_freq(&self, port: FsaPort, freq_hz: f64) -> Arc<FsaFreqEval> {
        let key = (port == FsaPort::B, freq_hz.to_bits());
        if let Some(fe) = self.freq.read().expect("fsa freq cache poisoned").get(&key) {
            FsaCounters::bump(&self.counters.freq_hits, 1);
            return Arc::clone(fe);
        }
        FsaCounters::bump(&self.counters.freq_misses, 1);
        let fe = Arc::new(FsaFreqEval::new(&self.design, port, freq_hz, self.af_norm));
        let mut cache = self.freq.write().expect("fsa freq cache poisoned");
        Arc::clone(cache.entry(key).or_insert(fe))
    }

    fn memo(
        &self,
        cache: &RwLock<HashMap<GainKey, f64>>,
        key: GainKey,
        compute: impl FnOnce() -> f64,
    ) -> f64 {
        if let Some(&v) = cache.read().expect("fsa gain cache poisoned").get(&key) {
            FsaCounters::bump(&self.counters.gain_hits, 1);
            return v;
        }
        FsaCounters::bump(&self.counters.gain_misses, 1);
        // Racing computations produce the same bits, so last-write-wins
        // insertion keeps the cache deterministic.
        let v = compute();
        cache
            .write()
            .expect("fsa gain cache poisoned")
            .insert(key, v);
        v
    }

    /// Memoized [`FsaDesign::gain_dbi`] (bit-exact).
    pub fn gain_dbi(&self, port: FsaPort, freq_hz: f64, angle_rad: f64) -> f64 {
        let key = (port == FsaPort::B, freq_hz.to_bits(), angle_rad.to_bits());
        self.memo(&self.dbi, key, || {
            self.at_freq(port, freq_hz).gain_dbi(angle_rad)
        })
    }

    /// Memoized [`FsaDesign::gain_linear`] (bit-exact).
    pub fn gain_linear(&self, port: FsaPort, freq_hz: f64, angle_rad: f64) -> f64 {
        let key = (port == FsaPort::B, freq_hz.to_bits(), angle_rad.to_bits());
        self.memo(&self.lin, key, || {
            self.at_freq(port, freq_hz).gain_linear(angle_rad)
        })
    }

    /// Batched gain in dBi over an **angle chunk** at one `(port, freq)`.
    ///
    /// Hoists the per-frequency setup once for the whole chunk and bypasses
    /// the per-point value memo — on a cold grid the memo's lock/hash/insert
    /// traffic is pure overhead, and skipping it is where the batch path's
    /// speedup comes from. Each point is bit-exact with the scalar
    /// [`FsaGainEval::gain_dbi`] because it runs the same compiled
    /// `AfCore` routine. Pass `memoize = true` to also write the chunk
    /// back into the value memo (one write-lock acquisition), worth it only
    /// when the same exact points will be re-queried through the scalar
    /// path later.
    ///
    /// # Panics
    /// Panics when `out.len() != angles.len()`.
    pub fn gain_dbi_angles_into(
        &self,
        port: FsaPort,
        freq_hz: f64,
        angles: &[f64],
        out: &mut [f64],
        memoize: bool,
    ) {
        let fe = self.at_freq(port, freq_hz);
        fe.gain_dbi_batch(angles, out);
        FsaCounters::bump(&self.counters.batch_points, angles.len() as u64);
        if memoize {
            let mut cache = self.dbi.write().expect("fsa gain cache poisoned");
            for (&a, &v) in angles.iter().zip(out.iter()) {
                cache.insert((port == FsaPort::B, freq_hz.to_bits(), a.to_bits()), v);
            }
        }
    }

    /// Batched linear gain over an **angle chunk** at one `(port, freq)` —
    /// see [`FsaGainEval::gain_dbi_angles_into`] for the memo-bypass and
    /// bit-exactness contract.
    ///
    /// # Panics
    /// Panics when `out.len() != angles.len()`.
    pub fn gain_linear_angles_into(
        &self,
        port: FsaPort,
        freq_hz: f64,
        angles: &[f64],
        out: &mut [f64],
        memoize: bool,
    ) {
        let fe = self.at_freq(port, freq_hz);
        fe.gain_linear_batch(angles, out);
        FsaCounters::bump(&self.counters.batch_points, angles.len() as u64);
        if memoize {
            let mut cache = self.lin.write().expect("fsa gain cache poisoned");
            for (&a, &v) in angles.iter().zip(out.iter()) {
                cache.insert((port == FsaPort::B, freq_hz.to_bits(), a.to_bits()), v);
            }
        }
    }

    /// Batched gain in dBi over a **frequency chunk** at one angle — the
    /// cold-grid hot path of localization echo synthesis, where every chirp
    /// sample sits at a distinct instantaneous frequency and the memo never
    /// hits. Builds the hoisted core directly per frequency with no
    /// locking, hashing or shared-pointer traffic; bit-exact with the
    /// scalar path by construction (identical `AfCore` arguments and
    /// routines).
    ///
    /// # Panics
    /// Panics when `out.len() != freqs.len()`.
    pub fn gain_dbi_freqs_into(
        &self,
        port: FsaPort,
        freqs: &[f64],
        angle_rad: f64,
        out: &mut [f64],
        memoize: bool,
    ) {
        assert_eq!(freqs.len(), out.len(), "batch output length mismatch");
        for (o, &f) in out.iter_mut().zip(freqs) {
            *o = AfCore::new(&self.design, port, f, self.af_norm).gain_dbi(angle_rad);
        }
        FsaCounters::bump(&self.counters.batch_points, freqs.len() as u64);
        if memoize {
            let mut cache = self.dbi.write().expect("fsa gain cache poisoned");
            for (&f, &v) in freqs.iter().zip(out.iter()) {
                cache.insert((port == FsaPort::B, f.to_bits(), angle_rad.to_bits()), v);
            }
        }
    }

    /// Batched linear gain over a **frequency chunk** at one angle — see
    /// [`FsaGainEval::gain_dbi_freqs_into`] for the contract.
    ///
    /// # Panics
    /// Panics when `out.len() != freqs.len()`.
    pub fn gain_linear_freqs_into(
        &self,
        port: FsaPort,
        freqs: &[f64],
        angle_rad: f64,
        out: &mut [f64],
        memoize: bool,
    ) {
        assert_eq!(freqs.len(), out.len(), "batch output length mismatch");
        for (o, &f) in out.iter_mut().zip(freqs) {
            *o = AfCore::new(&self.design, port, f, self.af_norm).gain_linear(angle_rad);
        }
        FsaCounters::bump(&self.counters.batch_points, freqs.len() as u64);
        if memoize {
            let mut cache = self.lin.write().expect("fsa gain cache poisoned");
            for (&f, &v) in freqs.iter().zip(out.iter()) {
                cache.insert((port == FsaPort::B, f.to_bits(), angle_rad.to_bits()), v);
            }
        }
    }

    /// Batched [`FsaGainEval::port_coupling_linear`] over a frequency chunk
    /// at one incidence angle: fills `into_a`/`into_b` with the per-port
    /// coupled power factors, bit-exact per point with the scalar call.
    /// Bypasses the value memos like the other batch paths.
    ///
    /// # Panics
    /// Panics when the evaluator was built with [`FsaGainEval::new`]
    /// instead of [`FsaGainEval::for_dual`], or on length mismatch.
    pub fn port_coupling_linear_freqs_into(
        &self,
        freqs: &[f64],
        angle_rad: f64,
        into_a: &mut [f64],
        into_b: &mut [f64],
    ) {
        let leak = self
            .leak
            .expect("port_coupling_linear requires an evaluator built with FsaGainEval::for_dual");
        assert_eq!(freqs.len(), into_a.len(), "batch output length mismatch");
        assert_eq!(freqs.len(), into_b.len(), "batch output length mismatch");
        for i in 0..freqs.len() {
            let ga = AfCore::new(&self.design, FsaPort::A, freqs[i], self.af_norm)
                .gain_linear(angle_rad);
            let gb = AfCore::new(&self.design, FsaPort::B, freqs[i], self.af_norm)
                .gain_linear(angle_rad);
            into_a[i] = ga + gb * leak;
            into_b[i] = gb + ga * leak;
        }
        FsaCounters::bump(&self.counters.batch_points, 2 * freqs.len() as u64);
    }

    /// Memoized [`DualPortFsa::port_coupling_linear`] (bit-exact).
    ///
    /// # Panics
    /// Panics when the evaluator was built with [`FsaGainEval::new`] from a
    /// bare design instead of [`FsaGainEval::for_dual`].
    pub fn port_coupling_linear(&self, freq_hz: f64, angle_rad: f64) -> (f64, f64) {
        let leak = self
            .leak
            .expect("port_coupling_linear requires an evaluator built with FsaGainEval::for_dual");
        let ga = self.gain_linear(FsaPort::A, freq_hz, angle_rad);
        let gb = self.gain_linear(FsaPort::B, freq_hz, angle_rad);
        (ga + gb * leak, gb + ga * leak)
    }
}

impl Clone for FsaGainEval {
    /// Clones the design and leak factor; caches start cold and counters at
    /// zero (they are a transparent performance detail, not state).
    fn clone(&self) -> Self {
        Self::build(&self.design, self.leak)
    }
}

impl std::fmt::Debug for FsaGainEval {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FsaGainEval")
            .field("design", &self.design)
            .field("leak", &self.leak)
            .field(
                "cached_freqs",
                &self.freq.read().map(|m| m.len()).unwrap_or(0),
            )
            .field(
                "cached_gains",
                &self.lin.read().map(|m| m.len()).unwrap_or(0),
            )
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fsa() -> FsaDesign {
        FsaDesign::milback_default()
    }

    #[test]
    fn design_hits_scan_endpoints() {
        let d = fsa();
        let lo = d.beam_angle_rad(FsaPort::A, 26.5e9).unwrap();
        let hi = d.beam_angle_rad(FsaPort::A, 29.5e9).unwrap();
        assert!((lo + 30f64.to_radians()).abs() < 1e-9, "lo {lo}");
        assert!((hi - 30f64.to_radians()).abs() < 1e-9, "hi {hi}");
    }

    #[test]
    fn covers_sixty_degrees_with_three_ghz() {
        // The §2 claim: >60° azimuth with only 3 GHz of bandwidth.
        let d = fsa();
        assert!(d.scan_coverage_rad().to_degrees() >= 59.9);
        assert!((d.band_end_hz - d.band_start_hz - 3e9).abs() < 1.0);
    }

    #[test]
    fn ports_are_mirrored() {
        let d = fsa();
        for f in [26.8e9, 27.5e9, 28.6e9, 29.3e9] {
            let a = d.beam_angle_rad(FsaPort::A, f).unwrap();
            let b = d.beam_angle_rad(FsaPort::B, f).unwrap();
            assert!((a + b).abs() < 1e-12, "not mirrored at {f}");
        }
    }

    #[test]
    fn beam_angle_monotone_in_frequency() {
        let d = fsa();
        let mut prev = f64::MIN;
        for i in 0..=30 {
            let f = 26.5e9 + 3e9 * i as f64 / 30.0;
            let a = d.beam_angle_rad(FsaPort::A, f).unwrap();
            assert!(a > prev);
            prev = a;
        }
    }

    #[test]
    fn frequency_for_angle_inverts_beam_angle() {
        let d = fsa();
        for f in [26.6e9, 27.2e9, 28.0e9, 29.4e9] {
            let a = d.beam_angle_rad(FsaPort::A, f).unwrap();
            let f2 = d.frequency_for_angle(FsaPort::A, a).unwrap();
            assert!((f - f2).abs() < 1e3, "{f} → {f2}");
            let ab = d.beam_angle_rad(FsaPort::B, f).unwrap();
            let f3 = d.frequency_for_angle(FsaPort::B, ab).unwrap();
            assert!((f - f3).abs() < 1e3);
        }
    }

    #[test]
    fn frequency_for_angle_rejects_out_of_scan() {
        let d = fsa();
        assert!(d
            .frequency_for_angle(FsaPort::A, 45f64.to_radians())
            .is_none());
        assert!(d
            .frequency_for_angle(FsaPort::A, -45f64.to_radians())
            .is_none());
    }

    #[test]
    fn pattern_peaks_at_the_predicted_beam_angle() {
        let d = fsa();
        let view = FrequencyScanningAntenna {
            design: d,
            port: FsaPort::A,
        };
        for f in [27e9, 28e9, 29e9] {
            let predicted = d.beam_angle_rad(FsaPort::A, f).unwrap();
            let found = view.beam_direction_rad(f);
            // The cos^q element pattern pulls the composite peak slightly
            // toward broadside relative to the pure array-factor peak; allow
            // ~1° of skew, as a full-wave solver would also show.
            assert!(
                (predicted - found).abs() < 0.02,
                "at {f}: predicted {predicted}, found {found}"
            );
        }
    }

    #[test]
    fn peak_gain_in_fig10_range() {
        // Fig 10: beams with >10 dB gain across the band, 13–14 dBi center.
        let d = fsa();
        let view = FrequencyScanningAntenna {
            design: d,
            port: FsaPort::A,
        };
        for i in 0..=6 {
            let f = 26.5e9 + 0.5e9 * i as f64;
            let g = view.peak_gain_dbi(f);
            assert!(g > 10.0, "peak at {f} only {g:.1} dBi");
            assert!(g < 14.5, "peak at {f} too high: {g:.1} dBi");
        }
    }

    #[test]
    fn beamwidth_is_about_ten_degrees() {
        // §9.3: "the beam width of the node is around 10 degree".
        let d = fsa();
        let view = FrequencyScanningAntenna {
            design: d,
            port: FsaPort::A,
        };
        let bw = view.beamwidth_rad(28e9).to_degrees();
        assert!((8.0..14.0).contains(&bw), "beamwidth {bw:.1}°");
    }

    #[test]
    fn sidelobes_are_at_least_10_db_down() {
        let d = fsa();
        let f = 28e9;
        let beam = d.beam_angle_rad(FsaPort::A, f).unwrap();
        let peak = d.gain_dbi(FsaPort::A, f, beam);
        // Sample well away from the main lobe.
        for deg in [-50.0f64, -35.0, 25.0, 40.0] {
            let g = d.gain_dbi(FsaPort::A, f, deg.to_radians());
            assert!(
                peak - g > 10.0,
                "sidelobe at {deg}° only {:.1} dB down",
                peak - g
            );
        }
    }

    #[test]
    fn normal_incidence_frequency_aligns_both_ports() {
        let d = fsa();
        let f0 = d.normal_incidence_freq_hz();
        assert!(f0 > 26.5e9 && f0 < 29.5e9);
        let a = d.beam_angle_rad(FsaPort::A, f0).unwrap();
        let b = d.beam_angle_rad(FsaPort::B, f0).unwrap();
        assert!(a.abs() < 1e-9 && b.abs() < 1e-9);
    }

    #[test]
    fn oaqfm_carriers_straddle_the_normal_frequency() {
        let dp = DualPortFsa::milback_default();
        let (fa, fb) = dp.oaqfm_carriers(12f64.to_radians()).unwrap();
        let f0 = dp.design.normal_incidence_freq_hz();
        assert!(fa > f0 && fb < f0, "fa {fa}, fb {fb}, f0 {f0}");
        // Both beams indeed point at the node.
        let a = dp.design.beam_angle_rad(FsaPort::A, fa).unwrap();
        let b = dp.design.beam_angle_rad(FsaPort::B, fb).unwrap();
        assert!((a - 12f64.to_radians()).abs() < 1e-9);
        assert!((b - 12f64.to_radians()).abs() < 1e-9);
    }

    #[test]
    fn oaqfm_carriers_coincide_at_normal() {
        let dp = DualPortFsa::milback_default();
        let (fa, fb) = dp.oaqfm_carriers(0.0).unwrap();
        assert!((fa - fb).abs() < 1e3, "normal incidence must degenerate");
    }

    #[test]
    fn cross_port_coupling_is_weak_off_normal() {
        // A tone on port A's carrier should couple ≥10 dB more into port A
        // than into port B when the node sits 12° off normal (the effective
        // sidelobe/feed isolation that bounds Fig 14's SINR near 23 dB:
        // the square-law detector doubles the dB ratio).
        let dp = DualPortFsa::milback_default();
        let ang = 12f64.to_radians();
        let (fa, _fb) = dp.oaqfm_carriers(ang).unwrap();
        let (into_a, into_b) = dp.port_coupling_linear(fa, ang);
        let ratio_db = 10.0 * (into_a / into_b).log10();
        assert!(ratio_db > 10.0, "port selectivity only {ratio_db:.1} dB");
        assert!(
            ratio_db < 14.0,
            "selectivity {ratio_db:.1} dB too ideal for Fig 14"
        );
    }

    #[test]
    fn coupling_becomes_symmetric_at_normal() {
        let dp = DualPortFsa::milback_default();
        let f0 = dp.design.normal_incidence_freq_hz();
        let (ia, ib) = dp.port_coupling_linear(f0, 0.0);
        assert!((ia - ib).abs() / ia < 1e-9);
    }

    #[test]
    fn out_of_band_beam_angle_is_none_when_unphysical() {
        let d = fsa();
        // Far below band the required sinθ exceeds 1.
        assert!(d.beam_angle_rad(FsaPort::A, 20e9).is_none());
    }

    #[test]
    fn gain_behind_ground_plane_is_floor() {
        let d = fsa();
        assert_eq!(d.gain_dbi(FsaPort::A, 28e9, 2.0), -40.0);
    }

    #[test]
    #[should_panic(expected = "bad band")]
    fn design_rejects_inverted_band() {
        FsaDesign::for_band(29e9, 26e9, 0.5, 5, 8);
    }

    #[test]
    fn higher_harmonic_means_faster_scan() {
        // Same band, same scan target, but check the electrical length grows
        // with the harmonic (longer meander = more dispersion).
        let d5 = FsaDesign::for_band(26.5e9, 29.5e9, 0.5, 5, 8);
        let d8 = FsaDesign::for_band(26.5e9, 29.5e9, 0.5, 8, 8);
        assert!(d8.electrical_length_m > d5.electrical_length_m);
    }

    /// Dense grid shared by the evaluator bit-exactness tests: both ports,
    /// in-band and out-of-band frequencies, angles spanning past ±90°.
    fn dense_grid() -> (Vec<FsaPort>, Vec<f64>, Vec<f64>) {
        let ports = vec![FsaPort::A, FsaPort::B];
        let freqs: Vec<f64> = (0..=16).map(|i| 26.0e9 + 0.25e9 * i as f64).collect();
        let angles: Vec<f64> = (-70..=70)
            .map(|i| (i as f64 * 1.5f64).to_radians())
            .collect();
        (ports, freqs, angles)
    }

    #[test]
    fn gain_eval_matches_design_bit_exactly_on_dense_grid() {
        let d = fsa();
        let eval = FsaGainEval::new(&d);
        let (ports, freqs, angles) = dense_grid();
        for &port in &ports {
            for &f in &freqs {
                let fe = eval.at_freq(port, f);
                for &a in &angles {
                    // `assert_eq!` on f64: bit-exactness is the contract.
                    assert_eq!(
                        fe.array_factor(a),
                        d.array_factor(port, f, a),
                        "af {port:?} {f} {a}"
                    );
                    assert_eq!(
                        fe.gain_dbi(a),
                        d.gain_dbi(port, f, a),
                        "dbi {port:?} {f} {a}"
                    );
                    assert_eq!(
                        fe.gain_linear(a),
                        d.gain_linear(port, f, a),
                        "lin {port:?} {f} {a}"
                    );
                    assert_eq!(eval.gain_dbi(port, f, a), d.gain_dbi(port, f, a));
                    assert_eq!(eval.gain_linear(port, f, a), d.gain_linear(port, f, a));
                }
            }
        }
    }

    #[test]
    fn gain_eval_caches_beam_data_bit_exactly() {
        let d = fsa();
        let eval = FsaGainEval::new(&d);
        let (ports, freqs, _) = dense_grid();
        for &port in &ports {
            for &f in &freqs {
                let fe = eval.at_freq(port, f);
                assert_eq!(fe.beam_angle_rad(), d.beam_angle_rad(port, f));
                if let Some(a) = fe.beam_angle_rad() {
                    assert_eq!(fe.gain_dbi(a), d.gain_dbi(port, f, a));
                }
            }
        }
        // Out-of-band: beam condition has no solution, cached as None.
        assert_eq!(eval.at_freq(FsaPort::A, 20e9).beam_angle_rad(), None);
    }

    #[test]
    fn gain_eval_memo_hits_return_identical_bits() {
        let d = fsa();
        let eval = FsaGainEval::new(&d);
        let (f, a) = (27.8e9, 0.21);
        let cold = eval.gain_linear(FsaPort::B, f, a);
        for _ in 0..3 {
            assert_eq!(eval.gain_linear(FsaPort::B, f, a), cold);
        }
        assert_eq!(cold, d.gain_linear(FsaPort::B, f, a));
        // The at_freq cache hands back the same shared evaluation.
        let fe1 = eval.at_freq(FsaPort::B, f);
        let fe2 = eval.at_freq(FsaPort::B, f);
        assert!(Arc::ptr_eq(&fe1, &fe2));
    }

    #[test]
    fn dual_port_eval_matches_port_coupling_bit_exactly() {
        let dp = DualPortFsa::milback_default();
        let eval = FsaGainEval::for_dual(&dp);
        let (_, freqs, angles) = dense_grid();
        for &f in &freqs {
            for &a in &angles {
                assert_eq!(
                    eval.port_coupling_linear(f, a),
                    dp.port_coupling_linear(f, a)
                );
            }
        }
    }

    #[test]
    fn gain_eval_ground_plane_floor_matches() {
        let d = fsa();
        let eval = FsaGainEval::new(&d);
        assert_eq!(eval.gain_dbi(FsaPort::A, 28e9, 2.0), -40.0);
        assert_eq!(eval.at_freq(FsaPort::A, 28e9).gain_dbi(-2.0), -40.0);
    }

    #[test]
    fn gain_eval_clone_is_equivalent_with_cold_caches() {
        let dp = DualPortFsa::milback_default();
        let eval = FsaGainEval::for_dual(&dp);
        let _ = eval.gain_linear(FsaPort::A, 28e9, 0.1); // warm the original
        let clone = eval.clone();
        assert_eq!(
            clone.port_coupling_linear(28e9, 0.1),
            eval.port_coupling_linear(28e9, 0.1)
        );
    }

    #[test]
    #[should_panic(expected = "for_dual")]
    fn bare_eval_rejects_port_coupling() {
        FsaGainEval::new(&fsa()).port_coupling_linear(28e9, 0.0);
    }

    #[test]
    fn angle_batch_matches_scalar_bit_exactly() {
        let d = fsa();
        let eval = FsaGainEval::new(&d);
        let (ports, freqs, angles) = dense_grid();
        let mut dbi = vec![0.0; angles.len()];
        let mut lin = vec![0.0; angles.len()];
        let mut af = vec![0.0; angles.len()];
        for &port in &ports {
            for &f in &freqs {
                eval.gain_dbi_angles_into(port, f, &angles, &mut dbi, false);
                eval.gain_linear_angles_into(port, f, &angles, &mut lin, false);
                eval.at_freq(port, f).array_factor_batch(&angles, &mut af);
                for (i, &a) in angles.iter().enumerate() {
                    assert_eq!(dbi[i].to_bits(), d.gain_dbi(port, f, a).to_bits());
                    assert_eq!(lin[i].to_bits(), d.gain_linear(port, f, a).to_bits());
                    assert_eq!(af[i].to_bits(), d.array_factor(port, f, a).to_bits());
                }
            }
        }
    }

    #[test]
    fn freq_batch_matches_scalar_bit_exactly() {
        let d = fsa();
        let eval = FsaGainEval::new(&d);
        let (ports, freqs, angles) = dense_grid();
        let mut dbi = vec![0.0; freqs.len()];
        let mut lin = vec![0.0; freqs.len()];
        for &port in &ports {
            for &a in &angles {
                eval.gain_dbi_freqs_into(port, &freqs, a, &mut dbi, false);
                eval.gain_linear_freqs_into(port, &freqs, a, &mut lin, false);
                for (i, &f) in freqs.iter().enumerate() {
                    assert_eq!(dbi[i].to_bits(), d.gain_dbi(port, f, a).to_bits());
                    assert_eq!(lin[i].to_bits(), d.gain_linear(port, f, a).to_bits());
                }
            }
        }
    }

    #[test]
    fn coupling_freq_batch_matches_scalar_bit_exactly() {
        let dp = DualPortFsa::milback_default();
        let eval = FsaGainEval::for_dual(&dp);
        let (_, freqs, angles) = dense_grid();
        let mut ia = vec![0.0; freqs.len()];
        let mut ib = vec![0.0; freqs.len()];
        for &a in &angles {
            eval.port_coupling_linear_freqs_into(&freqs, a, &mut ia, &mut ib);
            for (i, &f) in freqs.iter().enumerate() {
                let (sa, sb) = dp.port_coupling_linear(f, a);
                assert_eq!(ia[i].to_bits(), sa.to_bits());
                assert_eq!(ib[i].to_bits(), sb.to_bits());
            }
        }
    }

    #[test]
    fn batch_memo_writeback_seeds_scalar_hits() {
        let d = fsa();
        let eval = FsaGainEval::new(&d);
        let angles: Vec<f64> = (-10..=10).map(|i| i as f64 * 0.05).collect();
        let mut out = vec![0.0; angles.len()];
        eval.gain_linear_angles_into(FsaPort::A, 28e9, &angles, &mut out, true);
        let before = eval.stats();
        for (i, &a) in angles.iter().enumerate() {
            // Every scalar re-query must hit the memo seeded by the batch.
            assert_eq!(eval.gain_linear(FsaPort::A, 28e9, a), out[i]);
        }
        let after = eval.stats();
        assert_eq!(after.gain_hits - before.gain_hits, angles.len() as u64);
        assert_eq!(after.gain_misses, before.gain_misses);
    }

    #[test]
    fn stats_track_hits_misses_and_batch_points() {
        let d = fsa();
        let eval = FsaGainEval::new(&d);
        assert_eq!(eval.stats(), FsaStats::default());
        let _ = eval.gain_dbi(FsaPort::A, 28e9, 0.1); // miss
        let _ = eval.gain_dbi(FsaPort::A, 28e9, 0.1); // hit
        let s = eval.stats();
        assert_eq!(s.gain_misses, 1);
        assert_eq!(s.gain_hits, 1);
        assert_eq!(s.freq_misses, 1);
        let mut out = [0.0; 4];
        eval.gain_dbi_freqs_into(FsaPort::B, &[27e9, 28e9, 29e9, 30e9], 0.0, &mut out, false);
        assert_eq!(eval.stats().batch_points, 4);
        // Clones start with fresh counters.
        assert_eq!(eval.clone().stats(), FsaStats::default());
    }
}
