//! Van Atta retro-reflective arrays — the beam-alignment solution used by
//! the mmTag \[35\] and Millimetro \[45\] baselines (§4).
//!
//! A Van Atta array connects antenna pairs symmetric about the array center
//! with equal-length transmission lines. A plane wave arriving from angle θ
//! is re-radiated coherently back toward θ regardless of θ (within the
//! element pattern), with the full array gain in both the receive and the
//! re-transmit direction. This makes it ideal for uplink-only backscatter —
//! but, as §4 explains, the structure has **no signal port**: the energy
//! lives inside the pair-connecting traces, so there is nowhere to attach a
//! receiver, which is why MilBack had to move to an FSA to get a downlink.

use serde::{Deserialize, Serialize};
use std::f64::consts::PI;

/// Modulation a baseline tag applies to the retro-reflected wave by
/// switching elements in the pair-connecting lines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RetroModulation {
    /// On-off: toggling the lines between matched termination (absorb) and
    /// through (reflect) — amplitude modulation.
    OnOff,
    /// Binary phase-shift keying: inserting a λ/2 line section flips the
    /// reflected phase (mmTag-style PSK via switched delay lines).
    Bpsk,
    /// Quadrature PSK via two switched line sections (0/90/180/270°).
    Qpsk,
}

impl RetroModulation {
    /// Bits carried per backscatter symbol.
    pub fn bits_per_symbol(self) -> u32 {
        match self {
            RetroModulation::OnOff | RetroModulation::Bpsk => 1,
            RetroModulation::Qpsk => 2,
        }
    }

    /// The complex reflection coefficients of each modulation state.
    pub fn states(self) -> Vec<mmwave_sigproc::Complex> {
        use mmwave_sigproc::Complex;
        match self {
            RetroModulation::OnOff => vec![Complex::real(0.0), Complex::real(1.0)],
            RetroModulation::Bpsk => vec![Complex::real(-1.0), Complex::real(1.0)],
            RetroModulation::Qpsk => vec![
                Complex::real(1.0),
                Complex::new(0.0, 1.0),
                Complex::real(-1.0),
                Complex::new(0.0, -1.0),
            ],
        }
    }

    /// Minimum distance between constellation points (unit-energy states),
    /// which sets relative BER performance: BPSK (2.0) > QPSK (√2) > OOK (1).
    pub fn min_distance(self) -> f64 {
        match self {
            RetroModulation::OnOff => 1.0,
            RetroModulation::Bpsk => 2.0,
            RetroModulation::Qpsk => std::f64::consts::SQRT_2,
        }
    }
}

/// A Van Atta retro-reflector array.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VanAttaArray {
    /// Number of elements (must be even — elements are paired).
    pub elements: usize,
    /// Per-element boresight gain, dBi.
    pub element_gain_dbi: f64,
    /// Element-pattern exponent (`cos^q` power pattern).
    pub element_exponent: f64,
    /// Ohmic / trace loss of the pair-connecting lines, dB (positive).
    pub trace_loss_db: f64,
}

impl VanAttaArray {
    /// An 8-element mmTag-class array.
    ///
    /// # Panics
    /// Panics if `elements` is zero or odd.
    pub fn new(elements: usize) -> Self {
        assert!(
            elements >= 2 && elements.is_multiple_of(2),
            "Van Atta pairs need an even count"
        );
        Self {
            elements,
            element_gain_dbi: 5.0,
            element_exponent: 1.0,
            trace_loss_db: 1.0,
        }
    }

    /// Per-element linear gain toward incidence angle θ.
    fn element_gain_linear(&self, angle_rad: f64) -> f64 {
        if angle_rad.abs() >= PI / 2.0 {
            return 1e-4;
        }
        10f64.powf(self.element_gain_dbi / 10.0)
            * angle_rad.cos().powf(self.element_exponent).max(1e-6)
    }

    /// The retro-directive round-trip gain product `G_rx·G_tx` (linear) for
    /// a monostatic interrogator at incidence `angle_rad`.
    ///
    /// For an N-element Van Atta the received wave is re-radiated coherently
    /// back toward its arrival direction, so the product is
    /// `(N · g_elem(θ))²` less trace losses — *independent of θ* within the
    /// element pattern. That flatness over angle is the property that lets
    /// mmTag/Millimetro skip beam alignment entirely.
    pub fn retro_gain_product_linear(&self, angle_rad: f64) -> f64 {
        let g = self.elements as f64 * self.element_gain_linear(angle_rad);
        g * g * 10f64.powf(-self.trace_loss_db / 10.0)
    }

    /// Round-trip retro gain product in dB.
    pub fn retro_gain_product_db(&self, angle_rad: f64) -> f64 {
        10.0 * self.retro_gain_product_linear(angle_rad).log10()
    }

    /// Monostatic radar cross-section (m²) presented to an interrogator at
    /// `freq_hz` / `angle_rad`: `σ = G_rx·G_tx·λ²/4π`.
    pub fn rcs_m2(&self, freq_hz: f64, angle_rad: f64) -> f64 {
        let lambda = mmwave_sigproc::units::wavelength(freq_hz);
        self.retro_gain_product_linear(angle_rad) * lambda * lambda / (4.0 * PI)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retro_gain_is_flat_across_wide_angles() {
        // The defining Van Atta property: within the element pattern the
        // round-trip gain barely changes with incidence angle.
        let v = VanAttaArray::new(8);
        let g0 = v.retro_gain_product_db(0.0);
        let g30 = v.retro_gain_product_db(30f64.to_radians());
        let g45 = v.retro_gain_product_db(45f64.to_radians());
        assert!(g0 - g30 < 1.5, "30° droop {:.2} dB", g0 - g30);
        assert!(g0 - g45 < 3.5, "45° droop {:.2} dB", g0 - g45);
    }

    #[test]
    fn retro_gain_scales_with_n_squared() {
        let v4 = VanAttaArray::new(4);
        let v8 = VanAttaArray::new(8);
        let diff = v8.retro_gain_product_db(0.0) - v4.retro_gain_product_db(0.0);
        // N doubling → (N²)² in product? No: product is (N·g)², so 2× N
        // gives +6 dB... in *each* direction → +12? (2N·g)²/(N·g)² = 4 → 6 dB.
        assert!((diff - 6.02).abs() < 0.1, "diff {diff}");
    }

    #[test]
    fn boresight_product_reference_value() {
        // 8 elements × 5 dBi: G_one_way = 10log10(8) + 5 = 14 dBi;
        // product = 28 dB − 1 dB trace loss = 27 dB.
        let v = VanAttaArray::new(8);
        assert!((v.retro_gain_product_db(0.0) - 27.06).abs() < 0.1);
    }

    #[test]
    fn rcs_reference_value() {
        let v = VanAttaArray::new(8);
        let rcs = v.rcs_m2(28e9, 0.0);
        // σ = 10^2.706 · (0.010707)² / 4π ≈ 4.6e-3 m².
        assert!((rcs - 4.63e-3).abs() / 4.63e-3 < 0.05, "rcs {rcs:.3e}");
    }

    #[test]
    fn behind_ground_plane_is_tiny() {
        let v = VanAttaArray::new(8);
        assert!(v.retro_gain_product_db(1.6) < v.retro_gain_product_db(0.0) - 30.0);
    }

    #[test]
    #[should_panic(expected = "even count")]
    fn rejects_odd_element_count() {
        VanAttaArray::new(7);
    }

    #[test]
    fn modulation_properties() {
        assert_eq!(RetroModulation::OnOff.bits_per_symbol(), 1);
        assert_eq!(RetroModulation::Qpsk.bits_per_symbol(), 2);
        assert_eq!(RetroModulation::Bpsk.states().len(), 2);
        assert_eq!(RetroModulation::Qpsk.states().len(), 4);
        assert!(RetroModulation::Bpsk.min_distance() > RetroModulation::Qpsk.min_distance());
        assert!(RetroModulation::Qpsk.min_distance() > RetroModulation::OnOff.min_distance());
    }

    #[test]
    fn qpsk_states_are_unit_energy() {
        for s in RetroModulation::Qpsk.states() {
            assert!((s.norm() - 1.0).abs() < 1e-12);
        }
    }
}
