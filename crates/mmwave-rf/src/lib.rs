//! # mmwave-rf
//!
//! RF substrate for the MilBack mmWave backscatter stack: antenna models
//! (including the dual-port Frequency Scanning Antenna the node is built
//! around and the Van Atta arrays of the baselines), behavioral models of
//! the prototype's RF components, free-space propagation, receiver noise,
//! and the channel/beat-signal synthesis the FMCW pipeline digests.
//!
//! The paper's physical artifacts (HFSS-simulated FSA, Keysight instruments,
//! evaluation-board components) are replaced here by physics-level
//! behavioral models; see DESIGN.md's substitution table for the mapping
//! and the calibration anchors.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod antenna;
pub mod channel;
pub mod components;
pub mod noise;
pub mod propagation;

pub use antenna::fsa::{DualPortFsa, FsaDesign, FsaPort};
pub use antenna::vanatta::VanAttaArray;
pub use antenna::{Antenna, Horn, Isotropic, UniformLinearArray};
pub use channel::{ApFrontend, Echo, NodePose, Reflector, Vec2};
pub use components::{Adc, Amplifier, EnvelopeDetector, Mixer, SpdtSwitch};
