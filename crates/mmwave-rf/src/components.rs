//! Behavioral models of the off-the-shelf RF components in the MilBack
//! prototype (§8): power amplifier, LNA, mixer, band-pass filter, SPDT
//! switch, envelope detector and the MCU's ADC.
//!
//! Each model captures only the behaviour the system actually depends on —
//! gain/loss, noise contribution, compression, switching speed, detector
//! dynamics and quantization — with datasheet-derived defaults.

use mmwave_sigproc::filter::RcFilter;
use mmwave_sigproc::units::{db_to_lin, dbm_to_watts, watts_to_dbm};
use serde::{Deserialize, Serialize};

/// A gain stage (PA or LNA) with noise figure and output compression.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Amplifier {
    /// Small-signal power gain, dB.
    pub gain_db: f64,
    /// Noise figure, dB.
    pub noise_figure_db: f64,
    /// Output 1 dB compression point, dBm.
    pub output_p1db_dbm: f64,
}

impl Amplifier {
    /// ADPA7005-class mmWave power amplifier (paper's TX PA).
    pub fn adpa7005_pa() -> Self {
        Self {
            gain_db: 21.0,
            noise_figure_db: 6.0,
            output_p1db_dbm: 28.0,
        }
    }

    /// ADL8142-class low-noise amplifier (paper's RX LNA).
    pub fn adl8142_lna() -> Self {
        Self {
            gain_db: 18.0,
            noise_figure_db: 3.0,
            output_p1db_dbm: 15.0,
        }
    }

    /// Output power (dBm) for a given input power (dBm), with soft
    /// saturation above the compression point.
    pub fn amplify_dbm(&self, input_dbm: f64) -> f64 {
        let linear_out = input_dbm + self.gain_db;
        if linear_out <= self.output_p1db_dbm - 10.0 {
            return linear_out;
        }
        // Rapp-style soft limiter (smoothness p = 2), saturation ≈ P1dB + 2.
        let sat = dbm_to_watts(self.output_p1db_dbm + 2.0);
        let pin = dbm_to_watts(linear_out);
        watts_to_dbm(pin / (1.0 + (pin / sat).powi(2)).sqrt())
    }
}

/// A downconversion mixer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Mixer {
    /// Conversion loss, dB (positive number).
    pub conversion_loss_db: f64,
    /// LO-to-RF leakage, dB (negative; sets self-interference floor).
    pub lo_leakage_db: f64,
}

impl Mixer {
    /// ZMDB-44H-K+-class double-balanced mixer.
    pub fn zmdb44h() -> Self {
        Self {
            conversion_loss_db: 7.0,
            lo_leakage_db: -30.0,
        }
    }

    /// Output power of the downconverted product for an RF input power.
    pub fn convert_dbm(&self, rf_dbm: f64) -> f64 {
        rf_dbm - self.conversion_loss_db
    }
}

/// The node's SPDT RF switch (ADRF5020-class).
///
/// The switch connects an FSA port either to the ground plane (reflective
/// mode) or to the envelope detector (absorptive mode). Its toggle-rate
/// limit is what caps MilBack's uplink at 160 Mbps (§9.5), and its dynamic
/// energy dominates the node's uplink power (§9.6).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpdtSwitch {
    /// Insertion loss through the selected path, dB (positive).
    pub insertion_loss_db: f64,
    /// Isolation to the unselected path, dB (positive).
    pub isolation_db: f64,
    /// Maximum toggle rate, Hz (reciprocal of settling time).
    pub max_toggle_hz: f64,
    /// Static bias power, watts.
    pub static_power_w: f64,
    /// Energy per state transition, joules.
    pub toggle_energy_j: f64,
}

impl SpdtSwitch {
    /// ADRF5020-class defaults. The energy/static terms are calibrated so
    /// that two switches plus two detectors reproduce the paper's node
    /// power: 18 mW at the 10 kHz localization/downlink toggle rates and
    /// 32 mW at uplink rates (§9.6).
    pub fn adrf5020() -> Self {
        Self {
            insertion_loss_db: 0.8,
            isolation_db: 38.0,
            max_toggle_hz: 160e6,
            static_power_w: 7.4e-3,
            toggle_energy_j: 4.375e-11,
        }
    }

    /// Amplitude reflection coefficient of a port in reflective mode
    /// (short-circuit behind one insertion loss each way).
    pub fn reflective_gamma(&self) -> f64 {
        db_to_lin(-2.0 * self.insertion_loss_db).sqrt()
    }

    /// Residual amplitude reflection in absorptive mode (detector is
    /// matched, but not perfectly — modeled as 15 dB return loss).
    pub fn absorptive_gamma(&self) -> f64 {
        db_to_lin(-15.0).sqrt()
    }

    /// Whether the switch can sustain `rate_hz` toggles per second.
    pub fn supports_rate(&self, rate_hz: f64) -> bool {
        rate_hz <= self.max_toggle_hz
    }

    /// Average power when toggling at `rate_hz` (static + dynamic).
    ///
    /// # Panics
    /// Panics if asked for a rate beyond `max_toggle_hz`.
    pub fn power_at_rate_w(&self, rate_hz: f64) -> f64 {
        assert!(
            self.supports_rate(rate_hz),
            "switch cannot toggle at {rate_hz} Hz (max {})",
            self.max_toggle_hz
        );
        self.static_power_w + self.toggle_energy_j * rate_hz
    }
}

/// Square-law envelope (power) detector, ADL6010-class.
///
/// Output voltage is proportional to input RF power in its square-law
/// region, then compresses; the output stage is a first-order RC whose rise
/// time caps the downlink symbol rate at ~36 Mbps (§9.4). Input is 50 Ω
/// matched — which is exactly why connecting it to an FSA port makes the
/// port absorptive (§4).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnvelopeDetector {
    /// Responsivity in volts per watt of RF input (square-law region).
    pub responsivity_v_per_w: f64,
    /// Input power at which the response starts compressing, watts.
    pub compression_w: f64,
    /// 10–90% output rise time, seconds.
    pub rise_time_s: f64,
    /// Output-referred noise voltage density, V/√Hz.
    pub noise_v_per_rthz: f64,
    /// Input impedance, ohms.
    pub input_ohms: f64,
    /// Bias power, watts.
    pub bias_power_w: f64,
}

impl EnvelopeDetector {
    /// ADL6010-class defaults (noise density calibrated so the Fig 14
    /// downlink SINR hits ≈12 dB at 10 m at the 18 Msym/s decision
    /// bandwidth).
    pub fn adl6010() -> Self {
        Self {
            responsivity_v_per_w: 1500.0,
            compression_w: 5e-3,
            rise_time_s: 12e-9,
            noise_v_per_rthz: 2.2e-7,
            input_ohms: 50.0,
            bias_power_w: 1.6e-3,
        }
    }

    /// Instantaneous (static) output voltage for an RF input power in watts.
    pub fn detect_v(&self, power_w: f64) -> f64 {
        assert!(power_w >= 0.0, "power cannot be negative");
        // Smooth compression: V = R·P / (1 + P/Pc).
        self.responsivity_v_per_w * power_w / (1.0 + power_w / self.compression_w)
    }

    /// RMS output noise voltage over a video bandwidth.
    pub fn output_noise_v(&self, video_bandwidth_hz: f64) -> f64 {
        self.noise_v_per_rthz * video_bandwidth_hz.sqrt()
    }

    /// An [`RcFilter`] modeling the output dynamics at sample interval `dt`.
    pub fn video_filter(&self, dt_s: f64) -> RcFilter {
        RcFilter::from_rise_time(self.rise_time_s, dt_s)
    }

    /// Maximum OOK symbol rate the detector can follow, defined as the rate
    /// at which one symbol period equals rise + fall time.
    pub fn max_symbol_rate_hz(&self) -> f64 {
        1.0 / (2.0 * self.rise_time_s)
    }

    /// Traces the detector output over time for a piecewise-constant input
    /// power sequence sampled at `dt` (applies square law then RC dynamics).
    pub fn trace(&self, power_w: &[f64], dt_s: f64) -> Vec<f64> {
        let mut out = Vec::with_capacity(power_w.len());
        self.trace_into(power_w, dt_s, &mut out);
        out
    }

    /// [`Self::trace`] into a caller-owned buffer (cleared first), so a hot
    /// loop holding the buffer performs no heap allocation past the
    /// high-water mark. Values are identical to [`Self::trace`].
    pub fn trace_into(&self, power_w: &[f64], dt_s: f64, out: &mut Vec<f64>) {
        let mut rc = self.video_filter(dt_s);
        out.clear();
        out.extend(power_w.iter().map(|&p| rc.step(self.detect_v(p))));
    }
}

/// An N-bit sampling ADC, as on the node's MCU (§8: ~1 MS/s on the
/// MSP430-class controller).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Adc {
    /// Sample rate, Hz.
    pub sample_rate_hz: f64,
    /// Resolution in bits.
    pub bits: u32,
    /// Full-scale input voltage.
    pub vref: f64,
}

impl Adc {
    /// The MSP430FR6989's 12-bit, 1 MS/s ADC with a 1.2 V reference scaled
    /// for detector output levels.
    pub fn msp430() -> Self {
        Self {
            sample_rate_hz: 1e6,
            bits: 12,
            vref: 1.2,
        }
    }

    /// Quantizes one voltage to the nearest code's voltage (clamping to the
    /// input range).
    pub fn quantize(&self, v: f64) -> f64 {
        let levels = (1u64 << self.bits) as f64 - 1.0;
        let clamped = v.clamp(0.0, self.vref);
        (clamped / self.vref * levels).round() / levels * self.vref
    }

    /// Resamples a densely-sampled trace (at `input_rate_hz`) down to the
    /// ADC rate with quantization. Uses nearest-sample decimation, like a
    /// real sample-and-hold.
    ///
    /// # Panics
    /// Panics if the input rate is below the ADC rate.
    pub fn sample_trace(&self, trace: &[f64], input_rate_hz: f64) -> Vec<f64> {
        let mut out = Vec::new();
        self.sample_trace_into(trace, input_rate_hz, &mut out);
        out
    }

    /// [`Self::sample_trace`] into a caller-owned buffer (cleared first) —
    /// the allocation-free form for per-trial loops. Values are identical
    /// to [`Self::sample_trace`].
    ///
    /// # Panics
    /// Panics if the input rate is below the ADC rate.
    pub fn sample_trace_into(&self, trace: &[f64], input_rate_hz: f64, out: &mut Vec<f64>) {
        assert!(
            input_rate_hz >= self.sample_rate_hz,
            "cannot upsample: input {input_rate_hz} < ADC {}",
            self.sample_rate_hz
        );
        let step = input_rate_hz / self.sample_rate_hz;
        let n_out = (trace.len() as f64 / step).floor() as usize;
        out.clear();
        out.extend((0..n_out).map(|i| self.quantize(trace[(i as f64 * step).round() as usize])));
    }

    /// Quantization step (one LSB) in volts.
    pub fn lsb_v(&self) -> f64 {
        self.vref / ((1u64 << self.bits) as f64 - 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn amplifier_linear_region() {
        let lna = Amplifier::adl8142_lna();
        assert!((lna.amplify_dbm(-60.0) - (-42.0)).abs() < 1e-9);
    }

    #[test]
    fn amplifier_compresses_near_p1db() {
        let pa = Amplifier::adpa7005_pa();
        // Well above compression the output flattens near saturation.
        let out_hi = pa.amplify_dbm(20.0);
        let out_higher = pa.amplify_dbm(30.0);
        assert!(out_hi <= pa.output_p1db_dbm + 2.5);
        assert!(out_higher - out_hi < 1.0, "should be saturated");
    }

    #[test]
    fn amplifier_monotone() {
        let pa = Amplifier::adpa7005_pa();
        let mut prev = f64::MIN;
        for i in -40..30 {
            let out = pa.amplify_dbm(i as f64);
            assert!(out > prev);
            prev = out;
        }
    }

    #[test]
    fn mixer_applies_conversion_loss() {
        let m = Mixer::zmdb44h();
        assert!((m.convert_dbm(-30.0) - (-37.0)).abs() < 1e-12);
    }

    #[test]
    fn switch_reflective_gamma_below_unity() {
        let s = SpdtSwitch::adrf5020();
        let g = s.reflective_gamma();
        assert!(g < 1.0 && g > 0.7, "gamma {g}");
        // 0.8 dB each way = 1.6 dB round trip → |Γ| = 10^(-1.6/20) ≈ 0.832.
        assert!((g - 0.832).abs() < 0.01);
    }

    #[test]
    fn switch_absorptive_gamma_is_small() {
        let s = SpdtSwitch::adrf5020();
        assert!(s.absorptive_gamma() < 0.2);
    }

    #[test]
    fn switch_rate_limit_is_160_mbps() {
        // §9.5: "the maximum uplink data rate ... is 160 Mbps. This rate is
        // limited by switching speed of the node's switches."
        let s = SpdtSwitch::adrf5020();
        assert!(s.supports_rate(160e6));
        assert!(!s.supports_rate(161e6));
    }

    #[test]
    #[should_panic(expected = "cannot toggle")]
    fn switch_power_rejects_excess_rate() {
        SpdtSwitch::adrf5020().power_at_rate_w(1e9);
    }

    #[test]
    fn switch_power_grows_with_rate() {
        let s = SpdtSwitch::adrf5020();
        assert!(s.power_at_rate_w(40e6) > s.power_at_rate_w(10e3));
    }

    #[test]
    fn node_power_targets_from_paper() {
        // Two switches + two detectors: ≈18 mW at 10 kHz (localization /
        // downlink), ≈32 mW at 160 MHz toggling (uplink). §9.6.
        let s = SpdtSwitch::adrf5020();
        let d = EnvelopeDetector::adl6010();
        let low = 2.0 * s.power_at_rate_w(10e3) + 2.0 * d.bias_power_w;
        let high = 2.0 * s.power_at_rate_w(160e6) + 2.0 * d.bias_power_w;
        assert!(
            (low - 18e-3).abs() < 0.5e-3,
            "low-rate power {:.1} mW",
            low * 1e3
        );
        assert!(
            (high - 32e-3).abs() < 0.5e-3,
            "uplink power {:.1} mW",
            high * 1e3
        );
    }

    #[test]
    fn detector_square_law_region_is_linear_in_power() {
        let d = EnvelopeDetector::adl6010();
        let v1 = d.detect_v(1e-6);
        let v2 = d.detect_v(2e-6);
        assert!((v2 / v1 - 2.0).abs() < 0.01, "square law violated");
    }

    #[test]
    fn detector_compresses_at_high_power() {
        let d = EnvelopeDetector::adl6010();
        let v1 = d.detect_v(5e-3);
        let v2 = d.detect_v(10e-3);
        assert!(v2 / v1 < 1.6, "should compress");
    }

    #[test]
    fn detector_output_reference_level() {
        // −20 dBm (10 µW) → ≈15 mV in the square-law region.
        let d = EnvelopeDetector::adl6010();
        let v = d.detect_v(1e-5);
        assert!((v - 0.015).abs() < 0.001, "got {v}");
    }

    #[test]
    fn detector_max_rate_matches_paper_downlink_limit() {
        // §9.4: max downlink ≈36 Mbps limited by detector rise/fall time.
        let d = EnvelopeDetector::adl6010();
        let r = d.max_symbol_rate_hz();
        assert!((r - 41.7e6).abs() < 1e6, "rate {r:.3e}");
        // 36 Mbps (2 bits/symbol at 18 Msym/s) fits; 100 Mbps does not.
        assert!(r > 18e6);
        assert!(r < 50e6);
    }

    #[test]
    fn detector_trace_follows_steps_with_lag() {
        let d = EnvelopeDetector::adl6010();
        let dt = 1e-9;
        // 100 ns on, 100 ns off at −20 dBm.
        let mut p = vec![1e-5; 100];
        p.extend(vec![0.0; 100]);
        let v = d.trace(&p, dt);
        let v_on = d.detect_v(1e-5);
        // Settles to the static value by the end of the on period...
        assert!((v[99] - v_on).abs() / v_on < 0.02);
        // ...but is still rising shortly after the edge.
        assert!(v[5] < 0.9 * v_on);
        // And decays toward zero in the off period.
        assert!(v[199] < 0.02 * v_on);
    }

    #[test]
    fn detector_noise_scales_with_sqrt_bandwidth() {
        let d = EnvelopeDetector::adl6010();
        let n1 = d.output_noise_v(1e6);
        let n2 = d.output_noise_v(4e6);
        assert!((n2 / n1 - 2.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "power cannot be negative")]
    fn detector_rejects_negative_power() {
        EnvelopeDetector::adl6010().detect_v(-1.0);
    }

    #[test]
    fn adc_quantizes_to_lsb_grid() {
        let adc = Adc::msp430();
        let q = adc.quantize(0.6);
        assert!((q - 0.6).abs() <= adc.lsb_v() / 2.0 + 1e-12);
        // Idempotent.
        assert_eq!(adc.quantize(q), q);
    }

    #[test]
    fn adc_clamps_out_of_range() {
        let adc = Adc::msp430();
        assert_eq!(adc.quantize(5.0), adc.vref);
        assert_eq!(adc.quantize(-1.0), 0.0);
    }

    #[test]
    fn adc_decimates_to_sample_rate() {
        let adc = Adc::msp430();
        // 10 MS/s input for 100 µs = 1000 samples → 100 ADC samples.
        let trace: Vec<f64> = (0..1000).map(|i| (i as f64 / 1000.0) * 0.5).collect();
        let out = adc.sample_trace(&trace, 10e6);
        assert_eq!(out.len(), 100);
        // Monotone ramp stays monotone.
        for w in out.windows(2) {
            assert!(w[1] >= w[0]);
        }
    }

    #[test]
    #[should_panic(expected = "cannot upsample")]
    fn adc_rejects_upsampling() {
        Adc::msp430().sample_trace(&[0.0; 10], 1e3);
    }
}
