//! The wireless channel: 2-D scene geometry, clutter, FMCW beat-signal
//! synthesis and tone-link budgets.
//!
//! # Modeling approach
//!
//! Synthesizing 3 GHz-wide passband signals sample-accurately would need
//! ~10 GS/s buffers. Instead we simulate the quantities each receiver
//! actually digitizes:
//!
//! * For FMCW localization the AP's mixer output (the *beat* signal) is a
//!   sum of low-frequency tones — one per echo at `f_b = slope·2d/c` with
//!   carrier phase `2π f₀ τ` — sampled at scope rates (tens of MS/s).
//!   Per-echo amplitudes may vary within the sweep (the FSA's reflection is
//!   frequency-selective; the node toggles at 10 kHz), which is exactly how
//!   AP-side orientation sensing and background subtraction work, so the
//!   synthesizer evaluates amplitude as a function of `(t, f_inst)`.
//! * For the node's downlink the detector digitizes *power vs time*, so we
//!   compute the received power trace through the FSA port gains.
//!
//! Both reductions are exact for the narrow-instantaneous-band signals the
//! paper uses (chirps and tones), not approximations of convenience.

use crate::propagation;
use mmwave_sigproc::complex::Complex;
use mmwave_sigproc::parallel;
use mmwave_sigproc::units::{wavelength, wrap_angle};
use mmwave_sigproc::waveform::{Chirp, ChirpShape};
use serde::{Deserialize, Serialize};
use std::f64::consts::PI;

/// A point in the 2-D evaluation plane, meters.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Vec2 {
    /// x coordinate (AP boresight is +x by convention), meters.
    pub x: f64,
    /// y coordinate, meters.
    pub y: f64,
}

impl Vec2 {
    /// Creates a point.
    pub const fn new(x: f64, y: f64) -> Self {
        Self { x, y }
    }

    /// Euclidean distance to another point.
    pub fn distance_to(self, other: Vec2) -> f64 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt()
    }

    /// Absolute bearing of `other` as seen from `self`, radians.
    pub fn bearing_to(self, other: Vec2) -> f64 {
        (other.y - self.y).atan2(other.x - self.x)
    }

    /// Polar construction: distance `r` at absolute angle `theta`.
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Self {
            x: r * theta.cos(),
            y: r * theta.sin(),
        }
    }
}

/// Pose of a backscatter node: position plus the absolute direction its
/// FSA broadside faces.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NodePose {
    /// Node position, meters.
    pub position: Vec2,
    /// Absolute angle of the FSA broadside, radians.
    pub facing_rad: f64,
}

impl NodePose {
    /// A node at distance `r` on the AP's boresight (+x) facing back at the
    /// AP with its broadside rotated by `orientation_rad` — the standard
    /// placement of every experiment in §9.
    pub fn on_boresight(r: f64, orientation_rad: f64) -> Self {
        // Facing back toward the AP (at the origin) means facing −x = π;
        // the orientation offset rotates the broadside away from that.
        Self {
            position: Vec2::new(r, 0.0),
            facing_rad: PI + orientation_rad,
        }
    }

    /// Incidence angle ψ of the AP (at `ap_pos`) relative to the node's
    /// broadside — the "orientation" MilBack senses (§5.2).
    pub fn incidence_from(&self, ap_pos: Vec2) -> f64 {
        wrap_angle(self.position.bearing_to(ap_pos) - self.facing_rad)
    }
}

/// A static clutter reflector (wall, desk, shelf — §9's indoor objects).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Reflector {
    /// Position, meters.
    pub position: Vec2,
    /// Monostatic radar cross-section, m².
    pub rcs_m2: f64,
}

/// The AP's radio-frontend description needed for link budgets.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ApFrontend {
    /// AP position, meters.
    pub position: Vec2,
    /// Boresight direction of the (mechanically steered) horns, radians.
    pub boresight_rad: f64,
    /// Transmit power at the antenna port, dBm (27 dBm in the paper).
    pub tx_power_dbm: f64,
    /// TX horn gain, dBi.
    pub tx_gain_dbi: f64,
    /// RX horn gain, dBi (each of the two RX antennas).
    pub rx_gain_dbi: f64,
    /// Baseline between the two RX antennas, meters (sets AoA sensitivity).
    pub rx_baseline_m: f64,
}

impl ApFrontend {
    /// The paper's AP: 27 dBm, 20 dBi horns, λ/2 RX baseline at 28 GHz.
    pub fn milback_default() -> Self {
        Self {
            position: Vec2::new(0.0, 0.0),
            boresight_rad: 0.0,
            tx_power_dbm: 27.0,
            tx_gain_dbi: 20.0,
            rx_gain_dbi: 20.0,
            rx_baseline_m: wavelength(28e9) / 2.0,
        }
    }

    /// Azimuth of a target relative to the AP boresight, radians.
    pub fn azimuth_to(&self, target: Vec2) -> f64 {
        wrap_angle(self.position.bearing_to(target) - self.boresight_rad)
    }

    /// EIRP in dBm.
    pub fn eirp_dbm(&self) -> f64 {
        self.tx_power_dbm + self.tx_gain_dbi
    }
}

/// One echo path for beat-signal synthesis. The amplitude closure receives
/// `(t_seconds_into_chirp, instantaneous_tx_freq_hz)` and returns the
/// complex amplitude (√watts at the mixer input, phase free to encode
/// modulation) of this echo at that instant.
///
/// The closure is `Send + Sync` so [`synthesize_beat_with_threads`] can
/// evaluate echoes from worker threads; amplitude models are pure functions
/// of `(t, f)` in practice, so the bounds cost nothing.
pub struct Echo<'a> {
    /// One-way distance of the reflector, meters.
    pub distance_m: f64,
    /// Additional fixed phase, radians (e.g. AoA inter-antenna phase).
    pub extra_phase_rad: f64,
    /// Complex amplitude as a function of time and instantaneous frequency.
    pub amplitude: Box<dyn Fn(f64, f64) -> Complex + Send + Sync + 'a>,
}

impl<'a> Echo<'a> {
    /// A static echo with constant amplitude (clutter).
    pub fn constant(distance_m: f64, amplitude_sqrt_w: f64) -> Self {
        Self {
            distance_m,
            extra_phase_rad: 0.0,
            amplitude: Box::new(move |_, _| Complex::real(amplitude_sqrt_w)),
        }
    }
}

/// Synthesizes the complex-baseband beat signal a sawtooth-FMCW receiver
/// digitizes for a set of echoes.
///
/// For each echo with round-trip delay τ, the dechirped output is
/// `a(t)·exp(j·2π(slope·τ·t + f₀·τ))` — a tone at the beat frequency with a
/// range-dependent carrier phase. Amplitudes are evaluated per sample so
/// switching tags and frequency-selective reflectors come out right.
///
/// # Panics
/// Panics for triangular chirps (beat processing in this stack is only
/// defined for the sawtooth localization chirps, §5.1).
pub fn synthesize_beat(chirp: &Chirp, echoes: &[Echo<'_>], sample_rate_hz: f64) -> Vec<Complex> {
    synthesize_beat_with_threads(chirp, echoes, sample_rate_hz, parallel::max_threads())
}

/// Samples per worker block in [`synthesize_beat_with_threads`]; a standard
/// 900-sample localization chirp splits into four blocks.
const BEAT_BLOCK: usize = 256;

/// [`synthesize_beat`] with an explicit worker budget. Output samples are
/// partitioned into `BEAT_BLOCK`-sized blocks; within each sample the
/// echoes are summed in slice order, so the result is bit-identical for
/// every `threads` value (`threads <= 1` runs inline on the caller).
pub fn synthesize_beat_with_threads(
    chirp: &Chirp,
    echoes: &[Echo<'_>],
    sample_rate_hz: f64,
    threads: usize,
) -> Vec<Complex> {
    assert!(
        chirp.shape == ChirpShape::Sawtooth,
        "beat synthesis requires a sawtooth chirp"
    );
    assert!(sample_rate_hz > 0.0);
    let n = (chirp.duration_s * sample_rate_hz).round() as usize;
    let slope = chirp.slope();
    // Per-echo constants, hoisted out of the sample loop.
    let pre: Vec<(f64, f64)> = echoes
        .iter()
        .map(|echo| {
            let tau = propagation::round_trip_delay_s(echo.distance_m);
            let beat_hz = slope * tau;
            let carrier_phase = 2.0 * PI * chirp.start_hz * tau + echo.extra_phase_rad;
            (beat_hz, carrier_phase)
        })
        .collect();
    let mut out = vec![mmwave_sigproc::complex::ZERO; n];
    parallel::for_each_chunk(&mut out, BEAT_BLOCK, threads, |start, block| {
        for (i, sample) in block.iter_mut().enumerate() {
            let t = (start + i) as f64 / sample_rate_hz;
            let f_inst = chirp.instantaneous_freq(t);
            for (echo, &(beat_hz, carrier_phase)) in echoes.iter().zip(&pre) {
                let a = (echo.amplitude)(t, f_inst);
                *sample += a * Complex::cis(2.0 * PI * beat_hz * t + carrier_phase);
            }
        }
    });
    out
}

/// Received power (watts) at a receive aperture of linear gain `rx_gain`
/// from a transmitter of `tx_power_w`/`tx_gain` at `distance_m`, `freq_hz`.
pub fn received_power_w(
    tx_power_w: f64,
    tx_gain_linear: f64,
    rx_gain_linear: f64,
    freq_hz: f64,
    distance_m: f64,
) -> f64 {
    assert!(distance_m > 0.0, "distance must be positive");
    let lambda = wavelength(freq_hz);
    tx_power_w * tx_gain_linear * rx_gain_linear * (lambda / (4.0 * PI * distance_m)).powi(2)
}

/// Amplitude (√watts) of a backscatter echo at the AP's mixer input: the
/// two-way radar link with the tag's round-trip gain product and reflection
/// coefficient applied.
pub fn backscatter_amplitude_sqrt_w(
    tx_power_w: f64,
    ap_tx_gain_linear: f64,
    ap_rx_gain_linear: f64,
    tag_gain_product_linear: f64,
    reflection_amplitude: f64,
    freq_hz: f64,
    distance_m: f64,
) -> f64 {
    assert!(distance_m > 0.0);
    let lambda = wavelength(freq_hz);
    let one_way = (lambda / (4.0 * PI * distance_m)).powi(2);
    (tx_power_w
        * ap_tx_gain_linear
        * ap_rx_gain_linear
        * tag_gain_product_linear
        * one_way
        * one_way)
        .sqrt()
        * reflection_amplitude
}

/// Amplitude (√watts) of a clutter echo of RCS `sigma_m2`.
pub fn clutter_amplitude_sqrt_w(
    tx_power_w: f64,
    ap_tx_gain_linear: f64,
    ap_rx_gain_linear: f64,
    sigma_m2: f64,
    freq_hz: f64,
    distance_m: f64,
) -> f64 {
    assert!(distance_m > 0.0 && sigma_m2 >= 0.0);
    let lambda = wavelength(freq_hz);
    (tx_power_w * ap_tx_gain_linear * ap_rx_gain_linear * lambda * lambda * sigma_m2
        / ((4.0 * PI).powi(3) * distance_m.powi(4)))
    .sqrt()
}

/// Structural ("mirror") reflection of the node's FSA ground plane (§9.3):
/// a specular return that is strongest when the board is normal to the AP
/// and rolls off as the board rotates away. `leakage` is the fraction of
/// this reflection that varies with the node's switching state and thus
/// survives background subtraction — the cause of the elevated AP-side
/// orientation error near −6°…−2°.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MirrorReflection {
    /// Peak specular RCS at normal incidence, m².
    pub peak_rcs_m2: f64,
    /// Angular rolloff width (Gaussian σ), radians.
    pub width_rad: f64,
    /// Fraction of the mirror amplitude modulated by node switching (0..1).
    pub switching_leakage: f64,
    /// Range offset of the structural reflection from the antenna phase
    /// center, m. The offset separates the mirror's beat tone from the
    /// node's by a few hundred kHz, so their interference ripples across
    /// the chirp and biases the AP-side orientation peak near normal
    /// incidence (the Fig 13b error bump).
    pub range_offset_m: f64,
}

impl MirrorReflection {
    /// Defaults calibrated to reproduce the Fig 13b error bump.
    pub fn milback_default() -> Self {
        Self {
            peak_rcs_m2: 0.02,
            width_rad: 4f64.to_radians(),
            switching_leakage: 0.12,
            range_offset_m: 0.03,
        }
    }

    /// Effective specular RCS at incidence angle ψ.
    pub fn rcs_at(&self, incidence_rad: f64) -> f64 {
        let x = incidence_rad / self.width_rad;
        self.peak_rcs_m2 * (-x * x).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmwave_sigproc::fft::{fft, fft_frequencies};

    #[test]
    fn beat_synthesis_bit_exact_across_thread_counts() {
        let chirp = Chirp::sawtooth(26.5e9, 3e9, 18e-6);
        let echoes = vec![
            Echo::constant(3.0, 1e-4),
            Echo::constant(5.5, 2e-5),
            Echo::constant(9.1, 7e-6),
        ];
        let serial = synthesize_beat_with_threads(&chirp, &echoes, 50e6, 1);
        assert_eq!(serial.len(), 900);
        for threads in [2usize, 4, 7] {
            let par = synthesize_beat_with_threads(&chirp, &echoes, 50e6, threads);
            assert!(
                par == serial,
                "threads={threads} diverges from serial synthesis"
            );
        }
    }

    #[test]
    fn vec2_distance_and_bearing() {
        let a = Vec2::new(0.0, 0.0);
        let b = Vec2::new(3.0, 4.0);
        assert!((a.distance_to(b) - 5.0).abs() < 1e-12);
        assert!((a.bearing_to(b) - (4.0f64 / 3.0).atan()).abs() < 1e-12);
        let c = Vec2::from_polar(2.0, PI / 2.0);
        assert!(c.x.abs() < 1e-12 && (c.y - 2.0).abs() < 1e-12);
    }

    #[test]
    fn on_boresight_pose_geometry() {
        let ap = Vec2::new(0.0, 0.0);
        // Facing straight back at the AP: zero incidence.
        let n0 = NodePose::on_boresight(3.0, 0.0);
        assert!(n0.incidence_from(ap).abs() < 1e-12);
        // Rotated by +10°: incidence −10° (AP appears 10° off broadside).
        let n10 = NodePose::on_boresight(3.0, 10f64.to_radians());
        assert!((n10.incidence_from(ap) + 10f64.to_radians()).abs() < 1e-12);
    }

    #[test]
    fn ap_azimuth_convention() {
        let ap = ApFrontend::milback_default();
        assert!(ap.azimuth_to(Vec2::new(5.0, 0.0)).abs() < 1e-12);
        let az = ap.azimuth_to(Vec2::new(3.0, 3.0));
        assert!((az - PI / 4.0).abs() < 1e-12);
        assert!((ap.eirp_dbm() - 47.0).abs() < 1e-12);
    }

    #[test]
    fn beat_tone_lands_at_predicted_frequency() {
        let chirp = Chirp::sawtooth(26.5e9, 3e9, 18e-6);
        let fs = 50e6;
        let d = 4.0;
        let echo = Echo::constant(d, 1e-4);
        let beat = synthesize_beat(&chirp, &[echo], fs);
        let spec = fft(&beat);
        let freqs = fft_frequencies(spec.len(), fs);
        let mags: Vec<f64> = spec.iter().map(|z| z.norm()).collect();
        let peak = mmwave_sigproc::detect::find_peak(&mags).unwrap();
        let expected = propagation::beat_frequency_hz(chirp.slope(), d);
        let measured = freqs[peak.index];
        assert!(
            (measured - expected).abs() < fs / beat.len() as f64 * 1.5,
            "beat at {measured:.3e}, expected {expected:.3e}"
        );
    }

    #[test]
    fn two_echoes_two_beat_tones() {
        let chirp = Chirp::sawtooth(26.5e9, 3e9, 18e-6);
        let fs = 50e6;
        let beat = synthesize_beat(
            &chirp,
            &[Echo::constant(2.0, 1e-4), Echo::constant(6.0, 1e-4)],
            fs,
        );
        let mags: Vec<f64> = fft(&beat).iter().map(|z| z.norm()).collect();
        let peaks = mmwave_sigproc::detect::find_peaks(
            &mags,
            mags.iter().cloned().fold(0.0, f64::max) / 3.0,
            4,
        );
        assert!(peaks.len() >= 2, "expected two beat tones");
    }

    #[test]
    fn beat_carrier_phase_tracks_range() {
        // Moving the target by λ/4 (round trip λ/2) flips the beat phase by π.
        let chirp = Chirp::sawtooth(26.5e9, 3e9, 18e-6);
        let fs = 50e6;
        let lambda = wavelength(26.5e9);
        let b1 = synthesize_beat(&chirp, &[Echo::constant(3.0, 1.0)], fs);
        let b2 = synthesize_beat(&chirp, &[Echo::constant(3.0 + lambda / 4.0, 1.0)], fs);
        let dphi = wrap_angle(b2[0].arg() - b1[0].arg());
        assert!((dphi.abs() - PI).abs() < 0.05, "phase step {dphi}");
    }

    #[test]
    fn extra_phase_shifts_output() {
        let chirp = Chirp::sawtooth(26.5e9, 3e9, 18e-6);
        let fs = 50e6;
        let mk = |phi: f64| Echo {
            distance_m: 3.0,
            extra_phase_rad: phi,
            amplitude: Box::new(|_, _| Complex::real(1.0)),
        };
        let b0 = synthesize_beat(&chirp, &[mk(0.0)], fs);
        let b1 = synthesize_beat(&chirp, &[mk(0.7)], fs);
        let d = wrap_angle(b1[10].arg() - b0[10].arg());
        assert!((d - 0.7).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "sawtooth")]
    fn beat_synthesis_rejects_triangular() {
        let chirp = Chirp::triangular(26.5e9, 3e9, 45e-6);
        synthesize_beat(&chirp, &[], 50e6);
    }

    #[test]
    fn time_varying_amplitude_modulates_beat() {
        // A 10 kHz-toggled echo (as during localization) has energy and
        // silence segments... within one 18 µs chirp the state is constant,
        // so toggle at 200 kHz here to see it inside a single sweep.
        let chirp = Chirp::sawtooth(26.5e9, 3e9, 18e-6);
        let fs = 50e6;
        let echo = Echo {
            distance_m: 3.0,
            extra_phase_rad: 0.0,
            amplitude: Box::new(|t, _| {
                if ((t * 200e3) as u64).is_multiple_of(2) {
                    Complex::real(1.0)
                } else {
                    Complex::real(0.0)
                }
            }),
        };
        let beat = synthesize_beat(&chirp, &[echo], fs);
        let on: Vec<f64> = beat.iter().map(|z| z.norm()).collect();
        assert!(on.iter().any(|&v| v > 0.5) && on.iter().any(|&v| v < 1e-9));
    }

    #[test]
    fn received_power_matches_friis_db_form() {
        let p = received_power_w(0.5, 100.0, 20.0, 28e9, 8.0);
        let db_form = propagation::friis_dbm(
            mmwave_sigproc::units::watts_to_dbm(0.5),
            20.0,
            13.0103,
            28e9,
            8.0,
        );
        let p_db = mmwave_sigproc::units::watts_to_dbm(p);
        assert!((p_db - db_form).abs() < 0.01, "{p_db} vs {db_form}");
    }

    #[test]
    fn backscatter_amplitude_squares_to_radar_equation() {
        let a = backscatter_amplitude_sqrt_w(0.5, 100.0, 100.0, 400.0, 1.0, 28e9, 5.0);
        let p_dbm = mmwave_sigproc::units::watts_to_dbm(a * a);
        let reference = propagation::backscatter_dbm(
            mmwave_sigproc::units::watts_to_dbm(0.5),
            20.0,
            20.0,
            26.0206,
            0.0,
            28e9,
            5.0,
        );
        assert!((p_dbm - reference).abs() < 0.01, "{p_dbm} vs {reference}");
    }

    #[test]
    fn clutter_amplitude_squares_to_radar_clutter() {
        let a = clutter_amplitude_sqrt_w(0.5, 100.0, 100.0, 1.0, 28e9, 3.0);
        let p_dbm = mmwave_sigproc::units::watts_to_dbm(a * a);
        let reference = propagation::radar_clutter_dbm(
            mmwave_sigproc::units::watts_to_dbm(0.5),
            20.0,
            20.0,
            1.0,
            28e9,
            3.0,
        );
        assert!((p_dbm - reference).abs() < 0.01);
    }

    #[test]
    fn mirror_reflection_peaks_at_normal() {
        let m = MirrorReflection::milback_default();
        assert!(m.rcs_at(0.0) > m.rcs_at(5f64.to_radians()));
        assert!(m.rcs_at(20f64.to_radians()) < m.peak_rcs_m2 * 1e-5);
        assert!((m.rcs_at(0.0) - m.peak_rcs_m2).abs() < 1e-15);
    }

    #[test]
    fn mirror_reflection_is_symmetric() {
        let m = MirrorReflection::milback_default();
        assert!((m.rcs_at(0.05) - m.rcs_at(-0.05)).abs() < 1e-15);
    }
}
