//! Receiver noise: cascaded noise figure (Friis's *other* formula) and the
//! noise floor of each receiver in the system.

use mmwave_sigproc::units::{db_to_lin, lin_to_db, noise_power_dbm};
use serde::{Deserialize, Serialize};

/// One stage in a receiver chain, for noise-figure cascading.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NoiseStage {
    /// Stage power gain, dB (negative for lossy stages like mixers).
    pub gain_db: f64,
    /// Stage noise figure, dB. For passive lossy stages NF = loss.
    pub noise_figure_db: f64,
}

impl NoiseStage {
    /// A lossy passive stage (attenuator, mixer, filter): NF equals loss.
    pub fn passive(loss_db: f64) -> Self {
        assert!(loss_db >= 0.0, "loss must be non-negative");
        Self {
            gain_db: -loss_db,
            noise_figure_db: loss_db,
        }
    }

    /// An active gain stage.
    pub fn active(gain_db: f64, noise_figure_db: f64) -> Self {
        Self {
            gain_db,
            noise_figure_db,
        }
    }
}

/// Cascaded noise figure of a receiver chain (Friis formula):
/// `F = F₁ + (F₂−1)/G₁ + (F₃−1)/(G₁G₂) + …`, all in linear, result in dB.
///
/// # Panics
/// Panics on an empty chain.
pub fn cascade_noise_figure_db(stages: &[NoiseStage]) -> f64 {
    assert!(!stages.is_empty(), "cascade of zero stages");
    let mut f_total = db_to_lin(stages[0].noise_figure_db);
    let mut gain_product = db_to_lin(stages[0].gain_db);
    for s in &stages[1..] {
        f_total += (db_to_lin(s.noise_figure_db) - 1.0) / gain_product;
        gain_product *= db_to_lin(s.gain_db);
    }
    lin_to_db(f_total)
}

/// Total gain of a chain, dB.
pub fn cascade_gain_db(stages: &[NoiseStage]) -> f64 {
    stages.iter().map(|s| s.gain_db).sum()
}

/// The MilBack AP receive chain: LNA → mixer → BPF (§8), with its cascaded
/// noise figure and the resulting sensitivity.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReceiverChain {
    stages: Vec<NoiseStage>,
    /// Extra implementation loss applied to signal (not noise), dB —
    /// cabling, misalignment, polarization and processing losses that a
    /// lab prototype accumulates on top of the textbook budget.
    pub implementation_loss_db: f64,
}

impl ReceiverChain {
    /// Builds a chain from stages.
    pub fn new(stages: Vec<NoiseStage>, implementation_loss_db: f64) -> Self {
        assert!(!stages.is_empty(), "receiver chain needs stages");
        assert!(implementation_loss_db >= 0.0);
        Self {
            stages,
            implementation_loss_db,
        }
    }

    /// The paper's AP receiver: ADL8142 LNA (18 dB / NF 3), ZMDB-44H mixer
    /// (7 dB loss), band-pass filter (1.5 dB loss). Implementation loss is
    /// calibrated so the Fig 15 uplink anchors reproduce: ≈11 dB SNR at 8 m
    /// for 10 Mbps (the BER ≈ 2e-4 annotation) and ≈10 dB at 6 m for
    /// 40 Mbps (BER ≈ 8e-4).
    pub fn milback_ap() -> Self {
        Self::new(
            vec![
                NoiseStage::active(18.0, 3.0),
                NoiseStage::passive(7.0),
                NoiseStage::passive(1.5),
            ],
            13.0,
        )
    }

    /// Cascaded noise figure, dB.
    pub fn noise_figure_db(&self) -> f64 {
        cascade_noise_figure_db(&self.stages)
    }

    /// Total chain gain, dB.
    pub fn gain_db(&self) -> f64 {
        cascade_gain_db(&self.stages)
    }

    /// Input-referred noise floor over `bandwidth_hz`, dBm.
    pub fn noise_floor_dbm(&self, bandwidth_hz: f64) -> f64 {
        noise_power_dbm(bandwidth_hz, self.noise_figure_db())
    }

    /// SNR (dB) for an input signal power, over a bandwidth, including the
    /// implementation loss.
    pub fn snr_db(&self, signal_dbm: f64, bandwidth_hz: f64) -> f64 {
        signal_dbm - self.implementation_loss_db - self.noise_floor_dbm(bandwidth_hz)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_stage_cascade_is_its_own_nf() {
        let nf = cascade_noise_figure_db(&[NoiseStage::active(20.0, 4.0)]);
        assert!((nf - 4.0).abs() < 1e-12);
    }

    #[test]
    fn lna_first_dominates_cascade() {
        // Classic result: with a high-gain LNA first, later stages barely
        // matter; with the lossy mixer first, NF ≈ mixer loss + LNA NF.
        let good =
            cascade_noise_figure_db(&[NoiseStage::active(18.0, 3.0), NoiseStage::passive(7.0)]);
        let bad =
            cascade_noise_figure_db(&[NoiseStage::passive(7.0), NoiseStage::active(18.0, 3.0)]);
        assert!(good < 3.5, "good {good}");
        assert!((bad - 10.0).abs() < 0.2, "bad {bad}");
    }

    #[test]
    fn passive_stage_nf_equals_loss() {
        let s = NoiseStage::passive(7.0);
        assert_eq!(s.gain_db, -7.0);
        assert_eq!(s.noise_figure_db, 7.0);
    }

    #[test]
    fn textbook_cascade_value() {
        // Stage 1: gain 10 dB, NF 3 dB (F₁=1.9953, G₁=10); stage 2: NF 6 dB
        // (F₂=3.9811). F = 1.9953 + 2.9811/10 = 2.2934 → 3.605 dB.
        let nf = cascade_noise_figure_db(&[
            NoiseStage::active(10.0, 3.0),
            NoiseStage::active(10.0, 6.0),
        ]);
        assert!((nf - 3.605).abs() < 0.01, "{nf}");
    }

    #[test]
    fn milback_ap_chain_figures() {
        let c = ReceiverChain::milback_ap();
        let nf = c.noise_figure_db();
        assert!((3.0..4.5).contains(&nf), "NF {nf}");
        assert!((c.gain_db() - 9.5).abs() < 1e-9);
    }

    #[test]
    fn noise_floor_reference() {
        let c = ReceiverChain::milback_ap();
        // 10 MHz bandwidth: −174 + 70 + NF ≈ −100.7 dBm.
        let floor = c.noise_floor_dbm(10e6);
        assert!((floor - (-100.6)).abs() < 0.5, "floor {floor}");
    }

    #[test]
    fn snr_includes_implementation_loss() {
        let c = ReceiverChain::milback_ap();
        let without = c.snr_db(-60.0, 10e6) + c.implementation_loss_db;
        let with = c.snr_db(-60.0, 10e6);
        assert!((without - with - c.implementation_loss_db).abs() < 1e-9);
        assert!((c.implementation_loss_db - 13.0).abs() < 1e-9);
    }

    #[test]
    fn wider_bandwidth_lowers_snr() {
        // 10 → 40 Mbps costs 6 dB of SNR (§9.5).
        let c = ReceiverChain::milback_ap();
        let s10 = c.snr_db(-70.0, 10e6);
        let s40 = c.snr_db(-70.0, 40e6);
        assert!((s10 - s40 - 6.02).abs() < 0.01);
    }

    #[test]
    #[should_panic(expected = "cascade of zero stages")]
    fn empty_cascade_panics() {
        cascade_noise_figure_db(&[]);
    }
}
