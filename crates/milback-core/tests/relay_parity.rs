//! Relay-layer acceptance: a disabled relay configuration is bit-exact
//! with the relay-free MAC paths (`==` plus `to_bits` on every f64), a
//! sharded relay campaign is invariant across worker thread counts, and
//! an enabled configuration actually bridges coverage gaps — delivery
//! recovering with the hop budget, per-hop energy accounted, and
//! routeless gap nodes kept in every denominator.

use milback_core::{ApServiceConfig, Packet};
use milback_core::{
    CampaignAggregate, CoverageModel, MacPolicy, Network, RelayAwareMac, RelayConfig, Scene,
    SlottedAloha, SlottedRunReport, SystemConfig,
};
use mmwave_sigproc::random::GaussianSource;

const SEED: u64 = 0xBEEF_CAFE;
const SLOT_SEED: u64 = 0xFEED;
const FRAMES: usize = 8;
const PAYLOAD: [u8; 8] = [0x42; 8];

/// An inner (covered) arc at 4 m plus an outer arc at 8 m sharing the
/// azimuth span: with coverage cut at 6 m the outer ring is all gap
/// nodes, and a ~4.1 m radial spacing puts each outer node within a
/// 4.5 m tag range of the inner ring.
fn ringed_network(inner: usize, outer: usize) -> Network {
    let span = 60f64.to_radians();
    let orient = 12f64.to_radians();
    let mut scene = Scene::arc(inner, 4.0, span, orient);
    for k in 0..outer {
        scene = scene.with_node_at(8.0, Scene::arc_azimuth_rad(k, outer, span), orient);
    }
    Network::new(SystemConfig::milback_default(), scene).unwrap()
}

fn plan_for(n: &Network, slots: usize) -> milback_core::protocol::SlotPlan {
    milback_core::protocol::SlotPlan::for_packet(
        slots,
        &Packet::uplink(PAYLOAD.to_vec()),
        &n.config.fmcw,
        n.config.uplink_symbol_rate_hz,
        5e-6,
    )
    .unwrap()
}

fn gapped_relay(max_hops: usize) -> RelayConfig {
    RelayConfig {
        coverage: CoverageModel::with_range(6.0),
        max_hops,
        tag_range_m: 4.5,
        hop_snr_penalty_db: 3.0,
    }
}

/// `==` is necessary but not sufficient for f64 bit-exactness (`-0.0 ==
/// 0.0`); this pins the bits too.
fn assert_bit_exact(a: &SlottedRunReport, b: &SlottedRunReport) {
    assert_eq!(a, b);
    for (x, y) in a.nodes.iter().zip(&b.nodes) {
        assert_eq!(x.energy_j.to_bits(), y.energy_j.to_bits());
        assert_eq!(x.relay_energy_j.to_bits(), y.relay_energy_j.to_bits());
        assert_eq!(x.relay_latency_s.to_bits(), y.relay_latency_s.to_bits());
        assert_eq!(
            x.mean_snr_db.map(f64::to_bits),
            y.mean_snr_db.map(f64::to_bits)
        );
    }
}

fn assert_agg_bit_exact(a: &CampaignAggregate, b: &CampaignAggregate) {
    assert_eq!(a, b);
    assert_eq!(a.energy_j.to_bits(), b.energy_j.to_bits());
    assert_eq!(a.snr_sum_db.to_bits(), b.snr_sum_db.to_bits());
    assert_eq!(a.relay_energy_j.to_bits(), b.relay_energy_j.to_bits());
    assert_eq!(a.relay_latency_s.to_bits(), b.relay_latency_s.to_bits());
}

#[test]
fn disabled_relay_is_bit_exact_with_run_mac() {
    let n = ringed_network(4, 4);
    let plan = plan_for(&n, 8);
    let mut rng_a = GaussianSource::new(SEED);
    let mut rng_b = GaussianSource::new(SEED);
    let direct = n
        .run_mac(
            Box::new(SlottedAloha::new(SLOT_SEED)),
            FRAMES,
            &PAYLOAD,
            &plan,
            20.0,
            &mut rng_a,
        )
        .unwrap();
    let relayed = n
        .run_mac_relay(
            Box::new(SlottedAloha::new(SLOT_SEED)),
            FRAMES,
            &PAYLOAD,
            &plan,
            20.0,
            &mut rng_b,
            &RelayConfig::disabled(),
        )
        .unwrap();
    assert_bit_exact(&direct, &relayed);
    // The RNG streams must land in the same place too.
    assert_eq!(rng_a.bytes(8), rng_b.bytes(8));
    // And the relay columns must be identically dormant.
    for node in &relayed.nodes {
        assert!(!node.gap);
        assert_eq!((node.relayed, node.relay_hops, node.forwarded), (0, 0, 0));
        assert_eq!(node.relay_energy_j.to_bits(), 0f64.to_bits());
    }
}

#[test]
fn disabled_relay_aware_policy_matches_plain_aloha() {
    // RelayAwareMac over a disabled config draws no route seed and
    // schedules exactly what SlottedAloha schedules.
    let n = ringed_network(4, 4);
    let plan = plan_for(&n, 8);
    let mut rng_a = GaussianSource::new(SEED);
    let mut rng_b = GaussianSource::new(SEED);
    let plain = n
        .run_mac(
            Box::new(SlottedAloha::new(SLOT_SEED)),
            FRAMES,
            &PAYLOAD,
            &plan,
            20.0,
            &mut rng_a,
        )
        .unwrap();
    let relay_aware = n
        .run_mac_relay(
            Box::new(RelayAwareMac::new(SLOT_SEED, RelayConfig::disabled())),
            FRAMES,
            &PAYLOAD,
            &plan,
            20.0,
            &mut rng_b,
            &RelayConfig::disabled(),
        )
        .unwrap();
    assert_bit_exact(&plain, &relay_aware);
}

#[test]
fn sharded_disabled_relay_is_thread_count_invariant() {
    let n = ringed_network(8, 8);
    let plan = plan_for(&n, 8);
    let service = ApServiceConfig::instantaneous();
    let run = |threads: usize| {
        n.run_sharded_mac_relay(
            4,
            threads,
            SEED,
            FRAMES,
            &PAYLOAD,
            &plan,
            20.0,
            &service,
            &RelayConfig::disabled(),
            |_, seed| Box::new(SlottedAloha::new(seed)) as Box<dyn MacPolicy>,
        )
        .unwrap()
    };
    let reference = run(1);
    for threads in [2, 4, 8] {
        assert_agg_bit_exact(&reference, &run(threads));
    }
    // Also bit-exact with the pre-relay sharded entry point.
    let legacy = n
        .run_sharded_mac_service(
            4,
            3,
            SEED,
            FRAMES,
            &PAYLOAD,
            &plan,
            20.0,
            &service,
            |_, s| Box::new(SlottedAloha::new(s)) as Box<dyn MacPolicy>,
        )
        .unwrap();
    assert_agg_bit_exact(&reference, &legacy);
}

#[test]
fn sharded_relay_campaign_is_thread_count_invariant() {
    let n = ringed_network(8, 8);
    let plan = plan_for(&n, 8);
    let service = ApServiceConfig::instantaneous();
    let relay = gapped_relay(3);
    let run = |threads: usize| {
        n.run_sharded_mac_relay(
            4,
            threads,
            SEED,
            FRAMES,
            &PAYLOAD,
            &plan,
            20.0,
            &service,
            &relay,
            |_, seed| Box::new(RelayAwareMac::new(seed, relay)) as Box<dyn MacPolicy>,
        )
        .unwrap()
    };
    let reference = run(1);
    assert!(reference.gap_nodes > 0, "the ring must produce gap nodes");
    for threads in [2, 4, 8] {
        assert_agg_bit_exact(&reference, &run(threads));
    }
}

#[test]
fn relaying_recovers_gap_delivery_with_the_hop_budget() {
    let n = ringed_network(6, 6);
    let plan = plan_for(&n, 12);
    let run = |max_hops: usize| {
        let relay = gapped_relay(max_hops);
        let mut rng = GaussianSource::new(SEED);
        n.run_mac_relay(
            Box::new(RelayAwareMac::new(SLOT_SEED, relay)),
            FRAMES,
            &PAYLOAD,
            &plan,
            20.0,
            &mut rng,
            &relay,
        )
        .unwrap()
    };
    let direct_only = CampaignAggregate::from_report(&run(1));
    let two_hop = CampaignAggregate::from_report(&run(2));
    assert_eq!(direct_only.gap_nodes, 6);
    // Direct-only: gap nodes burn attempts but nothing lands.
    assert!(direct_only.gap_attempts > 0);
    assert_eq!(direct_only.gap_delivery_rate(), Some(0.0));
    assert_eq!(direct_only.relayed, 0);
    // Two hops reach the inner ring: delivery recovers, with per-hop
    // energy and latency on the books.
    let recovered = two_hop.gap_delivery_rate().unwrap();
    assert!(recovered > 0.5, "gap delivery rate {recovered}");
    assert!(two_hop.relayed > 0);
    assert!(two_hop.forwarded > 0, "inner-ring nodes must forward");
    assert!(two_hop.relay_energy_j > 0.0);
    assert!(two_hop.relay_latency_s > 0.0);
    assert_eq!(two_hop.mean_relay_hops(), Some(2.0));
    // Relaying must not cost the covered nodes anything they delivered:
    // total delivery strictly improves.
    assert!(two_hop.delivered > direct_only.delivered);
}

#[test]
fn routeless_gap_node_stays_in_the_denominators() {
    // One gap node far outside everyone's tag range: no route exists, so
    // it keeps contending blindly — attempts counted, nothing delivered,
    // and its report row still present.
    let orient = 12f64.to_radians();
    let scene = Scene::arc(4, 4.0, 60f64.to_radians(), orient).with_node_at(20.0, 0.0, orient);
    let n = Network::new(SystemConfig::milback_default(), scene).unwrap();
    let plan = plan_for(&n, 8);
    let relay = gapped_relay(4);
    let mut rng = GaussianSource::new(SEED);
    let report = n
        .run_mac_relay(
            Box::new(RelayAwareMac::new(SLOT_SEED, relay)),
            FRAMES,
            &PAYLOAD,
            &plan,
            20.0,
            &mut rng,
            &relay,
        )
        .unwrap();
    assert_eq!(report.nodes.len(), 5);
    let stranded = &report.nodes[4];
    assert!(stranded.gap);
    assert_eq!(stranded.attempts, FRAMES, "blind contention every frame");
    assert_eq!(stranded.delivered, 0);
    assert_eq!(stranded.relayed, 0);
    assert!(stranded.energy_j > 0.0, "wasted airtime is still billed");
    let agg = CampaignAggregate::from_report(&report);
    assert_eq!(agg.nodes, 5);
    assert_eq!(agg.gap_nodes, 1);
    assert_eq!(agg.gap_attempts, FRAMES as u64);
    assert_eq!(agg.gap_delivery_rate(), Some(0.0));
}
