//! Property tests for the streaming campaign aggregation: folding
//! randomized per-node reports through [`CampaignAggregate`] node-by-node,
//! in any cell partition and any cell order, must agree with the per-node
//! `Vec` aggregation — u64 counters by `==`, histogram buckets by `==`.
//! (The f64 running sums are deliberately excluded from the any-order
//! property: addition order changes their low bits, which is exactly why
//! the production merge fixes cell index order.)

use milback_core::{CampaignAggregate, SlottedNodeReport, SlottedRunReport};
use proptest::prelude::*;

/// Expands 64 bits of entropy into one node report with the real
/// invariants: `delivered <= attempts`, `collisions <= attempts`, SNR
/// present iff something was delivered.
fn report_from_entropy(idx: usize, bits: u64) -> SlottedNodeReport {
    let attempts = (bits & 0x3F) as usize;
    let delivered = if attempts == 0 {
        0
    } else {
        ((bits >> 6) & 0x3F) as usize % (attempts + 1)
    };
    let collisions = ((bits >> 12) & 0x3F) as usize % (attempts + 1);
    let energy_j = ((bits >> 24) & 0xFFFFF) as f64 * 1e-9;
    let snr_db = -10.0 + ((bits >> 44) & 0xFFF) as f64 * (60.0 / 4096.0);
    // Relay columns with the real invariants: only a gap node relays,
    // relayed deliveries are a subset of deliveries, every relayed
    // delivery took at least two transmissions, and the relay energy is
    // a share of the node total.
    let gap = (bits >> 18) & 1 == 1;
    let relayed = if gap { delivered } else { 0 };
    let relay_hops = relayed * (2 + ((bits >> 19) & 0x3) as usize);
    let forwarded = if gap {
        0
    } else {
        ((bits >> 21) & 0x7) as usize
    };
    SlottedNodeReport {
        node_idx: idx,
        attempts,
        delivered,
        collisions,
        energy_j,
        mean_snr_db: (delivered > 0).then_some(snr_db),
        gap,
        relayed,
        relay_hops,
        forwarded,
        relay_energy_j: forwarded as f64 * 0.25 * 1e-9,
        relay_latency_s: (relay_hops.saturating_sub(relayed)) as f64 * 1e-4,
    }
}

fn reports_from_entropy(entropy: &[u64]) -> Vec<SlottedNodeReport> {
    entropy
        .iter()
        .enumerate()
        .map(|(idx, &bits)| report_from_entropy(idx, bits))
        .collect()
}

fn run_report(nodes: Vec<SlottedNodeReport>) -> SlottedRunReport {
    SlottedRunReport {
        frames: 16,
        frame_s: 2.5e-3,
        payload_bytes: 8,
        nodes,
        service: Default::default(),
        lifecycle: Default::default(),
    }
}

/// Counter and bucket equality — everything the issue's property names.
fn counters_and_buckets_eq(a: &CampaignAggregate, b: &CampaignAggregate) -> bool {
    a.nodes == b.nodes
        && a.attempts == b.attempts
        && a.delivered == b.delivered
        && a.collisions == b.collisions
        && a.delivering_nodes == b.delivering_nodes
        && a.frames == b.frames
        && a.payload_bytes == b.payload_bytes
        && a.node_energy_j.counts == b.node_energy_j.counts
        && a.node_energy_j.count == b.node_energy_j.count
        && a.node_snr_db.counts == b.node_snr_db.counts
        && a.node_snr_db.count == b.node_snr_db.count
        && a.gap_nodes == b.gap_nodes
        && a.gap_attempts == b.gap_attempts
        && a.gap_delivered == b.gap_delivered
        && a.relayed == b.relayed
        && a.relay_hops == b.relay_hops
        && a.forwarded == b.forwarded
        && a.node_relay_hops.counts == b.node_relay_hops.counts
        && a.node_relay_hops.count == b.node_relay_hops.count
}

proptest! {
    /// Slicing one campaign's nodes into arbitrary contiguous cells and
    /// folding the per-cell aggregates in a shuffled cell order reproduces
    /// the single per-node `Vec` aggregation: counters `==`, buckets `==`.
    #[test]
    fn cell_folds_match_vec_aggregation_in_any_order(
        entropy in proptest::collection::vec(any::<u64>(), 1..64),
        raw_cuts in proptest::collection::vec(0usize..64, 1..7),
        order_seed in any::<u64>(),
    ) {
        let reports = reports_from_entropy(&entropy);

        // Reference: one Vec-backed report, folded whole.
        let reference = CampaignAggregate::from_report(&run_report(reports.clone()));

        // Cells: contiguous slices at the random cut points.
        let mut bounds: Vec<usize> = raw_cuts.iter().map(|&c| c % reports.len()).collect();
        bounds.push(0);
        bounds.push(reports.len());
        bounds.sort_unstable();
        bounds.dedup();
        let mut cells: Vec<CampaignAggregate> = bounds
            .windows(2)
            .map(|w| CampaignAggregate::from_report(&run_report(reports[w[0]..w[1]].to_vec())))
            .collect();

        // Shuffle the merge order with a tiny deterministic LCG.
        let mut state = order_seed | 1;
        for i in (1..cells.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            cells.swap(i, (state >> 33) as usize % (i + 1));
        }

        let mut folded = CampaignAggregate::new();
        for cell in &cells {
            folded.merge_from(cell);
        }

        prop_assert!(
            counters_and_buckets_eq(&folded, &reference),
            "cell fold diverged from Vec aggregation:\n{folded:?}\nvs\n{reference:?}"
        );
        prop_assert_eq!(folded.cells as usize, cells.len());
        // The f64 sums agree to rounding even across orders.
        prop_assert!(
            (folded.energy_j - reference.energy_j).abs()
                <= 1e-9 * (1.0 + reference.energy_j.abs())
        );
        prop_assert!(
            (folded.snr_sum_db - reference.snr_sum_db).abs()
                <= 1e-9 * (1.0 + reference.snr_sum_db.abs())
        );
    }

    /// Node-by-node streaming (`begin_run` + `observe_node`) is exactly the
    /// `Vec` aggregation — including bit-equal f64 sums, since the fold
    /// order is identical.
    #[test]
    fn streaming_fold_is_bit_exact_in_report_order(
        entropy in proptest::collection::vec(any::<u64>(), 1..64),
    ) {
        let report = run_report(reports_from_entropy(&entropy));
        let reference = CampaignAggregate::from_report(&report);
        let mut streamed = CampaignAggregate::new();
        streamed.begin_run(report.frames, report.frame_s, report.payload_bytes);
        for node in &report.nodes {
            streamed.observe_node(node);
        }
        prop_assert_eq!(&streamed, &reference);
        prop_assert_eq!(streamed.energy_j.to_bits(), reference.energy_j.to_bits());
        prop_assert_eq!(streamed.snr_sum_db.to_bits(), reference.snr_sum_db.to_bits());
    }

    /// Merging never grows the bucket footprint: memory stays O(buckets)
    /// no matter how many nodes or cells fold in.
    #[test]
    fn bucket_footprint_is_constant(
        entropy in proptest::collection::vec(any::<u64>(), 1..48),
    ) {
        let empty = CampaignAggregate::new();
        let folded = CampaignAggregate::from_report(&run_report(reports_from_entropy(&entropy)));
        prop_assert_eq!(folded.bucket_footprint(), empty.bucket_footprint());
    }
}
