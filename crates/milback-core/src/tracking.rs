//! Position tracking over localization fixes: a constant-velocity Kalman
//! filter in the 2-D evaluation plane.
//!
//! The paper localizes a static node per packet; applications like VR
//! (§1) track a *moving* one. Fusing the per-packet fixes through a
//! motion model smooths the centimeter-level measurement noise and rides
//! through occasional dropped fixes.

use crate::engine::{ps_to_secs, TimePs};
use crate::error::{MilbackError, Result};
use crate::localization::LocationFix;
use mmwave_rf::channel::Vec2;
use serde::{Deserialize, Serialize};

/// State: position and velocity in the AP frame.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrackState {
    /// Position, meters.
    pub position: Vec2,
    /// Velocity, meters/second.
    pub velocity: Vec2,
}

/// A constant-velocity Kalman tracker with decoupled x/y axes (the
/// measurement noise of a range/angle fix is treated as isotropic in
/// Cartesian space at the fix's position — adequate at the paper's
/// accuracies).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Tracker {
    /// Process noise: RMS acceleration the motion model absorbs, m/s².
    pub accel_sigma: f64,
    /// Measurement noise: RMS position error of one fix, m.
    pub fix_sigma: f64,
    state: Option<TrackState>,
    // Per-axis covariance [[p_pp, p_pv], [p_pv, p_vv]] (same for x and y).
    cov: [[f64; 2]; 2],
}

impl Tracker {
    /// Creates a tracker. Defaults match a hand-held node (≤ ~2 m/s²) and
    /// the Fig 12 fix accuracy (~3 cm).
    pub fn new() -> Self {
        Self {
            accel_sigma: 2.0,
            fix_sigma: 0.03,
            state: None,
            cov: [[1.0, 0.0], [0.0, 1.0]],
        }
    }

    /// Overrides the noise parameters.
    pub fn with_noise(mut self, accel_sigma: f64, fix_sigma: f64) -> Self {
        assert!(accel_sigma > 0.0 && fix_sigma > 0.0);
        self.accel_sigma = accel_sigma;
        self.fix_sigma = fix_sigma;
        self
    }

    /// Current estimate, if initialized.
    pub fn state(&self) -> Option<TrackState> {
        self.state
    }

    /// Predicts the state `dt` seconds ahead without a measurement (used
    /// for dropped fixes and for rendering between packets).
    pub fn predict(&mut self, dt: f64) {
        assert!(dt >= 0.0, "time cannot run backwards");
        let Some(mut s) = self.state else { return };
        self.advance(&mut s, dt);
        self.state = Some(s);
    }

    /// Motion-model step on an explicit state: position extrapolation plus
    /// covariance propagation P = F P Fᵀ + Q.
    fn advance(&mut self, s: &mut TrackState, dt: f64) {
        assert!(dt >= 0.0, "time cannot run backwards");
        s.position.x += s.velocity.x * dt;
        s.position.y += s.velocity.y * dt;
        let [[ppp, ppv], [_, pvv]] = self.cov;
        let q = self.accel_sigma * self.accel_sigma;
        let q11 = q * dt.powi(4) / 4.0;
        let q12 = q * dt.powi(3) / 2.0;
        let q22 = q * dt * dt;
        let n_pp = ppp + 2.0 * dt * ppv + dt * dt * pvv + q11;
        let n_pv = ppv + dt * pvv + q12;
        let n_vv = pvv + q22;
        self.cov = [[n_pp, n_pv], [n_pv, n_vv]];
    }

    /// Ingests a fix taken `dt` seconds after the previous update.
    pub fn update(&mut self, fix: &LocationFix, dt: f64) -> TrackState {
        match self.state {
            None => {
                let s = TrackState {
                    position: fix.position,
                    velocity: Vec2::new(0.0, 0.0),
                };
                self.state = Some(s);
                self.cov = [[self.fix_sigma * self.fix_sigma, 0.0], [0.0, 4.0]];
                s
            }
            Some(mut s) => {
                self.advance(&mut s, dt);
                let r = self.fix_sigma * self.fix_sigma;
                let [[ppp, ppv], [_, pvv]] = self.cov;
                let k_p = ppp / (ppp + r);
                let k_v = ppv / (ppp + r);
                let inn_x = fix.position.x - s.position.x;
                let inn_y = fix.position.y - s.position.y;
                s.position.x += k_p * inn_x;
                s.position.y += k_p * inn_y;
                s.velocity.x += k_v * inn_x;
                s.velocity.y += k_v * inn_y;
                let n_pp = (1.0 - k_p) * ppp;
                let n_pv = (1.0 - k_p) * ppv;
                let n_vv = pvv - k_v * ppv;
                self.cov = [[n_pp, n_pv], [n_pv, n_vv]];
                self.state = Some(s);
                s
            }
        }
    }

    /// Positional uncertainty (1σ) of the current estimate, meters.
    pub fn position_sigma(&self) -> f64 {
        self.cov[0][0].max(0.0).sqrt()
    }
}

impl Default for Tracker {
    fn default() -> Self {
        Self::new()
    }
}

/// A [`Tracker`] driven by the engine clock.
///
/// Event handlers hold absolute [`TimePs`] stamps, not deltas; this wrapper
/// derives each `dt` from consecutive stamps so a tracking actor can ingest
/// fixes straight from its events. Because engine time never runs
/// backwards, a reversed stamp is reported as an engine error instead of
/// panicking mid-run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimedTracker {
    tracker: Tracker,
    last_ps: Option<TimePs>,
}

impl TimedTracker {
    /// Wraps a tracker; the first ingested fix initializes it.
    pub fn new(tracker: Tracker) -> Self {
        Self {
            tracker,
            last_ps: None,
        }
    }

    /// Ingests a fix taken at absolute engine time `at_ps`.
    pub fn ingest(&mut self, at_ps: TimePs, fix: &LocationFix) -> Result<TrackState> {
        let dt = match self.last_ps {
            None => 0.0,
            Some(last) if at_ps >= last => ps_to_secs(at_ps - last),
            Some(last) => {
                return Err(MilbackError::Engine(format!(
                    "fix at {at_ps} ps precedes the previous fix at {last} ps"
                )))
            }
        };
        self.last_ps = Some(at_ps);
        Ok(self.tracker.update(fix, dt))
    }

    /// Coasts the motion model to `at_ps` without a measurement (dropped
    /// fix / rendering between packets).
    pub fn coast_to(&mut self, at_ps: TimePs) -> Result<()> {
        let Some(last) = self.last_ps else {
            return Ok(());
        };
        if at_ps < last {
            return Err(MilbackError::Engine(format!(
                "cannot coast to {at_ps} ps before the last fix at {last} ps"
            )));
        }
        self.tracker.predict(ps_to_secs(at_ps - last));
        self.last_ps = Some(at_ps);
        Ok(())
    }

    /// Engine time of the most recent ingest/coast, if any.
    pub fn last_ps(&self) -> Option<TimePs> {
        self.last_ps
    }

    /// The wrapped tracker (state, uncertainty).
    pub fn tracker(&self) -> &Tracker {
        &self.tracker
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmwave_sigproc::random::GaussianSource;

    fn fix_at(x: f64, y: f64) -> LocationFix {
        let position = Vec2::new(x, y);
        LocationFix {
            range_m: (x * x + y * y).sqrt(),
            angle_rad: y.atan2(x),
            position,
            confidence_db: 20.0,
        }
    }

    #[test]
    fn first_fix_initializes() {
        let mut t = Tracker::new();
        assert!(t.state().is_none());
        let s = t.update(&fix_at(3.0, 1.0), 0.0);
        assert_eq!(s.position, Vec2::new(3.0, 1.0));
        assert_eq!(s.velocity, Vec2::new(0.0, 0.0));
    }

    #[test]
    fn static_node_estimate_tightens() {
        // A static node: use a tight motion model so velocity noise damps.
        let mut t = Tracker::new().with_noise(0.3, 0.03);
        let mut rng = GaussianSource::new(1);
        let mut last_sigma = f64::MAX;
        for i in 0..30 {
            let fix = fix_at(4.0 + rng.sample(0.03), rng.sample(0.03));
            t.update(&fix, if i == 0 { 0.0 } else { 0.1 });
            if i > 5 {
                assert!(t.position_sigma() <= last_sigma * 1.2);
            }
            last_sigma = t.position_sigma();
        }
        let s = t.state().unwrap();
        assert!((s.position.x - 4.0).abs() < 0.03);
        assert!(
            s.velocity.x.abs() < 0.2,
            "residual velocity {}",
            s.velocity.x
        );
    }

    #[test]
    fn tracks_constant_velocity() {
        let mut t = Tracker::new();
        let mut rng = GaussianSource::new(2);
        let v = 0.8; // m/s along +y
        let dt = 0.1;
        for i in 0..50 {
            let y = v * i as f64 * dt;
            let fix = fix_at(3.0 + rng.sample(0.03), y + rng.sample(0.03));
            t.update(&fix, if i == 0 { 0.0 } else { dt });
        }
        let s = t.state().unwrap();
        assert!(
            (s.velocity.y - v).abs() < 0.15,
            "velocity {:.2}",
            s.velocity.y
        );
        assert!((s.position.y - v * 49.0 * dt).abs() < 0.05);
    }

    #[test]
    fn smoothing_beats_raw_fixes() {
        // RMS error of the filtered track must beat the raw measurement
        // RMS for a static node.
        let mut t = Tracker::new();
        let mut rng = GaussianSource::new(3);
        let mut raw_se = 0.0;
        let mut filt_se = 0.0;
        let n = 100;
        for i in 0..n {
            let fix = fix_at(5.0 + rng.sample(0.05), rng.sample(0.05));
            let s = t.update(&fix, if i == 0 { 0.0 } else { 0.05 });
            if i >= 10 {
                raw_se += (fix.position.x - 5.0).powi(2) + fix.position.y.powi(2);
                filt_se += (s.position.x - 5.0).powi(2) + s.position.y.powi(2);
            }
        }
        assert!(
            filt_se < raw_se * 0.6,
            "filtered {:.4} !≪ raw {:.4}",
            filt_se,
            raw_se
        );
    }

    #[test]
    fn prediction_rides_through_dropped_fixes() {
        let mut t = Tracker::new();
        let mut rng = GaussianSource::new(4);
        let dt = 0.1;
        let v = 1.0;
        for i in 0..30 {
            let fix = fix_at(2.0 + v * i as f64 * dt + rng.sample(0.02), 0.0);
            t.update(&fix, if i == 0 { 0.0 } else { dt });
        }
        // Five dropped packets: coast on the motion model.
        t.predict(5.0 * dt);
        let s = t.state().unwrap();
        let expected_x = 2.0 + v * (29.0 + 5.0) * dt;
        assert!(
            (s.position.x - expected_x).abs() < 0.15,
            "coasted to {:.2}",
            s.position.x
        );
        // Uncertainty must have grown while coasting.
        assert!(t.position_sigma() > 0.01);
    }

    #[test]
    fn predict_without_state_is_noop() {
        let mut t = Tracker::new();
        t.predict(1.0);
        assert!(t.state().is_none());
    }

    #[test]
    #[should_panic(expected = "time cannot run backwards")]
    fn negative_dt_rejected() {
        let mut t = Tracker::new();
        t.update(&fix_at(1.0, 0.0), 0.0);
        t.predict(-0.1);
    }

    #[test]
    fn timed_tracker_matches_dt_driven_updates() {
        use crate::engine::secs_to_ps;
        let mut raw = Tracker::new();
        let mut timed = TimedTracker::new(Tracker::new());
        let dt = 0.1;
        for i in 0..20 {
            let fix = fix_at(3.0 + 0.5 * i as f64 * dt, 1.0);
            let a = raw.update(&fix, if i == 0 { 0.0 } else { dt });
            let b = timed.ingest(secs_to_ps(i as f64 * dt), &fix).unwrap();
            assert_eq!(a.position, b.position, "step {i}");
            assert_eq!(a.velocity, b.velocity, "step {i}");
        }
        assert_eq!(timed.last_ps(), Some(secs_to_ps(1.9)));
    }

    #[test]
    fn timed_tracker_rejects_time_reversal() {
        use crate::engine::secs_to_ps;
        let mut t = TimedTracker::new(Tracker::new());
        t.ingest(secs_to_ps(1.0), &fix_at(1.0, 0.0)).unwrap();
        let err = t.ingest(secs_to_ps(0.5), &fix_at(1.0, 0.0)).unwrap_err();
        assert!(matches!(err, crate::error::MilbackError::Engine(_)));
        assert!(t.coast_to(secs_to_ps(0.5)).is_err());
        // Coasting forward works and advances the clock.
        t.coast_to(secs_to_ps(2.0)).unwrap();
        assert_eq!(t.last_ps(), Some(secs_to_ps(2.0)));
        assert!(t.tracker().state().is_some());
    }

    #[test]
    fn coast_without_state_is_noop() {
        let mut t = TimedTracker::new(Tracker::new());
        t.coast_to(500).unwrap();
        assert_eq!(t.last_ps(), None);
    }
}
