//! The AP service pipeline: **Capture → Plan → Transmit** as explicit
//! stages of the discrete-event engine.
//!
//! The paper's MAC results treat the AP as an instantaneous oracle: a
//! granted slot is captured, planned, and served inside one event, so AP
//! compute contention is invisible no matter how many nodes a cell holds.
//! This module turns the AP into the staged reader the DragonFly /
//! full-duplex ISAC line of work models: every grant flows through three
//! serial service stages, each with its own integer-picosecond processing
//! latency and a bounded FIFO queue, so "heavy traffic" becomes a
//! measurable quantity — offered load vs served load vs overflow.
//!
//! # Determinism contract
//!
//! The [`ApServiceConfig::instantaneous`] configuration (zero latency per
//! stage, unbounded queues, zero jitter) reproduces the pre-pipeline
//! campaign **bit-for-bit**: no stage ever queues behind another, every
//! grant completes its three stages at the instant it was offered (engine
//! `seq` ordering keeps same-instant chains in posting order), and no
//! randomness is drawn. With jitter enabled, every latency draw comes from
//! a SplitMix64 state seeded once from the trial RNG stream — the same
//! discipline the backoff policies use — so runs stay bit-identical at any
//! `MILBACK_THREADS` setting.
//!
//! # Overflow policies
//!
//! A bounded stage queue must decide what to do with a grant that arrives
//! while the stage is busy and its queue is full ([`OverflowPolicy`]):
//!
//! * [`Drop`](OverflowPolicy::Drop) — the grant is discarded; the AP never
//!   captures the transmission, so it reaches no ledger.
//! * [`Defer`](OverflowPolicy::Defer) — the grant is still admitted (the
//!   backlog spills past the bound, modeling a slower external buffer) but
//!   every such admission is counted as a deferral.
//! * [`Degrade`](OverflowPolicy::Degrade) — the grant is admitted with a
//!   *cheaper plan*: its Plan stage costs zero latency and the AP skips
//!   SDM arbitration at transmit (a multi-node group degrades to a
//!   collision), trading concurrency for pipeline relief.

use crate::engine::TimePs;
use serde::{Deserialize, Serialize};

/// What a bounded stage queue does with a grant that finds it full.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OverflowPolicy {
    /// Discard the grant; it reaches no ledger.
    Drop,
    /// Admit past the bound, counting each spill as a deferral.
    Defer,
    /// Admit with a cheaper plan (zero-latency Plan stage, no SDM
    /// arbitration), counting each admission as a degradation.
    Degrade,
}

/// The three AP service stages, in pipeline order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StageKind {
    /// Front-end capture of the granted transmission.
    Capture,
    /// Carrier/beam plan computation.
    Plan,
    /// The transmission itself: SDM arbitration plus channel service.
    Transmit,
}

impl StageKind {
    /// The stages in pipeline order.
    pub const ALL: [StageKind; 3] = [StageKind::Capture, StageKind::Plan, StageKind::Transmit];

    /// A stable label for event traces and metric names.
    pub fn label(self) -> &'static str {
        match self {
            StageKind::Capture => "stage_capture",
            StageKind::Plan => "stage_plan",
            StageKind::Transmit => "stage_transmit",
        }
    }

    /// The metric name of this stage's queue-occupancy histogram.
    pub fn occupancy_metric(self) -> &'static str {
        match self {
            StageKind::Capture => "ap_queue_capture",
            StageKind::Plan => "ap_queue_plan",
            StageKind::Transmit => "ap_queue_transmit",
        }
    }

    /// The next stage downstream, if any.
    pub fn next(self) -> Option<StageKind> {
        match self {
            StageKind::Capture => Some(StageKind::Plan),
            StageKind::Plan => Some(StageKind::Transmit),
            StageKind::Transmit => None,
        }
    }
}

/// Configuration of the AP service pipeline: per-stage processing
/// latencies (integer picoseconds), the per-stage queue bound, the
/// overflow policy, and an optional uniform latency jitter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ApServiceConfig {
    /// Capture-stage processing latency, picoseconds.
    pub capture_ps: TimePs,
    /// Plan-stage processing latency, picoseconds.
    pub plan_ps: TimePs,
    /// Transmit-stage processing latency, picoseconds.
    pub transmit_ps: TimePs,
    /// Per-stage queue bound (jobs waiting behind the one in service);
    /// `None` is unbounded.
    pub queue_capacity: Option<usize>,
    /// What a full stage queue does with a new grant.
    pub overflow: OverflowPolicy,
    /// Uniform latency jitter bound, picoseconds: each stage service adds
    /// `draw % (jitter_ps + 1)` from a SplitMix64 state seeded once from
    /// the trial stream. Zero draws nothing (the parity configuration).
    pub jitter_ps: TimePs,
}

impl ApServiceConfig {
    /// The pre-pipeline AP: zero latency per stage, unbounded queues, no
    /// jitter. Campaigns under this configuration are bit-exact with the
    /// pre-refactor inline service — the parity suite proves it.
    pub fn instantaneous() -> Self {
        Self {
            capture_ps: 0,
            plan_ps: 0,
            transmit_ps: 0,
            queue_capacity: None,
            overflow: OverflowPolicy::Drop,
            jitter_ps: 0,
        }
    }

    /// Whether this is the bit-exact parity configuration (no latency, no
    /// bound, no jitter — the pipeline collapses to the inline service).
    pub fn is_instantaneous(&self) -> bool {
        self.capture_ps == 0
            && self.plan_ps == 0
            && self.transmit_ps == 0
            && self.queue_capacity.is_none()
            && self.jitter_ps == 0
    }

    /// Sets the three stage latencies, picoseconds.
    pub fn with_stage_latencies(
        mut self,
        capture_ps: TimePs,
        plan_ps: TimePs,
        transmit_ps: TimePs,
    ) -> Self {
        self.capture_ps = capture_ps;
        self.plan_ps = plan_ps;
        self.transmit_ps = transmit_ps;
        self
    }

    /// Bounds every stage queue at `capacity` waiting jobs under `overflow`.
    pub fn with_queue(mut self, capacity: usize, overflow: OverflowPolicy) -> Self {
        self.queue_capacity = Some(capacity);
        self.overflow = overflow;
        self
    }

    /// Adds uniform latency jitter up to `jitter_ps` per stage service.
    pub fn with_jitter(mut self, jitter_ps: TimePs) -> Self {
        self.jitter_ps = jitter_ps;
        self
    }

    /// The base latency of one stage, picoseconds (jitter excluded).
    pub fn stage_latency_ps(&self, stage: StageKind) -> TimePs {
        match stage {
            StageKind::Capture => self.capture_ps,
            StageKind::Plan => self.plan_ps,
            StageKind::Transmit => self.transmit_ps,
        }
    }

    /// End-to-end base latency of one uncontended grant, picoseconds.
    pub fn total_latency_ps(&self) -> TimePs {
        self.capture_ps + self.plan_ps + self.transmit_ps
    }
}

impl Default for ApServiceConfig {
    fn default() -> Self {
        Self::instantaneous()
    }
}

/// Campaign-wide AP service accounting: what was offered to the pipeline
/// and what became of it. Carried by every campaign report and folded into
/// the streaming [`CampaignAggregate`](crate::network::CampaignAggregate),
/// so city-scale runs report pipeline saturation without per-grant memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ApServiceStats {
    /// Grants offered to the Capture stage (one per fired slot).
    pub offered: u64,
    /// Grants that completed all three stages.
    pub served: u64,
    /// Grants discarded by a full queue under [`OverflowPolicy::Drop`].
    pub dropped: u64,
    /// Grants admitted past a full queue under [`OverflowPolicy::Defer`].
    pub deferred: u64,
    /// Grants degraded to a cheaper plan under [`OverflowPolicy::Degrade`].
    pub degraded: u64,
}

impl ApServiceStats {
    /// Sums another run's accounting into this one (exact u64 adds, so
    /// any merge order agrees).
    pub fn merge_from(&mut self, other: &Self) {
        self.offered += other.offered;
        self.served += other.served;
        self.dropped += other.dropped;
        self.deferred += other.deferred;
        self.degraded += other.degraded;
    }

    /// Grants that hit a full queue, regardless of policy.
    pub fn overflowed(&self) -> u64 {
        self.dropped + self.deferred + self.degraded
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_the_instantaneous_parity_config() {
        let c = ApServiceConfig::default();
        assert!(c.is_instantaneous());
        assert_eq!(c.total_latency_ps(), 0);
        assert_eq!(c, ApServiceConfig::instantaneous());
    }

    #[test]
    fn builders_leave_the_parity_config() {
        let c = ApServiceConfig::instantaneous().with_stage_latencies(10, 20, 30);
        assert!(!c.is_instantaneous());
        assert_eq!(c.total_latency_ps(), 60);
        assert_eq!(c.stage_latency_ps(StageKind::Plan), 20);
        let c = ApServiceConfig::instantaneous().with_queue(4, OverflowPolicy::Defer);
        assert!(!c.is_instantaneous());
        assert_eq!(c.queue_capacity, Some(4));
        let c = ApServiceConfig::instantaneous().with_jitter(7);
        assert!(!c.is_instantaneous());
    }

    #[test]
    fn stage_order_and_labels_are_stable() {
        assert_eq!(StageKind::Capture.next(), Some(StageKind::Plan));
        assert_eq!(StageKind::Plan.next(), Some(StageKind::Transmit));
        assert_eq!(StageKind::Transmit.next(), None);
        let labels: Vec<_> = StageKind::ALL.iter().map(|s| s.label()).collect();
        assert_eq!(labels, ["stage_capture", "stage_plan", "stage_transmit"]);
        let metrics: Vec<_> = StageKind::ALL
            .iter()
            .map(|s| s.occupancy_metric())
            .collect();
        assert_eq!(
            metrics,
            ["ap_queue_capture", "ap_queue_plan", "ap_queue_transmit"]
        );
    }

    #[test]
    fn stats_merge_is_exact_and_order_free() {
        let a = ApServiceStats {
            offered: 10,
            served: 7,
            dropped: 1,
            deferred: 2,
            degraded: 0,
        };
        let b = ApServiceStats {
            offered: 5,
            served: 5,
            dropped: 0,
            deferred: 0,
            degraded: 3,
        };
        let mut ab = a;
        ab.merge_from(&b);
        let mut ba = b;
        ba.merge_from(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.offered, 15);
        assert_eq!(ab.overflowed(), 6);
    }
}
