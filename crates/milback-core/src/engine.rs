//! Deterministic discrete-event engine: the shared clock and medium every
//! orchestration layer (session, network rounds, tracking) runs on.
//!
//! The paper's §7 protocol is a *timeline* — Field 1 → Field 2 → payload
//! slots, across one or many nodes — but a synchronous call tree can only
//! express one fixed interleaving of it. This engine turns the timeline
//! into data: actors post timed events into one queue, the engine pops
//! them in a total order, and every layer (AP carrier planning, node
//! firmware, slot scheduling, trackers) reacts to the same clock.
//!
//! # Determinism contract
//!
//! * Events are totally ordered by `(time_ps, seq)`. `seq` is a
//!   monotonically increasing counter assigned when the event is posted,
//!   so same-time events fire in exactly the order they were scheduled —
//!   there is no hash-map, thread, or allocation order anywhere in the
//!   dispatch path.
//! * Time is held in integer picoseconds ([`TimePs`]). Integer time makes
//!   `t1 == t2` meaningful (no float drift between "the slot boundary"
//!   computed two ways) and spans ~213 days, far beyond any simulated
//!   window.
//! * All randomness lives in the medium (one [`mmwave_sigproc::random::GaussianSource`] stream per
//!   trial, per the runner's per-trial stream contract). Handlers draw
//!   from it only inside `on_event`, and events fire in a deterministic
//!   order, so a fixed seed reproduces every draw bit-for-bit — at any
//!   worker-thread count, because one engine run is single-threaded by
//!   construction and trial-level parallelism composes around it.
//!
//! # Actor lifecycle
//!
//! Actors are registered up front with [`Engine::add_actor`] and live for
//! the whole run. A handler receives the current time, the event, mutable
//! access to the shared medium, and an [`Outbox`] for posting follow-up
//! events; it never sees the queue or other actors directly, so all
//! inter-actor communication is timed events through the queue. The run
//! ends when the queue drains ([`Engine::run`]) or a horizon is reached
//! ([`Engine::run_until`]).

use crate::error::{MilbackError, Result};
use crate::telemetry::{Histogram, TraceRecord, TraceSink, OCCUPANCY_BUCKETS};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Simulation time in integer picoseconds.
pub type TimePs = u64;

/// Picoseconds per second.
pub const PS_PER_S: f64 = 1e12;

/// Converts seconds to picoseconds (rounded to the nearest tick).
///
/// Negative durations are a caller bug the engine cannot schedule;
/// they saturate to zero rather than wrapping.
pub fn secs_to_ps(s: f64) -> TimePs {
    if s <= 0.0 {
        0
    } else {
        (s * PS_PER_S).round() as TimePs
    }
}

/// Converts picoseconds back to seconds.
pub fn ps_to_secs(ps: TimePs) -> f64 {
    ps as f64 / PS_PER_S
}

/// Identifies a registered actor within one engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ActorId(pub usize);

/// One scheduled event: destination plus payload, ordered by `(at_ps, seq)`.
#[derive(Debug, Clone)]
struct Scheduled<E> {
    at_ps: TimePs,
    seq: u64,
    dst: ActorId,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at_ps == other.at_ps && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at_ps, self.seq).cmp(&(other.at_ps, other.seq))
    }
}

/// The posting surface handed to actors while they handle an event.
///
/// Events posted here are merged into the queue *after* the handler
/// returns, in posting order, each with its own fresh `seq` — so a
/// handler that posts A then B at the same instant always sees A fire
/// first.
#[derive(Debug)]
pub struct Outbox<E> {
    now_ps: TimePs,
    posted: Vec<(TimePs, ActorId, E)>,
}

impl<E> Outbox<E> {
    /// The instant the current event fired.
    pub fn now_ps(&self) -> TimePs {
        self.now_ps
    }

    /// Posts `event` to `dst` at absolute time `at_ps`.
    ///
    /// Scheduling into the past is a protocol bug; it is clamped to `now`
    /// (the event still fires, after everything already queued for `now`).
    pub fn post_at(&mut self, at_ps: TimePs, dst: ActorId, event: E) {
        self.posted.push((at_ps.max(self.now_ps), dst, event));
    }

    /// Posts `event` to `dst` after a delay of `delay_s` seconds.
    pub fn post_after(&mut self, delay_s: f64, dst: ActorId, event: E) {
        self.post_at(self.now_ps + secs_to_ps(delay_s), dst, event);
    }

    /// Posts `event` to `dst` at the current instant (fires after all
    /// events already queued for `now`).
    pub fn post_now(&mut self, dst: ActorId, event: E) {
        self.post_at(self.now_ps, dst, event);
    }
}

/// A timed actor: anything that consumes events against the shared medium.
///
/// `M` is the medium type (channel, RNG stream, shared state); `E` the
/// event payload the engine routes.
pub trait Actor<M, E> {
    /// Reacts to one event addressed to this actor.
    fn on_event(
        &mut self,
        now_ps: TimePs,
        event: &E,
        medium: &mut M,
        out: &mut Outbox<E>,
    ) -> Result<()>;
}

/// Statistics of one engine run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EngineStats {
    /// Events dispatched.
    pub events_dispatched: usize,
    /// The time of the last dispatched event, picoseconds.
    pub end_time_ps: TimePs,
}

/// Labels an event kind for trace capture; must be a pure function of
/// the event value.
pub type EventLabeler<E> = fn(&E) -> &'static str;

/// Lossless per-label queue-depth tallies, counted at dispatch.
///
/// The bounded [`TraceBuffer`](crate::telemetry::TraceBuffer) ring also
/// carries a depth per `Event` record, but a long campaign evicts its
/// oldest records, so any histogram *reconstructed* from the ring is
/// silently truncated. These tallies are aggregated as events pop — one
/// [`Histogram`] over [`OCCUPANCY_BUCKETS`] per event label — so they stay
/// exact for campaigns of any length, and a staged pipeline's per-stage
/// event kinds get per-stage depth distributions for free.
#[derive(Debug, Clone, Default)]
pub struct DepthStats {
    entries: Vec<(&'static str, Histogram)>,
}

impl DepthStats {
    fn observe(&mut self, label: &'static str, depth: usize) {
        let idx = match self.entries.iter().position(|(n, _)| *n == label) {
            Some(i) => i,
            None => {
                self.entries
                    .push((label, Histogram::new(OCCUPANCY_BUCKETS)));
                self.entries.len() - 1
            }
        };
        self.entries[idx].1.observe(depth as f64);
    }

    /// The tallies, one per label in first-dispatch order.
    pub fn entries(&self) -> impl Iterator<Item = (&'static str, &Histogram)> + '_ {
        self.entries.iter().map(|(n, h)| (*n, h))
    }

    /// Total dispatches tallied across every label.
    pub fn total_count(&self) -> u64 {
        self.entries.iter().map(|(_, h)| h.count).sum()
    }
}

/// The discrete-event engine: one queue, one clock, one shared medium.
pub struct Engine<M, E> {
    now_ps: TimePs,
    seq: u64,
    queue: BinaryHeap<Reverse<Scheduled<E>>>,
    actors: Vec<Box<dyn Actor<M, E>>>,
    /// Optional dispatch tracer: the sink plus a labeler naming each
    /// event kind. Stored as a plain `fn` pointer so `E` needs no trait
    /// bound and an un-traced engine is unchanged. Recording happens
    /// *after* the pop, from values already computed for dispatch, so
    /// tracing can never reorder or perturb the run.
    tracer: Option<(TraceSink, EventLabeler<E>)>,
    /// Optional lossless queue-depth tallies (see [`DepthStats`]): counted
    /// from values already computed for dispatch, never from the trace
    /// ring, so they cannot truncate or perturb the run.
    depth_stats: Option<(DepthStats, EventLabeler<E>)>,
    /// The shared medium every handler sees (`&mut` during dispatch).
    pub medium: M,
}

impl<M, E> Engine<M, E> {
    /// Creates an engine at `t = 0` over a medium.
    pub fn new(medium: M) -> Self {
        Self {
            now_ps: 0,
            seq: 0,
            queue: BinaryHeap::new(),
            actors: Vec::new(),
            tracer: None,
            depth_stats: None,
            medium,
        }
    }

    /// Attaches a dispatch tracer: every popped event is recorded as a
    /// [`TraceRecord::Event`] with `(time_ps, seq, actor, kind)` plus the
    /// queue depth after the pop. `label` names the event kind and must be
    /// a pure function of the event value.
    pub fn set_tracer(&mut self, sink: TraceSink, label: EventLabeler<E>) {
        self.tracer = Some((sink, label));
    }

    /// Enables lossless per-label queue-depth tallies: every popped event
    /// counts the post-pop queue depth into its label's [`Histogram`].
    /// Unlike the trace ring, nothing is ever evicted — the tallies stay
    /// exact for campaigns of any length.
    pub fn enable_depth_stats(&mut self, label: EventLabeler<E>) {
        self.depth_stats = Some((DepthStats::default(), label));
    }

    /// Takes the accumulated depth tallies out of the engine (`None` when
    /// [`enable_depth_stats`](Self::enable_depth_stats) was never called).
    pub fn take_depth_stats(&mut self) -> Option<DepthStats> {
        self.depth_stats.take().map(|(stats, _)| stats)
    }

    /// Registers an actor and returns its id.
    pub fn add_actor(&mut self, actor: Box<dyn Actor<M, E>>) -> ActorId {
        self.actors.push(actor);
        ActorId(self.actors.len() - 1)
    }

    /// Number of registered actors.
    pub fn actor_count(&self) -> usize {
        self.actors.len()
    }

    /// The engine clock (time of the most recently dispatched event).
    pub fn now_ps(&self) -> TimePs {
        self.now_ps
    }

    /// Posts an event from outside any handler (the initial script).
    pub fn post(&mut self, at_ps: TimePs, dst: ActorId, event: E) {
        let entry = Scheduled {
            at_ps: at_ps.max(self.now_ps),
            seq: self.seq,
            dst,
            event,
        };
        self.seq += 1;
        self.queue.push(Reverse(entry));
    }

    /// Immutable access to a registered actor (for reading results out
    /// after a run).
    pub fn actor(&self, id: ActorId) -> Option<&dyn Actor<M, E>> {
        self.actors.get(id.0).map(|a| a.as_ref())
    }

    /// Runs until the queue drains. Returns the run statistics.
    ///
    /// A handler error aborts the run immediately with the queue state
    /// preserved (the caller can inspect `now_ps` for the failure time).
    pub fn run(&mut self) -> Result<EngineStats> {
        self.run_until(TimePs::MAX)
    }

    /// Runs until the queue drains or the next event would fire after
    /// `horizon_ps` (that event stays queued).
    pub fn run_until(&mut self, horizon_ps: TimePs) -> Result<EngineStats> {
        let mut stats = EngineStats {
            events_dispatched: 0,
            end_time_ps: self.now_ps,
        };
        while let Some(Reverse(head)) = self.queue.peek() {
            if head.at_ps > horizon_ps {
                break;
            }
            let Some(Reverse(entry)) = self.queue.pop() else {
                break;
            };
            debug_assert!(
                entry.at_ps >= self.now_ps,
                "queue delivered an event from the past"
            );
            self.now_ps = entry.at_ps;
            if let Some((sink, label)) = &self.tracer {
                sink.record(TraceRecord::Event {
                    time_ps: entry.at_ps,
                    seq: entry.seq,
                    actor: entry.dst.0,
                    kind: label(&entry.event),
                    queue_depth: self.queue.len(),
                });
            }
            if let Some((stats, label)) = &mut self.depth_stats {
                stats.observe(label(&entry.event), self.queue.len());
            }
            let actor = self.actors.get_mut(entry.dst.0).ok_or_else(|| {
                MilbackError::Engine(format!(
                    "event addressed to unregistered actor {}",
                    entry.dst.0
                ))
            })?;
            let mut out = Outbox {
                now_ps: entry.at_ps,
                posted: Vec::new(),
            };
            actor.on_event(entry.at_ps, &entry.event, &mut self.medium, &mut out)?;
            for (at_ps, dst, event) in out.posted {
                let seq = self.seq;
                self.seq += 1;
                self.queue.push(Reverse(Scheduled {
                    at_ps,
                    seq,
                    dst,
                    event,
                }));
            }
            stats.events_dispatched += 1;
            stats.end_time_ps = self.now_ps;
        }
        Ok(stats)
    }

    /// Consumes the engine, returning the medium (with whatever results
    /// the run deposited in it).
    pub fn into_medium(self) -> M {
        self.medium
    }
}

impl<M: std::fmt::Debug, E: std::fmt::Debug> std::fmt::Debug for Engine<M, E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("now_ps", &self.now_ps)
            .field("seq", &self.seq)
            .field("queued", &self.queue.len())
            .field("actors", &self.actors.len())
            .field("medium", &self.medium)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Test actor: records `(time, tag)` pairs into a shared log and
    /// optionally posts follow-ups.
    struct Recorder {
        tag: u32,
        follow_up: Option<(f64, u32)>,
    }

    type Log = Vec<(TimePs, u32, u32)>;

    impl Actor<Log, u32> for Recorder {
        fn on_event(
            &mut self,
            now_ps: TimePs,
            event: &u32,
            log: &mut Log,
            out: &mut Outbox<u32>,
        ) -> Result<()> {
            log.push((now_ps, self.tag, *event));
            if let Some((delay_s, ev)) = self.follow_up.take() {
                out.post_after(delay_s, ActorId(0), ev);
            }
            Ok(())
        }
    }

    #[test]
    fn events_fire_in_time_order() {
        let mut e: Engine<Log, u32> = Engine::new(Vec::new());
        let a = e.add_actor(Box::new(Recorder {
            tag: 1,
            follow_up: None,
        }));
        e.post(secs_to_ps(3e-6), a, 30);
        e.post(secs_to_ps(1e-6), a, 10);
        e.post(secs_to_ps(2e-6), a, 20);
        let stats = e.run().unwrap();
        assert_eq!(stats.events_dispatched, 3);
        assert_eq!(stats.end_time_ps, secs_to_ps(3e-6));
        let events: Vec<u32> = e.medium.iter().map(|&(_, _, ev)| ev).collect();
        assert_eq!(events, vec![10, 20, 30]);
    }

    #[test]
    fn same_time_events_fire_in_posting_order() {
        let mut e: Engine<Log, u32> = Engine::new(Vec::new());
        let a = e.add_actor(Box::new(Recorder {
            tag: 1,
            follow_up: None,
        }));
        let b = e.add_actor(Box::new(Recorder {
            tag: 2,
            follow_up: None,
        }));
        for k in 0..8 {
            e.post(1000, if k % 2 == 0 { a } else { b }, k);
        }
        e.run().unwrap();
        let events: Vec<u32> = e.medium.iter().map(|&(_, _, ev)| ev).collect();
        assert_eq!(
            events,
            (0..8).collect::<Vec<_>>(),
            "seq must break time ties"
        );
    }

    #[test]
    fn handler_posted_events_are_dispatched() {
        let mut e: Engine<Log, u32> = Engine::new(Vec::new());
        let a = e.add_actor(Box::new(Recorder {
            tag: 1,
            follow_up: Some((5e-6, 99)),
        }));
        e.post(0, a, 1);
        e.run().unwrap();
        assert_eq!(e.medium.len(), 2);
        assert_eq!(e.medium[1], (secs_to_ps(5e-6), 1, 99));
    }

    #[test]
    fn run_until_respects_horizon() {
        let mut e: Engine<Log, u32> = Engine::new(Vec::new());
        let a = e.add_actor(Box::new(Recorder {
            tag: 1,
            follow_up: None,
        }));
        e.post(100, a, 1);
        e.post(200, a, 2);
        e.post(300, a, 3);
        let stats = e.run_until(250).unwrap();
        assert_eq!(stats.events_dispatched, 2);
        // The third event survives and fires on the next run.
        let stats = e.run().unwrap();
        assert_eq!(stats.events_dispatched, 1);
        assert_eq!(e.medium.len(), 3);
    }

    #[test]
    fn run_until_dispatches_events_exactly_at_the_horizon() {
        // The horizon is inclusive: an event at precisely `horizon_ps`
        // fires in this run; only strictly-later events stay queued.
        let mut e: Engine<Log, u32> = Engine::new(Vec::new());
        let a = e.add_actor(Box::new(Recorder {
            tag: 1,
            follow_up: None,
        }));
        e.post(249, a, 1);
        e.post(250, a, 2);
        e.post(251, a, 3);
        let stats = e.run_until(250).unwrap();
        assert_eq!(stats.events_dispatched, 2);
        assert_eq!(stats.end_time_ps, 250, "the horizon event itself fired");
        let events: Vec<u32> = e.medium.iter().map(|&(_, _, ev)| ev).collect();
        assert_eq!(events, vec![1, 2]);
        // A second run at the same horizon is a no-op — nothing at or
        // before 250 remains.
        let stats = e.run_until(250).unwrap();
        assert_eq!(stats.events_dispatched, 0);
        let stats = e.run_until(251).unwrap();
        assert_eq!(stats.events_dispatched, 1);
        assert_eq!(e.medium.len(), 3);
    }

    #[test]
    fn run_until_zero_horizon_fires_only_time_zero_events() {
        let mut e: Engine<Log, u32> = Engine::new(Vec::new());
        let a = e.add_actor(Box::new(Recorder {
            tag: 1,
            follow_up: None,
        }));
        e.post(0, a, 1);
        e.post(1, a, 2);
        let stats = e.run_until(0).unwrap();
        assert_eq!(stats.events_dispatched, 1);
        assert_eq!(e.medium, vec![(0, 1, 1)]);
    }

    /// Test actor posting a burst of same-timestamp events to two targets
    /// from inside a handler — the cross-actor tie-break scenario.
    struct Burster {
        targets: Vec<(ActorId, u32)>,
        at_ps: TimePs,
    }

    impl Actor<Log, u32> for Burster {
        fn on_event(
            &mut self,
            now_ps: TimePs,
            event: &u32,
            log: &mut Log,
            out: &mut Outbox<u32>,
        ) -> Result<()> {
            log.push((now_ps, 0, *event));
            for &(dst, ev) in &self.targets {
                out.post_at(self.at_ps, dst, ev);
            }
            Ok(())
        }
    }

    #[test]
    fn same_timestamp_posts_from_multiple_actors_keep_seq_order() {
        // Two bursters each post interleaved same-timestamp events to two
        // recorders; (time, seq) must serialize them in exact posting
        // order: first burster's posts (in its posting order), then the
        // second's — regardless of destination actor.
        let mut e: Engine<Log, u32> = Engine::new(Vec::new());
        let ra = e.add_actor(Box::new(Recorder {
            tag: 1,
            follow_up: None,
        }));
        let rb = e.add_actor(Box::new(Recorder {
            tag: 2,
            follow_up: None,
        }));
        let b1 = e.add_actor(Box::new(Burster {
            targets: vec![(ra, 10), (rb, 11), (ra, 12)],
            at_ps: 500,
        }));
        let b2 = e.add_actor(Box::new(Burster {
            targets: vec![(rb, 20), (ra, 21), (rb, 22)],
            at_ps: 500,
        }));
        e.post(100, b1, 0);
        e.post(100, b2, 1);
        e.run().unwrap();
        let tagged: Vec<(u32, u32)> = e
            .medium
            .iter()
            .filter(|&&(t, _, _)| t == 500)
            .map(|&(_, tag, ev)| (tag, ev))
            .collect();
        assert_eq!(
            tagged,
            vec![(1, 10), (2, 11), (1, 12), (2, 20), (1, 21), (2, 22)],
            "same-time events must fire in global posting (seq) order"
        );
    }

    #[test]
    fn depth_stats_tally_every_dispatch_per_label() {
        let mut e: Engine<Log, u32> = Engine::new(Vec::new());
        e.enable_depth_stats(|ev| if *ev < 50 { "low" } else { "high" });
        let a = e.add_actor(Box::new(Recorder {
            tag: 1,
            follow_up: Some((2e-6, 99)),
        }));
        e.post(100, a, 1);
        e.post(200, a, 2);
        let stats = e.run().unwrap();
        let depths = e.take_depth_stats().expect("enabled");
        assert_eq!(depths.total_count() as usize, stats.events_dispatched);
        let labels: Vec<_> = depths.entries().map(|(n, _)| n).collect();
        assert_eq!(labels, ["low", "high"]);
        assert!(e.take_depth_stats().is_none(), "take drains the tallies");
    }

    #[test]
    fn unregistered_actor_is_an_engine_error() {
        let mut e: Engine<Log, u32> = Engine::new(Vec::new());
        e.post(0, ActorId(7), 1);
        let err = e.run().unwrap_err();
        assert!(matches!(err, MilbackError::Engine(_)));
        assert!(err.to_string().contains("unregistered"));
    }

    #[test]
    fn past_posts_are_clamped_to_now() {
        let mut e: Engine<Log, u32> = Engine::new(Vec::new());
        let a = e.add_actor(Box::new(Recorder {
            tag: 1,
            follow_up: Some((0.0, 7)),
        }));
        e.post(500, a, 1);
        e.run().unwrap();
        // The follow-up posted "now" at t=500 fires at 500, not before.
        assert_eq!(e.medium, vec![(500, 1, 1), (500, 1, 7)]);
    }

    #[test]
    fn replays_are_bit_identical() {
        let run = || {
            let mut e: Engine<Log, u32> = Engine::new(Vec::new());
            let a = e.add_actor(Box::new(Recorder {
                tag: 1,
                follow_up: Some((2e-6, 50)),
            }));
            let b = e.add_actor(Box::new(Recorder {
                tag: 2,
                follow_up: None,
            }));
            e.post(secs_to_ps(1e-6), a, 1);
            e.post(secs_to_ps(1e-6), b, 2);
            e.run().unwrap();
            e.into_medium()
        };
        assert_eq!(run(), run());
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn tracer_records_dispatches_without_changing_the_run() {
        use crate::telemetry::TraceSink;
        let run = |trace: bool| {
            let mut e: Engine<Log, u32> = Engine::new(Vec::new());
            let sink = TraceSink::with_capacity(16);
            if trace {
                e.set_tracer(sink.clone(), |ev| if *ev < 50 { "low" } else { "high" });
            }
            let a = e.add_actor(Box::new(Recorder {
                tag: 1,
                follow_up: Some((2e-6, 50)),
            }));
            e.post(secs_to_ps(1e-6), a, 1);
            e.run().unwrap();
            (e.into_medium(), sink.into_buffer())
        };
        let (plain, empty) = run(false);
        let (traced, buf) = run(true);
        assert_eq!(plain, traced, "tracing must not perturb the run");
        assert!(empty.is_empty());
        assert_eq!(buf.len(), 2, "one record per dispatched event");
        let kinds: Vec<_> = buf
            .records()
            .map(|r| match r {
                crate::telemetry::TraceRecord::Event { kind, .. } => *kind,
                other => panic!("unexpected record {other:?}"),
            })
            .collect();
        assert_eq!(kinds, ["low", "high"]);
    }

    #[test]
    fn time_conversions_round_trip() {
        assert_eq!(secs_to_ps(1.0), 1_000_000_000_000);
        assert_eq!(secs_to_ps(45e-6), 45_000_000);
        assert_eq!(secs_to_ps(-1.0), 0, "negative durations saturate");
        let s = 635e-6;
        assert!((ps_to_secs(secs_to_ps(s)) - s).abs() < 1e-12);
    }
}
