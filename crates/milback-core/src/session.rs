//! The full packet session: the §7 protocol executed end-to-end against a
//! scene — Field 1 (node senses orientation + direction), Field 2 (AP
//! localizes + senses orientation), payload (uplink or downlink with
//! carriers planned from the AP's own estimate), with both sides' state
//! and the node's energy ledger accounted.
//!
//! This is the "network runtime" layer the lower modules compose into: one
//! call runs everything the paper's Fig 8 timeline describes.

use crate::config::SystemConfig;
use crate::error::{MilbackError, Result};
use crate::link::LinkSimulator;
use crate::localization::{LocalizationPipeline, LocationFix};
use crate::protocol::Packet;
use crate::scene::Scene;
use milback_ap::waveform::LinkDirection;
use milback_node::firmware::{Direction, Event, Firmware};
use milback_node::power::NodePowerModel;
use mmwave_sigproc::random::GaussianSource;
use serde::{Deserialize, Serialize};

/// Everything one packet session produced.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SessionReport {
    /// The AP's localization fix from Field 2.
    pub fix: LocationFix,
    /// AP-side orientation estimate, radians.
    pub orientation_at_ap: f64,
    /// Node-side orientation estimate, radians.
    pub orientation_at_node: f64,
    /// Direction the node decoded from Field 1.
    pub decoded_direction: LinkDirection,
    /// Payload bytes delivered (downlink: at the node; uplink: at the AP).
    pub delivered: Vec<u8>,
    /// Payload bit error rate.
    pub ber: f64,
    /// Total packet airtime, seconds.
    pub airtime_s: f64,
    /// Node energy spent on this packet, joules.
    pub node_energy_j: f64,
}

/// The session runner.
#[derive(Debug, Clone)]
pub struct Session {
    /// System configuration.
    pub config: SystemConfig,
    /// Scene (first node is the partner).
    pub scene: Scene,
}

impl Session {
    /// Creates a session runner.
    pub fn new(config: SystemConfig, scene: Scene) -> Result<Self> {
        config.validate()?;
        if scene.nodes.is_empty() {
            return Err(MilbackError::Config("session needs a node".into()));
        }
        Ok(Self { config, scene })
    }

    /// Runs one complete packet. The AP plans carriers from its *own*
    /// Field-2 orientation estimate (never ground truth); the node decodes
    /// the direction from the Field-1 burst count and runs its firmware
    /// state machine through the whole exchange.
    pub fn run_packet(
        &self,
        packet: &Packet,
        rng: &mut GaussianSource,
    ) -> Result<SessionReport> {
        let pipeline = LocalizationPipeline::new(self.config.clone(), self.scene.clone())?;
        let mut firmware = Firmware::new(NodePowerModel::milback_default());

        // ---- Field 1: node senses orientation; bursts signal direction.
        let direction = packet.direction;
        let fw_dir = match direction {
            LinkDirection::Uplink => Direction::Uplink,
            LinkDirection::Downlink => Direction::Downlink,
        };
        let bursts = direction.field1_chirp_count();
        for _ in 0..bursts {
            firmware
                .handle(Event::BurstStart)
                .map_err(|e| MilbackError::Protocol(e.to_string()))?;
            firmware.tick(self.config.fmcw.field1_chirp_s);
        }
        let orientation_at_node = pipeline.orient_at_node(rng)?;
        firmware
            .handle(Event::Field1GapTimeout)
            .map_err(|e| MilbackError::Protocol(e.to_string()))?;
        let decoded_direction = match firmware.state() {
            milback_node::firmware::State::Field1Done { direction: Direction::Uplink } => {
                LinkDirection::Uplink
            }
            milback_node::firmware::State::Field1Done { direction: Direction::Downlink } => {
                LinkDirection::Downlink
            }
            other => {
                return Err(MilbackError::Protocol(format!(
                    "node failed to decode direction (state {other:?})"
                )))
            }
        };

        // ---- Field 2: AP localizes and estimates orientation.
        firmware
            .handle(Event::BurstStart)
            .map_err(|e| MilbackError::Protocol(e.to_string()))?;
        firmware.tick(5.0 * self.config.fmcw.chirp_interval_s);
        let fix = pipeline.localize(rng)?;
        let orientation_at_ap = pipeline.orient_at_ap(rng)?;
        firmware
            .handle(Event::Field2Complete)
            .map_err(|e| MilbackError::Protocol(e.to_string()))?;

        // ---- Payload: carriers planned from the AP's *estimate*, never
        // ground truth — the closed loop the protocol actually runs.
        let mut sim = LinkSimulator::new(self.config.clone(), self.scene.clone())?;
        sim.orientation_hint = Some(orientation_at_ap);
        let symbol_rate = match decoded_direction {
            LinkDirection::Downlink => self.config.downlink_symbol_rate_hz,
            LinkDirection::Uplink => self.config.uplink_symbol_rate_hz,
        };
        let payload_s = packet.payload.len() as f64 * 4.0 / symbol_rate;
        firmware.tick(payload_s);
        let (delivered, ber) = match decoded_direction {
            LinkDirection::Downlink => {
                let out = sim.downlink(&packet.payload, rng)?;
                (out.decoded, out.ber)
            }
            LinkDirection::Uplink => {
                let out = sim.uplink(&packet.payload, rng)?;
                (out.decoded, out.ber)
            }
        };
        firmware
            .handle(Event::PayloadComplete)
            .map_err(|e| MilbackError::Protocol(e.to_string()))?;

        // Consistency guard: the node must have decoded the direction the
        // AP intended, and the firmware direction mirrors the packet.
        debug_assert_eq!(decoded_direction, direction);
        let _ = fw_dir;

        Ok(SessionReport {
            fix,
            orientation_at_ap,
            orientation_at_node,
            decoded_direction,
            delivered,
            ber,
            airtime_s: packet.duration_s(&self.config.fmcw, symbol_rate),
            node_energy_j: firmware.energy_j(),
        })
    }

    /// Runs an alternating sequence of downlink/uplink packets and returns
    /// the per-packet reports — a steady-state duty cycle.
    pub fn run_duty_cycle(
        &self,
        packets: &[Packet],
        rng: &mut GaussianSource,
    ) -> Result<Vec<SessionReport>> {
        packets.iter().map(|p| self.run_packet(p, rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn session(d: f64, orient_deg: f64) -> Session {
        Session::new(SystemConfig::milback_default(), Scene::indoor(d, orient_deg.to_radians()))
            .unwrap()
    }

    #[test]
    fn downlink_session_end_to_end() {
        let s = session(3.0, 12.0);
        let mut rng = GaussianSource::new(0x5E5);
        let packet = Packet::downlink(b"session payload".to_vec());
        let report = s.run_packet(&packet, &mut rng).unwrap();
        assert_eq!(report.decoded_direction, LinkDirection::Downlink);
        assert_eq!(report.delivered, b"session payload");
        assert_eq!(report.ber, 0.0);
        assert!((report.fix.range_m - 3.0).abs() < 0.1);
        let gt = s.scene.ground_truth(0);
        assert!((report.orientation_at_ap - gt.incidence_rad).abs().to_degrees() < 4.0);
        assert!((report.orientation_at_node - gt.incidence_rad).abs().to_degrees() < 4.0);
        assert!(report.node_energy_j > 0.0);
        assert!(report.airtime_s > 635e-6);
    }

    #[test]
    fn uplink_session_end_to_end() {
        let s = session(3.0, 12.0);
        let mut rng = GaussianSource::new(0x5E6);
        let packet = Packet::uplink(b"node says hi".to_vec());
        let report = s.run_packet(&packet, &mut rng).unwrap();
        assert_eq!(report.decoded_direction, LinkDirection::Uplink);
        assert_eq!(report.delivered, b"node says hi");
    }

    #[test]
    fn duty_cycle_alternates() {
        let s = session(2.0, 10.0);
        let mut rng = GaussianSource::new(0x5E7);
        let packets = vec![
            Packet::downlink(vec![1, 2, 3, 4]),
            Packet::uplink(vec![5, 6, 7, 8]),
            Packet::downlink(vec![9, 10, 11, 12]),
        ];
        let reports = s.run_duty_cycle(&packets, &mut rng).unwrap();
        assert_eq!(reports.len(), 3);
        assert_eq!(reports[0].delivered, vec![1, 2, 3, 4]);
        assert_eq!(reports[1].delivered, vec![5, 6, 7, 8]);
        assert_eq!(reports[2].delivered, vec![9, 10, 11, 12]);
        // Uplink packets cost more node energy per second of payload, but
        // these payloads are tiny so preamble dominates; just check all
        // ledgers are positive and sane.
        for r in &reports {
            assert!(r.node_energy_j > 0.0 && r.node_energy_j < 1e-3);
        }
    }

    #[test]
    fn session_requires_a_node() {
        let mut scene = Scene::single_node(2.0, 0.0);
        scene.nodes.clear();
        assert!(Session::new(SystemConfig::milback_default(), scene).is_err());
    }
}
