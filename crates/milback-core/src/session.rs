//! The full packet session: the §7 protocol executed end-to-end against a
//! scene — Field 1 (node senses orientation + direction), Field 2 (AP
//! localizes + senses orientation), payload (uplink or downlink with
//! carriers planned from the AP's own estimate), with both sides' state
//! and the node's energy ledger accounted.
//!
//! This is the "network runtime" layer the lower modules compose into: one
//! call runs everything the paper's Fig 8 timeline describes. The timeline
//! itself lives on the discrete-event engine ([`crate::engine`]): the node
//! firmware and the AP are actors, every protocol boundary (burst, gap,
//! Field-2 capture, carrier planning, payload airtime) is a timed event,
//! and all randomness flows through the one per-trial stream in the shared
//! medium. [`Session::run_packet_direct`] retains the original synchronous
//! call tree as the parity reference — the engine path must reproduce its
//! reports bit-for-bit.

use crate::config::SystemConfig;
use crate::engine::{secs_to_ps, Actor, ActorId, Engine, Outbox, TimePs};
use crate::error::{MilbackError, Result};
use crate::link::LinkSimulator;
use crate::localization::{LocalizationPipeline, LocationFix};
use crate::pipeline::{ApServiceConfig, StageKind};
use crate::protocol::Packet;
use crate::scene::Scene;
use crate::telemetry::CampaignProbe;
use milback_ap::waveform::LinkDirection;
use milback_node::firmware::{Direction, Event as FwEvent, Firmware, State as FwState};
use milback_node::mode::{PortMode, ToggleSchedule};
use milback_node::power::NodePowerModel;
use mmwave_sigproc::random::GaussianSource;
use serde::{Deserialize, Serialize};

/// Everything one packet session produced.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionReport {
    /// The AP's localization fix from Field 2.
    pub fix: LocationFix,
    /// AP-side orientation estimate, radians.
    pub orientation_at_ap: f64,
    /// Node-side orientation estimate, radians.
    pub orientation_at_node: f64,
    /// Direction the node decoded from Field 1.
    pub decoded_direction: LinkDirection,
    /// Payload bytes delivered (downlink: at the node; uplink: at the AP).
    pub delivered: Vec<u8>,
    /// Payload bit error rate.
    pub ber: f64,
    /// Total packet airtime, seconds.
    pub airtime_s: f64,
    /// Node energy spent on this packet, joules.
    pub node_energy_j: f64,
}

/// Events on the single-link session timeline (§7 / Fig 8).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SessionEvent {
    /// One Field-1 triangular burst reaches the node.
    Field1Burst,
    /// Field 1 ended: the node reads its detectors and decodes direction.
    Field1Gap,
    /// The Field-2 sawtooth train starts (the node begins toggling).
    Field2Start,
    /// One reflective/absorptive mode switch during Field 2.
    ToggleMode,
    /// Field-2 capture done: the AP localizes and estimates orientation.
    Field2Process,
    /// The AP plans payload carriers from its orientation estimate.
    PlanCarriers,
    /// Payload airtime begins at the node.
    PayloadStart,
    /// The payload propagates through the link.
    PayloadTransfer,
    /// Payload airtime ends; the node closes its state machine.
    PayloadEnd,
}

/// The shared medium of one session run: the channel simulators, the
/// per-trial RNG stream (per the runner's stream contract), and the slots
/// results are deposited into as events fire.
struct SessionMedium<'a> {
    pipeline: LocalizationPipeline,
    sim: LinkSimulator,
    rng: &'a mut GaussianSource,
    packet: &'a Packet,
    field1_chirp_s: f64,
    chirp_interval_s: f64,
    downlink_symbol_rate_hz: f64,
    uplink_symbol_rate_hz: f64,
    toggle: ToggleSchedule,
    // Results, filled in timeline order.
    orientation_at_node: Option<f64>,
    decoded_direction: Option<LinkDirection>,
    fix: Option<LocationFix>,
    orientation_at_ap: Option<f64>,
    delivered: Option<(Vec<u8>, f64)>,
    node_energy_j: f64,
    mode_switches: usize,
}

impl SessionMedium<'_> {
    fn symbol_rate_hz(&self) -> Result<f64> {
        match self.decoded_direction {
            Some(LinkDirection::Downlink) => Ok(self.downlink_symbol_rate_hz),
            Some(LinkDirection::Uplink) => Ok(self.uplink_symbol_rate_hz),
            None => Err(MilbackError::Protocol(
                "payload scheduled before the node decoded a direction".into(),
            )),
        }
    }

    fn payload_s(&self) -> Result<f64> {
        Ok(self.packet.payload.len() as f64 * 4.0 / self.symbol_rate_hz()?)
    }
}

/// The node side: owns the firmware state machine and its energy ledger.
struct NodeActor {
    me: ActorId,
    firmware: Firmware,
}

impl<'a> Actor<SessionMedium<'a>, SessionEvent> for NodeActor {
    fn on_event(
        &mut self,
        _now_ps: TimePs,
        event: &SessionEvent,
        m: &mut SessionMedium<'a>,
        out: &mut Outbox<SessionEvent>,
    ) -> Result<()> {
        match event {
            SessionEvent::Field1Burst => {
                self.firmware.step(FwEvent::BurstStart, m.field1_chirp_s)?;
            }
            SessionEvent::Field1Gap => {
                m.orientation_at_node = Some(m.pipeline.orient_at_node(m.rng)?);
                self.firmware.handle(FwEvent::Field1GapTimeout)?;
                m.decoded_direction = Some(match self.firmware.state() {
                    FwState::Field1Done {
                        direction: Direction::Uplink,
                    } => LinkDirection::Uplink,
                    FwState::Field1Done {
                        direction: Direction::Downlink,
                    } => LinkDirection::Downlink,
                    other => {
                        return Err(MilbackError::Protocol(format!(
                            "node failed to decode direction (state {other:?})"
                        )))
                    }
                });
            }
            SessionEvent::Field2Start => {
                let field2_s = 5.0 * m.chirp_interval_s;
                self.firmware.step(FwEvent::BurstStart, field2_s)?;
                // Mode switching as scheduled events: one per half-period
                // of the localization toggle across the Field-2 window.
                for t in m.toggle.switch_times_s(0.0, field2_s) {
                    out.post_after(t, self.me, SessionEvent::ToggleMode);
                }
            }
            SessionEvent::ToggleMode => {
                m.mode_switches += 1;
            }
            SessionEvent::PayloadStart => {
                let payload_s = m.payload_s()?;
                self.firmware.step(FwEvent::Field2Complete, payload_s)?;
            }
            SessionEvent::PayloadEnd => {
                self.firmware.handle(FwEvent::PayloadComplete)?;
                m.node_energy_j = self.firmware.energy_j();
            }
            _ => {
                return Err(MilbackError::Engine(format!(
                    "node actor received AP event {event:?}"
                )))
            }
        }
        Ok(())
    }
}

/// The AP side: Field-2 processing, carrier planning, payload scheduling.
/// The three protocol steps are the single-link image of the MAC layer's
/// **Capture → Plan → Transmit** pipeline: `Field2Process` is the capture
/// stage (it completes `capture_ps` after the Field-2 window closes),
/// `PlanCarriers` the plan stage, and the payload schedule starts after
/// the transmit-stage latency. Under [`ApServiceConfig::instantaneous`]
/// every post lands at the current instant, reproducing the pre-pipeline
/// timeline bit-for-bit.
struct ApActor {
    me: ActorId,
    node: ActorId,
    service: ApServiceConfig,
}

impl<'a> Actor<SessionMedium<'a>, SessionEvent> for ApActor {
    fn on_event(
        &mut self,
        now_ps: TimePs,
        event: &SessionEvent,
        m: &mut SessionMedium<'a>,
        out: &mut Outbox<SessionEvent>,
    ) -> Result<()> {
        match event {
            SessionEvent::Field2Process => {
                m.fix = Some(m.pipeline.localize(m.rng)?);
                m.orientation_at_ap = Some(m.pipeline.orient_at_ap(m.rng)?);
                out.post_at(
                    now_ps + self.service.stage_latency_ps(StageKind::Capture),
                    self.me,
                    SessionEvent::PlanCarriers,
                );
            }
            SessionEvent::PlanCarriers => {
                // Carriers planned from the AP's *estimate*, never ground
                // truth — the closed loop the protocol actually runs.
                m.sim.orientation_hint = m.orientation_at_ap;
                let payload_s = m.payload_s()?;
                // The payload starts once the plan lands and the transmit
                // front-end is configured. AP compute latency is AP-side:
                // the node's energy ledger ticks airtime only.
                let start_ps = now_ps
                    + self.service.stage_latency_ps(StageKind::Plan)
                    + self.service.stage_latency_ps(StageKind::Transmit);
                out.post_at(start_ps, self.node, SessionEvent::PayloadStart);
                out.post_at(start_ps, self.me, SessionEvent::PayloadTransfer);
                out.post_at(
                    start_ps + secs_to_ps(payload_s),
                    self.node,
                    SessionEvent::PayloadEnd,
                );
            }
            SessionEvent::PayloadTransfer => {
                let delivered = match m.decoded_direction {
                    Some(LinkDirection::Downlink) => {
                        let o = m.sim.downlink(&m.packet.payload, m.rng)?;
                        (o.decoded, o.ber)
                    }
                    Some(LinkDirection::Uplink) => {
                        let o = m.sim.uplink(&m.packet.payload, m.rng)?;
                        (o.decoded, o.ber)
                    }
                    None => {
                        return Err(MilbackError::Protocol(
                            "payload transfer before direction decode".into(),
                        ))
                    }
                };
                m.delivered = Some(delivered);
            }
            _ => {
                return Err(MilbackError::Engine(format!(
                    "AP actor received node event {event:?}"
                )))
            }
        }
        Ok(())
    }
}

/// The session runner.
#[derive(Debug, Clone)]
pub struct Session {
    /// System configuration.
    pub config: SystemConfig,
    /// Scene (first node is the partner).
    pub scene: Scene,
}

impl Session {
    /// Creates a session runner.
    pub fn new(config: SystemConfig, scene: Scene) -> Result<Self> {
        config.validate()?;
        if scene.nodes.is_empty() {
            return Err(MilbackError::Config("session needs a node".into()));
        }
        Ok(Self { config, scene })
    }

    /// Runs one complete packet on the discrete-event engine. The AP plans
    /// carriers from its *own* Field-2 orientation estimate (never ground
    /// truth); the node decodes the direction from the Field-1 burst count
    /// and runs its firmware state machine through the whole exchange.
    ///
    /// Bit-identical to [`run_packet_direct`](Self::run_packet_direct) for
    /// any seed — the parity suite enforces this.
    pub fn run_packet(&self, packet: &Packet, rng: &mut GaussianSource) -> Result<SessionReport> {
        let mut probe = CampaignProbe::disabled();
        self.run_packet_probed(packet, rng, &mut probe)
    }

    /// [`run_packet`](Self::run_packet) under an explicit
    /// [`ApServiceConfig`]: the AP's Field-2 processing, carrier planning,
    /// and transmit setup each cost their configured stage latency, so the
    /// payload starts `total_latency_ps` later than the instantaneous
    /// timeline. The physics and the RNG draw order are unchanged — only
    /// event timestamps shift — so the report is identical up to the
    /// session clock.
    pub fn run_packet_service(
        &self,
        packet: &Packet,
        rng: &mut GaussianSource,
        service: &ApServiceConfig,
    ) -> Result<SessionReport> {
        let mut probe = CampaignProbe::disabled();
        self.run_packet_service_probed(packet, rng, service, &mut probe)
    }

    /// [`run_packet`](Self::run_packet) with an instrumentation probe:
    /// when tracing, every dispatched session event is recorded
    /// `(time_ps, seq, actor, kind)`; metrics count dispatches, mode
    /// switches, and the node energy draw. `run_packet` is this function
    /// with a disabled probe — the probe copies values the session already
    /// computed and can never perturb it.
    pub fn run_packet_probed(
        &self,
        packet: &Packet,
        rng: &mut GaussianSource,
        probe: &mut CampaignProbe,
    ) -> Result<SessionReport> {
        self.run_packet_service_probed(packet, rng, &ApServiceConfig::instantaneous(), probe)
    }

    /// The full session runner: explicit service config and probe.
    pub fn run_packet_service_probed(
        &self,
        packet: &Packet,
        rng: &mut GaussianSource,
        service: &ApServiceConfig,
        probe: &mut CampaignProbe,
    ) -> Result<SessionReport> {
        let pipeline = LocalizationPipeline::new(self.config.clone(), self.scene.clone())?;
        let sim = LinkSimulator::new(self.config.clone(), self.scene.clone())?;
        let medium = SessionMedium {
            pipeline,
            sim,
            rng,
            packet,
            field1_chirp_s: self.config.fmcw.field1_chirp_s,
            chirp_interval_s: self.config.fmcw.chirp_interval_s,
            downlink_symbol_rate_hz: self.config.downlink_symbol_rate_hz,
            uplink_symbol_rate_hz: self.config.uplink_symbol_rate_hz,
            toggle: ToggleSchedule {
                rate_hz: self.config.localization_toggle_hz,
                initial: PortMode::Reflective,
            },
            orientation_at_node: None,
            decoded_direction: None,
            fix: None,
            orientation_at_ap: None,
            delivered: None,
            node_energy_j: 0.0,
            mode_switches: 0,
        };
        let mut engine = Engine::new(medium);
        if let Some(sink) = &probe.trace {
            engine.set_tracer(sink.clone(), |ev| match ev {
                SessionEvent::Field1Burst => "field1_burst",
                SessionEvent::Field1Gap => "field1_gap",
                SessionEvent::Field2Start => "field2_start",
                SessionEvent::ToggleMode => "toggle_mode",
                SessionEvent::Field2Process => "field2_process",
                SessionEvent::PlanCarriers => "plan_carriers",
                SessionEvent::PayloadStart => "payload_start",
                SessionEvent::PayloadTransfer => "payload_transfer",
                SessionEvent::PayloadEnd => "payload_end",
            });
        }
        let node = engine.add_actor(Box::new(NodeActor {
            me: ActorId(0),
            firmware: Firmware::new(NodePowerModel::milback_default()),
        }));
        let ap = engine.add_actor(Box::new(ApActor {
            me: ActorId(1),
            node,
            service: *service,
        }));
        debug_assert_eq!((node, ap), (ActorId(0), ActorId(1)));

        // Script the §7 preamble; the payload schedule is posted by the AP
        // once it has planned carriers.
        let chirp_ps = secs_to_ps(self.config.fmcw.field1_chirp_s);
        let bursts = packet.direction.field1_chirp_count();
        for k in 0..bursts {
            engine.post(k as TimePs * chirp_ps, node, SessionEvent::Field1Burst);
        }
        engine.post(bursts as TimePs * chirp_ps, node, SessionEvent::Field1Gap);
        let preamble_ps = packet.preamble_duration_ps(&self.config.fmcw);
        let field2_ps = secs_to_ps(5.0 * self.config.fmcw.chirp_interval_s);
        engine.post(preamble_ps - field2_ps, node, SessionEvent::Field2Start);
        engine.post(preamble_ps, ap, SessionEvent::Field2Process);
        let stats = engine.run()?;

        let m = engine.into_medium();
        let decoded_direction = m
            .decoded_direction
            .ok_or_else(|| MilbackError::Protocol("session ended before Field 1".into()))?;
        let (delivered, ber) = m
            .delivered
            .ok_or_else(|| MilbackError::Protocol("session ended before the payload".into()))?;
        let symbol_rate = match decoded_direction {
            LinkDirection::Downlink => self.config.downlink_symbol_rate_hz,
            LinkDirection::Uplink => self.config.uplink_symbol_rate_hz,
        };
        probe.inc("session_events", stats.events_dispatched as u64);
        probe.inc("mode_switches", m.mode_switches as u64);
        probe.observe(
            "session_node_energy_j",
            crate::telemetry::ENERGY_BUCKETS_J,
            m.node_energy_j,
        );
        // FSA cache traffic for this packet's pipeline (the evaluator is
        // per-session, so the snapshot is exactly this packet's queries),
        // and the Field-2 chirp stack the FMCW detector batched (five
        // chirps by protocol, §5.1).
        probe.record_fsa_stats(&m.pipeline.gain_eval.stats());
        probe.observe_fmcw_batch(5);
        // Consistency guards: the node decoded what the AP signalled, and
        // the engine clock closed exactly at the packet's airtime plus the
        // AP's end-to-end service latency (zero on the instantaneous path).
        debug_assert_eq!(decoded_direction, packet.direction);
        debug_assert_eq!(
            stats.end_time_ps,
            packet.duration_ps(&self.config.fmcw, symbol_rate) + service.total_latency_ps()
        );
        Ok(SessionReport {
            fix: m
                .fix
                .ok_or_else(|| MilbackError::Protocol("session ended before Field 2".into()))?,
            orientation_at_ap: m.orientation_at_ap.unwrap_or(f64::NAN),
            orientation_at_node: m.orientation_at_node.unwrap_or(f64::NAN),
            decoded_direction,
            delivered,
            ber,
            airtime_s: packet.duration_s(&self.config.fmcw, symbol_rate),
            node_energy_j: m.node_energy_j,
        })
    }

    /// The pre-engine synchronous implementation, retained verbatim as the
    /// parity reference for [`run_packet`](Self::run_packet).
    pub fn run_packet_direct(
        &self,
        packet: &Packet,
        rng: &mut GaussianSource,
    ) -> Result<SessionReport> {
        let pipeline = LocalizationPipeline::new(self.config.clone(), self.scene.clone())?;
        let mut firmware = Firmware::new(NodePowerModel::milback_default());

        // ---- Field 1: node senses orientation; bursts signal direction.
        let direction = packet.direction;
        let bursts = direction.field1_chirp_count();
        for _ in 0..bursts {
            firmware.handle(FwEvent::BurstStart)?;
            firmware.tick(self.config.fmcw.field1_chirp_s);
        }
        let orientation_at_node = pipeline.orient_at_node(rng)?;
        firmware.handle(FwEvent::Field1GapTimeout)?;
        let decoded_direction = match firmware.state() {
            FwState::Field1Done {
                direction: Direction::Uplink,
            } => LinkDirection::Uplink,
            FwState::Field1Done {
                direction: Direction::Downlink,
            } => LinkDirection::Downlink,
            other => {
                return Err(MilbackError::Protocol(format!(
                    "node failed to decode direction (state {other:?})"
                )))
            }
        };

        // ---- Field 2: AP localizes and estimates orientation.
        firmware.handle(FwEvent::BurstStart)?;
        firmware.tick(5.0 * self.config.fmcw.chirp_interval_s);
        let fix = pipeline.localize(rng)?;
        let orientation_at_ap = pipeline.orient_at_ap(rng)?;
        firmware.handle(FwEvent::Field2Complete)?;

        // ---- Payload: carriers planned from the AP's *estimate*, never
        // ground truth — the closed loop the protocol actually runs.
        let mut sim = LinkSimulator::new(self.config.clone(), self.scene.clone())?;
        sim.orientation_hint = Some(orientation_at_ap);
        let symbol_rate = match decoded_direction {
            LinkDirection::Downlink => self.config.downlink_symbol_rate_hz,
            LinkDirection::Uplink => self.config.uplink_symbol_rate_hz,
        };
        let payload_s = packet.payload.len() as f64 * 4.0 / symbol_rate;
        firmware.tick(payload_s);
        let (delivered, ber) = match decoded_direction {
            LinkDirection::Downlink => {
                let out = sim.downlink(&packet.payload, rng)?;
                (out.decoded, out.ber)
            }
            LinkDirection::Uplink => {
                let out = sim.uplink(&packet.payload, rng)?;
                (out.decoded, out.ber)
            }
        };
        firmware.handle(FwEvent::PayloadComplete)?;

        debug_assert_eq!(decoded_direction, direction);

        Ok(SessionReport {
            fix,
            orientation_at_ap,
            orientation_at_node,
            decoded_direction,
            delivered,
            ber,
            airtime_s: packet.duration_s(&self.config.fmcw, symbol_rate),
            node_energy_j: firmware.energy_j(),
        })
    }

    /// Runs an alternating sequence of downlink/uplink packets and returns
    /// the per-packet reports — a steady-state duty cycle.
    pub fn run_duty_cycle(
        &self,
        packets: &[Packet],
        rng: &mut GaussianSource,
    ) -> Result<Vec<SessionReport>> {
        packets.iter().map(|p| self.run_packet(p, rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn session(d: f64, orient_deg: f64) -> Session {
        Session::new(
            SystemConfig::milback_default(),
            Scene::indoor(d, orient_deg.to_radians()),
        )
        .unwrap()
    }

    #[test]
    fn downlink_session_end_to_end() {
        let s = session(3.0, 12.0);
        let mut rng = GaussianSource::new(0x5E5);
        let packet = Packet::downlink(b"session payload".to_vec());
        let report = s.run_packet(&packet, &mut rng).unwrap();
        assert_eq!(report.decoded_direction, LinkDirection::Downlink);
        assert_eq!(report.delivered, b"session payload");
        assert_eq!(report.ber, 0.0);
        assert!((report.fix.range_m - 3.0).abs() < 0.1);
        let gt = s.scene.ground_truth(0);
        assert!(
            (report.orientation_at_ap - gt.incidence_rad)
                .abs()
                .to_degrees()
                < 4.0
        );
        assert!(
            (report.orientation_at_node - gt.incidence_rad)
                .abs()
                .to_degrees()
                < 4.0
        );
        assert!(report.node_energy_j > 0.0);
        assert!(report.airtime_s > 635e-6);
    }

    #[test]
    fn uplink_session_end_to_end() {
        let s = session(3.0, 12.0);
        let mut rng = GaussianSource::new(0x5E6);
        let packet = Packet::uplink(b"node says hi".to_vec());
        let report = s.run_packet(&packet, &mut rng).unwrap();
        assert_eq!(report.decoded_direction, LinkDirection::Uplink);
        assert_eq!(report.delivered, b"node says hi");
    }

    #[test]
    fn engine_and_direct_reports_are_bit_identical() {
        let s = session(3.0, 12.0);
        for (seed, packet) in [
            (0xA11CE, Packet::downlink(b"parity downlink".to_vec())),
            (0xB0B, Packet::uplink(b"parity uplink".to_vec())),
            (7, Packet::downlink(vec![])),
            (8, Packet::uplink(vec![0xFF; 128])),
        ] {
            let mut rng_e = GaussianSource::new(seed);
            let mut rng_d = GaussianSource::new(seed);
            let engine = s.run_packet(&packet, &mut rng_e).unwrap();
            let direct = s.run_packet_direct(&packet, &mut rng_d).unwrap();
            assert_eq!(engine, direct, "reports diverged for seed {seed:#x}");
            assert_eq!(
                engine.node_energy_j.to_bits(),
                direct.node_energy_j.to_bits(),
                "energy ledger diverged for seed {seed:#x}"
            );
            assert_eq!(engine.ber.to_bits(), direct.ber.to_bits());
        }
    }

    #[test]
    fn service_latency_shifts_the_clock_but_not_the_physics() {
        // Nonzero AP stage latencies delay the payload schedule (the
        // end-of-run clock guard inside the runner checks the exact
        // shift) but draw no randomness and change no physics — the
        // report is identical to the instantaneous run.
        let s = session(3.0, 12.0);
        let packet = Packet::downlink(b"staged session".to_vec());
        let mut rng_a = GaussianSource::new(0xC0FFEE);
        let mut rng_b = GaussianSource::new(0xC0FFEE);
        let instant = s.run_packet(&packet, &mut rng_a).unwrap();
        let staged = s
            .run_packet_service(
                &packet,
                &mut rng_b,
                &ApServiceConfig::instantaneous()
                    .with_stage_latencies(1_000_000, 2_000_000, 3_000_000),
            )
            .unwrap();
        assert_eq!(instant, staged);
        assert_eq!(rng_a.sample(1.0).to_bits(), rng_b.sample(1.0).to_bits());
    }

    #[test]
    fn engine_and_direct_advance_rng_identically() {
        // After a packet, both paths must leave the shared stream in the
        // same state — duty cycles interleave packets on one stream.
        let s = session(2.5, 8.0);
        let packet = Packet::downlink(vec![1, 2, 3, 4]);
        let mut rng_e = GaussianSource::new(99);
        let mut rng_d = GaussianSource::new(99);
        s.run_packet(&packet, &mut rng_e).unwrap();
        s.run_packet_direct(&packet, &mut rng_d).unwrap();
        assert_eq!(rng_e.sample(1.0).to_bits(), rng_d.sample(1.0).to_bits());
    }

    #[test]
    fn duty_cycle_alternates() {
        let s = session(2.0, 10.0);
        let mut rng = GaussianSource::new(0x5E7);
        let packets = vec![
            Packet::downlink(vec![1, 2, 3, 4]),
            Packet::uplink(vec![5, 6, 7, 8]),
            Packet::downlink(vec![9, 10, 11, 12]),
        ];
        let reports = s.run_duty_cycle(&packets, &mut rng).unwrap();
        assert_eq!(reports.len(), 3);
        assert_eq!(reports[0].delivered, vec![1, 2, 3, 4]);
        assert_eq!(reports[1].delivered, vec![5, 6, 7, 8]);
        assert_eq!(reports[2].delivered, vec![9, 10, 11, 12]);
        // Uplink packets cost more node energy per second of payload, but
        // these payloads are tiny so preamble dominates; just check all
        // ledgers are positive and sane.
        for r in &reports {
            assert!(r.node_energy_j > 0.0 && r.node_energy_j < 1e-3);
        }
    }

    #[test]
    fn session_requires_a_node() {
        let mut scene = Scene::single_node(2.0, 0.0);
        scene.nodes.clear();
        assert!(Session::new(SystemConfig::milback_default(), scene).is_err());
    }
}
