//! Forward error correction for MilBack payloads: Hamming(7,4) with a
//! block interleaver.
//!
//! The paper ships uncoded payloads and reports raw BER; any deployment
//! would add FEC. Hamming(7,4) corrects one bit error per 7-bit codeword —
//! a good match for the OAQFM channel, whose errors are independent
//! per-tone slicing errors — and the interleaver spreads the occasional
//! burst (e.g. a switching transient clipping one symbol, which hits two
//! adjacent bits) across codewords.

use serde::{Deserialize, Serialize};

/// Encodes 4 data bits into a 7-bit Hamming codeword (bits as booleans,
/// parity layout p1 p2 d1 p3 d2 d3 d4).
pub fn hamming74_encode_nibble(d: [bool; 4]) -> [bool; 7] {
    let [d1, d2, d3, d4] = d;
    let p1 = d1 ^ d2 ^ d4;
    let p2 = d1 ^ d3 ^ d4;
    let p3 = d2 ^ d3 ^ d4;
    [p1, p2, d1, p3, d2, d3, d4]
}

/// Decodes a 7-bit codeword, correcting up to one flipped bit. Returns the
/// 4 data bits and whether a correction was applied.
pub fn hamming74_decode_codeword(mut c: [bool; 7]) -> ([bool; 4], bool) {
    let s1 = c[0] ^ c[2] ^ c[4] ^ c[6];
    let s2 = c[1] ^ c[2] ^ c[5] ^ c[6];
    let s3 = c[3] ^ c[4] ^ c[5] ^ c[6];
    let syndrome = (s3 as usize) << 2 | (s2 as usize) << 1 | s1 as usize;
    let corrected = syndrome != 0;
    if corrected {
        c[syndrome - 1] = !c[syndrome - 1];
    }
    ([c[2], c[4], c[5], c[6]], corrected)
}

/// Converts bytes to a bit vector, MSB first.
pub fn bytes_to_bits(data: &[u8]) -> Vec<bool> {
    data.iter()
        .flat_map(|&b| (0..8).rev().map(move |i| b >> i & 1 == 1))
        .collect()
}

/// Converts bits (MSB first) back to bytes; the length must be a multiple
/// of eight.
///
/// # Panics
/// Panics if `bits.len() % 8 != 0`.
pub fn bits_to_bytes(bits: &[bool]) -> Vec<u8> {
    assert!(
        bits.len().is_multiple_of(8),
        "bit count must be a byte multiple"
    );
    bits.chunks_exact(8)
        .map(|c| c.iter().fold(0u8, |acc, &b| (acc << 1) | u8::from(b)))
        .collect()
}

/// A block interleaver: writes row-wise into a `rows × columns` matrix and
/// reads column-wise, spreading bursts of up to `rows` bits across
/// different codewords.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockInterleaver {
    /// Number of rows (burst tolerance).
    pub rows: usize,
}

impl BlockInterleaver {
    /// Creates an interleaver.
    ///
    /// # Panics
    /// Panics for zero rows.
    pub fn new(rows: usize) -> Self {
        assert!(rows > 0);
        Self { rows }
    }

    /// Interleaves; the input length must divide evenly into rows.
    ///
    /// # Panics
    /// Panics if `bits.len() % rows != 0`.
    pub fn interleave(&self, bits: &[bool]) -> Vec<bool> {
        assert!(
            bits.len().is_multiple_of(self.rows),
            "length must divide into rows"
        );
        let cols = bits.len() / self.rows;
        let mut out = Vec::with_capacity(bits.len());
        for c in 0..cols {
            for r in 0..self.rows {
                out.push(bits[r * cols + c]);
            }
        }
        out
    }

    /// Inverts [`interleave`](Self::interleave).
    ///
    /// # Panics
    /// Panics if `bits.len() % rows != 0`.
    pub fn deinterleave(&self, bits: &[bool]) -> Vec<bool> {
        assert!(
            bits.len().is_multiple_of(self.rows),
            "length must divide into rows"
        );
        let cols = bits.len() / self.rows;
        let mut out = vec![false; bits.len()];
        for c in 0..cols {
            for r in 0..self.rows {
                out[r * cols + c] = bits[c * self.rows + r];
            }
        }
        out
    }
}

/// The payload codec: Hamming(7,4) plus interleaving, byte-in/byte-out.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PayloadCodec {
    /// Interleaver depth in rows (1 = no interleaving).
    pub interleave_rows: usize,
}

impl PayloadCodec {
    /// A codec with burst tolerance of `rows` bits.
    pub fn new(interleave_rows: usize) -> Self {
        Self {
            interleave_rows: interleave_rows.max(1),
        }
    }

    /// Coding rate (4/7).
    pub fn rate(&self) -> f64 {
        4.0 / 7.0
    }

    /// Encodes a payload; output is the coded bit stream (length
    /// `payload.len() * 14`, padded to the interleaver geometry).
    pub fn encode(&self, payload: &[u8]) -> Vec<bool> {
        let bits = bytes_to_bits(payload);
        let mut coded = Vec::with_capacity(bits.len() * 7 / 4);
        for nibble in bits.chunks_exact(4) {
            coded.extend(hamming74_encode_nibble([
                nibble[0], nibble[1], nibble[2], nibble[3],
            ]));
        }
        // Pad to a multiple of the interleaver rows.
        while coded.len() % self.interleave_rows != 0 {
            coded.push(false);
        }
        BlockInterleaver::new(self.interleave_rows).interleave(&coded)
    }

    /// Decodes a coded bit stream back to bytes, correcting errors.
    /// Returns `(payload, corrections_applied)`.
    pub fn decode(&self, coded: &[bool]) -> (Vec<u8>, usize) {
        let deinterleaved = BlockInterleaver::new(self.interleave_rows).deinterleave(coded);
        let mut bits = Vec::with_capacity(deinterleaved.len() * 4 / 7);
        let mut corrections = 0;
        for cw in deinterleaved.chunks_exact(7) {
            let (d, corrected) =
                hamming74_decode_codeword([cw[0], cw[1], cw[2], cw[3], cw[4], cw[5], cw[6]]);
            bits.extend_from_slice(&d);
            corrections += usize::from(corrected);
        }
        bits.truncate(bits.len() - bits.len() % 8);
        (bits_to_bytes(&bits), corrections)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmwave_sigproc::random::GaussianSource;

    #[test]
    fn hamming_roundtrip_clean() {
        for v in 0..16u8 {
            let d = [v & 8 != 0, v & 4 != 0, v & 2 != 0, v & 1 != 0];
            let (out, corrected) = hamming74_decode_codeword(hamming74_encode_nibble(d));
            assert_eq!(out, d);
            assert!(!corrected);
        }
    }

    #[test]
    fn hamming_corrects_any_single_flip() {
        for v in 0..16u8 {
            let d = [v & 8 != 0, v & 4 != 0, v & 2 != 0, v & 1 != 0];
            let cw = hamming74_encode_nibble(d);
            for flip in 0..7 {
                let mut bad = cw;
                bad[flip] = !bad[flip];
                let (out, corrected) = hamming74_decode_codeword(bad);
                assert_eq!(out, d, "value {v}, flip {flip}");
                assert!(corrected);
            }
        }
    }

    #[test]
    fn bits_bytes_roundtrip() {
        let data = vec![0x00, 0xFF, 0x5A, 0x13];
        assert_eq!(bits_to_bytes(&bytes_to_bits(&data)), data);
    }

    #[test]
    fn interleaver_roundtrip() {
        let il = BlockInterleaver::new(7);
        let bits: Vec<bool> = (0..70).map(|i| i % 3 == 0).collect();
        assert_eq!(il.deinterleave(&il.interleave(&bits)), bits);
    }

    #[test]
    fn interleaver_spreads_bursts() {
        // A burst of `rows` consecutive errors post-interleaving lands in
        // `rows` different codewords pre-interleaving.
        let il = BlockInterleaver::new(7);
        let n = 70;
        let clean = vec![false; n];
        let mut burst = il.interleave(&clean);
        for b in burst.iter_mut().take(7) {
            *b = true; // 7-bit burst on the wire
        }
        let spread = il.deinterleave(&burst);
        // Each 7-bit codeword now contains at most one error.
        for cw in spread.chunks(7) {
            assert!(cw.iter().filter(|&&b| b).count() <= 1);
        }
    }

    #[test]
    fn codec_roundtrip_clean() {
        let codec = PayloadCodec::new(7);
        let payload = vec![0xDE, 0xAD, 0xBE, 0xEF];
        let coded = codec.encode(&payload);
        let (decoded, corrections) = codec.decode(&coded);
        assert_eq!(decoded, payload);
        assert_eq!(corrections, 0);
    }

    #[test]
    fn codec_corrects_scattered_errors() {
        // Inject exactly one error per codeword (the budget Hamming(7,4)
        // guarantees), expressed in the wire (interleaved) domain.
        let codec = PayloadCodec::new(7);
        let payload: Vec<u8> = (0..32).collect();
        let coded = codec.encode(&payload);
        let il = BlockInterleaver::new(7);
        let mut deinterleaved = il.deinterleave(&coded);
        let mut i = 3;
        while i < deinterleaved.len() {
            deinterleaved[i] = !deinterleaved[i];
            i += 7; // one flip per 7-bit codeword
        }
        let wire = il.interleave(&deinterleaved);
        let (decoded, corrections) = codec.decode(&wire);
        assert_eq!(decoded, payload);
        assert!(corrections >= deinterleaved.len() / 7 - 1);
    }

    #[test]
    fn codec_corrects_a_burst() {
        let codec = PayloadCodec::new(7);
        let payload = vec![0x55; 16];
        let mut coded = codec.encode(&payload);
        for b in coded.iter_mut().skip(20).take(7) {
            *b = !*b; // 7-bit wire burst
        }
        let (decoded, _) = codec.decode(&coded);
        assert_eq!(decoded, payload);
    }

    #[test]
    fn coded_link_beats_uncoded_at_moderate_ber() {
        // Monte-Carlo: at a raw BER of ~1%, the coded link should deliver
        // far fewer residual errors than the uncoded one.
        let codec = PayloadCodec::new(7);
        let mut rng = GaussianSource::new(99);
        let payload: Vec<u8> = rng.bytes(512);
        let coded = codec.encode(&payload);
        let p_flip = 0.01;
        let flips = |bits: &[bool], rng: &mut GaussianSource| -> Vec<bool> {
            bits.iter()
                .map(|&b| {
                    if rng.uniform(0.0, 1.0) < p_flip {
                        !b
                    } else {
                        b
                    }
                })
                .collect()
        };
        // Coded path.
        let rx_coded = flips(&coded, &mut rng);
        let (decoded, _) = codec.decode(&rx_coded);
        let coded_errors: usize = decoded
            .iter()
            .zip(&payload)
            .map(|(a, b)| (a ^ b).count_ones() as usize)
            .sum();
        // Uncoded path over the same channel.
        let raw_bits = bytes_to_bits(&payload);
        let rx_raw = flips(&raw_bits, &mut rng);
        let raw_errors: usize = raw_bits.iter().zip(&rx_raw).filter(|(a, b)| a != b).count();
        assert!(
            coded_errors * 4 < raw_errors.max(1),
            "coded {coded_errors} vs raw {raw_errors}"
        );
    }

    #[test]
    fn rate_is_four_sevenths() {
        assert!((PayloadCodec::new(1).rate() - 4.0 / 7.0).abs() < 1e-12);
    }
}
