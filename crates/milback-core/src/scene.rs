//! Scenes: placements of the AP, node(s) and clutter, with exact ground
//! truth — the simulation's substitute for the paper's laser-meter and
//! protractor measurements (§9).

use mmwave_rf::channel::{ApFrontend, NodePose, Reflector, Vec2};
use serde::{Deserialize, Serialize};

/// A complete physical scene.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Scene {
    /// The AP's frontend geometry.
    pub ap: ApFrontend,
    /// Node poses (one for most experiments; several for SDM).
    pub nodes: Vec<NodePose>,
    /// Static clutter reflectors.
    pub clutter: Vec<Reflector>,
}

impl Scene {
    /// A single node at `distance_m` on the AP boresight, board rotated by
    /// `orientation_rad`, in an empty room.
    pub fn single_node(distance_m: f64, orientation_rad: f64) -> Self {
        assert!(distance_m > 0.0, "node must be in front of the AP");
        Self {
            ap: ApFrontend::milback_default(),
            nodes: vec![NodePose::on_boresight(distance_m, orientation_rad)],
            clutter: Vec::new(),
        }
    }

    /// The paper's indoor evaluation environment: "tables, chairs, and
    /// shelves" (§9) — a few strong static reflectors around the link.
    pub fn indoor(distance_m: f64, orientation_rad: f64) -> Self {
        let mut s = Self::single_node(distance_m, orientation_rad);
        s.clutter = vec![
            // A desk edge near the AP.
            Reflector {
                position: Vec2::new(1.6, 0.4),
                rcs_m2: 0.3,
            },
            // A metal shelf to the side.
            Reflector {
                position: Vec2::new(3.5, -1.2),
                rcs_m2: 0.8,
            },
            // The back wall behind the node.
            Reflector {
                position: Vec2::new(distance_m + 3.0, 0.0),
                rcs_m2: 2.0,
            },
            // A chair.
            Reflector {
                position: Vec2::new(2.4, 1.1),
                rcs_m2: 0.15,
            },
        ];
        s
    }

    /// Adds a node at `distance_m` and absolute azimuth `azimuth_rad` (from
    /// the AP), facing the AP with `orientation_rad` offset.
    pub fn with_node_at(mut self, distance_m: f64, azimuth_rad: f64, orientation_rad: f64) -> Self {
        let position = Vec2::from_polar(distance_m, azimuth_rad);
        let facing = std::f64::consts::PI + azimuth_rad + orientation_rad;
        self.nodes.push(NodePose {
            position,
            facing_rad: facing,
        });
        self
    }

    /// Ground truth for node `idx`: `(range_m, azimuth_rad, incidence_rad)`.
    ///
    /// # Panics
    /// Panics for an out-of-range index.
    pub fn ground_truth(&self, idx: usize) -> GroundTruth {
        let node = self.nodes[idx];
        GroundTruth {
            range_m: self.ap.position.distance_to(node.position),
            azimuth_rad: self.ap.azimuth_to(node.position),
            incidence_rad: node.incidence_from(self.ap.position),
        }
    }

    /// Fallible [`ground_truth`](Self::ground_truth): `None` for an
    /// out-of-range index.
    pub fn try_ground_truth(&self, idx: usize) -> Option<GroundTruth> {
        (idx < self.nodes.len()).then(|| self.ground_truth(idx))
    }

    /// A single-node view of this scene serving node `idx`: that node
    /// becomes the primary, clutter is shared, other nodes are dropped,
    /// and the AP's horns are mechanically steered at the served node (§8
    /// — the beam-steering is what makes SDM possible at all). `None` for
    /// an out-of-range index.
    pub fn view_for_node(&self, idx: usize) -> Option<Scene> {
        // Copy exactly one pose instead of cloning the whole node list: this
        // runs once per node per frame, so an O(nodes) clone here would make
        // a campaign quadratic at city scale.
        let node = *self.nodes.get(idx)?;
        let mut ap = self.ap;
        ap.boresight_rad = ap.position.bearing_to(node.position);
        Some(Scene {
            ap,
            nodes: vec![node],
            clutter: self.clutter.clone(),
        })
    }

    /// The primary (first) node's pose.
    ///
    /// # Panics
    /// Panics if the scene has no nodes.
    pub fn primary_node(&self) -> NodePose {
        self.nodes[0]
    }
}

/// Exact ground truth for one node.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GroundTruth {
    /// True AP–node distance, meters.
    pub range_m: f64,
    /// True azimuth of the node from AP boresight, radians.
    pub azimuth_rad: f64,
    /// True incidence angle at the node (its "orientation"), radians.
    pub incidence_rad: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_node_ground_truth() {
        let s = Scene::single_node(4.0, 10f64.to_radians());
        let gt = s.ground_truth(0);
        assert!((gt.range_m - 4.0).abs() < 1e-12);
        assert!(gt.azimuth_rad.abs() < 1e-12);
        assert!((gt.incidence_rad + 10f64.to_radians()).abs() < 1e-12);
    }

    #[test]
    fn indoor_scene_has_clutter() {
        let s = Scene::indoor(5.0, 0.0);
        assert_eq!(s.clutter.len(), 4);
        // Back wall sits behind the node.
        assert!(s.clutter[2].position.x > 5.0);
        // Clutter RCS values are physical.
        assert!(s.clutter.iter().all(|c| c.rcs_m2 > 0.0));
    }

    #[test]
    fn with_node_at_geometry() {
        let s = Scene::single_node(3.0, 0.0).with_node_at(5.0, 0.3, 0.05);
        assert_eq!(s.nodes.len(), 2);
        let gt = s.ground_truth(1);
        assert!((gt.range_m - 5.0).abs() < 1e-12);
        assert!((gt.azimuth_rad - 0.3).abs() < 1e-12);
        assert!((gt.incidence_rad + 0.05).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "in front of the AP")]
    fn rejects_zero_distance() {
        Scene::single_node(0.0, 0.0);
    }

    #[test]
    fn try_ground_truth_bounds_checks() {
        let s = Scene::single_node(4.0, 0.1);
        assert!(s.try_ground_truth(0).is_some());
        assert!(s.try_ground_truth(1).is_none());
    }

    #[test]
    fn view_for_node_steers_and_isolates() {
        let s = Scene::indoor(3.0, 0.1).with_node_at(5.0, 0.3, 0.05);
        let v = s.view_for_node(1).unwrap();
        assert_eq!(v.nodes.len(), 1);
        assert_eq!(v.nodes[0], s.nodes[1]);
        assert_eq!(v.clutter.len(), s.clutter.len());
        // Boresight points at the served node: its azimuth in the view is 0.
        assert!(v.ground_truth(0).azimuth_rad.abs() < 1e-12);
        // Range and incidence are preserved from the parent scene.
        let gt = s.ground_truth(1);
        assert!((v.ground_truth(0).range_m - gt.range_m).abs() < 1e-12);
        assert!(s.view_for_node(2).is_none());
    }
}
