//! Scenes: placements of the AP, node(s) and clutter, with exact ground
//! truth — the simulation's substitute for the paper's laser-meter and
//! protractor measurements (§9).

use crate::error::{MilbackError, Result};
use mmwave_rf::channel::{ApFrontend, NodePose, Reflector, Vec2};
use serde::{Deserialize, Serialize};

/// A complete physical scene.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Scene {
    /// The AP's frontend geometry.
    pub ap: ApFrontend,
    /// Node poses (one for most experiments; several for SDM).
    pub nodes: Vec<NodePose>,
    /// Static clutter reflectors.
    pub clutter: Vec<Reflector>,
}

impl Scene {
    /// A single node at `distance_m` on the AP boresight, board rotated by
    /// `orientation_rad`, in an empty room.
    pub fn single_node(distance_m: f64, orientation_rad: f64) -> Self {
        assert!(distance_m > 0.0, "node must be in front of the AP");
        Self {
            ap: ApFrontend::milback_default(),
            nodes: vec![NodePose::on_boresight(distance_m, orientation_rad)],
            clutter: Vec::new(),
        }
    }

    /// The paper's indoor evaluation environment: "tables, chairs, and
    /// shelves" (§9) — a few strong static reflectors around the link.
    pub fn indoor(distance_m: f64, orientation_rad: f64) -> Self {
        let mut s = Self::single_node(distance_m, orientation_rad);
        s.clutter = vec![
            // A desk edge near the AP.
            Reflector {
                position: Vec2::new(1.6, 0.4),
                rcs_m2: 0.3,
            },
            // A metal shelf to the side.
            Reflector {
                position: Vec2::new(3.5, -1.2),
                rcs_m2: 0.8,
            },
            // The back wall behind the node.
            Reflector {
                position: Vec2::new(distance_m + 3.0, 0.0),
                rcs_m2: 2.0,
            },
            // A chair.
            Reflector {
                position: Vec2::new(2.4, 1.1),
                rcs_m2: 0.15,
            },
        ];
        s
    }

    /// Adds a node at `distance_m` and absolute azimuth `azimuth_rad` (from
    /// the AP), facing the AP with `orientation_rad` offset.
    pub fn with_node_at(mut self, distance_m: f64, azimuth_rad: f64, orientation_rad: f64) -> Self {
        let position = Vec2::from_polar(distance_m, azimuth_rad);
        let facing = std::f64::consts::PI + azimuth_rad + orientation_rad;
        self.nodes.push(NodePose {
            position,
            facing_rad: facing,
        });
        self
    }

    /// Azimuth of node `k` among `n` evenly spaced across `span_rad`
    /// centered on boresight. A singleton (or empty) arc sits on
    /// boresight: the `k / (n - 1)` spacing division is guarded, so a
    /// 1-node grid never turns into NaN radians.
    pub fn arc_azimuth_rad(k: usize, n: usize, span_rad: f64) -> f64 {
        if n <= 1 {
            0.0
        } else {
            -span_rad / 2.0 + span_rad * k as f64 / (n - 1) as f64
        }
    }

    /// `n` nodes evenly spaced across a `span_rad`-wide arc at
    /// `radius_m`, all with the same board `orientation_rad` — the
    /// sector layout every MAC sweep and shard test places nodes on.
    pub fn arc(n: usize, radius_m: f64, span_rad: f64, orientation_rad: f64) -> Self {
        let mut scene = Scene::single_node(radius_m, orientation_rad);
        scene.nodes.clear();
        for k in 0..n {
            scene = scene.with_node_at(
                radius_m,
                Self::arc_azimuth_rad(k, n, span_rad),
                orientation_rad,
            );
        }
        scene
    }

    /// Ground truth for node `idx`: `(range_m, azimuth_rad, incidence_rad)`.
    ///
    /// # Panics
    /// Panics for an out-of-range index.
    pub fn ground_truth(&self, idx: usize) -> GroundTruth {
        let node = self.nodes[idx];
        GroundTruth {
            range_m: self.ap.position.distance_to(node.position),
            azimuth_rad: self.ap.azimuth_to(node.position),
            incidence_rad: node.incidence_from(self.ap.position),
        }
    }

    /// Fallible [`ground_truth`](Self::ground_truth): `None` for an
    /// out-of-range index.
    pub fn try_ground_truth(&self, idx: usize) -> Option<GroundTruth> {
        (idx < self.nodes.len()).then(|| self.ground_truth(idx))
    }

    /// A single-node view of this scene serving node `idx`: that node
    /// becomes the primary, clutter is shared, other nodes are dropped,
    /// and the AP's horns are mechanically steered at the served node (§8
    /// — the beam-steering is what makes SDM possible at all). `None` for
    /// an out-of-range index.
    pub fn view_for_node(&self, idx: usize) -> Option<Scene> {
        // Copy exactly one pose instead of cloning the whole node list: this
        // runs once per node per frame, so an O(nodes) clone here would make
        // a campaign quadratic at city scale.
        let node = *self.nodes.get(idx)?;
        let mut ap = self.ap;
        ap.boresight_rad = ap.position.bearing_to(node.position);
        Some(Scene {
            ap,
            nodes: vec![node],
            clutter: self.clutter.clone(),
        })
    }

    /// [`view_for_node`](Self::view_for_node) with a typed error instead
    /// of an `Option`: an out-of-range index is a
    /// [`MilbackError::NodeOutOfScene`], never a panic — relay routes can
    /// carry arbitrary indices, so every engine-side caller goes through
    /// this bound.
    pub fn view_for_node_checked(&self, idx: usize) -> Result<Scene> {
        self.view_for_node(idx).ok_or(MilbackError::NodeOutOfScene {
            idx,
            nodes: self.nodes.len(),
        })
    }

    /// The primary (first) node's pose.
    ///
    /// # Panics
    /// Panics if the scene has no nodes.
    pub fn primary_node(&self) -> NodePose {
        self.nodes[0]
    }
}

/// Exact ground truth for one node.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GroundTruth {
    /// True AP–node distance, meters.
    pub range_m: f64,
    /// True azimuth of the node from AP boresight, radians.
    pub azimuth_rad: f64,
    /// True incidence angle at the node (its "orientation"), radians.
    pub incidence_rad: f64,
}

/// AP coverage: which nodes the AP can reach directly, by range and
/// sector. The paper assumes every tag is AP-reachable; city-scale
/// scenes are not — a node past `ap_range_m` (or outside the served
/// sector) is a **gap node** whose only path is tag-to-tag relaying.
///
/// The [`unbounded`](Self::unbounded) model covers everything and is the
/// bit-exact parity configuration: classification is pure geometry (no
/// RNG draws), so an all-covered campaign is indistinguishable from one
/// that never classified at all.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CoverageModel {
    /// Maximum AP–node range the AP can serve, meters.
    pub ap_range_m: f64,
    /// Half-width of the served sector around boresight, radians.
    pub sector_half_rad: f64,
}

impl CoverageModel {
    /// Full coverage: every node is AP-reachable (the parity default).
    pub fn unbounded() -> Self {
        Self {
            ap_range_m: f64::INFINITY,
            sector_half_rad: f64::INFINITY,
        }
    }

    /// Range-limited coverage over the full sector — the cell-edge dead
    /// zone model: nodes past `ap_range_m` are gap nodes.
    pub fn with_range(ap_range_m: f64) -> Self {
        Self {
            ap_range_m,
            sector_half_rad: f64::INFINITY,
        }
    }

    /// Whether this model covers every finite placement.
    pub fn is_unbounded(&self) -> bool {
        self.ap_range_m == f64::INFINITY && self.sector_half_rad == f64::INFINITY
    }

    /// Whether a node at `gt` is AP-reachable under this model.
    pub fn covers(&self, gt: &GroundTruth) -> bool {
        gt.range_m <= self.ap_range_m && gt.azimuth_rad.abs() <= self.sector_half_rad
    }

    /// Per-node coverage flags for `scene`, in node-index order.
    pub fn classify(&self, scene: &Scene) -> Vec<bool> {
        (0..scene.nodes.len())
            .map(|idx| self.covers(&scene.ground_truth(idx)))
            .collect()
    }
}

impl Default for CoverageModel {
    fn default() -> Self {
        Self::unbounded()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_node_ground_truth() {
        let s = Scene::single_node(4.0, 10f64.to_radians());
        let gt = s.ground_truth(0);
        assert!((gt.range_m - 4.0).abs() < 1e-12);
        assert!(gt.azimuth_rad.abs() < 1e-12);
        assert!((gt.incidence_rad + 10f64.to_radians()).abs() < 1e-12);
    }

    #[test]
    fn indoor_scene_has_clutter() {
        let s = Scene::indoor(5.0, 0.0);
        assert_eq!(s.clutter.len(), 4);
        // Back wall sits behind the node.
        assert!(s.clutter[2].position.x > 5.0);
        // Clutter RCS values are physical.
        assert!(s.clutter.iter().all(|c| c.rcs_m2 > 0.0));
    }

    #[test]
    fn with_node_at_geometry() {
        let s = Scene::single_node(3.0, 0.0).with_node_at(5.0, 0.3, 0.05);
        assert_eq!(s.nodes.len(), 2);
        let gt = s.ground_truth(1);
        assert!((gt.range_m - 5.0).abs() < 1e-12);
        assert!((gt.azimuth_rad - 0.3).abs() < 1e-12);
        assert!((gt.incidence_rad + 0.05).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "in front of the AP")]
    fn rejects_zero_distance() {
        Scene::single_node(0.0, 0.0);
    }

    #[test]
    fn try_ground_truth_bounds_checks() {
        let s = Scene::single_node(4.0, 0.1);
        assert!(s.try_ground_truth(0).is_some());
        assert!(s.try_ground_truth(1).is_none());
    }

    #[test]
    fn singleton_arc_is_finite_on_boresight() {
        // Regression: `k / (n - 1)` used to divide by zero for n == 1 and
        // park the node at NaN radians.
        assert_eq!(Scene::arc_azimuth_rad(0, 1, 120f64.to_radians()), 0.0);
        assert_eq!(Scene::arc_azimuth_rad(0, 0, 1.0), 0.0);
        let s = Scene::arc(1, 4.0, 120f64.to_radians(), 0.1);
        let gt = s.ground_truth(0);
        assert!(gt.range_m.is_finite() && gt.azimuth_rad.is_finite());
        assert!(gt.azimuth_rad.abs() < 1e-12);
    }

    #[test]
    fn arc_spreads_nodes_across_the_span() {
        let span = 120f64.to_radians();
        let s = Scene::arc(5, 4.0, span, 0.0);
        assert_eq!(s.nodes.len(), 5);
        let first = s.ground_truth(0).azimuth_rad;
        let mid = s.ground_truth(2).azimuth_rad;
        let last = s.ground_truth(4).azimuth_rad;
        assert!((first + span / 2.0).abs() < 1e-9);
        assert!(mid.abs() < 1e-9);
        assert!((last - span / 2.0).abs() < 1e-9);
    }

    #[test]
    fn view_for_node_checked_reports_the_bound() {
        let s = Scene::single_node(4.0, 0.0);
        assert!(s.view_for_node_checked(0).is_ok());
        match s.view_for_node_checked(3) {
            Err(MilbackError::NodeOutOfScene { idx: 3, nodes: 1 }) => {}
            other => panic!("expected NodeOutOfScene, got {other:?}"),
        }
    }

    #[test]
    fn coverage_classifies_by_range_and_sector() {
        let span = 120f64.to_radians();
        let mut s = Scene::arc(3, 4.0, span, 0.0);
        s = s.with_node_at(9.0, 0.0, 0.0);
        let unbounded = CoverageModel::unbounded();
        assert!(unbounded.is_unbounded());
        assert_eq!(unbounded.classify(&s), vec![true; 4]);
        let ranged = CoverageModel::with_range(6.0);
        assert!(!ranged.is_unbounded());
        assert_eq!(ranged.classify(&s), vec![true, true, true, false]);
        let sectored = CoverageModel {
            ap_range_m: 6.0,
            sector_half_rad: 10f64.to_radians(),
        };
        // Only the on-boresight arc node stays covered; the far node
        // fails on range even though it sits on boresight.
        assert_eq!(sectored.classify(&s), vec![false, true, false, false]);
    }

    #[test]
    fn view_for_node_steers_and_isolates() {
        let s = Scene::indoor(3.0, 0.1).with_node_at(5.0, 0.3, 0.05);
        let v = s.view_for_node(1).unwrap();
        assert_eq!(v.nodes.len(), 1);
        assert_eq!(v.nodes[0], s.nodes[1]);
        assert_eq!(v.clutter.len(), s.clutter.len());
        // Boresight points at the served node: its azimuth in the view is 0.
        assert!(v.ground_truth(0).azimuth_rad.abs() < 1e-12);
        // Range and incidence are preserved from the parent scene.
        let gt = s.ground_truth(1);
        assert!((v.ground_truth(0).range_m - gt.range_m).abs() < 1e-12);
        assert!(s.view_for_node(2).is_none());
    }
}
