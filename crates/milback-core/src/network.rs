//! Multi-node operation via spatial division multiplexing (§7's closing
//! note): the AP creates beams toward different nodes and runs links
//! concurrently; angular separation and the horn/FSA patterns determine
//! inter-node interference.

use crate::config::SystemConfig;
use crate::engine::{ps_to_secs, Actor, ActorId, Engine, Outbox, TimePs};
use crate::error::{MilbackError, Result};
use crate::lifecycle::{DropReason, LifecycleStats, PacketId};
use crate::link::{LinkSimulator, UplinkOutcome};
use crate::pipeline::{ApServiceConfig, ApServiceStats, OverflowPolicy, StageKind};
use crate::protocol::{Packet, SlotPlan};
use crate::relay::RelayConfig;
use crate::scene::Scene;
use crate::telemetry::{
    CampaignProbe, Histogram, TraceRecord, BACKOFF_BUCKETS_FRAMES, ENERGY_BUCKETS_J,
    OCCUPANCY_BUCKETS, RELAY_HOP_BUCKETS, SNR_BUCKETS_DB,
};
use milback_node::power::{NodeActivity, NodePowerModel};
use mmwave_rf::antenna::Antenna;
use mmwave_sigproc::random::GaussianSource;
use mmwave_sigproc::units::db_to_lin;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// One node's link report in a multi-node round.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeReport {
    /// Node index in the scene.
    pub node_idx: usize,
    /// Uplink outcome for this node's slot/beam.
    pub outcome: UplinkOutcome,
    /// Worst-case interference margin from other concurrently-served
    /// nodes, dB (signal-to-cross-beam-interference).
    pub sdm_margin_db: f64,
}

/// The multi-node network coordinator.
#[derive(Debug, Clone)]
pub struct Network {
    /// Shared configuration.
    pub config: SystemConfig,
    /// Scene containing every node.
    pub scene: Scene,
}

impl Network {
    /// Creates a network over a scene with at least one node.
    pub fn new(config: SystemConfig, scene: Scene) -> Result<Self> {
        config.validate()?;
        if scene.nodes.is_empty() {
            return Err(MilbackError::Config(
                "network needs at least one node".into(),
            ));
        }
        Ok(Self { config, scene })
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.scene.nodes.len()
    }

    /// A single-node view of the scene for node `idx` (that node becomes
    /// the primary; clutter is shared; other nodes' structures are ignored
    /// except through [`sdm_margin_db`](Self::sdm_margin_db)).
    fn view_for(&self, idx: usize) -> Result<Scene> {
        self.scene.view_for_node_checked(idx)
    }

    /// Signal-to-interference margin (dB) for serving `idx` while `other`
    /// is simultaneously illuminated by a second beam: how much weaker the
    /// other beam's energy is toward node `idx`, through the AP horn
    /// pattern steered at each node.
    pub fn sdm_margin_db(&self, idx: usize, other: usize) -> f64 {
        assert!(idx != other, "a node does not interfere with itself");
        let gt_i = self.scene.ground_truth(idx);
        let gt_o = self.scene.ground_truth(other);
        let horn = mmwave_rf::antenna::Horn::miwave_20dbi();
        // Beam steered at node idx: gain toward it is the boresight gain.
        let wanted = horn.gain_dbi(28e9, 0.0);
        // Beam steered at the other node: off-axis gain toward node idx is
        // evaluated at their angular separation.
        let separation = (gt_i.azimuth_rad - gt_o.azimuth_rad).abs();
        let leak = horn.gain_dbi(28e9, separation);
        wanted - leak
    }

    /// Whether two nodes are separable by SDM with at least `margin_db` of
    /// beam isolation.
    pub fn sdm_separable(&self, idx: usize, other: usize, margin_db: f64) -> bool {
        self.sdm_margin_db(idx, other) >= margin_db
    }

    /// Serves node `idx` one uplink beam/slot: runs the link, then degrades
    /// the effective SNR by the worst concurrent-beam leakage.
    fn serve_uplink(
        &self,
        idx: usize,
        payload: &[u8],
        rng: &mut GaussianSource,
    ) -> Result<NodeReport> {
        let sim = LinkSimulator::new(self.config.clone(), self.view_for(idx)?)?;
        let mut outcome = sim.uplink(payload, rng)?;
        // Degrade the effective SNR by concurrent-beam interference if
        // another node's beam leaks over this one.
        let margin = (0..self.node_count())
            .filter(|&o| o != idx)
            .map(|o| self.sdm_margin_db(idx, o))
            .fold(f64::INFINITY, f64::min);
        if margin.is_finite() {
            let sig = db_to_lin(outcome.snr_db);
            let interference = db_to_lin(outcome.snr_db - margin);
            outcome.snr_db = 10.0 * (sig / (1.0 + interference)).log10();
        }
        Ok(NodeReport {
            node_idx: idx,
            outcome,
            sdm_margin_db: if margin.is_finite() { margin } else { f64::MAX },
        })
    }

    /// Runs an uplink round serving every node (each in its own beam/slot)
    /// on the discrete-event engine, through the staged AP service: every
    /// beam walks **Capture → Plan → Transmit** as three distinct events
    /// (capture the granted transmission, plan the beam's interference
    /// margin, then run the link), dispatched in posting order so a fixed
    /// seed reproduces [`uplink_round_direct`](Self::uplink_round_direct)
    /// bit-for-bit. This is
    /// [`uplink_round_service`](Self::uplink_round_service) with the
    /// instantaneous (zero-latency) service configuration.
    pub fn uplink_round(
        &self,
        payloads: &[Vec<u8>],
        rng: &mut GaussianSource,
    ) -> Result<Vec<NodeReport>> {
        self.uplink_round_service(payloads, rng, &ApServiceConfig::instantaneous())
    }

    /// [`uplink_round`](Self::uplink_round) under an explicit
    /// [`ApServiceConfig`]: each beam's Capture → Plan → Transmit events
    /// are spaced by the configured stage latencies. Beams are concurrent
    /// (one staged actor per node, no shared queue on this path), and the
    /// physics never reads the clock, so the round report is identical for
    /// any latency setting — only the event timeline stretches.
    pub fn uplink_round_service(
        &self,
        payloads: &[Vec<u8>],
        rng: &mut GaussianSource,
        service: &ApServiceConfig,
    ) -> Result<Vec<NodeReport>> {
        if payloads.len() != self.node_count() {
            return Err(MilbackError::Config(format!(
                "{} payloads for {} nodes",
                payloads.len(),
                self.node_count()
            )));
        }
        let n = self.node_count();
        let medium = RoundMedium {
            net: self,
            rng,
            payloads,
            margins: vec![None; n],
            reports: vec![None; n],
        };
        let mut engine = Engine::new(medium);
        for idx in 0..n {
            let id = engine.add_actor(Box::new(BeamActor {
                me: ActorId(idx),
                idx,
                service: *service,
            }));
            debug_assert_eq!(id, ActorId(idx));
            engine.post(0, id, RoundEvent::Stage(StageKind::Capture));
        }
        engine.run()?;
        let m = engine.into_medium();
        m.reports
            .into_iter()
            .enumerate()
            .map(|(idx, r)| {
                r.ok_or_else(|| MilbackError::Engine(format!("node {idx} was never served")))
            })
            .collect()
    }

    /// The pre-engine synchronous round, retained verbatim as the parity
    /// reference for [`uplink_round`](Self::uplink_round).
    pub fn uplink_round_direct(
        &self,
        payloads: &[Vec<u8>],
        rng: &mut GaussianSource,
    ) -> Result<Vec<NodeReport>> {
        if payloads.len() != self.node_count() {
            return Err(MilbackError::Config(format!(
                "{} payloads for {} nodes",
                payloads.len(),
                self.node_count()
            )));
        }
        (0..self.node_count())
            .map(|idx| self.serve_uplink(idx, &payloads[idx], rng))
            .collect()
    }

    /// Runs a slotted-ALOHA campaign on the engine: `frames` frames of the
    /// given [`SlotPlan`], every node transmitting `payload` once per frame
    /// in its hashed slot and sleeping otherwise (per-node duty cycling).
    ///
    /// When several nodes hash into the same slot, the AP attempts SDM: if
    /// every pair in the slot is separable by at least `sdm_threshold_db`
    /// of beam isolation, all are served concurrently (with
    /// cross-beam-degraded SNR); otherwise the slot is a collision and
    /// every packet in it is lost. Either way the transmitters spend uplink
    /// energy for the packet airtime — a lost slot still drains the ledger,
    /// which is exactly the cost ALOHA retries carry at scale.
    ///
    /// This is [`run_mac`](Self::run_mac) with the [`SlottedAloha`] policy;
    /// [`run_slotted_direct`](Self::run_slotted_direct) retains the
    /// pre-trait implementation as the bit-exactness reference.
    pub fn run_slotted(
        &self,
        frames: usize,
        payload: &[u8],
        plan: &SlotPlan,
        slot_seed: u64,
        sdm_threshold_db: f64,
        rng: &mut GaussianSource,
    ) -> Result<SlottedRunReport> {
        self.run_mac(
            Box::new(SlottedAloha::new(slot_seed)),
            frames,
            payload,
            plan,
            sdm_threshold_db,
            rng,
        )
    }

    /// Runs a slotted campaign under an arbitrary [`MacPolicy`]: the policy
    /// decides which nodes transmit in which slot of each frame, the engine
    /// fires the slots on the shared clock, and the AP arbitrates each
    /// group by SDM separability exactly as in
    /// [`run_slotted`](Self::run_slotted). Accounting (attempts, energy,
    /// collisions, duty-cycled idle drain) is policy-independent, so the
    /// per-node reports compare across policies.
    pub fn run_mac(
        &self,
        policy: Box<dyn MacPolicy>,
        frames: usize,
        payload: &[u8],
        plan: &SlotPlan,
        sdm_threshold_db: f64,
        rng: &mut GaussianSource,
    ) -> Result<SlottedRunReport> {
        self.run_mac_service(
            policy,
            frames,
            payload,
            plan,
            sdm_threshold_db,
            rng,
            &ApServiceConfig::instantaneous(),
        )
    }

    /// [`run_mac`](Self::run_mac) under an explicit [`ApServiceConfig`]:
    /// every granted slot flows through the AP's staged
    /// **Capture → Plan → Transmit** pipeline, each stage a distinct engine
    /// event with its configured processing latency and a bounded FIFO
    /// queue (see [`OverflowPolicy`] for what a full queue does). The
    /// instantaneous configuration reproduces [`run_mac`](Self::run_mac)
    /// bit-for-bit — `run_mac` is literally this function with that
    /// config — and the report's [`ApServiceStats`] ledger records
    /// offered/served/dropped/deferred/degraded grants either way.
    #[allow(clippy::too_many_arguments)]
    pub fn run_mac_service(
        &self,
        policy: Box<dyn MacPolicy>,
        frames: usize,
        payload: &[u8],
        plan: &SlotPlan,
        sdm_threshold_db: f64,
        rng: &mut GaussianSource,
        service: &ApServiceConfig,
    ) -> Result<SlottedRunReport> {
        let mut probe = CampaignProbe::disabled();
        self.run_mac_service_probed(
            policy,
            frames,
            payload,
            plan,
            sdm_threshold_db,
            rng,
            service,
            &mut probe,
        )
    }

    /// [`run_mac`](Self::run_mac) with an instrumentation probe attached.
    ///
    /// The probe collects counters/histograms (slot occupancy, collisions,
    /// energy, SNR) and — when tracing — structured records of every
    /// engine dispatch, slot outcome, policy decision, and energy draw.
    /// Recording is non-perturbing by construction: the probe only copies
    /// values the campaign already computed, draws no randomness, and
    /// reads no clocks; `run_mac` is literally this function with a
    /// disabled probe, and the parity suite proves both produce
    /// bit-identical reports.
    #[allow(clippy::too_many_arguments)]
    pub fn run_mac_probed(
        &self,
        policy: Box<dyn MacPolicy>,
        frames: usize,
        payload: &[u8],
        plan: &SlotPlan,
        sdm_threshold_db: f64,
        rng: &mut GaussianSource,
        probe: &mut CampaignProbe,
    ) -> Result<SlottedRunReport> {
        self.run_mac_service_probed(
            policy,
            frames,
            payload,
            plan,
            sdm_threshold_db,
            rng,
            &ApServiceConfig::instantaneous(),
            probe,
        )
    }

    /// [`run_mac_service`](Self::run_mac_service) with an instrumentation
    /// probe attached: besides the campaign counters the probe already
    /// collects, the staged pipeline records per-stage queue-occupancy
    /// histograms (`ap_queue_*`), the offered/served/dropped/deferred/
    /// degraded counters (`ap_*`), and — losslessly, straight from the
    /// engine's dispatch-time tallies — per-event-kind queue-depth
    /// histograms (`queue_depth_*`).
    #[allow(clippy::too_many_arguments)]
    pub fn run_mac_service_probed(
        &self,
        policy: Box<dyn MacPolicy>,
        frames: usize,
        payload: &[u8],
        plan: &SlotPlan,
        sdm_threshold_db: f64,
        rng: &mut GaussianSource,
        service: &ApServiceConfig,
        probe: &mut CampaignProbe,
    ) -> Result<SlottedRunReport> {
        let m = self.run_mac_engine(
            policy,
            frames,
            payload,
            plan,
            sdm_threshold_db,
            rng,
            service,
            &RelayConfig::disabled(),
            probe,
            None,
        )?;
        Ok(Self::finish_slotted(&m, frames, plan, payload))
    }

    /// [`run_mac`](Self::run_mac) with multi-hop tag-to-tag relaying:
    /// nodes outside `relay.coverage` (gap nodes) cannot be heard by the
    /// AP directly — their delivery path, if any, is the relay schedule
    /// the policy grants (see
    /// [`RelayAwareMac`](crate::relay::RelayAwareMac)). Per-hop energy and
    /// latency land in the report's relay columns.
    ///
    /// [`RelayConfig::disabled`] reproduces [`run_mac`](Self::run_mac)
    /// bit-for-bit: full coverage gates nothing, no routes exist, and no
    /// extra randomness is drawn — the parity suite proves it by `==` and
    /// `to_bits`.
    #[allow(clippy::too_many_arguments)]
    pub fn run_mac_relay(
        &self,
        policy: Box<dyn MacPolicy>,
        frames: usize,
        payload: &[u8],
        plan: &SlotPlan,
        sdm_threshold_db: f64,
        rng: &mut GaussianSource,
        relay: &RelayConfig,
    ) -> Result<SlottedRunReport> {
        self.run_mac_relay_service(
            policy,
            frames,
            payload,
            plan,
            sdm_threshold_db,
            rng,
            &ApServiceConfig::instantaneous(),
            relay,
        )
    }

    /// [`run_mac_relay`](Self::run_mac_relay) under an explicit
    /// [`ApServiceConfig`]. Relay chains are tag-side transmissions, so
    /// they bypass the AP's Capture → Plan → Transmit pipeline: only the
    /// terminal uplink's direct-slot siblings contend for AP service, and
    /// the service ledger counts direct grants exactly as without relays.
    #[allow(clippy::too_many_arguments)]
    pub fn run_mac_relay_service(
        &self,
        policy: Box<dyn MacPolicy>,
        frames: usize,
        payload: &[u8],
        plan: &SlotPlan,
        sdm_threshold_db: f64,
        rng: &mut GaussianSource,
        service: &ApServiceConfig,
        relay: &RelayConfig,
    ) -> Result<SlottedRunReport> {
        let mut probe = CampaignProbe::disabled();
        let m = self.run_mac_engine(
            policy,
            frames,
            payload,
            plan,
            sdm_threshold_db,
            rng,
            service,
            relay,
            &mut probe,
            None,
        )?;
        Ok(Self::finish_slotted(&m, frames, plan, payload))
    }

    /// [`run_mac`](Self::run_mac) with streaming accounting: instead of
    /// materializing a per-node `Vec<SlottedNodeReport>`, each node's
    /// ledger row is folded straight into `agg` — fixed-size counters and
    /// fixed-bucket histograms — so peak report memory is O(buckets), not
    /// O(nodes). `scratch` recycles the campaign's per-node ledger vectors
    /// across calls (a sharded runner's workers reuse one scratch per
    /// worker thread); its incoming contents are zeroed before use and
    /// never influence the result.
    ///
    /// The folded values are bit-identical to what
    /// [`run_mac`](Self::run_mac) reports: both paths share one engine run
    /// and one per-node finishing computation, differing only in whether
    /// each [`SlottedNodeReport`] is pushed into a `Vec` or observed into
    /// the aggregate.
    #[allow(clippy::too_many_arguments)]
    pub fn run_mac_streaming(
        &self,
        policy: Box<dyn MacPolicy>,
        frames: usize,
        payload: &[u8],
        plan: &SlotPlan,
        sdm_threshold_db: f64,
        rng: &mut GaussianSource,
        scratch: &mut CampaignScratch,
        agg: &mut CampaignAggregate,
    ) -> Result<()> {
        self.run_mac_streaming_service(
            policy,
            frames,
            payload,
            plan,
            sdm_threshold_db,
            rng,
            &ApServiceConfig::instantaneous(),
            scratch,
            agg,
        )
    }

    /// [`run_mac_streaming`](Self::run_mac_streaming) under an explicit
    /// [`ApServiceConfig`]: the per-node fold is unchanged, and the run's
    /// [`ApServiceStats`] (offered/served/dropped/deferred/degraded) fold
    /// into the aggregate's service ledger — exactly what
    /// [`CampaignAggregate::observe_run`] folds from a materialized
    /// report, so the streaming and report paths stay interchangeable.
    #[allow(clippy::too_many_arguments)]
    pub fn run_mac_streaming_service(
        &self,
        policy: Box<dyn MacPolicy>,
        frames: usize,
        payload: &[u8],
        plan: &SlotPlan,
        sdm_threshold_db: f64,
        rng: &mut GaussianSource,
        service: &ApServiceConfig,
        scratch: &mut CampaignScratch,
        agg: &mut CampaignAggregate,
    ) -> Result<()> {
        self.run_mac_streaming_relay_service(
            policy,
            frames,
            payload,
            plan,
            sdm_threshold_db,
            rng,
            service,
            &RelayConfig::disabled(),
            scratch,
            agg,
        )
    }

    /// [`run_mac_streaming_service`](Self::run_mac_streaming_service) with
    /// multi-hop relaying: the streaming counterpart of
    /// [`run_mac_relay_service`](Self::run_mac_relay_service), folding the
    /// per-node relay ledgers (gap classification, relayed deliveries,
    /// hops, forwarding energy, hop latency) straight into the aggregate's
    /// relay counters and hop histogram.
    #[allow(clippy::too_many_arguments)]
    pub fn run_mac_streaming_relay_service(
        &self,
        policy: Box<dyn MacPolicy>,
        frames: usize,
        payload: &[u8],
        plan: &SlotPlan,
        sdm_threshold_db: f64,
        rng: &mut GaussianSource,
        service: &ApServiceConfig,
        relay: &RelayConfig,
        scratch: &mut CampaignScratch,
        agg: &mut CampaignAggregate,
    ) -> Result<()> {
        let mut probe = CampaignProbe::disabled();
        let m = self.run_mac_engine(
            policy,
            frames,
            payload,
            plan,
            sdm_threshold_db,
            rng,
            service,
            relay,
            &mut probe,
            Some(scratch),
        )?;
        agg.begin_run(frames, ps_to_secs(plan.frame_ps()), payload.len());
        Self::for_each_node_report(&m, frames, plan, |r| agg.observe_node(&r));
        agg.service.merge_from(&m.service);
        agg.lifecycle.merge_from(&m.lifecycle);
        scratch.reclaim(m);
        Ok(())
    }

    /// The shared engine core of every policy-driven campaign path: runs
    /// `policy` over `frames` frames on a fresh [`Engine`] and returns the
    /// settled medium with its per-node ledgers. Callers decide how to
    /// finish the ledgers (per-node report `Vec` or streaming aggregate).
    #[allow(clippy::too_many_arguments)]
    fn run_mac_engine<'a>(
        &'a self,
        mut policy: Box<dyn MacPolicy>,
        frames: usize,
        payload: &'a [u8],
        plan: &SlotPlan,
        sdm_threshold_db: f64,
        rng: &'a mut GaussianSource,
        service: &ApServiceConfig,
        relay: &RelayConfig,
        probe: &mut CampaignProbe,
        scratch: Option<&mut CampaignScratch>,
    ) -> Result<SlotMedium<'a>> {
        let airtime_s = self.slotted_airtime_s(payload, plan)?;
        {
            let ctx = MacContext {
                net: self,
                plan: *plan,
                frames,
                sdm_threshold_db,
            };
            policy.begin(&ctx, rng);
        }
        // Jitter state is seeded from the trial stream only when jitter is
        // configured — the parity configuration draws nothing, leaving the
        // stream exactly where the pre-pipeline campaign expects it. Drawn
        // after `begin` so policies see the same stream position either way.
        let jitter_state = (service.jitter_ps > 0)
            .then(|| u64::from_le_bytes(rng.bytes(8).try_into().expect("eight bytes")));
        let mut medium = match scratch {
            Some(s) => self.slot_medium_recycled(payload, airtime_s, rng, s),
            None => self.slot_medium(payload, airtime_s, rng),
        };
        // Coverage defaults to all-true; an unbounded model skips the
        // classification loop entirely so the parity path never touches
        // the per-node flags (delivery gating on `true` is an identity).
        if !relay.coverage.is_unbounded() {
            for (idx, c) in medium.covered.iter_mut().enumerate() {
                *c = relay.coverage.covers(&self.scene.ground_truth(idx));
            }
            // Pre-classify every gap node's drop reason once per run (the
            // relay topology is static over a campaign), so the serve path
            // attributes uncovered losses by table lookup — no per-slot
            // graph work, no RNG, no clock.
            #[cfg(feature = "telemetry")]
            {
                medium.gap_reason =
                    crate::relay::classify_gap_reasons(&self.scene, &medium.covered, relay);
            }
        }
        medium.probe = std::mem::take(probe);
        let trace = medium.probe.trace.clone();
        let want_depths = medium.probe.metrics.is_some();
        let mut engine = Engine::new(medium);
        if let Some(sink) = trace {
            engine.set_tracer(sink, slot_event_label);
        }
        if want_depths {
            engine.enable_depth_stats(slot_event_label);
        }
        let coordinator = engine.add_actor(Box::new(PolicyCoordinator {
            me: ActorId(0),
            plan: *plan,
            frames,
            sdm_threshold_db,
            policy,
            schedule: Vec::new(),
            service: *service,
            relay: *relay,
            relay_schedule: Vec::new(),
            stages: Default::default(),
            jitter_state,
        }));
        if frames > 0 {
            engine.post(0, coordinator, SlotEvent::FrameStart { frame: 0 });
        }
        engine.run()?;
        let depths = engine.take_depth_stats();
        let mut m = engine.into_medium();
        *probe = std::mem::take(&mut m.probe);
        if let Some(d) = depths {
            probe.merge_queue_depths(d.entries());
        }
        Ok(m)
    }

    /// The pre-trait slotted-ALOHA campaign, retained verbatim as the
    /// parity reference for the [`SlottedAloha`]-behind-[`MacPolicy`]
    /// refactor (the same role [`uplink_round_direct`](Self::uplink_round_direct)
    /// plays for the engine re-layering).
    pub fn run_slotted_direct(
        &self,
        frames: usize,
        payload: &[u8],
        plan: &SlotPlan,
        slot_seed: u64,
        sdm_threshold_db: f64,
        rng: &mut GaussianSource,
    ) -> Result<SlottedRunReport> {
        let airtime_s = self.slotted_airtime_s(payload, plan)?;
        let medium = self.slot_medium(payload, airtime_s, rng);
        let mut engine = Engine::new(medium);
        let coordinator = engine.add_actor(Box::new(SlotCoordinator {
            me: ActorId(0),
            plan: *plan,
            frames,
            slot_seed,
            sdm_threshold_db,
        }));
        if frames > 0 {
            engine.post(0, coordinator, SlotEvent::FrameStart { frame: 0 });
        }
        engine.run()?;
        let m = engine.into_medium();
        Ok(Self::finish_slotted(&m, frames, plan, payload))
    }

    /// Validates that one `payload` packet (plus guard) fits a slot of
    /// `plan` and returns the packet airtime in seconds.
    fn slotted_airtime_s(&self, payload: &[u8], plan: &SlotPlan) -> Result<f64> {
        let packet = Packet::uplink(payload.to_vec());
        let airtime_s = packet.duration_s(&self.config.fmcw, self.config.uplink_symbol_rate_hz);
        if packet.duration_ps(&self.config.fmcw, self.config.uplink_symbol_rate_hz) > plan.slot_ps {
            return Err(MilbackError::Config(format!(
                "a {airtime_s:.3e} s packet does not fit the plan's {:.3e} s slots",
                ps_to_secs(plan.slot_ps)
            )));
        }
        Ok(airtime_s)
    }

    /// A fresh campaign medium with zeroed per-node ledgers.
    fn slot_medium<'a>(
        &'a self,
        payload: &'a [u8],
        airtime_s: f64,
        rng: &'a mut GaussianSource,
    ) -> SlotMedium<'a> {
        let n = self.node_count();
        SlotMedium {
            net: self,
            rng,
            payload,
            airtime_s,
            power: NodePowerModel::milback_default(),
            attempts: vec![0; n],
            delivered: vec![0; n],
            collisions: vec![0; n],
            energy_j: vec![0.0; n],
            snr_sum_db: vec![0.0; n],
            covered: vec![true; n],
            relayed: vec![0; n],
            relay_hops: vec![0; n],
            forwarded: vec![0; n],
            relay_energy_j: vec![0.0; n],
            relay_latency_s: vec![0.0; n],
            gap_reason: Vec::new(),
            lifecycle: LifecycleStats::new(),
            probe: CampaignProbe::disabled(),
            service: ApServiceStats::default(),
        }
    }

    /// A campaign medium whose per-node ledgers recycle `scratch`'s
    /// vectors (zeroed before use). Bit-identical to
    /// [`slot_medium`](Self::slot_medium): only the allocations differ.
    fn slot_medium_recycled<'a>(
        &'a self,
        payload: &'a [u8],
        airtime_s: f64,
        rng: &'a mut GaussianSource,
        scratch: &mut CampaignScratch,
    ) -> SlotMedium<'a> {
        let n = self.node_count();
        fn recycle<T: Copy>(v: &mut Vec<T>, n: usize, zero: T) -> Vec<T> {
            let mut v = std::mem::take(v);
            v.clear();
            v.resize(n, zero);
            v
        }
        SlotMedium {
            net: self,
            rng,
            payload,
            airtime_s,
            power: NodePowerModel::milback_default(),
            attempts: recycle(&mut scratch.attempts, n, 0),
            delivered: recycle(&mut scratch.delivered, n, 0),
            collisions: recycle(&mut scratch.collisions, n, 0),
            energy_j: recycle(&mut scratch.energy_j, n, 0.0),
            snr_sum_db: recycle(&mut scratch.snr_sum_db, n, 0.0),
            covered: recycle(&mut scratch.covered, n, true),
            relayed: recycle(&mut scratch.relayed, n, 0),
            relay_hops: recycle(&mut scratch.relay_hops, n, 0),
            forwarded: recycle(&mut scratch.forwarded, n, 0),
            relay_energy_j: recycle(&mut scratch.relay_energy_j, n, 0.0),
            relay_latency_s: recycle(&mut scratch.relay_latency_s, n, 0.0),
            gap_reason: Vec::new(),
            lifecycle: LifecycleStats::new(),
            probe: CampaignProbe::disabled(),
            service: ApServiceStats::default(),
        }
    }

    /// Runs each node's finished report — duty-cycled idle energy folded
    /// in — through `each`, without materializing a report `Vec`. Shared
    /// by every MAC finishing path so accounting cannot drift between the
    /// per-node-report and streaming-aggregate outputs.
    fn for_each_node_report(
        m: &SlotMedium<'_>,
        frames: usize,
        plan: &SlotPlan,
        mut each: impl FnMut(SlottedNodeReport),
    ) {
        let n = m.net.node_count();
        // Duty cycling: outside its own transmissions every node idles.
        let total_s = frames as f64 * ps_to_secs(plan.frame_ps());
        for idx in 0..n {
            // Forwarded relay transmissions are airtime too: without them
            // the idle-energy complement would double-bill relays as both
            // transmitting and idling. Zero forwards reproduces the
            // pre-relay expression bit-for-bit.
            let active_s = (m.attempts[idx] + m.forwarded[idx]) as f64 * m.airtime_s;
            let energy_j =
                m.energy_j[idx] + m.power.energy_j(NodeActivity::Idle, total_s - active_s);
            each(SlottedNodeReport {
                node_idx: idx,
                attempts: m.attempts[idx],
                delivered: m.delivered[idx],
                collisions: m.collisions[idx],
                energy_j,
                mean_snr_db: (m.delivered[idx] > 0)
                    .then(|| m.snr_sum_db[idx] / m.delivered[idx] as f64),
                gap: !m.covered[idx],
                relayed: m.relayed[idx],
                relay_hops: m.relay_hops[idx],
                forwarded: m.forwarded[idx],
                relay_energy_j: m.relay_energy_j[idx],
                relay_latency_s: m.relay_latency_s[idx],
            });
        }
    }

    /// Assembles the per-node report `Vec` from a settled medium — the
    /// collecting counterpart of the streaming fold in
    /// [`run_mac_streaming`](Self::run_mac_streaming); both walk
    /// [`for_each_node_report`](Self::for_each_node_report).
    fn finish_slotted(
        m: &SlotMedium<'_>,
        frames: usize,
        plan: &SlotPlan,
        payload: &[u8],
    ) -> SlottedRunReport {
        let mut nodes = Vec::with_capacity(m.net.node_count());
        Self::for_each_node_report(m, frames, plan, |r| nodes.push(r));
        debug_assert!(
            m.lifecycle.audit().is_ok(),
            "lifecycle ledger must conserve at run end: {:?}",
            m.lifecycle.audit()
        );
        SlottedRunReport {
            frames,
            frame_s: ps_to_secs(plan.frame_ps()),
            payload_bytes: payload.len(),
            nodes,
            service: m.service,
            lifecycle: m.lifecycle.clone(),
        }
    }
}

/// Events of one SDM uplink round: each beam walks the three AP service
/// stages (the staged replacement of the old single `ServeNode` event).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RoundEvent {
    /// One AP service stage of this actor's beam.
    Stage(StageKind),
}

/// Shared medium of an uplink round.
struct RoundMedium<'a> {
    net: &'a Network,
    rng: &'a mut GaussianSource,
    payloads: &'a [Vec<u8>],
    /// Per-beam planned interference margin (dB), set by the Plan stage
    /// and consumed by Transmit. `f64::INFINITY` means no interferer.
    margins: Vec<Option<f64>>,
    reports: Vec<Option<NodeReport>>,
}

/// One beam, pointed at one node, serving it through the staged AP
/// pipeline: Capture validates the node view, Plan computes the
/// worst-case concurrent-beam margin, Transmit runs the link and applies
/// it. The split computes exactly what the retained
/// [`Network::serve_uplink`] computes (the margin fold and the SNR
/// degradation are pure float expressions, and the RNG is drawn only in
/// Transmit, in node order), so the parity suite's `==`/`to_bits` checks
/// against [`Network::uplink_round_direct`] hold for any stage latency.
struct BeamActor {
    me: ActorId,
    idx: usize,
    service: ApServiceConfig,
}

impl<'a> Actor<RoundMedium<'a>, RoundEvent> for BeamActor {
    fn on_event(
        &mut self,
        now_ps: TimePs,
        event: &RoundEvent,
        m: &mut RoundMedium<'a>,
        out: &mut Outbox<RoundEvent>,
    ) -> Result<()> {
        let RoundEvent::Stage(stage) = *event;
        match stage {
            StageKind::Capture => {
                // Front-end capture: the beam exists and the node is in
                // view; anything else is a configuration error surfaced
                // before any plan or transmission work is spent.
                m.net.view_for(self.idx)?;
                out.post_at(
                    now_ps + self.service.stage_latency_ps(StageKind::Capture),
                    self.me,
                    RoundEvent::Stage(StageKind::Plan),
                );
            }
            StageKind::Plan => {
                // Beam plan: the worst concurrent-beam leakage toward this
                // node — the same pure fold `serve_uplink` computes.
                let margin = (0..m.net.node_count())
                    .filter(|&o| o != self.idx)
                    .map(|o| m.net.sdm_margin_db(self.idx, o))
                    .fold(f64::INFINITY, f64::min);
                m.margins[self.idx] = Some(margin);
                out.post_at(
                    now_ps + self.service.stage_latency_ps(StageKind::Plan),
                    self.me,
                    RoundEvent::Stage(StageKind::Transmit),
                );
            }
            StageKind::Transmit => {
                let margin = m.margins[self.idx]
                    .ok_or_else(|| MilbackError::Engine("transmit before plan".into()))?;
                let sim = LinkSimulator::new(m.net.config.clone(), m.net.view_for(self.idx)?)?;
                let mut outcome = sim.uplink(&m.payloads[self.idx], m.rng)?;
                if margin.is_finite() {
                    let sig = db_to_lin(outcome.snr_db);
                    let interference = db_to_lin(outcome.snr_db - margin);
                    outcome.snr_db = 10.0 * (sig / (1.0 + interference)).log10();
                }
                m.reports[self.idx] = Some(NodeReport {
                    node_idx: self.idx,
                    outcome,
                    sdm_margin_db: if margin.is_finite() { margin } else { f64::MAX },
                });
            }
        }
        Ok(())
    }
}

/// One node's statistics over a slotted multi-node run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SlottedNodeReport {
    /// Node index in the scene.
    pub node_idx: usize,
    /// Packets transmitted (one per frame).
    pub attempts: usize,
    /// Packets delivered intact at the AP.
    pub delivered: usize,
    /// Packets lost to unseparable slot collisions.
    pub collisions: usize,
    /// Total node energy over the run (transmit + idle), joules.
    pub energy_j: f64,
    /// Mean effective SNR of the delivered packets, dB; `None` when
    /// nothing got through. (A `NaN` sentinel here made `==`-based parity
    /// and determinism checks silently unsatisfiable and leaked
    /// `null`/`NaN` into serialized reports.)
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub mean_snr_db: Option<f64>,
    /// True when the node sits outside the campaign's AP coverage (a
    /// cell-edge gap node): its direct uplinks cannot be heard, so any
    /// delivery it reports arrived over a relay route. Always `false`
    /// under the default unbounded coverage, and for pre-relay reports
    /// (`serde(default)`).
    #[serde(default)]
    pub gap: bool,
    /// Of `delivered`, how many arrived over a multi-hop relay route.
    #[serde(default)]
    pub relayed: usize,
    /// Total transmissions across this node's relayed deliveries (tag
    /// hops + the terminal uplink each; direct counts as 1), so
    /// `relay_hops / relayed` is the mean route length.
    #[serde(default)]
    pub relay_hops: usize,
    /// Packets this node forwarded on behalf of other nodes' routes.
    #[serde(default)]
    pub forwarded: usize,
    /// Energy spent forwarding other nodes' packets, joules (already
    /// included in `energy_j` — this is the relay share, not an extra).
    #[serde(default)]
    pub relay_energy_j: f64,
    /// Extra delivery latency this node's relayed packets accrued over a
    /// direct uplink (one slot per tag hop), seconds, summed across its
    /// relayed deliveries.
    #[serde(default)]
    pub relay_latency_s: f64,
}

/// The outcome of [`Network::run_slotted`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SlottedRunReport {
    /// Frames simulated.
    pub frames: usize,
    /// Frame duration, seconds.
    pub frame_s: f64,
    /// Payload size per packet, bytes.
    pub payload_bytes: usize,
    /// Per-node statistics.
    pub nodes: Vec<SlottedNodeReport>,
    /// AP service pipeline accounting for the run. Defaults to all-zero
    /// when deserializing pre-pipeline reports.
    #[serde(default)]
    pub service: ApServiceStats,
    /// Packet-lifecycle ledger for the run: offered/delivered totals,
    /// drop counts by [`DropReason`] taxonomy slot, and the three latency
    /// sketches. Defaults to empty when deserializing pre-lifecycle
    /// reports; all-zero in a telemetry-off build.
    #[serde(default)]
    pub lifecycle: LifecycleStats,
}

impl SlottedRunReport {
    /// Elapsed campaign time, seconds.
    pub fn elapsed_s(&self) -> f64 {
        self.frames as f64 * self.frame_s
    }

    /// A node's goodput over the campaign, bits/second.
    pub fn goodput_bps(&self, node_idx: usize) -> f64 {
        let elapsed = self.elapsed_s();
        if elapsed <= 0.0 {
            return 0.0;
        }
        self.nodes[node_idx].delivered as f64 * self.payload_bytes as f64 * 8.0 / elapsed
    }

    /// A node's energy per delivered packet, joules; `None` when nothing
    /// got through. (An `INFINITY` sentinel here leaked `inf` into CSV
    /// rows at high node counts; callers now emit an empty cell instead.)
    pub fn energy_per_packet_j(&self, node_idx: usize) -> Option<f64> {
        let n = &self.nodes[node_idx];
        (n.delivered > 0).then(|| n.energy_j / n.delivered as f64)
    }
}

/// Streaming campaign accounting: fixed-size counters plus the fixed-bucket
/// telemetry histograms, folded node-by-node and merged cell-by-cell in
/// deterministic order (the same discipline as
/// [`Metrics::merge_from`](crate::telemetry::Metrics::merge_from)).
///
/// This is the city-scale replacement for per-node
/// `Vec<SlottedNodeReport>` accounting: an aggregate's size is a function
/// of its histogram bucket counts alone, so a sharded campaign's peak
/// report memory is O(cells + buckets) — never O(nodes). The u64 counters
/// and histogram buckets are exact (integer adds), so folding node reports
/// in any cell order produces identical counters/buckets; the f64 sums are
/// reproducible for a *fixed* fold order, which the sharded runner
/// guarantees by merging cells in index order.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignAggregate {
    /// Cell campaigns folded in (1 for a plain run).
    pub cells: u64,
    /// Nodes observed across all cells.
    pub nodes: u64,
    /// Frames per cell campaign (identical across a campaign's cells).
    pub frames: u64,
    /// Frame duration, seconds.
    pub frame_s: f64,
    /// Payload size per packet, bytes.
    pub payload_bytes: u64,
    /// Packets transmitted, network-wide.
    pub attempts: u64,
    /// Packets delivered intact, network-wide.
    pub delivered: u64,
    /// Packets lost to unseparable collisions, network-wide.
    pub collisions: u64,
    /// Total node energy over the campaign (transmit + idle), joules.
    pub energy_j: f64,
    /// Sum of per-node mean delivered SNRs over the delivering nodes, dB.
    pub snr_sum_db: f64,
    /// Nodes that delivered at least one packet.
    pub delivering_nodes: u64,
    /// Per-node total-energy distribution over [`ENERGY_BUCKETS_J`].
    pub node_energy_j: Histogram,
    /// Per-node mean-delivered-SNR distribution over [`SNR_BUCKETS_DB`].
    pub node_snr_db: Histogram,
    /// Nodes outside AP coverage (cell-edge gap nodes).
    pub gap_nodes: u64,
    /// Packets attempted by gap nodes (their direct attempts can never
    /// deliver, so these dominate the no-relay loss).
    pub gap_attempts: u64,
    /// Packets gap nodes got through (necessarily over relay routes).
    pub gap_delivered: u64,
    /// Packets delivered over multi-hop relay routes, network-wide.
    pub relayed: u64,
    /// Total transmissions across relayed deliveries (route length summed
    /// per delivery), so `relayed > 0` makes `relay_hops / relayed` the
    /// mean route length.
    pub relay_hops: u64,
    /// Forwarding transmissions performed on behalf of other nodes.
    pub forwarded: u64,
    /// Energy spent forwarding, joules (a share of `energy_j`).
    pub relay_energy_j: f64,
    /// Extra relay latency over direct uplinks, seconds, summed across
    /// relayed deliveries.
    pub relay_latency_s: f64,
    /// Per-node mean-route-length distribution over
    /// [`RELAY_HOP_BUCKETS`], observed only for nodes with at least one
    /// relayed delivery.
    pub node_relay_hops: Histogram,
    /// AP service pipeline accounting summed over the folded runs —
    /// exact u64 adds, so any cell merge order agrees.
    pub service: ApServiceStats,
    /// Packet-lifecycle ledger summed over the folded runs: exact
    /// integer adds plus fixed-bucket sketch merges, so merging cells in
    /// index order reproduces counts and percentiles bit-identically at
    /// any thread count.
    pub lifecycle: LifecycleStats,
}

impl CampaignAggregate {
    /// An empty aggregate (all counters zero, histograms empty).
    pub fn new() -> Self {
        Self {
            cells: 0,
            nodes: 0,
            frames: 0,
            frame_s: 0.0,
            payload_bytes: 0,
            attempts: 0,
            delivered: 0,
            collisions: 0,
            energy_j: 0.0,
            snr_sum_db: 0.0,
            delivering_nodes: 0,
            node_energy_j: Histogram::new(ENERGY_BUCKETS_J),
            node_snr_db: Histogram::new(SNR_BUCKETS_DB),
            gap_nodes: 0,
            gap_attempts: 0,
            gap_delivered: 0,
            relayed: 0,
            relay_hops: 0,
            forwarded: 0,
            relay_energy_j: 0.0,
            relay_latency_s: 0.0,
            node_relay_hops: Histogram::new(RELAY_HOP_BUCKETS),
            service: ApServiceStats::default(),
            lifecycle: LifecycleStats::new(),
        }
    }

    /// Opens one cell campaign's fold: records the campaign shape and
    /// counts the cell. Call once per cell, then
    /// [`observe_node`](Self::observe_node) per node.
    pub fn begin_run(&mut self, frames: usize, frame_s: f64, payload_bytes: usize) {
        if self.cells > 0 {
            debug_assert_eq!(
                self.frames, frames as u64,
                "cells must share a campaign shape"
            );
            debug_assert_eq!(self.frame_s.to_bits(), frame_s.to_bits());
            debug_assert_eq!(self.payload_bytes, payload_bytes as u64);
        }
        self.frames = frames as u64;
        self.frame_s = frame_s;
        self.payload_bytes = payload_bytes as u64;
        self.cells += 1;
    }

    /// Folds one node's finished report into the aggregate.
    pub fn observe_node(&mut self, r: &SlottedNodeReport) {
        self.nodes += 1;
        self.attempts += r.attempts as u64;
        self.delivered += r.delivered as u64;
        self.collisions += r.collisions as u64;
        self.energy_j += r.energy_j;
        self.node_energy_j.observe(r.energy_j);
        if let Some(snr) = r.mean_snr_db {
            self.delivering_nodes += 1;
            self.snr_sum_db += snr;
            self.node_snr_db.observe(snr);
        }
        if r.gap {
            self.gap_nodes += 1;
            self.gap_attempts += r.attempts as u64;
            self.gap_delivered += r.delivered as u64;
        }
        self.relayed += r.relayed as u64;
        self.relay_hops += r.relay_hops as u64;
        self.forwarded += r.forwarded as u64;
        self.relay_energy_j += r.relay_energy_j;
        self.relay_latency_s += r.relay_latency_s;
        if r.relayed > 0 {
            self.node_relay_hops
                .observe(r.relay_hops as f64 / r.relayed as f64);
        }
    }

    /// Folds a whole per-node report into the aggregate — the reference
    /// the streaming path and the property suite compare against.
    pub fn observe_run(&mut self, r: &SlottedRunReport) {
        self.begin_run(r.frames, r.frame_s, r.payload_bytes);
        for node in &r.nodes {
            self.observe_node(node);
        }
        self.service.merge_from(&r.service);
        self.lifecycle.merge_from(&r.lifecycle);
    }

    /// The aggregate of one materialized report.
    pub fn from_report(r: &SlottedRunReport) -> Self {
        let mut agg = Self::new();
        agg.observe_run(r);
        agg
    }

    /// Folds another aggregate into this one. Merge cells in index order:
    /// counters and buckets are exact either way, and a fixed order makes
    /// the f64 sums reproducible at any thread count.
    pub fn merge_from(&mut self, other: &Self) {
        if other.cells == 0 && other.nodes == 0 {
            return;
        }
        if self.cells == 0 {
            self.frames = other.frames;
            self.frame_s = other.frame_s;
            self.payload_bytes = other.payload_bytes;
        } else if other.cells > 0 {
            debug_assert_eq!(
                self.frames, other.frames,
                "cells must share a campaign shape"
            );
            debug_assert_eq!(self.frame_s.to_bits(), other.frame_s.to_bits());
            debug_assert_eq!(self.payload_bytes, other.payload_bytes);
        }
        self.cells += other.cells;
        self.nodes += other.nodes;
        self.attempts += other.attempts;
        self.delivered += other.delivered;
        self.collisions += other.collisions;
        self.energy_j += other.energy_j;
        self.snr_sum_db += other.snr_sum_db;
        self.delivering_nodes += other.delivering_nodes;
        self.node_energy_j.merge_from(&other.node_energy_j);
        self.node_snr_db.merge_from(&other.node_snr_db);
        self.gap_nodes += other.gap_nodes;
        self.gap_attempts += other.gap_attempts;
        self.gap_delivered += other.gap_delivered;
        self.relayed += other.relayed;
        self.relay_hops += other.relay_hops;
        self.forwarded += other.forwarded;
        self.relay_energy_j += other.relay_energy_j;
        self.relay_latency_s += other.relay_latency_s;
        self.node_relay_hops.merge_from(&other.node_relay_hops);
        self.service.merge_from(&other.service);
        self.lifecycle.merge_from(&other.lifecycle);
    }

    /// Elapsed campaign time, seconds (cells run concurrently in
    /// simulated time — each serves its own AP).
    pub fn elapsed_s(&self) -> f64 {
        self.frames as f64 * self.frame_s
    }

    /// Delivered over attempted, network-wide; `None` before any attempt.
    pub fn delivery_rate(&self) -> Option<f64> {
        (self.attempts > 0).then(|| self.delivered as f64 / self.attempts as f64)
    }

    /// Network-wide goodput over the campaign, bits/second.
    pub fn goodput_bps(&self) -> f64 {
        let elapsed = self.elapsed_s();
        if elapsed <= 0.0 {
            return 0.0;
        }
        self.delivered as f64 * self.payload_bytes as f64 * 8.0 / elapsed
    }

    /// Mean node energy over the campaign, joules; `None` with no nodes.
    pub fn mean_energy_per_node_j(&self) -> Option<f64> {
        (self.nodes > 0).then(|| self.energy_j / self.nodes as f64)
    }

    /// Total energy per delivered packet, joules; `None` when nothing got
    /// through.
    pub fn energy_per_delivered_j(&self) -> Option<f64> {
        (self.delivered > 0).then(|| self.energy_j / self.delivered as f64)
    }

    /// Mean of the per-node mean delivered SNRs, dB; `None` when nothing
    /// got through anywhere.
    pub fn mean_snr_db(&self) -> Option<f64> {
        (self.delivering_nodes > 0).then(|| self.snr_sum_db / self.delivering_nodes as f64)
    }

    /// Delivered over attempted among gap nodes alone; `None` when no gap
    /// node attempted anything (including the all-covered default).
    /// Without relaying this is exactly 0; the `net_relay` sweep shows it
    /// recovering with `max_hops`.
    pub fn gap_delivery_rate(&self) -> Option<f64> {
        (self.gap_attempts > 0).then(|| self.gap_delivered as f64 / self.gap_attempts as f64)
    }

    /// Mean route length (transmissions per relayed delivery; direct
    /// would be 1); `None` when nothing was relayed.
    pub fn mean_relay_hops(&self) -> Option<f64> {
        (self.relayed > 0).then(|| self.relay_hops as f64 / self.relayed as f64)
    }

    /// Forwarding energy per relayed delivery, joules; `None` when
    /// nothing was relayed.
    pub fn relay_energy_per_delivered_j(&self) -> Option<f64> {
        (self.relayed > 0).then(|| self.relay_energy_j / self.relayed as f64)
    }

    /// Mean extra latency per relayed delivery, seconds; `None` when
    /// nothing was relayed.
    pub fn mean_relay_latency_s(&self) -> Option<f64> {
        (self.relayed > 0).then(|| self.relay_latency_s / self.relayed as f64)
    }

    /// Total histogram bucket slots held — the aggregate's only
    /// node-count-independent heap footprint, which the bounded-memory
    /// acceptance check compares across campaign sizes.
    pub fn bucket_footprint(&self) -> usize {
        self.node_energy_j.counts.len()
            + self.node_snr_db.counts.len()
            + self.node_relay_hops.counts.len()
            + self.lifecycle.bucket_footprint()
    }
}

impl Default for CampaignAggregate {
    fn default() -> Self {
        Self::new()
    }
}

/// Reusable per-worker ledger buffers for campaign runs: the five per-node
/// ledger vectors a [`Network::run_mac_streaming`] campaign needs, recycled
/// across a worker's cells instead of reallocated per cell. Contents are
/// zeroed before every use, so (per the
/// [`parallel::for_each_chunk_with`](mmwave_sigproc::parallel::for_each_chunk_with)
/// contract) scratch state can never influence a result.
#[derive(Debug, Default)]
pub struct CampaignScratch {
    attempts: Vec<usize>,
    delivered: Vec<usize>,
    collisions: Vec<usize>,
    energy_j: Vec<f64>,
    snr_sum_db: Vec<f64>,
    covered: Vec<bool>,
    relayed: Vec<usize>,
    relay_hops: Vec<usize>,
    forwarded: Vec<usize>,
    relay_energy_j: Vec<f64>,
    relay_latency_s: Vec<f64>,
}

impl CampaignScratch {
    /// Empty scratch; buffers grow to the largest cell a worker runs.
    pub fn new() -> Self {
        Self::default()
    }

    /// Takes a settled medium's ledger vectors back for the next cell.
    fn reclaim(&mut self, m: SlotMedium<'_>) {
        self.attempts = m.attempts;
        self.delivered = m.delivered;
        self.collisions = m.collisions;
        self.energy_j = m.energy_j;
        self.snr_sum_db = m.snr_sum_db;
        self.covered = m.covered;
        self.relayed = m.relayed;
        self.relay_hops = m.relay_hops;
        self.forwarded = m.forwarded;
        self.relay_energy_j = m.relay_energy_j;
        self.relay_latency_s = m.relay_latency_s;
    }
}

/// Events of a slotted campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SlotEvent {
    /// A frame boundary: hash every node to its slot and schedule the
    /// occupied slots.
    FrameStart {
        /// Frame number.
        frame: usize,
    },
    /// An occupied slot's airtime begins.
    SlotFire {
        /// Frame number.
        frame: usize,
        /// Slot within the frame.
        slot: usize,
    },
    /// An AP pipeline stage finished the job it had in service. The job
    /// itself lives in the coordinator's [`StageState`] (events stay
    /// `Copy`); the completed job moves downstream and the stage starts
    /// its next queued job, if any.
    StageDone {
        /// Which stage completed.
        stage: StageKind,
    },
    /// A granted relay chain resolves: the route's tag hops fire
    /// back-to-back inside the granted slot and the terminal node uplinks
    /// for the origin. Posted after the frame's direct `SlotFire` events,
    /// so the engine's `(time, seq)` order gives every chain a fixed,
    /// posting-determined position among same-instant events at any
    /// thread count.
    RelayFire {
        /// Frame number.
        frame: usize,
        /// Index into the coordinator's per-frame relay grants.
        grant: usize,
    },
}

/// The stable trace/metric label of a campaign event — shared by the
/// tracer and the engine's lossless queue-depth tallies so both name
/// event kinds identically.
fn slot_event_label(ev: &SlotEvent) -> &'static str {
    match ev {
        SlotEvent::FrameStart { .. } => "frame_start",
        SlotEvent::SlotFire { .. } => "slot_fire",
        SlotEvent::StageDone { stage } => stage.label(),
        SlotEvent::RelayFire { .. } => "relay_fire",
    }
}

/// Shared medium of a slotted campaign.
struct SlotMedium<'a> {
    net: &'a Network,
    rng: &'a mut GaussianSource,
    payload: &'a [u8],
    airtime_s: f64,
    power: NodePowerModel,
    attempts: Vec<usize>,
    delivered: Vec<usize>,
    collisions: Vec<usize>,
    energy_j: Vec<f64>,
    snr_sum_db: Vec<f64>,
    /// Per-node AP reachability under the campaign's coverage model.
    /// All-`true` by default (unbounded coverage), so the delivery gate
    /// `&& covered[node]` is an identity on the parity path.
    covered: Vec<bool>,
    /// Deliveries that arrived over a relay route, per origin node.
    relayed: Vec<usize>,
    /// Route lengths summed across relayed deliveries, per origin node.
    relay_hops: Vec<usize>,
    /// Forwarding transmissions performed for other nodes' routes.
    forwarded: Vec<usize>,
    /// Energy spent forwarding, joules (also added to `energy_j`).
    relay_energy_j: Vec<f64>,
    /// Extra relay latency over direct uplinks, seconds, per origin node.
    relay_latency_s: Vec<f64>,
    /// Per-node drop attribution for uncovered (gap) nodes, precomputed
    /// once per run from the relay topology: `None` for covered nodes,
    /// [`DropReason::HopBudgetExhausted`] or [`DropReason::NoRelayRoute`]
    /// otherwise. Empty under unbounded coverage or a telemetry-off
    /// build; the serve path falls back to `NoRelayRoute`.
    gap_reason: Vec<Option<DropReason>>,
    /// The run's packet-lifecycle ledger: offered/delivered/dropped
    /// counts and latency sketches (see [`LifecycleStats`]). Recording is
    /// feature-gated, not probe-gated, so plain and probed runs account
    /// identically.
    lifecycle: LifecycleStats,
    /// The campaign's instrumentation surface. Disabled (all-`None`) on
    /// every uninstrumented path, so recording helpers no-op and both
    /// paths execute the same code.
    probe: CampaignProbe,
    /// AP service accounting for the run: offered/served at the pipeline's
    /// mouth and tail, overflow outcomes in between. Exact u64 adds only,
    /// so the instantaneous pipeline and the retained direct coordinator
    /// account identically.
    service: ApServiceStats,
}

impl<'a> SlotMedium<'a> {
    /// Resolves one slot's transmitter group: accounts attempts and uplink
    /// energy, arbitrates the group by SDM separability, and serves the
    /// survivors (drawing channel noise from the trial stream in node-index
    /// order). Returns whether the slot was lost to a collision.
    ///
    /// Every MAC path funnels through this one function (`inline(never)` so
    /// the optimizer cannot split it into per-caller pipelines that drift
    /// by a ULP — the same discipline the FSA evaluator uses).
    ///
    /// `(now_ps, frame, slot)` identify the slot for telemetry only — the
    /// physics never reads them, and the probe calls are unconditional
    /// no-ops when the probe is disabled, so instrumented and plain runs
    /// share one code path.
    ///
    /// `degraded` marks a grant the pipeline admitted under
    /// [`OverflowPolicy::Degrade`]: the AP skipped SDM arbitration, so a
    /// multi-transmitter group resolves as a collision (a lone transmitter
    /// still serves — there is nothing to arbitrate). With
    /// `degraded == false` the computation is bit-identical to the
    /// pre-pipeline serve path.
    #[inline(never)]
    fn fire_slot(
        &mut self,
        group: &[usize],
        sdm_threshold_db: f64,
        now_ps: TimePs,
        frame: usize,
        slot: usize,
        degraded: bool,
    ) -> Result<bool> {
        for &node in group {
            self.attempts[node] += 1;
            self.energy_j[node] += self.power.energy_j(NodeActivity::Uplink, self.airtime_s);
        }
        // SDM arbitration: the slot survives concurrency only if every
        // pair of co-slotted beams is separable (a degraded grant skips
        // arbitration and never survives concurrency).
        let separable = !degraded
            && group.iter().enumerate().all(|(i, &a)| {
                group[i + 1..]
                    .iter()
                    .all(|&b| self.net.sdm_separable(a, b, sdm_threshold_db))
            });
        if group.len() > 1 && !separable {
            for &node in group {
                self.collisions[node] += 1;
            }
            // A degraded grant never ran SDM arbitration — plain
            // contention; an arbitrated loss is an inseparability drop.
            self.lifecycle.record_drops(
                if degraded {
                    DropReason::ContentionCollision
                } else {
                    DropReason::SdmInseparable
                },
                group.len() as u64,
            );
            self.probe.trace(|| TraceRecord::FlowEnd {
                time_ps: now_ps,
                flow: PacketId::direct(frame, slot).raw(),
                outcome: "collision",
            });
            self.record_slot(group, true, now_ps, frame, slot);
            return Ok(true);
        }
        for &node in group {
            let sim = LinkSimulator::new(self.net.config.clone(), self.net.view_for(node)?)?;
            let mut outcome = sim.uplink(self.payload, self.rng)?;
            if group.len() > 1 {
                let margin = group
                    .iter()
                    .filter(|&&o| o != node)
                    .map(|&o| self.net.sdm_margin_db(node, o))
                    .fold(f64::INFINITY, f64::min);
                if margin.is_finite() {
                    let sig = db_to_lin(outcome.snr_db);
                    let interference = db_to_lin(outcome.snr_db - margin);
                    outcome.snr_db = 10.0 * (sig / (1.0 + interference)).log10();
                }
            }
            // Coverage gates delivery, not transmission: a gap node still
            // burns the attempt and the airtime energy (it cannot know the
            // AP missed it), but nothing lands. The noise draw above stays
            // unconditional so covered nodes see an unchanged stream.
            if outcome.decoded == self.payload && self.covered[node] {
                self.delivered[node] += 1;
                self.snr_sum_db[node] += outcome.snr_db;
                self.lifecycle.deliver_direct(1);
                self.probe
                    .observe("delivered_snr_db", SNR_BUCKETS_DB, outcome.snr_db);
            } else if !self.covered[node] {
                // A gap node's direct uplink can never land; the
                // precomputed classification says whether a relay route
                // could have existed within the hop budget.
                self.lifecycle.record_drops(
                    self.gap_reason
                        .get(node)
                        .copied()
                        .flatten()
                        .unwrap_or(DropReason::NoRelayRoute),
                    1,
                );
            } else {
                self.lifecycle.record_drops(DropReason::DecodeFailure, 1);
            }
        }
        self.probe.trace(|| TraceRecord::FlowEnd {
            time_ps: now_ps,
            flow: PacketId::direct(frame, slot).raw(),
            outcome: "served",
        });
        self.record_slot(group, false, now_ps, frame, slot);
        Ok(false)
    }

    /// Resolves one granted relay chain: the origin's packet hops
    /// tag-to-tag along `route` and the terminal (covered) node uplinks
    /// it to the AP on the origin's behalf.
    ///
    /// `route` holds node indices origin-first, terminal-last, so
    /// `route.len()` is the total transmission count (tag hops + the
    /// terminal uplink; a direct delivery would be 1). Every member pays
    /// one uplink airtime of transmit energy; non-origin members also
    /// ledger it as forwarding. Channel noise is drawn once, for the
    /// terminal uplink — the tag hops are modeled as lossless short-range
    /// retransmissions whose degradation is the deterministic per-hop SNR
    /// penalty subtracted after decode (a documented simplification: hop
    /// losses shift the reported SNR, not the decode verdict).
    ///
    /// `inline(never)` for the same anti-drift reason as
    /// [`fire_slot`](Self::fire_slot).
    #[inline(never)]
    #[allow(clippy::too_many_arguments)]
    fn fire_relay(
        &mut self,
        route: &[usize],
        hop_snr_penalty_db: f64,
        slot_s: f64,
        now_ps: TimePs,
        frame: usize,
        slot: usize,
    ) -> Result<()> {
        let n = self.net.node_count();
        if route.len() < 2 {
            return Err(MilbackError::Protocol(format!(
                "a relay route needs at least two nodes, got {}",
                route.len()
            )));
        }
        if let Some(&bad) = route.iter().find(|&&idx| idx >= n) {
            return Err(MilbackError::NodeOutOfScene { idx: bad, nodes: n });
        }
        let origin = route[0];
        let terminal = route[route.len() - 1];
        let tag_hops = route.len() - 1;
        self.attempts[origin] += 1;
        let e_tx = self.power.energy_j(NodeActivity::Uplink, self.airtime_s);
        for &tx in route {
            self.energy_j[tx] += e_tx;
            if tx != origin {
                self.forwarded[tx] += 1;
                self.relay_energy_j[tx] += e_tx;
            }
        }
        let sim = LinkSimulator::new(self.net.config.clone(), self.net.view_for(terminal)?)?;
        let mut outcome = sim.uplink(self.payload, self.rng)?;
        outcome.snr_db -= hop_snr_penalty_db * tag_hops as f64;
        self.probe.inc("relay_fired", 1);
        // The chain's flow id links its hop spans and terminal outcome in
        // the exported trace; hops fire back-to-back inside the slot, so
        // every span shares the grant instant.
        let flow = PacketId::relayed(frame, origin).raw();
        let hop_dur_ps = crate::engine::secs_to_ps(self.airtime_s);
        for (hop, pair) in route.windows(2).enumerate() {
            let (from, to) = (pair[0], pair[1]);
            self.probe.trace(|| TraceRecord::RelayHop {
                time_ps: now_ps,
                flow,
                hop,
                from,
                to,
                dur_ps: hop_dur_ps,
            });
        }
        if outcome.decoded == self.payload && self.covered[terminal] {
            self.delivered[origin] += 1;
            self.relayed[origin] += 1;
            self.relay_hops[origin] += route.len();
            self.relay_latency_s[origin] += tag_hops as f64 * slot_s;
            self.snr_sum_db[origin] += outcome.snr_db;
            self.lifecycle.deliver_relayed(1);
            self.lifecycle
                .observe_relay_extra_us(tag_hops as f64 * slot_s * 1e6);
            self.probe.inc("relayed_delivered", 1);
            self.probe
                .observe("delivered_snr_db", SNR_BUCKETS_DB, outcome.snr_db);
            self.probe.trace(|| TraceRecord::FlowEnd {
                time_ps: now_ps,
                flow,
                outcome: "relayed",
            });
        } else {
            // Routes terminate at covered nodes by construction, so the
            // only terminal failure mode is a decode miss at the AP.
            self.lifecycle.record_drops(DropReason::DecodeFailure, 1);
            self.probe.trace(|| TraceRecord::FlowEnd {
                time_ps: now_ps,
                flow,
                outcome: "relay_failed",
            });
        }
        self.record_slot(&[origin], false, now_ps, frame, slot);
        Ok(())
    }

    /// Records one resolved slot into the probe: the slot outcome (with
    /// its collision participants), per-node energy draws, and the
    /// occupancy/collision/energy aggregates. Pure copies of
    /// already-computed values — no physics, no randomness, no clock.
    fn record_slot(
        &mut self,
        group: &[usize],
        collided: bool,
        now_ps: TimePs,
        frame: usize,
        slot: usize,
    ) {
        if !self.probe.is_enabled() {
            return;
        }
        let dur_ps = crate::engine::secs_to_ps(self.airtime_s);
        self.probe.trace(|| TraceRecord::Slot {
            time_ps: now_ps,
            frame,
            slot,
            group: group.to_vec(),
            collided,
            dur_ps,
        });
        for &node in group {
            let cumulative_j = self.energy_j[node];
            self.probe.trace(|| TraceRecord::Energy {
                time_ps: now_ps,
                node,
                cumulative_j,
            });
        }
        self.probe.inc("slots_fired", 1);
        self.probe.inc("attempts", group.len() as u64);
        self.probe
            .observe("slot_occupancy", OCCUPANCY_BUCKETS, group.len() as f64);
        // Every attempt drains the same uplink airtime energy, collided or
        // not — the histogram records the drain per transmitter.
        let energy_per_attempt = self.power.energy_j(NodeActivity::Uplink, self.airtime_s);
        for _ in group {
            self.probe
                .observe("energy_per_attempt_j", ENERGY_BUCKETS_J, energy_per_attempt);
        }
        if collided {
            self.probe.inc("slot_collisions", 1);
            self.probe.inc("collided_packets", group.len() as u64);
        }
    }
}

/// The AP-side MAC coordinator: frames, slot hashing, SDM arbitration.
struct SlotCoordinator {
    me: ActorId,
    plan: SlotPlan,
    frames: usize,
    slot_seed: u64,
    sdm_threshold_db: f64,
}

impl SlotCoordinator {
    /// The nodes that hash into `slot` on `frame`, in index order.
    fn group(&self, n_nodes: usize, frame: usize, slot: usize) -> Vec<usize> {
        (0..n_nodes)
            .filter(|&node| self.plan.slot_for(node, frame, self.slot_seed) == slot)
            .collect()
    }
}

impl<'a> Actor<SlotMedium<'a>, SlotEvent> for SlotCoordinator {
    fn on_event(
        &mut self,
        now_ps: TimePs,
        event: &SlotEvent,
        m: &mut SlotMedium<'a>,
        out: &mut Outbox<SlotEvent>,
    ) -> Result<()> {
        let n = m.net.node_count();
        match *event {
            SlotEvent::FrameStart { frame } => {
                // Direct ALOHA schedules every node exactly once per frame
                // (each hashes into one slot), so the frame offers `n`
                // packets and never leaves one unscheduled — the same
                // accounting the policy coordinator derives from its
                // schedule, which keeps the parity suite's `==` honest.
                m.lifecycle.offer(n as u64);
                let mut occupied: Vec<usize> = (0..n)
                    .map(|node| self.plan.slot_for(node, frame, self.slot_seed))
                    .collect();
                occupied.sort_unstable();
                occupied.dedup();
                for slot in occupied {
                    out.post_at(
                        now_ps + slot as TimePs * self.plan.slot_ps,
                        self.me,
                        SlotEvent::SlotFire { frame, slot },
                    );
                }
                if frame + 1 < self.frames {
                    out.post_at(
                        now_ps + self.plan.frame_ps(),
                        self.me,
                        SlotEvent::FrameStart { frame: frame + 1 },
                    );
                }
            }
            SlotEvent::SlotFire { frame, slot } => {
                // The retained per-slot re-hash (O(nodes × slots) per
                // frame) — the parity reference the hash-once schedule in
                // [`PolicyCoordinator`] is checked against. The direct AP
                // serves instantly: every offered grant is served, which is
                // exactly what the instantaneous pipeline accounts, so the
                // parity suite's `==` covers the service ledger too.
                let group = self.group(n, frame, slot);
                m.service.offered += 1;
                // Same observation points, same values, as the pipeline
                // path under the instantaneous config: the wait is the
                // slot offset from the frame boundary, and the direct AP's
                // service residence is identically zero.
                m.lifecycle.observe_slot_wait_us(
                    (slot as u64 * self.plan.slot_ps) as f64 / 1e6,
                    group.len(),
                );
                m.lifecycle.observe_service_residence_us(0.0, group.len());
                m.fire_slot(&group, self.sdm_threshold_db, now_ps, frame, slot, false)?;
                m.service.served += 1;
            }
            SlotEvent::StageDone { .. } => {
                return Err(MilbackError::Engine(
                    "the direct coordinator runs no pipeline stages".into(),
                ));
            }
            SlotEvent::RelayFire { .. } => {
                return Err(MilbackError::Engine(
                    "the direct coordinator schedules no relays".into(),
                ));
            }
        }
        Ok(())
    }
}

/// A frame's transmission schedule: `(slot, transmitters)` pairs in
/// strictly increasing slot order, transmitters in ascending node order,
/// no empty groups.
pub type FrameSchedule = Vec<(usize, Vec<usize>)>;

/// One granted relay chain for a frame: the route fires inside `slot`,
/// after that slot's direct traffic resolves.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RelayGrant {
    /// Slot within the frame the chain occupies.
    pub slot: usize,
    /// Node indices origin-first, terminal-last (the terminal uplinks to
    /// the AP). At least two nodes — a single-node "route" is a direct
    /// uplink and belongs in the frame schedule instead.
    pub route: Vec<usize>,
}

/// Campaign-wide facts a [`MacPolicy`] consults while scheduling: the
/// network (node geometry and SDM separability), the airtime plan, the
/// campaign length, and the AP's separability threshold.
#[derive(Clone, Copy)]
pub struct MacContext<'a> {
    /// The network being scheduled.
    pub net: &'a Network,
    /// The airtime plan (slots per frame, slot width).
    pub plan: SlotPlan,
    /// Campaign length, frames.
    pub frames: usize,
    /// SDM separability threshold, dB.
    pub sdm_threshold_db: f64,
}

/// An AP-side medium-access policy for slotted campaigns on the
/// discrete-event engine.
///
/// A policy only decides *who transmits when*: at each frame boundary the
/// coordinator asks it for the frame's slot → transmitters schedule, fires
/// the occupied slots on the engine clock, and feeds the collision/served
/// outcome of every slot back. Channel physics, SDM arbitration, and the
/// per-node ledgers are policy-independent
/// ([`Network::run_mac`] shares one serve path across all policies), so
/// reports compare apples-to-apples.
///
/// Implementations in this module: [`SlottedAloha`] (the paper's baseline,
/// bit-exact with [`Network::run_slotted_direct`]), [`BackoffAloha`]
/// (capped exponential backoff after collisions), [`RoundRobinPolling`]
/// (AP-granted reservations, zero collisions), and [`SdmAwareAssignment`]
/// (co-slots only concurrently servable nodes).
pub trait MacPolicy {
    /// Policy name — the label comparison sweeps and CSV rows carry.
    fn name(&self) -> &'static str;

    /// One-time setup before frame 0. The trial RNG stream is available so
    /// a policy can seed deterministic internal state (e.g. per-node
    /// backoff generators); policies that do not draw leave the stream
    /// exactly where a plain campaign expects it.
    fn begin(&mut self, _ctx: &MacContext<'_>, _rng: &mut GaussianSource) {}

    /// The transmission schedule for `frame`.
    fn schedule_frame(&mut self, frame: usize, ctx: &MacContext<'_>) -> FrameSchedule;

    /// Feedback after a slot resolves: `collided` is true when the group
    /// was lost to an unseparable collision.
    fn on_slot_outcome(&mut self, _frame: usize, _slot: usize, _group: &[usize], _collided: bool) {}

    /// Telemetry hook, called once per frame right after
    /// [`schedule_frame`](Self::schedule_frame): the policy may describe
    /// its current decision state (backoff windows, group rotations) into
    /// the probe. Takes `&self`, so recording **cannot** mutate policy
    /// state — the non-perturbation contract holds by construction. The
    /// default records nothing.
    fn record_frame(
        &self,
        _frame: usize,
        _now_ps: TimePs,
        _ctx: &MacContext<'_>,
        _probe: &mut CampaignProbe,
    ) {
    }

    /// The relay chains to grant on `frame`, resolved after each granted
    /// slot's direct traffic. The default grants none — every existing
    /// policy stays direct-only and the coordinator posts no relay
    /// events, which is what keeps relay-disabled runs bit-exact.
    fn relay_frame(&mut self, _frame: usize, _ctx: &MacContext<'_>) -> Vec<RelayGrant> {
        Vec::new()
    }
}

/// One SplitMix64 step: advances `state` and returns the mixed output.
/// The per-node backoff generators and [`SlotPlan::slot_for`] share the
/// same hash family but never the same stream.
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Hashes every node passing `contends` into its
/// [`SlotPlan::slot_for`] slot — one hash per node per frame, building the
/// slot → nodes map the coordinator indexes (the retained
/// [`SlotCoordinator::group`] re-hashed every node per occupied slot,
/// O(nodes × slots) per frame with up to
/// [`MAX_SLOTS_PER_FRAME`](crate::protocol::MAX_SLOTS_PER_FRAME) slots).
pub(crate) fn hash_into_slots(
    ctx: &MacContext<'_>,
    frame: usize,
    seed: u64,
    mut contends: impl FnMut(usize) -> bool,
) -> FrameSchedule {
    let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); ctx.plan.slots_per_frame];
    for node in 0..ctx.net.node_count() {
        if contends(node) {
            buckets[ctx.plan.slot_for(node, frame, seed)].push(node);
        }
    }
    buckets
        .into_iter()
        .enumerate()
        .filter(|(_, g)| !g.is_empty())
        .collect()
}

/// Classic slotted ALOHA behind the [`MacPolicy`] trait: every node
/// contends in its hashed slot every frame, collisions retry implicitly by
/// re-hashing next frame. Bit-exact with the retained pre-trait path
/// ([`Network::run_slotted_direct`]) — the parity suite proves it.
#[derive(Debug, Clone, Copy)]
pub struct SlottedAloha {
    slot_seed: u64,
}

impl SlottedAloha {
    /// Creates the policy over a slot-hash seed.
    pub fn new(slot_seed: u64) -> Self {
        Self { slot_seed }
    }
}

impl MacPolicy for SlottedAloha {
    fn name(&self) -> &'static str {
        "aloha"
    }

    fn schedule_frame(&mut self, frame: usize, ctx: &MacContext<'_>) -> FrameSchedule {
        hash_into_slots(ctx, frame, self.slot_seed, |_| true)
    }
}

/// Per-node backoff state of [`BackoffAloha`].
#[derive(Debug, Clone, Copy)]
struct BackoffState {
    /// Consecutive collisions, capped at the policy's maximum exponent.
    exponent: u32,
    /// Frames left to sit out before contending again.
    defer_frames: u64,
    /// The node's private SplitMix64 draw state.
    rng: u64,
}

/// Slotted ALOHA with capped exponential backoff: after a collision a node
/// sits out a uniformly drawn number of frames in `[0, 2^e)`, where `e`
/// counts its consecutive collisions capped at `max_exponent`; a served
/// slot resets it. Backoff draws come from per-node SplitMix64 generators
/// seeded once from the trial RNG stream in [`MacPolicy::begin`], so the
/// whole campaign stays a pure function of the root seed.
#[derive(Debug, Clone)]
pub struct BackoffAloha {
    slot_seed: u64,
    max_exponent: u32,
    nodes: Vec<BackoffState>,
}

impl BackoffAloha {
    /// Creates the policy; `max_exponent` caps the contention window at
    /// `2^max_exponent` frames.
    pub fn new(slot_seed: u64, max_exponent: u32) -> Self {
        assert!(max_exponent < 63, "backoff window must fit a u64");
        Self {
            slot_seed,
            max_exponent,
            nodes: Vec::new(),
        }
    }
}

impl MacPolicy for BackoffAloha {
    fn name(&self) -> &'static str {
        "backoff"
    }

    fn begin(&mut self, ctx: &MacContext<'_>, rng: &mut GaussianSource) {
        let base = u64::from_le_bytes(rng.bytes(8).try_into().expect("eight bytes"));
        self.nodes = (0..ctx.net.node_count())
            .map(|idx| BackoffState {
                exponent: 0,
                defer_frames: 0,
                rng: base ^ (idx as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            })
            .collect();
    }

    fn schedule_frame(&mut self, frame: usize, ctx: &MacContext<'_>) -> FrameSchedule {
        let nodes = &mut self.nodes;
        hash_into_slots(ctx, frame, self.slot_seed, |idx| {
            let st = &mut nodes[idx];
            if st.defer_frames > 0 {
                st.defer_frames -= 1;
                false
            } else {
                true
            }
        })
    }

    fn on_slot_outcome(&mut self, _frame: usize, _slot: usize, group: &[usize], collided: bool) {
        for &node in group {
            let st = &mut self.nodes[node];
            if collided {
                st.exponent = (st.exponent + 1).min(self.max_exponent);
                let window = 1u64 << st.exponent;
                st.defer_frames = splitmix64(&mut st.rng) % window;
            } else {
                st.exponent = 0;
                st.defer_frames = 0;
            }
        }
    }

    fn record_frame(
        &self,
        _frame: usize,
        now_ps: TimePs,
        _ctx: &MacContext<'_>,
        probe: &mut CampaignProbe,
    ) {
        // Contention windows as of this frame boundary: a node with a
        // non-zero exponent is inside a `2^e`-frame window; one still
        // deferring sat this frame out.
        for (node, st) in self.nodes.iter().enumerate() {
            if st.exponent == 0 {
                continue;
            }
            let window_frames = 1u64 << st.exponent;
            probe.observe(
                "backoff_window_frames",
                BACKOFF_BUCKETS_FRAMES,
                window_frames as f64,
            );
            if st.defer_frames > 0 {
                probe.inc("backoff_deferrals", 1);
                probe.trace(|| TraceRecord::Backoff {
                    time_ps: now_ps,
                    node,
                    window_frames,
                });
            }
        }
    }
}

/// AP-driven reservation/polling: the AP grants slots round-robin over the
/// registered nodes, one node per slot — zero collisions by construction,
/// at the cost of per-node service latency that grows with the cell (a
/// node holds the channel only every ⌈nodes/slots⌉ frames once the cell
/// outgrows a frame).
#[derive(Debug, Clone, Copy, Default)]
pub struct RoundRobinPolling {
    cursor: usize,
}

impl RoundRobinPolling {
    /// Creates the policy; polling starts at node 0.
    pub fn new() -> Self {
        Self::default()
    }
}

impl MacPolicy for RoundRobinPolling {
    fn name(&self) -> &'static str {
        "polling"
    }

    fn schedule_frame(&mut self, _frame: usize, ctx: &MacContext<'_>) -> FrameSchedule {
        let n = ctx.net.node_count();
        (0..ctx.plan.slots_per_frame)
            .map(|slot| {
                let node = self.cursor;
                self.cursor = (self.cursor + 1) % n;
                (slot, vec![node])
            })
            .collect()
    }
}

/// SDM-aware slot assignment: the AP partitions the nodes into mutually
/// separable groups (greedy first-fit over [`Network::sdm_separable`]) and
/// grants groups to slots round-robin across the campaign. Every
/// co-slotted pair passes the separability check, so every slot is
/// concurrently servable and the campaign is collision-free by
/// construction; when the geometry needs more groups than a frame has
/// slots the cost shows up as latency (each group waits its turn), never
/// as collisions. The scene is static over a campaign, so the partition is
/// computed once in [`MacPolicy::begin`] and rotated every frame.
#[derive(Debug, Clone, Default)]
pub struct SdmAwareAssignment {
    groups: Vec<Vec<usize>>,
}

impl SdmAwareAssignment {
    /// Creates the policy; the group partition is derived from the scene
    /// when the campaign begins.
    pub fn new() -> Self {
        Self::default()
    }

    /// The mutually separable groups the scene partitioned into (empty
    /// before [`MacPolicy::begin`]).
    pub fn groups(&self) -> &[Vec<usize>] {
        &self.groups
    }
}

impl MacPolicy for SdmAwareAssignment {
    fn name(&self) -> &'static str {
        "sdm"
    }

    fn begin(&mut self, ctx: &MacContext<'_>, _rng: &mut GaussianSource) {
        let mut groups: Vec<Vec<usize>> = Vec::new();
        for node in 0..ctx.net.node_count() {
            let fit = groups.iter_mut().find(|g| {
                g.iter()
                    .all(|&m| ctx.net.sdm_separable(node, m, ctx.sdm_threshold_db))
            });
            match fit {
                Some(g) => g.push(node),
                None => groups.push(vec![node]),
            }
        }
        self.groups = groups;
    }

    fn schedule_frame(&mut self, frame: usize, ctx: &MacContext<'_>) -> FrameSchedule {
        if self.groups.is_empty() {
            return Vec::new();
        }
        let slots = ctx.plan.slots_per_frame;
        (0..slots)
            .map(|slot| {
                let g = (frame * slots + slot) % self.groups.len();
                (slot, self.groups[g].clone())
            })
            .collect()
    }

    fn record_frame(
        &self,
        frame: usize,
        now_ps: TimePs,
        ctx: &MacContext<'_>,
        probe: &mut CampaignProbe,
    ) {
        if self.groups.is_empty() {
            return;
        }
        // The rotation this frame grants: same arithmetic as
        // `schedule_frame`, re-derived read-only.
        let slots = ctx.plan.slots_per_frame;
        for slot in 0..slots {
            let group_idx = (frame * slots + slot) % self.groups.len();
            probe.inc("sdm_rotations", 1);
            probe.trace(|| TraceRecord::SdmRotation {
                time_ps: now_ps,
                frame,
                group_idx,
                group_size: self.groups[group_idx].len(),
            });
        }
    }
}

/// One granted slot flowing through the AP service pipeline: the slot's
/// identity, its transmitter group (cloned out of the frame schedule at
/// grant time, so the job survives frame rollover while queued), and
/// whether an overflowing queue degraded its plan.
#[derive(Debug, Clone)]
struct SlotJob {
    frame: usize,
    slot: usize,
    group: Vec<usize>,
    degraded: bool,
    /// Engine time the grant entered the pipeline (its `SlotFire`
    /// instant), so Transmit completion can ledger the job's service
    /// residence without re-deriving the grant schedule.
    offered_ps: TimePs,
}

/// One serial AP service stage: at most one job in service (its
/// completion event is in flight) plus a FIFO of waiters.
#[derive(Debug, Default)]
struct StageState {
    current: Option<SlotJob>,
    queue: VecDeque<SlotJob>,
}

impl StageState {
    /// Jobs held by the stage: the one in service plus the waiters.
    fn occupancy(&self) -> usize {
        self.queue.len() + usize::from(self.current.is_some())
    }
}

/// The generic MAC coordinator: drives any [`MacPolicy`] over the same
/// frame/slot event timeline as the retained [`SlotCoordinator`], asking
/// the policy for each frame's schedule once at the frame boundary.
///
/// Unlike the direct coordinator, a granted slot is not served inside its
/// [`SlotEvent::SlotFire`] dispatch: the grant becomes a [`SlotJob`] that
/// walks the **Capture → Plan → Transmit** service stages, each a serial
/// server with its own latency ([`ApServiceConfig`]) and bounded FIFO.
/// The transmission physics run at Transmit completion. Under
/// [`ApServiceConfig::instantaneous`] every stage completes at the grant
/// instant (engine `seq` order keeps the chain ahead of any later-time
/// event), so slots fire in exactly the pre-pipeline order and the trial
/// RNG stream is consumed identically — the parity suite proves
/// bit-exactness against [`SlotCoordinator`].
struct PolicyCoordinator {
    me: ActorId,
    plan: SlotPlan,
    frames: usize,
    sdm_threshold_db: f64,
    policy: Box<dyn MacPolicy>,
    /// The current frame's schedule. Safe to hold per frame: every slot of
    /// frame `f` fires strictly before `FrameStart { f + 1 }` (the last
    /// slot starts one slot-width before the frame boundary). Queued
    /// [`SlotJob`]s own clones of their groups, so a backlogged pipeline
    /// is unaffected by rollover.
    schedule: FrameSchedule,
    /// The AP service pipeline configuration.
    service: ApServiceConfig,
    /// The campaign's relay configuration (coverage model and chain
    /// parameters). Disabled by default: no grants, no relay events.
    relay: RelayConfig,
    /// The current frame's granted relay chains, indexed by the
    /// [`SlotEvent::RelayFire`] events posted at the frame boundary.
    relay_schedule: Vec<RelayGrant>,
    /// Stage states, indexed by [`StageKind`] discriminant.
    stages: [StageState; 3],
    /// SplitMix64 jitter state, seeded once from the trial stream —
    /// `None` when `jitter_ps == 0` (nothing was drawn).
    jitter_state: Option<u64>,
}

impl PolicyCoordinator {
    /// Offers a job to `stage`: starts it if the stage is idle, otherwise
    /// queues it subject to the configured bound and overflow policy.
    /// Queue occupancy is observed at every offer, so the histograms see
    /// the arrival-time depths that admission decisions are made against.
    fn offer_stage(
        &mut self,
        stage: StageKind,
        mut job: SlotJob,
        now_ps: TimePs,
        m: &mut SlotMedium<'_>,
        out: &mut Outbox<SlotEvent>,
    ) {
        let idx = stage as usize;
        m.probe.observe(
            stage.occupancy_metric(),
            OCCUPANCY_BUCKETS,
            self.stages[idx].occupancy() as f64,
        );
        if self.stages[idx].current.is_none() {
            self.start_stage(stage, job, now_ps, m, out);
            return;
        }
        if let Some(cap) = self.service.queue_capacity {
            if self.stages[idx].queue.len() >= cap {
                match self.service.overflow {
                    OverflowPolicy::Drop => {
                        m.service.dropped += 1;
                        m.probe.inc("ap_dropped", 1);
                        // The whole group dies with the shed grant; the
                        // ledger records which stage's queue was full.
                        m.lifecycle.record_drops(
                            DropReason::ServiceShed {
                                stage,
                                policy: OverflowPolicy::Drop,
                            },
                            job.group.len() as u64,
                        );
                        m.probe.trace(|| TraceRecord::FlowEnd {
                            time_ps: now_ps,
                            flow: PacketId::direct(job.frame, job.slot).raw(),
                            outcome: "shed",
                        });
                        return;
                    }
                    OverflowPolicy::Defer => {
                        m.service.deferred += 1;
                        m.probe.inc("ap_deferred", 1);
                    }
                    OverflowPolicy::Degrade => {
                        if !job.degraded {
                            job.degraded = true;
                            m.service.degraded += 1;
                            m.probe.inc("ap_degraded", 1);
                        }
                    }
                }
            }
        }
        self.stages[idx].queue.push_back(job);
    }

    /// Puts a job in service at an idle `stage` and posts its completion:
    /// base stage latency (a degraded job's Plan costs nothing) plus a
    /// uniform SplitMix64 jitter draw when jitter is configured.
    fn start_stage(
        &mut self,
        stage: StageKind,
        job: SlotJob,
        now_ps: TimePs,
        m: &mut SlotMedium<'_>,
        out: &mut Outbox<SlotEvent>,
    ) {
        let base_ps = if job.degraded && stage == StageKind::Plan {
            0
        } else {
            self.service.stage_latency_ps(stage)
        };
        let jitter_ps = match &mut self.jitter_state {
            Some(state) => splitmix64(state) % (self.service.jitter_ps + 1),
            None => 0,
        };
        let dur_ps = base_ps + jitter_ps;
        // The job's service span, tagged with its packet flow id so the
        // exported trace links Capture → Plan → Transmit → outcome as one
        // Perfetto flow. The duration is the already-drawn completion
        // offset — copying it records nothing the engine won't replay.
        m.probe.trace(|| TraceRecord::Stage {
            time_ps: now_ps,
            stage: stage.label(),
            flow: PacketId::direct(job.frame, job.slot).raw(),
            dur_ps,
        });
        self.stages[stage as usize].current = Some(job);
        out.post_at(now_ps + dur_ps, self.me, SlotEvent::StageDone { stage });
    }
}

impl<'a> Actor<SlotMedium<'a>, SlotEvent> for PolicyCoordinator {
    fn on_event(
        &mut self,
        now_ps: TimePs,
        event: &SlotEvent,
        m: &mut SlotMedium<'a>,
        out: &mut Outbox<SlotEvent>,
    ) -> Result<()> {
        match *event {
            SlotEvent::FrameStart { frame } => {
                let ctx = MacContext {
                    net: m.net,
                    plan: self.plan,
                    frames: self.frames,
                    sdm_threshold_db: self.sdm_threshold_db,
                };
                self.schedule = self.policy.schedule_frame(frame, &ctx);
                m.probe.inc("frames", 1);
                self.policy.record_frame(frame, now_ps, &ctx, &mut m.probe);
                debug_assert!(
                    self.schedule.windows(2).all(|w| w[0].0 < w[1].0),
                    "schedule slots must be strictly increasing"
                );
                for &(slot, ref group) in &self.schedule {
                    debug_assert!(slot < self.plan.slots_per_frame, "slot beyond the plan");
                    if group.is_empty() {
                        continue;
                    }
                    out.post_at(
                        now_ps + slot as TimePs * self.plan.slot_ps,
                        self.me,
                        SlotEvent::SlotFire { frame, slot },
                    );
                }
                // Relay grants post after the direct slots, so the
                // engine's (time, seq) order resolves a chain sharing a
                // slot instant with direct traffic at a fixed, posting-
                // determined position — the RNG draw order is a pure
                // function of the schedule at any thread count. A policy
                // granting no relays posts nothing here, which is what
                // keeps relay-disabled runs bit-exact with the pre-relay
                // path.
                self.relay_schedule = self.policy.relay_frame(frame, &ctx);
                for (grant, g) in self.relay_schedule.iter().enumerate() {
                    debug_assert!(g.slot < self.plan.slots_per_frame, "slot beyond the plan");
                    out.post_at(
                        now_ps + g.slot as TimePs * self.plan.slot_ps,
                        self.me,
                        SlotEvent::RelayFire { frame, grant },
                    );
                }
                // Lifecycle offers: one packet per scheduled transmitter
                // appearance, one per granted relay chain, and one per
                // node this frame left entirely unscheduled (backoff
                // deferral, polling rotation, waiting SDM group) — the
                // last resolve immediately as `NeverScheduled`, so every
                // offered packet reaches exactly one terminal outcome.
                // Integer bookkeeping over the already-built schedules:
                // no RNG, no clock.
                #[cfg(feature = "telemetry")]
                {
                    let mut scheduled = vec![false; m.net.node_count()];
                    let mut direct = 0u64;
                    for (_, group) in &self.schedule {
                        direct += group.len() as u64;
                        for &node in group {
                            scheduled[node] = true;
                        }
                    }
                    for g in &self.relay_schedule {
                        if let Some(&origin) = g.route.first() {
                            scheduled[origin] = true;
                        }
                    }
                    let never = scheduled.iter().filter(|&&s| !s).count() as u64;
                    m.lifecycle
                        .offer(direct + self.relay_schedule.len() as u64 + never);
                    m.lifecycle.record_drops(DropReason::NeverScheduled, never);
                }
                if frame + 1 < self.frames {
                    out.post_at(
                        now_ps + self.plan.frame_ps(),
                        self.me,
                        SlotEvent::FrameStart { frame: frame + 1 },
                    );
                }
            }
            SlotEvent::SlotFire { frame, slot } => {
                let idx = self
                    .schedule
                    .binary_search_by_key(&slot, |e| e.0)
                    .map_err(|_| {
                        MilbackError::Engine(format!(
                            "slot {slot} of frame {frame} fired without a schedule entry"
                        ))
                    })?;
                let job = SlotJob {
                    frame,
                    slot,
                    group: self.schedule[idx].1.clone(),
                    degraded: false,
                    offered_ps: now_ps,
                };
                m.service.offered += 1;
                m.probe.inc("ap_offered", 1);
                // Every member of the group waited from the frame
                // boundary to this slot's airtime.
                m.lifecycle.observe_slot_wait_us(
                    (slot as u64 * self.plan.slot_ps) as f64 / 1e6,
                    job.group.len(),
                );
                self.offer_stage(StageKind::Capture, job, now_ps, m, out);
            }
            SlotEvent::StageDone { stage } => {
                let job = self.stages[stage as usize].current.take().ok_or_else(|| {
                    MilbackError::Engine(format!(
                        "{} completed with no job in service",
                        stage.label()
                    ))
                })?;
                // The finished job cascades downstream before this stage
                // admits its next waiter, so same-instant chains complete
                // in pipeline order.
                match stage.next() {
                    Some(next) => self.offer_stage(next, job, now_ps, m, out),
                    None => {
                        // Transmit completion: the job is about to reach
                        // the channel, so its pipeline residence ends
                        // here. Identically zero under the instantaneous
                        // config — what the direct coordinator observes.
                        m.lifecycle.observe_service_residence_us(
                            (now_ps - job.offered_ps) as f64 / 1e6,
                            job.group.len(),
                        );
                        let collided = m.fire_slot(
                            &job.group,
                            self.sdm_threshold_db,
                            now_ps,
                            job.frame,
                            job.slot,
                            job.degraded,
                        )?;
                        m.service.served += 1;
                        m.probe.inc("ap_served", 1);
                        self.policy
                            .on_slot_outcome(job.frame, job.slot, &job.group, collided);
                    }
                }
                if let Some(next_job) = self.stages[stage as usize].queue.pop_front() {
                    self.start_stage(stage, next_job, now_ps, m, out);
                }
            }
            SlotEvent::RelayFire { frame, grant } => {
                // Relay chains are tag-side transmissions: they never enter
                // the AP's Capture/Plan/Transmit pipeline, so the service
                // ledger stays exactly what the direct traffic produced.
                let g = self.relay_schedule.get(grant).ok_or_else(|| {
                    MilbackError::Engine(format!(
                        "relay grant {grant} of frame {frame} fired without a schedule entry"
                    ))
                })?;
                m.fire_relay(
                    &g.route,
                    self.relay.hop_snr_penalty_db,
                    ps_to_secs(self.plan.slot_ps),
                    now_ps,
                    frame,
                    g.slot,
                )?;
            }
        }
        Ok(())
    }
}

/// A per-node Doppler signature for simultaneous multi-node localization:
/// node `k` toggles with period `2·(k+1)` chirps, landing its echo at
/// Doppler row `N / (2·(k+1))` of an N-chirp range–Doppler map — every
/// node separable in one capture, Millimetro-style, without beam
/// scheduling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DopplerSignature {
    /// Toggle period in chirps (even, ≥ 2).
    pub period_chirps: usize,
}

impl DopplerSignature {
    /// The signature assigned to node index `idx`.
    pub fn for_node(idx: usize) -> Self {
        Self {
            period_chirps: 2 * (idx + 1),
        }
    }

    /// The node's state (reflective?) on chirp `k`.
    pub fn reflective_on(&self, chirp: usize) -> bool {
        (chirp / (self.period_chirps / 2)).is_multiple_of(2)
    }

    /// The Doppler row this signature concentrates in, for an `n_chirps`
    /// capture. Requires `n_chirps % period == 0` for an exact bin.
    pub fn doppler_row(&self, n_chirps: usize) -> usize {
        n_chirps / self.period_chirps
    }

    /// Whether an `n_chirps` capture resolves this signature exactly.
    pub fn resolved_by(&self, n_chirps: usize) -> bool {
        n_chirps.is_multiple_of(self.period_chirps)
    }
}

/// Simultaneously localizes every node of a scene from ONE `n_chirps`
/// capture: each node toggles with its own [`DopplerSignature`], the AP
/// builds a range–Doppler map and reads each node's range at its assigned
/// Doppler row. Returns `(node_idx, range_m)` per node found.
///
/// This goes beyond the paper's one-node-at-a-time localization (§7 only
/// sketches SDM for *communication*); it composes the same primitives —
/// toggling modulation and chirp trains — into a single-shot multi-node
/// ranging mode. Static clutter is not synthesized here: it concentrates
/// in the zero-Doppler row and never reaches the signature rows this
/// reader consults (the single-node pipeline's tests cover clutter
/// rejection).
pub fn localize_all_doppler(
    network: &Network,
    n_chirps: usize,
    rng: &mut GaussianSource,
) -> Result<Vec<(usize, f64)>> {
    use milback_ap::doppler::DopplerProcessor;
    use milback_ap::fmcw::FmcwProcessor;
    use mmwave_rf::antenna::Antenna;
    use mmwave_rf::channel::{backscatter_amplitude_sqrt_w, synthesize_beat, Echo};
    use mmwave_sigproc::units::{dbm_to_watts, noise_power_watts};

    let n_nodes = network.node_count();
    for idx in 0..n_nodes {
        let sig = DopplerSignature::for_node(idx);
        if !sig.resolved_by(n_chirps) {
            return Err(MilbackError::Config(format!(
                "{n_chirps} chirps cannot resolve node {idx}'s period-{} signature",
                sig.period_chirps
            )));
        }
    }
    let config = &network.config;
    let proc = FmcwProcessor::new(config.fmcw.field2_chirp(), config.ap.rx1.digitizer_rate_hz);
    let chirp = proc.chirp;
    let horn = mmwave_rf::antenna::Horn::miwave_20dbi();
    let tx_w = dbm_to_watts(config.ap.tx.port_power_dbm());
    let impl_amp = db_to_lin(-config.ap.rx1.chain.implementation_loss_db).sqrt();
    let gamma_r = config.node.reflection_amplitude(
        mmwave_rf::antenna::fsa::FsaPort::A,
        milback_node::mode::PortMode::Reflective,
    );
    let gamma_a = config.node.reflection_amplitude(
        mmwave_rf::antenna::fsa::FsaPort::A,
        milback_node::mode::PortMode::Absorptive,
    );
    let noise_w = noise_power_watts(
        proc.sample_rate_hz / 2.0,
        config.ap.rx1.chain.noise_figure_db(),
    );
    // For multi-node ranging the AP widens its beam (or sweeps); model a
    // broad illumination by evaluating the horn at each node's azimuth.
    let beats: Vec<Vec<mmwave_sigproc::Complex>> = (0..n_chirps)
        .map(|k| {
            let echoes: Vec<Echo<'_>> = (0..n_nodes)
                .map(|idx| {
                    let gt = network.scene.ground_truth(idx);
                    let g = db_to_lin(horn.gain_dbi(chirp.center_hz(), gt.azimuth_rad));
                    let g_node = config.node.fsa.gain_linear(
                        mmwave_rf::antenna::fsa::FsaPort::A,
                        config
                            .node
                            .fsa
                            .design
                            .frequency_for_angle(
                                mmwave_rf::antenna::fsa::FsaPort::A,
                                gt.incidence_rad,
                            )
                            .unwrap_or(chirp.center_hz()),
                        gt.incidence_rad,
                    );
                    let sig = DopplerSignature::for_node(idx);
                    let gamma = if sig.reflective_on(k) {
                        gamma_r
                    } else {
                        gamma_a
                    };
                    let amp = backscatter_amplitude_sqrt_w(
                        tx_w,
                        g,
                        g,
                        g_node * g_node,
                        gamma,
                        chirp.center_hz(),
                        gt.range_m,
                    ) * impl_amp;
                    Echo::constant(gt.range_m, amp)
                })
                .collect();
            let mut b = synthesize_beat(&chirp, &echoes, proc.sample_rate_hz);
            rng.add_complex_noise(&mut b, noise_w);
            b
        })
        .collect();
    let dp = DopplerProcessor::milback_default();
    let rd = dp
        .range_doppler(&proc, &beats)
        .map_err(MilbackError::Fmcw)?;
    let mut fixes = Vec::with_capacity(n_nodes);
    for idx in 0..n_nodes {
        let row = DopplerSignature::for_node(idx).doppler_row(n_chirps);
        if let Some((pos, _)) = rd.row_peak(row) {
            fixes.push((idx, proc.bin_to_range_m(pos)));
        }
    }
    Ok(fixes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_node_network(sep_deg: f64) -> Network {
        let scene = Scene::single_node(4.0, 12f64.to_radians()).with_node_at(
            4.0,
            sep_deg.to_radians(),
            12f64.to_radians(),
        );
        Network::new(SystemConfig::milback_default(), scene).unwrap()
    }

    #[test]
    fn well_separated_nodes_are_sdm_separable() {
        let n = two_node_network(40.0);
        assert!(
            n.sdm_separable(0, 1, 20.0),
            "margin {:.1}",
            n.sdm_margin_db(0, 1)
        );
    }

    #[test]
    fn close_nodes_are_not_separable() {
        let n = two_node_network(5.0);
        assert!(!n.sdm_separable(0, 1, 20.0));
    }

    #[test]
    fn margin_grows_with_separation() {
        let near = two_node_network(8.0).sdm_margin_db(0, 1);
        let far = two_node_network(30.0).sdm_margin_db(0, 1);
        assert!(far > near);
    }

    #[test]
    fn uplink_round_serves_all_nodes() {
        let n = two_node_network(40.0);
        let mut rng = GaussianSource::new(5);
        let payloads = vec![vec![0xAA, 0x55], vec![0x0F, 0xF0]];
        let reports = n.uplink_round(&payloads, &mut rng).unwrap();
        assert_eq!(reports.len(), 2);
        assert_eq!(reports[0].outcome.decoded, payloads[0]);
        assert_eq!(reports[1].outcome.decoded, payloads[1]);
        assert!(reports[0].sdm_margin_db > 20.0);
    }

    #[test]
    fn interference_lowers_effective_snr_for_close_nodes() {
        let mut rng1 = GaussianSource::new(6);
        let mut rng2 = GaussianSource::new(6);
        let payloads = vec![vec![1u8; 64], vec![2u8; 64]];
        let far = two_node_network(40.0)
            .uplink_round(&payloads, &mut rng1)
            .unwrap();
        let near = two_node_network(4.0)
            .uplink_round(&payloads, &mut rng2)
            .unwrap();
        assert!(
            near[0].outcome.snr_db < far[0].outcome.snr_db,
            "near {:.1} dB !< far {:.1} dB",
            near[0].outcome.snr_db,
            far[0].outcome.snr_db
        );
    }

    #[test]
    fn engine_round_matches_direct_bit_for_bit() {
        for sep_deg in [4.0, 40.0] {
            let n = two_node_network(sep_deg);
            let payloads = vec![vec![0xAA; 32], vec![0x55; 32]];
            let mut rng_e = GaussianSource::new(0xD15C);
            let mut rng_d = GaussianSource::new(0xD15C);
            let engine = n.uplink_round(&payloads, &mut rng_e).unwrap();
            let direct = n.uplink_round_direct(&payloads, &mut rng_d).unwrap();
            assert_eq!(engine, direct, "round reports diverged at {sep_deg}°");
            for (e, d) in engine.iter().zip(&direct) {
                assert_eq!(e.outcome.snr_db.to_bits(), d.outcome.snr_db.to_bits());
            }
            // The shared stream advanced identically.
            assert_eq!(rng_e.sample(1.0).to_bits(), rng_d.sample(1.0).to_bits());
        }
    }

    #[test]
    fn slotted_run_delivers_separable_nodes() {
        use crate::protocol::SlotPlan;
        let n = two_node_network(40.0);
        let packet = Packet::uplink(vec![0x42; 16]);
        let plan = SlotPlan::for_packet(
            4,
            &packet,
            &n.config.fmcw,
            n.config.uplink_symbol_rate_hz,
            10e-6,
        )
        .unwrap();
        let mut rng = GaussianSource::new(0x510);
        let r = n
            .run_slotted(6, &[0x42; 16], &plan, 0xFEED, 20.0, &mut rng)
            .unwrap();
        assert_eq!(r.frames, 6);
        assert_eq!(r.nodes.len(), 2);
        for node in &r.nodes {
            assert_eq!(node.attempts, 6, "one attempt per frame");
            assert_eq!(node.attempts, node.delivered + node.collisions);
            assert!(node.delivered > 0, "node {} never delivered", node.node_idx);
            assert!(node.energy_j > 0.0);
        }
        // Goodput and energy-per-packet roll-ups are present and positive.
        assert!(r.goodput_bps(0) > 0.0);
        assert!(r.energy_per_packet_j(0).unwrap() > 0.0);
        assert!(r.nodes[0].mean_snr_db.unwrap() > 0.0);
        assert!(r.elapsed_s() > 0.0);
    }

    #[test]
    fn slotted_run_is_deterministic() {
        use crate::protocol::SlotPlan;
        let run = || {
            let n = two_node_network(35.0);
            let packet = Packet::uplink(vec![7u8; 8]);
            let plan = SlotPlan::for_packet(
                2,
                &packet,
                &n.config.fmcw,
                n.config.uplink_symbol_rate_hz,
                5e-6,
            )
            .unwrap();
            let mut rng = GaussianSource::new(0xABCD);
            n.run_slotted(4, &[7u8; 8], &plan, 1, 20.0, &mut rng)
                .unwrap()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn close_nodes_collide_in_shared_slots() {
        use crate::protocol::SlotPlan;
        // Nodes 5° apart are not SDM-separable at 20 dB: every shared slot
        // must be a collision, every private slot a delivery.
        let n = two_node_network(5.0);
        let packet = Packet::uplink(vec![0x42; 16]);
        let plan = SlotPlan::for_packet(
            2,
            &packet,
            &n.config.fmcw,
            n.config.uplink_symbol_rate_hz,
            5e-6,
        )
        .unwrap();
        let mut rng = GaussianSource::new(0xC0);
        let r = n
            .run_slotted(12, &[0x42; 16], &plan, 3, 20.0, &mut rng)
            .unwrap();
        let shared: usize = (0..12)
            .filter(|&f| plan.slot_for(0, f, 3) == plan.slot_for(1, f, 3))
            .count();
        assert!(shared > 0, "seed should produce at least one shared slot");
        for node in &r.nodes {
            assert_eq!(node.collisions, shared);
            assert_eq!(node.delivered, 12 - shared);
        }
    }

    #[test]
    fn slotted_rejects_oversized_packets() {
        use crate::protocol::SlotPlan;
        let n = two_node_network(30.0);
        let small = Packet::uplink(vec![0u8; 2]);
        let plan = SlotPlan::for_packet(
            2,
            &small,
            &n.config.fmcw,
            n.config.uplink_symbol_rate_hz,
            0.0,
        )
        .unwrap();
        let mut rng = GaussianSource::new(1);
        // A much larger payload does not fit the 2-byte slots.
        assert!(n
            .run_slotted(1, &[0u8; 4096], &plan, 0, 20.0, &mut rng)
            .is_err());
    }

    #[test]
    fn payload_count_mismatch_rejected() {
        let n = two_node_network(30.0);
        let mut rng = GaussianSource::new(7);
        assert!(n.uplink_round(&[vec![1]], &mut rng).is_err());
    }

    #[test]
    fn single_node_network_has_infinite_margin() {
        let scene = Scene::single_node(3.0, 12f64.to_radians());
        let n = Network::new(SystemConfig::milback_default(), scene).unwrap();
        let mut rng = GaussianSource::new(8);
        let r = n.uplink_round(&[vec![7, 8, 9]], &mut rng).unwrap();
        assert_eq!(r[0].outcome.decoded, vec![7, 8, 9]);
        assert_eq!(r[0].sdm_margin_db, f64::MAX);
    }

    #[test]
    #[should_panic(expected = "does not interfere with itself")]
    fn self_margin_panics() {
        two_node_network(30.0).sdm_margin_db(0, 0);
    }

    #[test]
    fn doppler_signatures_are_distinct_rows() {
        let n_chirps = 24;
        let rows: Vec<usize> = (0..3)
            .map(|i| DopplerSignature::for_node(i).doppler_row(n_chirps))
            .collect();
        // Node 0: period 2 → row 12 (Nyquist); node 1: period 4 → row 6;
        // node 2: period 6 → row 4.
        assert_eq!(rows, vec![12, 6, 4]);
        let mut sorted = rows.clone();
        sorted.dedup();
        assert_eq!(sorted.len(), rows.len(), "rows must be distinct");
    }

    #[test]
    fn signature_toggle_pattern() {
        let s = DopplerSignature::for_node(1); // period 4
        let pattern: Vec<bool> = (0..8).map(|k| s.reflective_on(k)).collect();
        assert_eq!(
            pattern,
            vec![true, true, false, false, true, true, false, false]
        );
        assert!(s.resolved_by(8));
        assert!(!s.resolved_by(6));
    }

    #[test]
    fn localize_all_ranges_three_nodes_in_one_capture() {
        let scene = Scene::single_node(3.0, 12f64.to_radians())
            .with_node_at(5.0, 0.15, 0.2)
            .with_node_at(7.0, -0.12, -0.15);
        let network = Network::new(SystemConfig::milback_default(), scene).unwrap();
        let mut rng = GaussianSource::new(42);
        let fixes = localize_all_doppler(&network, 24, &mut rng).unwrap();
        assert_eq!(fixes.len(), 3);
        let expected = [3.0, 5.0, 7.0];
        for &(idx, range) in &fixes {
            assert!(
                (range - expected[idx]).abs() < 0.1,
                "node {idx}: {range:.3} m (expected {})",
                expected[idx]
            );
        }
    }

    fn plan_for(n: &Network, slots: usize, payload: &[u8]) -> SlotPlan {
        SlotPlan::for_packet(
            slots,
            &Packet::uplink(payload.to_vec()),
            &n.config.fmcw,
            n.config.uplink_symbol_rate_hz,
            5e-6,
        )
        .unwrap()
    }

    fn mac_context<'a>(n: &'a Network, plan: &SlotPlan, frames: usize) -> MacContext<'a> {
        MacContext {
            net: n,
            plan: *plan,
            frames,
            sdm_threshold_db: 20.0,
        }
    }

    #[test]
    fn trait_aloha_matches_direct_bit_for_bit() {
        let n = two_node_network(35.0);
        let payload = [7u8; 8];
        let plan = plan_for(&n, 4, &payload);
        let mut rng_t = GaussianSource::new(0xACE);
        let mut rng_d = GaussianSource::new(0xACE);
        let via_trait = n
            .run_slotted(6, &payload, &plan, 9, 20.0, &mut rng_t)
            .unwrap();
        let direct = n
            .run_slotted_direct(6, &payload, &plan, 9, 20.0, &mut rng_d)
            .unwrap();
        assert_eq!(via_trait, direct);
        // The shared stream advanced identically.
        assert_eq!(rng_t.sample(1.0).to_bits(), rng_d.sample(1.0).to_bits());
    }

    #[test]
    fn hashed_schedule_matches_per_slot_group_rehash() {
        // The hash-once slot → nodes map must regroup exactly like the
        // retained O(nodes × slots) per-slot re-hash.
        let mut scene = Scene::single_node(4.0, 12f64.to_radians());
        for k in 1..9 {
            scene = scene.with_node_at(4.0, (k as f64 * 10.0 - 40.0).to_radians(), 0.2);
        }
        let n = Network::new(SystemConfig::milback_default(), scene).unwrap();
        let plan = plan_for(&n, 6, &[1u8; 4]);
        let old = SlotCoordinator {
            me: ActorId(0),
            plan,
            frames: 5,
            slot_seed: 0xFEED,
            sdm_threshold_db: 20.0,
        };
        let mut aloha = SlottedAloha::new(0xFEED);
        let ctx = mac_context(&n, &plan, 5);
        for frame in 0..5 {
            let schedule = aloha.schedule_frame(frame, &ctx);
            for slot in 0..plan.slots_per_frame {
                let old_group = old.group(n.node_count(), frame, slot);
                let new_group = schedule
                    .iter()
                    .find(|(s, _)| *s == slot)
                    .map(|(_, g)| g.clone())
                    .unwrap_or_default();
                assert_eq!(new_group, old_group, "frame {frame} slot {slot}");
            }
            // And no empty groups are scheduled.
            assert!(schedule.iter().all(|(_, g)| !g.is_empty()));
        }
    }

    #[test]
    fn backoff_caps_exponent_and_window() {
        let n = two_node_network(5.0); // inseparable at 20 dB
        let plan = plan_for(&n, 1, &[1u8; 4]);
        let ctx = mac_context(&n, &plan, 64);
        let mut policy = BackoffAloha::new(0, 3);
        let mut rng = GaussianSource::new(0xB0);
        policy.begin(&ctx, &mut rng);
        // Hammer both nodes with collisions far past the cap.
        for _ in 0..32 {
            policy.on_slot_outcome(0, 0, &[0, 1], true);
            for st in &policy.nodes {
                assert!(st.exponent <= 3, "exponent {} beyond the cap", st.exponent);
                assert!(st.defer_frames < 8, "defer {} beyond 2^3", st.defer_frames);
            }
        }
        assert!(policy.nodes.iter().all(|st| st.exponent == 3));
        // A served slot resets the state.
        policy.on_slot_outcome(0, 0, &[0], false);
        assert_eq!(policy.nodes[0].exponent, 0);
        assert_eq!(policy.nodes[0].defer_frames, 0);
        assert_eq!(policy.nodes[1].exponent, 3);
    }

    #[test]
    fn backoff_deferred_nodes_skip_frames() {
        let n = two_node_network(5.0);
        let plan = plan_for(&n, 1, &[1u8; 4]);
        let ctx = mac_context(&n, &plan, 64);
        let mut policy = BackoffAloha::new(0, 4);
        let mut rng = GaussianSource::new(0xB1);
        policy.begin(&ctx, &mut rng);
        policy.nodes[0].defer_frames = 2;
        let s0 = policy.schedule_frame(0, &ctx);
        assert!(s0.iter().all(|(_, g)| !g.contains(&0)), "node 0 must defer");
        let s1 = policy.schedule_frame(1, &ctx);
        assert!(s1.iter().all(|(_, g)| !g.contains(&0)), "still deferring");
        let s2 = policy.schedule_frame(2, &ctx);
        assert!(
            s2.iter().any(|(_, g)| g.contains(&0)),
            "defer exhausted, node 0 contends again"
        );
    }

    #[test]
    fn backoff_unlocks_an_inseparable_pair() {
        // One slot, two inseparable nodes: plain ALOHA collides every
        // frame and never delivers; backoff desynchronizes the pair so
        // some frames carry exactly one transmitter — deliveries happen.
        let n = two_node_network(5.0);
        let payload = [0x42u8; 8];
        let plan = plan_for(&n, 1, &payload);
        let frames = 24;
        let mut rng_a = GaussianSource::new(0xD0);
        let aloha = n
            .run_slotted(frames, &payload, &plan, 1, 20.0, &mut rng_a)
            .unwrap();
        assert_eq!(
            aloha.nodes.iter().map(|nd| nd.delivered).sum::<usize>(),
            0,
            "one shared slot must collide every frame under plain ALOHA"
        );
        let mut rng_b = GaussianSource::new(0xD0);
        let backoff = n
            .run_mac(
                Box::new(BackoffAloha::new(1, 4)),
                frames,
                &payload,
                &plan,
                20.0,
                &mut rng_b,
            )
            .unwrap();
        let delivered: usize = backoff.nodes.iter().map(|nd| nd.delivered).sum();
        assert!(delivered > 0, "backoff never desynchronized the pair");
        let collided: usize = backoff.nodes.iter().map(|nd| nd.collisions).sum();
        assert!(
            collided < frames * 2,
            "backoff should collide less than every-frame"
        );
    }

    #[test]
    fn polling_with_more_nodes_than_slots_round_robins() {
        // 5 nodes, 2 slots/frame: each frame polls exactly 2 nodes, the
        // grant cursor wraps across frames, nobody ever collides.
        let mut scene = Scene::single_node(4.0, 12f64.to_radians());
        for k in 1..5 {
            scene = scene.with_node_at(4.0, (k as f64 * 20.0 - 50.0).to_radians(), 0.2);
        }
        let n = Network::new(SystemConfig::milback_default(), scene).unwrap();
        let payload = [9u8; 8];
        let plan = plan_for(&n, 2, &payload);
        let frames = 10; // 20 grants over 5 nodes → 4 each
        let mut rng = GaussianSource::new(0x90);
        let r = n
            .run_mac(
                Box::new(RoundRobinPolling::new()),
                frames,
                &payload,
                &plan,
                20.0,
                &mut rng,
            )
            .unwrap();
        for node in &r.nodes {
            assert_eq!(node.attempts, 4, "node {} grants", node.node_idx);
            assert_eq!(node.collisions, 0);
            assert_eq!(node.delivered, 4, "a granted slot is a clean channel");
        }
    }

    #[test]
    fn polling_grants_every_slot_when_nodes_are_scarce() {
        // 2 nodes, 4 slots/frame: nodes are polled twice per frame.
        let n = two_node_network(30.0);
        let payload = [3u8; 8];
        let plan = plan_for(&n, 4, &payload);
        let mut rng = GaussianSource::new(0x91);
        let r = n
            .run_mac(
                Box::new(RoundRobinPolling::new()),
                3,
                &payload,
                &plan,
                20.0,
                &mut rng,
            )
            .unwrap();
        for node in &r.nodes {
            assert_eq!(node.attempts, 6);
            assert_eq!(node.collisions, 0);
        }
    }

    #[test]
    fn sdm_aware_splits_an_inseparable_pair() {
        // Two nodes 5° apart are not separable at 20 dB: the SDM-aware
        // assignment must put them in different slots, and the campaign
        // must be collision-free with full delivery.
        let n = two_node_network(5.0);
        // 0x42 toggles both tone channels, so a clean slot always decodes.
        let payload = [0x42u8; 8];
        let plan = plan_for(&n, 2, &payload);
        let mut rng = GaussianSource::new(0x5D);
        let r = n
            .run_mac(
                Box::new(SdmAwareAssignment::new()),
                8,
                &payload,
                &plan,
                20.0,
                &mut rng,
            )
            .unwrap();
        for node in &r.nodes {
            assert_eq!(node.collisions, 0, "node {}", node.node_idx);
            assert_eq!(node.attempts, 8);
            assert_eq!(node.delivered, 8);
        }
    }

    #[test]
    fn sdm_aware_co_slots_separable_nodes() {
        let n = two_node_network(40.0);
        let plan = plan_for(&n, 4, &[1u8; 4]);
        let ctx = mac_context(&n, &plan, 4);
        let mut policy = SdmAwareAssignment::new();
        let mut rng = GaussianSource::new(1);
        policy.begin(&ctx, &mut rng);
        assert_eq!(
            policy.groups(),
            &[vec![0, 1]],
            "separable nodes form one group"
        );
        let schedule = policy.schedule_frame(0, &ctx);
        assert_eq!(schedule.len(), 4, "the lone group fills every slot");
        assert!(
            schedule.iter().all(|(_, g)| g == &[0, 1]),
            "separable nodes are co-slotted everywhere"
        );
    }

    #[test]
    fn sdm_aware_rotates_groups_that_outnumber_slots() {
        // Three mutually inseparable nodes, two slots: the partition needs
        // three singleton groups, more than a frame holds. The grant
        // rotation serves them all anyway — collision-free, with latency
        // (fewer grants per node) as the only cost.
        let scene = Scene::single_node(4.0, 12f64.to_radians())
            .with_node_at(4.0, 2f64.to_radians(), 0.2)
            .with_node_at(4.0, 4f64.to_radians(), 0.2);
        let n = Network::new(SystemConfig::milback_default(), scene).unwrap();
        let payload = [0x42u8; 4];
        let plan = plan_for(&n, 2, &payload);
        let frames = 4;
        let mut rng = GaussianSource::new(0x0F);
        let r = n
            .run_mac(
                Box::new(SdmAwareAssignment::new()),
                frames,
                &payload,
                &plan,
                20.0,
                &mut rng,
            )
            .unwrap();
        let attempts: usize = r.nodes.iter().map(|nd| nd.attempts).sum();
        assert_eq!(attempts, frames * 2, "every slot grants exactly one group");
        for node in &r.nodes {
            assert_eq!(node.collisions, 0, "node {}", node.node_idx);
            assert_eq!(node.delivered, node.attempts);
            assert!(
                node.attempts >= 2,
                "rotation starves node {}",
                node.node_idx
            );
        }
    }

    #[test]
    fn undelivered_node_reports_none_not_nan() {
        // One slot, two inseparable nodes: nothing ever delivers, and the
        // report must say so with `None` (NaN would make this very
        // assert_eq unsatisfiable) and keep serde clean of NaN tokens.
        let n = two_node_network(5.0);
        let payload = [1u8; 4];
        let plan = plan_for(&n, 1, &payload);
        let mut rng = GaussianSource::new(0xE0);
        let r = n
            .run_slotted(4, &payload, &plan, 1, 20.0, &mut rng)
            .unwrap();
        for node in &r.nodes {
            assert_eq!(node.delivered, 0);
            assert_eq!(node.mean_snr_db, None);
        }
        assert_eq!(r.energy_per_packet_j(0), None);
        // NaN sentinels made this exact assertion silently unsatisfiable.
        assert_eq!(r.clone(), r, "undelivered reports must still compare equal");
        // And nothing in the Debug rendering carries a NaN/inf token any
        // serializer would propagate.
        let rendered = format!("{r:?}");
        assert!(!rendered.contains("NaN") && !rendered.contains("inf"));
    }

    #[test]
    fn mac_policies_report_distinct_names() {
        let names = [
            SlottedAloha::new(0).name(),
            BackoffAloha::new(0, 4).name(),
            RoundRobinPolling::new().name(),
            SdmAwareAssignment::new().name(),
        ];
        let mut unique = names.to_vec();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), names.len(), "policy names collide: {names:?}");
    }

    #[test]
    fn localize_all_rejects_unresolvable_chirp_count() {
        let scene = Scene::single_node(3.0, 0.1).with_node_at(5.0, 0.2, 0.1);
        let network = Network::new(SystemConfig::milback_default(), scene).unwrap();
        let mut rng = GaussianSource::new(1);
        // Node 1 needs a multiple of 4 chirps; 10 is not.
        assert!(localize_all_doppler(&network, 10, &mut rng).is_err());
    }
}
