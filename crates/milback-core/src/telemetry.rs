//! Deterministic instrumentation: trace capture, campaign metrics, and the
//! probe that threads them through the engine, MAC stack, and session
//! pipeline.
//!
//! # Non-perturbation contract
//!
//! Instrumentation must never change what a simulation computes. Every
//! recording surface in this module is designed so that turning it on or
//! off cannot move a single bit of a campaign report:
//!
//! * **No randomness.** Nothing here draws from the trial RNG stream or
//!   owns a generator. Recorders only copy values the simulation already
//!   computed.
//! * **No simulated-time reads.** Timestamps are passed *in* by the code
//!   that already holds `now_ps`; telemetry never queries the clock, so it
//!   cannot reorder reads.
//! * **No wall clock.** Host-side wall-clock timing lives in the bench
//!   crate's span layer, outside the simulation entirely.
//! * **No panics on pressure.** The trace ring buffer drops its oldest
//!   records (and counts the drops) instead of growing or failing, so an
//!   instrumented run cannot abort where an uninstrumented one succeeded.
//!
//! The parity suite (`milback-bench/tests/telemetry_parity.rs`) enforces
//! the contract end-to-end: instrumented and uninstrumented campaigns are
//! bit-identical (`==` and `to_bits`) through the trial-parallel runner at
//! 1/2/4/8 threads for every MAC policy.
//!
//! # The `telemetry` feature
//!
//! With the default `telemetry` cargo feature enabled, recorders append
//! into the sink/registry. Built with `--no-default-features`, every
//! recording body compiles to a no-op (the types and APIs remain, exports
//! emit empty data), so a telemetry-off build is the zero-overhead
//! baseline. [`enabled`] reports which build this is.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::rc::Rc;

/// Whether this build records telemetry (`telemetry` cargo feature).
pub const fn enabled() -> bool {
    cfg!(feature = "telemetry")
}

/// Default trace ring-buffer capacity (records). At ~5 records per
/// occupied slot this holds several 64-node frames comfortably.
pub const DEFAULT_TRACE_CAPACITY: usize = 65_536;

/// Fixed buckets for slot-occupancy histograms (transmitters per slot).
pub const OCCUPANCY_BUCKETS: &[f64] = &[1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0];

/// Fixed buckets for per-attempt / per-packet node energy, joules.
pub const ENERGY_BUCKETS_J: &[f64] = &[1e-7, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2];

/// Fixed buckets for backoff contention windows, frames.
pub const BACKOFF_BUCKETS_FRAMES: &[f64] = &[1.0, 2.0, 4.0, 8.0, 16.0, 32.0];

/// Fixed buckets for delivered-packet SNR, dB.
pub const SNR_BUCKETS_DB: &[f64] = &[-10.0, 0.0, 10.0, 20.0, 30.0, 40.0];

/// Fixed buckets for relay route lengths (transmissions per delivered
/// relayed packet: tag hops + the terminal uplink, so direct == 1).
pub const RELAY_HOP_BUCKETS: &[f64] = &[1.0, 2.0, 3.0, 4.0, 6.0, 8.0];

/// Fixed buckets for FMCW chirp-stack batch sizes (chirps per batched FFT
/// pass). The paper's Field-2 capture is a five-chirp stack; Doppler
/// captures run longer.
pub const FMCW_BATCH_BUCKETS: &[f64] = &[1.0, 2.0, 5.0, 10.0, 20.0, 50.0];

/// Fixed log-spaced buckets for packet-latency sketches, microseconds:
/// a 1-2-5 decade ladder from one slot width (~tens of µs) out to a full
/// second. Fixed bounds are what make the sketches mergeable — sharded
/// cells fold bucket-by-bucket in cell-index order, so `p50/p95/p99` are
/// bit-identical at any `MILBACK_THREADS`.
pub const LATENCY_BUCKETS_US: &[f64] = &[
    1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0, 1e3, 2e3, 5e3, 1e4, 2e4, 5e4, 1e5, 2e5,
    5e5, 1e6,
];

/// One structured trace record. Timestamps are simulated integer
/// picoseconds, always supplied by the recording site (never read here).
#[derive(Debug, Clone, PartialEq)]
pub enum TraceRecord {
    /// An engine dispatch: one event popped from the queue.
    Event {
        /// Dispatch time, picoseconds.
        time_ps: u64,
        /// The event's queue sequence number.
        seq: u64,
        /// Destination actor index.
        actor: usize,
        /// Event kind label (static, per event type).
        kind: &'static str,
        /// Events still queued after this one was popped.
        queue_depth: usize,
    },
    /// A MAC slot resolved: the group either collided or was served.
    Slot {
        /// Slot airtime start, picoseconds.
        time_ps: u64,
        /// Frame number.
        frame: usize,
        /// Slot within the frame.
        slot: usize,
        /// Transmitting nodes (collision participants when `collided`).
        group: Vec<usize>,
        /// Whether the slot was lost to an unseparable collision.
        collided: bool,
        /// Packet airtime, picoseconds.
        dur_ps: u64,
    },
    /// A node sat out a frame under backoff.
    Backoff {
        /// Frame-start time, picoseconds.
        time_ps: u64,
        /// Deferring node.
        node: usize,
        /// Its current contention window, frames.
        window_frames: u64,
    },
    /// An SDM-aware group grant rotated into a slot.
    SdmRotation {
        /// Frame-start time, picoseconds.
        time_ps: u64,
        /// Frame number.
        frame: usize,
        /// Index of the granted group in the partition.
        group_idx: usize,
        /// Size of the granted group.
        group_size: usize,
    },
    /// A node's cumulative energy ledger after a draw.
    Energy {
        /// Time of the draw, picoseconds.
        time_ps: u64,
        /// The node.
        node: usize,
        /// Cumulative energy spent so far, joules.
        cumulative_j: f64,
    },
    /// An AP pipeline stage began serving one granted slot's job — one
    /// span of the job's packet flow.
    Stage {
        /// Service start, picoseconds.
        time_ps: u64,
        /// Stage label (`stage_capture` / `stage_plan` / `stage_transmit`).
        stage: &'static str,
        /// The packet flow id ([`PacketId`](crate::lifecycle::PacketId)).
        flow: u64,
        /// Planned service time (base latency + jitter), picoseconds.
        dur_ps: u64,
    },
    /// One tag-to-tag hop of a granted relay chain.
    RelayHop {
        /// Chain resolution time, picoseconds.
        time_ps: u64,
        /// The relay packet flow id.
        flow: u64,
        /// Hop index along the route (0 = the origin's handoff).
        hop: usize,
        /// Transmitting node.
        from: usize,
        /// Receiving node.
        to: usize,
        /// Hop airtime, picoseconds.
        dur_ps: u64,
    },
    /// A packet flow reached its terminal outcome.
    FlowEnd {
        /// Resolution time, picoseconds.
        time_ps: u64,
        /// The packet flow id.
        flow: u64,
        /// Terminal outcome label (`served`, `collision`, `shed`,
        /// `relayed`, `relay_failed`).
        outcome: &'static str,
    },
}

impl TraceRecord {
    /// The record's simulated timestamp, picoseconds.
    pub fn time_ps(&self) -> u64 {
        match *self {
            TraceRecord::Event { time_ps, .. }
            | TraceRecord::Slot { time_ps, .. }
            | TraceRecord::Backoff { time_ps, .. }
            | TraceRecord::SdmRotation { time_ps, .. }
            | TraceRecord::Energy { time_ps, .. }
            | TraceRecord::Stage { time_ps, .. }
            | TraceRecord::RelayHop { time_ps, .. }
            | TraceRecord::FlowEnd { time_ps, .. } => time_ps,
        }
    }

    /// The packet flow this record belongs to, when it carries one.
    pub fn flow(&self) -> Option<u64> {
        match *self {
            TraceRecord::Stage { flow, .. }
            | TraceRecord::RelayHop { flow, .. }
            | TraceRecord::FlowEnd { flow, .. } => Some(flow),
            _ => None,
        }
    }

    /// One JSONL line (no trailing newline). Floats are guaranteed finite
    /// by the recording sites; non-finite values are clamped to `0` so a
    /// line can never carry a `NaN`/`inf` token.
    pub fn to_jsonl(&self) -> String {
        match self {
            TraceRecord::Event {
                time_ps,
                seq,
                actor,
                kind,
                queue_depth,
            } => format!(
                "{{\"type\":\"event\",\"time_ps\":{time_ps},\"seq\":{seq},\"actor\":{actor},\
                 \"kind\":\"{kind}\",\"queue_depth\":{queue_depth}}}"
            ),
            TraceRecord::Slot {
                time_ps,
                frame,
                slot,
                group,
                collided,
                dur_ps,
            } => format!(
                "{{\"type\":\"slot\",\"time_ps\":{time_ps},\"frame\":{frame},\"slot\":{slot},\
                 \"group\":{},\"collided\":{collided},\"dur_ps\":{dur_ps}}}",
                json_usize_array(group)
            ),
            TraceRecord::Backoff {
                time_ps,
                node,
                window_frames,
            } => format!(
                "{{\"type\":\"backoff\",\"time_ps\":{time_ps},\"node\":{node},\
                 \"window_frames\":{window_frames}}}"
            ),
            TraceRecord::SdmRotation {
                time_ps,
                frame,
                group_idx,
                group_size,
            } => format!(
                "{{\"type\":\"sdm_rotation\",\"time_ps\":{time_ps},\"frame\":{frame},\
                 \"group_idx\":{group_idx},\"group_size\":{group_size}}}"
            ),
            TraceRecord::Energy {
                time_ps,
                node,
                cumulative_j,
            } => format!(
                "{{\"type\":\"energy\",\"time_ps\":{time_ps},\"node\":{node},\
                 \"cumulative_j\":{}}}",
                json_f64(*cumulative_j)
            ),
            TraceRecord::Stage {
                time_ps,
                stage,
                flow,
                dur_ps,
            } => format!(
                "{{\"type\":\"stage\",\"time_ps\":{time_ps},\"stage\":\"{stage}\",\
                 \"flow\":{flow},\"dur_ps\":{dur_ps}}}"
            ),
            TraceRecord::RelayHop {
                time_ps,
                flow,
                hop,
                from,
                to,
                dur_ps,
            } => format!(
                "{{\"type\":\"relay_hop\",\"time_ps\":{time_ps},\"flow\":{flow},\
                 \"hop\":{hop},\"from\":{from},\"to\":{to},\"dur_ps\":{dur_ps}}}"
            ),
            TraceRecord::FlowEnd {
                time_ps,
                flow,
                outcome,
            } => format!(
                "{{\"type\":\"flow_end\",\"time_ps\":{time_ps},\"flow\":{flow},\
                 \"outcome\":\"{outcome}\"}}"
            ),
        }
    }
}

/// Formats a float for JSON: finite values in full precision, everything
/// else clamped to `0` (trace/metric files must never carry NaN/inf).
pub fn json_f64(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v:e}");
        // `{:e}` is compact and round-trippable but renders exponents as
        // `1e0`; standard JSON parsers accept that form.
        s
    } else {
        "0".into()
    }
}

fn json_usize_array(v: &[usize]) -> String {
    let mut s = String::from("[");
    for (i, x) in v.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(s, "{x}");
    }
    s.push(']');
    s
}

/// A bounded in-memory trace: a ring buffer that drops its **oldest**
/// records under pressure and counts the drops — it never grows without
/// bound and never panics.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceBuffer {
    capacity: usize,
    records: VecDeque<TraceRecord>,
    dropped: u64,
}

impl TraceBuffer {
    /// A buffer holding at most `capacity` records (min 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            records: VecDeque::new(),
            dropped: 0,
        }
    }

    /// Appends a record, evicting the oldest when full.
    pub fn push(&mut self, r: TraceRecord) {
        if self.records.len() == self.capacity {
            self.records.pop_front();
            self.dropped += 1;
        }
        self.records.push_back(r);
    }

    /// The records currently held, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &TraceRecord> {
        self.records.iter()
    }

    /// Number of records currently held.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the buffer holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Records evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// JSONL export: one record per line, oldest first, plus a trailing
    /// `meta` line carrying the drop counter. `time_ps` is monotone
    /// non-decreasing across record lines because records are appended in
    /// dispatch order.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for r in &self.records {
            out.push_str(&r.to_jsonl());
            out.push('\n');
        }
        let _ = writeln!(
            out,
            "{{\"type\":\"meta\",\"records\":{},\"dropped\":{}}}",
            self.records.len(),
            self.dropped
        );
        out
    }
}

impl Default for TraceBuffer {
    fn default() -> Self {
        Self::new(DEFAULT_TRACE_CAPACITY)
    }
}

/// A shared, clonable handle to a [`TraceBuffer`]. One engine run is
/// single-threaded by construction, so the handle is a plain `Rc<RefCell>`
/// — the engine, medium, and coordinator can all hold one.
#[derive(Debug, Clone, Default)]
pub struct TraceSink(Rc<RefCell<TraceBuffer>>);

impl TraceSink {
    /// A sink over a fresh buffer of `capacity` records.
    pub fn with_capacity(capacity: usize) -> Self {
        Self(Rc::new(RefCell::new(TraceBuffer::new(capacity))))
    }

    /// Appends a record (no-op in a telemetry-off build).
    #[inline]
    pub fn record(&self, r: TraceRecord) {
        #[cfg(feature = "telemetry")]
        self.0.borrow_mut().push(r);
        #[cfg(not(feature = "telemetry"))]
        let _ = r;
    }

    /// Runs `f` over the underlying buffer (read-only snapshot access).
    pub fn with_buffer<T>(&self, f: impl FnOnce(&TraceBuffer) -> T) -> T {
        f(&self.0.borrow())
    }

    /// Consumes this handle, returning the buffer when this was the last
    /// clone (otherwise a deep copy of the current contents).
    pub fn into_buffer(self) -> TraceBuffer {
        match Rc::try_unwrap(self.0) {
            Ok(cell) => cell.into_inner(),
            Err(rc) => rc.borrow().clone(),
        }
    }
}

/// One fixed-bucket histogram: `counts[i]` holds observations in
/// `(bounds[i-1], bounds[i]]`, with one extra overflow bucket past the
/// last bound. Bucket bounds are fixed at creation so histograms merge
/// bucket-by-bucket without rebinning.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Upper bucket bounds, ascending.
    pub bounds: &'static [f64],
    /// Per-bucket counts (`bounds.len() + 1` entries; last = overflow).
    pub counts: Vec<u64>,
    /// Total observations (finite values only).
    pub count: u64,
    /// Sum of observed values (finite values only).
    pub sum: f64,
}

// Public regardless of the `telemetry` feature: the campaign aggregate
// (`network::CampaignAggregate`) uses these as campaign *output*, not as
// optional instrumentation, so a telemetry-off build still needs them.
impl Histogram {
    /// An empty histogram over fixed ascending `bounds`.
    pub fn new(bounds: &'static [f64]) -> Self {
        Self {
            bounds,
            counts: vec![0; bounds.len() + 1],
            count: 0,
            sum: 0.0,
        }
    }

    /// Counts a finite value into its bucket; non-finite values are
    /// ignored so they can never reach a serialized file.
    pub fn observe(&mut self, value: f64) {
        if !value.is_finite() {
            return;
        }
        let idx = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.count += 1;
        self.sum += value;
    }

    /// Folds another histogram's buckets into this one bucket-by-bucket
    /// (bounds must match).
    pub fn merge_from(&mut self, other: &Histogram) {
        debug_assert_eq!(self.bounds, other.bounds, "histogram buckets must match");
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
    }

    /// Mean of the observed values (`None` when empty).
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// The `q`-quantile estimate (`0 ≤ q ≤ 1`), by linear interpolation
    /// within the fixed buckets; `None` when empty or `q` is out of range.
    ///
    /// The estimate is a deterministic function of the bucket counts alone
    /// — no stored samples — so two histograms merged in the same order
    /// report bit-identical quantiles. Ranks landing in the first bucket
    /// report its upper bound, and ranks in the overflow bucket report the
    /// last bound, so estimates are clamped to `[bounds[0], bounds.last()]`
    /// and `quantile(a) <= quantile(b)` whenever `a <= b`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 || self.bounds.is_empty() || !(0.0..=1.0).contains(&q) {
            return None;
        }
        let target = q * self.count as f64;
        let mut below = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if (below + c) as f64 >= target {
                if idx == 0 {
                    return Some(self.bounds[0]);
                }
                if idx == self.bounds.len() {
                    return Some(self.bounds[self.bounds.len() - 1]);
                }
                let lo = self.bounds[idx - 1];
                let hi = self.bounds[idx];
                let frac = ((target - below as f64) / c as f64).clamp(0.0, 1.0);
                return Some(lo + (hi - lo) * frac);
            }
            below += c;
        }
        Some(self.bounds[self.bounds.len() - 1])
    }

    /// JSON object: `{"bounds":[..],"counts":[..],"count":N,"sum":S}`,
    /// plus `"p50"/"p95"/"p99"` quantile estimates when non-empty.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\"bounds\":[");
        for (i, b) in self.bounds.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&json_f64(*b));
        }
        s.push_str("],\"counts\":[");
        for (i, c) in self.counts.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "{c}");
        }
        let _ = write!(
            s,
            "],\"count\":{},\"sum\":{}",
            self.count,
            json_f64(self.sum)
        );
        if let (Some(p50), Some(p95), Some(p99)) = (
            self.quantile(0.50),
            self.quantile(0.95),
            self.quantile(0.99),
        ) {
            let _ = write!(
                s,
                ",\"p50\":{},\"p95\":{},\"p99\":{}",
                json_f64(p50),
                json_f64(p95),
                json_f64(p99)
            );
        }
        s.push('}');
        s
    }
}

/// A deterministic metrics registry: named counters and fixed-bucket
/// histograms, held in **first-registration order** so two runs that
/// record the same things serialize identically, and so cross-trial merges
/// (performed by the runner's caller in trial order) are reproducible.
///
/// Lookup is a linear scan — registries hold a handful of names, and a
/// `Vec` keeps ordering deterministic without a hasher.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Metrics {
    counters: Vec<(&'static str, u64)>,
    histograms: Vec<(&'static str, Histogram)>,
}

impl Metrics {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `by` to counter `name` (no-op in a telemetry-off build).
    #[inline]
    pub fn inc(&mut self, name: &'static str, by: u64) {
        #[cfg(feature = "telemetry")]
        {
            match self.counters.iter_mut().find(|(n, _)| *n == name) {
                Some((_, v)) => *v += by,
                None => self.counters.push((name, by)),
            }
        }
        #[cfg(not(feature = "telemetry"))]
        let _ = (name, by);
    }

    /// Observes `value` into histogram `name` with the given fixed bucket
    /// bounds (no-op in a telemetry-off build). Non-finite values are
    /// ignored — they can never reach a serialized file.
    #[inline]
    pub fn observe(&mut self, name: &'static str, bounds: &'static [f64], value: f64) {
        #[cfg(feature = "telemetry")]
        {
            match self.histograms.iter_mut().find(|(n, _)| *n == name) {
                Some((_, h)) => h.observe(value),
                None => {
                    let mut h = Histogram::new(bounds);
                    h.observe(value);
                    self.histograms.push((name, h));
                }
            }
        }
        #[cfg(not(feature = "telemetry"))]
        let _ = (name, bounds, value);
    }

    /// Folds a whole pre-aggregated histogram into histogram `name`
    /// (no-op in a telemetry-off build). This is how the engine's lossless
    /// per-label queue-depth tallies land in a campaign registry: the
    /// tally is built outside the registry and merged bucket-by-bucket, so
    /// no per-event registry lookup sits on the dispatch path.
    #[inline]
    pub fn merge_histogram(&mut self, name: &'static str, other: &Histogram) {
        #[cfg(feature = "telemetry")]
        {
            match self.histograms.iter_mut().find(|(n, _)| *n == name) {
                Some((_, h)) => h.merge_from(other),
                None => self.histograms.push((name, other.clone())),
            }
        }
        #[cfg(not(feature = "telemetry"))]
        let _ = (name, other);
    }

    /// A counter's current value (0 when never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }

    /// A histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, h)| h)
    }

    /// Counters in first-registration order.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().copied()
    }

    /// Histograms in first-registration order.
    pub fn histograms(&self) -> impl Iterator<Item = (&'static str, &Histogram)> + '_ {
        self.histograms.iter().map(|(n, h)| (*n, h))
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.histograms.is_empty()
    }

    /// Folds another registry into this one. Names the other registry
    /// knows and this one does not are appended in the other's order, so
    /// merging a trial sequence in trial order is deterministic.
    pub fn merge_from(&mut self, other: &Metrics) {
        for &(name, v) in &other.counters {
            match self.counters.iter_mut().find(|(n, _)| *n == name) {
                Some((_, mine)) => *mine += v,
                None => self.counters.push((name, v)),
            }
        }
        for &(name, ref h) in &other.histograms {
            match self.histograms.iter_mut().find(|(n, _)| *n == name) {
                Some((_, mine)) => mine.merge_from(h),
                None => self.histograms.push((name, h.clone())),
            }
        }
    }

    /// JSON object:
    /// `{"counters":{..},"histograms":{name:{bounds,counts,count,sum}}}`.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\"counters\":{");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "\"{name}\":{v}");
        }
        s.push_str("},\"histograms\":{");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "\"{name}\":{}", h.to_json());
        }
        s.push_str("}}");
        s
    }
}

/// The instrumentation surface a campaign run carries: an optional trace
/// sink and an optional metrics registry. A disabled probe (both `None`,
/// the default) is what every uninstrumented path passes — recording
/// helpers no-op on it, so the instrumented and uninstrumented code paths
/// are literally the same code.
#[derive(Debug, Clone, Default)]
pub struct CampaignProbe {
    /// Structured trace destination, when tracing.
    pub trace: Option<TraceSink>,
    /// Counter/histogram registry, when collecting metrics.
    pub metrics: Option<Metrics>,
}

impl CampaignProbe {
    /// A probe that records nothing.
    pub fn disabled() -> Self {
        Self::default()
    }

    /// A probe collecting metrics only.
    pub fn with_metrics() -> Self {
        Self {
            trace: None,
            metrics: Some(Metrics::new()),
        }
    }

    /// A probe collecting metrics and tracing into a ring of `capacity`
    /// records.
    pub fn with_trace(capacity: usize) -> Self {
        Self {
            trace: Some(TraceSink::with_capacity(capacity)),
            metrics: Some(Metrics::new()),
        }
    }

    /// Whether anything is attached.
    pub fn is_enabled(&self) -> bool {
        self.trace.is_some() || self.metrics.is_some()
    }

    /// Records a trace record, if tracing.
    #[inline]
    pub fn trace(&mut self, f: impl FnOnce() -> TraceRecord) {
        if let Some(sink) = &self.trace {
            sink.record(f());
        }
    }

    /// Adds to a counter, if collecting metrics.
    #[inline]
    pub fn inc(&mut self, name: &'static str, by: u64) {
        if let Some(m) = &mut self.metrics {
            m.inc(name, by);
        }
    }

    /// Observes into a histogram, if collecting metrics.
    #[inline]
    pub fn observe(&mut self, name: &'static str, bounds: &'static [f64], value: f64) {
        if let Some(m) = &mut self.metrics {
            m.observe(name, bounds, value);
        }
    }

    /// Takes the collected metrics out of the probe (leaves `None`).
    pub fn take_metrics(&mut self) -> Option<Metrics> {
        self.metrics.take()
    }

    /// Records an FSA gain-cache snapshot under the `fsa_*` counters:
    /// memo hits/misses per cache plus the points served by the batch
    /// (memo-bypassing) path. The snapshot is cumulative per evaluator, so
    /// record it once per evaluator lifetime (e.g. at campaign teardown) —
    /// like every probe helper this copies values the pipeline already
    /// computed and can never perturb it.
    pub fn record_fsa_stats(&mut self, stats: &mmwave_rf::antenna::fsa::FsaStats) {
        if self.metrics.is_none() {
            return;
        }
        self.inc("fsa_freq_hits", stats.freq_hits);
        self.inc("fsa_freq_misses", stats.freq_misses);
        self.inc("fsa_gain_hits", stats.gain_hits);
        self.inc("fsa_gain_misses", stats.gain_misses);
        self.inc("fsa_batch_points", stats.batch_points);
    }

    /// Observes one FMCW chirp-stack size into the `fmcw_batch_chirps`
    /// histogram ([`FMCW_BATCH_BUCKETS`]) — how many chirps each batched
    /// FFT pass carried.
    pub fn observe_fmcw_batch(&mut self, n_chirps: usize) {
        self.observe("fmcw_batch_chirps", FMCW_BATCH_BUCKETS, n_chirps as f64);
    }

    /// Folds the engine's lossless per-label queue-depth tallies into the
    /// registry, if collecting metrics: each label lands under its
    /// [`queue_depth_metric`] name, and every label also merges into the
    /// combined `queue_depth` histogram. Unlike the retired
    /// trace-ring reconstruction, this path loses nothing when the bounded
    /// [`TraceBuffer`] evicts old records — the tallies were counted at
    /// dispatch, not replayed from the ring.
    pub fn merge_queue_depths<'a>(
        &mut self,
        tallies: impl Iterator<Item = (&'static str, &'a Histogram)>,
    ) {
        if self.metrics.is_none() {
            return;
        }
        if let Some(m) = &mut self.metrics {
            for (label, hist) in tallies {
                m.merge_histogram(queue_depth_metric(label), hist);
                m.merge_histogram("queue_depth", hist);
            }
        }
    }
}

/// The metric name of one event label's engine queue-depth histogram.
/// Known labels (the MAC pipeline's event kinds) get stable per-stage
/// names; anything else folds into the shared `queue_depth_other` bucket
/// so an unknown label can never mint an unbounded set of metric names.
pub fn queue_depth_metric(label: &'static str) -> &'static str {
    match label {
        "frame_start" => "queue_depth_frame_start",
        "slot_fire" => "queue_depth_slot_fire",
        "stage_capture" => "queue_depth_stage_capture",
        "stage_plan" => "queue_depth_stage_plan",
        "stage_transmit" => "queue_depth_stage_transmit",
        _ => "queue_depth_other",
    }
}

/// Renders one or more trace buffers as Chrome `trace_event` JSON (the
/// JSON-object format: `{"traceEvents":[...]}`), loadable in
/// `chrome://tracing` and [Perfetto](https://ui.perfetto.dev).
///
/// Each `(name, buffer)` pair becomes its own trace "process" (`pid` = its
/// index, labelled by a metadata record), so several campaigns — e.g. the
/// four MAC policies — land side by side in one view. Simulated
/// picoseconds map to trace microseconds (`ts = time_ps / 1e6`), keeping a
/// 45 µs slot legible at Perfetto's default zoom.
///
/// Record mapping: engine events → instant (`"ph":"i"`), slots → complete
/// spans (`"ph":"X"` with `dur`), backoff/rotation → instants with args,
/// energy → counter tracks (`"ph":"C"`), and packet-lifecycle records
/// (stage service, relay hops, terminal outcomes) → spans/instants tied
/// together by Perfetto **flow events** (`"ph":"s"/"t"/"f"`).
///
/// Flow ids are namespaced per section (`"p{pid}.{flow}"`). A flow chain
/// is only rendered when at least two of its records survive in the ring
/// buffer — the first surviving record opens the flow (`s`), the last
/// closes it (`f`), any middle records step it (`t`) — so eviction can
/// never leave a dangling flow id ([`validate_chrome_trace`] rejects
/// those).
pub fn chrome_trace(sections: &[(&str, &TraceBuffer)]) -> String {
    let mut s = String::from("{\"traceEvents\":[");
    let mut first = true;
    let push = |s: &mut String, first: &mut bool, ev: String| {
        if !*first {
            s.push(',');
        }
        *first = false;
        s.push_str(&ev);
    };
    // The tid lane of a flow-bearing record: stages get one lane each,
    // relay hops stack by hop index, terminals share one lane.
    fn flow_tid(r: &TraceRecord) -> usize {
        match r {
            TraceRecord::Stage { stage, .. } => match *stage {
                "stage_plan" => 301,
                "stage_transmit" => 302,
                _ => 300,
            },
            TraceRecord::RelayHop { hop, .. } => 320 + hop,
            _ => 310,
        }
    }
    for (pid, (name, buf)) in sections.iter().enumerate() {
        // Pre-pass: how many records each flow id keeps in the buffer.
        // Linear-scan map (flow counts are small) for deterministic order.
        let mut chains: Vec<(u64, usize)> = Vec::new();
        for r in buf.records() {
            if let Some(flow) = r.flow() {
                match chains.iter_mut().find(|(f, _)| *f == flow) {
                    Some((_, n)) => *n += 1,
                    None => chains.push((flow, 1)),
                }
            }
        }
        let mut emitted: Vec<(u64, usize)> = Vec::new();
        push(
            &mut s,
            &mut first,
            format!(
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\
                 \"args\":{{\"name\":\"{name}\"}}}}"
            ),
        );
        for r in buf.records() {
            let ts = json_f64(r.time_ps() as f64 / 1e6);
            let ev = match r {
                TraceRecord::Event {
                    actor,
                    kind,
                    seq,
                    queue_depth,
                    ..
                } => format!(
                    "{{\"name\":\"{kind}\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{ts},\"pid\":{pid},\
                     \"tid\":{actor},\"args\":{{\"seq\":{seq},\"queue_depth\":{queue_depth}}}}}"
                ),
                TraceRecord::Slot {
                    frame,
                    slot,
                    group,
                    collided,
                    dur_ps,
                    ..
                } => format!(
                    "{{\"name\":\"{}\",\"ph\":\"X\",\"ts\":{ts},\"dur\":{},\"pid\":{pid},\
                     \"tid\":{},\"args\":{{\"frame\":{frame},\"group\":{},\
                     \"collided\":{collided}}}}}",
                    if *collided { "collision" } else { "slot" },
                    json_f64(*dur_ps as f64 / 1e6),
                    100 + slot,
                    json_usize_array(group),
                ),
                TraceRecord::Backoff {
                    node,
                    window_frames,
                    ..
                } => format!(
                    "{{\"name\":\"backoff\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{ts},\"pid\":{pid},\
                     \"tid\":{},\"args\":{{\"node\":{node},\"window_frames\":{window_frames}}}}}",
                    200 + node
                ),
                TraceRecord::SdmRotation {
                    frame,
                    group_idx,
                    group_size,
                    ..
                } => format!(
                    "{{\"name\":\"sdm_rotation\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{ts},\
                     \"pid\":{pid},\"tid\":0,\"args\":{{\"frame\":{frame},\
                     \"group_idx\":{group_idx},\"group_size\":{group_size}}}}}"
                ),
                TraceRecord::Energy {
                    node, cumulative_j, ..
                } => format!(
                    "{{\"name\":\"energy_node{node}\",\"ph\":\"C\",\"ts\":{ts},\"pid\":{pid},\
                     \"tid\":0,\"args\":{{\"joules\":{}}}}}",
                    json_f64(*cumulative_j)
                ),
                TraceRecord::Stage {
                    stage,
                    flow,
                    dur_ps,
                    ..
                } => format!(
                    "{{\"name\":\"{stage}\",\"ph\":\"X\",\"ts\":{ts},\"dur\":{},\"pid\":{pid},\
                     \"tid\":{},\"args\":{{\"flow\":{flow}}}}}",
                    json_f64(*dur_ps as f64 / 1e6),
                    flow_tid(r),
                ),
                TraceRecord::RelayHop {
                    flow,
                    hop,
                    from,
                    to,
                    dur_ps,
                    ..
                } => format!(
                    "{{\"name\":\"relay_hop\",\"ph\":\"X\",\"ts\":{ts},\"dur\":{},\"pid\":{pid},\
                     \"tid\":{},\"args\":{{\"flow\":{flow},\"hop\":{hop},\"from\":{from},\
                     \"to\":{to}}}}}",
                    json_f64(*dur_ps as f64 / 1e6),
                    flow_tid(r),
                ),
                TraceRecord::FlowEnd { flow, outcome, .. } => format!(
                    "{{\"name\":\"{outcome}\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{ts},\"pid\":{pid},\
                     \"tid\":{},\"args\":{{\"flow\":{flow}}}}}",
                    flow_tid(r),
                ),
            };
            push(&mut s, &mut first, ev);
            // Tie the packet's spans together with a flow event: only
            // chains with ≥ 2 surviving records render, first record
            // starts (`s`), last finishes (`f`), middles step (`t`).
            if let Some(flow) = r.flow() {
                let total = chains
                    .iter()
                    .find(|(f, _)| *f == flow)
                    .map(|(_, n)| *n)
                    .unwrap_or(0);
                let pos = match emitted.iter_mut().find(|(f, _)| *f == flow) {
                    Some((_, p)) => {
                        *p += 1;
                        *p
                    }
                    None => {
                        emitted.push((flow, 0));
                        0
                    }
                };
                if total >= 2 {
                    let ph = if pos == 0 {
                        "s"
                    } else if pos + 1 == total {
                        "f"
                    } else {
                        "t"
                    };
                    push(
                        &mut s,
                        &mut first,
                        format!(
                            "{{\"name\":\"packet\",\"cat\":\"flow\",\"ph\":\"{ph}\",\
                             \"id\":\"p{pid}.{flow}\",\"ts\":{ts},\"pid\":{pid},\"tid\":{}}}",
                            flow_tid(r),
                        ),
                    );
                }
            }
        }
    }
    s.push_str("],\"displayTimeUnit\":\"ns\"}");
    s
}

/// A minimal structural validator for the Chrome traces [`chrome_trace`]
/// emits: checks the envelope, balanced braces/brackets, the absence of
/// `NaN`/`inf` tokens, that every event object carries the required
/// `ph`/`pid`/`ts`-or-metadata fields, and that **flow events pair up** —
/// every flow id appearing in a `"ph":"s"/"t"/"f"` event must both start
/// (`s`) and finish (`f`), so a dangling flow can never ship. Returns the
/// event count.
///
/// This is not a general JSON parser — it validates the subset this module
/// generates, which is exactly what the schema round-trip tests and CI
/// need without a JSON dependency.
pub fn validate_chrome_trace(s: &str) -> Result<usize, String> {
    let body = s
        .strip_prefix("{\"traceEvents\":[")
        .ok_or("missing traceEvents envelope")?;
    if !s.ends_with('}') {
        return Err("unterminated trace object".into());
    }
    if s.contains("NaN") || s.contains("inf") {
        return Err("trace carries NaN/inf tokens".into());
    }
    let (mut depth_obj, mut depth_arr) = (1i64, 1i64);
    for c in body.chars() {
        match c {
            '{' => depth_obj += 1,
            '}' => depth_obj -= 1,
            '[' => depth_arr += 1,
            ']' => depth_arr -= 1,
            _ => {}
        }
        if depth_obj < 0 || depth_arr < 0 {
            return Err("unbalanced braces".into());
        }
    }
    if depth_obj != 0 || depth_arr != 0 {
        return Err(format!(
            "unbalanced trace: obj depth {depth_obj}, arr depth {depth_arr}"
        ));
    }
    let mut events = 0usize;
    // Flow-pairing ledger: (id, saw_start, saw_finish), first-seen order.
    let mut flows: Vec<(String, bool, bool)> = Vec::new();
    let marker = "{\"name\":";
    for (pos, _) in body.match_indices(marker) {
        // Skip nested objects (a metadata event's `"args":{"name":..}`).
        if body[..pos].ends_with("\"args\":") {
            continue;
        }
        let chunk = &body[pos + marker.len()..];
        let end = chunk.len().min(200);
        let head = &chunk[..end];
        if !(head.contains("\"ph\":\"M\"") || head.contains("\"ts\":")) {
            return Err(format!("event without ph/ts: {{\"name\":{head:.60}"));
        }
        if !head.contains("\"pid\":") {
            return Err("event without pid".into());
        }
        let phase = if head.starts_with("\"packet\",\"cat\":\"flow\"") {
            ["s", "t", "f"]
                .into_iter()
                .find(|p| head.contains(&format!("\"ph\":\"{p}\"")))
        } else {
            None
        };
        if let Some(phase) = phase {
            let id = head
                .split("\"id\":\"")
                .nth(1)
                .and_then(|rest| rest.split('"').next())
                .ok_or("flow event without an id")?;
            let entry = match flows.iter_mut().find(|(f, _, _)| f == id) {
                Some(e) => e,
                None => {
                    flows.push((id.to_string(), false, false));
                    flows.last_mut().expect("just pushed")
                }
            };
            match phase {
                "s" => entry.1 = true,
                "f" => entry.2 = true,
                _ => {}
            }
        }
        events += 1;
    }
    for &(ref id, started, finished) in &flows {
        if !(started && finished) {
            return Err(format!(
                "dangling flow id {id}: start={started}, finish={finished}"
            ));
        }
    }
    Ok(events)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(t: u64, seq: u64) -> TraceRecord {
        TraceRecord::Event {
            time_ps: t,
            seq,
            actor: 0,
            kind: "test",
            queue_depth: 3,
        }
    }

    #[test]
    fn ring_buffer_drops_oldest_and_counts_never_panics() {
        let mut buf = TraceBuffer::new(4);
        for k in 0..10 {
            buf.push(event(k * 100, k));
        }
        assert_eq!(buf.len(), 4);
        assert_eq!(buf.dropped(), 6);
        let first = buf.records().next().unwrap().time_ps();
        assert_eq!(first, 600, "oldest records were evicted first");
        // The JSONL export records the drop count.
        let jsonl = buf.to_jsonl();
        assert!(jsonl.contains("\"dropped\":6"), "{jsonl}");
    }

    #[test]
    fn jsonl_lines_are_monotone_and_clean() {
        let mut buf = TraceBuffer::new(16);
        buf.push(event(100, 0));
        buf.push(TraceRecord::Slot {
            time_ps: 200,
            frame: 0,
            slot: 3,
            group: vec![1, 4],
            collided: true,
            dur_ps: 45_000_000,
        });
        buf.push(TraceRecord::Energy {
            time_ps: 250,
            node: 1,
            cumulative_j: 1.5e-5,
        });
        let jsonl = buf.to_jsonl();
        assert!(!jsonl.contains("NaN") && !jsonl.contains("inf"));
        let mut last = 0u64;
        for line in jsonl.lines().filter(|l| !l.contains("\"meta\"")) {
            let t: u64 = line
                .split("\"time_ps\":")
                .nth(1)
                .and_then(|s| s.split(&[',', '}'][..]).next())
                .and_then(|s| s.parse().ok())
                .expect("every record line carries time_ps");
            assert!(t >= last, "time went backwards in {line}");
            last = t;
        }
        assert!(jsonl.contains("\"group\":[1,4]"));
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn non_finite_observations_never_reach_json() {
        let mut m = Metrics::new();
        m.observe("e", ENERGY_BUCKETS_J, f64::NAN);
        m.observe("e", ENERGY_BUCKETS_J, f64::INFINITY);
        m.observe("e", ENERGY_BUCKETS_J, 1e-5);
        let h = m.histogram("e").unwrap();
        assert_eq!(h.count, 1, "non-finite values are ignored");
        let json = m.to_json();
        assert!(!json.contains("NaN") && !json.contains("inf"), "{json}");
        // And a non-finite trace float clamps rather than leaking.
        assert_eq!(json_f64(f64::NAN), "0");
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn histogram_buckets_and_mean() {
        let mut m = Metrics::new();
        for v in [0.5, 1.0, 3.0, 100.0] {
            m.observe("occ", OCCUPANCY_BUCKETS, v);
        }
        let h = m.histogram("occ").unwrap();
        assert_eq!(h.counts[0], 2, "0.5 and 1.0 land in the first bucket");
        assert_eq!(h.counts[2], 1, "3.0 lands in (2, 4]");
        assert_eq!(*h.counts.last().unwrap(), 1, "100.0 overflows");
        assert_eq!(h.count, 4);
        assert!((h.mean().unwrap() - 26.125).abs() < 1e-12);
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn metrics_merge_is_deterministic_and_ordered() {
        let mut a = Metrics::new();
        a.inc("slots", 3);
        a.observe("occ", OCCUPANCY_BUCKETS, 2.0);
        let mut b = Metrics::new();
        b.inc("collisions", 1);
        b.inc("slots", 2);
        b.observe("occ", OCCUPANCY_BUCKETS, 5.0);
        let merged = |order: &[&Metrics]| {
            let mut m = Metrics::new();
            for x in order {
                m.merge_from(x);
            }
            m
        };
        let ab = merged(&[&a, &b]);
        assert_eq!(ab.counter("slots"), 5);
        assert_eq!(ab.counter("collisions"), 1);
        assert_eq!(ab.histogram("occ").unwrap().count, 2);
        // Merging in a fixed order always serializes identically.
        assert_eq!(ab.to_json(), merged(&[&a, &b]).to_json());
        // First-registration order is preserved: "slots" precedes
        // "collisions" when a merges first.
        let json = ab.to_json();
        assert!(json.find("slots").unwrap() < json.find("collisions").unwrap());
    }

    #[cfg(not(feature = "telemetry"))]
    #[test]
    fn telemetry_off_build_records_nothing() {
        let mut m = Metrics::new();
        m.inc("slots", 3);
        m.observe("occ", OCCUPANCY_BUCKETS, 2.0);
        assert!(m.is_empty(), "recording must compile to a no-op");
        let sink = TraceSink::with_capacity(8);
        sink.record(TraceRecord::Event {
            time_ps: 0,
            seq: 0,
            actor: 0,
            kind: "x",
            queue_depth: 0,
        });
        assert!(sink.with_buffer(|b| b.is_empty()));
        assert!(!enabled());
    }

    #[test]
    fn chrome_trace_round_trips_through_the_validator() {
        let mut aloha = TraceBuffer::new(64);
        aloha.push(event(0, 0));
        aloha.push(TraceRecord::Slot {
            time_ps: 45_000_000,
            frame: 0,
            slot: 1,
            group: vec![0, 2],
            collided: false,
            dur_ps: 40_000_000,
        });
        let mut backoff = TraceBuffer::new(64);
        backoff.push(TraceRecord::Backoff {
            time_ps: 0,
            node: 2,
            window_frames: 8,
        });
        backoff.push(TraceRecord::SdmRotation {
            time_ps: 10,
            frame: 0,
            group_idx: 1,
            group_size: 3,
        });
        backoff.push(TraceRecord::Energy {
            time_ps: 20,
            node: 2,
            cumulative_j: 2.5e-6,
        });
        let json = chrome_trace(&[("aloha", &aloha), ("backoff", &backoff)]);
        let events = validate_chrome_trace(&json).expect("trace must validate");
        // 5 records + 2 process_name metadata events.
        assert_eq!(events, 7);
        assert!(json.contains("\"process_name\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"C\""));
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn quantiles_interpolate_and_stay_monotone() {
        let mut h = Histogram::new(OCCUPANCY_BUCKETS);
        assert_eq!(h.quantile(0.5), None, "empty histogram has no quantiles");
        for v in [1.0, 3.0, 3.5, 6.0, 100.0] {
            h.observe(v);
        }
        // Ranks in the first bucket clamp to its upper bound, overflow
        // ranks clamp to the last bound.
        assert_eq!(h.quantile(0.0), Some(1.0));
        assert_eq!(h.quantile(1.0), Some(64.0));
        // p50: target rank 2.5 of 5 lands in the (2, 4] bucket (two
        // observations, one rank already below) → 2 + 2 * (1.5 / 2).
        assert!((h.quantile(0.5).unwrap() - 3.5).abs() < 1e-12);
        assert_eq!(h.quantile(1.5), None, "out-of-range q is rejected");
        let (p50, p95, p99) = (
            h.quantile(0.50).unwrap(),
            h.quantile(0.95).unwrap(),
            h.quantile(0.99).unwrap(),
        );
        assert!(p50 <= p95 && p95 <= p99, "{p50} {p95} {p99}");
        let json = h.to_json();
        assert!(
            json.contains("\"p50\":") && json.contains("\"p99\":"),
            "{json}"
        );
        // Merging two histograms quantiles exactly like observing the
        // union — the sketch is a pure function of the bucket counts.
        let mut a = Histogram::new(OCCUPANCY_BUCKETS);
        let mut b = Histogram::new(OCCUPANCY_BUCKETS);
        for v in [1.0, 3.0, 3.5] {
            a.observe(v);
        }
        for v in [6.0, 100.0] {
            b.observe(v);
        }
        a.merge_from(&b);
        assert_eq!(a.quantile(0.5), h.quantile(0.5));
        assert_eq!(a.quantile(0.99), h.quantile(0.99));
    }

    #[test]
    fn empty_histogram_serializes_without_percentiles() {
        let h = Histogram::new(OCCUPANCY_BUCKETS);
        let json = h.to_json();
        assert!(!json.contains("\"p50\""), "{json}");
        assert!(json.contains("\"count\":0"), "{json}");
    }

    #[test]
    fn flow_events_pair_and_round_trip() {
        let mut buf = TraceBuffer::new(64);
        buf.push(TraceRecord::Stage {
            time_ps: 0,
            stage: "stage_capture",
            flow: 42,
            dur_ps: 1_000,
        });
        buf.push(TraceRecord::Stage {
            time_ps: 1_000,
            stage: "stage_plan",
            flow: 42,
            dur_ps: 2_000,
        });
        buf.push(TraceRecord::RelayHop {
            time_ps: 2_000,
            flow: 42,
            hop: 0,
            from: 3,
            to: 1,
            dur_ps: 500,
        });
        buf.push(TraceRecord::FlowEnd {
            time_ps: 3_000,
            flow: 42,
            outcome: "served",
        });
        let json = chrome_trace(&[("audit", &buf)]);
        // 1 metadata + 4 record events + 4 flow events (s, t, t, f).
        assert_eq!(validate_chrome_trace(&json).unwrap(), 9);
        assert!(json.contains("\"ph\":\"s\""), "{json}");
        assert!(json.contains("\"ph\":\"f\""), "{json}");
        assert!(json.contains("\"id\":\"p0.42\""), "{json}");
        // A mangled finish leaves the flow dangling — the validator must
        // reject it, not just the emitter avoid it.
        let dangling = json.replace("\"ph\":\"f\"", "\"ph\":\"t\"");
        let err = validate_chrome_trace(&dangling).unwrap_err();
        assert!(err.contains("dangling flow"), "{err}");
        // JSONL lines for the new records carry no NaN/inf and parse the
        // flow field back out.
        let jsonl = buf.to_jsonl();
        assert!(jsonl.contains("\"type\":\"stage\""));
        assert!(jsonl.contains("\"type\":\"relay_hop\""));
        assert!(jsonl.contains("\"outcome\":\"served\""));
    }

    #[test]
    fn lone_flow_records_render_no_flow_events() {
        // A ring-evicted chain can leave a single record; the renderer
        // must not open a flow it cannot close.
        let mut buf = TraceBuffer::new(64);
        buf.push(TraceRecord::FlowEnd {
            time_ps: 0,
            flow: 7,
            outcome: "shed",
        });
        let json = chrome_trace(&[("x", &buf)]);
        assert_eq!(validate_chrome_trace(&json).unwrap(), 2);
        assert!(!json.contains("\"cat\":\"flow\""), "{json}");
    }

    #[test]
    fn validator_rejects_mangled_traces() {
        assert!(validate_chrome_trace("[]").is_err());
        assert!(validate_chrome_trace("{\"traceEvents\":[{]}").is_err());
        let mut buf = TraceBuffer::new(4);
        buf.push(event(0, 0));
        let good = chrome_trace(&[("x", &buf)]);
        let bad = good.replace("\"ts\":", "\"xs\":");
        assert!(validate_chrome_trace(&bad).is_err());
    }

    #[test]
    fn probe_helpers_no_op_when_disabled() {
        let mut p = CampaignProbe::disabled();
        assert!(!p.is_enabled());
        p.inc("slots", 1);
        p.observe("occ", OCCUPANCY_BUCKETS, 1.0);
        let mut called = false;
        p.trace(|| {
            called = true;
            TraceRecord::Event {
                time_ps: 0,
                seq: 0,
                actor: 0,
                kind: "x",
                queue_depth: 0,
            }
        });
        assert!(!called, "a disabled probe must not even build records");
        assert!(p.take_metrics().is_none());
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn probe_records_fsa_stats_and_fmcw_batches() {
        let mut p = CampaignProbe::with_metrics();
        p.record_fsa_stats(&mmwave_rf::antenna::fsa::FsaStats {
            freq_hits: 3,
            freq_misses: 1,
            gain_hits: 40,
            gain_misses: 2,
            batch_points: 900,
        });
        p.observe_fmcw_batch(5);
        p.observe_fmcw_batch(64);
        let m = p.take_metrics().unwrap();
        assert_eq!(m.counter("fsa_freq_hits"), 3);
        assert_eq!(m.counter("fsa_gain_misses"), 2);
        assert_eq!(m.counter("fsa_batch_points"), 900);
        let h = m.histogram("fmcw_batch_chirps").unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 69.0);
        // A disabled probe records nothing through the same helpers.
        let mut off = CampaignProbe::disabled();
        off.record_fsa_stats(&Default::default());
        off.observe_fmcw_batch(5);
        assert!(off.take_metrics().is_none());
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn probe_with_trace_collects_both() {
        let mut p = CampaignProbe::with_trace(8);
        assert!(p.is_enabled());
        p.inc("slots", 2);
        p.trace(|| event(5, 1));
        let m = p.take_metrics().unwrap();
        assert_eq!(m.counter("slots"), 2);
        let buf = p.trace.take().unwrap().into_buffer();
        assert_eq!(buf.len(), 1);
    }
}
