//! # milback-core
//!
//! The MilBack network core: system configuration, scenes with exact ground
//! truth, the joint communication/localization protocol (§7), end-to-end
//! downlink/uplink link simulation (§6, Figs 14–15), the full localization
//! and orientation pipeline (§5, Figs 12–13), and multi-node SDM operation.
//!
//! Start from [`config::SystemConfig::milback_default`] and a
//! [`scene::Scene`], then drive a [`link::LinkSimulator`] or a
//! [`localization::LocalizationPipeline`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod coding;
pub mod config;
pub mod dense;
pub mod engine;
pub mod error;
pub mod lifecycle;
pub mod link;
pub mod localization;
pub mod network;
pub mod pipeline;
pub mod protocol;
pub mod relay;
pub mod scene;
pub mod session;
pub mod shard;
pub mod telemetry;
pub mod tracking;

pub use config::SystemConfig;
pub use engine::{Actor, ActorId, Engine, Outbox, TimePs};
pub use error::{MilbackError, Result};
pub use lifecycle::{DropReason, LifecycleStats, PacketId};
pub use link::{DownlinkOutcome, LinkSimulator, TransferOutcome, UplinkOutcome};
pub use localization::{Impairments, LocalizationPipeline, LocationFix};
pub use network::{
    BackoffAloha, CampaignAggregate, CampaignScratch, FrameSchedule, MacContext, MacPolicy,
    Network, RelayGrant, RoundRobinPolling, SdmAwareAssignment, SlottedAloha, SlottedNodeReport,
    SlottedRunReport,
};
pub use pipeline::{ApServiceConfig, ApServiceStats, OverflowPolicy, StageKind};
pub use protocol::Packet;
pub use relay::{classify_gap_reasons, select_routes, NeighborGraph, RelayAwareMac, RelayConfig};
pub use scene::{CoverageModel, GroundTruth, Scene};
pub use session::{Session, SessionReport};
pub use shard::{cell_seed, partition_cells};
pub use telemetry::{CampaignProbe, Metrics, TraceBuffer, TraceRecord, TraceSink};
pub use tracking::Tracker;
