//! Packet-lifecycle flight recorder: deterministic packet identities, an
//! exhaustive drop-reason taxonomy, the conservation audit, and mergeable
//! latency sketches.
//!
//! The MAC stack has five places a packet can die — slot collisions,
//! SDM-inseparable groups, pipeline shedding, routeless gap nodes, and
//! decode failures — but campaign reports only carried aggregate delivery
//! rates. This module gives every offered packet an exhaustive terminal
//! outcome: it is counted **offered** once at its frame boundary and
//! resolves to exactly one of `delivered (direct | relayed)` or a
//! [`DropReason`], so the conservation invariant
//!
//! ```text
//! offered == delivered_direct + delivered_relayed + Σ drops
//! ```
//!
//! holds per run, per shard cell, and per merged campaign by construction.
//! [`LifecycleStats::audit`] turns a violation into a typed error
//! ([`MilbackError::Conservation`]); the sharded runner audits every cell.
//!
//! # Determinism and the non-perturbation contract
//!
//! Everything here obeys the telemetry module's contract: recorders copy
//! integers and already-computed latencies, draw no RNG, and read no
//! clocks. Built with `--no-default-features` every recording body
//! compiles to a no-op and all counts stay zero (an empty ledger trivially
//! conserves). Latency sketches use fixed log-spaced buckets
//! ([`crate::telemetry::LATENCY_BUCKETS_US`]), so
//! sharded campaigns merge them bucket-by-bucket in cell-index order and
//! report `p50/p95/p99` bit-identically at any `MILBACK_THREADS`.

use crate::error::{MilbackError, Result};
use crate::pipeline::{OverflowPolicy, StageKind};
use crate::telemetry::{Histogram, LATENCY_BUCKETS_US};

/// A deterministic packet identity, used as the Perfetto flow id linking
/// one packet's Capture → Plan → Transmit (or relay-hop) spans. Direct
/// grants are keyed by `(frame, slot)` — unique because a frame schedule
/// holds strictly increasing slots — and relay chains by `(frame, origin)`
/// — unique because route selection grants at most one route per origin.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PacketId(u64);

impl PacketId {
    /// High bit distinguishing relay-chain flows from direct-slot flows.
    const RELAY_BIT: u64 = 1 << 63;

    /// The flow id of a direct slot grant.
    pub fn direct(frame: usize, slot: usize) -> Self {
        Self(((frame as u64) << 20) | (slot as u64 & 0xF_FFFF))
    }

    /// The flow id of a granted relay chain, keyed by its origin node.
    pub fn relayed(frame: usize, origin: usize) -> Self {
        Self(Self::RELAY_BIT | ((frame as u64) << 20) | (origin as u64 & 0xF_FFFF))
    }

    /// The raw 64-bit id carried by trace records.
    pub fn raw(self) -> u64 {
        self.0
    }
}

/// Why an offered packet failed to deliver. Every loss site in the MAC
/// stack maps to exactly one variant, so the reasons partition the
/// non-delivered packets — no double counting, no leaks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropReason {
    /// A multi-transmitter slot whose SDM arbitration was skipped (a
    /// pipeline-degraded grant): plain contention, nothing arbitrated.
    ContentionCollision,
    /// A multi-transmitter slot that SDM arbitration could not separate:
    /// some co-slotted pair fell below the separability threshold.
    SdmInseparable,
    /// The AP service pipeline shed the grant at a full stage queue.
    ServiceShed {
        /// The stage whose queue was full.
        stage: StageKind,
        /// The overflow policy that shed it (always
        /// [`OverflowPolicy::Drop`] today — `Defer`/`Degrade` admit).
        policy: OverflowPolicy,
    },
    /// A gap node with no tag-to-tag path to coverage (or a viable path
    /// the campaign's policy never granted): the AP can never hear it.
    NoRelayRoute,
    /// A gap node whose shortest path to coverage exists but exceeds the
    /// campaign's `max_hops` transmission budget.
    HopBudgetExhausted,
    /// The uplink reached a covered receiver but did not decode to the
    /// offered payload.
    DecodeFailure,
    /// The policy never put the node's packet in the frame's schedule
    /// (backoff deferral, polling rotation, waiting SDM group).
    NeverScheduled,
}

impl DropReason {
    /// Number of taxonomy variants (the length of [`Self::LABELS`]).
    pub const COUNT: usize = 7;

    /// Canonical snake_case labels, in [`Self::index`] order — the keys
    /// every serialized drop table carries (present even at zero).
    pub const LABELS: [&'static str; Self::COUNT] = [
        "contention_collision",
        "sdm_inseparable",
        "service_shed",
        "no_relay_route",
        "hop_budget_exhausted",
        "decode_failure",
        "never_scheduled",
    ];

    /// This reason's slot in a drop-count table (payload-independent).
    pub fn index(self) -> usize {
        match self {
            DropReason::ContentionCollision => 0,
            DropReason::SdmInseparable => 1,
            DropReason::ServiceShed { .. } => 2,
            DropReason::NoRelayRoute => 3,
            DropReason::HopBudgetExhausted => 4,
            DropReason::DecodeFailure => 5,
            DropReason::NeverScheduled => 6,
        }
    }

    /// The canonical label of this reason.
    pub fn label(self) -> &'static str {
        Self::LABELS[self.index()]
    }
}

/// One run's packet-lifecycle ledger: offered/delivered totals, drop
/// counts indexed by [`DropReason::index`], the shed-stage breakdown, and
/// three latency sketches. Exact `u64` adds plus fixed-bucket histograms,
/// so merging in cell-index order is bit-reproducible at any thread count.
#[derive(Debug, Clone, PartialEq)]
pub struct LifecycleStats {
    /// Packets offered: one per scheduled transmitter appearance, one per
    /// granted relay chain, one per node a frame never scheduled.
    pub offered: u64,
    /// Packets delivered over a direct uplink.
    pub delivered_direct: u64,
    /// Packets delivered over a granted relay chain.
    pub delivered_relayed: u64,
    /// Drop counts by [`DropReason::index`].
    pub drops: [u64; DropReason::COUNT],
    /// `ServiceShed` drops by shedding stage (`StageKind` discriminant).
    pub shed_by_stage: [u64; 3],
    /// Wait from frame start to slot airtime, microseconds, per packet.
    pub slot_wait_us: Histogram,
    /// AP pipeline residence (grant offer to Transmit completion),
    /// microseconds, per packet reaching the channel.
    pub service_residence_us: Histogram,
    /// Extra latency of a relayed delivery over a direct uplink,
    /// microseconds, per relayed delivery.
    pub relay_extra_us: Histogram,
}

impl LifecycleStats {
    /// An empty ledger over the canonical latency buckets.
    pub fn new() -> Self {
        Self {
            offered: 0,
            delivered_direct: 0,
            delivered_relayed: 0,
            drops: [0; DropReason::COUNT],
            shed_by_stage: [0; 3],
            slot_wait_us: Histogram::new(LATENCY_BUCKETS_US),
            service_residence_us: Histogram::new(LATENCY_BUCKETS_US),
            relay_extra_us: Histogram::new(LATENCY_BUCKETS_US),
        }
    }

    /// Counts `n` packets offered (no-op in a telemetry-off build).
    #[inline]
    pub fn offer(&mut self, n: u64) {
        #[cfg(feature = "telemetry")]
        {
            self.offered += n;
        }
        #[cfg(not(feature = "telemetry"))]
        let _ = n;
    }

    /// Counts `n` direct deliveries (no-op in a telemetry-off build).
    #[inline]
    pub fn deliver_direct(&mut self, n: u64) {
        #[cfg(feature = "telemetry")]
        {
            self.delivered_direct += n;
        }
        #[cfg(not(feature = "telemetry"))]
        let _ = n;
    }

    /// Counts `n` relayed deliveries (no-op in a telemetry-off build).
    #[inline]
    pub fn deliver_relayed(&mut self, n: u64) {
        #[cfg(feature = "telemetry")]
        {
            self.delivered_relayed += n;
        }
        #[cfg(not(feature = "telemetry"))]
        let _ = n;
    }

    /// Counts `n` packets dropped for `reason` (no-op in a telemetry-off
    /// build). `ServiceShed` drops also land in the per-stage breakdown.
    #[inline]
    pub fn record_drops(&mut self, reason: DropReason, n: u64) {
        #[cfg(feature = "telemetry")]
        {
            self.drops[reason.index()] += n;
            if let DropReason::ServiceShed { stage, .. } = reason {
                self.shed_by_stage[stage as usize] += n;
            }
        }
        #[cfg(not(feature = "telemetry"))]
        let _ = (reason, n);
    }

    /// Observes a slot wait for `packets` co-slotted packets (no-op in a
    /// telemetry-off build).
    #[inline]
    pub fn observe_slot_wait_us(&mut self, us: f64, packets: usize) {
        #[cfg(feature = "telemetry")]
        for _ in 0..packets {
            self.slot_wait_us.observe(us);
        }
        #[cfg(not(feature = "telemetry"))]
        let _ = (us, packets);
    }

    /// Observes an AP service residence for `packets` co-slotted packets
    /// (no-op in a telemetry-off build).
    #[inline]
    pub fn observe_service_residence_us(&mut self, us: f64, packets: usize) {
        #[cfg(feature = "telemetry")]
        for _ in 0..packets {
            self.service_residence_us.observe(us);
        }
        #[cfg(not(feature = "telemetry"))]
        let _ = (us, packets);
    }

    /// Observes one relayed delivery's extra latency (no-op in a
    /// telemetry-off build).
    #[inline]
    pub fn observe_relay_extra_us(&mut self, us: f64) {
        #[cfg(feature = "telemetry")]
        self.relay_extra_us.observe(us);
        #[cfg(not(feature = "telemetry"))]
        let _ = us;
    }

    /// Total deliveries, both paths.
    pub fn delivered(&self) -> u64 {
        self.delivered_direct + self.delivered_relayed
    }

    /// Total drops across the taxonomy.
    pub fn dropped(&self) -> u64 {
        self.drops.iter().sum()
    }

    /// The conservation audit: every offered packet must have resolved to
    /// exactly one terminal outcome. Returns
    /// [`MilbackError::Conservation`] on violation. In a telemetry-off
    /// build every count is zero and the empty ledger passes trivially.
    pub fn audit(&self) -> Result<()> {
        debug_assert_eq!(
            self.shed_by_stage.iter().sum::<u64>(),
            self.drops[2],
            "shed-stage breakdown must sum to the service_shed drop count"
        );
        let delivered = self.delivered();
        let dropped = self.dropped();
        if self.offered != delivered + dropped {
            return Err(MilbackError::Conservation {
                offered: self.offered,
                delivered,
                dropped,
            });
        }
        Ok(())
    }

    /// Folds another ledger into this one: exact integer adds plus
    /// bucket-by-bucket histogram merges, so any fixed merge order (the
    /// sharded runner uses cell-index order) reproduces bit-identically.
    pub fn merge_from(&mut self, other: &Self) {
        self.offered += other.offered;
        self.delivered_direct += other.delivered_direct;
        self.delivered_relayed += other.delivered_relayed;
        for (a, b) in self.drops.iter_mut().zip(&other.drops) {
            *a += b;
        }
        for (a, b) in self.shed_by_stage.iter_mut().zip(&other.shed_by_stage) {
            *a += b;
        }
        self.slot_wait_us.merge_from(&other.slot_wait_us);
        self.service_residence_us
            .merge_from(&other.service_residence_us);
        self.relay_extra_us.merge_from(&other.relay_extra_us);
    }

    /// Histogram bucket slots held — the ledger's only heap footprint,
    /// folded into the aggregate's bounded-memory accounting.
    pub fn bucket_footprint(&self) -> usize {
        self.slot_wait_us.counts.len()
            + self.service_residence_us.counts.len()
            + self.relay_extra_us.counts.len()
    }

    /// JSON object for metrics documents: the totals, the drop table keyed
    /// by **every** canonical [`DropReason::LABELS`] entry (present even at
    /// zero, so consumers never probe for missing keys), the shed-stage
    /// breakdown, and the three latency sketches — each a
    /// [`Histogram::to_json`] object whose `p50/p95/p99` keys appear only
    /// when the sketch is non-empty. No `NaN`/`inf` token can appear: every
    /// float comes from the histogram serializer, which filters non-finite
    /// values at observation time.
    pub fn to_json(&self) -> String {
        use core::fmt::Write as _;
        let mut s = format!(
            "{{\"offered\":{},\"delivered_direct\":{},\"delivered_relayed\":{},\"drops\":{{",
            self.offered, self.delivered_direct, self.delivered_relayed
        );
        for (k, label) in DropReason::LABELS.iter().enumerate() {
            if k > 0 {
                s.push(',');
            }
            let _ = write!(s, "\"{label}\":{}", self.drops[k]);
        }
        s.push_str("},\"shed_by_stage\":{");
        for (k, label) in ["capture", "plan", "transmit"].iter().enumerate() {
            if k > 0 {
                s.push(',');
            }
            let _ = write!(s, "\"{label}\":{}", self.shed_by_stage[k]);
        }
        let _ = write!(
            s,
            "}},\"slot_wait_us\":{},\"service_residence_us\":{},\"relay_extra_us\":{}}}",
            self.slot_wait_us.to_json(),
            self.service_residence_us.to_json(),
            self.relay_extra_us.to_json()
        );
        s
    }
}

impl Default for LifecycleStats {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packet_ids_are_unique_per_kind() {
        let a = PacketId::direct(3, 7);
        let b = PacketId::direct(3, 8);
        let c = PacketId::relayed(3, 7);
        assert_ne!(a, b);
        assert_ne!(a.raw(), c.raw(), "relay flows live in their own space");
        assert_eq!(a, PacketId::direct(3, 7));
    }

    #[test]
    fn labels_cover_every_variant_in_index_order() {
        let all = [
            DropReason::ContentionCollision,
            DropReason::SdmInseparable,
            DropReason::ServiceShed {
                stage: StageKind::Capture,
                policy: OverflowPolicy::Drop,
            },
            DropReason::NoRelayRoute,
            DropReason::HopBudgetExhausted,
            DropReason::DecodeFailure,
            DropReason::NeverScheduled,
        ];
        assert_eq!(all.len(), DropReason::COUNT);
        for (k, r) in all.iter().enumerate() {
            assert_eq!(r.index(), k);
            assert_eq!(r.label(), DropReason::LABELS[k]);
        }
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn conservation_audit_catches_leaks() {
        let mut s = LifecycleStats::new();
        s.offer(10);
        s.deliver_direct(4);
        s.deliver_relayed(1);
        s.record_drops(DropReason::SdmInseparable, 3);
        s.record_drops(
            DropReason::ServiceShed {
                stage: StageKind::Plan,
                policy: OverflowPolicy::Drop,
            },
            2,
        );
        assert_eq!(s.shed_by_stage, [0, 2, 0]);
        s.audit().expect("balanced ledger conserves");
        s.offer(1); // one packet offered, never resolved
        let err = s.audit().expect_err("a leak must surface");
        assert!(err.to_string().contains("conservation"), "{err}");
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn merge_is_exact_and_order_free_on_counters() {
        let mut a = LifecycleStats::new();
        a.offer(5);
        a.deliver_direct(5);
        a.observe_slot_wait_us(45.0, 5);
        let mut b = LifecycleStats::new();
        b.offer(2);
        b.record_drops(DropReason::NeverScheduled, 2);
        b.observe_slot_wait_us(90.0, 2);
        let mut ab = a.clone();
        ab.merge_from(&b);
        let mut ba = b.clone();
        ba.merge_from(&a);
        assert_eq!(ab.offered, 7);
        assert_eq!(ab.slot_wait_us.count, 7);
        assert_eq!(ab.offered, ba.offered);
        assert_eq!(ab.drops, ba.drops);
        ab.audit().expect("merged ledgers conserve");
    }

    #[test]
    fn json_carries_every_drop_label_even_at_zero() {
        let doc = LifecycleStats::new().to_json();
        for label in DropReason::LABELS {
            assert!(doc.contains(&format!("\"{label}\":0")), "{label} missing");
        }
        for stage in ["capture", "plan", "transmit"] {
            assert!(doc.contains(&format!("\"{stage}\":0")), "{stage} missing");
        }
        // Empty sketches omit their percentile keys entirely.
        assert!(!doc.contains("\"p50\""));
        assert!(!doc.contains("NaN") && !doc.contains("inf"));
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn json_percentiles_appear_ordered_once_observed() {
        let mut s = LifecycleStats::new();
        s.offer(3);
        s.deliver_direct(3);
        for us in [10.0, 100.0, 5000.0] {
            s.observe_slot_wait_us(us, 1);
        }
        let doc = s.to_json();
        assert!(doc.contains("\"p50\""), "{doc}");
        let (p50, p95, p99) = (
            s.slot_wait_us.quantile(0.50).unwrap(),
            s.slot_wait_us.quantile(0.95).unwrap(),
            s.slot_wait_us.quantile(0.99).unwrap(),
        );
        assert!(p50 <= p95 && p95 <= p99, "{p50} {p95} {p99}");
    }

    #[cfg(not(feature = "telemetry"))]
    #[test]
    fn telemetry_off_ledger_stays_empty_and_conserves() {
        let mut s = LifecycleStats::new();
        s.offer(10);
        s.deliver_direct(4);
        s.record_drops(DropReason::DecodeFailure, 1);
        s.observe_slot_wait_us(45.0, 3);
        assert_eq!(s.offered, 0);
        assert_eq!(s.dropped(), 0);
        assert_eq!(s.slot_wait_us.count, 0);
        s.audit().expect("the empty ledger conserves trivially");
    }
}
