//! Multi-hop tag-to-tag relaying across AP coverage gaps.
//!
//! The paper's network section assumes every tag sits inside the AP's
//! serviceable range; a city-scale deployment does not — cell-edge nodes
//! beyond the coverage model's range (or sector) are **gap nodes** whose
//! direct uplinks the AP can never hear. This module adds the missing
//! delivery path: a gap node hands its packet to a geometric neighbor,
//! the packet hops tag-to-tag toward the covered region, and the last
//! (covered) tag uplinks it on the origin's behalf.
//!
//! Everything here is deterministic by construction:
//!
//! * **Neighbor discovery** ([`NeighborGraph::from_scene`]) is pure
//!   geometry — two tags are neighbors iff their distance is within the
//!   tag-to-tag range. No RNG.
//! * **Route selection** ([`select_routes`]) is a multi-source BFS from
//!   the covered set, visiting nodes in index order; the only freedom —
//!   which equal-distance neighbor a node picks as its parent — is
//!   resolved by a SplitMix64 draw keyed on `(seed, node)`, so the
//!   routing table is a pure function of the scene, the coverage model,
//!   and one seed drawn from the trial stream. Identical at any
//!   `MILBACK_THREADS`.
//! * **Scheduling** ([`RelayAwareMac`]) grants each routed gap node a
//!   relay chain in its hashed slot; routed gap nodes drop out of the
//!   direct contention set (their uplink would be wasted airtime), while
//!   *routeless* gap nodes keep contending blindly — they cannot know
//!   the AP is deaf — so their attempts stay in every delivery-rate
//!   denominator.
//!
//! A [`RelayConfig::disabled`] campaign classifies nothing, draws
//! nothing, and grants nothing: the parity suite proves it bit-exact
//! (`==` and `to_bits`) with the relay-free MAC paths.

use crate::lifecycle::DropReason;
use crate::network::{
    hash_into_slots, splitmix64, FrameSchedule, MacContext, MacPolicy, RelayGrant,
};
use crate::scene::{CoverageModel, Scene};
use mmwave_sigproc::random::GaussianSource;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Campaign-wide relay parameters: the AP coverage model that defines
/// gap nodes, and the chain geometry/budget used to bridge them.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RelayConfig {
    /// Which nodes the AP can reach directly; everything outside is a
    /// gap node.
    pub coverage: CoverageModel,
    /// Maximum transmissions a packet may take end-to-end (tag hops plus
    /// the terminal uplink). `1` means direct-only: a gap node adjacent
    /// to coverage needs `2`.
    pub max_hops: usize,
    /// Maximum tag-to-tag distance for neighbor discovery, meters.
    pub tag_range_m: f64,
    /// Deterministic SNR penalty per tag hop, dB, subtracted from the
    /// reported SNR of a relayed delivery.
    pub hop_snr_penalty_db: f64,
}

impl RelayConfig {
    /// The parity configuration: unbounded coverage (no gap nodes), no
    /// hop budget beyond direct, no neighbor range. Campaigns run with
    /// this draw no relay RNG and post no relay events — bit-exact with
    /// the relay-free paths.
    pub fn disabled() -> Self {
        Self {
            coverage: CoverageModel::unbounded(),
            max_hops: 1,
            tag_range_m: 0.0,
            hop_snr_penalty_db: 0.0,
        }
    }

    /// Whether this configuration can never produce a gap node. With
    /// unbounded coverage relaying is moot whatever the other knobs
    /// say, and the relay machinery must stay fully dormant (no RNG
    /// draws) so the parity argument holds.
    pub fn is_disabled(&self) -> bool {
        self.coverage.is_unbounded()
    }
}

impl Default for RelayConfig {
    fn default() -> Self {
        Self::disabled()
    }
}

/// The tag-to-tag adjacency of a scene: node `i` and `j` are neighbors
/// iff their positions lie within the configured tag range. Built once
/// per campaign by pairwise distance (O(n²) over a cell, which the
/// sharded runner keeps small), adjacency lists in ascending index
/// order.
#[derive(Debug, Clone, PartialEq)]
pub struct NeighborGraph {
    adj: Vec<Vec<usize>>,
}

impl NeighborGraph {
    /// Discovers neighbors among `scene`'s nodes within `tag_range_m`.
    pub fn from_scene(scene: &Scene, tag_range_m: f64) -> Self {
        let n = scene.nodes.len();
        let mut adj = vec![Vec::new(); n];
        for i in 0..n {
            for j in (i + 1)..n {
                let d = scene.nodes[i].position.distance_to(scene.nodes[j].position);
                if d <= tag_range_m {
                    adj[i].push(j);
                    adj[j].push(i);
                }
            }
        }
        Self { adj }
    }

    /// Nodes in the graph.
    pub fn len(&self) -> usize {
        self.adj.len()
    }

    /// Whether the graph has no nodes at all.
    pub fn is_empty(&self) -> bool {
        self.adj.is_empty()
    }

    /// Node `idx`'s neighbors, in ascending index order.
    pub fn neighbors(&self, idx: usize) -> &[usize] {
        &self.adj[idx]
    }

    /// Node `idx`'s neighbor count.
    pub fn degree(&self, idx: usize) -> usize {
        self.adj[idx].len()
    }
}

/// Per-node distance to the covered set, in tag hops: `0` for covered
/// nodes, `usize::MAX` when unreachable.
fn hop_distances(graph: &NeighborGraph, covered: &[bool]) -> Vec<usize> {
    let mut dist = vec![usize::MAX; graph.len()];
    let mut queue = VecDeque::new();
    // Multi-source BFS seeded in index order: FIFO expansion makes the
    // distance field unique (it is anyway) and the traversal order a
    // pure function of the inputs.
    for (idx, &c) in covered.iter().enumerate() {
        if c {
            dist[idx] = 0;
            queue.push_back(idx);
        }
    }
    while let Some(u) = queue.pop_front() {
        for &v in graph.neighbors(u) {
            if dist[v] == usize::MAX {
                dist[v] = dist[u] + 1;
                queue.push_back(v);
            }
        }
    }
    dist
}

/// Selects one relay route per routable gap node: `routes[idx]` is
/// `Some([idx, …, terminal])` — origin first, covered terminal last —
/// when `idx` is a gap node whose shortest path to coverage fits the
/// `max_hops` transmission budget (`tag hops + 1 ≤ max_hops`), `None`
/// for covered nodes and unroutable gap nodes.
///
/// Routes follow shortest paths; where a node has several equal-distance
/// parents the choice is a SplitMix64 draw keyed on `(seed, node)`, so
/// the full table is deterministic for a fixed seed at any thread count
/// while different trials spread load across parent candidates.
pub fn select_routes(
    graph: &NeighborGraph,
    covered: &[bool],
    max_hops: usize,
    seed: u64,
) -> Vec<Option<Vec<usize>>> {
    assert_eq!(graph.len(), covered.len(), "graph/coverage node counts");
    let dist = hop_distances(graph, covered);
    let n = graph.len();
    // Seeded parent choice per node, resolved before route assembly so a
    // shared prefix is shared in every route that crosses it.
    let mut parent = vec![usize::MAX; n];
    for idx in 0..n {
        let d = dist[idx];
        if d == 0 || d == usize::MAX {
            continue;
        }
        let candidates: Vec<usize> = graph
            .neighbors(idx)
            .iter()
            .copied()
            .filter(|&u| dist[u] == d - 1)
            .collect();
        debug_assert!(!candidates.is_empty(), "BFS distance without a parent");
        let mut state = seed ^ (idx as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        parent[idx] = candidates[(splitmix64(&mut state) % candidates.len() as u64) as usize];
    }
    (0..n)
        .map(|idx| {
            let d = dist[idx];
            if covered[idx] || d == usize::MAX || d + 1 > max_hops {
                return None;
            }
            let mut route = Vec::with_capacity(d + 1);
            let mut at = idx;
            route.push(at);
            while !covered[at] {
                at = parent[at];
                route.push(at);
            }
            Some(route)
        })
        .collect()
}

/// Classifies every gap node's drop attribution under `config`: the
/// [`DropReason`] its direct uplink earns when the AP cannot hear it.
/// `reasons[idx]` is `None` for covered nodes;
/// [`DropReason::HopBudgetExhausted`] when a tag-to-tag path to coverage
/// exists but its transmission count (`tag hops + 1`) exceeds
/// `config.max_hops`; and [`DropReason::NoRelayRoute`] otherwise — the
/// node is unreachable through the neighbor graph, or reachable within
/// budget but the campaign's policy granted it no chain.
///
/// Pure geometry (the same BFS route selection runs), no RNG, no clock:
/// safe to call from the lifecycle recorder without perturbing a run.
pub fn classify_gap_reasons(
    scene: &Scene,
    covered: &[bool],
    config: &RelayConfig,
) -> Vec<Option<DropReason>> {
    let graph = NeighborGraph::from_scene(scene, config.tag_range_m);
    let dist = hop_distances(&graph, covered);
    covered
        .iter()
        .zip(&dist)
        .map(|(&c, &d)| {
            if c {
                None
            } else if d != usize::MAX && d + 1 > config.max_hops {
                Some(DropReason::HopBudgetExhausted)
            } else {
                Some(DropReason::NoRelayRoute)
            }
        })
        .collect()
}

/// Relay-aware slotted ALOHA: covered nodes contend directly exactly as
/// [`SlottedAloha`](crate::network::SlottedAloha) does (same hash, same
/// seed), routed gap nodes are granted relay chains in their hashed
/// slots instead of contending, and routeless gap nodes keep contending
/// blindly so their (undeliverable) attempts stay in the denominators.
#[derive(Debug, Clone)]
pub struct RelayAwareMac {
    slot_seed: u64,
    config: RelayConfig,
    covered: Vec<bool>,
    routes: Vec<Option<Vec<usize>>>,
}

impl RelayAwareMac {
    /// Creates the policy over the direct-contention slot seed and the
    /// campaign relay configuration.
    pub fn new(slot_seed: u64, config: RelayConfig) -> Self {
        Self {
            slot_seed,
            config,
            covered: Vec::new(),
            routes: Vec::new(),
        }
    }

    /// The routing table computed in [`MacPolicy::begin`] (empty before).
    pub fn routes(&self) -> &[Option<Vec<usize>>] {
        &self.routes
    }
}

impl MacPolicy for RelayAwareMac {
    fn name(&self) -> &'static str {
        "relay"
    }

    fn begin(&mut self, ctx: &MacContext<'_>, rng: &mut GaussianSource) {
        let n = ctx.net.node_count();
        if self.config.is_disabled() {
            // Fully dormant: no classification, no graph, and — the part
            // parity depends on — no RNG draw.
            self.covered = vec![true; n];
            self.routes = vec![None; n];
            return;
        }
        // One route seed per campaign, drawn from the trial stream so
        // routing varies across trials but never across thread counts.
        // Drawn for every enabled configuration (even max_hops == 1)
        // so sweeping the hop budget leaves the noise stream aligned.
        let route_seed = u64::from_le_bytes(rng.bytes(8).try_into().expect("eight bytes"));
        self.covered = self.config.coverage.classify(&ctx.net.scene);
        let graph = NeighborGraph::from_scene(&ctx.net.scene, self.config.tag_range_m);
        self.routes = select_routes(&graph, &self.covered, self.config.max_hops, route_seed);
    }

    fn schedule_frame(&mut self, frame: usize, ctx: &MacContext<'_>) -> FrameSchedule {
        let covered = &self.covered;
        let routes = &self.routes;
        hash_into_slots(ctx, frame, self.slot_seed, |idx| {
            covered[idx] || routes[idx].is_none()
        })
    }

    fn relay_frame(&mut self, frame: usize, ctx: &MacContext<'_>) -> Vec<RelayGrant> {
        self.routes
            .iter()
            .enumerate()
            .filter_map(|(idx, route)| {
                route.as_ref().map(|route| RelayGrant {
                    slot: ctx.plan.slot_for(idx, frame, self.slot_seed),
                    route: route.clone(),
                })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two arcs at the same azimuth spread: an inner (covered) ring and
    /// an outer ring `gap` of whose nodes sit past the coverage range.
    fn ringed_scene(inner: usize, outer: usize) -> Scene {
        let span = 60f64.to_radians();
        let mut scene = Scene::arc(inner, 4.0, span, 0.0);
        for k in 0..outer {
            scene = scene.with_node_at(8.0, Scene::arc_azimuth_rad(k, outer, span), 0.0);
        }
        scene
    }

    #[test]
    fn neighbor_graph_is_symmetric_and_sorted() {
        let scene = ringed_scene(4, 4);
        let g = NeighborGraph::from_scene(&scene, 4.5);
        assert_eq!(g.len(), 8);
        for i in 0..g.len() {
            assert!(g.neighbors(i).windows(2).all(|w| w[0] < w[1]));
            for &j in g.neighbors(i) {
                assert!(g.neighbors(j).contains(&i), "{i} <-> {j}");
            }
        }
        // Outer nodes reach inner nodes across the ~4 m radial spacing.
        assert!((4..8).all(|i| g.degree(i) > 0));
    }

    #[test]
    fn zero_range_graph_has_no_edges() {
        let g = NeighborGraph::from_scene(&ringed_scene(3, 3), 0.0);
        assert!((0..g.len()).all(|i| g.degree(i) == 0));
    }

    #[test]
    fn routes_reach_coverage_within_budget() {
        let scene = ringed_scene(4, 4);
        let covered: Vec<bool> = CoverageModel::with_range(6.0).classify(&scene);
        assert_eq!(&covered[..4], &[true; 4]);
        assert_eq!(&covered[4..], &[false; 4]);
        let g = NeighborGraph::from_scene(&scene, 4.5);
        let routes = select_routes(&g, &covered, 2, 0xDEAD);
        for (idx, route) in routes.iter().enumerate() {
            if idx < 4 {
                assert!(route.is_none(), "covered node {idx} routed");
                continue;
            }
            let route = route.as_ref().expect("outer ring is adjacent");
            assert_eq!(route[0], idx);
            assert!(covered[*route.last().unwrap()]);
            assert!(route.len() <= 2);
        }
    }

    #[test]
    fn hop_budget_of_one_routes_nothing() {
        let scene = ringed_scene(4, 4);
        let covered = CoverageModel::with_range(6.0).classify(&scene);
        let g = NeighborGraph::from_scene(&scene, 4.5);
        let routes = select_routes(&g, &covered, 1, 0xDEAD);
        assert!(routes.iter().all(|r| r.is_none()));
    }

    #[test]
    fn isolated_gap_node_stays_routeless() {
        let scene = ringed_scene(4, 4).with_node_at(20.0, 0.0, 0.0);
        let covered = CoverageModel::with_range(6.0).classify(&scene);
        let g = NeighborGraph::from_scene(&scene, 4.5);
        let routes = select_routes(&g, &covered, 8, 0xDEAD);
        assert_eq!(g.degree(8), 0);
        assert!(routes[8].is_none());
    }

    #[test]
    fn route_selection_is_a_pure_function_of_the_seed() {
        let scene = ringed_scene(6, 6);
        let covered = CoverageModel::with_range(6.0).classify(&scene);
        let g = NeighborGraph::from_scene(&scene, 5.0);
        let a = select_routes(&g, &covered, 3, 7);
        let b = select_routes(&g, &covered, 3, 7);
        assert_eq!(a, b);
        // A different seed is allowed to pick different equal-distance
        // parents; routes must still exist and stay shortest.
        let c = select_routes(&g, &covered, 3, 8);
        for (x, y) in a.iter().zip(&c) {
            assert_eq!(x.is_some(), y.is_some());
            if let (Some(x), Some(y)) = (x, y) {
                assert_eq!(x.len(), y.len(), "seeds must not change path length");
            }
        }
    }

    #[test]
    fn gap_reasons_partition_by_reachability_and_budget() {
        let scene = ringed_scene(4, 4).with_node_at(20.0, 0.0, 0.0);
        let covered = CoverageModel::with_range(6.0).classify(&scene);
        let cfg = RelayConfig {
            coverage: CoverageModel::with_range(6.0),
            max_hops: 1,
            tag_range_m: 4.5,
            hop_snr_penalty_db: 0.0,
        };
        // Direct-only budget: the outer ring is reachable but over
        // budget; the far node is unreachable outright.
        let reasons = classify_gap_reasons(&scene, &covered, &cfg);
        assert!(reasons[..4].iter().all(|r| r.is_none()), "covered nodes");
        assert!(reasons[4..8]
            .iter()
            .all(|r| *r == Some(DropReason::HopBudgetExhausted)));
        assert_eq!(reasons[8], Some(DropReason::NoRelayRoute));
        // A two-transmission budget makes the outer ring routable — any
        // remaining direct-uplink loss there is a missing grant, not a
        // budget violation.
        let reasons = classify_gap_reasons(&scene, &covered, &RelayConfig { max_hops: 2, ..cfg });
        assert!(reasons[4..8]
            .iter()
            .all(|r| *r == Some(DropReason::NoRelayRoute)));
    }

    #[test]
    fn disabled_config_is_dormant() {
        let cfg = RelayConfig::disabled();
        assert!(cfg.is_disabled());
        assert_eq!(cfg, RelayConfig::default());
        // Bounded coverage enables it even at the direct-only budget —
        // coverage gating alone changes delivery.
        let gapped = RelayConfig {
            coverage: CoverageModel::with_range(6.0),
            ..RelayConfig::disabled()
        };
        assert!(!gapped.is_disabled());
    }
}
