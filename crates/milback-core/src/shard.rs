//! City-scale sharded campaigns: spatial cells, parallel per-cell engines,
//! streaming aggregation.
//!
//! The room-scale network layer serves every node from one sector scene and
//! one AP actor; campaigns over 10⁴–10⁶ nodes need neither one shared
//! engine nor O(nodes) report memory. This module shards a scene into
//! spatially contiguous **cells** — each cell a self-contained [`Scene`]
//! with its own AP — and runs one deterministic [`Engine`](crate::Engine)
//! campaign per cell, in parallel over
//! [`parallel::for_each_chunk_with`], folding each cell into a streaming
//! [`CampaignAggregate`] and merging the per-cell aggregates **in cell
//! index order**.
//!
//! # Determinism
//!
//! Three ingredients make a sharded campaign bit-identical at any
//! `MILBACK_THREADS` setting:
//!
//! 1. **Per-cell RNG streams.** Cell `i` draws from
//!    `GaussianSource::new(cell_seed(campaign_seed, i))`, the same
//!    SplitMix64 golden-ratio mix the trial runner uses for per-trial
//!    streams, so a cell's noise is a pure function of the campaign seed
//!    and its index — never of scheduling.
//! 2. **One result slot per cell.** Workers write only their own cell's
//!    slot; the chunk→worker assignment cannot reorder anything.
//! 3. **Serial in-order merge.** Per-cell aggregates are folded into the
//!    campaign total in cell index order on the calling thread, so even
//!    the non-associative f64 sums see one fixed fold order.
//!
//! `cell_seed(seed, 0) == seed`, so a 1-cell sharded campaign reproduces a
//! plain [`Network::run_mac`] over the same scene bit-for-bit — the parity
//! suite proves it by `==` and `to_bits`.
//!
//! # Memory
//!
//! The sharded aggregate path never materializes a per-node report `Vec`:
//! peak report memory is O(cells + histogram buckets), with the per-cell
//! ledger vectors (O(largest cell)) recycled per worker through
//! [`CampaignScratch`].

use crate::error::{MilbackError, Result};
use crate::network::{CampaignAggregate, CampaignScratch, MacPolicy, Network, SlottedRunReport};
use crate::pipeline::ApServiceConfig;
use crate::protocol::SlotPlan;
use crate::relay::RelayConfig;
use crate::scene::Scene;
use mmwave_sigproc::parallel;
use mmwave_sigproc::random::GaussianSource;

/// The RNG seed for one cell's campaign stream: the campaign seed XOR'd
/// with the cell index spread by the SplitMix64 golden-ratio increment —
/// the same mixing discipline the trial runner applies per trial, so cell
/// streams decorrelate the same way trial streams do. Cell 0's seed *is*
/// the campaign seed, which is what makes 1-cell parity exact.
pub fn cell_seed(campaign_seed: u64, cell_idx: usize) -> u64 {
    campaign_seed ^ (cell_idx as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Partitions a scene into `n_cells` spatially contiguous cells: contiguous
/// runs of the scene's node order (balanced to within one node), each cell
/// a self-contained scene with its own AP frontend and the shared clutter.
/// Scenes built in azimuth order (e.g. a sector sweep) therefore shard into
/// azimuth-contiguous spatial cells.
///
/// `n_cells` is clamped to `[1, nodes]` so no cell is ever empty. With one
/// cell the partition is an identity clone of the scene — node order,
/// boresight, and clutter untouched — so a 1-cell sharded campaign is the
/// plain campaign.
///
/// A partition that fails to cover every node exactly once is a
/// [`MilbackError::Protocol`] — checked in release builds too, not just a
/// `debug_assert` (a malformed partition used to pass silently in release
/// and quietly drop nodes from the campaign).
pub fn partition_cells(scene: &Scene, n_cells: usize) -> Result<Vec<Scene>> {
    let cells = n_cells.clamp(1, scene.nodes.len().max(1));
    if cells <= 1 {
        return Ok(vec![scene.clone()]);
    }
    let n = scene.nodes.len();
    let base = n / cells;
    let rem = n % cells;
    let mut out = Vec::with_capacity(cells);
    let mut start = 0usize;
    for c in 0..cells {
        let len = base + usize::from(c < rem);
        out.push(Scene {
            ap: scene.ap,
            nodes: scene.nodes[start..start + len].to_vec(),
            clutter: scene.clutter.clone(),
        });
        start += len;
    }
    if start != n {
        return Err(MilbackError::Protocol(format!(
            "cell partition covered {start} of {n} nodes across {cells} cells"
        )));
    }
    Ok(out)
}

/// Runs `run_cell` over every cell of `net`'s scene, one result slot per
/// cell, fanned over `threads` workers with one [`CampaignScratch`] per
/// worker. Results come back in cell index order; the first cell error (in
/// cell order) aborts the campaign.
fn run_cells<T, F>(net: &Network, n_cells: usize, threads: usize, run_cell: F) -> Result<Vec<T>>
where
    T: Send,
    F: Fn(&mut CampaignScratch, usize, &Network) -> Result<T> + Sync,
{
    let mut slots: Vec<(Network, Option<Result<T>>)> = partition_cells(&net.scene, n_cells)?
        .into_iter()
        .map(|scene| {
            (
                Network {
                    config: net.config.clone(),
                    scene,
                },
                None,
            )
        })
        .collect();
    parallel::for_each_chunk_with(
        &mut slots,
        1,
        threads,
        CampaignScratch::new,
        |scratch, idx, chunk| {
            let (cell_net, out) = &mut chunk[0];
            *out = Some(run_cell(scratch, idx, cell_net));
        },
    );
    slots
        .into_iter()
        .enumerate()
        .map(|(idx, (_, out))| {
            out.unwrap_or_else(|| Err(MilbackError::Engine(format!("cell {idx} was never run"))))
        })
        .collect()
}

impl Network {
    /// Runs a sharded MAC campaign: the scene splits into `n_cells` spatial
    /// cells ([`partition_cells`]), each cell runs its own deterministic
    /// engine campaign under a policy built by
    /// `policy_for_cell(cell_idx, cell_seed)` with its own
    /// [`cell_seed`]-derived RNG stream, cells fan out over `threads`
    /// workers, and the per-cell streaming aggregates merge in cell index
    /// order. The result is bit-identical at any thread count, and peak
    /// report memory is O(cells + buckets) — no per-node `Vec` exists on
    /// this path.
    #[allow(clippy::too_many_arguments)]
    pub fn run_sharded_mac<F>(
        &self,
        n_cells: usize,
        threads: usize,
        campaign_seed: u64,
        frames: usize,
        payload: &[u8],
        plan: &SlotPlan,
        sdm_threshold_db: f64,
        policy_for_cell: F,
    ) -> Result<CampaignAggregate>
    where
        F: Fn(usize, u64) -> Box<dyn MacPolicy> + Sync,
    {
        self.run_sharded_mac_service(
            n_cells,
            threads,
            campaign_seed,
            frames,
            payload,
            plan,
            sdm_threshold_db,
            &ApServiceConfig::instantaneous(),
            policy_for_cell,
        )
    }

    /// [`run_sharded_mac`](Self::run_sharded_mac) under an explicit
    /// [`ApServiceConfig`]: every cell's AP runs its own staged
    /// **Capture → Plan → Transmit** pipeline (stage queues are per-cell —
    /// cells are independent APs), and the per-cell
    /// [`ApServiceStats`](crate::pipeline::ApServiceStats) ledgers fold
    /// into the streaming aggregate's `service` counters in cell index
    /// order, exact u64 adds all the way up.
    #[allow(clippy::too_many_arguments)]
    pub fn run_sharded_mac_service<F>(
        &self,
        n_cells: usize,
        threads: usize,
        campaign_seed: u64,
        frames: usize,
        payload: &[u8],
        plan: &SlotPlan,
        sdm_threshold_db: f64,
        service: &ApServiceConfig,
        policy_for_cell: F,
    ) -> Result<CampaignAggregate>
    where
        F: Fn(usize, u64) -> Box<dyn MacPolicy> + Sync,
    {
        self.run_sharded_mac_relay(
            n_cells,
            threads,
            campaign_seed,
            frames,
            payload,
            plan,
            sdm_threshold_db,
            service,
            &RelayConfig::disabled(),
            policy_for_cell,
        )
    }

    /// [`run_sharded_mac_service`](Self::run_sharded_mac_service) with
    /// multi-hop tag-to-tag relaying: every cell classifies its nodes
    /// against `relay.coverage` and runs relay chains for its gap nodes
    /// (routes are per-cell — relays never cross a cell boundary, because
    /// cells are independent engines). A
    /// [`RelayConfig::disabled`] config reproduces
    /// [`run_sharded_mac_service`](Self::run_sharded_mac_service)
    /// bit-for-bit; the parity suite proves it.
    #[allow(clippy::too_many_arguments)]
    pub fn run_sharded_mac_relay<F>(
        &self,
        n_cells: usize,
        threads: usize,
        campaign_seed: u64,
        frames: usize,
        payload: &[u8],
        plan: &SlotPlan,
        sdm_threshold_db: f64,
        service: &ApServiceConfig,
        relay: &RelayConfig,
        policy_for_cell: F,
    ) -> Result<CampaignAggregate>
    where
        F: Fn(usize, u64) -> Box<dyn MacPolicy> + Sync,
    {
        let per_cell = run_cells(self, n_cells, threads, |scratch, idx, cell| {
            let seed = cell_seed(campaign_seed, idx);
            let mut rng = GaussianSource::new(seed);
            let mut agg = CampaignAggregate::new();
            cell.run_mac_streaming_relay_service(
                policy_for_cell(idx, seed),
                frames,
                payload,
                plan,
                sdm_threshold_db,
                &mut rng,
                service,
                relay,
                scratch,
                &mut agg,
            )?;
            // Per-cell conservation gate: every packet a cell offered must
            // have resolved to a delivery or an attributed drop before the
            // cell folds into the campaign total. Trivially satisfied (all
            // zeros) in a telemetry-off build.
            agg.lifecycle.audit()?;
            Ok(agg)
        })?;
        let mut total = CampaignAggregate::new();
        for cell_agg in &per_cell {
            total.merge_from(cell_agg);
        }
        Ok(total)
    }

    /// The report-materializing counterpart of
    /// [`run_sharded_mac`](Self::run_sharded_mac): every cell runs the same
    /// seeding/partition/scheduling, but returns its full per-node
    /// [`SlottedRunReport`] (node indices cell-local). O(nodes) memory —
    /// for tests and room-scale use; the parity suite uses it to prove a
    /// 1-cell sharded run reproduces [`Network::run_mac`] bit-for-bit and
    /// that [`CampaignAggregate::from_report`] folds to the exact streaming
    /// aggregate.
    #[allow(clippy::too_many_arguments)]
    pub fn run_sharded_mac_reports<F>(
        &self,
        n_cells: usize,
        threads: usize,
        campaign_seed: u64,
        frames: usize,
        payload: &[u8],
        plan: &SlotPlan,
        sdm_threshold_db: f64,
        policy_for_cell: F,
    ) -> Result<Vec<SlottedRunReport>>
    where
        F: Fn(usize, u64) -> Box<dyn MacPolicy> + Sync,
    {
        run_cells(self, n_cells, threads, |_scratch, idx, cell| {
            let seed = cell_seed(campaign_seed, idx);
            let mut rng = GaussianSource::new(seed);
            cell.run_mac(
                policy_for_cell(idx, seed),
                frames,
                payload,
                plan,
                sdm_threshold_db,
                &mut rng,
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemConfig;
    use crate::network::SlottedAloha;
    use crate::protocol::Packet;

    /// A nine-node ±40° arc at 4 m — node order is azimuth order, so the
    /// partition's contiguous runs are spatial cells. Built on the shared
    /// guarded constructor, so `n == 1` stays finite.
    fn arc_scene(n: usize) -> Scene {
        Scene::arc(n, 4.0, 80f64.to_radians(), 12f64.to_radians())
    }

    fn plan_for(net: &Network, slots: usize, payload: &[u8]) -> SlotPlan {
        SlotPlan::for_packet(
            slots,
            &Packet::uplink(payload.to_vec()),
            &net.config.fmcw,
            net.config.uplink_symbol_rate_hz,
            5e-6,
        )
        .unwrap()
    }

    #[test]
    fn cell_zero_seed_is_the_campaign_seed() {
        assert_eq!(cell_seed(0xFACE, 0), 0xFACE);
        let seeds: Vec<u64> = (0..32).map(|i| cell_seed(0xFACE, i)).collect();
        let mut unique = seeds.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), 32, "cell seed collision");
    }

    #[test]
    fn partition_covers_every_node_in_order() {
        let scene = arc_scene(10);
        for cells in [1usize, 2, 3, 4, 7, 10, 25] {
            let parts = partition_cells(&scene, cells).unwrap();
            assert_eq!(parts.len(), cells.clamp(1, 10));
            let flattened: Vec<_> = parts.iter().flat_map(|c| c.nodes.iter()).collect();
            assert_eq!(flattened.len(), 10, "{cells} cells");
            for (a, b) in flattened.iter().zip(&scene.nodes) {
                assert_eq!(**a, *b);
            }
            // Balanced to within one node, nothing empty.
            let sizes: Vec<usize> = parts.iter().map(|c| c.nodes.len()).collect();
            let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
            assert!(*min >= 1 && max - min <= 1, "unbalanced: {sizes:?}");
            for p in &parts {
                assert_eq!(p.clutter.len(), scene.clutter.len());
            }
        }
    }

    #[test]
    fn partition_coverage_is_checked_in_release() {
        // Regression for the old `debug_assert_eq!` coverage check: the
        // exactly-once property is now a typed-`Result` invariant, so it
        // holds (and would surface as an error, not silence) in release
        // builds too. Sweep enough shapes to hit every base/rem split.
        for n in [1usize, 2, 3, 5, 9, 16, 31] {
            let scene = arc_scene(n);
            for cells in 1..=n + 2 {
                let parts = partition_cells(&scene, cells)
                    .unwrap_or_else(|e| panic!("{n} nodes / {cells} cells: {e}"));
                let covered: usize = parts.iter().map(|c| c.nodes.len()).sum();
                assert_eq!(covered, n, "{n} nodes / {cells} cells");
            }
        }
    }

    #[test]
    fn one_cell_partition_is_an_identity_clone() {
        let scene = arc_scene(5);
        let parts = partition_cells(&scene, 1).unwrap();
        assert_eq!(parts.len(), 1);
        assert_eq!(parts[0].nodes, scene.nodes);
        assert_eq!(
            parts[0].ap.boresight_rad.to_bits(),
            scene.ap.boresight_rad.to_bits()
        );
    }

    #[test]
    fn one_cell_sharded_run_reproduces_run_mac_bit_for_bit() {
        let net = Network::new(SystemConfig::milback_default(), arc_scene(5)).unwrap();
        let payload = [0x42u8; 8];
        let plan = plan_for(&net, 4, &payload);
        let seed = 0xC17Fu64;
        let reports = net
            .run_sharded_mac_reports(1, 4, seed, 5, &payload, &plan, 20.0, |_, s| {
                Box::new(SlottedAloha::new(s))
            })
            .unwrap();
        assert_eq!(reports.len(), 1);
        let mut rng = GaussianSource::new(seed);
        let plain = net
            .run_mac(
                Box::new(SlottedAloha::new(seed)),
                5,
                &payload,
                &plan,
                20.0,
                &mut rng,
            )
            .unwrap();
        assert_eq!(reports[0], plain);
        for (a, b) in reports[0].nodes.iter().zip(&plain.nodes) {
            assert_eq!(a.energy_j.to_bits(), b.energy_j.to_bits());
            assert_eq!(
                a.mean_snr_db.map(f64::to_bits),
                b.mean_snr_db.map(f64::to_bits)
            );
        }
    }

    #[test]
    fn sharded_aggregate_is_thread_count_invariant() {
        let net = Network::new(SystemConfig::milback_default(), arc_scene(9)).unwrap();
        let payload = [0x42u8; 8];
        let plan = plan_for(&net, 4, &payload);
        let run = |threads: usize| {
            net.run_sharded_mac(3, threads, 0xBEEF, 4, &payload, &plan, 20.0, |_, s| {
                Box::new(SlottedAloha::new(s))
            })
            .unwrap()
        };
        let baseline = run(1);
        assert_eq!(baseline.cells, 3);
        assert_eq!(baseline.nodes, 9);
        for threads in [2usize, 4, 8] {
            let agg = run(threads);
            assert_eq!(agg, baseline, "{threads} threads");
            assert_eq!(agg.energy_j.to_bits(), baseline.energy_j.to_bits());
            assert_eq!(agg.snr_sum_db.to_bits(), baseline.snr_sum_db.to_bits());
        }
    }

    #[test]
    fn streaming_aggregate_matches_report_fold_exactly() {
        let net = Network::new(SystemConfig::milback_default(), arc_scene(8)).unwrap();
        let payload = [0x42u8; 8];
        let plan = plan_for(&net, 4, &payload);
        let factory = |_: usize, s: u64| Box::new(SlottedAloha::new(s)) as Box<dyn MacPolicy>;
        let streamed = net
            .run_sharded_mac(4, 2, 0xA66, 3, &payload, &plan, 20.0, factory)
            .unwrap();
        let reports = net
            .run_sharded_mac_reports(4, 2, 0xA66, 3, &payload, &plan, 20.0, factory)
            .unwrap();
        let mut folded = CampaignAggregate::new();
        for r in &reports {
            folded.merge_from(&CampaignAggregate::from_report(r));
        }
        assert_eq!(streamed, folded);
        assert_eq!(streamed.energy_j.to_bits(), folded.energy_j.to_bits());
        assert_eq!(streamed.snr_sum_db.to_bits(), folded.snr_sum_db.to_bits());
    }

    #[test]
    fn sharded_service_ledger_folds_and_is_thread_invariant() {
        // A backlogged Defer pipeline (capacity 0, capture slower than the
        // slot width) serves every grant late but in FIFO order, so the
        // trial RNG stream is consumed exactly as in the instantaneous
        // campaign: the node ledgers match bit-for-bit, only the service
        // counters differ — and the whole aggregate is thread invariant.
        let net = Network::new(SystemConfig::milback_default(), arc_scene(9)).unwrap();
        let payload = [0x42u8; 8];
        let plan = plan_for(&net, 4, &payload);
        let service = crate::pipeline::ApServiceConfig::instantaneous()
            .with_stage_latencies(3 * plan.slot_ps, 0, 0)
            .with_queue(0, crate::pipeline::OverflowPolicy::Defer);
        let run = |threads: usize| {
            net.run_sharded_mac_service(
                3,
                threads,
                0xBEEF,
                4,
                &payload,
                &plan,
                20.0,
                &service,
                |_, s| Box::new(SlottedAloha::new(s)),
            )
            .unwrap()
        };
        let deferred = run(1);
        assert!(deferred.service.offered > 0);
        assert_eq!(deferred.service.served, deferred.service.offered);
        assert!(deferred.service.deferred > 0, "capacity 0 must spill");
        assert_eq!(deferred.service.dropped, 0);
        for threads in [2usize, 4, 8] {
            assert_eq!(run(threads), deferred, "{threads} threads");
        }
        let instant = net
            .run_sharded_mac(3, 1, 0xBEEF, 4, &payload, &plan, 20.0, |_, s| {
                Box::new(SlottedAloha::new(s))
            })
            .unwrap();
        assert_eq!(instant.service.deferred, 0);
        assert_eq!(deferred.attempts, instant.attempts);
        assert_eq!(deferred.delivered, instant.delivered);
        assert_eq!(deferred.collisions, instant.collisions);
        assert_eq!(deferred.energy_j.to_bits(), instant.energy_j.to_bits());
        assert_eq!(deferred.snr_sum_db.to_bits(), instant.snr_sum_db.to_bits());
    }

    #[test]
    fn aggregate_footprint_is_node_count_independent() {
        let payload = [0x42u8; 8];
        let run = |n: usize| {
            let net = Network::new(SystemConfig::milback_default(), arc_scene(n)).unwrap();
            let plan = plan_for(&net, 4, &payload);
            net.run_sharded_mac(2, 2, 7, 2, &payload, &plan, 20.0, |_, s| {
                Box::new(SlottedAloha::new(s))
            })
            .unwrap()
        };
        let small = run(4);
        let big = run(16);
        assert_eq!(small.bucket_footprint(), big.bucket_footprint());
        assert_eq!(big.nodes, 16, "the campaign still covered every node");
    }

    #[test]
    fn sharded_run_rejects_oversized_packets_per_cell() {
        let net = Network::new(SystemConfig::milback_default(), arc_scene(4)).unwrap();
        let small = [0u8; 2];
        let plan = plan_for(&net, 2, &small);
        let err = net.run_sharded_mac(2, 1, 1, 1, &[0u8; 4096], &plan, 20.0, |_, s| {
            Box::new(SlottedAloha::new(s))
        });
        assert!(err.is_err());
    }
}
