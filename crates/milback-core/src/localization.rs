//! The joint localization / orientation pipeline (§5, §9.2–9.3): scene →
//! five-chirp two-channel captures → background subtraction → range, angle
//! and orientation estimates.
//!
//! # Impairment model
//!
//! A textbook-clean simulation of this pipeline produces millimeter range
//! errors — far better than the centimeters the paper measures — because
//! the prototype's errors are dominated by systematics, not thermal noise.
//! The physical mechanisms modeled explicitly (all ablatable via
//! [`Impairments`]):
//!
//! * **Ground-bounce multipath** — the floor bounce's excess path `≈ h²/r`
//!   shrinks below the 5 cm range cell at long range and pulls the
//!   interpolated peak; its amplitude passes the AP horn off-axis once, so
//!   short range is protected and long range is not (the Fig 12a growth).
//! * **Clutter flicker** — the environment echo is not perfectly static
//!   chirp-to-chirp (generator phase noise, mechanical vibration), so
//!   background subtraction leaves a residual proportional to the clutter
//!   strength.
//! * **Sweep-stitch mismatch** — footnote 2: the 3 GHz sweep is two 2 GHz
//!   generator sweeps patched in processing; the patch calibration error
//!   is a constant complex factor on the upper sub-band per capture.
//! * **Mirror leakage** — the FSA ground plane's specular reflection varies
//!   slightly with the switch state and originates a few cm from the
//!   antenna phase center, surviving subtraction and biasing estimates
//!   near normal incidence (the Fig 13b error bump).
//! * **RX chain phase mismatch** — per-trial phase error between the two
//!   receive chains, the dominant AoA error (Fig 12b).
//! * **Lateral multipath at the node** — desk/shelf scatter ripples the
//!   received-power envelope per port (the Fig 13a error).
//! * **Placement error** — the laser-meter/protractor ground-truth floor.

use crate::config::SystemConfig;
use crate::error::{MilbackError, Result};
use crate::scene::Scene;
use milback_ap::aoa::AoaEstimator;
use milback_ap::fmcw::{FmcwProcessor, FmcwScratch};
use milback_ap::orientation::ApOrientationEstimator;
use milback_node::orientation::OrientationEstimator;
use mmwave_rf::antenna::fsa::{FsaGainEval, FsaPort};
use mmwave_rf::antenna::Antenna;
use mmwave_rf::channel::{
    backscatter_amplitude_sqrt_w, clutter_amplitude_sqrt_w, received_power_w,
    synthesize_beat_with_threads, Echo, Vec2,
};
use mmwave_sigproc::complex::Complex;
use mmwave_sigproc::parallel;
use mmwave_sigproc::random::GaussianSource;
use mmwave_sigproc::units::{db_to_lin, dbm_to_watts, noise_power_watts};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Systematic-impairment knobs (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Impairments {
    /// Fractional chirp-to-chirp amplitude jitter of clutter echoes.
    pub clutter_flicker: f64,
    /// RMS phase step (radians) at the 2×2 GHz sweep-stitch junction.
    pub stitch_phase_rad: f64,
    /// Ground-truth placement/measurement error (laser + protractor), m.
    pub placement_error_m: f64,
    /// Antenna height above the floor, m — sets the ground-bounce
    /// multipath geometry. The bounce's excess path `≈ h²/r` shrinks with
    /// distance, so at long range the bounce becomes *unresolvable* from
    /// the direct echo and pulls the interpolated range peak: this is why
    /// ranging error grows with distance (Fig 12a) even though the echo is
    /// still well above the noise floor.
    pub bounce_height_m: f64,
    /// Per-trial height uncertainty, m (randomizes the bounce phase).
    pub bounce_height_jitter_m: f64,
    /// Grazing-angle constant for the floor reflection magnitude:
    /// `|ρ| = exp(−θ_grazing/θ₀)` — stronger as the geometry flattens.
    pub bounce_theta0_rad: f64,
    /// Per-trial phase mismatch between the two RX chains (cables,
    /// connectors, mixer LO paths), radians RMS — the dominant AoA error
    /// source for a connectorized 28 GHz lab setup (Fig 12b).
    pub rx_phase_jitter_rad: f64,
    /// Amplitude of lateral multipath (desk/shelf scatter) reaching the
    /// node, relative to the direct path — ripples the received-power
    /// envelope across the sweep and is the dominant node-side orientation
    /// error (Fig 13a).
    pub node_multipath_amp: f64,
    /// Excess-path range (min, max) of that lateral multipath, m.
    pub node_multipath_delta_m: (f64, f64),
}

impl Impairments {
    /// Calibrated so the Fig 12a/12b error magnitudes reproduce.
    pub fn milback_default() -> Self {
        Self {
            clutter_flicker: 5e-4,
            stitch_phase_rad: 0.35,
            placement_error_m: 0.012,
            bounce_height_m: 0.4,
            bounce_height_jitter_m: 0.05,
            bounce_theta0_rad: 0.6,
            rx_phase_jitter_rad: 0.08,
            node_multipath_amp: 0.13,
            node_multipath_delta_m: (0.05, 0.5),
        }
    }

    /// No impairments — the textbook-clean ablation.
    pub fn none() -> Self {
        Self {
            clutter_flicker: 0.0,
            stitch_phase_rad: 0.0,
            placement_error_m: 0.0,
            bounce_height_m: 1.0,
            bounce_height_jitter_m: 0.0,
            bounce_theta0_rad: 0.0, // ρ = 0: no bounce energy
            rx_phase_jitter_rad: 0.0,
            node_multipath_amp: 0.0,
            node_multipath_delta_m: (0.05, 0.5),
        }
    }

    /// Floor-bounce amplitude relative to the direct echo at range `r`.
    pub fn bounce_relative_amplitude(&self, r: f64) -> f64 {
        if self.bounce_theta0_rad <= 0.0 {
            return 0.0;
        }
        let grazing = (2.0 * self.bounce_height_m / r).atan();
        (-grazing / self.bounce_theta0_rad).exp()
    }

    /// One-way excess path of the bounce at range `r` (AP→node direct,
    /// node→AP via floor): `≈ h²/r`.
    pub fn bounce_excess_one_way_m(&self, r: f64, h: f64) -> f64 {
        ((r / 2.0).hypot(h) * 2.0 - r) / 2.0
    }
}

/// A complete localization fix.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LocationFix {
    /// Estimated range, meters.
    pub range_m: f64,
    /// Estimated azimuth from AP boresight, radians.
    pub angle_rad: f64,
    /// The implied 2-D position in AP coordinates.
    pub position: Vec2,
    /// Detection confidence (peak-to-floor), dB.
    pub confidence_db: f64,
}

/// Which ports toggle during a capture.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ToggleSelection {
    /// Port A toggles reflective/absorptive chirp-to-chirp.
    pub a: bool,
    /// Port B toggles.
    pub b: bool,
}

/// The end-to-end localization pipeline for one scene.
#[derive(Debug, Clone)]
pub struct LocalizationPipeline {
    /// System configuration.
    pub config: SystemConfig,
    /// Physical scene.
    pub scene: Scene,
    /// Impairment model.
    pub impairments: Impairments,
    /// The FMCW processor (Field-2 chirp at the digitizer rate).
    pub processor: FmcwProcessor,
    /// The AoA estimator.
    pub aoa: AoaEstimator,
    /// Memoized FSA gain evaluator for the node's dual-port antenna,
    /// shared across captures and trials (bit-exact with the direct path).
    /// Rebuilt by [`LocalizationPipeline::new`]; if `config.node.fsa` is
    /// mutated afterwards the evaluator must be refreshed too.
    pub gain_eval: FsaGainEval,
    /// Worker budget for beat-signal synthesis inside [`Self::capture`].
    /// Defaults to [`parallel::max_threads`]; trial-parallel experiment
    /// runners set this to 1 so trials are the only scaling axis (results
    /// are bit-identical either way).
    pub beat_threads: usize,
}

impl LocalizationPipeline {
    /// Builds the pipeline with the paper's processing parameters.
    pub fn new(config: SystemConfig, scene: Scene) -> Result<Self> {
        config.validate()?;
        if scene.nodes.is_empty() {
            return Err(MilbackError::Config("scene has no nodes".into()));
        }
        let processor =
            FmcwProcessor::new(config.fmcw.field2_chirp(), config.ap.rx1.digitizer_rate_hz);
        let aoa = AoaEstimator::milback_default();
        let gain_eval = FsaGainEval::for_dual(&config.node.fsa);
        Ok(Self {
            config,
            scene,
            impairments: Impairments::milback_default(),
            processor,
            aoa,
            gain_eval,
            beat_threads: parallel::max_threads(),
        })
    }

    /// Replaces the impairment model (for ablations).
    pub fn with_impairments(mut self, imp: Impairments) -> Self {
        self.impairments = imp;
        self
    }

    /// Sets the worker budget for beat synthesis (see
    /// [`LocalizationPipeline::beat_threads`]).
    pub fn with_beat_threads(mut self, threads: usize) -> Self {
        self.beat_threads = threads.max(1);
        self
    }

    /// Synthesizes `n_chirps` Field-2 captures on both RX channels while
    /// the node toggles the selected ports chirp-to-chirp.
    pub fn capture(
        &self,
        n_chirps: usize,
        toggles: ToggleSelection,
        rng: &mut GaussianSource,
    ) -> (Vec<Vec<Complex>>, Vec<Vec<Complex>>) {
        let gt = self.scene.ground_truth(0);
        let psi = gt.incidence_rad;
        let chirp = self.processor.chirp;
        let fs = self.processor.sample_rate_hz;
        let node = &self.config.node;
        let impl_amp = db_to_lin(-self.config.ap.rx1.chain.implementation_loss_db).sqrt();
        let tx_w = dbm_to_watts(self.config.ap.tx.port_power_dbm());
        let horn = mmwave_rf::antenna::Horn::miwave_20dbi();
        let g_ap = db_to_lin(horn.gain_dbi(chirp.center_hz(), gt.azimuth_rad));
        // Per-port reflection amplitudes in each state.
        let gamma_r =
            node.reflection_amplitude(FsaPort::A, milback_node::mode::PortMode::Reflective);
        let gamma_a =
            node.reflection_amplitude(FsaPort::A, milback_node::mode::PortMode::Absorptive);
        // AoA phase for the second antenna, with the per-trial inter-chain
        // phase mismatch folded in.
        let aoa_phase = self.aoa.expected_phase_rad(gt.azimuth_rad)
            + rng.sample(self.impairments.rx_phase_jitter_rad);
        // Noise: input-referred thermal over the digitizer Nyquist band.
        let noise_w = noise_power_watts(fs / 2.0, self.config.ap.rx1.chain.noise_figure_db());
        // Ground-bounce geometry for this trial: the height jitter
        // randomizes the bounce's carrier phase (a millimeter of geometry
        // is a full cycle at 28 GHz).
        let bounce_h =
            self.impairments.bounce_height_m + rng.sample(self.impairments.bounce_height_jitter_m);
        let bounce_excess = self
            .impairments
            .bounce_excess_one_way_m(gt.range_m, bounce_h);
        // The bounced leg leaves/enters the AP horn at the grazing
        // elevation angle, paying the horn's off-axis rolloff once — which
        // is what suppresses the bounce at short range (steep geometry) and
        // lets it through at long range (flat geometry).
        let bounce_rel = {
            let grazing = (2.0 * self.impairments.bounce_height_m / gt.range_m).atan();
            let horn_for_elevation = mmwave_rf::antenna::Horn::miwave_20dbi();
            let off_axis_db =
                horn_for_elevation.gain_dbi(28e9, grazing) - horn_for_elevation.gain_dbi(28e9, 0.0);
            self.impairments.bounce_relative_amplitude(gt.range_m) * db_to_lin(off_axis_db).sqrt()
        };
        let bounce_phase = Complex::cis(rng.uniform(-std::f64::consts::PI, std::f64::consts::PI));
        let bounce2_phase = Complex::cis(rng.uniform(-std::f64::consts::PI, std::f64::consts::PI));
        // Lateral multipath (desk/shelf scatter) also rides on the
        // backscatter path, rippling the node echo across the sweep — the
        // baseline AP-side orientation error away from normal incidence.
        let mp_amp = self.impairments.node_multipath_amp;
        let (mp_lo, mp_hi) = self.impairments.node_multipath_delta_m;
        let mp_delta = rng.uniform(mp_lo, mp_hi);
        let mp_phi = rng.uniform(-std::f64::consts::PI, std::f64::consts::PI);

        // Sub-band patching mismatch (footnote 2): the 3 GHz sweep is two
        // 2 GHz generator sweeps whose results are patched in processing;
        // the patch calibration error is a constant complex factor on the
        // upper sub-band for the whole capture (it cancels in background
        // subtraction but distorts the node echo's spectrum slightly).
        let stitch = Complex::cis(rng.sample(self.impairments.stitch_phase_rad));
        // Per-sample port gains over the beat grid, hoisted out of the echo
        // closures: every node-path echo queries the same
        // `(port, f_inst, psi)` triple at each sample of each chirp, so
        // evaluate each once and let the closures index by sample. The beat
        // synthesizer passes `t = sample_index / fs`, so `(t·fs).round()`
        // recovers the index and the lookup is bit-exact with the inline
        // gain calls it replaces.
        let n_samples = (chirp.duration_s * fs).round() as usize;
        let (ga_t, gb_t): (Arc<[f64]>, Arc<[f64]>) = {
            let freqs: Vec<f64> = (0..n_samples)
                .map(|i| chirp.instantaneous_freq(i as f64 / fs))
                .collect();
            let mut ga = vec![0.0; n_samples];
            let mut gb = vec![0.0; n_samples];
            // Cold one-shot grid: bypass the memo (`memoize = false`) — the
            // per-point lock/hash round-trip is the cost being removed here.
            self.gain_eval
                .gain_linear_freqs_into(FsaPort::A, &freqs, psi, &mut ga, false);
            self.gain_eval
                .gain_linear_freqs_into(FsaPort::B, &freqs, psi, &mut gb, false);
            (ga.into(), gb.into())
        };
        let mut rx1 = Vec::with_capacity(n_chirps);
        let mut rx2 = Vec::with_capacity(n_chirps);
        for k in 0..n_chirps {
            let reflective = k % 2 == 0;
            // A port either toggles chirp-to-chirp or parks *absorptive*
            // (§5.2a: "we put one port of the node's FSA in absorptive mode
            // and switch the other port").
            let ga_state = if !toggles.a || !reflective {
                gamma_a
            } else {
                gamma_r
            };
            let gb_state = if !toggles.b || !reflective {
                gamma_a
            } else {
                gamma_r
            };
            let flicker: Vec<f64> = self
                .scene
                .clutter
                .iter()
                .map(|_| 1.0 + rng.sample(self.impairments.clutter_flicker))
                .collect();
            let mirror_amp_base = clutter_amplitude_sqrt_w(
                tx_w,
                g_ap,
                g_ap,
                self.config.mirror.rcs_at(psi),
                chirp.center_hz(),
                gt.range_m,
            ) * impl_amp;
            let mirror_state = 1.0
                + if reflective {
                    self.config.mirror.switching_leakage
                } else {
                    0.0
                };

            // `is_rx2` selects the second antenna: every echo then carries
            // its own geometry-correct inter-antenna phase.
            let mk_echoes = |extra_phase: f64, is_rx2: bool| -> Vec<Echo<'_>> {
                let mut echoes: Vec<Echo<'_>> = Vec::new();
                // Clutter with flicker.
                for (c, &fl) in self.scene.clutter.iter().zip(&flicker) {
                    let d = self.scene.ap.position.distance_to(c.position);
                    let az = self.scene.ap.azimuth_to(c.position);
                    let g = db_to_lin(horn.gain_dbi(chirp.center_hz(), az));
                    let amp = clutter_amplitude_sqrt_w(tx_w, g, g, c.rcs_m2, chirp.center_hz(), d)
                        * impl_amp
                        * fl;
                    let clutter_phase = if is_rx2 {
                        self.aoa.expected_phase_rad(az)
                    } else {
                        0.0
                    };
                    echoes.push(Echo {
                        distance_m: d,
                        extra_phase_rad: clutter_phase,
                        amplitude: Box::new(move |_, _| Complex::real(amp)),
                    });
                }
                // Mirror reflection: angle-selective, offset a few cm
                // from the antenna phase center (see MirrorReflection).
                let m_amp = mirror_amp_base * mirror_state;
                echoes.push(Echo {
                    distance_m: gt.range_m + self.config.mirror.range_offset_m,
                    extra_phase_rad: extra_phase,
                    amplitude: Box::new(move |_, _| Complex::real(m_amp)),
                });
                // The node's FSA echo: frequency-selective via the port
                // gains, second sweep half carries the stitch phase.
                let fsa = node.fsa.design;
                let ga = ga_state;
                let gb = gb_state;
                let const_amp = backscatter_amplitude_sqrt_w(
                    tx_w,
                    g_ap,
                    g_ap,
                    1.0,
                    1.0,
                    chirp.center_hz(),
                    gt.range_m,
                ) * impl_amp;
                let (ta, tb) = (Arc::clone(&ga_t), Arc::clone(&gb_t));
                echoes.push(Echo {
                    distance_m: gt.range_m,
                    extra_phase_rad: extra_phase,
                    amplitude: Box::new(move |t, f| {
                        let i = (t * fs).round() as usize;
                        let g_a = ta[i];
                        let g_b = tb[i];
                        let ripple = 1.0
                            + 2.0
                                * mp_amp
                                * (2.0 * std::f64::consts::PI * f * mp_delta
                                    / mmwave_sigproc::units::SPEED_OF_LIGHT
                                    + mp_phi)
                                    .cos();
                        let a = const_amp * (g_a * ga + g_b * gb) * ripple.max(0.0);
                        if f > fsa.center_hz() {
                            Complex::real(a) * stitch
                        } else {
                            Complex::real(a)
                        }
                    }),
                });
                // Floor-bounce copy of the node echo: same modulation (it
                // *is* the node's signal via a longer path), ρ-scaled,
                // random carrier phase, at range + excess. At long range
                // the excess shrinks below the 5 cm resolution cell and
                // the bounce pulls the interpolated peak (Fig 12a).
                if bounce_rel > 0.0 {
                    let (ta, tb) = (Arc::clone(&ga_t), Arc::clone(&gb_t));
                    echoes.push(Echo {
                        distance_m: gt.range_m + bounce_excess,
                        extra_phase_rad: extra_phase,
                        amplitude: Box::new(move |t, _| {
                            let i = (t * fs).round() as usize;
                            let a = const_amp * bounce_rel * (ta[i] * ga + tb[i] * gb);
                            bounce_phase.scale(a)
                        }),
                    });
                    // Double bounce (floor on both legs): ρ², 2× excess.
                    let rel2 = bounce_rel * bounce_rel;
                    let (ta, tb) = (Arc::clone(&ga_t), Arc::clone(&gb_t));
                    echoes.push(Echo {
                        distance_m: gt.range_m + 2.0 * bounce_excess,
                        extra_phase_rad: extra_phase,
                        amplitude: Box::new(move |t, _| {
                            let i = (t * fs).round() as usize;
                            let a = const_amp * rel2 * (ta[i] * ga + tb[i] * gb);
                            bounce2_phase.scale(a)
                        }),
                    });
                }
                echoes
            };

            let echoes1 = mk_echoes(0.0, false);
            let echoes2 = mk_echoes(aoa_phase, true);
            let mut b1 = synthesize_beat_with_threads(&chirp, &echoes1, fs, self.beat_threads);
            let mut b2 = synthesize_beat_with_threads(&chirp, &echoes2, fs, self.beat_threads);
            rng.add_complex_noise(&mut b1, noise_w);
            rng.add_complex_noise(&mut b2, noise_w);
            rx1.push(b1);
            rx2.push(b2);
        }
        (rx1, rx2)
    }

    /// Runs a full localization fix (range + angle) from one five-chirp
    /// Field-2 capture, both ports toggling (§5.1).
    pub fn localize(&self, rng: &mut GaussianSource) -> Result<LocationFix> {
        let mut scratch = FmcwScratch::new();
        self.localize_with(rng, &mut scratch)
    }

    /// [`localize`](Self::localize) with a caller-provided FFT workspace:
    /// the five-chirp stack runs through the batched, allocation-free
    /// detector path ([`FmcwProcessor::detect_node_with`]), so trial
    /// runners can amortize one scratch across a whole campaign.
    /// Bit-identical to [`localize`](Self::localize).
    pub fn localize_with(
        &self,
        rng: &mut GaussianSource,
        scratch: &mut FmcwScratch,
    ) -> Result<LocationFix> {
        let (rx1, rx2) = self.capture(5, ToggleSelection { a: true, b: true }, rng);
        let det = self.processor.detect_node_with(&rx1, scratch)?;
        let aoa = self.aoa.estimate(&self.processor, &rx1, &rx2)?;
        Ok(LocationFix {
            range_m: det.range_m,
            angle_rad: aoa.angle_rad,
            position: Vec2::from_polar(det.range_m, aoa.angle_rad),
            confidence_db: det.peak_to_floor_db,
        })
    }

    /// AP-side orientation estimate (§5.2a): port A toggles, port B parked
    /// absorptive.
    pub fn orient_at_ap(&self, rng: &mut GaussianSource) -> Result<f64> {
        let (rx1, _) = self.capture(5, ToggleSelection { a: true, b: false }, rng);
        let est = ApOrientationEstimator::milback_default();
        Ok(est
            .estimate(&self.processor, &rx1, &self.config.node.fsa.design)?
            .orientation_rad)
    }

    /// Node-side orientation estimate (§5.2b): Field-1 triangular chirp,
    /// both ports absorptive, node samples its detectors at the MCU ADC
    /// rate and measures the peak separation.
    pub fn orient_at_node(&self, rng: &mut GaussianSource) -> Result<f64> {
        let gt = self.scene.ground_truth(0);
        let psi = gt.incidence_rad;
        let chirp = self.config.fmcw.field1_chirp();
        let node = &self.config.node;
        let horn = mmwave_rf::antenna::Horn::miwave_20dbi();
        let tx_w = dbm_to_watts(self.config.ap.tx.port_power_dbm());
        // Lateral multipath (desk/shelf scatter) interferes with the
        // direct path at the node; because it arrives off the direct
        // bearing, it couples into each FSA port with an independent phase
        // — rippling the two received-power envelopes differently. This is
        // the dominant node-side orientation error (Fig 13a). The floor
        // bounce is negligible on the downlink at short range: its
        // departure ray leaves the AP horn tens of degrees off boresight.
        let mp_amp = self.impairments.node_multipath_amp;
        let (dlo, dhi) = self.impairments.node_multipath_delta_m;
        let mp_delta = rng.uniform(dlo, dhi);
        let phi_a = rng.uniform(-std::f64::consts::PI, std::f64::consts::PI);
        let phi_b = rng.uniform(-std::f64::consts::PI, std::f64::consts::PI);
        // Dense trace of per-port received power across the chirp.
        let dense_rate = self.config.trace_rate_hz / 8.0;
        let n = (chirp.duration_s * dense_rate).round() as usize;
        // Batched port coupling across the whole dense grid (a cold one-shot
        // sweep: bypass the memo, no per-sample lock/hash). `0.0 + pw·c` is
        // bit-identical to the single-tone `port_powers_for_tones_eval` sum
        // this replaces.
        let freqs: Vec<f64> = (0..n)
            .map(|i| chirp.instantaneous_freq(i as f64 / dense_rate))
            .collect();
        let mut ca = vec![0.0; n];
        let mut cb = vec![0.0; n];
        self.gain_eval
            .port_coupling_linear_freqs_into(&freqs, psi, &mut ca, &mut cb);
        let mut pa = Vec::with_capacity(n);
        let mut pb = Vec::with_capacity(n);
        for i in 0..n {
            let f = freqs[i];
            let g_ap = db_to_lin(horn.gain_dbi(f, gt.azimuth_rad));
            let incident = received_power_w(tx_w, g_ap, 1.0, f, gt.range_m);
            let k =
                2.0 * std::f64::consts::PI * f * mp_delta / mmwave_sigproc::units::SPEED_OF_LIGHT;
            let ripple_a = 1.0 + 2.0 * mp_amp * (k + phi_a).cos();
            let ripple_b = 1.0 + 2.0 * mp_amp * (k + phi_b).cos();
            pa.push(incident * ca[i] * ripple_a.max(0.0));
            pb.push(incident * cb[i] * ripple_b.max(0.0));
        }
        let (va, vb) = node.detector_traces(&pa, &pb, dense_rate, rng);
        let adc_a = node.mcu_sample(&va, dense_rate);
        let adc_b = node.mcu_sample(&vb, dense_rate);
        let est = OrientationEstimator::new(chirp, node.adc.sample_rate_hz);
        Ok(est.estimate(&adc_a, &adc_b, &node.fsa.design)?)
    }

    /// The ground truth *as measured by the experimenter* — true value plus
    /// the placement-error floor (laser meter / protractor, §9.2).
    pub fn measured_ground_truth_range(&self, rng: &mut GaussianSource) -> f64 {
        self.scene.ground_truth(0).range_m + rng.sample(self.impairments.placement_error_m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pipeline(distance: f64, orientation_deg: f64) -> LocalizationPipeline {
        LocalizationPipeline::new(
            SystemConfig::milback_default(),
            Scene::indoor(distance, orientation_deg.to_radians()),
        )
        .unwrap()
    }

    #[test]
    fn localizes_node_in_cluttered_room() {
        let p = pipeline(4.0, 12.0);
        let mut rng = GaussianSource::new(1);
        let fix = p.localize(&mut rng).unwrap();
        assert!((fix.range_m - 4.0).abs() < 0.10, "range {:.3}", fix.range_m);
        assert!(
            fix.angle_rad.abs().to_degrees() < 2.0,
            "angle {:.2}°",
            fix.angle_rad.to_degrees()
        );
        assert!(fix.confidence_db > 10.0);
    }

    #[test]
    fn clean_pipeline_is_centimeter_accurate() {
        let p = pipeline(5.0, 12.0).with_impairments(Impairments::none());
        let mut rng = GaussianSource::new(2);
        let fix = p.localize(&mut rng).unwrap();
        assert!((fix.range_m - 5.0).abs() < 0.02, "range {:.4}", fix.range_m);
    }

    #[test]
    fn impairments_degrade_but_do_not_break() {
        let clean = pipeline(6.0, 12.0).with_impairments(Impairments::none());
        let dirty = pipeline(6.0, 12.0);
        let mut errs_clean = Vec::new();
        let mut errs_dirty = Vec::new();
        for seed in 0..10 {
            let mut r1 = GaussianSource::new(100 + seed);
            let mut r2 = GaussianSource::new(100 + seed);
            errs_clean.push((clean.localize(&mut r1).unwrap().range_m - 6.0).abs());
            errs_dirty.push((dirty.localize(&mut r2).unwrap().range_m - 6.0).abs());
        }
        let mc = mmwave_sigproc::stats::mean(&errs_clean);
        let md = mmwave_sigproc::stats::mean(&errs_dirty);
        assert!(
            md >= mc,
            "impairments should not reduce error ({mc} vs {md})"
        );
        assert!(md < 0.3, "impaired error {md:.3} m too large");
    }

    #[test]
    fn ranging_error_grows_with_distance() {
        let mut rng = GaussianSource::new(7);
        let mut mean_err = |d: f64| {
            let p = pipeline(d, 12.0);
            let errs: Vec<f64> = (0..8)
                .map(|_| (p.localize(&mut rng).unwrap().range_m - d).abs())
                .collect();
            mmwave_sigproc::stats::mean(&errs)
        };
        let near = mean_err(2.0);
        let far = mean_err(8.0);
        assert!(far > near, "error should grow: {near:.4} → {far:.4}");
        // Fig 12a bounds: mean < 5 cm at 5 m, < 12 cm at 8 m.
        assert!(far < 0.15, "error at 8 m is {far:.3} m");
    }

    #[test]
    fn angle_estimate_accurate_across_azimuths() {
        let mut scene = Scene::single_node(4.0, 12f64.to_radians());
        // Move the node to a 15° azimuth.
        scene = Scene {
            ap: scene.ap,
            nodes: vec![],
            clutter: scene.clutter,
        }
        .with_node_at(4.0, 15f64.to_radians(), 12f64.to_radians());
        let p = LocalizationPipeline::new(SystemConfig::milback_default(), scene).unwrap();
        let mut rng = GaussianSource::new(3);
        let fix = p.localize(&mut rng).unwrap();
        assert!(
            (fix.angle_rad.to_degrees() - 15.0).abs() < 3.0,
            "angle {:.2}°",
            fix.angle_rad.to_degrees()
        );
    }

    #[test]
    fn ap_orientation_estimate_tracks_truth() {
        // Single trials can err by ~4° when the ground bounce lands in an
        // unlucky phase; the paper's Fig 13b averages 25 trials. Average a
        // few here and require the paper's ≤3° bound on the mean.
        for deg in [-20.0f64, -10.0, 8.0, 18.0] {
            let p = pipeline(2.0, deg);
            let mut rng = GaussianSource::new(50);
            let ests: Vec<f64> = (0..6)
                .filter_map(|_| p.orient_at_ap(&mut rng).ok())
                .map(|e| e.to_degrees())
                .collect();
            let mean_est = mmwave_sigproc::stats::mean(&ests);
            assert!(
                (mean_est - (-deg)).abs() < 3.0,
                "at {deg}°: mean est {mean_est:.2}° (incidence is −orientation)"
            );
        }
    }

    #[test]
    fn node_orientation_estimate_tracks_truth() {
        for deg in [-18.0f64, -6.0, 10.0, 22.0] {
            let p = pipeline(2.0, deg);
            let mut rng = GaussianSource::new(60);
            let est = p.orient_at_node(&mut rng).unwrap();
            assert!(
                (est.to_degrees() - (-deg)).abs() < 3.0,
                "at {deg}°: node est {:.2}°",
                est.to_degrees()
            );
        }
    }

    #[test]
    fn mirror_leakage_hurts_ap_orientation_near_normal() {
        // Fig 13b: error is elevated near normal incidence because the
        // switching-correlated part of the mirror reflection survives
        // subtraction. Compare mean error near 0° with error at 15°.
        let err_at = |deg: f64, seed: u64| {
            let p = pipeline(2.0, deg);
            let mut rng = GaussianSource::new(seed);
            let errs: Vec<f64> = (0..8)
                .filter_map(|_| p.orient_at_ap(&mut rng).ok())
                .map(|e| (e.to_degrees() - (-deg)).abs())
                .collect();
            mmwave_sigproc::stats::mean(&errs)
        };
        let near_normal = err_at(3.0, 64);
        let off_normal = err_at(15.0, 65);
        assert!(
            near_normal > off_normal * 0.8,
            "near-normal {near_normal:.2}° vs off-normal {off_normal:.2}°"
        );
    }

    #[test]
    fn ground_truth_measurement_has_placement_noise() {
        let p = pipeline(3.0, 0.0);
        let mut rng = GaussianSource::new(80);
        let meas: Vec<f64> = (0..50)
            .map(|_| p.measured_ground_truth_range(&mut rng))
            .collect();
        let sd = mmwave_sigproc::stats::std_dev(&meas);
        assert!(sd > 0.005 && sd < 0.03, "placement sd {sd:.4}");
    }
}
