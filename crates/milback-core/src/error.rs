//! Unified error type for the MilBack network core.

use crate::protocol::FrameError;
use milback_ap::aoa::AoaError;
use milback_ap::fmcw::FmcwError;
use milback_ap::orientation::ApOrientationError;
use milback_ap::query::QueryError;
use milback_ap::uplink_rx::UplinkRxError;
use milback_node::downlink::DemodError;
use milback_node::firmware::TransitionError;
use milback_node::orientation::OrientationError;
use milback_node::uplink::UplinkError;

/// Any error the end-to-end pipelines can produce.
#[derive(Debug, Clone, PartialEq)]
pub enum MilbackError {
    /// FMCW processing failed.
    Fmcw(FmcwError),
    /// Angle estimation failed.
    Aoa(AoaError),
    /// AP-side orientation estimation failed.
    ApOrientation(ApOrientationError),
    /// Node-side orientation estimation failed.
    NodeOrientation(OrientationError),
    /// Carrier planning failed.
    Query(QueryError),
    /// Downlink demodulation failed.
    Demod(DemodError),
    /// Uplink modulation failed.
    UplinkTx(UplinkError),
    /// Uplink reception failed.
    UplinkRx(UplinkRxError),
    /// A wire frame failed to parse.
    Frame(FrameError),
    /// The node firmware rejected an event as illegal in its state.
    Transition(TransitionError),
    /// The discrete-event engine detected a scheduling violation.
    Engine(String),
    /// Protocol-level violation.
    Protocol(String),
    /// A configuration value is invalid.
    Config(String),
    /// A node index addressed a scene that does not contain it — the
    /// typed replacement for unwrapping [`Scene::view_for_node`]'s
    /// `Option` (relay routes can name any index, so the bound must be
    /// an error, not a panic).
    ///
    /// [`Scene::view_for_node`]: crate::scene::Scene::view_for_node
    NodeOutOfScene {
        /// The offending node index.
        idx: usize,
        /// How many nodes the scene actually holds.
        nodes: usize,
    },
    /// The packet-lifecycle conservation audit failed: offered packets
    /// did not partition into deliveries plus attributed drops
    /// (see [`LifecycleStats::audit`]).
    ///
    /// [`LifecycleStats::audit`]: crate::lifecycle::LifecycleStats::audit
    Conservation {
        /// Packets offered to the MAC layer.
        offered: u64,
        /// Packets delivered (direct plus relayed).
        delivered: u64,
        /// Packets dropped across the attribution taxonomy.
        dropped: u64,
    },
}

impl std::fmt::Display for MilbackError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MilbackError::Fmcw(e) => write!(f, "FMCW: {e}"),
            MilbackError::Aoa(e) => write!(f, "AoA: {e}"),
            MilbackError::ApOrientation(e) => write!(f, "AP orientation: {e}"),
            MilbackError::NodeOrientation(e) => write!(f, "node orientation: {e}"),
            MilbackError::Query(e) => write!(f, "carrier planning: {e}"),
            MilbackError::Demod(e) => write!(f, "downlink demodulation: {e}"),
            MilbackError::UplinkTx(e) => write!(f, "uplink modulation: {e}"),
            MilbackError::UplinkRx(e) => write!(f, "uplink reception: {e}"),
            MilbackError::Frame(e) => write!(f, "wire frame: {e}"),
            MilbackError::Transition(e) => write!(f, "firmware: {e}"),
            MilbackError::Engine(s) => write!(f, "engine: {s}"),
            MilbackError::Protocol(s) => write!(f, "protocol: {s}"),
            MilbackError::Config(s) => write!(f, "config: {s}"),
            MilbackError::NodeOutOfScene { idx, nodes } => {
                write!(f, "node {idx} out of scene ({nodes} nodes)")
            }
            MilbackError::Conservation {
                offered,
                delivered,
                dropped,
            } => write!(
                f,
                "lifecycle conservation violated: offered {offered} != delivered {delivered} \
                 + dropped {dropped}"
            ),
        }
    }
}

impl std::error::Error for MilbackError {
    /// Exposes the wrapped AP/node error so callers can walk the chain
    /// (`anyhow`-style inspection, `{:#}`-style reporting) instead of
    /// string-matching the `Display` output.
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MilbackError::Fmcw(e) => Some(e),
            MilbackError::Aoa(e) => Some(e),
            MilbackError::ApOrientation(e) => Some(e),
            MilbackError::NodeOrientation(e) => Some(e),
            MilbackError::Query(e) => Some(e),
            MilbackError::Demod(e) => Some(e),
            MilbackError::UplinkTx(e) => Some(e),
            MilbackError::UplinkRx(e) => Some(e),
            MilbackError::Frame(e) => Some(e),
            MilbackError::Transition(e) => Some(e),
            MilbackError::Engine(_)
            | MilbackError::Protocol(_)
            | MilbackError::Config(_)
            | MilbackError::NodeOutOfScene { .. }
            | MilbackError::Conservation { .. } => None,
        }
    }
}

macro_rules! from_error {
    ($variant:ident, $ty:ty) => {
        impl From<$ty> for MilbackError {
            fn from(e: $ty) -> Self {
                MilbackError::$variant(e)
            }
        }
    };
}

from_error!(Fmcw, FmcwError);
from_error!(Aoa, AoaError);
from_error!(ApOrientation, ApOrientationError);
from_error!(NodeOrientation, OrientationError);
from_error!(Query, QueryError);
from_error!(Demod, DemodError);
from_error!(UplinkTx, UplinkError);
from_error!(UplinkRx, UplinkRxError);
from_error!(Frame, FrameError);
from_error!(Transition, TransitionError);

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, MilbackError>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn conversions_and_display() {
        let e: MilbackError = FmcwError::LengthMismatch.into();
        assert!(e.to_string().starts_with("FMCW"));
        let e: MilbackError = DemodError::TraceTooShort.into();
        assert!(e.to_string().contains("downlink"));
        let e = MilbackError::Protocol("bad chirp count".into());
        assert!(e.to_string().contains("bad chirp count"));
        let e: MilbackError = UplinkError::RateTooHigh {
            requested_hz: 1.0,
            max_hz: 0.5,
        }
        .into();
        assert!(e.to_string().contains("uplink modulation"));
    }

    #[test]
    fn nested_aoa_error_displays() {
        let e: MilbackError = AoaError::Fmcw(FmcwError::NoEchoDetected).into();
        assert!(e.to_string().contains("AoA"));
    }

    #[test]
    fn source_exposes_wrapped_error() {
        let e: MilbackError = FmcwError::NoEchoDetected.into();
        let src = e.source().expect("wrapped errors carry a source");
        assert_eq!(src.to_string(), FmcwError::NoEchoDetected.to_string());

        let e: MilbackError = FrameError::BadMagic { got: 0x00 }.into();
        assert!(e.source().unwrap().to_string().contains("magic"));

        let e: MilbackError = TransitionError {
            state_name: "Idle",
            event: milback_node::firmware::Event::PayloadComplete,
        }
        .into();
        assert!(e.source().unwrap().to_string().contains("illegal"));
    }

    #[test]
    fn string_variants_have_no_source() {
        assert!(MilbackError::Protocol("x".into()).source().is_none());
        assert!(MilbackError::Config("x".into()).source().is_none());
        assert!(MilbackError::Engine("x".into()).source().is_none());
        assert!(MilbackError::NodeOutOfScene { idx: 3, nodes: 1 }
            .source()
            .is_none());
    }

    #[test]
    fn node_out_of_scene_names_the_bounds() {
        let e = MilbackError::NodeOutOfScene { idx: 7, nodes: 4 };
        assert_eq!(e.to_string(), "node 7 out of scene (4 nodes)");
    }

    #[test]
    fn conservation_violation_names_the_ledger() {
        let e = MilbackError::Conservation {
            offered: 10,
            delivered: 6,
            dropped: 3,
        };
        assert_eq!(
            e.to_string(),
            "lifecycle conservation violated: offered 10 != delivered 6 + dropped 3"
        );
        assert!(e.source().is_none());
    }

    #[test]
    fn source_chain_is_walkable() {
        // Two levels: MilbackError → AoaError → FmcwError.
        let e: MilbackError = AoaError::Fmcw(FmcwError::NoEchoDetected).into();
        let mut depth = 0;
        let mut cur: &dyn std::error::Error = &e;
        while let Some(next) = cur.source() {
            depth += 1;
            cur = next;
        }
        assert!(depth >= 2, "chain depth {depth}");
    }
}
