//! Unified error type for the MilBack network core.

use milback_ap::aoa::AoaError;
use milback_ap::fmcw::FmcwError;
use milback_ap::orientation::ApOrientationError;
use milback_ap::query::QueryError;
use milback_ap::uplink_rx::UplinkRxError;
use milback_node::downlink::DemodError;
use milback_node::orientation::OrientationError;
use milback_node::uplink::UplinkError;

/// Any error the end-to-end pipelines can produce.
#[derive(Debug, Clone, PartialEq)]
pub enum MilbackError {
    /// FMCW processing failed.
    Fmcw(FmcwError),
    /// Angle estimation failed.
    Aoa(AoaError),
    /// AP-side orientation estimation failed.
    ApOrientation(ApOrientationError),
    /// Node-side orientation estimation failed.
    NodeOrientation(OrientationError),
    /// Carrier planning failed.
    Query(QueryError),
    /// Downlink demodulation failed.
    Demod(DemodError),
    /// Uplink modulation failed.
    UplinkTx(UplinkError),
    /// Uplink reception failed.
    UplinkRx(UplinkRxError),
    /// Protocol-level violation.
    Protocol(String),
    /// A configuration value is invalid.
    Config(String),
}

impl std::fmt::Display for MilbackError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MilbackError::Fmcw(e) => write!(f, "FMCW: {e}"),
            MilbackError::Aoa(e) => write!(f, "AoA: {e}"),
            MilbackError::ApOrientation(e) => write!(f, "AP orientation: {e}"),
            MilbackError::NodeOrientation(e) => write!(f, "node orientation: {e}"),
            MilbackError::Query(e) => write!(f, "carrier planning: {e}"),
            MilbackError::Demod(e) => write!(f, "downlink demodulation: {e}"),
            MilbackError::UplinkTx(e) => write!(f, "uplink modulation: {e}"),
            MilbackError::UplinkRx(e) => write!(f, "uplink reception: {e}"),
            MilbackError::Protocol(s) => write!(f, "protocol: {s}"),
            MilbackError::Config(s) => write!(f, "config: {s}"),
        }
    }
}

impl std::error::Error for MilbackError {}

macro_rules! from_error {
    ($variant:ident, $ty:ty) => {
        impl From<$ty> for MilbackError {
            fn from(e: $ty) -> Self {
                MilbackError::$variant(e)
            }
        }
    };
}

from_error!(Fmcw, FmcwError);
from_error!(Aoa, AoaError);
from_error!(ApOrientation, ApOrientationError);
from_error!(NodeOrientation, OrientationError);
from_error!(Query, QueryError);
from_error!(Demod, DemodError);
from_error!(UplinkTx, UplinkError);
from_error!(UplinkRx, UplinkRxError);

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, MilbackError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: MilbackError = FmcwError::LengthMismatch.into();
        assert!(e.to_string().starts_with("FMCW"));
        let e: MilbackError = DemodError::TraceTooShort.into();
        assert!(e.to_string().contains("downlink"));
        let e = MilbackError::Protocol("bad chirp count".into());
        assert!(e.to_string().contains("bad chirp count"));
        let e: MilbackError = UplinkError::RateTooHigh { requested_hz: 1.0, max_hz: 0.5 }.into();
        assert!(e.to_string().contains("uplink modulation"));
    }

    #[test]
    fn nested_aoa_error_displays() {
        let e: MilbackError = AoaError::Fmcw(FmcwError::NoEchoDetected).into();
        assert!(e.to_string().contains("AoA"));
    }
}
