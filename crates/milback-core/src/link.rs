//! End-to-end link simulation: downlink (Fig 14) and uplink (Fig 15).
//!
//! # Fidelity levels
//!
//! * **Downlink** runs waveform-level: per-symbol tone keying → per-port RF
//!   power traces through the dual-port FSA coupling model → envelope
//!   detector square law + RC dynamics + output noise → MCU sampling →
//!   OAQFM slicing. The SINR report separates noise from cross-port tone
//!   leakage, as §9.4 does.
//! * **Uplink** has two paths: the default symbol-level Monte-Carlo
//!   anchored to the analytic radar-equation budget (the budget sets
//!   everything; the switches settle in nanoseconds), and
//!   [`LinkSimulator::uplink_waveform`], which synthesizes the oversampled
//!   switching waveform with settling transitions and slices it through
//!   the integrate-and-dump receiver — the two agree on BER within
//!   Monte-Carlo error.

use crate::config::SystemConfig;
use crate::error::{MilbackError, Result};
use crate::scene::Scene;
use milback_ap::query::QueryPlanner;
use milback_ap::uplink_rx::{measure_channel_snr_db, symbol_ber, UplinkReceiver};
use milback_ap::waveform::CarrierSet;
use milback_node::downlink::{OaqfmDemodulator, SinrReport};
use milback_node::node::PortPowers;
use milback_node::uplink::UplinkModulator;
use mmwave_rf::antenna::fsa::{FsaGainEval, FsaPort};
use mmwave_rf::channel::received_power_w;
use mmwave_sigproc::random::GaussianSource;
use mmwave_sigproc::stats::q_function;
use mmwave_sigproc::units::{db_to_lin, dbm_to_watts, watts_to_dbm};
use mmwave_sigproc::waveform::{bytes_to_symbols, symbols_to_bytes};
use serde::{Deserialize, Serialize};

/// Result of a downlink transfer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DownlinkOutcome {
    /// The bytes the node decoded.
    pub decoded: Vec<u8>,
    /// Bit error rate against the transmitted payload.
    pub ber: f64,
    /// Per-port SINR breakdown at the MCU input (worst port reported in
    /// `sinr_db()`).
    pub sinr_a: SinrReport,
    /// Port-B SINR breakdown.
    pub sinr_b: SinrReport,
    /// The carrier set the AP selected.
    pub carriers: CarrierSet,
}

impl DownlinkOutcome {
    /// The reported SINR (the weaker port), dB — the Fig 14 metric.
    pub fn sinr_db(&self) -> f64 {
        self.sinr_a.sinr_db().min(self.sinr_b.sinr_db())
    }
}

/// Result of an uplink transfer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UplinkOutcome {
    /// The bytes the AP decoded.
    pub decoded: Vec<u8>,
    /// Measured bit error rate.
    pub ber: f64,
    /// Measured per-channel SNR (mean of the two channels), dB — the
    /// Fig 15 metric.
    pub snr_db: f64,
    /// The analytic (budget) SNR the simulation was anchored to, dB.
    pub analytic_snr_db: f64,
}

/// The end-to-end link simulator for one scene.
#[derive(Debug, Clone)]
pub struct LinkSimulator {
    /// System configuration.
    pub config: SystemConfig,
    /// Physical scene (first node is the link partner).
    pub scene: Scene,
    /// Carrier planner.
    pub planner: QueryPlanner,
    /// Orientation estimate to plan carriers from. `None` plans from the
    /// scene's ground truth (convenient for parameter sweeps); a session
    /// that ran orientation sensing sets this to its own estimate so the
    /// payload uses what the AP actually measured.
    pub orientation_hint: Option<f64>,
    /// Memoized FSA gain evaluator for the node's dual-port antenna. The
    /// downlink keys the *same* one or two carriers every symbol, so after
    /// the first symbol every coupling query is a cache hit (bit-exact with
    /// the direct path). Rebuilt by [`LinkSimulator::new`]; refresh it if
    /// `config.node.fsa` is mutated afterwards.
    pub gain_eval: FsaGainEval,
}

impl LinkSimulator {
    /// Creates a simulator after validating the configuration.
    pub fn new(config: SystemConfig, scene: Scene) -> Result<Self> {
        config.validate()?;
        if scene.nodes.is_empty() {
            return Err(MilbackError::Config("scene has no nodes".into()));
        }
        let gain_eval = FsaGainEval::for_dual(&config.node.fsa);
        Ok(Self {
            config,
            scene,
            planner: QueryPlanner::milback_default(),
            orientation_hint: None,
            gain_eval,
        })
    }

    /// Per-tone incident power at the node's location (before FSA gain):
    /// `P_tx·G_ap·(λ/4πd)²`, watts. Uses the AP horn gain toward the node's
    /// actual azimuth.
    fn incident_power_w(&self, freq_hz: f64) -> f64 {
        use mmwave_rf::antenna::Antenna;
        let gt = self.scene.ground_truth(0);
        let tx_w = dbm_to_watts(self.config.ap.tx.port_power_dbm());
        let horn = mmwave_rf::antenna::Horn::miwave_20dbi();
        let g_ap = db_to_lin(horn.gain_dbi(freq_hz, gt.azimuth_rad));
        received_power_w(tx_w, g_ap, 1.0, freq_hz, gt.range_m)
    }

    /// Plans carriers from the node's true orientation (or a caller-supplied
    /// estimate, e.g. from the orientation pipeline).
    pub fn plan_carriers(&self, orientation_estimate_rad: Option<f64>) -> Result<CarrierSet> {
        let psi = orientation_estimate_rad
            .or(self.orientation_hint)
            .unwrap_or_else(|| self.scene.ground_truth(0).incidence_rad);
        Ok(self.planner.plan(&self.config.node.fsa, psi)?)
    }

    // ------------------------------------------------------------------
    // Downlink
    // ------------------------------------------------------------------

    /// Runs a waveform-level downlink transfer of `payload`.
    ///
    /// Off normal incidence this is OAQFM (2 bits/symbol across two
    /// tones); at normal incidence the planner degenerates to single-tone
    /// OOK and the transfer runs at 1 bit/symbol (§6.2).
    pub fn downlink(&self, payload: &[u8], rng: &mut GaussianSource) -> Result<DownlinkOutcome> {
        let carriers = self.plan_carriers(None)?;
        if payload.is_empty() {
            // Nothing to key: report the link quality without a transfer.
            let (f_a, f_b) = match carriers {
                CarrierSet::TwoTone { f_a, f_b } => (f_a, f_b),
                CarrierSet::SingleToneOok { f } => (f, f),
            };
            let psi = self.scene.ground_truth(0).incidence_rad;
            let (sinr_a, sinr_b) = self.downlink_sinr_breakdown(f_a, f_b, psi);
            return Ok(DownlinkOutcome {
                decoded: Vec::new(),
                ber: 0.0,
                sinr_a,
                sinr_b,
                carriers,
            });
        }
        match carriers {
            CarrierSet::TwoTone { f_a, f_b } => self.downlink_oaqfm(payload, f_a, f_b, rng),
            CarrierSet::SingleToneOok { f } => self.downlink_ook(payload, f, rng),
        }
    }

    /// The two-tone OAQFM downlink path.
    fn downlink_oaqfm(
        &self,
        payload: &[u8],
        f_a: f64,
        f_b: f64,
        rng: &mut GaussianSource,
    ) -> Result<DownlinkOutcome> {
        let gt = self.scene.ground_truth(0);
        let psi = gt.incidence_rad;
        let symbols = bytes_to_symbols(payload);
        let sps =
            (self.config.trace_rate_hz / self.config.downlink_symbol_rate_hz).round() as usize;
        let p_a_in = self.incident_power_w(f_a);
        let p_b_in = self.incident_power_w(f_b);
        // Per-symbol per-port power levels through the dual-port coupling.
        // Only two carriers ever appear, so evaluate the coupling once for
        // both (batched, lock-free) and precompute the four symbol levels —
        // the `0.0 + pw·c` a-then-b tone sum below is bit-identical to the
        // per-symbol `port_powers_for_tones_eval` call it replaces.
        let mut ca = [0.0; 2];
        let mut cb = [0.0; 2];
        self.gain_eval
            .port_coupling_linear_freqs_into(&[f_a, f_b], psi, &mut ca, &mut cb);
        let level = |tone_a: bool, tone_b: bool| {
            let mut p = PortPowers::default();
            if tone_a {
                p.a_w += p_a_in * ca[0];
                p.b_w += p_a_in * cb[0];
            }
            if tone_b {
                p.a_w += p_b_in * ca[1];
                p.b_w += p_b_in * cb[1];
            }
            p
        };
        let levels = [
            level(false, false),
            level(false, true),
            level(true, false),
            level(true, true),
        ];
        let mut pa = Vec::with_capacity(symbols.len() * sps);
        let mut pb = Vec::with_capacity(symbols.len() * sps);
        for s in &symbols {
            let p = levels[(usize::from(s.tone_a) << 1) | usize::from(s.tone_b)];
            pa.extend(std::iter::repeat_n(p.a_w, sps));
            pb.extend(std::iter::repeat_n(p.b_w, sps));
        }
        let (va, vb) = self
            .config
            .node
            .detector_traces(&pa, &pb, self.config.trace_rate_hz, rng);
        let demod = OaqfmDemodulator::new(sps);
        let decided = demod.demodulate_auto(&va, &vb)?;
        let ber = milback_ap::uplink_rx::symbol_ber(&symbols, &decided);
        let decoded = symbols_to_bytes(&decided);
        let (sinr_a, sinr_b) = self.downlink_sinr_breakdown(f_a, f_b, psi);
        Ok(DownlinkOutcome {
            decoded,
            ber,
            sinr_a,
            sinr_b,
            carriers: CarrierSet::TwoTone { f_a, f_b },
        })
    }

    /// The normal-incidence OOK fallback: one carrier, one bit per symbol,
    /// decided on whichever detector sees it (both do; the firmware can
    /// even combine them — here the stronger port is used).
    fn downlink_ook(
        &self,
        payload: &[u8],
        f: f64,
        rng: &mut GaussianSource,
    ) -> Result<DownlinkOutcome> {
        let gt = self.scene.ground_truth(0);
        let psi = gt.incidence_rad;
        let bits: Vec<bool> = payload
            .iter()
            .flat_map(|&byte| (0..8).rev().map(move |i| byte >> i & 1 == 1))
            .collect();
        let sps =
            (self.config.trace_rate_hz / self.config.downlink_symbol_rate_hz).round() as usize;
        let p_in = self.incident_power_w(f);
        // The keyed level is bit-invariant: evaluate the single-carrier
        // coupling once (batched, lock-free) instead of per bit.
        let (mut c_a, mut c_b) = ([0.0], [0.0]);
        self.gain_eval
            .port_coupling_linear_freqs_into(&[f], psi, &mut c_a, &mut c_b);
        let p_on = PortPowers {
            a_w: p_in * c_a[0],
            b_w: p_in * c_b[0],
        };
        let mut pa = Vec::with_capacity(bits.len() * sps);
        let mut pb = Vec::with_capacity(bits.len() * sps);
        for &bit in &bits {
            let p = if bit { p_on } else { PortPowers::default() };
            pa.extend(std::iter::repeat_n(p.a_w, sps));
            pb.extend(std::iter::repeat_n(p.b_w, sps));
        }
        let (va, vb) = self
            .config
            .node
            .detector_traces(&pa, &pb, self.config.trace_rate_hz, rng);
        // Use whichever port carries more energy (at normal incidence both
        // see the tone; any asymmetry comes from component spread).
        let demod = OaqfmDemodulator::new(sps);
        let ea: f64 = va.iter().map(|v| v * v).sum();
        let eb: f64 = vb.iter().map(|v| v * v).sum();
        let trace = if ea >= eb { &va } else { &vb };
        let threshold =
            milback_node::downlink::calibrate_threshold(trace).map_err(MilbackError::Demod)?;
        let decided_bits = demod.demodulate_ook(trace, threshold)?;
        let ber = mmwave_sigproc::stats::bit_error_rate(&bits, &decided_bits);
        let decoded: Vec<u8> = decided_bits
            .chunks_exact(8)
            .map(|c| c.iter().fold(0u8, |acc, &b| (acc << 1) | u8::from(b)))
            .collect();
        // Single carrier: there is no cross-tone interference — both ports
        // carry the *same* keyed tone, so the report is noise-limited.
        let node = &self.config.node;
        let (ca, cb) = self.gain_eval.port_coupling_linear(f, psi);
        let report_for =
            |coupling: f64, det: &mmwave_rf::components::EnvelopeDetector, eff: f64| {
                let v_sig = det.detect_v(p_in * coupling * eff);
                let sigma = det.output_noise_v(self.config.downlink_symbol_rate_hz);
                SinrReport {
                    signal_power: (v_sig / 2.0) * (v_sig / 2.0),
                    interference_power: 0.0,
                    noise_power: sigma * sigma,
                }
            };
        let sinr_a = report_for(ca, &node.detector_a, node.absorption_efficiency(FsaPort::A));
        let sinr_b = report_for(cb, &node.detector_b, node.absorption_efficiency(FsaPort::B));
        Ok(DownlinkOutcome {
            decoded,
            ber,
            sinr_a,
            sinr_b,
            carriers: CarrierSet::SingleToneOok { f },
        })
    }

    /// Analytic per-port SINR breakdown at the MCU input for carriers
    /// `(f_a, f_b)` at incidence `psi` — the quantity Fig 14 sweeps.
    pub fn downlink_sinr_breakdown(
        &self,
        f_a: f64,
        f_b: f64,
        psi: f64,
    ) -> (SinrReport, SinrReport) {
        let node = &self.config.node;
        let p_a_in = self.incident_power_w(f_a);
        let p_b_in = self.incident_power_w(f_b);
        // Power each tone couples into each port.
        let (a_from_a, b_from_a) = self.gain_eval.port_coupling_linear(f_a, psi);
        let (a_from_b, b_from_b) = self.gain_eval.port_coupling_linear(f_b, psi);
        let eff_a = node.absorption_efficiency(FsaPort::A);
        let eff_b = node.absorption_efficiency(FsaPort::B);
        // Detector voltages: signal = own tone, interference = other tone.
        let v_sig_a = node.detector_a.detect_v(p_a_in * a_from_a * eff_a);
        let v_int_a = node.detector_a.detect_v(p_b_in * a_from_b * eff_a);
        let v_sig_b = node.detector_b.detect_v(p_b_in * b_from_b * eff_b);
        let v_int_b = node.detector_b.detect_v(p_a_in * b_from_a * eff_b);
        // Decision bandwidth = symbol rate.
        let sigma_a = node
            .detector_a
            .output_noise_v(self.config.downlink_symbol_rate_hz);
        let sigma_b = node
            .detector_b
            .output_noise_v(self.config.downlink_symbol_rate_hz);
        let report = |v_sig: f64, v_int: f64, sigma: f64| SinrReport {
            signal_power: (v_sig / 2.0) * (v_sig / 2.0),
            interference_power: (v_int / 2.0) * (v_int / 2.0),
            noise_power: sigma * sigma,
        };
        (
            report(v_sig_a, v_int_a, sigma_a),
            report(v_sig_b, v_int_b, sigma_b),
        )
    }

    /// Analytic downlink BER from SINR: matched-filter OOK per tone,
    /// `Q(√(2·SINR))`.
    pub fn downlink_ber_from_sinr(sinr_db: f64) -> f64 {
        q_function((2.0 * db_to_lin(sinr_db)).sqrt())
    }

    // ------------------------------------------------------------------
    // Uplink
    // ------------------------------------------------------------------

    /// The analytic uplink SNR (dB) for the current scene at the configured
    /// symbol rate: the two-way radar budget over the data bandwidth.
    pub fn uplink_analytic_snr_db(&self) -> Result<f64> {
        let carriers = self.plan_carriers(None)?;
        let (f_a, _f_b) = match carriers {
            CarrierSet::TwoTone { f_a, f_b } => (f_a, f_b),
            CarrierSet::SingleToneOok { f } => (f, f),
        };
        Ok(self.uplink_channel_snr_db(f_a, FsaPort::A))
    }

    /// Analytic SNR of one uplink channel: signal is the half-swing of the
    /// modulated backscatter at the AP antenna port; noise is the receiver
    /// chain over the *bit-rate* bandwidth (matching §9.5's "higher
    /// bandwidth results in higher noise floor").
    pub fn uplink_channel_snr_db(&self, freq_hz: f64, port: FsaPort) -> f64 {
        use mmwave_rf::antenna::Antenna;
        let gt = self.scene.ground_truth(0);
        let node = &self.config.node;
        let horn = mmwave_rf::antenna::Horn::miwave_20dbi();
        let g_tx = db_to_lin(horn.gain_dbi(freq_hz, gt.azimuth_rad));
        let g_rx = g_tx;
        let g_port = self.gain_eval.gain_linear(port, freq_hz, gt.incidence_rad);
        let delta_gamma = node.modulation_depth(port);
        let tx_w = dbm_to_watts(self.config.ap.tx.port_power_dbm());
        let amp = mmwave_rf::channel::backscatter_amplitude_sqrt_w(
            tx_w,
            g_tx,
            g_rx,
            g_port * g_port,
            delta_gamma / 2.0,
            freq_hz,
            gt.range_m,
        );
        let signal_dbm = watts_to_dbm(amp * amp);
        self.config
            .ap
            .rx1
            .snr_db(signal_dbm, self.config.uplink_bit_rate_hz())
    }

    /// Runs a waveform-level uplink transfer: the node's switching
    /// waveform is synthesized at the digitizer rate (including the SPDT's
    /// finite settling transitions), the AP's post-mixer baseband noise is
    /// added at full digitizer bandwidth, and the receiver
    /// integrate-and-dumps at `samples_per_symbol` before slicing.
    ///
    /// Slower than [`uplink`](Self::uplink) but exercises the transition-
    /// shaping and oversampled-decision path; the two agree on BER within
    /// Monte-Carlo error (see tests).
    pub fn uplink_waveform(
        &self,
        payload: &[u8],
        samples_per_symbol: usize,
        rng: &mut GaussianSource,
    ) -> Result<UplinkOutcome> {
        assert!(samples_per_symbol >= 2, "waveform path needs oversampling");
        let carriers = self.plan_carriers(None)?;
        let (f_a, f_b) = match carriers {
            CarrierSet::TwoTone { f_a, f_b } => (f_a, f_b),
            CarrierSet::SingleToneOok { f } => (f, f),
        };
        let modulator = UplinkModulator::new(
            self.config.uplink_symbol_rate_hz,
            &self.config.node.switch_a,
        )
        .map_err(MilbackError::UplinkTx)?;
        let symbols = bytes_to_symbols(payload);
        let schedule = modulator.schedule_for_symbols(&symbols);
        let node = &self.config.node;
        // Switch settling: one sample of linear transition per boundary.
        let mk_trace = |port: FsaPort, freq: f64, rng: &mut GaussianSource| -> Vec<f64> {
            let snr_lin = db_to_lin(self.uplink_channel_snr_db(freq, port));
            let hi = node.reflection_amplitude(port, milback_node::mode::PortMode::Reflective);
            let lo = node.reflection_amplitude(port, milback_node::mode::PortMode::Absorptive);
            let swing_half = (hi - lo) / 2.0;
            // Per-sample noise such that the post-integration (mean over
            // sps samples) noise matches the analytic symbol-level σ.
            let sigma_sym = swing_half / snr_lin.sqrt();
            let sigma_sample = sigma_sym * (samples_per_symbol as f64).sqrt();
            let mut trace = Vec::with_capacity(schedule.len() * samples_per_symbol);
            let mut prev = lo;
            for st in &schedule {
                let mode = match port {
                    FsaPort::A => st.a,
                    FsaPort::B => st.b,
                };
                let level = match mode {
                    milback_node::mode::PortMode::Reflective => hi,
                    milback_node::mode::PortMode::Absorptive => lo,
                };
                for i in 0..samples_per_symbol {
                    // First sample of each symbol ramps from the previous
                    // level (switch settling ≤ one sample at these rates).
                    let v = if i == 0 { (prev + level) / 2.0 } else { level };
                    trace.push(v + rng.sample(sigma_sample));
                }
                prev = level;
            }
            trace
        };
        let ta = mk_trace(FsaPort::A, f_a, rng);
        let tb = mk_trace(FsaPort::B, f_b, rng);
        let receiver = UplinkReceiver::new(samples_per_symbol);
        let decided = receiver.decide(&ta, &tb).map_err(MilbackError::UplinkRx)?;
        let ber = symbol_ber(&symbols, &decided);
        let analytic_db = (self.uplink_channel_snr_db(f_a, FsaPort::A)
            + self.uplink_channel_snr_db(f_b, FsaPort::B))
            / 2.0;
        Ok(UplinkOutcome {
            decoded: symbols_to_bytes(&decided),
            ber,
            snr_db: analytic_db,
            analytic_snr_db: analytic_db,
        })
    }

    /// Runs a symbol-level Monte-Carlo uplink transfer of `payload`.
    pub fn uplink(&self, payload: &[u8], rng: &mut GaussianSource) -> Result<UplinkOutcome> {
        let carriers = self.plan_carriers(None)?;
        if payload.is_empty() {
            let snr = self.uplink_analytic_snr_db()?;
            return Ok(UplinkOutcome {
                decoded: Vec::new(),
                ber: 0.0,
                snr_db: snr,
                analytic_snr_db: snr,
            });
        }
        let (f_a, f_b) = match carriers {
            CarrierSet::TwoTone { f_a, f_b } => (f_a, f_b),
            CarrierSet::SingleToneOok { f } => (f, f),
        };
        let modulator = UplinkModulator::new(
            self.config.uplink_symbol_rate_hz,
            &self.config.node.switch_a,
        )
        .map_err(MilbackError::UplinkTx)?;
        let symbols = bytes_to_symbols(payload);
        let schedule = modulator.schedule_for_symbols(&symbols);
        // Per-channel symbol statistics: level per state + AWGN anchored to
        // the analytic channel SNR.
        let snr_a = db_to_lin(self.uplink_channel_snr_db(f_a, FsaPort::A));
        let snr_b = db_to_lin(self.uplink_channel_snr_db(f_b, FsaPort::B));
        let node = &self.config.node;
        let mk_channel = |port: FsaPort, snr_lin: f64, rng: &mut GaussianSource| -> Vec<f64> {
            let hi = node.reflection_amplitude(port, milback_node::mode::PortMode::Reflective);
            let lo = node.reflection_amplitude(port, milback_node::mode::PortMode::Absorptive);
            let swing_half = (hi - lo) / 2.0;
            let sigma = swing_half / snr_lin.sqrt();
            schedule
                .iter()
                .map(|st| {
                    let mode = match port {
                        FsaPort::A => st.a,
                        FsaPort::B => st.b,
                    };
                    let level = match mode {
                        milback_node::mode::PortMode::Reflective => hi,
                        milback_node::mode::PortMode::Absorptive => lo,
                    };
                    level + rng.sample(sigma)
                })
                .collect()
        };
        let stats_a = mk_channel(FsaPort::A, snr_a, rng);
        let stats_b = mk_channel(FsaPort::B, snr_b, rng);
        let receiver = UplinkReceiver::new(1);
        let decided = receiver
            .decide(&stats_a, &stats_b)
            .map_err(MilbackError::UplinkRx)?;
        let ber = symbol_ber(&symbols, &decided);
        // Measured SNR from the symbol populations. A channel whose payload
        // happens to contain only one level cannot be measured; fall back
        // to the channels that can (and to the analytic figure if neither).
        let bits_a: Vec<bool> = symbols.iter().map(|s| s.tone_a).collect();
        let bits_b: Vec<bool> = symbols.iter().map(|s| s.tone_b).collect();
        let analytic_db = 10.0 * ((snr_a + snr_b) / 2.0).log10();
        let mut channel_snrs = Vec::with_capacity(2);
        for (stats, bits) in [(&stats_a, &bits_a), (&stats_b, &bits_b)] {
            let has_both = bits.iter().any(|&b| b) && bits.iter().any(|&b| !b);
            if has_both {
                channel_snrs.push(measure_channel_snr_db(stats, bits));
            }
        }
        let measured = if channel_snrs.is_empty() {
            analytic_db
        } else {
            mmwave_sigproc::stats::mean(&channel_snrs)
        };
        Ok(UplinkOutcome {
            decoded: symbols_to_bytes(&decided),
            ber,
            snr_db: measured,
            analytic_snr_db: analytic_db,
        })
    }

    /// Analytic uplink BER from SNR: `Q(√SNR)` with SNR defined on the
    /// half-swing (threshold-midpoint slicing of one OOK channel).
    pub fn uplink_ber_from_snr(snr_db: f64) -> f64 {
        q_function(db_to_lin(snr_db).sqrt())
    }

    /// The unified propagation service: dispatches a transfer by
    /// [`milback_ap::waveform::LinkDirection`] so engine actors can hand the medium a direction
    /// and a payload without caring which physical path runs underneath.
    pub fn transfer(
        &self,
        direction: milback_ap::waveform::LinkDirection,
        payload: &[u8],
        rng: &mut GaussianSource,
    ) -> Result<TransferOutcome> {
        use milback_ap::waveform::LinkDirection;
        Ok(match direction {
            LinkDirection::Downlink => TransferOutcome::Downlink(self.downlink(payload, rng)?),
            LinkDirection::Uplink => TransferOutcome::Uplink(self.uplink(payload, rng)?),
        })
    }
}

/// The outcome of a direction-dispatched [`LinkSimulator::transfer`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TransferOutcome {
    /// A downlink ran.
    Downlink(DownlinkOutcome),
    /// An uplink ran.
    Uplink(UplinkOutcome),
}

impl TransferOutcome {
    /// The decoded bytes, whichever side received them.
    pub fn decoded(&self) -> &[u8] {
        match self {
            TransferOutcome::Downlink(o) => &o.decoded,
            TransferOutcome::Uplink(o) => &o.decoded,
        }
    }

    /// The measured bit error rate of the transfer.
    pub fn ber(&self) -> f64 {
        match self {
            TransferOutcome::Downlink(o) => o.ber,
            TransferOutcome::Uplink(o) => o.ber,
        }
    }

    /// The link-quality figure of merit: worst-port SINR for a downlink,
    /// mean channel SNR for an uplink, dB.
    pub fn quality_db(&self) -> f64 {
        match self {
            TransferOutcome::Downlink(o) => o.sinr_db(),
            TransferOutcome::Uplink(o) => o.snr_db,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim(distance: f64, orientation_deg: f64) -> LinkSimulator {
        LinkSimulator::new(
            SystemConfig::milback_default(),
            Scene::single_node(distance, orientation_deg.to_radians()),
        )
        .unwrap()
    }

    #[test]
    fn downlink_delivers_payload_at_short_range() {
        let s = sim(2.0, 12.0);
        let mut rng = GaussianSource::new(1);
        let payload = vec![0xDE, 0xAD, 0xBE, 0xEF];
        let out = s.downlink(&payload, &mut rng).unwrap();
        assert_eq!(out.decoded, payload);
        assert_eq!(out.ber, 0.0);
        assert!(matches!(out.carriers, CarrierSet::TwoTone { .. }));
    }

    #[test]
    fn downlink_sinr_in_fig14_band() {
        // Fig 14: SINR ≈ 22–25 dB at 2 m, ≥12 dB at 10 m.
        let near = sim(2.0, 12.0);
        let far = sim(10.0, 12.0);
        let gt = near.scene.ground_truth(0);
        let c = near.plan_carriers(None).unwrap();
        let (fa, fb) = match c {
            CarrierSet::TwoTone { f_a, f_b } => (f_a, f_b),
            _ => panic!("expected two tones"),
        };
        let (a2, b2) = near.downlink_sinr_breakdown(fa, fb, gt.incidence_rad);
        let s2 = a2.sinr_db().min(b2.sinr_db());
        let (a10, b10) = far.downlink_sinr_breakdown(fa, fb, gt.incidence_rad);
        let s10 = a10.sinr_db().min(b10.sinr_db());
        assert!((20.0..27.0).contains(&s2), "SINR@2m = {s2:.1} dB");
        assert!((11.0..16.0).contains(&s10), "SINR@10m = {s10:.1} dB");
        assert!(s2 > s10);
    }

    #[test]
    fn downlink_sinr_saturates_at_very_short_range() {
        // Interference-limited: going from 2 m to 0.5 m barely helps.
        let s05 = sim(0.5, 12.0);
        let s2 = sim(2.0, 12.0);
        let gt = s2.scene.ground_truth(0);
        let c = s2.plan_carriers(None).unwrap();
        let (fa, fb) = match c {
            CarrierSet::TwoTone { f_a, f_b } => (f_a, f_b),
            _ => unreachable!(),
        };
        let near = {
            let (a, b) = s05.downlink_sinr_breakdown(fa, fb, gt.incidence_rad);
            a.sinr_db().min(b.sinr_db())
        };
        let mid = {
            let (a, b) = s2.downlink_sinr_breakdown(fa, fb, gt.incidence_rad);
            a.sinr_db().min(b.sinr_db())
        };
        assert!(
            near - mid < 4.0,
            "gain from 2→0.5 m is {:.1} dB",
            near - mid
        );
    }

    #[test]
    fn normal_incidence_uses_ook() {
        let s = sim(3.0, 0.0);
        let carriers = s.plan_carriers(None).unwrap();
        assert!(matches!(carriers, CarrierSet::SingleToneOok { .. }));
    }

    #[test]
    fn ook_downlink_roundtrips_payload() {
        let s = sim(3.0, 0.0);
        let mut rng = GaussianSource::new(21);
        let payload = vec![0x00, 0xFF, 0xA5, 0x5A, 0x13];
        let out = s.downlink(&payload, &mut rng).unwrap();
        assert_eq!(out.decoded, payload);
        assert_eq!(out.ber, 0.0);
        assert!(matches!(out.carriers, CarrierSet::SingleToneOok { .. }));
    }

    #[test]
    fn ook_trades_rate_for_sinr() {
        // The OOK fallback carries half the bits per symbol but has no
        // cross-tone interference, so its SINR exceeds OAQFM's
        // (interference-capped at this range) — the quantified version of
        // §6.2's degenerate case.
        let mut rng = GaussianSource::new(22);
        let ook = sim(4.0, 0.0).downlink(&[0x3C; 16], &mut rng).unwrap();
        let oaqfm = sim(4.0, 12.0).downlink(&[0x3C; 16], &mut rng).unwrap();
        assert!(
            ook.sinr_db() > oaqfm.sinr_db(),
            "OOK {:.1} dB vs OAQFM {:.1} dB",
            ook.sinr_db(),
            oaqfm.sinr_db()
        );
        assert_eq!(ook.ber, 0.0);
    }

    #[test]
    fn uplink_delivers_payload_at_short_range() {
        let s = sim(2.0, 12.0);
        let mut rng = GaussianSource::new(2);
        let payload = vec![0x55, 0xAA, 0x0F, 0xF0];
        let out = s.uplink(&payload, &mut rng).unwrap();
        assert_eq!(out.decoded, payload);
        assert_eq!(out.ber, 0.0);
    }

    #[test]
    fn uplink_snr_anchors_match_paper() {
        // 10 Mbps at 8 m ≈ 11 dB (BER ~2e-4); 40 Mbps at 6 m ≈ 10 dB.
        let mut cfg = SystemConfig::milback_default();
        cfg.uplink_symbol_rate_hz = 5e6; // 10 Mbps
        let s = LinkSimulator::new(cfg, Scene::single_node(8.0, 12f64.to_radians())).unwrap();
        let snr = s.uplink_analytic_snr_db().unwrap();
        assert!((snr - 11.0).abs() < 2.0, "10 Mbps @ 8 m: {snr:.1} dB");

        let cfg40 = SystemConfig::milback_default(); // 20 Msym/s = 40 Mbps
        let s40 = LinkSimulator::new(cfg40, Scene::single_node(6.0, 12f64.to_radians())).unwrap();
        let snr40 = s40.uplink_analytic_snr_db().unwrap();
        assert!((snr40 - 10.0).abs() < 2.0, "40 Mbps @ 6 m: {snr40:.1} dB");
    }

    #[test]
    fn uplink_snr_falls_at_40_log_r() {
        let s4 = sim(4.0, 12.0);
        let s8 = sim(8.0, 12.0);
        let d = s4.uplink_analytic_snr_db().unwrap() - s8.uplink_analytic_snr_db().unwrap();
        assert!(
            (d - 12.04).abs() < 0.1,
            "two-way slope {d:.2} dB per doubling"
        );
    }

    #[test]
    fn higher_rate_costs_6db() {
        let mut cfg10 = SystemConfig::milback_default();
        cfg10.uplink_symbol_rate_hz = 5e6;
        let scene = Scene::single_node(5.0, 12f64.to_radians());
        let s10 = LinkSimulator::new(cfg10, scene.clone()).unwrap();
        let s40 = LinkSimulator::new(SystemConfig::milback_default(), scene).unwrap();
        let d = s10.uplink_analytic_snr_db().unwrap() - s40.uplink_analytic_snr_db().unwrap();
        assert!((d - 6.02).abs() < 0.05, "rate penalty {d:.2} dB");
    }

    #[test]
    fn uplink_measured_snr_tracks_analytic() {
        let s = sim(5.0, 12.0);
        let mut rng = GaussianSource::new(3);
        let payload: Vec<u8> = rng.bytes(2048);
        let out = s.uplink(&payload, &mut rng).unwrap();
        assert!(
            (out.snr_db - out.analytic_snr_db).abs() < 1.0,
            "measured {:.1} vs analytic {:.1}",
            out.snr_db,
            out.analytic_snr_db
        );
    }

    #[test]
    fn uplink_ber_appears_at_long_range() {
        // Far enough out, errors must occur; analytic and measured BER
        // should agree within Monte-Carlo error.
        let mut cfg = SystemConfig::milback_default();
        cfg.uplink_symbol_rate_hz = 20e6;
        let s = LinkSimulator::new(cfg, Scene::single_node(9.0, 12f64.to_radians())).unwrap();
        let mut rng = GaussianSource::new(4);
        let payload: Vec<u8> = rng.bytes(20_000);
        let out = s.uplink(&payload, &mut rng).unwrap();
        let analytic = LinkSimulator::uplink_ber_from_snr(out.analytic_snr_db);
        assert!(out.ber > 0.0, "expected errors at 9 m / 40 Mbps");
        assert!(
            out.ber / analytic < 5.0 && analytic / out.ber < 5.0,
            "measured {:.2e} vs analytic {:.2e}",
            out.ber,
            analytic
        );
    }

    #[test]
    fn waveform_uplink_delivers_payload() {
        let s = sim(3.0, 12.0);
        let mut rng = GaussianSource::new(31);
        let payload = vec![0x42, 0x13, 0x37, 0xFF, 0x00];
        let out = s.uplink_waveform(&payload, 8, &mut rng).unwrap();
        assert_eq!(out.decoded, payload);
        assert_eq!(out.ber, 0.0);
    }

    #[test]
    fn waveform_and_symbol_uplink_agree_on_ber() {
        // At a range with measurable BER both paths should land within
        // Monte-Carlo error of each other.
        let mut cfg = SystemConfig::milback_default();
        cfg.uplink_symbol_rate_hz = 20e6;
        let s = LinkSimulator::new(cfg, Scene::single_node(9.0, 12f64.to_radians())).unwrap();
        let mut rng = GaussianSource::new(32);
        let payload: Vec<u8> = rng.bytes(20_000);
        let sym = s.uplink(&payload, &mut rng).unwrap();
        let wav = s.uplink_waveform(&payload, 4, &mut rng).unwrap();
        assert!(sym.ber > 0.0 && wav.ber > 0.0);
        let ratio = wav.ber / sym.ber;
        assert!(
            (0.3..3.0).contains(&ratio),
            "sym {:.2e} vs wav {:.2e}",
            sym.ber,
            wav.ber
        );
    }

    #[test]
    fn downlink_ber_mapping_reference() {
        // 12 dB SINR → ≈1e-8 (the Fig 14 annotation).
        let ber = LinkSimulator::downlink_ber_from_sinr(12.0);
        assert!(ber < 5e-8 && ber > 1e-9, "ber {ber:.2e}");
    }

    #[test]
    fn empty_scene_rejected() {
        let mut scene = Scene::single_node(2.0, 0.0);
        scene.nodes.clear();
        assert!(LinkSimulator::new(SystemConfig::milback_default(), scene).is_err());
    }

    #[test]
    fn deterministic_given_seed() {
        let s = sim(4.0, 12.0);
        let run = |seed| {
            let mut rng = GaussianSource::new(seed);
            s.uplink(&[1, 2, 3, 4, 5, 6, 7, 8], &mut rng).unwrap()
        };
        assert_eq!(run(9), run(9));
        // Different seed → same decode at this SNR, possibly different
        // measured-SNR estimate.
        assert_eq!(run(9).decoded, run(10).decoded);
    }

    #[test]
    fn transfer_dispatches_by_direction() {
        use milback_ap::waveform::LinkDirection;
        let s = sim(2.0, 12.0);
        let payload = vec![0xA5; 8];
        // Each dispatched path reproduces its dedicated method bit-for-bit
        // (same rng seed → same draws).
        let mut rng = GaussianSource::new(11);
        let via_transfer = s
            .transfer(LinkDirection::Downlink, &payload, &mut rng)
            .unwrap();
        let mut rng = GaussianSource::new(11);
        let direct = s.downlink(&payload, &mut rng).unwrap();
        assert_eq!(via_transfer, TransferOutcome::Downlink(direct));
        assert_eq!(via_transfer.decoded(), &payload[..]);
        assert!(via_transfer.quality_db() > 0.0);

        let mut rng = GaussianSource::new(12);
        let up = s
            .transfer(LinkDirection::Uplink, &payload, &mut rng)
            .unwrap();
        let mut rng = GaussianSource::new(12);
        let direct = s.uplink(&payload, &mut rng).unwrap();
        assert_eq!(up, TransferOutcome::Uplink(direct));
        assert!(up.ber() < 0.5);
    }
}
