//! Dense OAQFM — the §9.4 extension: "define denser OAQFM modulation
//! schemes, where each symbol represents more bits by considering
//! different amplitudes for each tone".
//!
//! With `L` amplitude levels per tone (level 0 = tone off), each symbol
//! carries `2·log2(L)` bits. The node's square-law detector maps tone
//! power linearly to voltage in its operating region, so multi-level
//! slicing works — at the cost of shrinking the decision distance by
//! `L−1`, which this module quantifies against range.

use milback_node::downlink::SinrReport;
use mmwave_sigproc::stats::q_function;
use mmwave_sigproc::units::db_to_lin;
use serde::{Deserialize, Serialize};

/// A dense OAQFM constellation: `levels` amplitude levels per tone.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DenseOaqfm {
    /// Amplitude levels per tone, including "off". Must be a power of two
    /// ≥ 2; `levels == 2` is ordinary OAQFM.
    pub levels: u32,
}

impl DenseOaqfm {
    /// Creates a constellation.
    ///
    /// # Panics
    /// Panics unless `levels` is a power of two ≥ 2.
    pub fn new(levels: u32) -> Self {
        assert!(
            levels >= 2 && levels.is_power_of_two(),
            "levels must be a power of two ≥ 2"
        );
        Self { levels }
    }

    /// Bits carried per symbol (both tones).
    pub fn bits_per_symbol(&self) -> u32 {
        2 * self.levels.ilog2()
    }

    /// Per-tone bits.
    pub fn bits_per_tone(&self) -> u32 {
        self.levels.ilog2()
    }

    /// The normalized detector-voltage levels (0..=1) the AP keys each
    /// tone to, assuming the detector's square-law region (power ∝
    /// voltage): uniformly spaced in detector output.
    pub fn voltage_levels(&self) -> Vec<f64> {
        (0..self.levels)
            .map(|l| l as f64 / (self.levels - 1) as f64)
            .collect()
    }

    /// Symbol error probability of one tone's L-level slicing at a given
    /// per-tone SINR (defined, as in Fig 14, on the full on/off swing):
    /// standard L-ary PAM with `2(L−1)/L · Q(d/2σ)` where the adjacent
    /// decision distance is `swing/(L−1)`.
    pub fn tone_symbol_error(&self, sinr_db: f64) -> f64 {
        let l = self.levels as f64;
        // SINR is (swing/2)²/σ² → swing/2σ = √SINR; adjacent half-distance
        // is (swing/2)/(L−1).
        let arg = db_to_lin(sinr_db).sqrt() / (l - 1.0);
        (2.0 * (l - 1.0) / l) * q_function(arg)
    }

    /// Approximate per-bit error rate with Gray-coded levels.
    pub fn ber(&self, sinr_db: f64) -> f64 {
        self.tone_symbol_error(sinr_db) / self.bits_per_tone() as f64
    }

    /// Throughput at a symbol rate, bits/second.
    pub fn throughput_bps(&self, symbol_rate_hz: f64) -> f64 {
        self.bits_per_symbol() as f64 * symbol_rate_hz
    }

    /// Effective *goodput* (throughput × packet success for `bits`-bit
    /// packets) — the metric that decides which density wins at a given
    /// SINR.
    pub fn goodput_bps(&self, symbol_rate_hz: f64, sinr_db: f64, packet_bits: u32) -> f64 {
        let ber = self.ber(sinr_db).min(0.5);
        let success = (1.0 - ber).powi(packet_bits as i32);
        self.throughput_bps(symbol_rate_hz) * success
    }

    /// The densest constellation that keeps BER below `target_ber` at a
    /// given SINR — the adaptive-modulation decision rule.
    pub fn densest_for(sinr_db: f64, target_ber: f64, max_levels: u32) -> Self {
        let mut best = DenseOaqfm::new(2);
        let mut l = 2;
        while l <= max_levels {
            let cand = DenseOaqfm::new(l);
            if cand.ber(sinr_db) <= target_ber {
                best = cand;
            }
            l *= 2;
        }
        best
    }

    /// Multi-level slicing of symbol statistics (normalized 0..=1 swing):
    /// nearest level wins; returns level indices.
    pub fn slice(&self, stats: &[f64]) -> Vec<u32> {
        let levels = self.voltage_levels();
        stats
            .iter()
            .map(|&v| {
                let mut best = 0u32;
                let mut bd = f64::MAX;
                for (i, &lv) in levels.iter().enumerate() {
                    let d = (v - lv).abs();
                    if d < bd {
                        bd = d;
                        best = i as u32;
                    }
                }
                best
            })
            .collect()
    }

    /// SINR (dB) required for a target BER — the inverse of [`ber`](Self::ber),
    /// found by bisection.
    pub fn required_sinr_db(&self, target_ber: f64) -> f64 {
        let (mut lo, mut hi) = (-10.0, 60.0);
        for _ in 0..60 {
            let mid = (lo + hi) / 2.0;
            if self.ber(mid) > target_ber {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        (lo + hi) / 2.0
    }
}

/// Picks the best density for a measured link and reports the resulting
/// rate — the "adaptive OAQFM" controller.
pub fn adapt_density(
    sinr: &SinrReport,
    symbol_rate_hz: f64,
    target_ber: f64,
    max_levels: u32,
) -> (DenseOaqfm, f64) {
    let scheme = DenseOaqfm::densest_for(sinr.sinr_db(), target_ber, max_levels);
    (scheme, scheme.throughput_bps(symbol_rate_hz))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_2_is_plain_oaqfm() {
        let d = DenseOaqfm::new(2);
        assert_eq!(d.bits_per_symbol(), 2);
        assert_eq!(d.voltage_levels(), vec![0.0, 1.0]);
    }

    #[test]
    fn density_scales_bits() {
        assert_eq!(DenseOaqfm::new(4).bits_per_symbol(), 4);
        assert_eq!(DenseOaqfm::new(8).bits_per_symbol(), 6);
        assert_eq!(DenseOaqfm::new(4).throughput_bps(18e6), 72e6);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        DenseOaqfm::new(3);
    }

    #[test]
    fn denser_needs_more_sinr() {
        let b2 = DenseOaqfm::new(2).required_sinr_db(1e-6);
        let b4 = DenseOaqfm::new(4).required_sinr_db(1e-6);
        let b8 = DenseOaqfm::new(8).required_sinr_db(1e-6);
        assert!(b2 < b4 && b4 < b8);
        // 2→4 levels costs ≈ 20log10(3) ≈ 9.5 dB of required SINR.
        assert!((b4 - b2 - 9.5).abs() < 1.0, "penalty {:.1}", b4 - b2);
    }

    #[test]
    fn ber_monotone_in_sinr_and_density() {
        for &l in &[2u32, 4, 8] {
            let d = DenseOaqfm::new(l);
            assert!(d.ber(10.0) > d.ber(20.0));
        }
        assert!(DenseOaqfm::new(8).ber(18.0) > DenseOaqfm::new(2).ber(18.0));
    }

    #[test]
    fn adaptive_rule_picks_density_by_sinr() {
        // High SINR (short range) → denser; low SINR (long range) → plain.
        let high = DenseOaqfm::densest_for(30.0, 1e-6, 8);
        let low = DenseOaqfm::densest_for(13.0, 1e-6, 8);
        assert!(high.levels > low.levels, "high {:?} low {:?}", high, low);
        assert_eq!(low.levels, 2);
    }

    #[test]
    fn goodput_crossover_exists() {
        // Somewhere between 13 and 35 dB the 4-level scheme overtakes the
        // 2-level scheme in goodput — the adaptive controller's raison
        // d'être.
        let d2 = DenseOaqfm::new(2);
        let d4 = DenseOaqfm::new(4);
        let g = |d: &DenseOaqfm, sinr: f64| d.goodput_bps(18e6, sinr, 1024);
        assert!(g(&d2, 13.0) > g(&d4, 13.0), "plain must win at low SINR");
        assert!(g(&d4, 35.0) > g(&d2, 35.0), "dense must win at high SINR");
    }

    #[test]
    fn slicing_recovers_levels() {
        let d = DenseOaqfm::new(4);
        let stats = [0.02, 0.31, 0.35, 0.64, 0.95, 1.02];
        assert_eq!(d.slice(&stats), vec![0, 1, 1, 2, 3, 3]);
    }

    #[test]
    fn slicing_with_noise_at_adequate_sinr() {
        use mmwave_sigproc::random::GaussianSource;
        let d = DenseOaqfm::new(4);
        let mut rng = GaussianSource::new(3);
        let tx: Vec<u32> = (0..3000)
            .map(|_| (rng.uniform(0.0, 4.0) as u32).min(3))
            .collect();
        let sinr_db = d.required_sinr_db(1e-3) + 1.0;
        let sigma = 0.5 / db_to_lin(sinr_db).sqrt();
        let stats: Vec<f64> = tx
            .iter()
            .map(|&l| l as f64 / 3.0 + rng.sample(sigma))
            .collect();
        let rx = d.slice(&stats);
        let errors = tx.iter().zip(&rx).filter(|(a, b)| a != b).count();
        let ser = errors as f64 / tx.len() as f64;
        assert!(ser < 2e-2, "symbol error rate {ser:.3e}");
    }

    #[test]
    fn adapt_density_reports_rate() {
        let report = SinrReport {
            signal_power: 1.0,
            interference_power: 0.0,
            noise_power: 1e-3, // 30 dB
        };
        let (scheme, rate) = adapt_density(&report, 18e6, 1e-6, 8);
        assert!(scheme.levels >= 4);
        assert!(rate > 36e6);
    }
}
