//! System-wide configuration with the paper's defaults (§8).
//!
//! Every experiment in the bench harness starts from
//! [`SystemConfig::milback_default`] and overrides only what its sweep
//! varies, so the parameter provenance stays auditable in one place.

use milback_ap::txrx::ApRadio;
use milback_ap::waveform::FmcwConfig;
use milback_node::node::NodeHardware;
use mmwave_rf::channel::MirrorReflection;
use serde::{Deserialize, Serialize};

/// Full system configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SystemConfig {
    /// AP radio chains.
    pub ap: ApRadio,
    /// FMCW / preamble waveform parameters.
    pub fmcw: FmcwConfig,
    /// Node hardware.
    pub node: NodeHardware,
    /// The node's structural mirror reflection.
    pub mirror: MirrorReflection,
    /// Node toggle rate during localization, Hz (10 kHz).
    pub localization_toggle_hz: f64,
    /// Downlink symbol rate, symbols/second (18 Msym/s → 36 Mbps).
    pub downlink_symbol_rate_hz: f64,
    /// Uplink symbol rate, symbols/second (20 Msym/s → 40 Mbps).
    pub uplink_symbol_rate_hz: f64,
    /// Dense simulation rate for detector traces, Hz.
    pub trace_rate_hz: f64,
    /// Monte-Carlo RNG seed.
    pub seed: u64,
}

impl SystemConfig {
    /// The paper's operating point.
    pub fn milback_default() -> Self {
        Self {
            ap: ApRadio::milback_default(),
            fmcw: FmcwConfig::milback_default(),
            node: NodeHardware::milback_default(),
            mirror: MirrorReflection::milback_default(),
            localization_toggle_hz: 10e3,
            downlink_symbol_rate_hz: 18e6,
            uplink_symbol_rate_hz: 20e6,
            trace_rate_hz: 200e6,
            seed: 0x4D31_4C42, // "M1LB"
        }
    }

    /// Validates cross-parameter consistency.
    pub fn validate(&self) -> crate::error::Result<()> {
        use crate::error::MilbackError;
        if self.downlink_symbol_rate_hz > self.node.detector_a.max_symbol_rate_hz() {
            return Err(MilbackError::Config(format!(
                "downlink symbol rate {:.3e} exceeds detector limit {:.3e}",
                self.downlink_symbol_rate_hz,
                self.node.detector_a.max_symbol_rate_hz()
            )));
        }
        if self.uplink_symbol_rate_hz > self.node.switch_a.max_toggle_hz {
            return Err(MilbackError::Config(format!(
                "uplink symbol rate {:.3e} exceeds switch limit {:.3e}",
                self.uplink_symbol_rate_hz, self.node.switch_a.max_toggle_hz
            )));
        }
        if self.trace_rate_hz < 4.0 * self.downlink_symbol_rate_hz {
            return Err(MilbackError::Config(
                "trace rate must oversample the downlink by ≥4×".into(),
            ));
        }
        if self.localization_toggle_hz <= 0.0 {
            return Err(MilbackError::Config("toggle rate must be positive".into()));
        }
        Ok(())
    }

    /// Downlink bit rate, bits/second (2 bits/symbol).
    pub fn downlink_bit_rate_hz(&self) -> f64 {
        2.0 * self.downlink_symbol_rate_hz
    }

    /// Uplink bit rate, bits/second (2 bits/symbol).
    pub fn uplink_bit_rate_hz(&self) -> f64 {
        2.0 * self.uplink_symbol_rate_hz
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        SystemConfig::milback_default().validate().unwrap();
    }

    #[test]
    fn default_rates_match_paper() {
        let c = SystemConfig::milback_default();
        assert_eq!(c.downlink_bit_rate_hz(), 36e6);
        assert_eq!(c.uplink_bit_rate_hz(), 40e6);
        assert_eq!(c.localization_toggle_hz, 10e3);
    }

    #[test]
    fn excessive_downlink_rate_rejected() {
        let mut c = SystemConfig::milback_default();
        c.downlink_symbol_rate_hz = 100e6;
        c.trace_rate_hz = 800e6;
        assert!(c.validate().is_err());
    }

    #[test]
    fn excessive_uplink_rate_rejected() {
        let mut c = SystemConfig::milback_default();
        c.uplink_symbol_rate_hz = 300e6;
        assert!(c.validate().is_err());
    }

    #[test]
    fn undersampled_trace_rejected() {
        let mut c = SystemConfig::milback_default();
        c.trace_rate_hz = 20e6;
        assert!(c.validate().is_err());
    }

    #[test]
    fn config_is_cloneable_and_stable() {
        let c = SystemConfig::milback_default();
        let c2 = c.clone();
        assert_eq!(c2.seed, c.seed);
        assert_eq!(c2.fmcw, c.fmcw);
        assert_eq!(c2.ap, c.ap);
    }
}
