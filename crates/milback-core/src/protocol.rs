//! The MilBack joint communication-and-localization protocol (§7, Fig 8).
//!
//! A packet is: **Preamble Field 1** (triangular chirps — lets the node
//! sense its orientation, and the chirp count tells it whether the payload
//! is uplink [3 chirps] or downlink [2 chirps + gap]) → **Preamble Field 2**
//! (five sawtooth chirps while the node toggles — AP-side localization and
//! orientation) → **Payload** (OAQFM uplink or downlink data).
//!
//! This module owns packet framing, timing and (de)serialization, plus the
//! node-side chirp-count detector that decodes the Field-1 mode signal.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use milback_ap::waveform::{FmcwConfig, LinkDirection};
use serde::{Deserialize, Serialize};

/// Gap between the two Field-1 chirps that signals downlink, seconds.
pub const FIELD1_GAP_S: f64 = 45e-6;

/// Magic byte opening every serialized MilBack frame.
pub const FRAME_MAGIC: u8 = 0xB7;

/// A MilBack packet: direction, payload, and the timing derived from the
/// waveform configuration.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Packet {
    /// Whether the payload is uplink or downlink.
    pub direction: LinkDirection,
    /// Payload bytes.
    pub payload: Vec<u8>,
}

impl Packet {
    /// Creates a downlink packet.
    pub fn downlink(payload: impl Into<Vec<u8>>) -> Self {
        Self { direction: LinkDirection::Downlink, payload: payload.into() }
    }

    /// Creates an uplink packet (payload supplied by the node).
    pub fn uplink(payload: impl Into<Vec<u8>>) -> Self {
        Self { direction: LinkDirection::Uplink, payload: payload.into() }
    }

    /// Airtime of the preamble, seconds.
    pub fn preamble_duration_s(&self, fmcw: &FmcwConfig) -> f64 {
        let field1 = match self.direction {
            LinkDirection::Uplink => 3.0 * fmcw.field1_chirp_s,
            LinkDirection::Downlink => 2.0 * fmcw.field1_chirp_s + FIELD1_GAP_S,
        };
        // Field 2: five chirps at the chirp repetition interval.
        let field2 = 5.0 * fmcw.chirp_interval_s;
        field1 + field2
    }

    /// Airtime of the payload at a symbol rate (2 bits/symbol), seconds.
    pub fn payload_duration_s(&self, symbol_rate_hz: f64) -> f64 {
        assert!(symbol_rate_hz > 0.0);
        (self.payload.len() as f64 * 4.0) / symbol_rate_hz
    }

    /// Total packet airtime, seconds.
    pub fn duration_s(&self, fmcw: &FmcwConfig, symbol_rate_hz: f64) -> f64 {
        self.preamble_duration_s(fmcw) + self.payload_duration_s(symbol_rate_hz)
    }

    /// Protocol efficiency: payload airtime over total airtime.
    pub fn efficiency(&self, fmcw: &FmcwConfig, symbol_rate_hz: f64) -> f64 {
        self.payload_duration_s(symbol_rate_hz) / self.duration_s(fmcw, symbol_rate_hz)
    }

    /// Serializes to a length-prefixed wire frame:
    /// `magic(1) | direction(1) | len(u16 BE) | payload | checksum(1)`.
    pub fn to_bytes(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.payload.len() + 5);
        buf.put_u8(FRAME_MAGIC);
        buf.put_u8(match self.direction {
            LinkDirection::Uplink => 0x01,
            LinkDirection::Downlink => 0x02,
        });
        assert!(self.payload.len() <= u16::MAX as usize, "payload too large");
        buf.put_u16(self.payload.len() as u16);
        buf.put_slice(&self.payload);
        buf.put_u8(checksum(&buf));
        buf.freeze()
    }

    /// Parses a wire frame produced by [`to_bytes`](Self::to_bytes).
    pub fn from_bytes(mut data: Bytes) -> Result<Self, FrameError> {
        if data.len() < 5 {
            return Err(FrameError::Truncated { len: data.len() });
        }
        let expected_sum = checksum(&data[..data.len() - 1]);
        let magic = data.get_u8();
        if magic != FRAME_MAGIC {
            return Err(FrameError::BadMagic { got: magic });
        }
        let direction = match data.get_u8() {
            0x01 => LinkDirection::Uplink,
            0x02 => LinkDirection::Downlink,
            other => return Err(FrameError::BadDirection { got: other }),
        };
        let len = data.get_u16() as usize;
        if data.len() != len + 1 {
            return Err(FrameError::LengthMismatch { declared: len, actual: data.len() - 1 });
        }
        let payload = data.split_to(len).to_vec();
        let sum = data.get_u8();
        if sum != expected_sum {
            return Err(FrameError::BadChecksum { expected: expected_sum, got: sum });
        }
        Ok(Self { direction, payload })
    }
}

/// XOR checksum over a byte slice.
fn checksum(data: &[u8]) -> u8 {
    data.iter().fold(0u8, |a, &b| a ^ b)
}

/// Wire-frame parse errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// Fewer bytes than the minimum frame.
    Truncated {
        /// Bytes available.
        len: usize,
    },
    /// Wrong magic byte.
    BadMagic {
        /// The byte found.
        got: u8,
    },
    /// Unknown direction code.
    BadDirection {
        /// The code found.
        got: u8,
    },
    /// Declared and actual payload lengths disagree.
    LengthMismatch {
        /// Declared length.
        declared: usize,
        /// Actual length.
        actual: usize,
    },
    /// Checksum failure.
    BadChecksum {
        /// Expected checksum.
        expected: u8,
        /// Received checksum.
        got: u8,
    },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Truncated { len } => write!(f, "frame truncated at {len} bytes"),
            FrameError::BadMagic { got } => write!(f, "bad magic byte 0x{got:02X}"),
            FrameError::BadDirection { got } => write!(f, "bad direction code 0x{got:02X}"),
            FrameError::LengthMismatch { declared, actual } => {
                write!(f, "length field says {declared}, payload has {actual}")
            }
            FrameError::BadChecksum { expected, got } => {
                write!(f, "checksum 0x{got:02X} != expected 0x{expected:02X}")
            }
        }
    }
}

impl std::error::Error for FrameError {}

/// Node-side Field-1 detector: counts triangular-chirp power bursts in a
/// detector trace and decodes the signalled direction (§7).
#[derive(Debug, Clone, Copy)]
pub struct Field1Detector {
    /// Power threshold separating chirp activity from the gap.
    pub threshold: f64,
    /// Minimum quiet samples separating two bursts.
    pub min_gap_samples: usize,
}

impl Field1Detector {
    /// Creates a detector.
    pub fn new(threshold: f64, min_gap_samples: usize) -> Self {
        Self { threshold, min_gap_samples }
    }

    /// Counts activity bursts in a node detector trace.
    pub fn count_bursts(&self, trace: &[f64]) -> usize {
        let mut bursts = 0;
        let mut quiet = self.min_gap_samples; // start "quiet enough"
        for &v in trace {
            if v > self.threshold {
                if quiet >= self.min_gap_samples {
                    bursts += 1;
                }
                quiet = 0;
            } else {
                quiet = quiet.saturating_add(1);
            }
        }
        bursts
    }

    /// Decodes the direction from a trace.
    pub fn detect_direction(&self, trace: &[f64]) -> Option<LinkDirection> {
        LinkDirection::from_chirp_count(self.count_bursts(trace))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrip() {
        for packet in [
            Packet::uplink(vec![1, 2, 3]),
            Packet::downlink(vec![]),
            Packet::downlink(vec![0xFF; 1000]),
        ] {
            let wire = packet.to_bytes();
            assert_eq!(Packet::from_bytes(wire).unwrap(), packet);
        }
    }

    #[test]
    fn frame_detects_corruption() {
        let wire = Packet::uplink(vec![1, 2, 3]).to_bytes();
        let mut corrupted = wire.to_vec();
        corrupted[4] ^= 0x10;
        let err = Packet::from_bytes(Bytes::from(corrupted)).unwrap_err();
        assert!(matches!(err, FrameError::BadChecksum { .. }));
    }

    #[test]
    fn frame_rejects_bad_magic_and_direction() {
        let wire = Packet::uplink(vec![9]).to_bytes();
        let mut bad_magic = wire.to_vec();
        bad_magic[0] = 0x00;
        assert!(matches!(
            Packet::from_bytes(Bytes::from(bad_magic)).unwrap_err(),
            FrameError::BadMagic { .. }
        ));
        let mut bad_dir = wire.to_vec();
        bad_dir[1] = 0x07;
        // Fix checksum so the direction check is what fails... checksum is
        // verified against the received buffer, so recompute it.
        let n = bad_dir.len();
        bad_dir[n - 1] = super::checksum(&bad_dir[..n - 1]);
        assert!(matches!(
            Packet::from_bytes(Bytes::from(bad_dir)).unwrap_err(),
            FrameError::BadDirection { got: 0x07 }
        ));
    }

    #[test]
    fn frame_rejects_truncation_and_length_lies() {
        assert!(matches!(
            Packet::from_bytes(Bytes::from(vec![1, 2])).unwrap_err(),
            FrameError::Truncated { len: 2 }
        ));
        let wire = Packet::uplink(vec![1, 2, 3, 4]).to_bytes();
        let mut lying = wire.to_vec();
        lying[3] = 2; // declare 2 bytes instead of 4
        assert!(matches!(
            Packet::from_bytes(Bytes::from(lying)).unwrap_err(),
            FrameError::LengthMismatch { .. }
        ));
    }

    #[test]
    fn preamble_timing_matches_protocol() {
        let fmcw = FmcwConfig::milback_default();
        let up = Packet::uplink(vec![0; 10]);
        let down = Packet::downlink(vec![0; 10]);
        // Uplink: 3×45 µs field 1 + 5×100 µs field 2 = 635 µs.
        assert!((up.preamble_duration_s(&fmcw) - 635e-6).abs() < 1e-9);
        // Downlink: 2×45 + 45 gap + 500 = 635 µs as well.
        assert!((down.preamble_duration_s(&fmcw) - 635e-6).abs() < 1e-9);
    }

    #[test]
    fn payload_timing_and_efficiency() {
        let fmcw = FmcwConfig::milback_default();
        let p = Packet::downlink(vec![0; 4500]); // 18000 symbols
        // At 18 Msym/s: payload = 1 ms; preamble 635 µs → efficiency ≈ 0.61.
        let eff = p.efficiency(&fmcw, 18e6);
        assert!((eff - 0.61).abs() < 0.02, "efficiency {eff:.3}");
        assert!((p.payload_duration_s(18e6) - 1e-3).abs() < 1e-9);
    }

    #[test]
    fn field1_burst_counting() {
        let d = Field1Detector::new(0.5, 3);
        // Three bursts separated by quiet gaps.
        let mut trace = Vec::new();
        for _ in 0..3 {
            trace.extend([1.0; 10]);
            trace.extend([0.0; 5]);
        }
        assert_eq!(d.count_bursts(&trace), 3);
        assert_eq!(d.detect_direction(&trace), Some(LinkDirection::Uplink));
    }

    #[test]
    fn field1_two_bursts_mean_downlink() {
        let d = Field1Detector::new(0.5, 3);
        let mut trace = vec![1.0; 10];
        trace.extend([0.0; 8]);
        trace.extend([1.0; 10]);
        assert_eq!(d.detect_direction(&trace), Some(LinkDirection::Downlink));
    }

    #[test]
    fn field1_ripple_within_burst_not_double_counted() {
        let d = Field1Detector::new(0.5, 5);
        // A burst with one sample dipping below threshold.
        let trace = [1.0, 1.0, 0.2, 1.0, 1.0, 0.0, 0.0, 0.0, 0.0, 0.0];
        assert_eq!(d.count_bursts(&trace), 1);
    }

    #[test]
    fn field1_unknown_counts_yield_none() {
        let d = Field1Detector::new(0.5, 3);
        assert_eq!(d.detect_direction(&[0.0; 20]), None); // zero bursts
        let mut five = Vec::new();
        for _ in 0..5 {
            five.extend([1.0; 4]);
            five.extend([0.0; 6]);
        }
        assert_eq!(d.detect_direction(&five), None);
    }
}
