//! The MilBack joint communication-and-localization protocol (§7, Fig 8).
//!
//! A packet is: **Preamble Field 1** (triangular chirps — lets the node
//! sense its orientation, and the chirp count tells it whether the payload
//! is uplink [3 chirps] or downlink [2 chirps + gap]) → **Preamble Field 2**
//! (five sawtooth chirps while the node toggles — AP-side localization and
//! orientation) → **Payload** (OAQFM uplink or downlink data).
//!
//! This module owns packet framing, timing and (de)serialization, plus the
//! node-side chirp-count detector that decodes the Field-1 mode signal.

use crate::engine::{secs_to_ps, TimePs};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use milback_ap::waveform::{FmcwConfig, LinkDirection};
use serde::{Deserialize, Serialize};

/// Gap between the two Field-1 chirps that signals downlink, seconds.
pub const FIELD1_GAP_S: f64 = 45e-6;

/// Magic byte opening every serialized MilBack frame.
pub const FRAME_MAGIC: u8 = 0xB7;

/// A MilBack packet: direction, payload, and the timing derived from the
/// waveform configuration.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Packet {
    /// Whether the payload is uplink or downlink.
    pub direction: LinkDirection,
    /// Payload bytes.
    pub payload: Vec<u8>,
}

impl Packet {
    /// Creates a downlink packet.
    pub fn downlink(payload: impl Into<Vec<u8>>) -> Self {
        Self {
            direction: LinkDirection::Downlink,
            payload: payload.into(),
        }
    }

    /// Creates an uplink packet (payload supplied by the node).
    pub fn uplink(payload: impl Into<Vec<u8>>) -> Self {
        Self {
            direction: LinkDirection::Uplink,
            payload: payload.into(),
        }
    }

    /// Airtime of the preamble, seconds.
    pub fn preamble_duration_s(&self, fmcw: &FmcwConfig) -> f64 {
        let field1 = match self.direction {
            LinkDirection::Uplink => 3.0 * fmcw.field1_chirp_s,
            LinkDirection::Downlink => 2.0 * fmcw.field1_chirp_s + FIELD1_GAP_S,
        };
        // Field 2: five chirps at the chirp repetition interval.
        let field2 = 5.0 * fmcw.chirp_interval_s;
        field1 + field2
    }

    /// Airtime of the payload at a symbol rate (2 bits/symbol), seconds.
    pub fn payload_duration_s(&self, symbol_rate_hz: f64) -> f64 {
        assert!(symbol_rate_hz > 0.0);
        (self.payload.len() as f64 * 4.0) / symbol_rate_hz
    }

    /// Total packet airtime, seconds.
    pub fn duration_s(&self, fmcw: &FmcwConfig, symbol_rate_hz: f64) -> f64 {
        self.preamble_duration_s(fmcw) + self.payload_duration_s(symbol_rate_hz)
    }

    /// Protocol efficiency: payload airtime over total airtime.
    pub fn efficiency(&self, fmcw: &FmcwConfig, symbol_rate_hz: f64) -> f64 {
        self.payload_duration_s(symbol_rate_hz) / self.duration_s(fmcw, symbol_rate_hz)
    }

    /// [`preamble_duration_s`](Self::preamble_duration_s) on the engine
    /// clock, picoseconds.
    pub fn preamble_duration_ps(&self, fmcw: &FmcwConfig) -> TimePs {
        secs_to_ps(self.preamble_duration_s(fmcw))
    }

    /// [`payload_duration_s`](Self::payload_duration_s) on the engine
    /// clock, picoseconds.
    pub fn payload_duration_ps(&self, symbol_rate_hz: f64) -> TimePs {
        secs_to_ps(self.payload_duration_s(symbol_rate_hz))
    }

    /// [`duration_s`](Self::duration_s) on the engine clock, picoseconds.
    pub fn duration_ps(&self, fmcw: &FmcwConfig, symbol_rate_hz: f64) -> TimePs {
        secs_to_ps(self.duration_s(fmcw, symbol_rate_hz))
    }

    /// Serializes to a length-prefixed wire frame:
    /// `magic(1) | direction(1) | len(u16 BE) | payload | checksum(1)`.
    pub fn to_bytes(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.payload.len() + 5);
        buf.put_u8(FRAME_MAGIC);
        buf.put_u8(match self.direction {
            LinkDirection::Uplink => 0x01,
            LinkDirection::Downlink => 0x02,
        });
        assert!(self.payload.len() <= u16::MAX as usize, "payload too large");
        buf.put_u16(self.payload.len() as u16);
        buf.put_slice(&self.payload);
        buf.put_u8(checksum(&buf));
        buf.freeze()
    }

    /// Parses a wire frame produced by [`to_bytes`](Self::to_bytes).
    pub fn from_bytes(mut data: Bytes) -> Result<Self, FrameError> {
        if data.len() < 5 {
            return Err(FrameError::Truncated { len: data.len() });
        }
        let expected_sum = checksum(&data[..data.len() - 1]);
        let magic = data.get_u8();
        if magic != FRAME_MAGIC {
            return Err(FrameError::BadMagic { got: magic });
        }
        let direction = match data.get_u8() {
            0x01 => LinkDirection::Uplink,
            0x02 => LinkDirection::Downlink,
            other => return Err(FrameError::BadDirection { got: other }),
        };
        let len = data.get_u16() as usize;
        if data.len() != len + 1 {
            return Err(FrameError::LengthMismatch {
                declared: len,
                actual: data.len() - 1,
            });
        }
        let payload = data.split_to(len).to_vec();
        let sum = data.get_u8();
        if sum != expected_sum {
            return Err(FrameError::BadChecksum {
                expected: expected_sum,
                got: sum,
            });
        }
        Ok(Self { direction, payload })
    }
}

/// XOR checksum over a byte slice.
fn checksum(data: &[u8]) -> u8 {
    data.iter().fold(0u8, |a, &b| a ^ b)
}

/// Upper bound on slots per frame: a u16 slot index on the wire plus a
/// sanity ceiling — a frame longer than this is a configuration mistake,
/// not a schedule.
pub const MAX_SLOTS_PER_FRAME: usize = 4096;

/// The multi-node airtime plan: frames of equal slots, each slot wide
/// enough for one complete packet plus a guard interval. All arithmetic
/// is on the engine clock (integer picoseconds) so a slot boundary
/// computed anywhere in the stack is the *same* tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SlotPlan {
    /// Slots per frame.
    pub slots_per_frame: usize,
    /// One slot's width, picoseconds (packet airtime + guard).
    pub slot_ps: TimePs,
}

impl SlotPlan {
    /// Builds a plan of `slots_per_frame` slots sized for `packet` at
    /// `symbol_rate_hz`, with `guard_s` of turnaround per slot.
    pub fn for_packet(
        slots_per_frame: usize,
        packet: &Packet,
        fmcw: &FmcwConfig,
        symbol_rate_hz: f64,
        guard_s: f64,
    ) -> crate::error::Result<Self> {
        use crate::error::MilbackError;
        if slots_per_frame == 0 {
            return Err(MilbackError::Config(
                "a frame needs at least one slot".into(),
            ));
        }
        if slots_per_frame > MAX_SLOTS_PER_FRAME {
            return Err(MilbackError::Config(format!(
                "{slots_per_frame} slots per frame exceeds the {MAX_SLOTS_PER_FRAME}-slot limit"
            )));
        }
        if guard_s < 0.0 {
            return Err(MilbackError::Config(
                "guard interval cannot be negative".into(),
            ));
        }
        let slot_ps = packet.duration_ps(fmcw, symbol_rate_hz) + secs_to_ps(guard_s);
        if slot_ps == 0 {
            return Err(MilbackError::Config("slot width must be positive".into()));
        }
        Ok(Self {
            slots_per_frame,
            slot_ps,
        })
    }

    /// One frame's airtime, picoseconds.
    pub fn frame_ps(&self) -> TimePs {
        self.slot_ps * self.slots_per_frame as TimePs
    }

    /// Absolute start time of `(frame, slot)` on the engine clock.
    pub fn slot_start_ps(&self, frame: usize, slot: usize) -> TimePs {
        debug_assert!(slot < self.slots_per_frame);
        frame as TimePs * self.frame_ps() + slot as TimePs * self.slot_ps
    }

    /// The slot node `node_idx` contends in during `frame` — a
    /// SplitMix64-style hash of `(seed, node, frame)`, so the pattern is
    /// deterministic, uniform, and varies per frame (slotted-ALOHA
    /// rather than a fixed TDMA assignment; collisions are resolved by
    /// retrying in the next frame).
    pub fn slot_for(&self, node_idx: usize, frame: usize, seed: u64) -> usize {
        let mut z = seed
            ^ (node_idx as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ (frame as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z % self.slots_per_frame as u64) as usize
    }
}

/// Wire-frame parse errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// Fewer bytes than the minimum frame.
    Truncated {
        /// Bytes available.
        len: usize,
    },
    /// Wrong magic byte.
    BadMagic {
        /// The byte found.
        got: u8,
    },
    /// Unknown direction code.
    BadDirection {
        /// The code found.
        got: u8,
    },
    /// Declared and actual payload lengths disagree.
    LengthMismatch {
        /// Declared length.
        declared: usize,
        /// Actual length.
        actual: usize,
    },
    /// Checksum failure.
    BadChecksum {
        /// Expected checksum.
        expected: u8,
        /// Received checksum.
        got: u8,
    },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Truncated { len } => write!(f, "frame truncated at {len} bytes"),
            FrameError::BadMagic { got } => write!(f, "bad magic byte 0x{got:02X}"),
            FrameError::BadDirection { got } => write!(f, "bad direction code 0x{got:02X}"),
            FrameError::LengthMismatch { declared, actual } => {
                write!(f, "length field says {declared}, payload has {actual}")
            }
            FrameError::BadChecksum { expected, got } => {
                write!(f, "checksum 0x{got:02X} != expected 0x{expected:02X}")
            }
        }
    }
}

impl std::error::Error for FrameError {}

/// Node-side Field-1 detector: counts triangular-chirp power bursts in a
/// detector trace and decodes the signalled direction (§7).
#[derive(Debug, Clone, Copy)]
pub struct Field1Detector {
    /// Power threshold separating chirp activity from the gap.
    pub threshold: f64,
    /// Minimum quiet samples separating two bursts.
    pub min_gap_samples: usize,
}

impl Field1Detector {
    /// Creates a detector.
    pub fn new(threshold: f64, min_gap_samples: usize) -> Self {
        Self {
            threshold,
            min_gap_samples,
        }
    }

    /// Counts activity bursts in a node detector trace.
    pub fn count_bursts(&self, trace: &[f64]) -> usize {
        let mut bursts = 0;
        let mut quiet = self.min_gap_samples; // start "quiet enough"
        for &v in trace {
            if v > self.threshold {
                if quiet >= self.min_gap_samples {
                    bursts += 1;
                }
                quiet = 0;
            } else {
                quiet = quiet.saturating_add(1);
            }
        }
        bursts
    }

    /// Decodes the direction from a trace.
    pub fn detect_direction(&self, trace: &[f64]) -> Option<LinkDirection> {
        LinkDirection::from_chirp_count(self.count_bursts(trace))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrip() {
        for packet in [
            Packet::uplink(vec![1, 2, 3]),
            Packet::downlink(vec![]),
            Packet::downlink(vec![0xFF; 1000]),
        ] {
            let wire = packet.to_bytes();
            assert_eq!(Packet::from_bytes(wire).unwrap(), packet);
        }
    }

    #[test]
    fn frame_detects_corruption() {
        let wire = Packet::uplink(vec![1, 2, 3]).to_bytes();
        let mut corrupted = wire.to_vec();
        corrupted[4] ^= 0x10;
        let err = Packet::from_bytes(Bytes::from(corrupted)).unwrap_err();
        assert!(matches!(err, FrameError::BadChecksum { .. }));
    }

    #[test]
    fn frame_rejects_bad_magic_and_direction() {
        let wire = Packet::uplink(vec![9]).to_bytes();
        let mut bad_magic = wire.to_vec();
        bad_magic[0] = 0x00;
        assert!(matches!(
            Packet::from_bytes(Bytes::from(bad_magic)).unwrap_err(),
            FrameError::BadMagic { .. }
        ));
        let mut bad_dir = wire.to_vec();
        bad_dir[1] = 0x07;
        // Fix checksum so the direction check is what fails... checksum is
        // verified against the received buffer, so recompute it.
        let n = bad_dir.len();
        bad_dir[n - 1] = super::checksum(&bad_dir[..n - 1]);
        assert!(matches!(
            Packet::from_bytes(Bytes::from(bad_dir)).unwrap_err(),
            FrameError::BadDirection { got: 0x07 }
        ));
    }

    #[test]
    fn frame_rejects_truncation_and_length_lies() {
        assert!(matches!(
            Packet::from_bytes(Bytes::from(vec![1, 2])).unwrap_err(),
            FrameError::Truncated { len: 2 }
        ));
        let wire = Packet::uplink(vec![1, 2, 3, 4]).to_bytes();
        let mut lying = wire.to_vec();
        lying[3] = 2; // declare 2 bytes instead of 4
        assert!(matches!(
            Packet::from_bytes(Bytes::from(lying)).unwrap_err(),
            FrameError::LengthMismatch { .. }
        ));
    }

    #[test]
    fn preamble_timing_matches_protocol() {
        let fmcw = FmcwConfig::milback_default();
        let up = Packet::uplink(vec![0; 10]);
        let down = Packet::downlink(vec![0; 10]);
        // Uplink: 3×45 µs field 1 + 5×100 µs field 2 = 635 µs.
        assert!((up.preamble_duration_s(&fmcw) - 635e-6).abs() < 1e-9);
        // Downlink: 2×45 + 45 gap + 500 = 635 µs as well.
        assert!((down.preamble_duration_s(&fmcw) - 635e-6).abs() < 1e-9);
    }

    #[test]
    fn payload_timing_and_efficiency() {
        let fmcw = FmcwConfig::milback_default();
        let p = Packet::downlink(vec![0; 4500]); // 18000 symbols
                                                 // At 18 Msym/s: payload = 1 ms; preamble 635 µs → efficiency ≈ 0.61.
        let eff = p.efficiency(&fmcw, 18e6);
        assert!((eff - 0.61).abs() < 0.02, "efficiency {eff:.3}");
        assert!((p.payload_duration_s(18e6) - 1e-3).abs() < 1e-9);
    }

    #[test]
    fn zero_byte_payload_is_pure_preamble() {
        // A zero-byte packet is legal (a beacon: localization with no
        // data); its airtime is exactly the preamble and its efficiency 0.
        let fmcw = FmcwConfig::milback_default();
        for p in [Packet::uplink(vec![]), Packet::downlink(vec![])] {
            assert_eq!(p.payload_duration_s(20e6), 0.0);
            assert_eq!(p.payload_duration_ps(20e6), 0);
            assert_eq!(p.duration_s(&fmcw, 20e6), p.preamble_duration_s(&fmcw));
            assert_eq!(p.duration_ps(&fmcw, 20e6), p.preamble_duration_ps(&fmcw));
            assert_eq!(p.efficiency(&fmcw, 20e6), 0.0);
            // And it still frames/unframes.
            assert_eq!(Packet::from_bytes(p.to_bytes()).unwrap(), p);
        }
    }

    #[test]
    fn airtime_is_monotone_in_payload_length() {
        let fmcw = FmcwConfig::milback_default();
        let mut last_ps = 0;
        let mut last_eff = -1.0;
        for len in [0usize, 1, 2, 16, 255, 256, 4096, u16::MAX as usize] {
            let p = Packet::uplink(vec![0xA5; len]);
            let ps = p.duration_ps(&fmcw, 20e6);
            assert!(ps >= last_ps, "airtime shrank at {len} bytes");
            if len > 0 {
                assert!(ps > last_ps, "airtime flat at {len} bytes");
            }
            let eff = p.efficiency(&fmcw, 20e6);
            assert!(eff > last_eff, "efficiency not increasing at {len} bytes");
            assert!(eff < 1.0);
            last_ps = ps;
            last_eff = eff;
        }
    }

    #[test]
    fn slot_plan_accepts_max_slot_count_and_rejects_beyond() {
        let fmcw = FmcwConfig::milback_default();
        let p = Packet::uplink(vec![0; 32]);
        let max = SlotPlan::for_packet(MAX_SLOTS_PER_FRAME, &p, &fmcw, 20e6, 5e-6).unwrap();
        assert_eq!(max.slots_per_frame, MAX_SLOTS_PER_FRAME);
        // Frame time stays coherent at the maximum width.
        assert_eq!(max.frame_ps(), max.slot_ps * MAX_SLOTS_PER_FRAME as u64);
        assert_eq!(
            max.slot_start_ps(1, 0) - max.slot_start_ps(0, MAX_SLOTS_PER_FRAME - 1),
            max.slot_ps,
            "frame boundary must be exactly one slot after the last slot"
        );
        assert!(SlotPlan::for_packet(MAX_SLOTS_PER_FRAME + 1, &p, &fmcw, 20e6, 5e-6).is_err());
        assert!(SlotPlan::for_packet(0, &p, &fmcw, 20e6, 5e-6).is_err());
        assert!(SlotPlan::for_packet(4, &p, &fmcw, 20e6, -1e-6).is_err());
    }

    #[test]
    fn slot_plan_timing_matches_packet_airtime() {
        let fmcw = FmcwConfig::milback_default();
        let p = Packet::uplink(vec![0; 100]);
        let plan = SlotPlan::for_packet(8, &p, &fmcw, 20e6, 10e-6).unwrap();
        assert_eq!(plan.slot_ps, p.duration_ps(&fmcw, 20e6) + 10_000_000);
        assert_eq!(plan.slot_start_ps(0, 0), 0);
        assert_eq!(plan.slot_start_ps(0, 3), 3 * plan.slot_ps);
        assert_eq!(plan.slot_start_ps(2, 1), 2 * plan.frame_ps() + plan.slot_ps);
    }

    #[test]
    fn slot_hash_is_deterministic_in_range_and_varies() {
        let fmcw = FmcwConfig::milback_default();
        let p = Packet::uplink(vec![0; 8]);
        let plan = SlotPlan::for_packet(16, &p, &fmcw, 20e6, 0.0).unwrap();
        let mut seen = std::collections::HashSet::new();
        for node in 0..64 {
            for frame in 0..8 {
                let s = plan.slot_for(node, frame, 0xFEED);
                assert!(s < 16);
                assert_eq!(s, plan.slot_for(node, frame, 0xFEED));
                seen.insert(s);
            }
        }
        assert!(
            seen.len() > 8,
            "hash should spread over most slots, hit {}",
            seen.len()
        );
        // Different frames move a node between slots (ALOHA retry works).
        let moves = (0..8)
            .map(|f| plan.slot_for(7, f, 0xFEED))
            .collect::<std::collections::HashSet<_>>();
        assert!(moves.len() > 1, "node must rehash across frames");
    }

    #[test]
    fn field1_burst_counting() {
        let d = Field1Detector::new(0.5, 3);
        // Three bursts separated by quiet gaps.
        let mut trace = Vec::new();
        for _ in 0..3 {
            trace.extend([1.0; 10]);
            trace.extend([0.0; 5]);
        }
        assert_eq!(d.count_bursts(&trace), 3);
        assert_eq!(d.detect_direction(&trace), Some(LinkDirection::Uplink));
    }

    #[test]
    fn field1_two_bursts_mean_downlink() {
        let d = Field1Detector::new(0.5, 3);
        let mut trace = vec![1.0; 10];
        trace.extend([0.0; 8]);
        trace.extend([1.0; 10]);
        assert_eq!(d.detect_direction(&trace), Some(LinkDirection::Downlink));
    }

    #[test]
    fn field1_ripple_within_burst_not_double_counted() {
        let d = Field1Detector::new(0.5, 5);
        // A burst with one sample dipping below threshold.
        let trace = [1.0, 1.0, 0.2, 1.0, 1.0, 0.0, 0.0, 0.0, 0.0, 0.0];
        assert_eq!(d.count_bursts(&trace), 1);
    }

    #[test]
    fn field1_unknown_counts_yield_none() {
        let d = Field1Detector::new(0.5, 3);
        assert_eq!(d.detect_direction(&[0.0; 20]), None); // zero bursts
        let mut five = Vec::new();
        for _ in 0..5 {
            five.extend([1.0; 4]);
            five.extend([0.0; 6]);
        }
        assert_eq!(d.detect_direction(&five), None);
    }
}
