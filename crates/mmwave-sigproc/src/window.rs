//! Window functions for spectral analysis and FIR design.
//!
//! The FMCW range-FFT trades main-lobe width (range resolution) against
//! sidelobe level (how badly a strong clutter echo smears over the weak tag
//! echo). The stack defaults to Hann but the choice is ablated in the bench
//! suite, so all the common windows live here behind one enum.

use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::f64::consts::PI;
use std::rc::Rc;

/// Supported window functions.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Window {
    /// No tapering (all ones). Narrowest main lobe, −13 dB sidelobes.
    Rectangular,
    /// Raised cosine. −31.5 dB sidelobes.
    Hann,
    /// Hamming. −42 dB first sidelobe, does not reach zero at the edges.
    Hamming,
    /// Blackman. −58 dB sidelobes, wide main lobe.
    Blackman,
    /// Kaiser window with shape parameter β (continuously tunable tradeoff).
    Kaiser(f64),
}

impl Window {
    /// Evaluates the window at sample `i` of an `n`-point window.
    ///
    /// Uses the symmetric (periodic = false) convention, appropriate for
    /// filter design and block spectral analysis.
    pub fn value(self, i: usize, n: usize) -> f64 {
        assert!(n > 0, "window length must be positive");
        if n == 1 {
            return 1.0;
        }
        let x = i as f64 / (n - 1) as f64; // 0..=1
        match self {
            Window::Rectangular => 1.0,
            Window::Hann => 0.5 - 0.5 * (2.0 * PI * x).cos(),
            Window::Hamming => 0.54 - 0.46 * (2.0 * PI * x).cos(),
            Window::Blackman => 0.42 - 0.5 * (2.0 * PI * x).cos() + 0.08 * (4.0 * PI * x).cos(),
            Window::Kaiser(beta) => {
                let t = 2.0 * x - 1.0; // -1..=1
                bessel_i0(beta * (1.0 - t * t).max(0.0).sqrt()) / bessel_i0(beta)
            }
        }
    }

    /// Materializes the `n`-point window as a vector.
    pub fn coefficients(self, n: usize) -> Vec<f64> {
        (0..n).map(|i| self.value(i, n)).collect()
    }

    /// Coherent gain: mean of the window coefficients. Needed to correct
    /// amplitude estimates taken from a windowed FFT.
    pub fn coherent_gain(self, n: usize) -> f64 {
        self.coefficients(n).iter().sum::<f64>() / n as f64
    }

    /// Noise-equivalent bandwidth in bins (≥ 1.0; 1.0 for rectangular).
    pub fn enbw(self, n: usize) -> f64 {
        let w = self.coefficients(n);
        let sum: f64 = w.iter().sum();
        let sum_sq: f64 = w.iter().map(|c| c * c).sum();
        n as f64 * sum_sq / (sum * sum)
    }

    /// Applies the window to a real signal in place.
    pub fn apply(self, x: &mut [f64]) {
        if matches!(self, Window::Rectangular) || x.is_empty() {
            return; // all-ones taper: multiplying by 1.0 is the identity
        }
        let w = self.cached_coefficients(x.len());
        for (v, &wi) in x.iter_mut().zip(w.iter()) {
            *v *= wi;
        }
    }

    /// Applies the window to a complex signal in place.
    pub fn apply_complex(self, x: &mut [crate::complex::Complex]) {
        if matches!(self, Window::Rectangular) || x.is_empty() {
            return;
        }
        let w = self.cached_coefficients(x.len());
        for (v, &wi) in x.iter_mut().zip(w.iter()) {
            *v = v.scale(wi);
        }
    }

    /// [`coefficients`](Self::coefficients) through a small thread-local
    /// memo, so hot loops that window the same length over and over
    /// (per-chirp range FFTs, Welch segments) evaluate the trig once. The
    /// cached values are exactly the [`value`](Self::value) outputs, so
    /// results are bit-identical to the uncached path.
    fn cached_coefficients(self, n: usize) -> Rc<Vec<f64>> {
        const CACHE_CAP: usize = 8;
        type CacheEntry = (Window, usize, Rc<Vec<f64>>);
        thread_local! {
            static COEFS: RefCell<Vec<CacheEntry>> = const { RefCell::new(Vec::new()) };
        }
        COEFS.with(|cache| {
            let mut cache = cache.borrow_mut();
            if let Some(pos) = cache.iter().position(|(w, len, _)| *w == self && *len == n) {
                let hit = cache.remove(pos);
                let coefs = Rc::clone(&hit.2);
                cache.push(hit); // most-recently-used at the back
                return coefs;
            }
            let coefs = Rc::new(self.coefficients(n));
            if cache.len() == CACHE_CAP {
                cache.remove(0);
            }
            cache.push((self, n, Rc::clone(&coefs)));
            coefs
        })
    }
}

/// Modified Bessel function of the first kind, order zero (series expansion).
///
/// Converges quickly for the β values used in Kaiser windows (≤ ~20).
pub fn bessel_i0(x: f64) -> f64 {
    let y = x * x / 4.0;
    let mut term = 1.0;
    let mut sum = 1.0;
    for k in 1..64 {
        term *= y / (k as f64 * k as f64);
        sum += term;
        if term < sum * 1e-16 {
            break;
        }
    }
    sum
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rectangular_is_all_ones() {
        assert!(Window::Rectangular
            .coefficients(9)
            .iter()
            .all(|&v| v == 1.0));
    }

    #[test]
    fn hann_edges_are_zero_and_center_is_one() {
        let w = Window::Hann.coefficients(65);
        assert!(w[0].abs() < 1e-15);
        assert!(w[64].abs() < 1e-15);
        assert!((w[32] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn hamming_edges_are_eight_percent() {
        let w = Window::Hamming.coefficients(21);
        assert!((w[0] - 0.08).abs() < 1e-12);
        assert!((w[20] - 0.08).abs() < 1e-12);
    }

    #[test]
    fn windows_are_symmetric() {
        for win in [
            Window::Hann,
            Window::Hamming,
            Window::Blackman,
            Window::Kaiser(8.0),
        ] {
            let w = win.coefficients(33);
            for i in 0..33 {
                assert!((w[i] - w[32 - i]).abs() < 1e-12, "{win:?} not symmetric");
            }
        }
    }

    #[test]
    fn kaiser_beta_zero_is_rectangular() {
        let w = Window::Kaiser(0.0).coefficients(17);
        for v in w {
            assert!((v - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn enbw_ordering_matches_theory() {
        // Rectangular (1.0) < Hann (1.5) < Blackman (~1.73).
        let n = 4096;
        let r = Window::Rectangular.enbw(n);
        let h = Window::Hann.enbw(n);
        let b = Window::Blackman.enbw(n);
        assert!((r - 1.0).abs() < 1e-9);
        assert!((h - 1.5).abs() < 0.01);
        assert!((b - 1.7268).abs() < 0.01);
        assert!(r < h && h < b);
    }

    #[test]
    fn coherent_gain_reference_values() {
        let n = 4096;
        assert!((Window::Rectangular.coherent_gain(n) - 1.0).abs() < 1e-12);
        assert!((Window::Hann.coherent_gain(n) - 0.5).abs() < 1e-3);
        assert!((Window::Hamming.coherent_gain(n) - 0.54).abs() < 1e-3);
    }

    #[test]
    fn bessel_i0_reference_values() {
        // I0(0)=1, I0(1)≈1.26607, I0(5)≈27.2399.
        assert!((bessel_i0(0.0) - 1.0).abs() < 1e-15);
        assert!((bessel_i0(1.0) - 1.2660658777520084).abs() < 1e-12);
        assert!((bessel_i0(5.0) - 27.239871823604442).abs() < 1e-9);
    }

    #[test]
    fn hann_sidelobes_below_30_db() {
        // Windowed off-bin tone: max leakage outside the main lobe must sit
        // below -30 dB of the peak for Hann.
        use crate::complex::Complex;
        use crate::fft::fft;
        let n = 256;
        let k0 = 40.3; // deliberately between bins
        let mut x: Vec<Complex> = (0..n)
            .map(|t| Complex::cis(2.0 * PI * k0 * t as f64 / n as f64))
            .collect();
        Window::Hann.apply_complex(&mut x);
        let spec = fft(&x);
        let mags: Vec<f64> = spec.iter().map(|z| z.norm()).collect();
        let peak_bin = mags
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        let peak = mags[peak_bin];
        for (k, &m) in mags.iter().enumerate() {
            let dist = (k as i64 - peak_bin as i64).unsigned_abs() as usize;
            if dist > 4 && dist < n - 4 {
                assert!(
                    20.0 * (m / peak).log10() < -30.0,
                    "bin {k} leaks {:.1} dB",
                    20.0 * (m / peak).log10()
                );
            }
        }
    }

    #[test]
    fn apply_real_matches_coefficients() {
        let mut x = vec![2.0; 8];
        Window::Hann.apply(&mut x);
        let w = Window::Hann.coefficients(8);
        for i in 0..8 {
            assert!((x[i] - 2.0 * w[i]).abs() < 1e-15);
        }
    }

    #[test]
    fn single_point_window_is_one() {
        for win in [Window::Hann, Window::Blackman, Window::Kaiser(3.0)] {
            assert_eq!(win.value(0, 1), 1.0);
        }
    }
}
