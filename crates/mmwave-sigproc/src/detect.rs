//! Detection primitives: peak finding with sub-bin interpolation, threshold
//! crossings, energy detection and cross-correlation.
//!
//! The localization pipeline finds the node's beat-frequency peak in a
//! background-subtracted spectrum; the node's MCU finds the two power peaks
//! of the triangular chirp; the uplink receiver detects symbol energy.
//! Every one of those reduces to the helpers in this module.

use crate::complex::Complex;

/// A located peak in a sampled sequence.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Peak {
    /// Integer sample index of the local maximum.
    pub index: usize,
    /// Sub-sample refined position (quadratic interpolation), in samples.
    pub position: f64,
    /// Interpolated peak value.
    pub value: f64,
}

/// Finds the global maximum of a real slice, with quadratic (parabolic)
/// interpolation of the true peak position between samples.
///
/// Returns `None` for an empty slice.
pub fn find_peak(x: &[f64]) -> Option<Peak> {
    if x.is_empty() {
        return None;
    }
    let mut idx = 0;
    for (i, &v) in x.iter().enumerate() {
        if v > x[idx] {
            idx = i;
        }
    }
    Some(refine_peak(x, idx))
}

/// Quadratically refines the position of a local maximum at `idx`.
///
/// Fits a parabola through the sample and its two neighbours; at the edges
/// the integer position is returned unchanged.
pub fn refine_peak(x: &[f64], idx: usize) -> Peak {
    if idx == 0 || idx + 1 >= x.len() {
        return Peak {
            index: idx,
            position: idx as f64,
            value: x[idx],
        };
    }
    let (a, b, c) = (x[idx - 1], x[idx], x[idx + 1]);
    let denom = a - 2.0 * b + c;
    if denom.abs() < 1e-300 {
        return Peak {
            index: idx,
            position: idx as f64,
            value: b,
        };
    }
    let delta = 0.5 * (a - c) / denom;
    // Clamp: a true local max interpolates within ±0.5 samples.
    let delta = delta.clamp(-0.5, 0.5);
    let value = b - 0.25 * (a - c) * delta;
    Peak {
        index: idx,
        position: idx as f64 + delta,
        value,
    }
}

/// Finds all local maxima above `threshold`, separated by at least
/// `min_separation` samples, ordered by descending value.
pub fn find_peaks(x: &[f64], threshold: f64, min_separation: usize) -> Vec<Peak> {
    let mut candidates: Vec<Peak> = Vec::new();
    for i in 1..x.len().saturating_sub(1) {
        if x[i] >= threshold && x[i] > x[i - 1] && x[i] >= x[i + 1] {
            candidates.push(refine_peak(x, i));
        }
    }
    candidates.sort_by(|a, b| b.value.partial_cmp(&a.value).unwrap());
    // Greedy non-maximum suppression.
    let mut kept: Vec<Peak> = Vec::new();
    for c in candidates {
        if kept
            .iter()
            .all(|k| k.index.abs_diff(c.index) >= min_separation)
        {
            kept.push(c);
        }
    }
    kept
}

/// Returns the two strongest peaks separated by at least `min_separation`
/// samples — exactly what the node's orientation estimator needs from its
/// envelope-detector trace. Returned in time order (earlier peak first).
pub fn two_strongest_peaks(x: &[f64], min_separation: usize) -> Option<(Peak, Peak)> {
    let peaks = find_peaks(x, f64::NEG_INFINITY, min_separation);
    if peaks.len() < 2 {
        return None;
    }
    let (a, b) = (peaks[0], peaks[1]);
    Some(if a.position <= b.position {
        (a, b)
    } else {
        (b, a)
    })
}

/// Mean energy (mean of squares) of a real slice.
pub fn energy(x: &[f64]) -> f64 {
    if x.is_empty() {
        return 0.0;
    }
    x.iter().map(|v| v * v).sum::<f64>() / x.len() as f64
}

/// Mean magnitude-squared energy of a complex slice.
pub fn energy_complex(x: &[Complex]) -> f64 {
    if x.is_empty() {
        return 0.0;
    }
    x.iter().map(|z| z.norm_sqr()).sum::<f64>() / x.len() as f64
}

/// Mean value of each consecutive chunk of `chunk` samples — the integrate-
/// and-dump operation a symbol-rate receiver performs.
///
/// Trailing samples that do not fill a whole chunk are discarded.
///
/// # Panics
/// Panics if `chunk == 0`.
pub fn integrate_and_dump(x: &[f64], chunk: usize) -> Vec<f64> {
    assert!(chunk > 0, "chunk size must be positive");
    x.chunks_exact(chunk)
        .map(|c| c.iter().sum::<f64>() / chunk as f64)
        .collect()
}

/// Above this many multiply-adds the direct O(len_a·len_b) correlation
/// loses to three planned FFTs; [`xcorr`] switches implementations here.
const XCORR_FFT_THRESHOLD: usize = 1 << 14;

/// Full (linear) cross-correlation of two real signals.
///
/// `out[k] = Σ_n a[n]·b[n - (k - (len_b-1))]` — standard "full" mode with
/// output length `len_a + len_b - 1`. Lag zero sits at index `len_b - 1`.
///
/// Small inputs use the exact direct sum; once `len_a·len_b` exceeds
/// `XCORR_FFT_THRESHOLD` the product is evaluated by planned FFTs
/// (zero-pad to a power of two, multiply `FFT(a)` by `conj`-free
/// `FFT(rev b)`, inverse-transform), which agrees with the direct sum to
/// FFT round-off (~1e-13 relative) at a cost of `O(m log m)` instead of
/// `O(len_a·len_b)`.
pub fn xcorr(a: &[f64], b: &[f64]) -> Vec<f64> {
    if a.is_empty() || b.is_empty() {
        return Vec::new();
    }
    let n = a.len() + b.len() - 1;
    if a.len().saturating_mul(b.len()) > XCORR_FFT_THRESHOLD {
        return xcorr_fft(a, b, n);
    }
    let mut out = vec![0.0; n];
    for (i, &av) in a.iter().enumerate() {
        for (j, &bv) in b.iter().enumerate() {
            out[i + b.len() - 1 - j] += av * bv;
        }
    }
    out
}

/// FFT fast path for [`xcorr`]: correlation as convolution with the
/// reversed second signal, via one shared plan and a reused scratch buffer.
fn xcorr_fft(a: &[f64], b: &[f64], n: usize) -> Vec<f64> {
    use crate::complex::ZERO;
    use crate::fft::{Direction, FftPlanner};
    let m = n.next_power_of_two();
    let plan = FftPlanner::plan(m);
    let mut scratch = vec![0.0f64; plan.scratch_len()];
    let mut fa = vec![ZERO; m];
    for (slot, &v) in fa.iter_mut().zip(a) {
        slot.re = v;
    }
    plan.process_with_scratch(&mut fa, &mut scratch, Direction::Forward);
    let mut fb = vec![ZERO; m];
    for (slot, &v) in fb.iter_mut().zip(b.iter().rev()) {
        slot.re = v;
    }
    plan.process_with_scratch(&mut fb, &mut scratch, Direction::Forward);
    for (x, y) in fa.iter_mut().zip(&fb) {
        *x *= *y;
    }
    plan.process_with_scratch(&mut fa, &mut scratch, Direction::Inverse);
    fa.truncate(n);
    fa.iter().map(|z| z.re).collect()
}

/// The lag (in samples, possibly negative) at which `b` best aligns with
/// `a`, from the peak of their cross-correlation.
pub fn best_lag(a: &[f64], b: &[f64]) -> Option<f64> {
    let c = xcorr(a, b);
    let p = find_peak(&c)?;
    Some(p.position - (b.len() as f64 - 1.0))
}

/// Estimates an on/off slicing threshold for a two-level trace: midway
/// between the robust bright (90th percentile) and dark (10th percentile)
/// levels. Returns `None` for empty traces or traces with no contrast.
pub fn midpoint_threshold(trace: &[f64]) -> Option<f64> {
    if trace.is_empty() {
        return None;
    }
    let hi = crate::stats::percentile(trace, 90.0);
    let lo = crate::stats::percentile(trace, 10.0);
    if hi - lo <= 0.0 {
        None
    } else {
        Some((hi + lo) / 2.0)
    }
}

/// Simple hysteresis comparator (Schmitt trigger) converting an analog
/// trace into boolean decisions. This mirrors the MCU firmware's slicer.
#[derive(Debug, Clone, Copy)]
pub struct SchmittTrigger {
    high: f64,
    low: f64,
    state: bool,
}

impl SchmittTrigger {
    /// Builds a comparator that flips on at `high` and off at `low`.
    ///
    /// # Panics
    /// Panics unless `low < high`.
    pub fn new(low: f64, high: f64) -> Self {
        assert!(low < high, "hysteresis requires low < high");
        Self {
            high,
            low,
            state: false,
        }
    }

    /// Feeds one sample; returns the (possibly updated) state.
    pub fn step(&mut self, x: f64) -> bool {
        if self.state {
            if x < self.low {
                self.state = false;
            }
        } else if x > self.high {
            self.state = true;
        }
        self.state
    }

    /// Processes a whole trace.
    pub fn process(&mut self, x: &[f64]) -> Vec<bool> {
        x.iter().map(|&v| self.step(v)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn find_peak_simple() {
        let x = [0.0, 1.0, 3.0, 1.0, 0.0];
        let p = find_peak(&x).unwrap();
        assert_eq!(p.index, 2);
        assert!((p.position - 2.0).abs() < 1e-12);
        assert!((p.value - 3.0).abs() < 1e-12);
    }

    #[test]
    fn find_peak_empty_is_none() {
        assert!(find_peak(&[]).is_none());
    }

    #[test]
    fn quadratic_interpolation_recovers_subsample_position() {
        // Sample a parabola peaking at 4.3.
        let x: Vec<f64> = (0..10).map(|i| 10.0 - (i as f64 - 4.3).powi(2)).collect();
        let p = find_peak(&x).unwrap();
        assert!((p.position - 4.3).abs() < 1e-9, "got {}", p.position);
        assert!((p.value - 10.0).abs() < 1e-9);
    }

    #[test]
    fn interpolation_on_sampled_sinc_beats_integer_bin() {
        // A windowed tone between FFT bins: the interpolated peak position
        // should land within 0.05 bins of the true frequency.
        use crate::complex::Complex;
        use crate::fft::fft;
        use crate::window::Window;
        use std::f64::consts::PI;
        let n = 256;
        let k0 = 60.37;
        let mut x: Vec<Complex> = (0..n)
            .map(|t| Complex::cis(2.0 * PI * k0 * t as f64 / n as f64))
            .collect();
        Window::Hann.apply_complex(&mut x);
        let mags: Vec<f64> = fft(&x).iter().map(|z| z.norm()).collect();
        let p = find_peak(&mags).unwrap();
        assert!((p.position - k0).abs() < 0.05, "got {}", p.position);
    }

    #[test]
    fn edge_peak_not_interpolated() {
        let x = [5.0, 1.0, 0.0];
        let p = find_peak(&x).unwrap();
        assert_eq!(p.index, 0);
        assert_eq!(p.position, 0.0);
    }

    #[test]
    fn find_peaks_threshold_and_separation() {
        let x = [0.0, 2.0, 0.0, 0.5, 0.0, 3.0, 0.0, 1.0, 0.0];
        let peaks = find_peaks(&x, 0.9, 2);
        assert_eq!(peaks.len(), 3);
        assert_eq!(peaks[0].index, 5);
        assert_eq!(peaks[1].index, 1);
        assert_eq!(peaks[2].index, 7);
        // With larger separation, peak at 7 is suppressed by peak at 5.
        let sparse = find_peaks(&x, 0.9, 3);
        assert_eq!(sparse.len(), 2);
    }

    #[test]
    fn two_strongest_peaks_in_time_order() {
        let mut x = vec![0.0; 100];
        // Strong late peak, weaker early peak, tiny bump in between.
        for (i, v) in x.iter_mut().enumerate() {
            *v += 5.0 * (-((i as f64 - 80.0) / 3.0).powi(2)).exp();
            *v += 3.0 * (-((i as f64 - 20.0) / 3.0).powi(2)).exp();
            *v += 0.2 * (-((i as f64 - 50.0) / 2.0).powi(2)).exp();
        }
        let (first, second) = two_strongest_peaks(&x, 5).unwrap();
        assert!((first.position - 20.0).abs() < 0.5);
        assert!((second.position - 80.0).abs() < 0.5);
    }

    #[test]
    fn two_peaks_returns_none_with_single_peak() {
        let x: Vec<f64> = (0..50)
            .map(|i| (-((i as f64 - 25.0) / 4.0).powi(2)).exp())
            .collect();
        // min_separation larger than the trace kills the second candidate.
        assert!(two_strongest_peaks(&x, 60).is_none());
    }

    #[test]
    fn energy_of_unit_tone_is_half() {
        let x: Vec<f64> = (0..1000)
            .map(|i| (2.0 * std::f64::consts::PI * i as f64 / 100.0).cos())
            .collect();
        assert!((energy(&x) - 0.5).abs() < 1e-3);
        assert_eq!(energy(&[]), 0.0);
    }

    #[test]
    fn integrate_and_dump_averages_chunks() {
        let x = [1.0, 1.0, 0.0, 0.0, 2.0, 4.0, 9.0];
        assert_eq!(integrate_and_dump(&x, 2), vec![1.0, 0.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "chunk size must be positive")]
    fn integrate_and_dump_rejects_zero_chunk() {
        integrate_and_dump(&[1.0], 0);
    }

    #[test]
    fn xcorr_of_impulses() {
        let a = [0.0, 0.0, 1.0, 0.0];
        let b = [1.0, 0.0];
        let c = xcorr(&a, &b);
        assert_eq!(c.len(), 5);
        let p = find_peak(&c).unwrap();
        // b aligned with a at lag 2: index = lag + (len_b - 1) = 3.
        assert_eq!(p.index, 3);
    }

    #[test]
    fn best_lag_recovers_shift() {
        let template: Vec<f64> = (0..32).map(|i| ((i as f64) * 0.8).sin()).collect();
        let mut signal = vec![0.0; 100];
        signal[40..72].copy_from_slice(&template);
        let lag = best_lag(&signal, &template).unwrap();
        assert!((lag - 40.0).abs() < 0.51, "lag {lag}");
    }

    #[test]
    fn schmitt_trigger_has_hysteresis() {
        let mut s = SchmittTrigger::new(0.3, 0.7);
        assert!(!s.step(0.5)); // below high: stays off
        assert!(s.step(0.8)); // crosses high: on
        assert!(s.step(0.5)); // above low: stays on
        assert!(!s.step(0.2)); // below low: off
    }

    #[test]
    fn schmitt_rejects_noise_between_thresholds() {
        let mut s = SchmittTrigger::new(0.2, 0.8);
        let noisy = [0.5, 0.6, 0.4, 0.55, 0.45];
        let out = s.process(&noisy);
        assert!(out.iter().all(|&b| !b));
    }

    #[test]
    #[should_panic(expected = "low < high")]
    fn schmitt_rejects_inverted_thresholds() {
        SchmittTrigger::new(0.7, 0.3);
    }
}
