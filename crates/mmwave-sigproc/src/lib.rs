//! # mmwave-sigproc
//!
//! From-scratch digital-signal-processing substrate for the MilBack mmWave
//! backscatter stack. The allowed dependency set contains no DSP crates, so
//! this crate owns:
//!
//! * [`complex`] — complex arithmetic (`Complex`, phasors, slice helpers),
//! * [`fft`](mod@fft) — radix-2 + Bluestein FFTs with reusable plans,
//! * [`window`] — spectral windows and their figures of merit,
//! * [`filter`] — FIR design, biquad IIR, first-order RC dynamics,
//! * [`waveform`] — FMCW chirps (sawtooth/triangular), tones, OAQFM symbols,
//! * [`detect`] — peak finding, correlation, slicers,
//! * [`parallel`] — frame-level worker pools with a bit-exact serial fallback,
//! * [`resample`] — anti-aliased decimation and fractional delays,
//! * [`spectrum`] — periodogram/Welch PSD and spectrograms,
//! * [`stats`] — percentiles, CDFs, BER counting, Q-function,
//! * [`random`] — seeded Gaussian/AWGN sources for reproducible Monte-Carlo,
//! * [`units`] — dB/dBm/watt conversions and RF constants.
//!
//! Everything is deterministic given a seed, `#![forbid(unsafe_code)]`, and
//! heavily unit-tested: the higher layers (channel models, localization,
//! OAQFM modems) are only as trustworthy as these primitives.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod complex;
pub mod detect;
pub mod fft;
pub mod filter;
pub mod parallel;
pub mod random;
pub mod resample;
pub mod spectrum;
pub mod stats;
pub mod units;
pub mod waveform;
pub mod window;

pub use complex::Complex;
pub use fft::{fft, ifft, FftPlan};
pub use random::GaussianSource;
pub use waveform::{Chirp, ChirpShape, OaqfmSymbol, Tone};
pub use window::Window;
