//! Unit conversions and physical constants used throughout the stack.
//!
//! RF work constantly moves between linear power, dB, dBm, volts across a
//! reference impedance, frequencies and wavelengths. Keeping the conversions
//! in one tested module avoids the classic factor-of-two (power vs amplitude)
//! dB bugs.

/// Speed of light in vacuum, m/s.
pub const SPEED_OF_LIGHT: f64 = 299_792_458.0;

/// Boltzmann constant, J/K.
pub const BOLTZMANN: f64 = 1.380_649e-23;

/// Standard noise-reference temperature, kelvin.
pub const T0_KELVIN: f64 = 290.0;

/// Thermal noise power spectral density at 290 K, in dBm/Hz (≈ −173.98).
pub fn thermal_noise_dbm_per_hz() -> f64 {
    watts_to_dbm(BOLTZMANN * T0_KELVIN)
}

/// Converts a linear power ratio to decibels.
///
/// Returns `-inf` for a zero ratio, mirroring the mathematical limit.
#[inline]
pub fn lin_to_db(ratio: f64) -> f64 {
    10.0 * ratio.log10()
}

/// Converts decibels to a linear power ratio.
#[inline]
pub fn db_to_lin(db: f64) -> f64 {
    10f64.powf(db / 10.0)
}

/// Converts an amplitude (voltage) ratio to decibels (20·log10).
#[inline]
pub fn amplitude_to_db(ratio: f64) -> f64 {
    20.0 * ratio.log10()
}

/// Converts decibels to an amplitude (voltage) ratio.
#[inline]
pub fn db_to_amplitude(db: f64) -> f64 {
    10f64.powf(db / 20.0)
}

/// Converts power in watts to dBm.
#[inline]
pub fn watts_to_dbm(watts: f64) -> f64 {
    10.0 * (watts * 1e3).log10()
}

/// Converts dBm to power in watts.
#[inline]
pub fn dbm_to_watts(dbm: f64) -> f64 {
    10f64.powf(dbm / 10.0) * 1e-3
}

/// RMS voltage corresponding to a power across an impedance (default 50 Ω).
#[inline]
pub fn power_to_vrms(watts: f64, ohms: f64) -> f64 {
    (watts * ohms).sqrt()
}

/// Power dissipated by an RMS voltage across an impedance.
#[inline]
pub fn vrms_to_power(vrms: f64, ohms: f64) -> f64 {
    vrms * vrms / ohms
}

/// Free-space wavelength for a frequency in Hz.
#[inline]
pub fn wavelength(freq_hz: f64) -> f64 {
    SPEED_OF_LIGHT / freq_hz
}

/// Frequency whose free-space wavelength is `lambda_m`.
#[inline]
pub fn frequency_for_wavelength(lambda_m: f64) -> f64 {
    SPEED_OF_LIGHT / lambda_m
}

/// Thermal noise power in watts over a bandwidth, with a noise figure in dB.
///
/// `P = k·T0·B·F`. This is the noise floor every receiver in the stack
/// compares signals against.
pub fn noise_power_watts(bandwidth_hz: f64, noise_figure_db: f64) -> f64 {
    BOLTZMANN * T0_KELVIN * bandwidth_hz * db_to_lin(noise_figure_db)
}

/// Thermal noise power in dBm over a bandwidth with a noise figure in dB.
pub fn noise_power_dbm(bandwidth_hz: f64, noise_figure_db: f64) -> f64 {
    watts_to_dbm(noise_power_watts(bandwidth_hz, noise_figure_db))
}

/// Degrees → radians.
#[inline]
pub fn deg_to_rad(deg: f64) -> f64 {
    deg.to_radians()
}

/// Radians → degrees.
#[inline]
pub fn rad_to_deg(rad: f64) -> f64 {
    rad.to_degrees()
}

/// Wraps an angle in radians to `(-π, π]`.
pub fn wrap_angle(rad: f64) -> f64 {
    let two_pi = std::f64::consts::TAU;
    let mut a = rad % two_pi;
    if a <= -std::f64::consts::PI {
        a += two_pi;
    } else if a > std::f64::consts::PI {
        a -= two_pi;
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() < tol
    }

    #[test]
    fn db_roundtrip() {
        for &db in &[-30.0, -3.0, 0.0, 3.0, 10.0, 27.0] {
            assert!(close(lin_to_db(db_to_lin(db)), db, 1e-12));
        }
    }

    #[test]
    fn three_db_is_factor_two() {
        assert!(close(db_to_lin(3.0103), 2.0, 1e-3));
        assert!(close(lin_to_db(2.0), 3.0103, 1e-3));
    }

    #[test]
    fn amplitude_db_is_twice_power_db() {
        // A voltage ratio of 2 is +6.02 dB; a power ratio of 2 is +3.01 dB.
        assert!(close(amplitude_to_db(2.0), 2.0 * lin_to_db(2.0), 1e-12));
        assert!(close(db_to_amplitude(6.0206), 2.0, 1e-3));
    }

    #[test]
    fn dbm_watts_roundtrip() {
        assert!(close(dbm_to_watts(0.0), 1e-3, 1e-15));
        assert!(close(dbm_to_watts(30.0), 1.0, 1e-12));
        assert!(close(watts_to_dbm(0.5), 26.9897, 1e-3));
    }

    #[test]
    fn paper_tx_power_is_half_watt() {
        // The MilBack AP transmits 27 dBm ≈ 0.5 W.
        assert!(close(dbm_to_watts(27.0), 0.501, 1e-3));
    }

    #[test]
    fn vrms_power_roundtrip_50_ohm() {
        let p = 1e-6; // 1 µW = -30 dBm
        let v = power_to_vrms(p, 50.0);
        assert!(close(vrms_to_power(v, 50.0), p, 1e-18));
        // -30 dBm into 50 Ω is ~7.07 mV RMS.
        assert!(close(v, 7.0711e-3, 1e-6));
    }

    #[test]
    fn wavelength_at_28_ghz_is_about_one_cm() {
        let l = wavelength(28e9);
        assert!(close(l, 0.010707, 1e-5));
        assert!(close(frequency_for_wavelength(l), 28e9, 1.0));
    }

    #[test]
    fn thermal_noise_reference() {
        // kT0 ≈ -174 dBm/Hz is the canonical RF noise-floor figure.
        assert!(close(thermal_noise_dbm_per_hz(), -173.98, 0.01));
    }

    #[test]
    fn noise_power_scales_with_bandwidth_and_nf() {
        let a = noise_power_dbm(1e6, 0.0);
        let b = noise_power_dbm(1e9, 0.0);
        // 1 MHz → 1 GHz is 30 dB more noise.
        assert!(close(b - a, 30.0, 1e-9));
        let c = noise_power_dbm(1e6, 5.0);
        assert!(close(c - a, 5.0, 1e-9));
        // -174 + 60 = -114 dBm in 1 MHz.
        assert!(close(a, -113.98, 0.02));
    }

    #[test]
    fn angle_wrap() {
        use std::f64::consts::PI;
        assert!(close(wrap_angle(3.0 * PI), PI, 1e-12));
        assert!(close(wrap_angle(-3.0 * PI), PI, 1e-12));
        assert!(close(wrap_angle(0.5), 0.5, 1e-15));
        assert!(close(wrap_angle(2.0 * PI + 0.25), 0.25, 1e-12));
        assert!(wrap_angle(123.456).abs() <= PI + 1e-12);
    }

    #[test]
    fn deg_rad_roundtrip() {
        assert!(close(rad_to_deg(deg_to_rad(37.5)), 37.5, 1e-12));
    }
}
