//! Digital filters: windowed-sinc FIR design, biquad IIR sections, and the
//! first-order RC response that models envelope-detector video bandwidth.
//!
//! The AP's receive chain band-pass filters the mixer output to isolate the
//! node's baseband response (§6.3 of the paper); the node's envelope detector
//! has a finite rise/fall time that caps the downlink rate at 36 Mbps
//! (§9.4). Both behaviours are modeled with the primitives in this module.

use crate::complex::Complex;
use crate::window::Window;
use serde::{Deserialize, Serialize};
use std::f64::consts::PI;

/// A finite-impulse-response filter applied by direct convolution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FirFilter {
    taps: Vec<f64>,
}

impl FirFilter {
    /// Wraps raw tap coefficients.
    ///
    /// # Panics
    /// Panics if `taps` is empty.
    pub fn from_taps(taps: Vec<f64>) -> Self {
        assert!(!taps.is_empty(), "FIR filter needs at least one tap");
        Self { taps }
    }

    /// Designs a windowed-sinc low-pass filter.
    ///
    /// * `cutoff_hz` — −6 dB cutoff frequency.
    /// * `sample_rate` — sampling rate of the signal to be filtered.
    /// * `num_taps` — filter order + 1; odd counts give integer group delay.
    ///
    /// # Panics
    /// Panics unless `0 < cutoff_hz < sample_rate/2` and `num_taps > 0`.
    pub fn low_pass(cutoff_hz: f64, sample_rate: f64, num_taps: usize, window: Window) -> Self {
        assert!(num_taps > 0, "num_taps must be positive");
        assert!(
            cutoff_hz > 0.0 && cutoff_hz < sample_rate / 2.0,
            "cutoff must lie in (0, Nyquist)"
        );
        let fc = cutoff_hz / sample_rate; // normalized (cycles/sample)
        let mid = (num_taps - 1) as f64 / 2.0;
        let mut taps: Vec<f64> = (0..num_taps)
            .map(|i| {
                let t = i as f64 - mid;
                let sinc = if t.abs() < 1e-12 {
                    2.0 * fc
                } else {
                    (2.0 * PI * fc * t).sin() / (PI * t)
                };
                sinc * window.value(i, num_taps)
            })
            .collect();
        // Normalize DC gain to exactly 1.
        let sum: f64 = taps.iter().sum();
        for t in &mut taps {
            *t /= sum;
        }
        Self { taps }
    }

    /// Designs a high-pass filter by spectral inversion of a low-pass.
    pub fn high_pass(cutoff_hz: f64, sample_rate: f64, num_taps: usize, window: Window) -> Self {
        assert!(num_taps % 2 == 1, "high-pass FIR requires an odd tap count");
        let lp = Self::low_pass(cutoff_hz, sample_rate, num_taps, window);
        let mid = num_taps / 2;
        let taps = lp
            .taps
            .iter()
            .enumerate()
            .map(|(i, &t)| if i == mid { 1.0 - t } else { -t })
            .collect();
        Self { taps }
    }

    /// Designs a band-pass filter as high-pass ∘ low-pass (tap convolution).
    ///
    /// # Panics
    /// Panics unless `0 < low_hz < high_hz < sample_rate/2`.
    pub fn band_pass(
        low_hz: f64,
        high_hz: f64,
        sample_rate: f64,
        num_taps: usize,
        window: Window,
    ) -> Self {
        assert!(
            low_hz > 0.0 && low_hz < high_hz && high_hz < sample_rate / 2.0,
            "band edges must satisfy 0 < low < high < Nyquist"
        );
        assert!(num_taps % 2 == 1, "band-pass FIR requires an odd tap count");
        let lp = Self::low_pass(high_hz, sample_rate, num_taps, window);
        let hp = Self::high_pass(low_hz, sample_rate, num_taps, window);
        // Convolve the two impulse responses.
        let n = lp.taps.len() + hp.taps.len() - 1;
        let mut taps = vec![0.0; n];
        for (i, &a) in lp.taps.iter().enumerate() {
            for (j, &b) in hp.taps.iter().enumerate() {
                taps[i + j] += a * b;
            }
        }
        Self { taps }
    }

    /// The filter's tap coefficients.
    pub fn taps(&self) -> &[f64] {
        &self.taps
    }

    /// Group delay in samples (linear-phase symmetric designs).
    pub fn group_delay(&self) -> f64 {
        (self.taps.len() - 1) as f64 / 2.0
    }

    /// Filters a real signal; output has the same length as the input
    /// (convolution tail truncated, leading transient included).
    pub fn filter(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; x.len()];
        for (n, out) in y.iter_mut().enumerate() {
            let mut acc = 0.0;
            let kmax = self.taps.len().min(n + 1);
            for k in 0..kmax {
                acc += self.taps[k] * x[n - k];
            }
            *out = acc;
        }
        y
    }

    /// Filters a complex signal.
    pub fn filter_complex(&self, x: &[Complex]) -> Vec<Complex> {
        let mut y = vec![crate::complex::ZERO; x.len()];
        for (n, out) in y.iter_mut().enumerate() {
            let mut acc = crate::complex::ZERO;
            let kmax = self.taps.len().min(n + 1);
            for k in 0..kmax {
                acc += x[n - k].scale(self.taps[k]);
            }
            *out = acc;
        }
        y
    }

    /// Complex frequency response at `freq_hz` for the given sample rate.
    pub fn response_at(&self, freq_hz: f64, sample_rate: f64) -> Complex {
        let w = 2.0 * PI * freq_hz / sample_rate;
        self.taps
            .iter()
            .enumerate()
            .map(|(n, &t)| Complex::cis(-w * n as f64).scale(t))
            .sum()
    }

    /// Magnitude response in dB at `freq_hz`.
    pub fn magnitude_db_at(&self, freq_hz: f64, sample_rate: f64) -> f64 {
        20.0 * self.response_at(freq_hz, sample_rate).norm().log10()
    }
}

/// A single biquad (second-order IIR) section in direct form II transposed.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Biquad {
    b0: f64,
    b1: f64,
    b2: f64,
    a1: f64,
    a2: f64,
    s1: f64,
    s2: f64,
}

impl Biquad {
    /// Creates a biquad from normalized coefficients (a0 = 1).
    pub fn new(b0: f64, b1: f64, b2: f64, a1: f64, a2: f64) -> Self {
        Self {
            b0,
            b1,
            b2,
            a1,
            a2,
            s1: 0.0,
            s2: 0.0,
        }
    }

    /// Butterworth-style low-pass biquad (RBJ cookbook formulation).
    ///
    /// # Panics
    /// Panics unless `0 < cutoff_hz < sample_rate / 2` and `q > 0`.
    pub fn low_pass(cutoff_hz: f64, sample_rate: f64, q: f64) -> Self {
        assert!(cutoff_hz > 0.0 && cutoff_hz < sample_rate / 2.0);
        assert!(q > 0.0);
        let w0 = 2.0 * PI * cutoff_hz / sample_rate;
        let (sw, cw) = w0.sin_cos();
        let alpha = sw / (2.0 * q);
        let a0 = 1.0 + alpha;
        Self::new(
            (1.0 - cw) / 2.0 / a0,
            (1.0 - cw) / a0,
            (1.0 - cw) / 2.0 / a0,
            -2.0 * cw / a0,
            (1.0 - alpha) / a0,
        )
    }

    /// RBJ band-pass biquad with unity peak gain at the center frequency.
    pub fn band_pass(center_hz: f64, sample_rate: f64, q: f64) -> Self {
        assert!(center_hz > 0.0 && center_hz < sample_rate / 2.0);
        assert!(q > 0.0);
        let w0 = 2.0 * PI * center_hz / sample_rate;
        let (sw, cw) = w0.sin_cos();
        let alpha = sw / (2.0 * q);
        let a0 = 1.0 + alpha;
        Self::new(
            alpha / a0,
            0.0,
            -alpha / a0,
            -2.0 * cw / a0,
            (1.0 - alpha) / a0,
        )
    }

    /// Processes one sample.
    #[inline]
    pub fn step(&mut self, x: f64) -> f64 {
        let y = self.b0 * x + self.s1;
        self.s1 = self.b1 * x - self.a1 * y + self.s2;
        self.s2 = self.b2 * x - self.a2 * y;
        y
    }

    /// Filters a whole buffer, preserving internal state across calls.
    pub fn process(&mut self, x: &[f64]) -> Vec<f64> {
        x.iter().map(|&v| self.step(v)).collect()
    }

    /// Resets the internal delay line.
    pub fn reset(&mut self) {
        self.s1 = 0.0;
        self.s2 = 0.0;
    }

    /// Complex frequency response at `freq_hz`.
    pub fn response_at(&self, freq_hz: f64, sample_rate: f64) -> Complex {
        let w = 2.0 * PI * freq_hz / sample_rate;
        let z1 = Complex::cis(-w);
        let z2 = Complex::cis(-2.0 * w);
        let num = Complex::real(self.b0) + z1.scale(self.b1) + z2.scale(self.b2);
        let den = Complex::real(1.0) + z1.scale(self.a1) + z2.scale(self.a2);
        num / den
    }
}

/// First-order RC low-pass — the video-bandwidth model of an envelope
/// detector output stage.
///
/// A detector with 10–90% rise time `t_r` has time constant `τ ≈ t_r / 2.2`;
/// this is exactly the dynamic that limits MilBack's downlink to 36 Mbps.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RcFilter {
    alpha: f64,
    state: f64,
}

impl RcFilter {
    /// Builds the filter from a time constant and a sample interval.
    ///
    /// # Panics
    /// Panics unless both arguments are positive.
    pub fn from_time_constant(tau_s: f64, dt_s: f64) -> Self {
        assert!(tau_s > 0.0 && dt_s > 0.0);
        // Exact discretization of dy/dt = (x - y)/τ over one step.
        let alpha = 1.0 - (-dt_s / tau_s).exp();
        Self { alpha, state: 0.0 }
    }

    /// Builds the filter from a 10–90% rise time.
    pub fn from_rise_time(rise_s: f64, dt_s: f64) -> Self {
        Self::from_time_constant(rise_s / 2.197, dt_s)
    }

    /// Processes one sample.
    #[inline]
    pub fn step(&mut self, x: f64) -> f64 {
        self.state += self.alpha * (x - self.state);
        self.state
    }

    /// Filters a whole buffer, preserving state.
    pub fn process(&mut self, x: &[f64]) -> Vec<f64> {
        x.iter().map(|&v| self.step(v)).collect()
    }

    /// Resets internal state to zero.
    pub fn reset(&mut self) {
        self.state = 0.0;
    }

    /// Current output value.
    pub fn state(&self) -> f64 {
        self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tone(freq: f64, fs: f64, n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| (2.0 * PI * freq * i as f64 / fs).sin())
            .collect()
    }

    fn rms(x: &[f64]) -> f64 {
        (x.iter().map(|v| v * v).sum::<f64>() / x.len() as f64).sqrt()
    }

    #[test]
    fn low_pass_passes_low_blocks_high() {
        let fs = 1e6;
        let f = FirFilter::low_pass(50e3, fs, 101, Window::Hamming);
        let low = f.filter(&tone(10e3, fs, 4000));
        let high = f.filter(&tone(300e3, fs, 4000));
        // Skip the transient when measuring.
        assert!(rms(&low[500..]) > 0.65);
        assert!(rms(&high[500..]) < 0.01);
    }

    #[test]
    fn low_pass_dc_gain_is_unity() {
        let f = FirFilter::low_pass(100e3, 1e6, 51, Window::Hann);
        assert!((f.taps().iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((f.response_at(0.0, 1e6).norm() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn high_pass_blocks_dc_passes_high() {
        let fs = 1e6;
        let f = FirFilter::high_pass(100e3, fs, 101, Window::Hamming);
        let dc = vec![1.0; 2000];
        let out = f.filter(&dc);
        assert!(out[1000..].iter().all(|v| v.abs() < 1e-3));
        let high = f.filter(&tone(400e3, fs, 4000));
        assert!(rms(&high[500..]) > 0.6);
    }

    #[test]
    fn band_pass_selects_band() {
        let fs = 1e6;
        let f = FirFilter::band_pass(80e3, 220e3, fs, 101, Window::Hamming);
        let inband = f.filter(&tone(150e3, fs, 6000));
        let below = f.filter(&tone(5e3, fs, 6000));
        let above = f.filter(&tone(450e3, fs, 6000));
        assert!(rms(&inband[1000..]) > 0.6);
        assert!(rms(&below[1000..]) < 0.02);
        assert!(rms(&above[1000..]) < 0.02);
    }

    #[test]
    fn band_pass_rejects_dc_completely_enough_for_interference_cancellation() {
        // §6.3: interference mixes to DC; the BPF must crush it.
        let f = FirFilter::band_pass(100e3, 5e6, 20e6, 201, Window::Hamming);
        let db = f.magnitude_db_at(0.0, 20e6);
        assert!(db < -40.0, "DC rejection only {db:.1} dB");
    }

    #[test]
    fn fir_linear_phase_group_delay() {
        let f = FirFilter::low_pass(100e3, 1e6, 101, Window::Hann);
        assert_eq!(f.group_delay(), 50.0);
    }

    #[test]
    fn fir_filter_complex_matches_real_on_real_input() {
        let f = FirFilter::low_pass(100e3, 1e6, 31, Window::Hann);
        let x = tone(30e3, 1e6, 256);
        let xr = f.filter(&x);
        let xc = f.filter_complex(&crate::complex::from_real(&x));
        for (a, b) in xr.iter().zip(xc.iter()) {
            assert!((a - b.re).abs() < 1e-12 && b.im.abs() < 1e-15);
        }
    }

    #[test]
    #[should_panic(expected = "cutoff must lie in")]
    fn low_pass_rejects_bad_cutoff() {
        FirFilter::low_pass(600e3, 1e6, 11, Window::Hann);
    }

    #[test]
    #[should_panic(expected = "odd tap count")]
    fn band_pass_rejects_even_taps() {
        FirFilter::band_pass(1e3, 2e3, 10e3, 10, Window::Hann);
    }

    #[test]
    fn biquad_low_pass_attenuates_high_frequencies() {
        let fs = 1e6;
        let mut bq = Biquad::low_pass(50e3, fs, std::f64::consts::FRAC_1_SQRT_2);
        let low = bq.process(&tone(5e3, fs, 8000));
        bq.reset();
        let high = bq.process(&tone(400e3, fs, 8000));
        assert!(rms(&low[2000..]) > 0.65);
        assert!(rms(&high[2000..]) < 0.02);
    }

    #[test]
    fn biquad_band_pass_peak_gain_is_unity() {
        let bq = Biquad::band_pass(100e3, 1e6, 5.0);
        let g = bq.response_at(100e3, 1e6).norm();
        assert!((g - 1.0).abs() < 1e-6);
        let off = bq.response_at(20e3, 1e6).norm();
        assert!(off < 0.25);
    }

    #[test]
    fn biquad_response_matches_time_domain() {
        let fs = 1e6;
        let freq = 75e3;
        let mut bq = Biquad::low_pass(50e3, fs, std::f64::consts::FRAC_1_SQRT_2);
        let theory = bq.response_at(freq, fs).norm();
        let y = bq.process(&tone(freq, fs, 20000));
        let measured = rms(&y[10000..]) * std::f64::consts::SQRT_2;
        assert!((measured - theory).abs() < 0.01);
    }

    #[test]
    fn rc_step_response_reaches_63_percent_at_tau() {
        let dt = 1e-9;
        let tau = 100e-9;
        let mut rc = RcFilter::from_time_constant(tau, dt);
        let steps = (tau / dt) as usize;
        let mut y = 0.0;
        for _ in 0..steps {
            y = rc.step(1.0);
        }
        assert!((y - 0.632).abs() < 0.005, "got {y}");
    }

    #[test]
    fn rc_rise_time_matches_definition() {
        let dt = 0.1e-9;
        let rise = 10e-9; // 10 ns, ~ADL6010 class
        let mut rc = RcFilter::from_rise_time(rise, dt);
        let mut t10 = None;
        let mut t90 = None;
        for i in 0..10_000 {
            let y = rc.step(1.0);
            if t10.is_none() && y >= 0.1 {
                t10 = Some(i as f64 * dt);
            }
            if t90.is_none() && y >= 0.9 {
                t90 = Some(i as f64 * dt);
                break;
            }
        }
        let measured = t90.unwrap() - t10.unwrap();
        assert!((measured - rise).abs() / rise < 0.05, "rise {measured:.2e}");
    }

    #[test]
    fn rc_reset_and_state() {
        let mut rc = RcFilter::from_time_constant(1e-6, 1e-8);
        rc.step(5.0);
        assert!(rc.state() > 0.0);
        rc.reset();
        assert_eq!(rc.state(), 0.0);
    }

    #[test]
    fn rc_tracks_slow_signal() {
        let dt = 1e-8;
        let mut rc = RcFilter::from_time_constant(5e-8, dt);
        let x = tone(100e3, 1e8, 4000); // much slower than τ
        let y = rc.process(&x);
        // After transient, output ≈ input.
        for i in 2000..4000 {
            assert!((y[i] - x[i]).abs() < 0.05);
        }
    }
}
