//! Frame-level parallelism for the DSP pipeline.
//!
//! The FMCW pipeline's hot loops are embarrassingly parallel at frame
//! granularity — per-chirp range FFTs, per-column Doppler FFTs, per-block
//! beat synthesis — and every frame computation is deterministic, so a
//! parallel run produces bit-identical output to the serial one as long as
//! work is partitioned into disjoint output slices and each slice is
//! processed by exactly the serial code. This module provides that
//! partitioning on top of `crossbeam::scope` with no `unsafe`:
//! [`for_each_chunk`] hands disjoint `&mut` sub-slices (obtained via
//! `chunks_mut`) to scoped worker threads.
//!
//! Thread count policy: [`max_threads`] honors the `MILBACK_THREADS`
//! environment variable when set (≥1), else uses
//! [`std::thread::available_parallelism`]. Callers pass an explicit count to
//! the `*_with_threads` pipeline entry points for reproducible testing;
//! `threads <= 1` (or a single chunk) short-circuits to a plain serial loop
//! on the calling thread — the bit-exact fallback.

use std::num::NonZeroUsize;

/// Worker-thread budget for the DSP pipeline.
///
/// `MILBACK_THREADS` (parsed as a positive integer) overrides the detected
/// core count; unparsable or zero values are ignored. Always at least 1.
pub fn max_threads() -> usize {
    if let Ok(v) = std::env::var("MILBACK_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Runs `f(start, chunk)` over every `chunk_len`-sized chunk of `data`
/// (`start` is the chunk's element offset into `data`), fanning the chunks
/// out over at most `threads` scoped worker threads.
///
/// Chunks are assigned to workers in contiguous runs, each worker walking
/// its run in order; with `threads <= 1` or a single chunk the loop runs
/// inline on the caller. Because chunks are disjoint and `f` is applied
/// per-chunk either way, the result is bit-identical for every thread
/// count.
///
/// # Panics
/// Panics if `chunk_len == 0`, or propagates a panic from `f`.
pub fn for_each_chunk<T, F>(data: &mut [T], chunk_len: usize, threads: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(chunk_len > 0, "chunk_len must be positive");
    let n_chunks = data.len().div_ceil(chunk_len);
    if threads <= 1 || n_chunks <= 1 {
        for (i, chunk) in data.chunks_mut(chunk_len).enumerate() {
            f(i * chunk_len, chunk);
        }
        return;
    }
    let workers = threads.min(n_chunks);
    // Deal contiguous runs of ceil/floor(n_chunks / workers) chunks so every
    // worker's slice is one `split_at_mut` cut — no unsafe, no locks.
    let f = &f;
    crossbeam::scope(|s| {
        let mut rest = data;
        let mut start = 0usize;
        let mut remaining_chunks = n_chunks;
        for w in 0..workers {
            let runs = remaining_chunks.div_ceil(workers - w);
            remaining_chunks -= runs;
            let take = (runs * chunk_len).min(rest.len());
            let (mine, tail) = rest.split_at_mut(take);
            rest = tail;
            let offset = start;
            start += take;
            s.spawn(move |_| {
                for (i, chunk) in mine.chunks_mut(chunk_len).enumerate() {
                    f(offset + i * chunk_len, chunk);
                }
            });
        }
    })
    .expect("worker thread panicked");
}

/// Like [`for_each_chunk`], but gives `f` mutable worker-local state built
/// by `init` — one state per worker thread (one total in the serial path).
///
/// This is the allocation-amortizing variant: `init` typically allocates an
/// FFT scratch buffer, which each worker then reuses across all of its
/// chunks. `f` must not let the incoming state contents influence its output
/// (scratch only), otherwise results would depend on the chunk→worker
/// assignment; under that contract the result is bit-identical for every
/// thread count.
///
/// # Panics
/// Panics if `chunk_len == 0`, or propagates a panic from `init`/`f`.
pub fn for_each_chunk_with<T, S, I, F>(
    data: &mut [T],
    chunk_len: usize,
    threads: usize,
    init: I,
    f: F,
) where
    T: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize, &mut [T]) + Sync,
{
    assert!(chunk_len > 0, "chunk_len must be positive");
    let n_chunks = data.len().div_ceil(chunk_len);
    if threads <= 1 || n_chunks <= 1 {
        let mut state = init();
        for (i, chunk) in data.chunks_mut(chunk_len).enumerate() {
            f(&mut state, i * chunk_len, chunk);
        }
        return;
    }
    let workers = threads.min(n_chunks);
    let (f, init) = (&f, &init);
    crossbeam::scope(|s| {
        let mut rest = data;
        let mut start = 0usize;
        let mut remaining_chunks = n_chunks;
        for w in 0..workers {
            let runs = remaining_chunks.div_ceil(workers - w);
            remaining_chunks -= runs;
            let take = (runs * chunk_len).min(rest.len());
            let (mine, tail) = rest.split_at_mut(take);
            rest = tail;
            let offset = start;
            start += take;
            s.spawn(move |_| {
                let mut state = init();
                for (i, chunk) in mine.chunks_mut(chunk_len).enumerate() {
                    f(&mut state, offset + i * chunk_len, chunk);
                }
            });
        }
    })
    .expect("worker thread panicked");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_threads_is_positive() {
        assert!(max_threads() >= 1);
    }

    #[test]
    fn chunks_cover_everything_once() {
        for threads in [1usize, 2, 3, 8] {
            for len in [0usize, 1, 7, 16, 33] {
                let mut data = vec![0u64; len];
                for_each_chunk(&mut data, 4, threads, |start, chunk| {
                    for (i, v) in chunk.iter_mut().enumerate() {
                        *v += (start + i) as u64 + 1;
                    }
                });
                let expect: Vec<u64> = (0..len as u64).map(|i| i + 1).collect();
                assert_eq!(data, expect, "threads={threads} len={len}");
            }
        }
    }

    #[test]
    fn offsets_are_chunk_aligned() {
        let mut data = vec![0usize; 25];
        for_each_chunk(&mut data, 10, 4, |start, chunk| {
            assert_eq!(start % 10, 0);
            for v in chunk.iter_mut() {
                *v = start;
            }
        });
        assert_eq!(data[0], 0);
        assert_eq!(data[10], 10);
        assert_eq!(data[24], 20);
    }

    #[test]
    fn parallel_matches_serial_bitwise() {
        let src: Vec<f64> = (0..1000).map(|i| (i as f64 * 0.37).sin()).collect();
        let work = |start: usize, chunk: &mut [f64]| {
            for (i, v) in chunk.iter_mut().enumerate() {
                *v = ((start + i) as f64 * 0.11).cos() * v.sin();
            }
        };
        let mut serial = src.clone();
        for_each_chunk(&mut serial, 32, 1, work);
        for threads in [2usize, 4, 7] {
            let mut par = src.clone();
            for_each_chunk(&mut par, 32, threads, work);
            assert!(serial.iter().zip(&par).all(|(a, b)| a == b));
        }
    }

    #[test]
    #[should_panic(expected = "chunk_len must be positive")]
    fn zero_chunk_len_rejected() {
        let mut data = [0u8; 4];
        for_each_chunk(&mut data, 0, 2, |_, _| {});
    }

    #[test]
    fn stateful_variant_matches_stateless() {
        let src: Vec<f64> = (0..513).map(|i| (i as f64 * 0.7).cos()).collect();
        let mut plain = src.clone();
        for_each_chunk(&mut plain, 17, 1, |start, chunk| {
            for (i, v) in chunk.iter_mut().enumerate() {
                *v += (start + i) as f64;
            }
        });
        for threads in [1usize, 3, 6] {
            let mut with_state = src.clone();
            for_each_chunk_with(
                &mut with_state,
                17,
                threads,
                || vec![0.0f64; 4], // scratch whose contents must not matter
                |scratch, start, chunk| {
                    scratch[0] = start as f64; // dirty the scratch
                    for (i, v) in chunk.iter_mut().enumerate() {
                        *v += (start + i) as f64;
                    }
                },
            );
            assert!(
                plain.iter().zip(&with_state).all(|(a, b)| a == b),
                "threads={threads}"
            );
        }
    }
}
