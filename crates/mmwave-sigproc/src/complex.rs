//! Minimal, fast complex arithmetic for DSP.
//!
//! The allowed dependency set does not include `num-complex`, so this module
//! provides the small subset of complex arithmetic the rest of the stack
//! needs: field operations, polar conversions, exponentials and a handful of
//! helpers (`conj`, `norm`, `arg`, `scale`). The type is `Copy`, `repr(C)`
//! and branch-free in the hot paths so slices of it vectorize well.

use serde::{Deserialize, Serialize};
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` components.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
#[repr(C)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

/// The complex zero.
pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
/// The complex one.
pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };
/// The imaginary unit `j` (electrical-engineering spelling of `i`).
pub const J: Complex = Complex { re: 0.0, im: 1.0 };

impl Complex {
    /// Creates a complex number from rectangular components.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn real(re: f64) -> Self {
        Self { re, im: 0.0 }
    }

    /// Creates a complex number from polar form `r * e^{jθ}`.
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        let (s, c) = theta.sin_cos();
        Self {
            re: r * c,
            im: r * s,
        }
    }

    /// `e^{jθ}` — a unit phasor at angle `theta` (radians).
    #[inline]
    pub fn cis(theta: f64) -> Self {
        Self::from_polar(1.0, theta)
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Self {
            re: self.re,
            im: -self.im,
        }
    }

    /// Magnitude `|z|`.
    #[inline]
    pub fn norm(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared magnitude `|z|²` (avoids the square root; this is what power
    /// detectors and FFT magnitude spectra actually need).
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Argument (phase) in radians, in `(-π, π]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Polar decomposition `(r, θ)`.
    #[inline]
    pub fn to_polar(self) -> (f64, f64) {
        (self.norm(), self.arg())
    }

    /// Multiplies by a real scalar.
    #[inline]
    pub fn scale(self, k: f64) -> Self {
        Self {
            re: self.re * k,
            im: self.im * k,
        }
    }

    /// Multiplicative inverse `1/z`.
    ///
    /// Returns a non-finite result for `z == 0`, mirroring `f64` division.
    #[inline]
    pub fn inv(self) -> Self {
        let d = self.norm_sqr();
        Self {
            re: self.re / d,
            im: -self.im / d,
        }
    }

    /// Complex exponential `e^z`.
    #[inline]
    pub fn exp(self) -> Self {
        Self::from_polar(self.re.exp(), self.im)
    }

    /// Principal square root.
    pub fn sqrt(self) -> Self {
        let (r, theta) = self.to_polar();
        Self::from_polar(r.sqrt(), theta / 2.0)
    }

    /// Returns `true` when both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }

    /// Rotates the phasor by `theta` radians (multiplication by `e^{jθ}`).
    #[inline]
    pub fn rotate(self, theta: f64) -> Self {
        self * Self::cis(theta)
    }
}

impl From<f64> for Complex {
    #[inline]
    fn from(re: f64) -> Self {
        Self::real(re)
    }
}

impl Add for Complex {
    type Output = Self;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        Self {
            re: self.re + rhs.re,
            im: self.im + rhs.im,
        }
    }
}

impl Sub for Complex {
    type Output = Self;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        Self {
            re: self.re - rhs.re,
            im: self.im - rhs.im,
        }
    }
}

impl Mul for Complex {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        Self {
            re: self.re * rhs.re - self.im * rhs.im,
            im: self.re * rhs.im + self.im * rhs.re,
        }
    }
}

impl Div for Complex {
    type Output = Self;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // z/w is defined as z·w⁻¹
    fn div(self, rhs: Self) -> Self {
        self * rhs.inv()
    }
}

impl Neg for Complex {
    type Output = Self;
    #[inline]
    fn neg(self) -> Self {
        Self {
            re: -self.re,
            im: -self.im,
        }
    }
}

impl Mul<f64> for Complex {
    type Output = Self;
    #[inline]
    fn mul(self, k: f64) -> Self {
        self.scale(k)
    }
}

impl Mul<Complex> for f64 {
    type Output = Complex;
    #[inline]
    fn mul(self, z: Complex) -> Complex {
        z.scale(self)
    }
}

impl Div<f64> for Complex {
    type Output = Self;
    #[inline]
    fn div(self, k: f64) -> Self {
        Self {
            re: self.re / k,
            im: self.im / k,
        }
    }
}

impl AddAssign for Complex {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl SubAssign for Complex {
    #[inline]
    fn sub_assign(&mut self, rhs: Self) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl MulAssign for Complex {
    #[inline]
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl DivAssign for Complex {
    #[inline]
    fn div_assign(&mut self, rhs: Self) {
        *self = *self / rhs;
    }
}

impl Sum for Complex {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(ZERO, |a, b| a + b)
    }
}

/// Element-wise multiplication of two equal-length complex slices into `out`.
///
/// # Panics
/// Panics if the slice lengths differ.
pub fn mul_slices(a: &[Complex], b: &[Complex], out: &mut [Complex]) {
    assert_eq!(a.len(), b.len(), "mul_slices: length mismatch");
    assert_eq!(a.len(), out.len(), "mul_slices: output length mismatch");
    for ((o, &x), &y) in out.iter_mut().zip(a).zip(b) {
        *o = x * y;
    }
}

/// Converts a real slice into a complex vector with zero imaginary parts.
pub fn from_real(x: &[f64]) -> Vec<Complex> {
    x.iter().map(|&r| Complex::real(r)).collect()
}

/// Extracts the real parts of a complex slice.
pub fn to_real(x: &[Complex]) -> Vec<f64> {
    x.iter().map(|z| z.re).collect()
}

/// Computes `|z|²` for every element (the power spectrum of an FFT output).
pub fn power(x: &[Complex]) -> Vec<f64> {
    x.iter().map(|z| z.norm_sqr()).collect()
}

/// Computes `|z|` for every element (the magnitude spectrum).
pub fn magnitude(x: &[Complex]) -> Vec<f64> {
    x.iter().map(|z| z.norm()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-12
    }

    fn zclose(a: Complex, b: Complex) -> bool {
        close(a.re, b.re) && close(a.im, b.im)
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = Complex::new(1.5, -2.0);
        let b = Complex::new(-0.25, 4.0);
        assert!(zclose(a + b - b, a));
    }

    #[test]
    fn multiplication_matches_manual_expansion() {
        let a = Complex::new(3.0, 2.0);
        let b = Complex::new(1.0, 7.0);
        // (3+2j)(1+7j) = 3 + 21j + 2j + 14j² = -11 + 23j
        assert!(zclose(a * b, Complex::new(-11.0, 23.0)));
    }

    #[test]
    fn j_squared_is_minus_one() {
        assert!(zclose(J * J, Complex::real(-1.0)));
    }

    #[test]
    fn division_inverts_multiplication() {
        let a = Complex::new(0.3, -1.1);
        let b = Complex::new(2.0, 0.5);
        assert!(zclose(a * b / b, a));
    }

    #[test]
    fn inv_times_self_is_one() {
        let z = Complex::new(-4.2, 0.9);
        assert!(zclose(z * z.inv(), ONE));
    }

    #[test]
    fn polar_roundtrip() {
        let z = Complex::new(-1.0, 2.0);
        let (r, t) = z.to_polar();
        assert!(zclose(Complex::from_polar(r, t), z));
    }

    #[test]
    fn cis_is_unit_magnitude() {
        for k in 0..32 {
            let t = k as f64 * 0.41;
            assert!(close(Complex::cis(t).norm(), 1.0));
        }
    }

    #[test]
    fn conj_negates_phase() {
        let z = Complex::from_polar(2.0, 0.7);
        assert!(close(z.conj().arg(), -0.7));
    }

    #[test]
    fn norm_sqr_equals_z_times_conj() {
        let z = Complex::new(1.2, -3.4);
        assert!(close((z * z.conj()).re, z.norm_sqr()));
        assert!(close((z * z.conj()).im, 0.0));
    }

    #[test]
    fn exp_of_j_pi_is_minus_one() {
        let z = (J * std::f64::consts::PI).exp();
        assert!((z.re + 1.0).abs() < 1e-12 && z.im.abs() < 1e-12);
    }

    #[test]
    fn sqrt_squares_back() {
        let z = Complex::new(-3.0, 4.0);
        let s = z.sqrt();
        assert!(zclose(s * s, z));
    }

    #[test]
    fn rotate_by_half_pi_equals_mul_by_j() {
        let z = Complex::new(2.0, 1.0);
        assert!(zclose(z.rotate(std::f64::consts::FRAC_PI_2), z * J));
    }

    #[test]
    fn scalar_ops() {
        let z = Complex::new(1.0, -2.0);
        assert!(zclose(z * 2.0, Complex::new(2.0, -4.0)));
        assert!(zclose(2.0 * z, Complex::new(2.0, -4.0)));
        assert!(zclose(z / 2.0, Complex::new(0.5, -1.0)));
    }

    #[test]
    fn sum_over_iterator() {
        let v = vec![ONE, J, Complex::new(1.0, 1.0)];
        let s: Complex = v.into_iter().sum();
        assert!(zclose(s, Complex::new(2.0, 2.0)));
    }

    #[test]
    fn slice_helpers_roundtrip() {
        let x = vec![1.0, -2.0, 3.5];
        let z = from_real(&x);
        assert_eq!(to_real(&z), x);
        let p = power(&z);
        assert!(close(p[1], 4.0));
        let m = magnitude(&z);
        assert!(close(m[2], 3.5));
    }

    #[test]
    fn mul_slices_elementwise() {
        let a = vec![ONE, J];
        let b = vec![J, J];
        let mut out = vec![ZERO; 2];
        mul_slices(&a, &b, &mut out);
        assert!(zclose(out[0], J));
        assert!(zclose(out[1], Complex::real(-1.0)));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mul_slices_rejects_mismatched_lengths() {
        let a = vec![ONE];
        let b = vec![ONE, ONE];
        let mut out = vec![ZERO];
        mul_slices(&a, &b, &mut out);
    }

    #[test]
    fn assign_ops() {
        let mut z = ONE;
        z += J;
        assert!(zclose(z, Complex::new(1.0, 1.0)));
        z -= ONE;
        assert!(zclose(z, J));
        z *= J;
        assert!(zclose(z, Complex::real(-1.0)));
        z /= Complex::real(-1.0);
        assert!(zclose(z, ONE));
    }
}
